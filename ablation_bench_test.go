// Ablation benchmarks: the design knobs DESIGN.md calls out — the §VI
// countermeasures and the purge-delay policy — each run as a campaign
// variant whose headline metrics are reported next to the baseline's.
package rrdps_test

import (
	"sync"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/world"
)

// ablationConfig is the shared baseline for all ablation variants.
func ablationConfig(seed int64) world.Config {
	cfg := world.PaperConfig(2500)
	cfg.Seed = seed
	cfg.LeaveRate *= 12
	cfg.SwitchRate *= 12
	cfg.JoinRate *= 12
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	return cfg
}

type ablationOutcome struct {
	hidden   int
	verified int
}

var (
	ablationOnce    sync.Once
	ablationResults map[string]ablationOutcome
)

// runAblations executes the four campaign variants once.
func runAblations() map[string]ablationOutcome {
	ablationOnce.Do(func() {
		ablationResults = make(map[string]ablationOutcome)
		record := func(name string, res experiment.ResidualResult) {
			h, _ := res.TotalHidden()
			v, _ := res.TotalVerified()
			ablationResults[name] = ablationOutcome{hidden: h, verified: v}
		}

		record("baseline", experiment.Residual{
			World: world.New(ablationConfig(501)), Weeks: 4, WarmupDays: 28,
		}.Run())

		record("provider-audit", experiment.Residual{
			World: world.New(ablationConfig(501)), Weeks: 4, WarmupDays: 28,
			ProviderAudit: true,
		}.Run())

		decoyCfg := ablationConfig(501)
		decoyCfg.DecoyOnLeaveRate = 1.0
		record("customer-decoy", experiment.Residual{
			World: world.New(decoyCfg), Weeks: 4, WarmupDays: 28,
		}.Run())

		fastPurge := ablationConfig(501)
		fastPurge.PurgeDelayFree = 3 * 24 * time.Hour
		fastPurge.PurgeDelayPaid = 7 * 24 * time.Hour
		record("fast-purge", experiment.Residual{
			World: world.New(fastPurge), Weeks: 4, WarmupDays: 28,
		}.Run())
	})
	return ablationResults
}

// BenchmarkAblationBaseline reports the uncountered leak.
func BenchmarkAblationBaseline(b *testing.B) {
	out := runAblations()["baseline"]
	for i := 0; i < b.N; i++ {
		_ = runAblations()
	}
	b.ReportMetric(float64(out.hidden), "hidden")
	b.ReportMetric(float64(out.verified), "verified")
}

// BenchmarkAblationProviderAudit reports §VI-B.1: the provider audits
// terminated customers and stops answering for movers.
func BenchmarkAblationProviderAudit(b *testing.B) {
	out := runAblations()["provider-audit"]
	for i := 0; i < b.N; i++ {
		_ = runAblations()
	}
	b.ReportMetric(float64(out.hidden), "hidden")
	b.ReportMetric(float64(out.verified), "verified")
}

// BenchmarkAblationCustomerDecoy reports §VI-B.2: leavers plant fake
// origin records; residual answers point at dead decoys.
func BenchmarkAblationCustomerDecoy(b *testing.B) {
	out := runAblations()["customer-decoy"]
	for i := 0; i < b.N; i++ {
		_ = runAblations()
	}
	b.ReportMetric(float64(out.hidden), "hidden")
	b.ReportMetric(float64(out.verified), "verified")
}

// BenchmarkAblationFastPurge reports the purge-delay knob: 3-day instead
// of 28-day record retention after termination.
func BenchmarkAblationFastPurge(b *testing.B) {
	out := runAblations()["fast-purge"]
	for i := 0; i < b.N; i++ {
		_ = runAblations()
	}
	b.ReportMetric(float64(out.hidden), "hidden")
	b.ReportMetric(float64(out.verified), "verified")
}
