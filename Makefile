# Developer entry points. CI (.github/workflows/ci.yml) calls these same
# targets so local runs and the workflow agree on flags and tool versions.

# Tool pins live in tools/tools.go; extract them so there is exactly one
# place to bump a version.
STATICCHECK_VERSION := $(shell sed -n 's/.*StaticcheckVersion = "\(.*\)".*/\1/p' tools/tools.go)
GOVULNCHECK_VERSION := $(shell sed -n 's/.*GovulncheckVersion = "\(.*\)".*/\1/p' tools/tools.go)

.PHONY: all build test race vet fmt-check staticcheck govulncheck lint \
	bench bench-baseline bench-check

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; fi

# `go run pkg@version` resolves the tool outside the module graph, so the
# module itself stays zero-dependency.
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

lint: vet fmt-check staticcheck

# bench writes a fresh BENCH_resolve.json-shaped report without touching
# the committed baseline; bench-check gates it the way CI does.
bench:
	scripts/bench.sh bench-fresh.json

bench-check: bench
	go run ./tools/benchjson -compare BENCH_resolve.json bench-fresh.json

# bench-baseline refreshes the committed baseline in place. Run it on the
# machine class the gate runs on (baselines encode absolute ns/op), then
# commit the result with the change that moved the numbers.
bench-baseline:
	scripts/bench.sh BENCH_resolve.json
