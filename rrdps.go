package rrdps

import (
	"rrdps/internal/core/behavior"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/exposure"
	"rrdps/internal/core/filter"
	"rrdps/internal/core/htmlverify"
	"rrdps/internal/core/match"
	"rrdps/internal/core/report"
	"rrdps/internal/core/rrscan"
	"rrdps/internal/core/status"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/scenario"
	"rrdps/internal/serve"
	"rrdps/internal/snapdisk"
	"rrdps/internal/snapstore"
	"rrdps/internal/vectors"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

// This file is the library's public API: a curated facade over the
// internal packages. Downstream users build a World, run the campaign
// runners, and render reports — the same workflow the cmd/ binaries and
// examples/ follow.

// ---------------------------------------------------------------------------
// World construction.

// Config parametrizes a simulated Internet; see PaperConfig for the
// calibrated defaults.
type Config = world.Config

// ExposureRates sets the Table I attack-surface probabilities for
// generated sites.
type ExposureRates = world.ExposureRates

// World is a fully wired simulated Internet: DNS backbone, the eleven
// Table II providers, a hosting service, and a ranked website population.
type World = world.World

// Event is one ground-truth usage behaviour the world generated.
type Event = world.Event

// PaperConfig returns a configuration calibrated to the paper's reported
// aggregates for a population of numSites.
func PaperConfig(numSites int) Config { return world.PaperConfig(numSites) }

// NewWorld builds a world; identical configs build identical worlds.
func NewWorld(cfg Config) *World { return world.New(cfg) }

// ---------------------------------------------------------------------------
// Campaign runners (the paper's experiments).

// Dynamics runs the §IV usage-dynamics campaign (Figs. 2/3/5/6, Table V).
type Dynamics = experiment.Dynamics

// DynamicsResult carries the §IV campaign outputs.
type DynamicsResult = experiment.DynamicsResult

// Residual runs the §V residual-resolution campaign (Table VI, Fig. 9).
type Residual = experiment.Residual

// ResidualResult carries the §V campaign outputs.
type ResidualResult = experiment.ResidualResult

// DynamicsEngine is the incremental form of the Dynamics campaign: build
// one with Dynamics.NewEngine, then AppendDay/Checkpoint/Result at the
// caller's own cadence — the daemon (-follow) mode's substrate. Batch
// Run() is a thin loop over the same engine, so appended and batch
// results are value-identical.
type DynamicsEngine = experiment.DynamicsEngine

// ResidualEngine is the incremental form of the Residual campaign
// (AppendRound seals one collection round: a warmup day or a scan week).
type ResidualEngine = experiment.ResidualEngine

// PurgeTrial replicates the §V-A.3 controlled purge experiment.
type PurgeTrial = experiment.PurgeTrial

// ---------------------------------------------------------------------------
// Scenario specs (declarative campaign configuration).

// ScenarioSpec is a parsed, validated, canonicalized scenario document:
// the versioned JSON spec format the -scenario flag consumes. Canonical
// holds the defaults-applied canonical encoding and Hash its SHA-256 —
// the provenance identity recorded in campaign checkpoints.
type ScenarioSpec = scenario.Spec

// CompiledScenario is a ScenarioSpec lowered onto the runtime types: a
// world Config, a resolver Policy, the campaign horizon, and (for
// residual campaigns) an optional attack load.
type CompiledScenario = scenario.Compiled

// ScenarioError is a spec loading/validation failure anchored to a line
// of the offending file ("file.json:7: campaign: churnBoost must be > 0").
type ScenarioError = scenario.Error

// ScenarioInfo is the provenance a compiled scenario threads into
// campaign results and checkpoints (name, spec hash, canonical bytes);
// the lookup service reports it under /v1/stats.
type ScenarioInfo = experiment.ScenarioInfo

// Scenario campaign kinds (Campaign.Kind in a spec document).
const (
	ScenarioDynamics = scenario.CampaignDynamics
	ScenarioResidual = scenario.CampaignResidual
)

// LoadScenario reads, parses, validates, and canonicalizes a scenario
// spec file (rrdps/v1, or rrdps/v1alpha1 converted on the way in).
var LoadScenario = scenario.Load

// ParseScenario is LoadScenario over bytes already in hand; file is used
// only to label errors.
var ParseScenario = scenario.Parse

// CompileScenario lowers a validated spec onto the runtime configuration
// types. Compilation is infallible: every failure mode is caught by
// validation at parse time.
var CompileScenario = scenario.Compile

// ---------------------------------------------------------------------------
// Pipeline building blocks, for callers composing their own campaigns.

// Collector takes daily A/CNAME/NS snapshots.
type Collector = collect.Collector

// Snapshot is one day's collected records as a full map.
//
// Deprecated-path note: Snapshot is the legacy adapter kept so pre-store
// callers still compile. New code should stream Collector.CollectStream
// into a SnapshotStore and read days back through SnapshotCursor /
// SnapshotPairCursor (or SnapshotStore.SnapshotAt when a map really is
// needed); the campaign runners already work this way, and the map-based
// entry points go away once downstream callers have migrated.
type Snapshot = collect.Snapshot

// SnapshotStore is the append-only, delta-encoded, name-interned store for
// daily snapshots: each day costs only what changed, any retained day
// replays as a virtual full snapshot, and SetWindow bounds retention for
// arbitrarily long campaigns.
type SnapshotStore = snapstore.Store

// SnapshotWriter appends one day to a SnapshotStore
// (BeginDay → Put every record → Seal).
type SnapshotWriter = snapstore.DayWriter

// SnapshotCursor replays one stored day in rank order, one record at a
// time.
type SnapshotCursor = snapstore.Cursor

// SnapshotPair is one apex's (previous day, current day) record pair.
type SnapshotPair = snapstore.Pair

// SnapshotPairCursor streams a day-over-day diff as SnapshotPairs — the
// §IV-B.3 diff without materializing either day as a map.
type SnapshotPairCursor = snapstore.PairCursor

// SnapshotStoreStats describes a store's retained shape (days, versions,
// tombstones, interned names).
type SnapshotStoreStats = snapstore.Stats

// NewSnapshotStore builds an empty snapshot store with unbounded
// retention.
var NewSnapshotStore = snapstore.New

// ---------------------------------------------------------------------------
// Durability (checkpoints and the write-ahead log).

// SnapshotState is a SnapshotStore's full logical state in plain slices —
// the unit the checkpoint format serializes.
type SnapshotState = snapstore.State

// ExportSnapshotState captures a store's state for checkpointing.
func ExportSnapshotState(s *SnapshotStore) SnapshotState { return s.ExportState() }

// SnapshotStoreFromState rebuilds a store from a checkpointed state,
// validating every internal invariant.
var SnapshotStoreFromState = snapstore.FromState

// CheckpointDir manages a directory of rotated campaign checkpoints plus
// the write-ahead log covering the rounds since the newest one.
type CheckpointDir = snapdisk.Dir

// WAL is the day-level write-ahead log a campaign tees Put records into;
// only sealed day groups count as durable.
type WAL = snapdisk.WAL

// WALDay is one sealed day group recovered from a write-ahead log.
type WALDay = snapdisk.WALDay

// OpenCheckpointDir opens (creating if needed) a checkpoint directory.
var OpenCheckpointDir = snapdisk.OpenDir

// OpenWAL opens a write-ahead log for appending, creating it if needed.
var OpenWAL = snapdisk.OpenWAL

// ReplayWAL reads back a log's sealed day groups, dropping any torn tail.
var ReplayWAL = snapdisk.ReplayWAL

// MarshalCheckpoint / UnmarshalCheckpoint are the versioned, checksummed
// binary checkpoint codec (store state + an opaque campaign blob).
var (
	MarshalCheckpoint   = snapdisk.MarshalCheckpoint
	UnmarshalCheckpoint = snapdisk.UnmarshalCheckpoint
)

// ErrCheckpointCorrupt is the sentinel every snapdisk decode error wraps.
var ErrCheckpointCorrupt = snapdisk.ErrCorrupt

// ---------------------------------------------------------------------------
// Lookup service (the cmd/rrserve HTTP API).

// SnapshotView is an immutable read surface over a snapshot store: the
// store's sealed state frozen at one round, safe to read from any
// goroutine while the campaign keeps writing.
type SnapshotView = snapstore.View

// CampaignState is a campaign cursor decoded into its exported products
// (adoptions, tracker history, weekly reports, exposure timelines).
type CampaignState = experiment.CampaignState

// DecodeCampaignState decodes a checkpoint's campaign blob.
var DecodeCampaignState = experiment.DecodeCampaignState

// OpenCheckpointDirReadOnly opens an existing checkpoint directory
// without creating, truncating, or replaying anything — the attachment
// mode for read-only consumers like the lookup service.
var OpenCheckpointDirReadOnly = snapdisk.OpenDirReadOnly

// LookupServer is the residual-resolution lookup service over a
// snapstore: exposure verdicts, hidden records, and adoption history as
// an HTTP API with auth, rate limiting, and request metrics.
type LookupServer = serve.Server

// LookupConfig wires a LookupServer.
type LookupConfig = serve.Config

// LookupEpoch is one sealed round's queryable state.
type LookupEpoch = serve.Epoch

// LookupSource supplies epochs to a LookupServer.
type LookupSource = serve.Source

// CheckpointLookupSource serves a checkpoint directory's newest state.
type CheckpointLookupSource = serve.CheckpointSource

// LiveLookupSource attaches a LookupServer to a running campaign via the
// campaign's OnSeal hook.
type LiveLookupSource = serve.LiveSource

// NewLookupServer builds a lookup server.
var NewLookupServer = serve.New

// OpenLookupCheckpoint loads the newest checkpoint in dir as a source.
var OpenLookupCheckpoint = serve.OpenCheckpoint

// FollowLookupSource tails a checkpoint directory another process is
// writing, swapping in a new epoch whenever a round seals — the
// `rrserve -follow` mode. Answers are never more than one poll interval
// behind the newest durable round.
type FollowLookupSource = serve.FollowSource

// OpenLookupFollow opens dir for following; the directory may be empty
// (the source reports no epoch until the first round seals).
var OpenLookupFollow = serve.OpenFollow

// Matcher attributes DNS records to providers (A/CNAME/NS matching).
type Matcher = match.Matcher

// Classifier derives the Table III ON/OFF/NONE status.
type Classifier = status.Classifier

// BehaviorTracker detects the Table IV behaviours via the Fig. 4 FSM.
type BehaviorTracker = behavior.Tracker

// Verifier performs the HTML verification of §IV-C.3.
type Verifier = htmlverify.Verifier

// FilterPipeline is the Fig. 8 hidden-record filtering procedure.
type FilterPipeline = filter.Pipeline

// FilterReport summarizes one filtering pass.
type FilterReport = filter.Report

// ExposureTracker accumulates weekly scans into the Fig. 9 timeline.
type ExposureTracker = exposure.Tracker

// Scanner issues the §V direct scans from vantage-point clients.
type Scanner = rrscan.Scanner

// VectorScanner runs the eight Table I origin-exposure vectors.
type VectorScanner = vectors.Scanner

// VectorAudit aggregates a Table I audit over many sites.
type VectorAudit = vectors.AuditResult

// NewCollector builds a collector over a resolver and domain list.
var NewCollector = collect.New

// NewMatcher builds a matcher over an AS registry and provider profiles.
var NewMatcher = match.New

// NewClassifier builds a Table III classifier.
var NewClassifier = status.New

// NewBehaviorTracker builds a behaviour tracker with an exclusion list.
var NewBehaviorTracker = behavior.NewTracker

// NewVerifier builds an HTML verifier over an HTTP client.
var NewVerifier = htmlverify.New

// NewFilterPipeline builds the Fig. 8 pipeline.
var NewFilterPipeline = filter.New

// NewExposureTracker builds a week-over-week exposure tracker.
var NewExposureTracker = exposure.NewTracker

// NewScanner builds a direct scanner over vantage clients.
var NewScanner = rrscan.NewScanner

// DiscoverNameservers extracts a provider's NS-hosting nameservers from
// snapshots.
var DiscoverNameservers = rrscan.DiscoverNameservers

// ---------------------------------------------------------------------------
// Providers, sites, DNS.

// ProviderKey identifies one of the eleven Table II providers.
type ProviderKey = dps.ProviderKey

// Provider profile keys.
const (
	Akamai     = dps.Akamai
	Cloudflare = dps.Cloudflare
	Cloudfront = dps.Cloudfront
	CDN77      = dps.CDN77
	CDNetworks = dps.CDNetworks
	DOSarrest  = dps.DOSarrest
	Edgecast   = dps.Edgecast
	Fastly     = dps.Fastly
	Incapsula  = dps.Incapsula
	Limelight  = dps.Limelight
	Stackpath  = dps.Stackpath
)

// Rerouting identifies a DNS-based rerouting mechanism.
type Rerouting = dps.Rerouting

// Rerouting mechanisms (§II-A.2).
const (
	ReroutingA     = dps.ReroutingA
	ReroutingCNAME = dps.ReroutingCNAME
	ReroutingNS    = dps.ReroutingNS
)

// Plan is a DPS service plan (free plans purge residual records sooner).
type Plan = dps.Plan

// Plans.
const (
	PlanFree = dps.PlanFree
	PlanPaid = dps.PlanPaid
)

// Profile is a provider's static Table II description.
type Profile = dps.Profile

// Profiles returns the eleven Table II provider profiles.
func Profiles() []Profile { return dps.Profiles() }

// Site is one website: origin server, own DNS zone, admin operations.
type Site = website.Site

// SiteExposure is a site's Table I attack surface.
type SiteExposure = website.Exposure

// Name is a normalized DNS name.
type Name = dnsmsg.Name

// ParseName validates and normalizes a domain name.
var ParseName = dnsmsg.ParseName

// Resolver is an iterative DNS resolver with a purgeable TTL cache.
type Resolver = dnsresolver.Resolver

// DNSClient issues direct queries to specific nameservers (the attacker's
// tool in §III-B).
type DNSClient = dnsresolver.Client

// Region locates vantage points and PoPs.
type Region = netsim.Region

// VantageRegions returns the paper's five measurement vantage points.
var VantageRegions = netsim.VantageRegions

// ---------------------------------------------------------------------------
// Observability.

// MetricsRegistry collects counters, gauges, histograms, and phase spans
// from a campaign. Pass one via Dynamics.Obs / Residual.Obs; a nil
// registry disables all instrumentation at zero cost.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is a point-in-time copy of a registry's metrics, with
// Diff/Merge/Deterministic for comparing runs.
type MetricsSnapshot = obs.Snapshot

// MetricsDump bundles a snapshot with the tracer's phase summaries and
// recent span events; it is what the -metrics flag serializes.
type MetricsDump = obs.Dump

// NewMetricsRegistry builds an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// ---------------------------------------------------------------------------
// Reporting.

// Report renderers for every table and figure (text and CSV forms).
var (
	RenderTableI    = report.TableI
	RenderTableII   = report.TableII
	RenderTableIII  = report.TableIII
	RenderTableIV   = report.TableIV
	RenderFigure2   = report.Figure2
	RenderFigure3   = report.Figure3
	RenderFigure5   = report.Figure5
	RenderFigure6   = report.Figure6
	RenderFigure7   = report.Figure7
	RenderFigure9   = report.Figure9
	RenderTableV    = report.TableV
	RenderTableVI   = report.TableVI
	Figure2CSV      = report.Figure2CSV
	Figure3CSV      = report.Figure3CSV
	Figure5CSV      = report.Figure5CSV
	Figure9CSV      = report.Figure9CSV
	TableVCSV       = report.TableVCSV
	TableVICSV      = report.TableVICSV
	RenderPauseCDFs = report.PauseCDF

	RenderObservability = report.Observability
	ObservabilityCSV    = report.ObservabilityCSV
)
