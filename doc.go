// Package rrdps is a full reproduction of "Your Remnant Tells Secret:
// Residual Resolution in DDoS Protection Services" (Jin, Hao, Wang,
// Cotton — IEEE/IFIP DSN 2018) as a Go library.
//
// The repository contains two layers:
//
//   - A simulated Internet substrate: a DNS ecosystem with real wire-format
//     messages (internal/dnsmsg, dnszone, dnsserver, dnsresolver), an
//     IPv4/AS space (internal/ipspace), an HTTP layer with origins and
//     caching reverse-proxy edges (internal/httpsim, internal/edge), the
//     eleven Table II DPS/CDN providers with their rerouting mechanisms and
//     termination policies (internal/dps), a ranked website population with
//     administrator churn (internal/alexa, internal/website), and a
//     composition root that wires it all (internal/world).
//
//   - The paper's measurement system: daily DNS record collection
//     (internal/core/collect), the append-only delta-encoded snapshot
//     store with name interning and cursor replay (internal/snapstore),
//     A/CNAME/NS matching (internal/core/match), Table III status
//     classification (internal/core/status), the Table IV
//     behaviour FSM (internal/core/behavior), HTML verification
//     (internal/core/htmlverify), the residual-resolution scanners
//     (internal/core/rrscan), the Fig. 8 filtering pipeline
//     (internal/core/filter), week-over-week exposure tracking
//     (internal/core/exposure), campaign orchestration
//     (internal/core/experiment), and table/figure rendering
//     (internal/core/report). internal/attack adds the Fig. 1 DDoS
//     bypass simulation.
//
// Snapshot flow: the campaign runners stream each day's collection
// straight into a SnapshotStore (collector → store → streaming
// classifier/differ → campaign aggregation) and bound retention with
// SnapWindow, so memory stays flat over campaign length. The map-based
// Snapshot remains as a thin legacy adapter — see the deprecation note on
// the Snapshot alias in rrdps.go — and the Legacy flags on Dynamics and
// Residual keep the old pipeline runnable until downstream callers have
// migrated.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation.
package rrdps
