module rrdps

go 1.22
