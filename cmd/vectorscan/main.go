// Command vectorscan audits DPS-protected websites against the eight
// origin-exposure attack vectors of Table I (plus residual resolution,
// which cmd/rrscan covers). It builds a world, feeds a passive-DNS archive
// from pre-adoption history, and reports how many protected sites leak
// their origin through at least one vector.
package main

import (
	"flag"
	"fmt"
	"os"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/match"
	"rrdps/internal/core/report"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/pdns"
	"rrdps/internal/vectors"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 400, "population size")
	seed := flag.Int64("seed", 1815, "world seed")
	maxTargets := flag.Int("targets", 40, "maximum protected sites to audit")
	flag.Parse()
	if *sites <= 0 || *maxTargets <= 0 {
		fmt.Fprintln(os.Stderr, "vectorscan: -sites and -targets must be positive")
		os.Exit(2)
	}

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	w := world.New(cfg)

	// Build the attacker's passive-DNS archive from pre-scan snapshots:
	// real-world databases carry years of history, so feed the archive a
	// fortnight of observations while the world churns (sites that join a
	// DPS during this window leave their old addresses behind).
	resolver := w.NewResolver(netsim.RegionOregon)
	var domains []alexa.Domain
	for _, s := range w.Sites() {
		domains = append(domains, s.Domain())
	}
	collector := collect.New(resolver, domains)
	archive := pdns.NewArchive()
	for day := 0; day < 14; day += 2 {
		snap := collector.Collect(w.Day())
		for apex, rec := range snap.Records {
			archive.Record(w.Day(), apex.Child("www"), rec.Addrs...)
		}
		w.AdvanceDays(2)
	}

	scanner := vectors.New(vectors.Config{
		Network:    w.Net,
		Resolver:   w.NewResolver(netsim.RegionLondon),
		HTTP:       w.NewHTTPClient(netsim.RegionLondon),
		Matcher:    match.New(w.Registry, dps.Profiles()),
		Archive:    archive,
		ScanSpaces: w.OriginSpaces(),
		ListenAddr: w.Alloc.NextAddr(),
		Region:     netsim.RegionLondon,
	})

	res := scanner.Audit(w.Sites(), w.Day(), *maxTargets)
	fmt.Print(report.TableI(res))
	fmt.Println("(Vissers et al., CCS'15, report >70% on the real Internet)")
}
