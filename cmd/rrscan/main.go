// Command rrscan runs the paper's §V residual-resolution campaign: weekly
// direct scans of Cloudflare-style NS-hosting nameservers for every
// domain, weekly re-resolution of collected Incapsula CNAMEs, the Fig. 8
// filtering pipeline, and week-over-week exposure tracking. It prints the
// Table VI and Fig. 9 artifacts plus the Fig. 7 per-PoP load spread.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrdps/internal/cmdutil"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/scenario"
	"rrdps/internal/shardrun"
	"rrdps/internal/world"
)

// runFollow is the -follow daemon loop: append collection rounds
// (warm-up steps, then scan weeks) until SIGTERM/SIGINT or -max-days,
// print a one-line summary per sealed round, then drain — finish the
// in-flight round, force a checkpoint, and hand back the result so far.
func runFollow(cfg experiment.Residual, cf *cmdutil.CampaignFlags) experiment.ResidualResult {
	en := cfg.NewEngine()
	defer en.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)

	drain := func(why string) experiment.ResidualResult {
		fmt.Fprintf(os.Stderr, "rrscan: %s; checkpointing and draining\n", why)
		en.Checkpoint()
		return en.Result()
	}
	appended := 0
	for {
		select {
		case s := <-sig:
			return drain(s.String())
		default:
		}
		en.AppendRound()
		fmt.Println(report.ResidualProgress(en.WorldDay(), en.Result()))
		appended++
		if cf.MaxDays > 0 && appended >= cf.MaxDays {
			return drain(fmt.Sprintf("-max-days %d reached", cf.MaxDays))
		}
		if cf.FollowInterval > 0 {
			select {
			case s := <-sig:
				return drain(s.String())
			case <-time.After(cf.FollowInterval):
			}
		}
	}
}

// poolCounts reads the Fig. 7 per-PoP query counts of one Cloudflare pool
// nameserver out of a world. Sharded runs sum this across shard worlds.
func poolCounts(w *world.World) map[netsim.Region]uint64 {
	prov, ok := w.Provider(dps.Cloudflare)
	if !ok {
		return nil
	}
	pool := prov.NSPool()
	if len(pool) == 0 {
		return nil
	}
	addr, ok := prov.NSPoolAddr(pool[0])
	if !ok {
		return nil
	}
	return w.Net.QueryCounts(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS})
}

func main() {
	sites := flag.Int("sites", 2000, "number of websites")
	weeks := flag.Int("weeks", 6, "weekly scan rounds (the paper runs six)")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 8, "multiply leave/switch hazards so a small world yields residual records")
	warmup := flag.Int("warmup", 28, "days of world history to simulate before the first scan")
	incStart := flag.Int("incapsula-start", 0, "first week (1-based, inclusive) the Incapsula CNAME re-resolution runs; 0 or 1 = every week (the paper covers its last three)")
	cf := cmdutil.RegisterCampaignFlags(flag.CommandLine,
		"snapshot-store retention in collection rounds: 0 = streaming default (1), <0 = keep every round replayable, >=1 = that many rounds")
	cf.ScenarioOwns("sites", "weeks", "seed", "churn-boost", "warmup", "incapsula-start")
	flag.Parse()
	if *sites <= 0 || *weeks <= 0 || *boost <= 0 {
		fmt.Fprintln(os.Stderr, "rrscan: -sites, -weeks, and -churn-boost must be positive")
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(2)
	}
	comp, err := cf.LoadScenario(scenario.CampaignResidual)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(2)
	}
	if cf.ValidateOnly {
		fmt.Printf("scenario %s ok (sha256:%s)\n", comp.Name(), comp.Hash())
		return
	}
	policy := cf.Policy()

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	cfg.LeaveRate *= *boost
	cfg.SwitchRate *= *boost
	cfg.JoinRate *= *boost

	var scn *experiment.ScenarioInfo
	var attackLoad *experiment.AttackLoad
	if comp != nil {
		// The spec owns the experiment shape; mirror it into the locals
		// the announcement lines and campaign construction read. The
		// provenance line goes to stderr so a scenario that reproduces a
		// flag-driven run keeps stdout byte-identical to it.
		cfg = comp.World
		policy = comp.Policy
		*sites, *weeks, *seed = cfg.NumSites, comp.Weeks, cfg.Seed
		*warmup, *incStart = comp.WarmupDays, comp.IncapsulaStartWeek
		scn = comp.Info
		attackLoad = comp.Attack
		fmt.Fprintf(os.Stderr, "rrscan: scenario %s (sha256:%s)\n", comp.Name(), comp.Hash())
	}

	if cf.Resume {
		fmt.Fprintf(os.Stderr, "rrscan: resuming campaign state from %s\n", cf.CheckpointDir)
	}

	reg := obs.NewRegistry()
	stopProfiles, err := cmdutil.StartProfiles(cf.PprofPrefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}

	var res experiment.ResidualResult
	var fig7 map[netsim.Region]uint64
	if cf.Shards > 1 {
		fmt.Printf("running %d-week campaign over %d sites in %d shards (seed %d)...\n\n",
			*weeks, *sites, cf.Shards, *seed)
		start := time.Now()
		run := shardrun.Residual{
			Config:             cfg,
			Weeks:              *weeks,
			WarmupDays:         *warmup,
			IncapsulaStartWeek: *incStart,
			Shards:             cf.Shards,
			ShardWorkers:       cf.ShardWorkers,
			Workers:            cf.Workers,
			Policy:             &policy,
			Obs:                reg,
			SnapWindow:         cf.SnapWindow,
			CheckpointDir:      cf.CheckpointDir,
			CheckpointEvery:    cf.CheckpointEvery,
			Resume:             cf.Resume,
			// Fig. 7 load lives on each shard's network, not in the
			// result; AfterShard runs serialized, so summing here is safe.
			AfterShard: func(_ int, w *world.World) {
				for region, n := range poolCounts(w) {
					if fig7 == nil {
						fig7 = make(map[netsim.Region]uint64)
					}
					fig7[region] += n
				}
			},
		}.Run()
		res = run.Merged
		fmt.Printf("sharded campaign done in %v\n\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("building world: %d sites (seed %d)...\n", *sites, *seed)
		start := time.Now()
		w := world.New(cfg)
		campaign := experiment.Residual{
			World:              w,
			Weeks:              *weeks,
			WarmupDays:         *warmup,
			IncapsulaStartWeek: *incStart,
			Workers:            cf.Workers,
			Policy:             &policy,
			Obs:                reg,
			SnapWindow:         cf.SnapWindow,
			Legacy:             cf.Legacy,
			CheckpointDir:      cf.CheckpointDir,
			CheckpointEvery:    cf.CheckpointEvery,
			Resume:             cf.Resume,
			Scenario:           scn,
			Attack:             attackLoad,
		}
		if cf.Follow {
			// Daemon mode has no horizon: -weeks is ignored, the engine
			// appends rounds until SIGTERM or -max-days.
			campaign.Weeks = 0
			fmt.Printf("world ready in %v; following (SIGTERM to drain)...\n\n", time.Since(start).Round(time.Millisecond))
			res = runFollow(campaign, cf)
		} else {
			fmt.Printf("world ready in %v; running %d-week campaign...\n\n", time.Since(start).Round(time.Millisecond), *weeks)
			res = campaign.Run()
		}
		fig7 = poolCounts(w)
	}

	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(res.String())
	fmt.Printf("cloudflare NS-rerouting nameservers discovered: %d\n\n", res.NameserverCount)
	fmt.Printf("retry policy: %s\n", policy)
	fmt.Println(report.FaultSummary(res.Stats, res.Sidelined))
	fmt.Println(report.TableVI(res))
	fmt.Println(report.Figure9(res))

	// Fig. 7: per-PoP query counts of one Cloudflare pool nameserver
	// (summed across shard worlds when sharded).
	if len(fig7) > 0 {
		fmt.Println(report.Figure7(fig7))
	}

	if err := cmdutil.EmitMetrics(reg, cf.Metrics, cf.MetricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}
}
