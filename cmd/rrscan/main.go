// Command rrscan runs the paper's §V residual-resolution campaign: weekly
// direct scans of Cloudflare-style NS-hosting nameservers for every
// domain, weekly re-resolution of collected Incapsula CNAMEs, the Fig. 8
// filtering pipeline, and week-over-week exposure tracking. It prints the
// Table VI and Fig. 9 artifacts plus the Fig. 7 per-PoP load spread.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rrdps/internal/cmdutil"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 2000, "number of websites")
	weeks := flag.Int("weeks", 6, "weekly scan rounds (the paper runs six)")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 8, "multiply leave/switch hazards so a small world yields residual records")
	warmup := flag.Int("warmup", 28, "days of world history to simulate before the first scan")
	incStart := flag.Int("incapsula-start", 0, "first week (1-based, inclusive) the Incapsula CNAME re-resolution runs; 0 or 1 = every week (the paper covers its last three)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallelism of the collection/scan/filter loops (1 = serial; results are identical either way)")
	snapWindow := flag.Int("snap-window", 0, "snapshot-store retention in collection rounds: 0 = streaming default (1), <0 = keep every round replayable, >=1 = that many rounds")
	retries := flag.Int("retries", 3, "attempts per query (1 = no retries); backoff and health sidelining follow the default policy")
	hedge := flag.Bool("hedge", true, "hedge retried queries to an alternate nameserver when one is available")
	metrics := flag.String("metrics", "", "emit an observability dump after the campaign: text or json")
	metricsOut := flag.String("metrics-out", "", "write the -metrics dump to this file instead of stdout")
	pprofPrefix := flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles around the campaign body")
	flag.Parse()
	if *sites <= 0 || *weeks <= 0 || *boost <= 0 || *workers <= 0 || *retries <= 0 {
		fmt.Fprintln(os.Stderr, "rrscan: -sites, -weeks, -churn-boost, -workers, and -retries must be positive")
		os.Exit(2)
	}
	policy := dnsresolver.DefaultPolicy()
	policy.MaxAttempts = *retries
	policy.Hedge = *hedge

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	cfg.LeaveRate *= *boost
	cfg.SwitchRate *= *boost
	cfg.JoinRate *= *boost

	fmt.Printf("building world: %d sites (seed %d)...\n", *sites, *seed)
	start := time.Now()
	w := world.New(cfg)
	fmt.Printf("world ready in %v; running %d-week campaign...\n\n", time.Since(start).Round(time.Millisecond), *weeks)

	reg := obs.NewRegistry()
	stopProfiles, err := cmdutil.StartProfiles(*pprofPrefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}

	res := experiment.Residual{
		World:              w,
		Weeks:              *weeks,
		WarmupDays:         *warmup,
		IncapsulaStartWeek: *incStart,
		Workers:            *workers,
		Policy:             &policy,
		Obs:                reg,
		SnapWindow:         *snapWindow,
	}.Run()

	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(res.String())
	fmt.Printf("cloudflare NS-rerouting nameservers discovered: %d\n\n", res.NameserverCount)
	fmt.Printf("retry policy: %s\n", policy)
	fmt.Println(report.FaultSummary(res.Stats, res.Sidelined))
	fmt.Println(report.TableVI(res))
	fmt.Println(report.Figure9(res))

	// Fig. 7: per-PoP query counts of one Cloudflare pool nameserver.
	if cf, ok := w.Provider(dps.Cloudflare); ok {
		if pool := cf.NSPool(); len(pool) > 0 {
			if addr, ok := cf.NSPoolAddr(pool[0]); ok {
				counts := w.Net.QueryCounts(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS})
				fmt.Println(report.Figure7(counts))
			}
		}
	}

	if err := cmdutil.EmitMetrics(reg, *metrics, *metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "rrscan: %v\n", err)
		os.Exit(1)
	}
}
