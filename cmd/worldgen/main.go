// Command worldgen builds a simulated Internet and prints its inventory:
// provider profiles (Table II), fleet sizes, population, and initial DPS
// adoption.
package main

import (
	"flag"
	"fmt"
	"os"

	"rrdps/internal/core/report"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 2000, "number of websites in the ranked population")
	seed := flag.Int64("seed", 1815, "world seed")
	providers := flag.Bool("providers", false, "print only the Table II provider profiles")
	dumpZone := flag.String("dump-zone", "", "print a site's own zone file (apex domain) and exit")
	flag.Parse()

	if *providers {
		fmt.Print(report.TableII())
		return
	}
	if *sites <= 0 {
		fmt.Fprintln(os.Stderr, "worldgen: -sites must be positive")
		os.Exit(2)
	}

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	w := world.New(cfg)

	if *dumpZone != "" {
		apex, err := dnsmsg.ParseName(*dumpZone)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(2)
		}
		site, ok := w.Site(apex)
		if !ok {
			fmt.Fprintf(os.Stderr, "worldgen: no site %s in this world (try -sites/-seed)\n", apex)
			os.Exit(1)
		}
		if err := site.Zone().WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("world: %d sites, seed %d\n\n", *sites, *seed)
	fmt.Print(report.TableII())

	adopted := 0
	byProvider := make(map[dps.ProviderKey]int)
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key != "" {
			adopted++
			byProvider[key]++
		}
	}
	fmt.Printf("\ninitial adoption: %d/%d (%.2f%%)\n", adopted, *sites, 100*float64(adopted)/float64(*sites))
	for _, key := range dps.AllKeys() {
		if byProvider[key] == 0 {
			continue
		}
		p, _ := w.Provider(key)
		fmt.Printf("  %-11s %5d customers  %d edges  %d pool NS\n",
			key, byProvider[key], len(p.EdgeAddrs()), len(p.NSPool()))
	}
	sends, drops := w.Net.Stats()
	fmt.Printf("\nfabric: %d sends, %d drops during build\n", sends, drops)
}
