// Command dpsmeasure runs the paper's §IV usage-dynamics campaign over a
// simulated Internet: daily A/CNAME/NS collection, Table III status
// classification, Table IV behaviour detection, and the Table V
// JOIN/RESUME HTML verification. It prints the Fig. 2, Fig. 3, Fig. 5,
// Fig. 6, and Table V artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rrdps/internal/cmdutil"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 2000, "number of websites (the paper uses 1M; scale down)")
	days := flag.Int("days", 42, "measurement days (the paper runs six weeks)")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 1, "multiply all behaviour hazards (small worlds need >1 for dense figures)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallelism of the daily collection loop (1 = serial; snapshots are identical either way)")
	snapWindow := flag.Int("snap-window", 0, "snapshot-store retention in days: 0 = streaming default (2), <0 = keep every day replayable, >=2 = that many days")
	retries := flag.Int("retries", 3, "attempts per query (1 = no retries); backoff and health sidelining follow the default policy")
	hedge := flag.Bool("hedge", true, "hedge retried queries to an alternate nameserver when one is available")
	metrics := flag.String("metrics", "", "emit an observability dump after the campaign: text or json")
	metricsOut := flag.String("metrics-out", "", "write the -metrics dump to this file instead of stdout")
	pprofPrefix := flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles around the campaign body")
	flag.Parse()
	if *sites <= 0 || *days <= 0 || *boost <= 0 || *workers <= 0 || *retries <= 0 {
		fmt.Fprintln(os.Stderr, "dpsmeasure: -sites, -days, -churn-boost, -workers, and -retries must be positive")
		os.Exit(2)
	}
	policy := dnsresolver.DefaultPolicy()
	policy.MaxAttempts = *retries
	policy.Hedge = *hedge

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	cfg.JoinRate *= *boost
	cfg.LeaveRate *= *boost
	cfg.PauseRate *= *boost
	cfg.SwitchRate *= *boost

	fmt.Printf("building world: %d sites (seed %d)...\n", *sites, *seed)
	start := time.Now()
	w := world.New(cfg)
	fmt.Printf("world ready in %v; running %d-day campaign...\n\n", time.Since(start).Round(time.Millisecond), *days)

	reg := obs.NewRegistry()
	stopProfiles, err := cmdutil.StartProfiles(*pprofPrefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}

	res := experiment.Dynamics{World: w, Days: *days, Workers: *workers, Policy: &policy, Obs: reg, SnapWindow: *snapWindow}.Run()

	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(res.String())
	fmt.Printf("retry policy: %s\n", policy)
	fmt.Println(report.FaultSummary(res.Stats, res.Sidelined))
	fmt.Println(report.Figure2(res))
	fmt.Println(report.Figure3(res))
	fmt.Println(report.Figure5(res))
	fmt.Println(report.Figure6(res))
	fmt.Println(report.TableV(res))

	if err := cmdutil.EmitMetrics(reg, *metrics, *metricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}
}
