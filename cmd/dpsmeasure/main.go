// Command dpsmeasure runs the paper's §IV usage-dynamics campaign over a
// simulated Internet: daily A/CNAME/NS collection, Table III status
// classification, Table IV behaviour detection, and the Table V
// JOIN/RESUME HTML verification. It prints the Fig. 2, Fig. 3, Fig. 5,
// Fig. 6, and Table V artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 2000, "number of websites (the paper uses 1M; scale down)")
	days := flag.Int("days", 42, "measurement days (the paper runs six weeks)")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 1, "multiply all behaviour hazards (small worlds need >1 for dense figures)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallelism of the daily collection loop (1 = serial; snapshots are identical either way)")
	retries := flag.Int("retries", 3, "attempts per query (1 = no retries); backoff and health sidelining follow the default policy")
	hedge := flag.Bool("hedge", true, "hedge retried queries to an alternate nameserver when one is available")
	flag.Parse()
	if *sites <= 0 || *days <= 0 || *boost <= 0 || *workers <= 0 || *retries <= 0 {
		fmt.Fprintln(os.Stderr, "dpsmeasure: -sites, -days, -churn-boost, -workers, and -retries must be positive")
		os.Exit(2)
	}
	policy := dnsresolver.DefaultPolicy()
	policy.MaxAttempts = *retries
	policy.Hedge = *hedge

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	cfg.JoinRate *= *boost
	cfg.LeaveRate *= *boost
	cfg.PauseRate *= *boost
	cfg.SwitchRate *= *boost

	fmt.Printf("building world: %d sites (seed %d)...\n", *sites, *seed)
	start := time.Now()
	w := world.New(cfg)
	fmt.Printf("world ready in %v; running %d-day campaign...\n\n", time.Since(start).Round(time.Millisecond), *days)

	res := experiment.Dynamics{World: w, Days: *days, Workers: *workers, Policy: &policy}.Run()

	fmt.Println(res.String())
	fmt.Printf("retry policy: %s\n", policy)
	fmt.Println(report.FaultSummary(res.Stats, res.Sidelined))
	fmt.Println(report.Figure2(res))
	fmt.Println(report.Figure3(res))
	fmt.Println(report.Figure5(res))
	fmt.Println(report.Figure6(res))
	fmt.Println(report.TableV(res))
}
