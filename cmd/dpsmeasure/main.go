// Command dpsmeasure runs the paper's §IV usage-dynamics campaign over a
// simulated Internet: daily A/CNAME/NS collection, Table III status
// classification, Table IV behaviour detection, and the Table V
// JOIN/RESUME HTML verification. It prints the Fig. 2, Fig. 3, Fig. 5,
// Fig. 6, and Table V artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrdps/internal/cmdutil"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/obs"
	"rrdps/internal/scenario"
	"rrdps/internal/shardrun"
	"rrdps/internal/world"
)

// runFollow is the -follow daemon loop: append days until SIGTERM/SIGINT
// or -max-days, print a one-line summary per sealed day, then drain —
// finish the in-flight day, force a checkpoint, and hand back the result
// accumulated so far. Every sealed day is immediately visible to
// `rrserve -follow` readers tailing the checkpoint directory.
func runFollow(cfg experiment.Dynamics, cf *cmdutil.CampaignFlags) experiment.DynamicsResult {
	en := cfg.NewEngine()
	defer en.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)

	drain := func(why string) experiment.DynamicsResult {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %s; checkpointing and draining\n", why)
		en.Checkpoint()
		return en.Result()
	}
	appended := 0
	for {
		select {
		case s := <-sig:
			return drain(s.String())
		default:
		}
		day := en.NextDay()
		en.AppendDay()
		fmt.Println(report.DynamicsProgress(day, en.WorldDay(), en.LastBreakdown(), en.DayCounts(day)))
		appended++
		if cf.MaxDays > 0 && appended >= cf.MaxDays {
			return drain(fmt.Sprintf("-max-days %d reached", cf.MaxDays))
		}
		if cf.FollowInterval > 0 {
			select {
			case s := <-sig:
				return drain(s.String())
			case <-time.After(cf.FollowInterval):
			}
		}
	}
}

func main() {
	sites := flag.Int("sites", 2000, "number of websites (the paper uses 1M; scale down)")
	days := flag.Int("days", 42, "measurement days (the paper runs six weeks)")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 1, "multiply all behaviour hazards (small worlds need >1 for dense figures)")
	cf := cmdutil.RegisterCampaignFlags(flag.CommandLine,
		"snapshot-store retention in days: 0 = streaming default (2), <0 = keep every day replayable, >=2 = that many days")
	cf.ScenarioOwns("sites", "days", "seed", "churn-boost")
	flag.Parse()
	if *sites <= 0 || *days <= 0 || *boost <= 0 {
		fmt.Fprintln(os.Stderr, "dpsmeasure: -sites, -days, and -churn-boost must be positive")
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(2)
	}
	comp, err := cf.LoadScenario(scenario.CampaignDynamics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(2)
	}
	if cf.ValidateOnly {
		fmt.Printf("scenario %s ok (sha256:%s)\n", comp.Name(), comp.Hash())
		return
	}
	policy := cf.Policy()

	cfg := world.PaperConfig(*sites)
	cfg.Seed = *seed
	cfg.JoinRate *= *boost
	cfg.LeaveRate *= *boost
	cfg.PauseRate *= *boost
	cfg.SwitchRate *= *boost

	var scn *experiment.ScenarioInfo
	if comp != nil {
		// The spec owns the experiment shape; mirror it into the locals
		// the announcement lines and campaign construction read. The
		// provenance line goes to stderr so a scenario that reproduces the
		// default run keeps stdout byte-identical to it.
		cfg = comp.World
		policy = comp.Policy
		*sites, *days, *seed = cfg.NumSites, comp.Days, cfg.Seed
		scn = comp.Info
		fmt.Fprintf(os.Stderr, "dpsmeasure: scenario %s (sha256:%s)\n", comp.Name(), comp.Hash())
	}

	if cf.Resume {
		fmt.Fprintf(os.Stderr, "dpsmeasure: resuming campaign state from %s\n", cf.CheckpointDir)
	}

	reg := obs.NewRegistry()
	stopProfiles, err := cmdutil.StartProfiles(cf.PprofPrefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}

	var res experiment.DynamicsResult
	if cf.Shards > 1 {
		// Shard-parallel path: every shard builds its own world replica,
		// so there is no single world to announce up front.
		fmt.Printf("running %d-day campaign over %d sites in %d shards (seed %d)...\n\n",
			*days, *sites, cf.Shards, *seed)
		start := time.Now()
		run := shardrun.Dynamics{
			Config:          cfg,
			Days:            *days,
			Shards:          cf.Shards,
			ShardWorkers:    cf.ShardWorkers,
			Workers:         cf.Workers,
			Policy:          &policy,
			Obs:             reg,
			SnapWindow:      cf.SnapWindow,
			CheckpointDir:   cf.CheckpointDir,
			CheckpointEvery: cf.CheckpointEvery,
			Resume:          cf.Resume,
		}.Run()
		res = run.Merged
		fmt.Printf("sharded campaign done in %v\n\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("building world: %d sites (seed %d)...\n", *sites, *seed)
		start := time.Now()
		w := world.New(cfg)
		campaign := experiment.Dynamics{
			World:           w,
			Days:            *days,
			Workers:         cf.Workers,
			Policy:          &policy,
			Obs:             reg,
			SnapWindow:      cf.SnapWindow,
			Legacy:          cf.Legacy,
			CheckpointDir:   cf.CheckpointDir,
			CheckpointEvery: cf.CheckpointEvery,
			Resume:          cf.Resume,
			Scenario:        scn,
		}
		if cf.Follow {
			// Daemon mode has no horizon: -days is ignored, the engine
			// appends until SIGTERM or -max-days.
			campaign.Days = 0
			fmt.Printf("world ready in %v; following (SIGTERM to drain)...\n\n", time.Since(start).Round(time.Millisecond))
			res = runFollow(campaign, cf)
		} else {
			fmt.Printf("world ready in %v; running %d-day campaign...\n\n", time.Since(start).Round(time.Millisecond), *days)
			res = campaign.Run()
		}
	}

	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(res.String())
	fmt.Printf("retry policy: %s\n", policy)
	fmt.Println(report.FaultSummary(res.Stats, res.Sidelined))
	fmt.Println(report.Figure2(res))
	fmt.Println(report.Figure3(res))
	fmt.Println(report.Figure5(res))
	fmt.Println(report.Figure6(res))
	fmt.Println(report.TableV(res))

	if err := cmdutil.EmitMetrics(reg, cf.Metrics, cf.MetricsOut); err != nil {
		fmt.Fprintf(os.Stderr, "dpsmeasure: %v\n", err)
		os.Exit(1)
	}
}
