// Command rrserve is the residual-resolution lookup service: it loads a
// campaign checkpoint directory (written by dpsmeasure or rrscan with
// -checkpoint-dir) and answers exposure queries over HTTP.
//
//	GET /v1/domain/{apex}          current verdict + hidden records
//	GET /v1/domain/{apex}/history  record chain, detections, pause windows
//	GET /v1/domains                the served population, in rank order
//	GET /v1/stats                  store + campaign summary
//	GET /metrics                   request metrics (JSON)
//	GET /healthz                   liveness (never authenticated)
//
// Authentication is by API key (-api-keys), rate limiting by per-key
// token bucket (-rate/-burst). SIGINT/SIGTERM shut down gracefully,
// draining in-flight requests up to -drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rrdps/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8173", "listen address (host:port; :0 picks a free port)")
	dir := flag.String("checkpoint-dir", "", "campaign checkpoint directory to serve (read-only); required")
	keys := flag.String("api-keys", "", "comma-separated accepted API keys; empty disables authentication")
	rate := flag.Float64("rate", 50, "per-key request budget in requests/second (0 disables rate limiting)")
	burst := flag.Int("burst", 100, "per-key burst allowance on top of -rate")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
	follow := flag.Bool("follow", false, "tail -checkpoint-dir for new sealed rounds and swap epochs as they land (serve a live campaign)")
	poll := flag.Duration("poll", time.Second, "with -follow: how often to poll the checkpoint directory")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "rrserve: -checkpoint-dir is required")
		os.Exit(2)
	}
	if *rate < 0 || *burst < 0 || *drain <= 0 {
		fmt.Fprintln(os.Stderr, "rrserve: -rate and -burst must not be negative, -drain must be positive")
		os.Exit(2)
	}
	if *poll <= 0 {
		fmt.Fprintln(os.Stderr, "rrserve: -poll must be positive")
		os.Exit(2)
	}
	var apiKeys []string
	for _, k := range strings.Split(*keys, ",") {
		if k = strings.TrimSpace(k); k != "" {
			apiKeys = append(apiKeys, k)
		}
	}

	var src serve.Source
	if *follow {
		fs, err := serve.OpenFollow(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
			os.Exit(1)
		}
		fs.Start(*poll)
		defer fs.Close()
		if epoch, ok := fs.Epoch(); ok {
			day, _ := epoch.View.LatestDay()
			fmt.Printf("rrserve: following %s (%s campaign, day %d, %d apexes; poll %v)\n",
				*dir, epoch.State.Kind, day, epoch.View.Stats().Apexes, *poll)
		} else {
			fmt.Printf("rrserve: following %s (no sealed rounds yet; poll %v)\n", *dir, *poll)
		}
		src = fs
	} else {
		cs, err := serve.OpenCheckpoint(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
			os.Exit(1)
		}
		epoch, _ := cs.Epoch()
		day, _ := epoch.View.LatestDay()
		fmt.Printf("rrserve: loaded checkpoint %d from %s (%s campaign, day %d, %d apexes)\n",
			cs.Label(), *dir, epoch.State.Kind, day, epoch.View.Stats().Apexes)
		src = cs
	}
	if len(apiKeys) == 0 {
		fmt.Println("rrserve: warning: no -api-keys, serving unauthenticated")
	}

	srv := serve.New(serve.Config{
		Source:     src,
		APIKeys:    apiKeys,
		RatePerSec: *rate,
		Burst:      *burst,
	})

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("rrserve: %v, draining (up to %v)\n", sig, *drain)
		close(stop)
	}()

	err := srv.ListenAndServe(*addr, stop, *drain, func(bound string) {
		fmt.Printf("rrserve: serving on http://%s\n", bound)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rrserve: bye")
}
