// Command ddossim demonstrates the paper's threat model (Fig. 1) end to
// end on a simulated Internet:
//
//  1. A website protected by Cloudflare switches to Incapsula; Cloudflare
//     keeps a residual record.
//  2. A botnet floods the public (Incapsula) view: the scrubbing centers
//     absorb the attack and the site stays available — Fig. 1(a).
//  3. The attacker queries the old Cloudflare nameserver directly,
//     obtains the origin address (residual resolution), and floods the
//     origin: the site goes down despite its new DPS — Fig. 1(b).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rrdps/internal/attack"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 300, "population size")
	bots := flag.Int("bots", 60, "botnet size")
	ticks := flag.Int("ticks", 8, "attack duration in ticks")
	seed := flag.Int64("seed", 1815, "world seed")
	flag.Parse()

	if err := run(*sites, *bots, *ticks, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "ddossim: %v\n", err)
		os.Exit(1)
	}
}

func run(sites, bots, ticks int, seed int64) error {
	scrubber := attack.NewRateScrubber(3)
	cfg := world.PaperConfig(sites)
	cfg.Seed = seed
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	cfg.Scrubber = scrubber
	w := world.New(cfg)

	// Find a Cloudflare NS-rerouting customer — the victim.
	var victim *website.Site
	for _, s := range w.Sites() {
		key, method, _ := s.Provider()
		if key == dps.Cloudflare && method == dps.ReroutingNS {
			victim = s
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("no cloudflare NS customer in a %d-site world", sites)
	}
	host := victim.WWW()
	fmt.Printf("victim: %s (rank %d), protected by cloudflare (NS rerouting)\n", host, victim.Domain().Rank)

	// The victim switches to Incapsula — the residual-resolution setup.
	if err := victim.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		return fmt.Errorf("switching victim: %w", err)
	}
	fmt.Println("victim switches to incapsula; cloudflare retains a residual record")

	// Attacker reconnaissance.
	resolver := w.NewResolver(netsim.RegionOregon)
	pub, err := resolver.Resolve(host, dnsmsg.TypeA)
	if err != nil {
		return fmt.Errorf("public resolution: %w", err)
	}
	publicAddr := pub.Addrs()[0]
	matcher := match.New(w.Registry, dps.Profiles())
	pubKey, _ := matcher.MatchA(publicAddr)
	fmt.Printf("public DNS view: %s -> %v (%s edge)\n", host, publicAddr, pubKey)

	cf, _ := w.Provider(dps.Cloudflare)
	pool := cf.NSPool()
	nsAddr, _ := cf.NSPoolAddr(pool[0])
	client := dnsresolver.NewClient(w.Net, w.Alloc.NextAddr(), netsim.RegionTokyo, rand.New(rand.NewSource(seed)))
	resp, err := client.Exchange(nsAddr, host, dnsmsg.TypeA)
	if err != nil {
		return fmt.Errorf("residual query: %w", err)
	}
	leaked := resp.AnswersOfType(dnsmsg.TypeA)[0].Data.(dnsmsg.AData).Addr
	fmt.Printf("residual resolution: %s (old cloudflare NS) -> %v  <-- ORIGIN LEAKED\n\n", pool[0], leaked)

	// Put a capacity guard in front of the origin.
	guard := attack.NewCapacityGuard(victim.Origin(), 50)
	originEP := netsim.Endpoint{Addr: victim.OriginAddr(), Port: netsim.PortHTTP}
	w.Net.Register(originEP, netsim.RegionVirginia, guard)

	botnet := attack.NewBotnet(bots, w.Alloc.NextAddr, rand.New(rand.NewSource(seed+1)))
	legit := w.NewHTTPClient(netsim.RegionLondon)

	scenario := attack.Scenario{
		Network:        w.Net,
		TargetHost:     string(host),
		Botnet:         botnet,
		RequestsPerBot: 10,
		Ticks:          ticks,
		LegitClient:    legit,
		LegitAddr:      publicAddr,
		Tickers:        []interface{ Tick() }{scrubber, guard},
	}

	// Fig. 1(a): flood the DPS edge.
	scenario.TargetAddr = publicAddr
	protected := scenario.Run()
	fmt.Printf("fig. 1(a) — flood aimed at the DPS edge (%d bots x %d req x %d ticks):\n",
		bots, 10, ticks)
	fmt.Printf("  attack: %d sent, %d scrubbed/dropped (%.0f%%)\n",
		protected.AttackSent, protected.AttackDropped,
		100*float64(protected.AttackDropped)/float64(protected.AttackSent))
	fmt.Printf("  site availability: %.0f%%  (origin overload ticks: %d)\n\n",
		protected.Availability()*100, guard.OverloadTicks())

	// Fig. 1(b): flood the leaked origin. Let the edge's content cache
	// expire first so availability probes exercise the full path.
	w.Clock.Advance(10 * time.Minute)
	scenario.TargetAddr = leaked
	bypass := scenario.Run()
	fmt.Printf("fig. 1(b) — flood aimed at the leaked origin %v:\n", leaked)
	fmt.Printf("  attack: %d sent, %d dropped by exhausted origin\n",
		bypass.AttackSent, bypass.AttackDropped)
	fmt.Printf("  site availability: %.0f%%  (origin overload ticks: %d)\n",
		bypass.Availability()*100, guard.OverloadTicks())
	if bypass.Availability() < protected.Availability() {
		fmt.Println("\nresidual resolution nullified the new DPS protection.")
	}
	return nil
}
