// Command reportgen runs both measurement campaigns on one world and
// writes the complete artifact bundle — every table and figure the paper
// reports, in text and CSV form — to a directory.
//
//	go run ./cmd/reportgen -out ./artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func main() {
	sites := flag.Int("sites", 3000, "number of websites")
	days := flag.Int("days", 42, "usage-dynamics campaign days")
	weeks := flag.Int("weeks", 6, "residual-resolution scan weeks")
	seed := flag.Int64("seed", 1815, "world seed")
	boost := flag.Float64("churn-boost", 12, "behaviour hazard multiplier")
	out := flag.String("out", "artifacts", "output directory")
	flag.Parse()

	if err := run(*sites, *days, *weeks, *seed, *boost, *out); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
		os.Exit(1)
	}
}

func run(sites, days, weeks int, seed int64, boost float64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	build := func(extraSeed int64) *world.World {
		cfg := world.PaperConfig(sites)
		cfg.Seed = seed + extraSeed
		cfg.JoinRate *= boost
		cfg.LeaveRate *= boost
		cfg.PauseRate *= boost
		cfg.SwitchRate *= boost
		return world.New(cfg)
	}

	start := time.Now()
	fmt.Printf("running %d-day dynamics campaign on %d sites...\n", days, sites)
	dyn := experiment.Dynamics{World: build(0), Days: days}.Run()

	fmt.Printf("running %d-week residual campaign...\n", weeks)
	w2 := build(1)
	res := experiment.Residual{World: w2, Weeks: weeks, WarmupDays: 42}.Run()

	files := map[string]string{
		"table2.txt":  report.TableII(),
		"table3.txt":  report.TableIII(),
		"table4.txt":  report.TableIV(),
		"figure2.txt": report.Figure2(dyn),
		"figure2.csv": report.Figure2CSV(dyn),
		"figure3.txt": report.Figure3(dyn),
		"figure3.csv": report.Figure3CSV(dyn),
		"figure5.txt": report.Figure5(dyn),
		"figure5.csv": report.Figure5CSV(dyn),
		"figure6.txt": report.Figure6(dyn),
		"table5.txt":  report.TableV(dyn),
		"table5.csv":  report.TableVCSV(dyn),
		"table6.txt":  report.TableVI(res),
		"table6.csv":  report.TableVICSV(res),
		"figure9.txt": report.Figure9(res),
		"figure9.csv": report.Figure9CSV(res),
	}
	if cf, ok := w2.Provider(dps.Cloudflare); ok {
		if pool := cf.NSPool(); len(pool) > 0 {
			if addr, ok := cf.NSPoolAddr(pool[0]); ok {
				counts := w2.Net.QueryCounts(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS})
				files["figure7.txt"] = report.Figure7(counts)
			}
		}
	}

	for name, content := range files {
		if err := os.WriteFile(filepath.Join(out, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d artifacts to %s in %v\n", len(files), out, time.Since(start).Round(time.Millisecond))
	fmt.Println(dyn.String())
	fmt.Println(res.String())
	return nil
}
