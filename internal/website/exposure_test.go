package website

import (
	"strings"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
)

func newExposedSite(t *testing.T, f *fixture, apex string, exp Exposure) *Site {
	t.Helper()
	s, err := NewExposed(f.infra, alexa.Domain{Rank: 1, Apex: dnsmsg.MustParseName(apex)},
		netsim.RegionVirginia, httpsim.Page{Title: "T", Meta: map[string]string{"description": "d"}}, exp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExposureSubdomainRecords(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{Subdomains: []string{"dev"}, MailRecord: true})
	devA := s.Zone().Get("dev.shop.com", dnsmsg.TypeA)
	if len(devA) != 1 || devA[0].Data.(dnsmsg.AData).Addr != s.OriginAddr() {
		t.Fatalf("dev A = %v", devA)
	}
	mailA := s.Zone().Get("mail.shop.com", dnsmsg.TypeA)
	if len(mailA) != 1 || mailA[0].Data.(dnsmsg.AData).Addr != s.OriginAddr() {
		t.Fatalf("mail A = %v", mailA)
	}
}

func TestExposureRecordsFollowNSJoin(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{Subdomains: []string{"dev"}, MailRecord: true})
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	// The provider-hosted zone carries the unproxied records.
	cf := f.infra.Providers[dps.Cloudflare]
	rr := dnsmsg.NewA("dev.shop.com", DefaultATTL, s.OriginAddr())
	// Upserting the identical record must be possible (zone exists and
	// already holds it); its presence is checked via a direct query in
	// the dps package tests. Here check the error-free path.
	if err := cf.UpsertHostedRecord("shop.com", rr); err != nil {
		t.Fatalf("hosted zone missing exposure records: %v", err)
	}
}

func TestExposureBodyLeakTracksOrigin(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{BodyLeak: true})
	if !strings.Contains(s.Page().Body, s.OriginAddr().String()) {
		t.Fatalf("body %q missing origin", s.Page().Body)
	}
	old := s.OriginAddr()
	newAddr, err := s.ChangeOriginIP()
	if err != nil {
		t.Fatal(err)
	}
	body := s.Page().Body
	if !strings.Contains(body, newAddr.String()) {
		t.Fatalf("body %q missing new origin", body)
	}
	if strings.Contains(body, old.String()) {
		t.Fatalf("body %q still leaks old origin", body)
	}
}

func TestExposureCertificateFollowsOrigin(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{Certificate: true})
	subjects, err := httpsim.ProbeCert(f.net, s.OriginAddr().Next(), netsim.RegionOregon, s.OriginAddr())
	if err != nil {
		t.Fatal(err)
	}
	if len(subjects) != 2 {
		t.Fatalf("subjects = %v", subjects)
	}
	old := s.OriginAddr()
	newAddr, err := s.ChangeOriginIP()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := httpsim.ProbeCert(f.net, newAddr.Next(), netsim.RegionOregon, old); err == nil {
		t.Fatal("old address still presents a certificate")
	}
	subjects, err = httpsim.ProbeCert(f.net, old, netsim.RegionOregon, newAddr)
	if err != nil || len(subjects) != 2 {
		t.Fatalf("new address cert: %v, %v", subjects, err)
	}
}

func TestExposureSensitiveFileTracksOrigin(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{SensitiveFile: true})
	client := httpsim.NewClient(f.net, s.OriginAddr().Next(), netsim.RegionOregon)
	resp, err := client.Get(s.OriginAddr(), "www.shop.com", SensitiveFilePath)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("file fetch: %v %d", err, resp.StatusCode)
	}
	if !strings.Contains(resp.Body, s.OriginAddr().String()) {
		t.Fatalf("file %q missing origin", resp.Body)
	}
}

func TestExposureAccessorCopies(t *testing.T) {
	f := newFixture(t)
	s := newExposedSite(t, f, "shop.com", Exposure{Subdomains: []string{"dev"}})
	exp := s.Exposure()
	exp.Subdomains[0] = "mutated"
	if s.Exposure().Subdomains[0] != "dev" {
		t.Fatal("Exposure() leaked internal slice")
	}
	if !exp.Any() {
		t.Fatal("Any() false for subdomain exposure")
	}
	if (Exposure{}).Any() {
		t.Fatal("Any() true for zero exposure")
	}
}
