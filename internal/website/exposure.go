package website

import (
	"fmt"
	"net/netip"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
)

// Exposure describes the origin-exposure attack surface a site carries
// beyond plain DNS (paper Table I). Each flag corresponds to one vector;
// the internal/vectors scanners exploit them.
type Exposure struct {
	// Subdomains are extra labels (e.g. "dev", "staging") whose A records
	// keep pointing at the origin even while www is behind a DPS — the
	// admin forgot to proxy them.
	Subdomains []string
	// MailRecord adds an A record for the MX host at the origin address
	// ("DNS records" vector).
	MailRecord bool
	// BodyLeak embeds the origin address in the landing page body
	// ("origin in content" vector).
	BodyLeak bool
	// SensitiveFile serves a config remnant at /backup.cfg containing the
	// origin address ("sensitive files" vector).
	SensitiveFile bool
	// Certificate presents a TLS certificate for the site's names on the
	// origin address ("SSL certificates" vector).
	Certificate bool
	// Pingback enables the outbound-connection endpoint ("outbound
	// connection" vector).
	Pingback bool
}

// Any reports whether at least one vector is enabled.
func (e Exposure) Any() bool {
	return len(e.Subdomains) > 0 || e.MailRecord || e.BodyLeak ||
		e.SensitiveFile || e.Certificate || e.Pingback
}

// SensitiveFilePath is where the config remnant is served.
const SensitiveFilePath = "/backup.cfg"

// bodyLeakLine renders the in-page origin leak.
func bodyLeakLine(addr netip.Addr) string {
	return fmt.Sprintf("<!-- served-by: %v -->", addr)
}

// sensitiveFileBody renders the config remnant.
func sensitiveFileBody(addr netip.Addr) string {
	return fmt.Sprintf("# legacy backup configuration\ndb_host=%v\n", addr)
}

// applyExposureLocked (re)applies address-dependent exposure artifacts
// after creation or an origin move.
func (s *Site) applyExposureLocked(page httpsim.Page) {
	addr := s.originAddr
	if s.exposure.BodyLeak {
		page.Body += "\n" + bodyLeakLine(addr)
	}
	s.origin.SetPage(page)
	if s.exposure.SensitiveFile {
		s.origin.SetFiles(map[string]string{SensitiveFilePath: sensitiveFileBody(addr)})
	}
	if s.exposure.Pingback {
		s.origin.SetPingback(httpsim.NewClient(s.infra.Network, addr, s.region))
	}
	if s.exposure.Certificate {
		if s.certServer == nil {
			s.certServer = httpsim.NewCertServer(string(s.domain.Apex), string(s.domain.WWW()))
		}
		s.infra.Network.Register(
			netsim.Endpoint{Addr: addr, Port: httpsim.PortHTTPS}, s.region, s.certServer)
	}
}

// exposureRecordsLocked returns the zone records the exposure adds, built
// against the current origin address.
func (s *Site) exposureRecordsLocked() []dnsmsg.RR {
	var out []dnsmsg.RR
	for _, label := range s.exposure.Subdomains {
		out = append(out, dnsmsg.NewA(s.domain.Apex.Child(label), DefaultATTL, s.originAddr))
	}
	if s.exposure.MailRecord {
		out = append(out, dnsmsg.NewA(s.domain.Apex.Child("mail"), DefaultATTL, s.originAddr))
	}
	return out
}

// syncExposureRecordsLocked writes the exposure records into the site's
// own zone and, when the site is NS-rerouted, into the provider-hosted
// zone (as unproxied records), mirroring an admin importing their zone.
func (s *Site) syncExposureRecordsLocked() error {
	records := s.exposureRecordsLocked()
	for _, rr := range records {
		mustZoneSet(s.zone, rr)
	}
	if s.provider == "" || s.method != dps.ReroutingNS {
		return nil
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return err
	}
	for _, rr := range records {
		if err := p.UpsertHostedRecord(s.domain.Apex, rr); err != nil {
			return fmt.Errorf("syncing exposure records: %w", err)
		}
	}
	// The MX record itself also rides along into the hosted zone.
	for _, mx := range s.zone.Get(s.domain.Apex, dnsmsg.TypeMX) {
		if err := p.UpsertHostedRecord(s.domain.Apex, mx); err != nil {
			return fmt.Errorf("syncing MX record: %w", err)
		}
	}
	return nil
}

// Exposure returns the site's exposure profile.
func (s *Site) Exposure() Exposure {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp := s.exposure
	exp.Subdomains = append([]string(nil), s.exposure.Subdomains...)
	return exp
}
