package website

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// fakeRegistrar records delegations.
type fakeRegistrar struct {
	delegations map[dnsmsg.Name][]dnsmsg.Name
}

func (f *fakeRegistrar) SetDelegation(apex dnsmsg.Name, hosts []dnsmsg.Name) error {
	if f.delegations == nil {
		f.delegations = make(map[dnsmsg.Name][]dnsmsg.Name)
	}
	f.delegations[apex] = append([]dnsmsg.Name(nil), hosts...)
	return nil
}

type fixture struct {
	clock     *simtime.Simulated
	net       *netsim.Network
	alloc     *ipspace.Allocator
	registry  *ipspace.Registry
	registrar *fakeRegistrar
	infra     *Infra
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		clock:     simtime.NewSimulated(),
		alloc:     ipspace.NewAllocator(netip.MustParseAddr("20.0.0.0")),
		registry:  ipspace.NewRegistry(),
		registrar: &fakeRegistrar{},
	}
	f.net = netsim.New(netsim.Config{Clock: f.clock})

	// ISP space for origins.
	f.registry.AddAS(64500, "isp")
	originPrefix := f.alloc.NextPrefix(16)
	f.registry.MustAnnounce(64500, originPrefix)
	originSeq := 0
	newOrigin := func() netip.Addr {
		a := ipspace.NthAddr(originPrefix, originSeq)
		originSeq++
		return a
	}

	providers := make(map[dps.ProviderKey]*dps.Provider)
	for i, key := range []dps.ProviderKey{dps.Cloudflare, dps.Incapsula, dps.Fastly, dps.DOSarrest} {
		profile, _ := dps.ProfileFor(key)
		providers[key] = dps.New(dps.Config{
			Profile:  profile,
			Network:  f.net,
			Clock:    f.clock,
			Alloc:    f.alloc,
			Registry: f.registry,
			Rand:     rand.New(rand.NewSource(int64(100 + i))),
		})
	}

	hosting := dnsserver.New(dnsserver.Config{Name: "basic-hosting"})
	f.infra = &Infra{
		Network:       f.net,
		Clock:         f.clock,
		Registrar:     f.registrar,
		Hosting:       hosting,
		HostingNS:     []dnsmsg.Name{"ns1.webhost.net", "ns2.webhost.net"},
		Providers:     providers,
		NewOriginAddr: newOrigin,
	}
	return f
}

func newSite(t *testing.T, f *fixture, apex string) *Site {
	t.Helper()
	s, err := New(f.infra, alexa.Domain{Rank: 1, Apex: dnsmsg.MustParseName(apex)},
		netsim.RegionVirginia, httpsim.Page{Title: "T-" + apex, Meta: map[string]string{"description": apex}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wwwA(t *testing.T, s *Site) (netip.Addr, bool) {
	t.Helper()
	rrs := s.Zone().Get(s.WWW(), dnsmsg.TypeA)
	if len(rrs) == 0 {
		return netip.Addr{}, false
	}
	return rrs[0].Data.(dnsmsg.AData).Addr, true
}

func TestNewSiteZoneAndDelegation(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	addr, ok := wwwA(t, s)
	if !ok || addr != s.OriginAddr() {
		t.Fatalf("www A = %v, want origin %v", addr, s.OriginAddr())
	}
	if got := f.registrar.delegations["shop.com"]; len(got) != 2 || got[0] != "ns1.webhost.net" {
		t.Fatalf("delegation = %v", got)
	}
	if len(s.Zone().Get("shop.com", dnsmsg.TypeMX)) != 1 {
		t.Fatal("missing MX record")
	}
	if s.Protected() {
		t.Fatal("fresh site reports protected")
	}
}

func TestJoinAMethod(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.DOSarrest, dps.ReroutingA, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	addr, _ := wwwA(t, s)
	if !f.registry.Contains(19324, addr) {
		t.Fatalf("www A %v not in DOSarrest space", addr)
	}
	if !s.Protected() {
		t.Fatal("not protected after join")
	}
}

func TestJoinCNAMEMethod(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if _, hasA := wwwA(t, s); hasA {
		t.Fatal("www still has an A record after CNAME join")
	}
	cn := s.Zone().Get(s.WWW(), dnsmsg.TypeCNAME)
	if len(cn) != 1 || !cn[0].Data.(dnsmsg.CNAMEData).Target.ContainsSubstring("incapdns") {
		t.Fatalf("www CNAME = %v", cn)
	}
	apexA := s.Zone().Get("shop.com", dnsmsg.TypeA)
	if len(apexA) != 1 || !f.registry.Contains(19551, apexA[0].Data.(dnsmsg.AData).Addr) {
		t.Fatalf("apex A = %v, want flattened edge", apexA)
	}
}

func TestJoinNSMethod(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	got := f.registrar.delegations["shop.com"]
	if len(got) != 2 || !got[0].ContainsSubstring("cloudflare") {
		t.Fatalf("delegation = %v", got)
	}
}

func TestJoinTwiceFails(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree); !errors.Is(err, ErrHasDPS) {
		t.Fatalf("err = %v, want ErrHasDPS", err)
	}
}

func TestJoinUnsupportedMethodSurfaced(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Incapsula, dps.ReroutingNS, dps.PlanFree); !errors.Is(err, dps.ErrUnsupportedMethod) {
		t.Fatalf("err = %v, want dps.ErrUnsupportedMethod", err)
	}
}

func TestPauseResume(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if s.Protected() {
		t.Fatal("paused site reports protected")
	}
	key, _, paused := s.Provider()
	if key != dps.Cloudflare || !paused {
		t.Fatalf("Provider() = %v, %v", key, paused)
	}
	if err := s.Pause(); !errors.Is(err, ErrPaused) {
		t.Fatalf("double pause err = %v", err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if !s.Protected() {
		t.Fatal("resumed site not protected")
	}
	if err := s.Resume(); !errors.Is(err, ErrNotPaused) {
		t.Fatalf("double resume err = %v", err)
	}
}

func TestLeaveRestoresSelfHosting(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(true); err != nil {
		t.Fatal(err)
	}
	if got := f.registrar.delegations["shop.com"]; got[0] != "ns1.webhost.net" {
		t.Fatalf("delegation after leave = %v", got)
	}
	addr, _ := wwwA(t, s)
	if addr != s.OriginAddr() {
		t.Fatalf("www A after leave = %v, want origin", addr)
	}
	// The previous provider retains a residual (terminated) record.
	cf := f.infra.Providers[dps.Cloudflare]
	c, ok := cf.Customer("shop.com")
	if !ok || c.State != dps.StateTerminated || !c.Notified {
		t.Fatalf("cloudflare customer after leave = %+v, %v", c, ok)
	}
	if err := s.Leave(true); !errors.Is(err, ErrNoDPS) {
		t.Fatalf("double leave err = %v", err)
	}
}

func TestLeaveCNAMERestoresARecord(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(true); err != nil {
		t.Fatal(err)
	}
	if cn := s.Zone().Get(s.WWW(), dnsmsg.TypeCNAME); len(cn) != 0 {
		t.Fatalf("www CNAME survived leave: %v", cn)
	}
	addr, ok := wwwA(t, s)
	if !ok || addr != s.OriginAddr() {
		t.Fatalf("www A = %v, %v", addr, ok)
	}
}

func TestSwitchProviders(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}
	key, method, _ := s.Provider()
	if key != dps.Incapsula || method != dps.ReroutingCNAME {
		t.Fatalf("after switch: %v %v", key, method)
	}
	// Old provider holds a terminated (residual) record — the attack
	// surface of §V.
	cf := f.infra.Providers[dps.Cloudflare]
	if c, ok := cf.Customer("shop.com"); !ok || c.State != dps.StateTerminated {
		t.Fatalf("old provider customer = %+v, %v", c, ok)
	}
	// Delegation restored to hosting (CNAME rerouting keeps own NS).
	if got := f.registrar.delegations["shop.com"]; got[0] != "ns1.webhost.net" {
		t.Fatalf("delegation after switch = %v", got)
	}
}

func TestSwitchToSelfFails(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.Switch(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree, true); err == nil {
		t.Fatal("switch to same provider succeeded")
	}
}

func TestChangeOriginIPUnprotected(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	old := s.OriginAddr()
	newAddr, err := s.ChangeOriginIP()
	if err != nil {
		t.Fatal(err)
	}
	if newAddr == old {
		t.Fatal("origin address did not change")
	}
	if addr, _ := wwwA(t, s); addr != newAddr {
		t.Fatalf("www A = %v, want %v", addr, newAddr)
	}
	// Old endpoint is gone; new one serves.
	client := httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.4"), netsim.RegionOregon)
	if _, err := client.Get(old, "www.shop.com", "/"); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("old origin err = %v, want unreachable", err)
	}
	resp, err := client.Get(newAddr, "www.shop.com", "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("new origin: %v %d", err, resp.StatusCode)
	}
}

func TestChangeOriginIPUpdatesProvider(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	newAddr, err := s.ChangeOriginIP()
	if err != nil {
		t.Fatal(err)
	}
	cf := f.infra.Providers[dps.Cloudflare]
	c, _ := cf.Customer("shop.com")
	if c.Origin != newAddr {
		t.Fatalf("provider origin = %v, want %v", c.Origin, newAddr)
	}
}

func TestRestrictToProviderEdges(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join(dps.Cloudflare, dps.ReroutingNS, dps.PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := s.RestrictToProviderEdges(); err != nil {
		t.Fatal(err)
	}
	client := httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.4"), netsim.RegionOregon)
	resp, err := client.Get(s.OriginAddr(), "www.shop.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("direct fetch status = %d, want 403", resp.StatusCode)
	}
	// Via the provider edge it still works.
	cf := f.infra.Providers[dps.Cloudflare]
	c, _ := cf.Customer("shop.com")
	resp, err = client.Get(c.EdgeAddr, "www.shop.com", "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("via edge: %v %d", err, resp.StatusCode)
	}
	// Leaving clears the restriction.
	if err := s.Leave(true); err != nil {
		t.Fatal(err)
	}
	if err := s.RestrictToProviderEdges(); err != nil {
		t.Fatal(err)
	}
	resp, _ = client.Get(s.OriginAddr(), "www.shop.com", "/")
	if resp.StatusCode != 200 {
		t.Fatalf("after clearing: %d", resp.StatusCode)
	}
}

func TestNewSiteIncompleteInfra(t *testing.T) {
	if _, err := New(&Infra{}, alexa.Domain{Rank: 1, Apex: "x.com"}, netsim.RegionOregon, httpsim.Page{}); err == nil {
		t.Fatal("New with empty infra succeeded")
	}
}

func TestJoinUnknownProvider(t *testing.T) {
	f := newFixture(t)
	s := newSite(t, f, "shop.com")
	if err := s.Join("nonesuch", dps.ReroutingNS, dps.PlanFree); err == nil {
		t.Fatal("join unknown provider succeeded")
	}
}
