// Package website models DPS customers: origin web servers, the sites'
// own DNS zones at a basic hosting provider, and the administrator
// operations (join, leave, pause, resume, switch, origin-IP change) whose
// aggregate dynamics the paper measures in §IV.
package website

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dnszone"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// Record TTLs for site-owned zones. NS TTLs are long (the paper notes this
// is why stale NS records linger in resolver caches, §VI-A).
const (
	DefaultATTL     = 5 * time.Minute
	DefaultCNAMETTL = time.Hour
	DefaultNSTTL    = 24 * time.Hour
)

// Registrar changes a domain's parent-zone delegation; the world
// implements it over the TLD zones.
type Registrar interface {
	// SetDelegation replaces apex's NS records in its parent zone.
	SetDelegation(apex dnsmsg.Name, hosts []dnsmsg.Name) error
}

// Site errors.
var (
	ErrNoDPS     = errors.New("website: site has no DPS provider")
	ErrHasDPS    = errors.New("website: site already has a DPS provider")
	ErrNotPaused = errors.New("website: site is not paused")
	ErrPaused    = errors.New("website: operation invalid while paused")
)

// Infra bundles the environment a site operates in; the world builds one
// and shares it across all sites.
type Infra struct {
	Network   *netsim.Network
	Clock     simtime.Clock
	Registrar Registrar
	// Hosting is the basic DNS hosting service that serves sites' own
	// zones (a registrar-style DNS host).
	Hosting *dnsserver.Server
	// HostingNS are the hosting service's nameserver hostnames.
	HostingNS []dnsmsg.Name
	// Providers maps keys to running DPS providers.
	Providers map[dps.ProviderKey]*dps.Provider
	// NewOriginAddr allocates a fresh origin address inside an ISP's
	// announced space.
	NewOriginAddr func() netip.Addr
}

func (in *Infra) validate() error {
	if in == nil || in.Network == nil || in.Clock == nil || in.Registrar == nil ||
		in.Hosting == nil || len(in.HostingNS) == 0 || in.NewOriginAddr == nil {
		return errors.New("website: incomplete Infra")
	}
	return nil
}

func (in *Infra) provider(key dps.ProviderKey) (*dps.Provider, error) {
	p, ok := in.Providers[key]
	if !ok {
		return nil, fmt.Errorf("website: unknown provider %q", key)
	}
	return p, nil
}

// Site is one website: an origin server plus DNS configuration. It is safe
// for concurrent use.
type Site struct {
	infra  *Infra
	domain alexa.Domain
	region netsim.Region

	mu         sync.Mutex
	origin     *httpsim.Origin
	originAddr netip.Addr
	zone       *dnszone.Zone

	provider dps.ProviderKey // "" when unprotected
	method   dps.Rerouting
	plan     dps.Plan
	paused   bool

	// basePage is the landing page without address-dependent artifacts;
	// exposure re-renders from it after origin moves.
	basePage   httpsim.Page
	exposure   Exposure
	certServer *httpsim.CertServer
}

// New creates a site: it spins up the origin at a fresh address, builds
// the site's own zone at the hosting service, and delegates the apex to
// the hosting nameservers.
func New(infra *Infra, domain alexa.Domain, region netsim.Region, page httpsim.Page) (*Site, error) {
	return NewExposed(infra, domain, region, page, Exposure{})
}

// NewExposed is New with an explicit origin-exposure profile (Table I
// vectors); see Exposure.
func NewExposed(infra *Infra, domain alexa.Domain, region netsim.Region, page httpsim.Page, exp Exposure) (*Site, error) {
	if err := infra.validate(); err != nil {
		return nil, err
	}
	s := &Site{
		infra:      infra,
		domain:     domain,
		region:     region,
		originAddr: infra.NewOriginAddr(),
		basePage:   page,
		exposure:   exp,
	}
	s.origin = httpsim.NewOrigin(httpsim.OriginConfig{Page: page})
	infra.Network.Register(netsim.Endpoint{Addr: s.originAddr, Port: netsim.PortHTTP}, region, s.origin)
	s.applyExposureLocked(page)

	s.zone = dnszone.New(domain.Apex, dnsmsg.SOAData{
		MName:  infra.HostingNS[0],
		RName:  domain.Apex.Child("hostmaster"),
		Serial: 1, Minimum: 300,
	})
	for _, h := range infra.HostingNS {
		s.zone.MustAdd(dnsmsg.NewNS(domain.Apex, DefaultNSTTL, h))
	}
	s.pointOwnRecordsAtLocked(s.originAddr)
	s.zone.MustAdd(dnsmsg.NewMX(domain.Apex, DefaultATTL, 10, domain.Apex.Child("mail")))
	if err := s.syncExposureRecordsLocked(); err != nil {
		return nil, err
	}
	infra.Hosting.AddZone(s.zone)

	if err := infra.Registrar.SetDelegation(domain.Apex, infra.HostingNS); err != nil {
		return nil, fmt.Errorf("delegating %s: %w", domain.Apex, err)
	}
	return s, nil
}

// Domain returns the site's ranked domain.
func (s *Site) Domain() alexa.Domain { return s.domain }

// WWW returns the site's portal hostname.
func (s *Site) WWW() dnsmsg.Name { return s.domain.WWW() }

// OriginAddr returns the current origin address (ground truth for
// verifying the measurement pipeline).
func (s *Site) OriginAddr() netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.originAddr
}

// Origin returns the site's origin server.
func (s *Site) Origin() *httpsim.Origin { return s.origin }

// Page returns the landing page currently served.
func (s *Site) Page() httpsim.Page { return s.origin.Page() }

// Provider returns the current DPS provider key ("" if none), the
// rerouting method, and whether protection is paused.
func (s *Site) Provider() (key dps.ProviderKey, method dps.Rerouting, paused bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.provider, s.method, s.paused
}

// Protected reports whether the site is on a DPS platform with protection
// active (status ON in Table III terms).
func (s *Site) Protected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.provider != "" && !s.paused
}

// pointOwnRecordsAtLocked sets the site-owned www and apex A records.
func (s *Site) pointOwnRecordsAtLocked(addr netip.Addr) {
	www := s.domain.WWW()
	s.zone.Remove(www, dnsmsg.TypeCNAME)
	mustZoneSet(s.zone, dnsmsg.NewA(www, DefaultATTL, addr))
	mustZoneSet(s.zone, dnsmsg.NewA(s.domain.Apex, DefaultATTL, addr))
}

func mustZoneSet(z *dnszone.Zone, rr dnsmsg.RR) {
	if err := z.Set(rr.Name, rr.Type(), rr); err != nil {
		panic(fmt.Sprintf("website: %v", err))
	}
}

// Join enrolls the site at provider with the given method and plan and
// applies the corresponding DNS change (§II-A.2).
func (s *Site) Join(key dps.ProviderKey, method dps.Rerouting, plan dps.Plan) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider != "" {
		return fmt.Errorf("joining %s: %w", key, ErrHasDPS)
	}
	return s.joinLocked(key, method, plan)
}

func (s *Site) joinLocked(key dps.ProviderKey, method dps.Rerouting, plan dps.Plan) error {
	p, err := s.infra.provider(key)
	if err != nil {
		return err
	}
	asg, err := p.Enroll(s.domain.Apex, s.originAddr, method, plan)
	if err != nil {
		return fmt.Errorf("joining %s: %w", key, err)
	}
	www := s.domain.WWW()
	switch method {
	case dps.ReroutingA:
		mustZoneSet(s.zone, dnsmsg.NewA(www, DefaultATTL, asg.EdgeAddr))
		mustZoneSet(s.zone, dnsmsg.NewA(s.domain.Apex, DefaultATTL, asg.EdgeAddr))
	case dps.ReroutingCNAME:
		s.zone.Remove(www, dnsmsg.TypeA)
		mustZoneSet(s.zone, dnsmsg.NewCNAME(www, DefaultCNAMETTL, asg.CNAMETarget))
		// The apex cannot alias; providers flatten it to an edge address.
		mustZoneSet(s.zone, dnsmsg.NewA(s.domain.Apex, DefaultATTL, asg.EdgeAddr))
	case dps.ReroutingNS:
		if err := s.infra.Registrar.SetDelegation(s.domain.Apex, asg.NSHosts); err != nil {
			return fmt.Errorf("joining %s: %w", key, err)
		}
	}
	s.provider = key
	s.method = method
	s.plan = plan
	s.paused = false
	if method == dps.ReroutingNS && s.exposure.Any() {
		if err := s.syncExposureRecordsLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Leave terminates the DPS service and restores self-hosted DNS. When
// notified is false the site walks away without telling the provider
// (footnote 9).
func (s *Site) Leave(notified bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		return fmt.Errorf("leaving: %w", ErrNoDPS)
	}
	return s.leaveLocked(notified)
}

func (s *Site) leaveLocked(notified bool) error {
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return err
	}
	if err := p.Terminate(s.domain.Apex, notified); err != nil {
		return fmt.Errorf("leaving %s: %w", s.provider, err)
	}
	// Restore self-hosted records and delegation.
	s.pointOwnRecordsAtLocked(s.originAddr)
	if s.method == dps.ReroutingNS {
		if err := s.infra.Registrar.SetDelegation(s.domain.Apex, s.infra.HostingNS); err != nil {
			return fmt.Errorf("leaving %s: %w", s.provider, err)
		}
	}
	s.provider = ""
	s.method = 0
	s.paused = false
	return nil
}

// Switch moves the site from its current provider to another in one step
// (the SWITCH behaviour of Table IV). notifiedOld controls whether the old
// provider learns about it.
func (s *Site) Switch(to dps.ProviderKey, method dps.Rerouting, plan dps.Plan, notifiedOld bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		return fmt.Errorf("switching: %w", ErrNoDPS)
	}
	if s.provider == to {
		return fmt.Errorf("switching %s to itself: %w", to, ErrHasDPS)
	}
	if err := s.leaveLocked(notifiedOld); err != nil {
		return err
	}
	return s.joinLocked(to, method, plan)
}

// Pause temporarily disables protection (status ON → OFF).
func (s *Site) Pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		return fmt.Errorf("pausing: %w", ErrNoDPS)
	}
	if s.paused {
		return fmt.Errorf("pausing: %w", ErrPaused)
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return err
	}
	if err := p.Pause(s.domain.Apex); err != nil {
		return fmt.Errorf("pausing at %s: %w", s.provider, err)
	}
	s.paused = true
	return nil
}

// Resume re-enables paused protection (OFF → ON).
func (s *Site) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		return fmt.Errorf("resuming: %w", ErrNoDPS)
	}
	if !s.paused {
		return fmt.Errorf("resuming: %w", ErrNotPaused)
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return err
	}
	if err := p.Resume(s.domain.Apex); err != nil {
		return fmt.Errorf("resuming at %s: %w", s.provider, err)
	}
	s.paused = false
	return nil
}

// ChangeOriginIP moves the origin to a fresh address — the §IV-C.3 best
// practice after joining or resuming a DPS — and informs the current
// provider, if any. It returns the new address.
func (s *Site) ChangeOriginIP() (netip.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldAddr := s.originAddr
	newAddr := s.infra.NewOriginAddr()

	s.infra.Network.Deregister(netsim.Endpoint{Addr: oldAddr, Port: netsim.PortHTTP})
	s.infra.Network.Register(netsim.Endpoint{Addr: newAddr, Port: netsim.PortHTTP}, s.region, s.origin)
	if s.exposure.Certificate {
		s.infra.Network.Deregister(netsim.Endpoint{Addr: oldAddr, Port: httpsim.PortHTTPS})
	}
	s.originAddr = newAddr
	s.applyExposureLocked(s.basePage)
	if err := s.syncExposureRecordsLocked(); err != nil {
		return newAddr, err
	}

	if s.provider == "" {
		s.pointOwnRecordsAtLocked(newAddr)
		return newAddr, nil
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return newAddr, err
	}
	if err := p.UpdateOrigin(s.domain.Apex, newAddr); err != nil {
		return newAddr, fmt.Errorf("changing origin IP: %w", err)
	}
	return newAddr, nil
}

// SetExternalAlias points the site's www record at an externally managed
// alias (a multi-CDN front-end like Cedexis). The site itself tracks no
// DPS provider; whatever the alias resolves to is the front-end's
// business. The apex keeps its origin A record, as such setups commonly
// do.
func (s *Site) SetExternalAlias(target dnsmsg.Name) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider != "" {
		return fmt.Errorf("aliasing to %s: %w", target, ErrHasDPS)
	}
	www := s.domain.WWW()
	s.zone.Remove(www, dnsmsg.TypeA)
	mustZoneSet(s.zone, dnsmsg.NewCNAME(www, DefaultCNAMETTL, target))
	return nil
}

// PlantDecoy implements the customer-side countermeasure of §VI-B.2: the
// site tells its current provider that its origin moved to a freshly
// allocated — and never served — address. A residual record created by a
// subsequent Leave or Switch then points at the decoy instead of the real
// origin. Returns the decoy address.
func (s *Site) PlantDecoy() (netip.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		return netip.Addr{}, fmt.Errorf("planting decoy: %w", ErrNoDPS)
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return netip.Addr{}, err
	}
	decoy := s.infra.NewOriginAddr()
	if err := p.UpdateOrigin(s.domain.Apex, decoy); err != nil {
		return netip.Addr{}, fmt.Errorf("planting decoy: %w", err)
	}
	return decoy, nil
}

// RestrictToProviderEdges configures the origin to answer only the current
// provider's edges (the hardening that defeats direct HTML verification,
// §IV-C.3). With no provider it clears the restriction.
func (s *Site) RestrictToProviderEdges() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.provider == "" {
		s.origin.SetAllowedClients(nil)
		return nil
	}
	p, err := s.infra.provider(s.provider)
	if err != nil {
		return err
	}
	s.origin.SetAllowedClients(p.EdgeAddrs())
	return nil
}

// Zone exposes the site's own zone for inspection in tests.
func (s *Site) Zone() *dnszone.Zone { return s.zone }

// Plan returns the site's DPS plan (meaningful only while enrolled).
func (s *Site) Plan() dps.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}
