package edge

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

type fixture struct {
	clock  *simtime.Simulated
	net    *netsim.Network
	origin *httpsim.Origin
	edge   *Edge
	client *httpsim.Client

	originAddr netip.Addr
	edgeAddr   netip.Addr
}

func newFixture(t *testing.T, cacheTTL time.Duration, scrub Scrubber) *fixture {
	t.Helper()
	f := &fixture{
		clock:      simtime.NewSimulated(),
		originAddr: netip.MustParseAddr("10.60.0.1"),
		edgeAddr:   netip.MustParseAddr("104.16.5.5"),
	}
	f.net = netsim.New(netsim.Config{Clock: f.clock})
	f.origin = httpsim.NewOrigin(httpsim.OriginConfig{
		Page: httpsim.Page{Title: "Site", Meta: map[string]string{"description": "d"}},
	})
	f.net.Register(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, f.origin)

	f.edge = New(Config{
		Network:  f.net,
		Addr:     f.edgeAddr,
		Region:   netsim.RegionOregon,
		Clock:    f.clock,
		CacheTTL: cacheTTL,
		Scrubber: scrub,
	})
	f.edge.SetBackend("www.site.com", f.originAddr)
	f.net.Register(netsim.Endpoint{Addr: f.edgeAddr, Port: netsim.PortHTTP}, netsim.RegionOregon, f.edge)

	f.client = httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.10"), netsim.RegionOregon)
	return f
}

func TestEdgeProxiesToOrigin(t *testing.T) {
	f := newFixture(t, 0, nil)
	resp, err := f.client.Get(f.edgeAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := httpsim.ParsePage(resp.Body).Title; got != "Site" {
		t.Fatalf("title = %q", got)
	}
	if f.origin.Hits() != 1 {
		t.Fatalf("origin hits = %d, want 1", f.origin.Hits())
	}
}

func TestEdgeUnknownHost502(t *testing.T) {
	f := newFixture(t, 0, nil)
	resp, err := f.client.Get(f.edgeAddr, "www.unknown.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestEdgeCaching(t *testing.T) {
	f := newFixture(t, time.Hour, nil)
	for i := 0; i < 5; i++ {
		if _, err := f.client.Get(f.edgeAddr, "www.site.com", "/"); err != nil {
			t.Fatal(err)
		}
	}
	if f.origin.Hits() != 1 {
		t.Fatalf("origin hits = %d, want 1 (cache)", f.origin.Hits())
	}
	served, _, misses := f.edge.Stats()
	if served != 5 || misses != 1 {
		t.Fatalf("stats = served %d misses %d", served, misses)
	}
	// After TTL the origin is re-fetched.
	f.clock.Advance(2 * time.Hour)
	if _, err := f.client.Get(f.edgeAddr, "www.site.com", "/"); err != nil {
		t.Fatal(err)
	}
	if f.origin.Hits() != 2 {
		t.Fatalf("origin hits = %d after TTL, want 2", f.origin.Hits())
	}
}

func TestEdgeServesClientACLOrigin(t *testing.T) {
	// Origin that only answers its DPS edge; direct fetch fails, edge works.
	f := newFixture(t, 0, nil)
	f.origin.SetAllowedClients([]netip.Addr{f.edgeAddr})

	direct, err := f.client.Get(f.originAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if direct.StatusCode != 403 {
		t.Fatalf("direct status = %d, want 403", direct.StatusCode)
	}
	viaEdge, err := f.client.Get(f.edgeAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if viaEdge.StatusCode != 200 {
		t.Fatalf("edge status = %d, want 200", viaEdge.StatusCode)
	}
}

func TestEdgeScrubberDropsTraffic(t *testing.T) {
	bot := netip.MustParseAddr("198.51.100.66")
	scrub := ScrubberFunc(func(from netip.Addr, host string) bool { return from != bot })
	f := newFixture(t, 0, scrub)

	if _, err := f.client.Get(f.edgeAddr, "www.site.com", "/"); err != nil {
		t.Fatalf("legit client blocked: %v", err)
	}
	botClient := httpsim.NewClient(f.net, bot, netsim.RegionTokyo)
	_, err := botClient.Get(f.edgeAddr, "www.site.com", "/")
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("bot err = %v, want ErrTimeout (scrubbed)", err)
	}
	_, scrubbed, _ := f.edge.Stats()
	if scrubbed != 1 {
		t.Fatalf("scrubbed = %d, want 1", scrubbed)
	}
}

func TestEdgeRemoveBackend(t *testing.T) {
	f := newFixture(t, time.Hour, nil)
	if _, err := f.client.Get(f.edgeAddr, "www.site.com", "/"); err != nil {
		t.Fatal(err)
	}
	f.edge.RemoveBackend("www.site.com")
	if _, ok := f.edge.Backend("www.site.com"); ok {
		t.Fatal("backend still present")
	}
	resp, err := f.client.Get(f.edgeAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502 after removal (cache must be evicted too)", resp.StatusCode)
	}
}

func TestEdgeOriginDown502(t *testing.T) {
	f := newFixture(t, 0, nil)
	f.net.Deregister(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP})
	resp, err := f.client.Get(f.edgeAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestEdgeMalformedRequest400(t *testing.T) {
	f := newFixture(t, 0, nil)
	raw, err := f.net.Send(netip.MustParseAddr("198.51.100.10"), netsim.RegionOregon,
		netsim.Endpoint{Addr: f.edgeAddr, Port: netsim.PortHTTP}, []byte("not http"))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := httpsim.DecodeResponse(raw)
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestEdgeErrorResponsesNotCached(t *testing.T) {
	f := newFixture(t, time.Hour, nil)
	f.net.Deregister(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP})
	if resp, _ := f.client.Get(f.edgeAddr, "www.site.com", "/"); resp.StatusCode != 502 {
		t.Fatal("expected 502 while origin down")
	}
	// Origin comes back; edge must not keep serving the cached error.
	f.net.Register(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, f.origin)
	resp, err := f.client.Get(f.edgeAddr, "www.site.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (502 must not be cached)", resp.StatusCode)
	}
}
