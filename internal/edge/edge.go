// Package edge implements a CDN/DPS edge server: a caching reverse proxy
// that fronts customer origins and optionally scrubs traffic.
//
// Edges are what DPS customers' DNS records point at while protection is ON
// (paper §II-A): clients fetch pages from the edge, the edge fetches from
// the hidden origin, and a scrubbing hook drops traffic classified as
// malicious — the mechanism that absorbs DDoS floods in Fig. 1(a).
package edge

import (
	"net/netip"
	"sync"
	"time"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// Scrubber decides whether a request may pass the scrubbing center. A nil
// Scrubber admits everything.
type Scrubber interface {
	// Allow reports whether the request from the given address for host
	// should be served.
	Allow(from netip.Addr, host string) bool
}

// ScrubberFunc adapts a function to Scrubber.
type ScrubberFunc func(from netip.Addr, host string) bool

// Allow implements Scrubber.
func (f ScrubberFunc) Allow(from netip.Addr, host string) bool { return f(from, host) }

var _ Scrubber = ScrubberFunc(nil)

// Config parametrizes an edge server.
type Config struct {
	// Network is the fabric the edge fetches origin content over. Required.
	Network *netsim.Network
	// Addr is the edge's own address (used as HTTP client source, so
	// origin ACLs can allow DPS edges). Required.
	Addr netip.Addr
	// Region locates the edge.
	Region netsim.Region
	// Clock drives content-cache expiry. Required.
	Clock simtime.Clock
	// CacheTTL is how long fetched pages stay cached. Zero disables
	// caching.
	CacheTTL time.Duration
	// Scrubber filters traffic; nil admits everything.
	Scrubber Scrubber
}

type cacheEntry struct {
	resp    httpsim.Response
	expires time.Time
}

// Edge is a caching reverse proxy. It is safe for concurrent use.
type Edge struct {
	client   *httpsim.Client
	addr     netip.Addr
	clock    simtime.Clock
	cacheTTL time.Duration
	scrubber Scrubber

	mu       sync.Mutex
	backends map[string]netip.Addr
	cache    map[string]cacheEntry
	served   uint64
	scrubbed uint64
	misses   uint64
}

// New creates an edge server.
func New(cfg Config) *Edge {
	if cfg.Network == nil || cfg.Clock == nil {
		panic("edge: Network and Clock are required")
	}
	return &Edge{
		client:   httpsim.NewClient(cfg.Network, cfg.Addr, cfg.Region),
		addr:     cfg.Addr,
		clock:    cfg.Clock,
		cacheTTL: cfg.CacheTTL,
		scrubber: cfg.Scrubber,
		backends: make(map[string]netip.Addr),
		cache:    make(map[string]cacheEntry),
	}
}

var _ netsim.Handler = (*Edge)(nil)

// Addr returns the edge's address.
func (e *Edge) Addr() netip.Addr { return e.addr }

// SetBackend routes requests for host to the origin at addr.
func (e *Edge) SetBackend(host string, origin netip.Addr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.backends[host] = origin
}

// RemoveBackend stops serving host (customer left the platform).
func (e *Edge) RemoveBackend(host string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.backends, host)
	for key := range e.cache {
		if keyHost(key) == host {
			delete(e.cache, key)
		}
	}
}

// Backend returns the origin configured for host.
func (e *Edge) Backend(host string) (netip.Addr, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.backends[host]
	return a, ok
}

// Stats reports the edge's counters: requests served (including cache
// hits), requests dropped by scrubbing, and origin fetches (cache misses).
func (e *Edge) Stats() (served, scrubbed, originFetches uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.served, e.scrubbed, e.misses
}

func cacheKeyFor(host, path string) string { return host + "\x00" + path }

func keyHost(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i]
		}
	}
	return key
}

// ServeNet implements netsim.Handler.
func (e *Edge) ServeNet(req netsim.Request) ([]byte, error) {
	httpReq, err := httpsim.DecodeRequest(req.Payload)
	if err != nil {
		return httpsim.EncodeResponse(httpsim.Response{StatusCode: 400, Status: "Bad Request"}), nil
	}

	if e.scrubber != nil && !e.scrubber.Allow(req.From, httpReq.Host) {
		e.mu.Lock()
		e.scrubbed++
		e.mu.Unlock()
		// Scrubbed traffic is dropped, not answered: the sender times out.
		return nil, nil
	}

	e.mu.Lock()
	origin, ok := e.backends[httpReq.Host]
	if !ok {
		e.mu.Unlock()
		return httpsim.EncodeResponse(httpsim.Response{StatusCode: 502, Body: "host not configured"}), nil
	}
	now := e.clock.Now()
	key := cacheKeyFor(httpReq.Host, httpReq.Path)
	// Requests carrying application headers (e.g. pingback callbacks) are
	// treated as uncacheable and always hit the origin.
	cacheable := len(httpReq.Headers) == 0
	if entry, hit := e.cache[key]; cacheable && hit && entry.expires.After(now) {
		e.served++
		e.mu.Unlock()
		return httpsim.EncodeResponse(entry.resp), nil
	}
	e.misses++
	e.mu.Unlock()

	// Forward the request including its headers (pingback callbacks and
	// similar application headers must survive the proxy hop).
	resp, err := e.client.Do(origin, httpsim.Request{
		Method:  httpReq.Method,
		Path:    httpReq.Path,
		Host:    httpReq.Host,
		Headers: httpReq.Headers,
	})
	if err != nil {
		resp = httpsim.Response{StatusCode: 502, Body: "origin unreachable"}
	}

	e.mu.Lock()
	e.served++
	if cacheable && err == nil && resp.StatusCode == 200 && e.cacheTTL > 0 {
		e.cache[key] = cacheEntry{resp: resp, expires: now.Add(e.cacheTTL)}
	}
	e.mu.Unlock()
	return httpsim.EncodeResponse(resp), nil
}
