package dnsresolver

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"rrdps/internal/dnsmsg"
)

// Policy configures the client's resilience to a lossy fabric: how many
// times a query is attempted, how backoff between attempts grows, whether
// a timed-out query is hedged to an alternate nameserver, and when a
// nameserver that keeps timing out is sidelined.
//
// Everything a Policy decides is deterministic: backoff jitter comes from
// a seeded hash of the query identity rather than a shared RNG, so a
// campaign's retry schedule is a pure function of (world seed, policy) —
// identical between serial and parallel runs.
type Policy struct {
	// MaxAttempts caps the attempts of one logical query (including the
	// first). The cap applies per query, not per server: when several
	// candidate servers are available, attempts rotate across them and the
	// total budget is max(MaxAttempts, number of candidates), so every
	// candidate is tried at least once (the pre-retry behaviour).
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; it doubles each
	// further attempt up to MaxBackoff. The simulation does not advance
	// its clock mid-pass, so backoff is accounted (QueryStats.Backoff)
	// rather than slept — the schedule is what the determinism guarantee
	// covers.
	BaseBackoff time.Duration
	// MaxBackoff clamps the exponential growth.
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized (deterministically,
	// from the query identity) around the nominal value, in [0,1).
	Jitter float64
	// Hedge enables hedged queries: when the first attempt times out and
	// an alternate nameserver is available, the next attempt goes to the
	// alternate instead of re-asking the same server after backoff.
	Hedge bool
	// SidelineAfter is the number of consecutive checkpointed passes in
	// which a server only timed out (and never answered) before the health
	// tracker sidelines it. Zero disables sidelining.
	SidelineAfter int
	// SidelineFor is how many checkpointed passes a sidelined server sits
	// out before it is probed back in.
	SidelineFor int
	// Selection picks the first candidate of a multi-server exchange.
	Selection Selection
}

// Selection is a nameserver-selection strategy for multi-candidate
// exchanges.
type Selection int

// Selection strategies.
const (
	// SelectFirst always starts at the first candidate — the historical
	// rotate-from-the-front behaviour.
	SelectFirst Selection = iota
	// SelectP2C starts at the winner of a power-of-two-choices draw over
	// the health tracker's EWMA-RTT estimates (the dnscrypt-proxy load
	// balancing strategy, made seed-deterministic). Retries still rotate
	// through the other candidates from the winner onward.
	SelectP2C
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectP2C:
		return "p2c"
	default:
		return "first"
	}
}

// DefaultPolicy is the retry policy the measurement campaigns use unless
// configured otherwise: three attempts, 200ms base backoff doubling to 2s,
// 25% jitter, hedging on, sideline after 4 all-timeout passes for 2.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:   3,
		BaseBackoff:   200 * time.Millisecond,
		MaxBackoff:    2 * time.Second,
		Jitter:        0.25,
		Hedge:         true,
		SidelineAfter: 4,
		SidelineFor:   2,
		Selection:     SelectP2C,
	}
}

// NoRetryPolicy performs exactly one attempt per candidate server with no
// hedging and no sidelining — the behaviour of the pre-resilience client,
// and the default for a bare NewClient. It keeps the default selection
// strategy: with fresh health state both policies then pick the same
// primary for the same query, so a retrying run's attempt schedule starts
// with exactly the attempts a no-retry run makes (retries only add
// attempts, never reorder the shared prefix).
func NoRetryPolicy() Policy {
	return Policy{MaxAttempts: 1, Selection: SelectP2C}
}

// normalized fills zero fields with usable values and clamps nonsense.
func (p Policy) normalized() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff < 0 {
		p.BaseBackoff = 0
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0
	}
	if p.SidelineAfter < 0 {
		p.SidelineAfter = 0
	}
	if p.SidelineFor < 1 {
		p.SidelineFor = 1
	}
	return p
}

// String renders the policy for health summaries.
func (p Policy) String() string {
	return fmt.Sprintf("attempts=%d backoff=%v..%v jitter=%.0f%% hedge=%v sideline=%d/%d select=%s",
		p.MaxAttempts, p.BaseBackoff, p.MaxBackoff, p.Jitter*100, p.Hedge, p.SidelineAfter, p.SidelineFor, p.Selection)
}

// Backoff returns the deterministic delay scheduled before attempt
// `attempt` (1-based; attempt 1 has no delay) of a query for (name,
// qtype) against server. The nominal value is BaseBackoff doubled per
// prior retry and clamped to MaxBackoff; Jitter then scales it by a
// factor in [1-Jitter, 1+Jitter) derived from a seeded hash of the query
// identity. The result is never negative and never exceeds
// MaxBackoff*(1+Jitter).
func (p Policy) Backoff(seed int64, server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type, attempt int) time.Duration {
	p = p.normalized()
	if attempt <= 1 || p.BaseBackoff == 0 {
		return 0
	}
	d := p.BaseBackoff
	// Shift without overflow: past ~2^40 doublings are academic, clamp
	// via comparison instead of shifting blindly.
	for i := 2; i < attempt; i++ {
		if d >= p.MaxBackoff/2+1 {
			d = p.MaxBackoff
			break
		}
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Keep the float jitter math clear of int64 overflow for absurd
	// configured maxima (the fuzz target feeds them).
	const ceil = time.Duration(1) << 61
	if d > ceil {
		d = ceil
	}
	if p.Jitter > 0 {
		u := unitHash(seed, server, name, qtype, attempt) // [0,1)
		factor := 1 + p.Jitter*(2*u-1)                    // [1-J, 1+J)
		d = time.Duration(float64(d) * factor)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// unitHash maps a query identity to [0,1) via FNV-1a.
func unitHash(seed int64, server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type, attempt int) float64 {
	return float64(queryHash(seed, server, name, qtype, attempt)>>11) / float64(1<<53)
}

// queryHash folds a query identity into 64 bits: FNV-1a over the fields,
// finalized with the splitmix64 avalanche so the trailing fields (qtype,
// attempt) reach the high bits unitHash keeps. It also derives the
// deterministic query IDs: two runs issuing the same logical query get
// byte-identical wire payloads, which is what makes the fabric's
// content-hashed fault plan (and therefore the whole retry schedule)
// independent of scheduling order.
func queryHash(seed int64, server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type, attempt int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	if server.IsValid() {
		b := server.As4()
		h.Write(b[:])
	}
	h.Write([]byte(name))
	put(uint64(qtype))
	put(uint64(attempt))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: every input bit avalanches into every
// output bit.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
