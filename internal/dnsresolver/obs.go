package dnsresolver

import (
	"fmt"
	"time"

	"rrdps/internal/obs"
)

// clientObs holds the client's metric handles, resolved once at
// SetObserver time so the hot path never touches the registry's map.
//
// Every dns.* metric is registered volatile: with a shared cache, two
// goroutines can miss on the same cold entry and both go upstream, so
// attempt-level totals legitimately depend on scheduling (see the
// QueryStats doc). The metrics still mirror QueryStats field-for-field —
// they are operational telemetry, not determinism-checked invariants.
type clientObs struct {
	queries   *obs.Counter
	attempts  *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	timeouts  *obs.Counter
	corrupt   *obs.Counter
	bad       *obs.Counter
	recovered *obs.Counter
	failed    *obs.Counter

	attemptsPerQuery *obs.Histogram
	backoffNs        *obs.Histogram
}

func newClientObs(r *obs.Registry) *clientObs {
	if r == nil {
		return nil
	}
	return &clientObs{
		queries:          r.VolatileCounter("dns.queries"),
		attempts:         r.VolatileCounter("dns.attempts"),
		retries:          r.VolatileCounter("dns.retries"),
		hedges:           r.VolatileCounter("dns.hedges"),
		timeouts:         r.VolatileCounter("dns.timeouts"),
		corrupt:          r.VolatileCounter("dns.corrupt_replies"),
		bad:              r.VolatileCounter("dns.bad_responses"),
		recovered:        r.VolatileCounter("dns.recovered"),
		failed:           r.VolatileCounter("dns.failed"),
		attemptsPerQuery: r.VolatileHistogram("dns.attempts_per_query"),
		backoffNs:        r.VolatileHistogram("dns.backoff_ns"),
	}
}

// Nil-safe per-event hooks (a nil *clientObs means no registry installed;
// the underlying obs handles are themselves nil-safe, so these guards are
// only about dereferencing the struct).

func (o *clientObs) observeQuery() {
	if o != nil {
		o.queries.Inc()
	}
}

func (o *clientObs) observeAttempt() {
	if o != nil {
		o.attempts.Inc()
	}
}

func (o *clientObs) observeRetry(backoff time.Duration) {
	if o != nil {
		o.retries.Inc()
		o.backoffNs.ObserveDuration(backoff)
	}
}

func (o *clientObs) observeHedge() {
	if o != nil {
		o.hedges.Inc()
	}
}

func (o *clientObs) observeOutcome(attempts int, recovered bool) {
	if o != nil {
		o.attemptsPerQuery.Observe(uint64(attempts))
		if recovered {
			o.recovered.Inc()
		}
	}
}

func (o *clientObs) observeTimeout() {
	if o != nil {
		o.timeouts.Inc()
	}
}

func (o *clientObs) observeCorrupt() {
	if o != nil {
		o.corrupt.Inc()
	}
}

func (o *clientObs) observeFailed(bad bool) {
	if o != nil {
		if bad {
			o.bad.Inc()
		}
		o.failed.Inc()
	}
}

// cacheObs counts cache lookups per stripe. Like the dns.* client
// metrics, hit/miss totals are volatile: which of two racing goroutines
// populates a cold entry (and which one therefore misses) is a
// scheduling accident.
type cacheObs struct {
	hit  *obs.Counter
	miss *obs.Counter

	stripeHit  [cacheShards]*obs.Counter
	stripeMiss [cacheShards]*obs.Counter
}

func newCacheObs(r *obs.Registry) *cacheObs {
	if r == nil {
		return nil
	}
	o := &cacheObs{
		hit:  r.VolatileCounter("dns.cache.hit"),
		miss: r.VolatileCounter("dns.cache.miss"),
	}
	for i := 0; i < cacheShards; i++ {
		o.stripeHit[i] = r.VolatileCounter(fmt.Sprintf("dns.cache.stripe%02d.hit", i))
		o.stripeMiss[i] = r.VolatileCounter(fmt.Sprintf("dns.cache.stripe%02d.miss", i))
	}
	return o
}

// observe records one lookup against stripe idx.
func (o *cacheObs) observe(idx int, hit bool) {
	if o == nil {
		return
	}
	if hit {
		o.hit.Inc()
		o.stripeHit[idx].Inc()
	} else {
		o.miss.Inc()
		o.stripeMiss[idx].Inc()
	}
}

// SetObserver installs a metrics registry on the client. Like SetPolicy,
// call it between passes (the campaigns install it before the first
// pass); a nil registry uninstalls.
func (c *Client) SetObserver(r *obs.Registry) {
	c.obs.Store(newClientObs(r))
}

// SetObserver installs a metrics registry on the resolver's client and
// cache. A nil registry uninstalls.
func (r *Resolver) SetObserver(reg *obs.Registry) {
	r.client.SetObserver(reg)
	r.cache.setObserver(reg)
}
