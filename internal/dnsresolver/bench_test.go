package dnsresolver

import (
	"testing"

	"rrdps/internal/dnsmsg"
)

func BenchmarkResolveColdCache(b *testing.B) {
	f := newFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.resolver.PurgeCache()
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveWarmCache(b *testing.B) {
	f := newFixture(b)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeDirect(b *testing.B) {
	f := newFixture(b)
	client := f.resolver.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveCrossZoneCNAME(b *testing.B) {
	f := newFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.resolver.PurgeCache()
		if _, err := f.resolver.Resolve("cdn-www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// dropAnswer evicts just (name, qtype)'s answer entry, leaving delegation
// and host-address entries warm — the steady-state miss a capped cache
// produces mid-campaign.
func dropAnswer(r *Resolver, name dnsmsg.Name, qtype dnsmsg.Type) {
	key := cacheKey{name: name, qtype: qtype}
	s := &r.cache.shards[shardIndex(name)]
	s.mu.Lock()
	if slot, ok := s.answers[key]; ok {
		s.deleteEntry(slot.node)
	}
	s.mu.Unlock()
}

// BenchmarkResolveCached is the hot path the CI bench gate pins at zero
// allocations: a resolve served entirely from the answer cache.
func BenchmarkResolveCached(b *testing.B) {
	f := newFixture(b)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveUncached is the answer-cache-miss path with warm
// delegations: one authoritative exchange plus the re-cache of its
// answer, the steady-state cost after a capped cache evicts an entry.
func BenchmarkResolveUncached(b *testing.B) {
	f := newFixture(b)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dropAnswer(f.resolver, "www.example.com", dnsmsg.TypeA)
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// TestResolveAllocBudget pins the allocs/op budget the CI bench gate
// enforces: the cached path allocates nothing, the uncached path at most
// 4 per op. A regression here is a correctness failure, not a perf note —
// the zero-alloc hot path is this PR's contract.
func TestResolveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the budget is enforced by the non-race run")
	}
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	cached := testing.AllocsPerRun(200, func() {
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			t.Fatal(err)
		}
	})
	if cached != 0 {
		t.Errorf("cached resolve: %.1f allocs/op, want 0", cached)
	}
	uncached := testing.AllocsPerRun(200, func() {
		dropAnswer(f.resolver, "www.example.com", dnsmsg.TypeA)
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			t.Fatal(err)
		}
	})
	if uncached > 4 {
		t.Errorf("uncached resolve: %.1f allocs/op, want <= 4", uncached)
	}
}
