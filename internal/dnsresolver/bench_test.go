package dnsresolver

import (
	"testing"

	"rrdps/internal/dnsmsg"
)

func BenchmarkResolveColdCache(b *testing.B) {
	f := newFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.resolver.PurgeCache()
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveWarmCache(b *testing.B) {
	f := newFixture(b)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeDirect(b *testing.B) {
	f := newFixture(b)
	client := f.resolver.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveCrossZoneCNAME(b *testing.B) {
	f := newFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.resolver.PurgeCache()
		if _, err := f.resolver.Resolve("cdn-www.example.com", dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}
