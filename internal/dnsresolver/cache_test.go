package dnsresolver

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

func cacheTestName(i int) dnsmsg.Name {
	return dnsmsg.Name(fmt.Sprintf("host-%03d.example.com", i))
}

// TestCacheShardRouting checks that every entry kind round-trips through
// the sharded store and that distinct names actually spread across stripes.
func TestCacheShardRouting(t *testing.T) {
	c := newCache(0)
	now := time.Unix(1000, 0)
	hit := make(map[*cacheShard]bool)
	for i := 0; i < 256; i++ {
		name := cacheTestName(i)
		hit[c.shardFor(name)] = true
		key := cacheKey{name: name, qtype: dnsmsg.TypeA}
		addr := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		c.putAnswer(now, key, answerEntry{answers: []dnsmsg.RR{dnsmsg.NewA(name, time.Minute, addr)}}, time.Minute)
		c.putDelegation(now, name, []dnsmsg.Name{"ns." + name}, time.Minute)
		c.putHostAddr(now, name, addr, time.Minute)

		if e, ok := c.getAnswer(now, key); !ok || len(e.answers) != 1 {
			t.Fatalf("answer for %s missing after put", name)
		}
		if hosts, ok := c.getDelegation(now, name); !ok || len(hosts) != 1 {
			t.Fatalf("delegation for %s missing after put", name)
		}
		if got, ok := c.getHostAddr(now, name); !ok || got != addr {
			t.Fatalf("host addr for %s = %v, %v", name, got, ok)
		}
	}
	if len(hit) < cacheShards/2 {
		t.Fatalf("256 names hit only %d of %d shards: hash is not spreading", len(hit), cacheShards)
	}
}

// TestCacheLenAcrossShards checks the Len sum is consistent with the
// number of live entries spread over all stripes, including expiry.
func TestCacheLenAcrossShards(t *testing.T) {
	c := newCache(0)
	now := time.Unix(1000, 0)
	const n = 100
	for i := 0; i < n; i++ {
		name := cacheTestName(i)
		ttl := time.Minute
		if i%2 == 1 {
			ttl = time.Second // expires early
		}
		c.putHostAddr(now, name, netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}), ttl)
	}
	if got := c.Len(now); got != n {
		t.Fatalf("Len(now) = %d, want %d", got, n)
	}
	if got := c.Len(now.Add(30 * time.Second)); got != n/2 {
		t.Fatalf("Len(now+30s) = %d, want %d", got, n/2)
	}
	c.Purge()
	if got := c.Len(now); got != 0 {
		t.Fatalf("Len after Purge = %d, want 0", got)
	}
}

// TestCacheConcurrentStress mixes puts, gets, Purge, Len, and
// closestDelegation from many goroutines. The race detector covers the
// striping; the value checks cover torn reads.
func TestCacheConcurrentStress(t *testing.T) {
	c := newCache(0)
	now := time.Unix(1000, 0)
	addrOf := func(i int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Purge()
				c.Len(now)
			}
		}
	}()
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				i := (g*500 + j) % 64
				name := cacheTestName(i)
				key := cacheKey{name: name, qtype: dnsmsg.TypeA}
				want := addrOf(i)
				c.putAnswer(now, key, answerEntry{answers: []dnsmsg.RR{dnsmsg.NewA(name, time.Minute, want)}}, time.Minute)
				c.putDelegation(now, name, []dnsmsg.Name{"ns." + name}, time.Minute)
				c.putHostAddr(now, name, want, time.Minute)
				if e, ok := c.getAnswer(now, key); ok {
					if len(e.answers) != 1 || e.answers[0].Data.(dnsmsg.AData).Addr != want {
						t.Errorf("torn answer for %s: %+v", name, e)
						return
					}
				}
				if got, ok := c.getHostAddr(now, name); ok && got != want {
					t.Errorf("torn host addr for %s: %v", name, got)
					return
				}
				if zone, hosts, ok := c.closestDelegation(now, name.Child("www")); ok {
					if zone != name || len(hosts) != 1 {
						t.Errorf("torn delegation for %s: %s %v", name, zone, hosts)
						return
					}
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
}
