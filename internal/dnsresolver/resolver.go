// Package dnsresolver implements an iterative (recursive-resolving) DNS
// resolver over the simulated network fabric, with a TTL cache that can be
// purged between measurement runs, plus a low-level Client for direct
// queries to specific nameservers.
//
// The resolver is the paper's "DNS record collector" substrate (§IV-B.1):
// it walks delegations from the roots, chases CNAME chains across zones,
// and caches aggressively — including NS delegations, whose long TTLs are
// precisely why stale NS records keep pointing at former DPS providers and
// make residual resolution exploitable (§VI-A).
package dnsresolver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// Resolution errors.
var (
	// ErrNXDomain reports an authoritative denial of the name's existence.
	ErrNXDomain = errors.New("dnsresolver: NXDOMAIN")
	// ErrServFail reports that resolution could not complete (all servers
	// failed, refused, or a delegation loop/depth limit was hit).
	ErrServFail = errors.New("dnsresolver: SERVFAIL")
)

// Limits protecting against delegation and alias loops.
const (
	maxReferralHops = 16
	maxCNAMEHops    = 8
	maxDepth        = 6 // nested NS-address resolutions
)

// Result is a completed resolution.
type Result struct {
	// Question is the original (name, type) asked.
	Question dnsmsg.Question
	// Chain is the CNAME chain followed, in order, possibly empty.
	Chain []dnsmsg.RR
	// Answers holds the records of the requested type at the final name.
	// Empty with a nil error means NODATA. The slice may be shared with
	// the resolver's cache; callers must not mutate it.
	Answers []dnsmsg.RR
}

// FinalName returns the name the chain ends at (the original name when no
// CNAME was followed).
func (r Result) FinalName() dnsmsg.Name {
	if len(r.Chain) == 0 {
		return r.Question.Name
	}
	return r.Chain[len(r.Chain)-1].Data.(dnsmsg.CNAMEData).Target
}

// Addrs extracts the IPv4 addresses from A answers.
func (r Result) Addrs() []netip.Addr {
	var out []netip.Addr
	for _, rr := range r.Answers {
		if a, ok := rr.Data.(dnsmsg.AData); ok {
			out = append(out, a.Addr)
		}
	}
	return out
}

// CNAMETargets extracts the alias targets in chain order.
func (r Result) CNAMETargets() []dnsmsg.Name {
	var out []dnsmsg.Name
	for _, rr := range r.Chain {
		out = append(out, rr.Data.(dnsmsg.CNAMEData).Target)
	}
	return out
}

// NSHosts extracts nameserver hostnames from NS answers.
func (r Result) NSHosts() []dnsmsg.Name {
	var out []dnsmsg.Name
	for _, rr := range r.Answers {
		if ns, ok := rr.Data.(dnsmsg.NSData); ok {
			out = append(out, ns.Host)
		}
	}
	return out
}

// Config parametrizes a Resolver.
type Config struct {
	// Network is the fabric the resolver speaks over. Required.
	Network *netsim.Network
	// Clock drives cache expiry. Required.
	Clock simtime.Clock
	// Addr is the resolver's own address on the fabric. Required.
	Addr netip.Addr
	// Region is where the resolver sits (vantage point). Required for
	// anycast realism.
	Region netsim.Region
	// Roots are the root nameserver addresses. At least one is required.
	Roots []netip.Addr
	// Rand seeds query-ID generation. Required.
	Rand *rand.Rand
	// Policy is the client's retry policy. Nil means NoRetryPolicy (one
	// attempt per candidate server, no sidelining) — the pre-resilience
	// behaviour. The campaign runners install DefaultPolicy instead.
	Policy *Policy
	// CacheCapacity bounds the cache's total entry count; past it, the
	// least-recently-used entries are evicted. Zero means unbounded — the
	// historical behaviour, which campaigns whose reports carry query
	// counts rely on (eviction changes which queries go upstream).
	CacheCapacity int
}

// Resolver is an iterative resolver with cache. Safe for concurrent use.
type Resolver struct {
	client *Client
	clock  simtime.Clock
	roots  []netip.Addr
	cache  *cache

	negTTL time.Duration
}

// resolveFrame is the reusable state of one recursion depth: the codec
// scratch its exchanges run through, and the server/host slices its
// delegation walk builds. Keeping one frame per depth lets a nested
// NS-address resolution run while the outer walk's state stays intact.
type resolveFrame struct {
	ex      exchangeScratch
	servers []netip.Addr
	hosts   []dnsmsg.Name
	addrs   []netip.Addr
}

// resolveScratch is the full per-resolution scratch: a frame for every
// recursion depth. Pooled, so steady-state resolutions allocate nothing
// for plumbing.
type resolveScratch struct {
	frames [maxDepth + 1]resolveFrame
}

var resolveScratchPool = sync.Pool{New: func() any { return new(resolveScratch) }}

// New creates a Resolver.
func New(cfg Config) *Resolver {
	if cfg.Network == nil || cfg.Clock == nil || cfg.Rand == nil {
		panic("dnsresolver: Network, Clock, and Rand are required")
	}
	if len(cfg.Roots) == 0 {
		panic("dnsresolver: at least one root server is required")
	}
	client := NewClient(cfg.Network, cfg.Addr, cfg.Region, cfg.Rand)
	if cfg.Policy != nil {
		client.SetPolicy(*cfg.Policy)
	}
	return &Resolver{
		client: client,
		clock:  cfg.Clock,
		roots:  append([]netip.Addr(nil), cfg.Roots...),
		cache:  newCache(cfg.CacheCapacity),
		negTTL: 15 * time.Minute,
	}
}

// Client returns the resolver's underlying direct-query client.
func (r *Resolver) Client() *Client { return r.client }

// SetPolicy installs the retry policy on the underlying client.
func (r *Resolver) SetPolicy(p Policy) { r.client.SetPolicy(p) }

// Stats returns the underlying client's resilience accounting.
func (r *Resolver) Stats() QueryStats { return r.client.Stats() }

// Health returns the underlying client's nameserver health tracker.
func (r *Resolver) Health() *Health { return r.client.Health() }

// Checkpoint folds the pass's health observations into sideline state.
// The measurement loops call it at pass boundaries.
func (r *Resolver) Checkpoint() { r.client.Checkpoint() }

// PurgeCache empties the resolver's cache. The paper's collector does this
// before every daily snapshot so consecutive measurements are independent.
func (r *Resolver) PurgeCache() { r.cache.Purge() }

// CacheLen returns the number of live cache entries.
func (r *Resolver) CacheLen() int { return r.cache.Len(r.clock.Now()) }

// Resolve performs a full recursive resolution of (name, qtype).
func (r *Resolver) Resolve(name dnsmsg.Name, qtype dnsmsg.Type) (Result, error) {
	sc := resolveScratchPool.Get().(*resolveScratch)
	res, err := r.resolve(sc, name, qtype, 0)
	resolveScratchPool.Put(sc)
	return res, err
}

func (r *Resolver) resolve(sc *resolveScratch, name dnsmsg.Name, qtype dnsmsg.Type, depth int) (Result, error) {
	if depth > maxDepth {
		return Result{}, fmt.Errorf("resolving %s %s: nesting too deep: %w", name, qtype, ErrServFail)
	}
	res := Result{Question: dnsmsg.Question{Name: name, Type: qtype, Class: dnsmsg.ClassIN}}
	now := r.clock.Now()

	cur := name
	for hop := 0; hop <= maxCNAMEHops; hop++ {
		key := cacheKey{name: cur, qtype: qtype}
		if e, ok := r.cache.getAnswer(now, key); ok {
			res.Chain = append(res.Chain, e.chain...)
			res.Answers = e.answers
			if e.rcode == dnsmsg.RCodeNXDomain {
				return res, fmt.Errorf("resolving %s %s (cached): %w", name, qtype, ErrNXDomain)
			}
			// A cached bare CNAME (no final answers) still needs chasing.
			if len(e.answers) == 0 && len(e.chain) > 0 {
				cur = res.FinalName()
				continue
			}
			return res, nil
		}

		chain, answers, rcode, negTTL, err := r.iterate(sc, cur, qtype, depth)
		if err != nil {
			return res, fmt.Errorf("resolving %s %s: %w", name, qtype, err)
		}
		if rcode == dnsmsg.RCodeNXDomain {
			r.cache.putAnswer(now, key, answerEntry{rcode: rcode}, negTTL)
			res.Chain = append(res.Chain, chain...)
			return res, fmt.Errorf("resolving %s %s: %w", name, qtype, ErrNXDomain)
		}

		ttl := minTTL2(chain, answers, r.negTTL)
		r.cache.putAnswer(now, key, answerEntry{chain: chain, answers: answers}, ttl)
		// Feed A answers into the host-address cache for NS resolution.
		for _, rr := range answers {
			if a, ok := rr.Data.(dnsmsg.AData); ok {
				r.cache.putHostAddr(now, rr.Name, a.Addr, rr.TTL)
			}
		}

		res.Chain = append(res.Chain, chain...)
		res.Answers = answers
		if len(answers) == 0 && len(chain) > 0 && qtype != dnsmsg.TypeCNAME {
			// Bare alias: restart at the target.
			cur = res.FinalName()
			continue
		}
		return res, nil
	}
	return res, fmt.Errorf("resolving %s %s: CNAME chain too long: %w", name, qtype, ErrServFail)
}

// iterate walks delegations from the closest cached cut (or the roots)
// until an authoritative answer for (name, qtype) arrives. It returns the
// CNAME chain seen in the final answer, the answers of qtype, the response
// code, and the negative-caching TTL (from the authority SOA per RFC
// 2308, falling back to the resolver default). The returned slices are
// freshly allocated (they outlive the scratch); everything transient lives
// in sc's frame for this depth.
//
// The descent is qname-minimized (RFC 7816): each zone cut is discovered
// with a probe for the child name's NS RRset at the parent's servers,
// never by sending the full qname down the tree. Beyond the privacy
// rationale of the RFC, this is what makes resolution outcomes
// independent of cache warmth on a faulty fabric: the probe for a zone is
// the same wire payload no matter which resolution triggers it, so a
// cached delegation only ever skips queries that already succeeded, and a
// cold walk re-issuing them gets the same content-hashed fault decisions.
// With the old full-qname descent, a cold cache issued per-name ancestor
// queries a warm cache never sent, and their independent fault fates made
// serial and parallel campaigns diverge.
func (r *Resolver) iterate(sc *resolveScratch, name dnsmsg.Name, qtype dnsmsg.Type, depth int) (chain, answers []dnsmsg.RR, rcode dnsmsg.RCode, negTTL time.Duration, err error) {
	f := &sc.frames[depth]
	now := r.clock.Now()
	f.servers = append(f.servers[:0], r.roots...)
	servers := f.servers
	zone := dnsmsg.Name("") // the root
	if cut, hosts, ok := r.cache.closestDelegation(now, name); ok {
		// hosts is cache-shared; hostAddrs only reads it.
		if addrs := r.hostAddrs(sc, hosts, depth); len(addrs) > 0 {
			zone, servers = cut, addrs
		}
	}

	for hop := 0; hop < maxReferralHops; hop++ {
		if zone == name {
			break
		}
		child := nextLabel(zone, name)
		resp, ok := r.queryAny(&f.ex, servers, child, dnsmsg.TypeNS)
		if !ok {
			return nil, nil, 0, 0, fmt.Errorf("no server for %s answered: %w", child, ErrServFail)
		}
		switch resp.Header.RCode {
		case dnsmsg.RCodeNoError:
			// fallthrough below
		case dnsmsg.RCodeNXDomain:
			// RFC 8020: NXDOMAIN at an ancestor denies the whole subtree.
			return nil, nil, dnsmsg.RCodeNXDomain, r.negativeTTL(resp), nil
		default:
			return nil, nil, 0, 0, fmt.Errorf("server answered %s for %s: %w", resp.Header.RCode, child, ErrServFail)
		}

		// A cut at child arrives as a referral from the parent side, or as
		// an authoritative NS answer when the queried server happens to
		// host the child zone too (provider fleets serving both).
		nsSet := refNS(resp)
		if len(nsSet) == 0 {
			nsSet = finalAnswers(resp.Answers, dnsmsg.TypeNS)
		}
		if len(nsSet) == 0 {
			// NODATA or an alias at child: no cut there, the current
			// servers stay authoritative one label deeper.
			zone = child
			continue
		}
		f.hosts = f.hosts[:0]
		for _, rr := range nsSet {
			f.hosts = append(f.hosts, rr.Data.(dnsmsg.NSData).Host)
		}
		r.cache.putDelegation(now, child, f.hosts, minTTL(nsSet, r.negTTL))
		for _, rr := range resp.Additional {
			if a, ok := rr.Data.(dnsmsg.AData); ok {
				r.cache.putHostAddr(now, rr.Name, a.Addr, rr.TTL)
			}
		}
		// This overwrites f.addrs — the backing of `servers` when the walk
		// started from a cached cut or took a prior referral — which is
		// fine: this hop's queries are done, and `servers` is reassigned
		// before the next read.
		next := r.hostAddrs(sc, f.hosts, depth)
		if len(next) == 0 {
			return nil, nil, 0, 0, fmt.Errorf("no reachable nameserver for %s: %w", child, ErrServFail)
		}
		zone, servers = child, next
	}
	if zone != name {
		return nil, nil, 0, 0, fmt.Errorf("referral limit for %s: %w", name, ErrServFail)
	}

	// The full question goes only to the name's own authoritative servers.
	resp, ok := r.queryAny(&f.ex, servers, name, qtype)
	if !ok {
		return nil, nil, 0, 0, fmt.Errorf("no server for %s answered: %w", name, ErrServFail)
	}
	switch resp.Header.RCode {
	case dnsmsg.RCodeNoError:
		// fallthrough below
	case dnsmsg.RCodeNXDomain:
		return splitChain(resp.Answers, name, qtype), nil, dnsmsg.RCodeNXDomain, r.negativeTTL(resp), nil
	default:
		return nil, nil, 0, 0, fmt.Errorf("server answered %s for %s: %w", resp.Header.RCode, name, ErrServFail)
	}
	if len(resp.Answers) > 0 {
		return splitChain(resp.Answers, name, qtype), finalAnswers(resp.Answers, qtype), dnsmsg.RCodeNoError, r.negTTL, nil
	}
	// Authoritative NODATA.
	return nil, nil, dnsmsg.RCodeNoError, r.negativeTTL(resp), nil
}

// nextLabel returns the ancestor of name exactly one label below zone —
// the next probe target of the minimized descent. zone must be an
// ancestor of name (the root is an ancestor of everything).
func nextLabel(zone, name dnsmsg.Name) dnsmsg.Name {
	n := name
	for n.Parent() != zone {
		n = n.Parent()
		if n.IsRoot() {
			panic(fmt.Sprintf("dnsresolver: %s is not an ancestor of %s", zone, name))
		}
	}
	return n
}

// negativeTTL derives the RFC 2308 negative-caching TTL from a response's
// authority SOA: min(SOA TTL, SOA minimum), clamped to the resolver
// default when absent or larger.
func (r *Resolver) negativeTTL(resp *dnsmsg.Message) time.Duration {
	for _, rr := range resp.Authority {
		soa, ok := rr.Data.(dnsmsg.SOAData)
		if !ok {
			continue
		}
		ttl := rr.TTL
		if min := time.Duration(soa.Minimum) * time.Second; min < ttl {
			ttl = min
		}
		if ttl <= 0 || ttl > r.negTTL {
			return r.negTTL
		}
		return ttl
	}
	return r.negTTL
}

// queryAny asks the candidate servers under the client's retry policy:
// sidelined servers are skipped, the policy's selection strategy picks the
// first target, attempts rotate across the rest, and with NoRetryPolicy
// this reduces to the classic try-each-server-once loop. The response
// aliases ex and is valid only until ex's next exchange.
func (r *Resolver) queryAny(ex *exchangeScratch, servers []netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (*dnsmsg.Message, bool) {
	resp, err := r.client.exchangeAny(ex, servers, name, qtype)
	if err != nil {
		return nil, false
	}
	return resp, true
}

// hostAddrs maps nameserver hostnames to addresses, using glue from cache
// and falling back to nested resolution. The returned slice is backed by
// the depth's frame and is valid until its next hostAddrs call.
func (r *Resolver) hostAddrs(sc *resolveScratch, hosts []dnsmsg.Name, depth int) []netip.Addr {
	f := &sc.frames[depth]
	now := r.clock.Now()
	out := f.addrs[:0]
	for _, h := range hosts {
		if addr, ok := r.cache.getHostAddr(now, h); ok {
			out = append(out, addr)
			continue
		}
		if depth >= maxDepth {
			continue // a deeper resolve would be refused anyway
		}
		sub, err := r.resolve(sc, h, dnsmsg.TypeA, depth+1)
		if err != nil {
			// The walk failed, but it may still have deposited h's glue (a
			// referral's Additional section caches host addresses even when
			// a later hop of the walk dies). Re-checking makes the host's
			// availability a function of the walk's deterministic fault
			// fates alone: without it, the first resolution to need h drops
			// it while every later one finds the glue the failed walk left
			// behind — and which resolution runs first is a scheduling
			// accident, the one thing candidate sets must not depend on.
			if addr, ok := r.cache.getHostAddr(now, h); ok {
				out = append(out, addr)
			}
			continue
		}
		for _, rr := range sub.Answers {
			if a, ok := rr.Data.(dnsmsg.AData); ok {
				out = append(out, a.Addr)
				break
			}
		}
	}
	f.addrs = out
	return out
}

// splitChain extracts the CNAME records from an answer section in chain
// order starting at qname.
func splitChain(answers []dnsmsg.RR, qname dnsmsg.Name, qtype dnsmsg.Type) []dnsmsg.RR {
	if qtype == dnsmsg.TypeCNAME {
		return nil
	}
	var chain []dnsmsg.RR
	cur := qname
	for i := 0; i < len(answers)+1; i++ {
		found := false
		for _, rr := range answers {
			if rr.Name == cur && rr.Type() == dnsmsg.TypeCNAME {
				chain = append(chain, rr)
				cur = rr.Data.(dnsmsg.CNAMEData).Target
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return chain
}

// finalAnswers returns the records of qtype from an answer section.
func finalAnswers(answers []dnsmsg.RR, qtype dnsmsg.Type) []dnsmsg.RR {
	var out []dnsmsg.RR
	for _, rr := range answers {
		if rr.Type() == qtype {
			out = append(out, rr)
		}
	}
	return out
}

// refNS extracts the NS records of a referral's authority section.
func refNS(resp *dnsmsg.Message) []dnsmsg.RR {
	var out []dnsmsg.RR
	for _, rr := range resp.Authority {
		if rr.Type() == dnsmsg.TypeNS {
			out = append(out, rr)
		}
	}
	return out
}

// minTTL returns the smallest TTL among rrs, or fallback when rrs is empty.
func minTTL(rrs []dnsmsg.RR, fallback time.Duration) time.Duration {
	if len(rrs) == 0 {
		return fallback
	}
	min := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < min {
			min = rr.TTL
		}
	}
	return min
}

// minTTL2 returns the smallest TTL across both slices, or fallback when
// both are empty — minTTL without concatenating first.
func minTTL2(a, b []dnsmsg.RR, fallback time.Duration) time.Duration {
	switch {
	case len(a) == 0:
		return minTTL(b, fallback)
	case len(b) == 0:
		return minTTL(a, fallback)
	}
	ta, tb := minTTL(a, fallback), minTTL(b, fallback)
	if ta < tb {
		return ta
	}
	return tb
}
