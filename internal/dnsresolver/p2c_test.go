package dnsresolver

import (
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

// p2cTop2 recomputes the rendezvous top-two indices the way planExchange
// does, so tests can reason about which candidate "should" win.
func p2cTop2(seed int64, cands []netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (maxI, runnerI int) {
	maxI, runnerI = -1, -1
	var wMax, wRun uint64
	for k, s := range cands {
		w := queryHash(seed, s, name, qtype, 0)
		switch {
		case maxI < 0 || w > wMax:
			runnerI, wRun = maxI, wMax
			maxI, wMax = k, w
		case runnerI < 0 || w > wRun:
			runnerI, wRun = k, w
		}
	}
	return maxI, runnerI
}

// observeRTT folds one RTT observation into h's EWMA estimate for addr by
// running it through a pass boundary, the only place estimates move.
func observeRTT(h *Health, addr netip.Addr, rtt time.Duration) {
	h.ObserveSuccess(addr)
	h.ObserveRTT(addr, rtt)
	h.Checkpoint(DefaultPolicy())
}

// TestP2CDeterministic pins the properties that keep EWMA P2C selection
// inside the serial≡parallel guarantee:
//
//  1. planExchange is a pure function of (health state, query identity) —
//     calling it twice returns the same plan.
//  2. With no estimates, the rendezvous max-weight candidate wins.
//  3. A one-sided estimate never flips the pick (whether a server has been
//     measured yet is warmth-dependent, so it must not steer selection).
//  4. With both top-two measured, the lower estimate wins.
//  5. Subset stability: dropping a candidate outside the top two leaves
//     the picked server unchanged (weights attach to servers, not list
//     positions, so warmth-dependent candidate-set differences don't
//     reorder the draw).
func TestP2CDeterministic(t *testing.T) {
	const seed = int64(42)
	name := dnsmsg.Name("www.example.com")
	servers := []netip.Addr{
		netip.MustParseAddr("192.0.2.11"),
		netip.MustParseAddr("192.0.2.12"),
		netip.MustParseAddr("192.0.2.13"),
		netip.MustParseAddr("192.0.2.14"),
		netip.MustParseAddr("192.0.2.15"),
	}
	maxI, runnerI := p2cTop2(seed, servers, name, dnsmsg.TypeA)

	h := NewHealth()
	plan := func() ([]netip.Addr, int) {
		return h.planExchange(SelectP2C, seed, servers, name, dnsmsg.TypeA)
	}

	// (1) Pure function: two calls, one answer.
	cands1, start1 := plan()
	cands2, start2 := plan()
	if start1 != start2 || len(cands1) != len(cands2) {
		t.Fatalf("planExchange not pure: (%v,%d) then (%v,%d)", cands1, start1, cands2, start2)
	}
	for i := range cands1 {
		if cands1[i] != cands2[i] {
			t.Fatalf("candidate order changed between identical calls at %d", i)
		}
	}

	// (2) Fresh health: max rendezvous weight wins.
	if start1 != maxI {
		t.Fatalf("fresh pick = %d, want max-weight index %d", start1, maxI)
	}

	// (3) Measuring only the runner-up must not flip the pick.
	observeRTT(h, servers[runnerI], 3*time.Millisecond)
	if _, start := plan(); start != maxI {
		t.Fatalf("one-sided estimate flipped pick to %d, want %d", start, maxI)
	}

	// (4a) Max-weight measured slower than runner-up: runner-up wins.
	observeRTT(h, servers[maxI], 100*time.Millisecond)
	if _, start := plan(); start != runnerI {
		t.Fatalf("pick = %d with slow max-weight server, want runner-up %d", start, runnerI)
	}

	// (4b) Drive the max-weight estimate below the runner-up's: it takes
	// the slot back. (EWMA moves 1/10th per pass, so repeat.)
	for i := 0; i < 64; i++ {
		observeRTT(h, servers[maxI], time.Millisecond)
	}
	if h.EwmaRTT(servers[maxI]) >= h.EwmaRTT(servers[runnerI]) {
		t.Fatalf("EWMA did not converge: max %v, runner %v",
			h.EwmaRTT(servers[maxI]), h.EwmaRTT(servers[runnerI]))
	}
	if _, start := plan(); start != maxI {
		t.Fatalf("pick = %d with fast max-weight server, want %d", start, maxI)
	}

	// (5) Subset stability: drop one non-top-2 candidate; the picked
	// server (by address, not index) must not change.
	_, fullStart := plan()
	picked := servers[fullStart]
	for drop := range servers {
		if drop == maxI || drop == runnerI {
			continue
		}
		subset := make([]netip.Addr, 0, len(servers)-1)
		for i, s := range servers {
			if i != drop {
				subset = append(subset, s)
			}
		}
		cands, start := h.planExchange(SelectP2C, seed, subset, name, dnsmsg.TypeA)
		if cands[start] != picked {
			t.Errorf("dropping %v changed pick from %v to %v", servers[drop], picked, cands[start])
		}
	}
}

// TestP2CSingleAndFirst: degenerate inputs bypass the draw — SelectFirst
// always starts at index 0, and fewer than two candidates leave nothing to
// choose between.
func TestP2CSingleAndFirst(t *testing.T) {
	h := NewHealth()
	name := dnsmsg.Name("www.example.com")
	one := []netip.Addr{netip.MustParseAddr("192.0.2.21")}
	two := []netip.Addr{
		netip.MustParseAddr("192.0.2.21"),
		netip.MustParseAddr("192.0.2.22"),
	}
	if _, start := h.planExchange(SelectP2C, 1, one, name, dnsmsg.TypeA); start != 0 {
		t.Errorf("single candidate start = %d, want 0", start)
	}
	if _, start := h.planExchange(SelectFirst, 1, two, name, dnsmsg.TypeA); start != 0 {
		t.Errorf("SelectFirst start = %d, want 0", start)
	}
}
