package dnsresolver

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dnszone"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// fixture is a miniature Internet: a root server, a com/net TLD server, an
// authoritative server for example.com, and a provider server for cdn.net.
type fixture struct {
	clock *simtime.Simulated
	net   *netsim.Network

	rootAddr netip.Addr
	tldAddr  netip.Addr
	authAddr netip.Addr
	provAddr netip.Addr

	rootSrv *dnsserver.Server
	tldSrv  *dnsserver.Server
	authSrv *dnsserver.Server
	provSrv *dnsserver.Server

	rootZone *dnszone.Zone
	tldZone  *dnszone.Zone
	authZone *dnszone.Zone
	provZone *dnszone.Zone

	resolver *Resolver
}

func soa(mname dnsmsg.Name) dnsmsg.SOAData {
	return dnsmsg.SOAData{MName: mname, RName: "hostmaster." + mname, Serial: 1, Minimum: 300}
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{
		clock:    simtime.NewSimulated(),
		rootAddr: netip.MustParseAddr("192.0.2.1"),
		tldAddr:  netip.MustParseAddr("192.0.2.2"),
		authAddr: netip.MustParseAddr("192.0.2.3"),
		provAddr: netip.MustParseAddr("192.0.2.4"),
	}
	f.net = netsim.New(netsim.Config{Clock: f.clock})

	// Root zone: delegate com and net to the shared TLD server.
	f.rootZone = dnszone.New("", soa("a.root-servers.net"))
	f.rootZone.MustAdd(dnsmsg.NewNS("com", 48*time.Hour, "a.gtld-servers.net"))
	f.rootZone.MustAdd(dnsmsg.NewNS("net", 48*time.Hour, "a.gtld-servers.net"))
	f.rootZone.MustAdd(dnsmsg.NewA("a.gtld-servers.net", 48*time.Hour, f.tldAddr))

	// TLD server hosts both com and net.
	f.tldZone = dnszone.New("com", soa("a.gtld-servers.net"))
	f.tldZone.MustAdd(dnsmsg.NewNS("example.com", 24*time.Hour, "ns1.example.com"))
	f.tldZone.MustAdd(dnsmsg.NewA("ns1.example.com", 24*time.Hour, f.authAddr))
	netZone := dnszone.New("net", soa("a.gtld-servers.net"))
	netZone.MustAdd(dnsmsg.NewNS("cdn.net", 24*time.Hour, "ns1.cdn.net"))
	netZone.MustAdd(dnsmsg.NewA("ns1.cdn.net", 24*time.Hour, f.provAddr))

	// example.com authoritative content.
	f.authZone = dnszone.New("example.com", soa("ns1.example.com"))
	f.authZone.MustAdd(dnsmsg.NewA("www.example.com", 5*time.Minute, netip.MustParseAddr("10.1.0.1")))
	f.authZone.MustAdd(dnsmsg.NewCNAME("cdn-www.example.com", 5*time.Minute, "edge7.cdn.net"))
	f.authZone.MustAdd(dnsmsg.NewNS("example.com", 24*time.Hour, "ns1.example.com"))

	// Provider zone (cdn.net) with an edge A record.
	f.provZone = dnszone.New("cdn.net", soa("ns1.cdn.net"))
	f.provZone.MustAdd(dnsmsg.NewA("edge7.cdn.net", 30*time.Second, netip.MustParseAddr("10.9.0.7")))
	f.provZone.MustAdd(dnsmsg.NewNS("cdn.net", 24*time.Hour, "ns1.cdn.net"))
	f.provZone.MustAdd(dnsmsg.NewA("ns1.cdn.net", 24*time.Hour, f.provAddr))

	f.rootSrv = dnsserver.New(dnsserver.Config{Name: "root"})
	f.rootSrv.AddZone(f.rootZone)
	f.tldSrv = dnsserver.New(dnsserver.Config{Name: "tld"})
	f.tldSrv.AddZone(f.tldZone)
	f.tldSrv.AddZone(netZone)
	f.authSrv = dnsserver.New(dnsserver.Config{Name: "auth"})
	f.authSrv.AddZone(f.authZone)
	f.provSrv = dnsserver.New(dnsserver.Config{Name: "prov"})
	f.provSrv.AddZone(f.provZone)

	f.net.Register(netsim.Endpoint{Addr: f.rootAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, f.rootSrv)
	f.net.Register(netsim.Endpoint{Addr: f.tldAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, f.tldSrv)
	f.net.Register(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS}, netsim.RegionLondon, f.authSrv)
	f.net.Register(netsim.Endpoint{Addr: f.provAddr, Port: netsim.PortDNS}, netsim.RegionTokyo, f.provSrv)

	f.resolver = New(Config{
		Network: f.net,
		Clock:   f.clock,
		Addr:    netip.MustParseAddr("198.51.100.53"),
		Region:  netsim.RegionOregon,
		Roots:   []netip.Addr{f.rootAddr},
		Rand:    rand.New(rand.NewSource(5)),
	})
	return f
}

func TestResolveSimpleA(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	addrs := res.Addrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("10.1.0.1") {
		t.Fatalf("addrs = %v", addrs)
	}
	if len(res.Chain) != 0 {
		t.Fatalf("unexpected chain %v", res.Chain)
	}
	if res.FinalName() != "www.example.com" {
		t.Fatalf("FinalName = %v", res.FinalName())
	}
}

func TestResolveCrossZoneCNAME(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("cdn-www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if got := res.CNAMETargets(); len(got) != 1 || got[0] != "edge7.cdn.net" {
		t.Fatalf("chain targets = %v", got)
	}
	if addrs := res.Addrs(); len(addrs) != 1 || addrs[0] != netip.MustParseAddr("10.9.0.7") {
		t.Fatalf("addrs = %v", addrs)
	}
	if res.FinalName() != "edge7.cdn.net" {
		t.Fatalf("FinalName = %v", res.FinalName())
	}
}

func TestResolveNXDomain(t *testing.T) {
	f := newFixture(t)
	_, err := f.resolver.Resolve("missing.example.com", dnsmsg.TypeA)
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
}

func TestResolveNoData(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeMX)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %v, want empty NODATA", res.Answers)
	}
}

func TestResolveNSRecords(t *testing.T) {
	f := newFixture(t)
	res, err := f.resolver.Resolve("example.com", dnsmsg.TypeNS)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	hosts := res.NSHosts()
	if len(hosts) != 1 || hosts[0] != "ns1.example.com" {
		t.Fatalf("NS hosts = %v", hosts)
	}
}

func TestCacheServesRepeatQueries(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	rootBefore := f.rootSrv.Queries()
	authBefore := f.authSrv.Queries()
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if f.rootSrv.Queries() != rootBefore || f.authSrv.Queries() != authBefore {
		t.Fatal("second resolution hit servers despite warm cache")
	}
}

func TestCacheRespectsTTLExpiry(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	// Change the record; within TTL the resolver must keep the old answer.
	if err := f.authZone.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("www.example.com", 5*time.Minute, netip.MustParseAddr("10.1.0.99"))); err != nil {
		t.Fatal(err)
	}
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.1.0.1") {
		t.Fatalf("expected cached answer, got %v", res.Addrs())
	}
	// After TTL expiry the new record must surface.
	f.clock.Advance(6 * time.Minute)
	res, err = f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.1.0.99") {
		t.Fatalf("expected fresh answer after TTL, got %v", res.Addrs())
	}
}

func TestPurgeCacheForcesRefetch(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if f.resolver.CacheLen() == 0 {
		t.Fatal("cache empty after resolution")
	}
	if err := f.authZone.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("www.example.com", 5*time.Minute, netip.MustParseAddr("10.1.0.42"))); err != nil {
		t.Fatal(err)
	}
	f.resolver.PurgeCache()
	if f.resolver.CacheLen() != 0 {
		t.Fatal("cache not empty after purge")
	}
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.1.0.42") {
		t.Fatalf("purge did not force refetch: %v", res.Addrs())
	}
}

// TestStaleDelegationStillQueried reproduces the root cause of residual
// resolution (§VI-A): a resolver holding a cached NS delegation keeps
// querying the previous provider's nameserver even after the parent zone
// has been re-delegated.
func TestStaleDelegationStillQueried(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}

	// The domain moves to a new provider: parent delegation now points at
	// the provider server, which serves a different answer.
	newAuth := dnszone.New("example.com", soa("ns1.cdn.net"))
	newAuth.MustAdd(dnsmsg.NewA("www.example.com", 5*time.Minute, netip.MustParseAddr("10.9.0.200")))
	f.provSrv.AddZone(newAuth)
	if err := f.tldZone.Set("example.com", dnsmsg.TypeNS,
		dnsmsg.NewNS("example.com", 24*time.Hour, "ns1.cdn.net")); err != nil {
		t.Fatal(err)
	}
	if err := f.tldZone.Set("ns1.example.com", dnsmsg.TypeA); err != nil { // drop old glue
		t.Fatal(err)
	}

	// Within the answer TTL nothing changes; advance past it but keep the
	// (24h) delegation cached: resolver must still ask the OLD server.
	f.clock.Advance(10 * time.Minute)
	authBefore := f.authSrv.Queries()
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if f.authSrv.Queries() == authBefore {
		t.Fatal("resolver did not query the stale (previous) nameserver")
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.1.0.1") {
		t.Fatalf("stale delegation answer = %v, want old provider's 10.1.0.1", res.Addrs())
	}

	// After purge (or NS TTL expiry) the new delegation takes over.
	f.resolver.PurgeCache()
	res, err = f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.9.0.200") {
		t.Fatalf("post-purge answer = %v, want new provider's 10.9.0.200", res.Addrs())
	}
}

func TestResolveServFailWhenAuthDown(t *testing.T) {
	f := newFixture(t)
	f.net.Deregister(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS})
	_, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if !errors.Is(err, ErrServFail) {
		t.Fatalf("err = %v, want ErrServFail", err)
	}
}

func TestResolveDelegationWithoutGlue(t *testing.T) {
	f := newFixture(t)
	// Delegate nogluesite.com to a nameserver under cdn.net: resolving the
	// NS host's address requires a nested resolution through net.
	f.tldZone.MustAdd(dnsmsg.NewNS("nogluesite.com", 24*time.Hour, "ns-glueless.cdn.net"))
	f.provZone.MustAdd(dnsmsg.NewA("ns-glueless.cdn.net", time.Hour, f.provAddr))
	siteZone := dnszone.New("nogluesite.com", soa("ns-glueless.cdn.net"))
	siteZone.MustAdd(dnsmsg.NewA("www.nogluesite.com", time.Minute, netip.MustParseAddr("10.77.0.1")))
	f.provSrv.AddZone(siteZone)

	res, err := f.resolver.Resolve("www.nogluesite.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if addrs := res.Addrs(); len(addrs) != 1 || addrs[0] != netip.MustParseAddr("10.77.0.1") {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestResolveCNAMELoopFails(t *testing.T) {
	f := newFixture(t)
	f.authZone.MustAdd(dnsmsg.NewCNAME("loop1.example.com", time.Minute, "loop2.example.com"))
	f.authZone.MustAdd(dnsmsg.NewCNAME("loop2.example.com", time.Minute, "loop1.example.com"))
	_, err := f.resolver.Resolve("loop1.example.com", dnsmsg.TypeA)
	if !errors.Is(err, ErrServFail) {
		t.Fatalf("err = %v, want ErrServFail on CNAME loop", err)
	}
}

func TestNegativeCaching(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("ghost.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatal("expected NXDOMAIN")
	}
	authBefore := f.authSrv.Queries()
	if _, err := f.resolver.Resolve("ghost.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatal("expected cached NXDOMAIN")
	}
	if f.authSrv.Queries() != authBefore {
		t.Fatal("negative answer was not cached")
	}
}

func TestClientExchangeDirect(t *testing.T) {
	f := newFixture(t)
	c := f.resolver.Client()
	resp, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if !resp.Header.Authoritative {
		t.Error("direct authoritative answer missing AA")
	}
}

func TestClientExchangeTimeout(t *testing.T) {
	f := newFixture(t)
	_, err := f.resolver.Client().Exchange(netip.MustParseAddr("192.0.2.250"), "www.example.com", dnsmsg.TypeA)
	if !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestZeroTTLNotCached(t *testing.T) {
	f := newFixture(t)
	if err := f.authZone.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("www.example.com", 0, netip.MustParseAddr("10.1.0.1"))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if err := f.authZone.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("www.example.com", 0, netip.MustParseAddr("10.1.0.50"))); err != nil {
		t.Fatal(err)
	}
	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs()[0] != netip.MustParseAddr("10.1.0.50") {
		t.Fatalf("zero-TTL answer was cached: %v", res.Addrs())
	}
}

// TestNegativeTTLFromSOA: RFC 2308 — the NXDOMAIN cache entry expires with
// the zone's SOA minimum, not the resolver default.
func TestNegativeTTLFromSOA(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("ghost.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatal("expected NXDOMAIN")
	}
	// The fixture zone's SOA minimum is 300s (dnsmsg.NewSOA convention via
	// dnszone). Within it, the negative entry serves from cache.
	f.clock.Advance(2 * time.Minute)
	authBefore := f.authSrv.Queries()
	if _, err := f.resolver.Resolve("ghost.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatal("expected cached NXDOMAIN")
	}
	if f.authSrv.Queries() != authBefore {
		t.Fatal("negative entry not served from cache within SOA minimum")
	}
	// Past the SOA minimum the entry expires and the server is re-queried.
	f.clock.Advance(4 * time.Minute)
	if _, err := f.resolver.Resolve("ghost.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatal("expected NXDOMAIN")
	}
	if f.authSrv.Queries() == authBefore {
		t.Fatal("negative entry survived past the SOA minimum")
	}
}
