//go:build !race

package dnsresolver

// raceEnabled is false without -race; see race_on_test.go.
const raceEnabled = false
