package dnsresolver

import (
	"net/netip"
	"sort"
	"sync"
)

// Health tracks per-nameserver availability from observed query outcomes
// and sidelines servers that keep timing out.
//
// Observations accumulate as per-pass booleans (did the server answer at
// all? did it time out at all?) and fold into sidelining decisions only
// at Checkpoint, which the measurement loops call at pass boundaries
// while the world is quiescent. Two properties follow:
//
//   - Within a pass the sideline set is frozen, so server selection is
//     identical however the pass's queries interleave.
//   - The per-pass booleans are order-independent (a set union), so the
//     checkpoint decision is too: serial and parallel passes that observe
//     the same logical outcomes sideline the same servers.
//
// A server with SidelineAfter consecutive all-timeout passes is sidelined
// for SidelineFor passes, then probed back in: it becomes selectable
// again, and the next pass's outcomes decide whether it stays.
type Health struct {
	mu      sync.Mutex
	entries map[netip.Addr]*healthEntry
	events  uint64 // total sideline transitions
}

type healthEntry struct {
	// Current-pass observations (set union; order-independent).
	sawSuccess bool
	sawTimeout bool
	// Folded state, mutated only in Checkpoint.
	consecBadPasses int
	sidelinedFor    int
	sidelined       uint64 // times this server was sidelined
}

// NewHealth creates an empty tracker.
func NewHealth() *Health {
	return &Health{entries: make(map[netip.Addr]*healthEntry)}
}

func (h *Health) entry(addr netip.Addr) *healthEntry {
	e, ok := h.entries[addr]
	if !ok {
		e = &healthEntry{}
		h.entries[addr] = e
	}
	return e
}

// ObserveSuccess records that addr answered a query this pass.
func (h *Health) ObserveSuccess(addr netip.Addr) {
	h.mu.Lock()
	h.entry(addr).sawSuccess = true
	h.mu.Unlock()
}

// ObserveTimeout records that a query to addr timed out this pass.
func (h *Health) ObserveTimeout(addr netip.Addr) {
	h.mu.Lock()
	h.entry(addr).sawTimeout = true
	h.mu.Unlock()
}

// Available reports whether addr is selectable (not sidelined). Unknown
// servers are available.
func (h *Health) Available(addr netip.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.entries[addr]
	return !ok || e.sidelinedFor == 0
}

// Checkpoint folds the pass's observations into sideline state under the
// given policy and resets them. Call it at pass boundaries only, from one
// goroutine, while no queries are in flight.
func (h *Health) Checkpoint(p Policy) {
	p = p.normalized()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.entries {
		if e.sidelinedFor > 0 {
			// Sitting out; observations (there should be none unless every
			// candidate was sidelined) don't count against the sentence.
			e.sidelinedFor--
			e.sawSuccess, e.sawTimeout = false, false
			continue
		}
		switch {
		case e.sawSuccess:
			e.consecBadPasses = 0
		case e.sawTimeout:
			e.consecBadPasses++
			if p.SidelineAfter > 0 && e.consecBadPasses >= p.SidelineAfter {
				e.sidelinedFor = p.SidelineFor
				e.consecBadPasses = 0
				e.sidelined++
				h.events++
			}
		}
		e.sawSuccess, e.sawTimeout = false, false
	}
}

// Sidelined returns the currently sidelined server addresses, sorted.
func (h *Health) Sidelined() []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []netip.Addr
	for addr, e := range h.entries {
		if e.sidelinedFor > 0 {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Events returns the total number of sideline transitions ever made.
func (h *Health) Events() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.events
}

// HealthState is a Health tracker's serializable shape: every entry's
// folded sideline state plus its not-yet-folded per-pass observations
// (a checkpoint can land between observations and the pass-boundary
// Checkpoint call), and the lifetime event counter.
type HealthState struct {
	Entries []HealthEntryState
	Events  uint64
}

// HealthEntryState is one server's health record.
type HealthEntryState struct {
	Addr            netip.Addr
	SawSuccess      bool
	SawTimeout      bool
	ConsecBadPasses int
	SidelinedFor    int
	Sidelined       uint64
}

// ExportState captures the tracker's state, entries sorted by address
// for a deterministic encoding.
func (h *Health) ExportState() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HealthState{Events: h.events}
	for addr, e := range h.entries {
		st.Entries = append(st.Entries, HealthEntryState{
			Addr:            addr,
			SawSuccess:      e.sawSuccess,
			SawTimeout:      e.sawTimeout,
			ConsecBadPasses: e.consecBadPasses,
			SidelinedFor:    e.sidelinedFor,
			Sidelined:       e.sidelined,
		})
	}
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].Addr.Less(st.Entries[j].Addr) })
	return st
}

// RestoreState overwrites the tracker's state from an export — the
// campaign resume path, so sideline sentences and bad-pass streaks
// carry across a restart exactly.
func (h *Health) RestoreState(st HealthState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = st.Events
	h.entries = make(map[netip.Addr]*healthEntry, len(st.Entries))
	for _, e := range st.Entries {
		h.entries[e.Addr] = &healthEntry{
			sawSuccess:      e.SawSuccess,
			sawTimeout:      e.SawTimeout,
			consecBadPasses: e.ConsecBadPasses,
			sidelinedFor:    e.SidelinedFor,
			sidelined:       e.Sidelined,
		}
	}
}

// filterAvailable returns the available subset of servers in order; when
// every candidate is sidelined it returns servers unchanged, so health
// can degrade selection but never strand a query.
func (h *Health) filterAvailable(servers []netip.Addr) []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	avail := servers[:0:0]
	for _, s := range servers {
		if e, ok := h.entries[s]; !ok || e.sidelinedFor == 0 {
			avail = append(avail, s)
		}
	}
	if len(avail) == 0 {
		return servers
	}
	return avail
}
