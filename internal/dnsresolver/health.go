package dnsresolver

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"rrdps/internal/dnsmsg"
)

// EWMA-RTT parameters for latency-adaptive selection.
const (
	// rttEwmaDecay is the smoothing divisor for folding a pass's observed
	// RTT into the running estimate (the dnscrypt-proxy value: each pass
	// moves the estimate 1/10th of the way to the new observation).
	rttEwmaDecay = 10.0
	// rttTimeoutPenalty is the RTT charged to a server whose pass produced
	// only timeouts — well above any real simulated RTT, so persistent
	// timeouts push a server's estimate toward the back of the pack even
	// before sidelining kicks in.
	rttTimeoutPenalty = time.Second
)

// Health tracks per-nameserver availability from observed query outcomes
// and sidelines servers that keep timing out.
//
// Observations accumulate as per-pass booleans (did the server answer at
// all? did it time out at all?) and fold into sidelining decisions only
// at Checkpoint, which the measurement loops call at pass boundaries
// while the world is quiescent. Two properties follow:
//
//   - Within a pass the sideline set is frozen, so server selection is
//     identical however the pass's queries interleave.
//   - The per-pass booleans are order-independent (a set union), so the
//     checkpoint decision is too: serial and parallel passes that observe
//     the same logical outcomes sideline the same servers.
//
// A server with SidelineAfter consecutive all-timeout passes is sidelined
// for SidelineFor passes, then probed back in: it becomes selectable
// again, and the next pass's outcomes decide whether it stays.
type Health struct {
	mu      sync.Mutex
	entries map[netip.Addr]*healthEntry
	events  uint64 // total sideline transitions
}

type healthEntry struct {
	// Current-pass observations (set union / min; order-independent).
	sawSuccess bool
	sawTimeout bool
	// passMinRTT is the smallest RTT observed this pass (0 = none). Min is
	// the fold that keeps serial≡parallel: racing workers may duplicate a
	// logical query, but duplicates carry identical content-hashed RTTs,
	// so the pass minimum is the same set function either way.
	passMinRTT time.Duration
	// Folded state, mutated only in Checkpoint.
	consecBadPasses int
	sidelinedFor    int
	sidelined       uint64  // times this server was sidelined
	ewmaRTT         float64 // smoothed RTT estimate in nanoseconds; 0 = none
}

// NewHealth creates an empty tracker.
func NewHealth() *Health {
	return &Health{entries: make(map[netip.Addr]*healthEntry)}
}

func (h *Health) entry(addr netip.Addr) *healthEntry {
	e, ok := h.entries[addr]
	if !ok {
		e = &healthEntry{}
		h.entries[addr] = e
	}
	return e
}

// ObserveSuccess records that addr answered a query this pass.
func (h *Health) ObserveSuccess(addr netip.Addr) {
	h.mu.Lock()
	h.entry(addr).sawSuccess = true
	h.mu.Unlock()
}

// ObserveTimeout records that a query to addr timed out this pass.
func (h *Health) ObserveTimeout(addr netip.Addr) {
	h.mu.Lock()
	h.entry(addr).sawTimeout = true
	h.mu.Unlock()
}

// ObserveRTT records the round-trip time of a successful exchange with
// addr this pass. Only the pass minimum is kept.
func (h *Health) ObserveRTT(addr netip.Addr, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	h.mu.Lock()
	e := h.entry(addr)
	if e.passMinRTT == 0 || rtt < e.passMinRTT {
		e.passMinRTT = rtt
	}
	h.mu.Unlock()
}

// EwmaRTT returns the current smoothed RTT estimate for addr (0 when the
// tracker has no estimate yet). The estimate changes only at Checkpoint.
func (h *Health) EwmaRTT(addr netip.Addr) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[addr]; ok {
		return time.Duration(e.ewmaRTT)
	}
	return 0
}

// Available reports whether addr is selectable (not sidelined). Unknown
// servers are available.
func (h *Health) Available(addr netip.Addr) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.entries[addr]
	return !ok || e.sidelinedFor == 0
}

// Checkpoint folds the pass's observations into sideline state under the
// given policy and resets them. Call it at pass boundaries only, from one
// goroutine, while no queries are in flight.
func (h *Health) Checkpoint(p Policy) {
	p = p.normalized()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.entries {
		if e.sidelinedFor > 0 {
			// Sitting out; observations (there should be none unless every
			// candidate was sidelined) don't count against the sentence.
			e.sidelinedFor--
			e.sawSuccess, e.sawTimeout, e.passMinRTT = false, false, 0
			continue
		}
		// Fold the pass's RTT evidence into the smoothed estimate: the
		// pass-minimum when the server answered, a penalty charge when it
		// only timed out. Both are order-independent summaries, so the
		// post-checkpoint estimate is too.
		switch {
		case e.passMinRTT > 0:
			e.foldRTT(float64(e.passMinRTT))
		case e.sawTimeout:
			e.foldRTT(float64(rttTimeoutPenalty))
		}
		switch {
		case e.sawSuccess:
			e.consecBadPasses = 0
		case e.sawTimeout:
			e.consecBadPasses++
			if p.SidelineAfter > 0 && e.consecBadPasses >= p.SidelineAfter {
				e.sidelinedFor = p.SidelineFor
				e.consecBadPasses = 0
				e.sidelined++
				h.events++
			}
		}
		e.sawSuccess, e.sawTimeout, e.passMinRTT = false, false, 0
	}
}

// foldRTT moves the EWMA estimate 1/rttEwmaDecay of the way toward x
// (nanoseconds); the first observation seeds it outright.
func (e *healthEntry) foldRTT(x float64) {
	if e.ewmaRTT == 0 {
		e.ewmaRTT = x
		return
	}
	e.ewmaRTT += (x - e.ewmaRTT) / rttEwmaDecay
}

// Sidelined returns the currently sidelined server addresses, sorted.
func (h *Health) Sidelined() []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []netip.Addr
	for addr, e := range h.entries {
		if e.sidelinedFor > 0 {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Events returns the total number of sideline transitions ever made.
func (h *Health) Events() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.events
}

// HealthState is a Health tracker's serializable shape: every entry's
// folded sideline state plus its not-yet-folded per-pass observations
// (a checkpoint can land between observations and the pass-boundary
// Checkpoint call), and the lifetime event counter.
type HealthState struct {
	Entries []HealthEntryState
	Events  uint64
}

// HealthEntryState is one server's health record. The RTT fields were
// added with EWMA selection; checkpoints written before then decode with
// zero values, which the tracker treats as "no estimate yet".
type HealthEntryState struct {
	Addr            netip.Addr
	SawSuccess      bool
	SawTimeout      bool
	ConsecBadPasses int
	SidelinedFor    int
	Sidelined       uint64
	PassMinRTT      time.Duration `json:",omitempty"`
	EwmaRTT         float64       `json:",omitempty"`
}

// ExportState captures the tracker's state, entries sorted by address
// for a deterministic encoding.
func (h *Health) ExportState() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HealthState{Events: h.events}
	for addr, e := range h.entries {
		st.Entries = append(st.Entries, HealthEntryState{
			Addr:            addr,
			SawSuccess:      e.sawSuccess,
			SawTimeout:      e.sawTimeout,
			ConsecBadPasses: e.consecBadPasses,
			SidelinedFor:    e.sidelinedFor,
			Sidelined:       e.sidelined,
			PassMinRTT:      e.passMinRTT,
			EwmaRTT:         e.ewmaRTT,
		})
	}
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].Addr.Less(st.Entries[j].Addr) })
	return st
}

// RestoreState overwrites the tracker's state from an export — the
// campaign resume path, so sideline sentences and bad-pass streaks
// carry across a restart exactly.
func (h *Health) RestoreState(st HealthState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = st.Events
	h.entries = make(map[netip.Addr]*healthEntry, len(st.Entries))
	for _, e := range st.Entries {
		h.entries[e.Addr] = &healthEntry{
			sawSuccess:      e.SawSuccess,
			sawTimeout:      e.SawTimeout,
			passMinRTT:      e.PassMinRTT,
			consecBadPasses: e.ConsecBadPasses,
			sidelinedFor:    e.SidelinedFor,
			sidelined:       e.Sidelined,
			ewmaRTT:         e.EwmaRTT,
		}
	}
}

// filterAvailable returns the available subset of servers in order; when
// every candidate is sidelined it returns servers unchanged, so health
// can degrade selection but never strand a query.
func (h *Health) filterAvailable(servers []netip.Addr) []netip.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.filterAvailableLocked(servers)
}

func (h *Health) filterAvailableLocked(servers []netip.Addr) []netip.Addr {
	// Common case first: nothing sidelined means servers passes through
	// without a copy — the resolve hot path never pays for the rare one.
	sidelined := false
	for _, s := range servers {
		if e, ok := h.entries[s]; ok && e.sidelinedFor > 0 {
			sidelined = true
			break
		}
	}
	if !sidelined {
		return servers
	}
	avail := servers[:0:0]
	for _, s := range servers {
		if e, ok := h.entries[s]; !ok || e.sidelinedFor == 0 {
			avail = append(avail, s)
		}
	}
	if len(avail) == 0 {
		return servers
	}
	return avail
}

// planExchange filters sidelined servers and picks the starting candidate
// index per the policy's selection strategy, under one lock acquisition.
//
// With SelectP2C the two "choices" are the candidates with the top two
// rendezvous weights — each server's weight is a hash of (seed, server,
// query identity), computed per candidate rather than by indexing into
// the list — and the lower EWMA-RTT estimate wins. A server without an
// estimate (EWMA 0) beats any measured one so unexplored servers get
// measured; ties resolve to the higher rendezvous weight. Two properties
// follow:
//
//   - Estimates only move at Checkpoint, so within a pass the pick is a
//     pure function of the query identity — independent of scheduling.
//   - Weights attach to servers, not list positions, so when two runs see
//     slightly different candidate sets for the same logical query (host
//     addresses can be warmth-dependent: one run resolves a nameserver
//     from glue an earlier referral cached, the other finds its lookup
//     eaten by the fault plan) the pick still agrees whenever both runs
//     hold the top-two weighted servers. An index-derived pick (hash mod
//     len) would diverge on every such set difference.
func (h *Health) planExchange(sel Selection, seed int64, servers []netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) ([]netip.Addr, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cands := h.filterAvailableLocked(servers)
	if sel != SelectP2C || len(cands) < 2 {
		return cands, 0
	}
	// Rendezvous scan: i gets the max-weight candidate, j the runner-up.
	// Attempt 0 keeps the weight stream disjoint from query IDs and
	// backoff draws, which hash attempts >= 1.
	i, j := -1, -1
	var wi, wj uint64
	for k, s := range cands {
		w := queryHash(seed, s, name, qtype, 0)
		switch {
		case i < 0 || w > wi:
			j, wj = i, wi
			i, wi = k, w
		case j < 0 || w > wj:
			j, wj = k, w
		}
	}
	var ei, ej float64
	if e, ok := h.entries[cands[i]]; ok {
		ei = e.ewmaRTT
	}
	if e, ok := h.entries[cands[j]]; ok {
		ej = e.ewmaRTT
	}
	// Lower estimate wins, but only when both servers are measured; if
	// either estimate is absent (EWMA 0) the max-weight candidate keeps
	// the slot. Favoring unexplored servers would read "has this server
	// been measured yet" into the pick, and that bit is warmth-dependent
	// (a run that answered from cache never queried the server) — exactly
	// the scheduling sensitivity selection must not have. Ties also keep
	// the max-weight candidate.
	if ei != 0 && ej != 0 && ej < ei {
		return cands, j
	}
	return cands, i
}
