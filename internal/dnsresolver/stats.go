package dnsresolver

import (
	"fmt"
	"sync/atomic"
	"time"
)

// QueryStats is a snapshot of a client's resilience accounting: how many
// logical queries it issued, how many wire attempts that took, and what
// the retry/hedge machinery recovered or gave up on.
//
// Counters are sums of per-attempt events, so aggregating across clients
// (Add) and comparing across serial/parallel runs is well-defined. For
// the direct-scan path the counters are exactly identical between serial
// and parallel runs of the same seed and policy; for cache-backed
// resolver paths, concurrent workers can race on a cold cache and issue
// duplicate upstream attempts (values are unaffected).
type QueryStats struct {
	// Queries counts logical queries (Exchange/ExchangeAny calls).
	Queries uint64
	// Attempts counts wire sends, including retries and hedges.
	Attempts uint64
	// Retries counts attempts after the first of a logical query.
	Retries uint64
	// Hedges counts attempts sent to a server other than the query's
	// primary candidate.
	Hedges uint64
	// Timeouts counts attempts that ended in a (possibly injected)
	// timeout.
	Timeouts uint64
	// CorruptReplies counts attempts whose reply failed wire decoding —
	// retryable, unlike validation failures.
	CorruptReplies uint64
	// BadResponses counts replies that decoded but failed ID/question
	// validation — possible spoofing, never retried.
	BadResponses uint64
	// Recovered counts logical queries that failed at least once and then
	// succeeded on a retry or hedge.
	Recovered uint64
	// Failed counts logical queries that exhausted their attempt budget
	// or hit a fatal error.
	Failed uint64
	// SidelineEvents counts health-tracker sideline transitions.
	SidelineEvents uint64
	// Backoff is the total backoff the retry schedule accounted. The
	// simulated clock does not advance mid-pass, so this is bookkeeping
	// (what a real deployment would have slept), not elapsed sim time.
	Backoff time.Duration
}

// Add returns the field-wise sum of s and o.
func (s QueryStats) Add(o QueryStats) QueryStats {
	s.Queries += o.Queries
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Hedges += o.Hedges
	s.Timeouts += o.Timeouts
	s.CorruptReplies += o.CorruptReplies
	s.BadResponses += o.BadResponses
	s.Recovered += o.Recovered
	s.Failed += o.Failed
	s.SidelineEvents += o.SidelineEvents
	s.Backoff += o.Backoff
	return s
}

// String renders a one-line summary.
func (s QueryStats) String() string {
	return fmt.Sprintf(
		"queries %d, attempts %d (retries %d, hedges %d), timeouts %d, corrupt %d, bad %d, recovered %d, failed %d, sidelined %d, backoff %v",
		s.Queries, s.Attempts, s.Retries, s.Hedges, s.Timeouts, s.CorruptReplies,
		s.BadResponses, s.Recovered, s.Failed, s.SidelineEvents, s.Backoff)
}

// statsCounters is the live, concurrency-safe accumulator behind
// QueryStats.
type statsCounters struct {
	queries, attempts, retries, hedges atomic.Uint64
	timeouts, corrupt, bad             atomic.Uint64
	recovered, failed                  atomic.Uint64
	backoffNanos                       atomic.Int64
}

// snapshot reads the counters; health supplies the sideline totals.
func (c *statsCounters) snapshot(h *Health) QueryStats {
	s := QueryStats{
		Queries:        c.queries.Load(),
		Attempts:       c.attempts.Load(),
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		Timeouts:       c.timeouts.Load(),
		CorruptReplies: c.corrupt.Load(),
		BadResponses:   c.bad.Load(),
		Recovered:      c.recovered.Load(),
		Failed:         c.failed.Load(),
		Backoff:        time.Duration(c.backoffNanos.Load()),
	}
	if h != nil {
		s.SidelineEvents = h.Events()
	}
	return s
}

// reset zeroes the accumulator.
func (c *statsCounters) reset() {
	c.queries.Store(0)
	c.attempts.Store(0)
	c.retries.Store(0)
	c.hedges.Store(0)
	c.timeouts.Store(0)
	c.corrupt.Store(0)
	c.bad.Store(0)
	c.recovered.Store(0)
	c.failed.Store(0)
	c.backoffNanos.Store(0)
}
