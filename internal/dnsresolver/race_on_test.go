//go:build race

package dnsresolver

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates on paths that are otherwise
// allocation-free. Alloc-budget assertions skip under it; the budget is
// enforced by the plain `go test` run and the CI bench gate.
const raceEnabled = true
