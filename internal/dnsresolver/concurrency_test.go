package dnsresolver

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

// TestConcurrentResolves hammers one resolver from many goroutines; the
// race detector and the answer checks cover cache and client locking.
func TestConcurrentResolves(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := dnsmsg.Name("www.example.com")
			if i%2 == 1 {
				name = "cdn-www.example.com"
			}
			res, err := f.resolver.Resolve(name, dnsmsg.TypeA)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Addrs()) != 1 {
				errs <- errMissingAnswer
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMissingAnswer = &missingAnswerError{}

type missingAnswerError struct{}

func (*missingAnswerError) Error() string { return "resolution returned no addresses" }

// TestConcurrentResolveAndPurge mixes cache purges into concurrent
// resolutions.
func TestConcurrentResolveAndPurge(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.resolver.PurgeCache()
			}
		}
	}()
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestConcurrentZoneMutationDuringResolve mutates the authoritative zone
// while resolutions are in flight; answers must always be one of the two
// valid addresses, never torn state.
func TestConcurrentZoneMutationDuringResolve(t *testing.T) {
	f := newFixture(t)
	a1 := netip.MustParseAddr("10.1.0.1")
	a2 := netip.MustParseAddr("10.1.0.2")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
				addr := a1
				if flip {
					addr = a2
				}
				flip = !flip
				if err := f.authZone.Set("www.example.com", dnsmsg.TypeA,
					dnsmsg.NewA("www.example.com", time.Minute, addr)); err != nil {
					t.Errorf("zone set: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				f.resolver.PurgeCache()
				res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
				if err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				got := res.Addrs()
				if len(got) != 1 || (got[0] != a1 && got[0] != a2) {
					t.Errorf("torn answer: %v", got)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
