package dnsresolver

import (
	"reflect"
	"testing"
	"time"
)

// TestQueryStatsAddSumsEveryField builds a QueryStats with a distinct
// non-zero value in every field via reflection and checks Add doubles each
// one. If a field is added to QueryStats without extending Add, the loop
// sees an unchanged (or half-summed) field and fails, naming it — the
// guard ISSUE 3 asks for, so partial aggregation can't silently undercount
// parallel campaigns.
func TestQueryStatsAddSumsEveryField(t *testing.T) {
	var s QueryStats
	v := reflect.ValueOf(&s).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		val := int64(i + 1) // distinct per field, so swapped sums would also fail
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(val))
		case reflect.Int64: // time.Duration (Backoff)
			f.SetInt(val)
		default:
			t.Fatalf("QueryStats.%s has unsupported kind %s; extend this test and Add",
				typ.Field(i).Name, f.Kind())
		}
	}

	sum := reflect.ValueOf(s.Add(s))
	for i := 0; i < sum.NumField(); i++ {
		name := typ.Field(i).Name
		var got, want int64
		switch f := sum.Field(i); f.Kind() {
		case reflect.Uint64:
			got, want = int64(f.Uint()), 2*int64(i+1)
		case reflect.Int64:
			got, want = f.Int(), 2*int64(i+1)
		}
		if got != want {
			t.Errorf("Add does not sum QueryStats.%s: got %d, want %d — a field was added without extending Add",
				name, got, want)
		}
	}
}

// TestQueryStatsAddMatchesManualSum cross-checks Add against two unequal
// operands (not just the doubling case) including the Duration field.
func TestQueryStatsAddMatchesManualSum(t *testing.T) {
	a := QueryStats{Queries: 3, Attempts: 7, Retries: 4, Hedges: 2, Timeouts: 1,
		CorruptReplies: 5, BadResponses: 6, Recovered: 8, Failed: 9,
		SidelineEvents: 10, Backoff: 11 * time.Millisecond}
	b := QueryStats{Queries: 30, Attempts: 70, Retries: 40, Hedges: 20, Timeouts: 10,
		CorruptReplies: 50, BadResponses: 60, Recovered: 80, Failed: 90,
		SidelineEvents: 100, Backoff: 110 * time.Millisecond}
	want := QueryStats{Queries: 33, Attempts: 77, Retries: 44, Hedges: 22, Timeouts: 11,
		CorruptReplies: 55, BadResponses: 66, Recovered: 88, Failed: 99,
		SidelineEvents: 110, Backoff: 121 * time.Millisecond}
	if got := a.Add(b); got != want {
		t.Fatalf("Add mismatch:\n got %+v\nwant %+v", got, want)
	}
}
