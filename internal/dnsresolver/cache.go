package dnsresolver

import (
	"net/netip"
	"sync"
	"time"

	"rrdps/internal/dnsmsg"
)

// cacheKey identifies a cached answer RRset.
type cacheKey struct {
	name  dnsmsg.Name
	qtype dnsmsg.Type
}

// answerEntry is a cached positive or negative answer.
type answerEntry struct {
	// chain is the CNAME chain (possibly empty) leading to the answer.
	chain []dnsmsg.RR
	// answers are the records of the requested type at the chain's end.
	answers []dnsmsg.RR
	// rcode distinguishes NXDOMAIN negative entries.
	rcode   dnsmsg.RCode
	expires time.Time
}

// delegationEntry caches a zone cut: the nameserver names for a zone.
type delegationEntry struct {
	hosts   []dnsmsg.Name
	expires time.Time
}

// cache is the resolver's TTL-aware store. Entries are never served past
// their expiry; Purge empties everything (the paper's collector purges its
// resolver cache before every daily run so snapshots stay independent,
// §IV-B.1).
type cache struct {
	mu          sync.Mutex
	answers     map[cacheKey]answerEntry
	delegations map[dnsmsg.Name]delegationEntry
	hostAddrs   map[dnsmsg.Name]struct {
		addr    netip.Addr
		expires time.Time
	}
}

func newCache() *cache {
	c := &cache{}
	c.reset()
	return c
}

func (c *cache) reset() {
	c.answers = make(map[cacheKey]answerEntry)
	c.delegations = make(map[dnsmsg.Name]delegationEntry)
	c.hostAddrs = make(map[dnsmsg.Name]struct {
		addr    netip.Addr
		expires time.Time
	})
}

// Purge drops every cached entry.
func (c *cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
}

// Len returns the total number of live entries at now.
func (c *cache) Len(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.answers {
		if e.expires.After(now) {
			n++
		}
	}
	for _, e := range c.delegations {
		if e.expires.After(now) {
			n++
		}
	}
	for _, e := range c.hostAddrs {
		if e.expires.After(now) {
			n++
		}
	}
	return n
}

func (c *cache) getAnswer(now time.Time, key cacheKey) (answerEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.answers[key]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(c.answers, key)
		}
		return answerEntry{}, false
	}
	return e, true
}

func (c *cache) putAnswer(now time.Time, key cacheKey, e answerEntry, ttl time.Duration) {
	if ttl <= 0 {
		return // zero-TTL answers are never cached
	}
	e.expires = now.Add(ttl)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.answers[key] = e
}

func (c *cache) getDelegation(now time.Time, zone dnsmsg.Name) ([]dnsmsg.Name, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.delegations[zone]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(c.delegations, zone)
		}
		return nil, false
	}
	return append([]dnsmsg.Name(nil), e.hosts...), true
}

func (c *cache) putDelegation(now time.Time, zone dnsmsg.Name, hosts []dnsmsg.Name, ttl time.Duration) {
	if ttl <= 0 || len(hosts) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delegations[zone] = delegationEntry{
		hosts:   append([]dnsmsg.Name(nil), hosts...),
		expires: now.Add(ttl),
	}
}

// closestDelegation returns the cached zone cut deepest along name's
// ancestry, if any.
func (c *cache) closestDelegation(now time.Time, name dnsmsg.Name) (dnsmsg.Name, []dnsmsg.Name, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for zone := name; !zone.IsRoot(); zone = zone.Parent() {
		if e, ok := c.delegations[zone]; ok && e.expires.After(now) {
			return zone, append([]dnsmsg.Name(nil), e.hosts...), true
		}
	}
	return "", nil, false
}

func (c *cache) getHostAddr(now time.Time, host dnsmsg.Name) (netip.Addr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.hostAddrs[host]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(c.hostAddrs, host)
		}
		return netip.Addr{}, false
	}
	return e.addr, true
}

func (c *cache) putHostAddr(now time.Time, host dnsmsg.Name, addr netip.Addr, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hostAddrs[host] = struct {
		addr    netip.Addr
		expires time.Time
	}{addr: addr, expires: now.Add(ttl)}
}
