package dnsresolver

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/obs"
)

// cacheKey identifies a cached answer RRset.
type cacheKey struct {
	name  dnsmsg.Name
	qtype dnsmsg.Type
}

// answerEntry is a cached positive or negative answer.
type answerEntry struct {
	// chain is the CNAME chain (possibly empty) leading to the answer.
	chain []dnsmsg.RR
	// answers are the records of the requested type at the chain's end.
	answers []dnsmsg.RR
	// rcode distinguishes NXDOMAIN negative entries.
	rcode   dnsmsg.RCode
	expires time.Time
}

// delegationEntry caches a zone cut: the nameserver names for a zone.
type delegationEntry struct {
	hosts   []dnsmsg.Name
	expires time.Time
}

// hostAddrEntry caches one nameserver host's address.
type hostAddrEntry struct {
	addr    netip.Addr
	expires time.Time
}

// cacheShards is the lock-striping factor. Scan campaigns run dozens of
// workers against one resolver; 32 stripes keeps the probability of two
// workers colliding on one mutex low without bloating the struct.
const cacheShards = 32

// cacheShard is one stripe: a mutex plus its slice of each table.
type cacheShard struct {
	mu          sync.Mutex
	answers     map[cacheKey]answerEntry
	delegations map[dnsmsg.Name]delegationEntry
	hostAddrs   map[dnsmsg.Name]hostAddrEntry
}

func (s *cacheShard) resetLocked() {
	s.answers = make(map[cacheKey]answerEntry)
	s.delegations = make(map[dnsmsg.Name]delegationEntry)
	s.hostAddrs = make(map[dnsmsg.Name]hostAddrEntry)
}

// cache is the resolver's TTL-aware store, sharded so concurrent scan
// workers stop serializing on a single mutex. Entries are never served past
// their expiry; Purge empties everything (the paper's collector purges its
// resolver cache before every daily run so snapshots stay independent,
// §IV-B.1).
//
// Every entry kind (answers, delegations, host addresses) routes to a shard
// by an FNV-1a hash of the owner name, so all records for one name share a
// stripe while distinct names spread across all of them.
type cache struct {
	shards [cacheShards]cacheShard

	// obs is atomic so lookups never contend on a process-wide mutex —
	// that would undo the sharding.
	obs atomic.Pointer[cacheObs]
}

func newCache() *cache {
	c := &cache{}
	for i := range c.shards {
		c.shards[i].resetLocked()
	}
	return c
}

// shardIndex routes a name to its stripe index by FNV-1a over the name's
// bytes.
func shardIndex(name dnsmsg.Name) int {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return int(h % cacheShards)
}

// shardFor routes a name to its stripe.
func (c *cache) shardFor(name dnsmsg.Name) *cacheShard {
	return &c.shards[shardIndex(name)]
}

// setObserver installs a metrics registry for per-stripe hit/miss
// accounting; nil uninstalls.
func (c *cache) setObserver(r *obs.Registry) {
	c.obs.Store(newCacheObs(r))
}

// Purge drops every cached entry. Shards are cleared one at a time: a put
// racing with Purge may survive in an already-cleared stripe, which is fine
// for the campaigns (they purge between runs, while the resolver is idle)
// and harmless otherwise (the entry is valid, just not forgotten).
func (c *cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.resetLocked()
		s.mu.Unlock()
	}
}

// Len returns the total number of live entries at now, summed across
// shards.
func (c *cache) Len(now time.Time) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.answers {
			if e.expires.After(now) {
				n++
			}
		}
		for _, e := range s.delegations {
			if e.expires.After(now) {
				n++
			}
		}
		for _, e := range s.hostAddrs {
			if e.expires.After(now) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func (c *cache) getAnswer(now time.Time, key cacheKey) (answerEntry, bool) {
	idx := shardIndex(key.name)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.answers[key]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(s.answers, key)
		}
		c.obs.Load().observe(idx, false)
		return answerEntry{}, false
	}
	c.obs.Load().observe(idx, true)
	return e, true
}

func (c *cache) putAnswer(now time.Time, key cacheKey, e answerEntry, ttl time.Duration) {
	if ttl <= 0 {
		return // zero-TTL answers are never cached
	}
	e.expires = now.Add(ttl)
	s := c.shardFor(key.name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.answers[key] = e
}

func (c *cache) getDelegation(now time.Time, zone dnsmsg.Name) ([]dnsmsg.Name, bool) {
	idx := shardIndex(zone)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.delegations[zone]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(s.delegations, zone)
		}
		c.obs.Load().observe(idx, false)
		return nil, false
	}
	c.obs.Load().observe(idx, true)
	return append([]dnsmsg.Name(nil), e.hosts...), true
}

func (c *cache) putDelegation(now time.Time, zone dnsmsg.Name, hosts []dnsmsg.Name, ttl time.Duration) {
	if ttl <= 0 || len(hosts) == 0 {
		return
	}
	s := c.shardFor(zone)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delegations[zone] = delegationEntry{
		hosts:   append([]dnsmsg.Name(nil), hosts...),
		expires: now.Add(ttl),
	}
}

// closestDelegation returns the cached zone cut deepest along name's
// ancestry, if any. Each ancestor zone hashes to its own shard, so the walk
// locks at most one stripe at a time.
func (c *cache) closestDelegation(now time.Time, name dnsmsg.Name) (dnsmsg.Name, []dnsmsg.Name, bool) {
	for zone := name; !zone.IsRoot(); zone = zone.Parent() {
		idx := shardIndex(zone)
		s := &c.shards[idx]
		s.mu.Lock()
		e, ok := s.delegations[zone]
		if ok && e.expires.After(now) {
			hosts := append([]dnsmsg.Name(nil), e.hosts...)
			s.mu.Unlock()
			// The whole walk counts as one lookup, attributed to the
			// stripe that satisfied it.
			c.obs.Load().observe(idx, true)
			return zone, hosts, true
		}
		s.mu.Unlock()
	}
	c.obs.Load().observe(shardIndex(name), false)
	return "", nil, false
}

func (c *cache) getHostAddr(now time.Time, host dnsmsg.Name) (netip.Addr, bool) {
	idx := shardIndex(host)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.hostAddrs[host]
	if !ok || !e.expires.After(now) {
		if ok {
			delete(s.hostAddrs, host)
		}
		c.obs.Load().observe(idx, false)
		return netip.Addr{}, false
	}
	c.obs.Load().observe(idx, true)
	return e.addr, true
}

func (c *cache) putHostAddr(now time.Time, host dnsmsg.Name, addr netip.Addr, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	s := c.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hostAddrs[host] = hostAddrEntry{addr: addr, expires: now.Add(ttl)}
}
