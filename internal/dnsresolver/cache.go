package dnsresolver

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/obs"
)

// cacheKey identifies a cached answer RRset. Delegation and host-address
// entries reuse it with a zero qtype (the kind byte on the LRU node keeps
// the namespaces apart).
type cacheKey struct {
	name  dnsmsg.Name
	qtype dnsmsg.Type
}

// answerEntry is a cached positive or negative answer.
type answerEntry struct {
	// chain is the CNAME chain (possibly empty) leading to the answer.
	chain []dnsmsg.RR
	// answers are the records of the requested type at the chain's end.
	answers []dnsmsg.RR
	// rcode distinguishes NXDOMAIN negative entries.
	rcode   dnsmsg.RCode
	expires time.Time
}

// delegationEntry caches a zone cut: the nameserver names for a zone.
type delegationEntry struct {
	hosts   []dnsmsg.Name
	expires time.Time
}

// hostAddrEntry caches one nameserver host's address.
type hostAddrEntry struct {
	addr    netip.Addr
	expires time.Time
}

// Entry kinds, stored on LRU nodes so eviction knows which table to
// delete from.
const (
	kindAnswer = iota
	kindDelegation
	kindHostAddr
)

// cacheShards is the lock-striping factor. Scan campaigns run dozens of
// workers against one resolver; 32 stripes keeps the probability of two
// workers colliding on one mutex low without bloating the struct.
const cacheShards = 32

// noNode marks an absent LRU link.
const noNode = int32(-1)

// lruNode is one entry's position in a shard's recency list. Nodes live
// in a flat slice and link by index; freed nodes go on a freelist and are
// reused, so steady-state churn allocates nothing.
type lruNode struct {
	key  cacheKey
	kind uint8
	prev int32
	next int32
}

// answerSlot et al. pair an entry with its generation stamp and LRU node.
type answerSlot struct {
	entry answerEntry
	gen   uint64
	node  int32
}

type delegationSlot struct {
	entry delegationEntry
	gen   uint64
	node  int32
}

type hostAddrSlot struct {
	entry hostAddrEntry
	gen   uint64
	node  int32
}

// cacheShard is one stripe: a mutex, its slice of each table, the shared
// recency list, and the current generation.
type cacheShard struct {
	mu          sync.Mutex
	gen         uint64
	answers     map[cacheKey]answerSlot
	delegations map[dnsmsg.Name]delegationSlot
	hostAddrs   map[dnsmsg.Name]hostAddrSlot

	nodes    []lruNode
	head     int32 // most recently used
	tail     int32 // least recently used
	freeHead int32
	capacity int // max entries in this shard; 0 = unbounded
}

func (s *cacheShard) init(capacity int) {
	s.answers = make(map[cacheKey]answerSlot)
	s.delegations = make(map[dnsmsg.Name]delegationSlot)
	s.hostAddrs = make(map[dnsmsg.Name]hostAddrSlot)
	s.head, s.tail, s.freeHead = noNode, noNode, noNode
	s.capacity = capacity
}

// newNode takes a node off the freelist (or grows the arena) and links it
// at the head of the recency list.
func (s *cacheShard) newNode(kind uint8, key cacheKey) int32 {
	var i int32
	if s.freeHead != noNode {
		i = s.freeHead
		s.freeHead = s.nodes[i].next
	} else {
		s.nodes = append(s.nodes, lruNode{})
		i = int32(len(s.nodes) - 1)
	}
	s.nodes[i] = lruNode{key: key, kind: kind, prev: noNode, next: s.head}
	if s.head != noNode {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail == noNode {
		s.tail = i
	}
	return i
}

// unlink removes node i from the recency list (it stays allocated).
func (s *cacheShard) unlink(i int32) {
	n := &s.nodes[i]
	if n.prev != noNode {
		s.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next != noNode {
		s.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = noNode, noNode
}

// free returns node i to the freelist.
func (s *cacheShard) free(i int32) {
	s.unlink(i)
	s.nodes[i] = lruNode{next: s.freeHead}
	s.freeHead = i
}

// touch moves node i to the head of the recency list.
func (s *cacheShard) touch(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	n := &s.nodes[i]
	n.next = s.head
	if s.head != noNode {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail == noNode {
		s.tail = i
	}
}

// size returns the shard's total entry count (all generations).
func (s *cacheShard) size() int {
	return len(s.answers) + len(s.delegations) + len(s.hostAddrs)
}

// deleteEntry removes the entry behind node i from its table and frees
// the node.
func (s *cacheShard) deleteEntry(i int32) {
	n := s.nodes[i]
	switch n.kind {
	case kindAnswer:
		delete(s.answers, n.key)
	case kindDelegation:
		delete(s.delegations, n.key.name)
	case kindHostAddr:
		delete(s.hostAddrs, n.key.name)
	}
	s.free(i)
}

// evictOver trims the shard to capacity from the LRU tail. Stale
// generations drift tailward on their own (nothing touches them), so a
// capped cache sheds purged entries before live ones.
func (s *cacheShard) evictOver() {
	if s.capacity <= 0 {
		return
	}
	for s.size() > s.capacity && s.tail != noNode {
		s.deleteEntry(s.tail)
	}
}

// cache is the resolver's TTL-aware store, sharded so concurrent scan
// workers stop serializing on a single mutex. Entries are never served
// past their expiry or from a previous generation; Purge bumps every
// shard's generation in O(1) (the paper's collector purges its resolver
// cache before every daily run so snapshots stay independent, §IV-B.1).
//
// Each shard keeps one recency list across its three tables. With a
// capacity configured, inserts evict least-recently-used entries; the
// default capacity of 0 keeps the historical grow-with-the-world
// behaviour, which campaign determinism (query-count-bearing reports)
// relies on.
//
// Every entry kind (answers, delegations, host addresses) routes to a
// shard by an FNV-1a hash of the owner name, so all records for one name
// share a stripe while distinct names spread across all of them.
type cache struct {
	shards [cacheShards]cacheShard

	// obs is atomic so lookups never contend on a process-wide mutex —
	// that would undo the sharding.
	obs atomic.Pointer[cacheObs]
}

// newCache creates a cache. capacity is the approximate total entry
// budget, split evenly across shards; 0 means unbounded.
func newCache(capacity int) *cache {
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + cacheShards - 1) / cacheShards
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &cache{}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

// shardIndex routes a name to its stripe index by FNV-1a over the name's
// bytes.
func shardIndex(name dnsmsg.Name) int {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return int(h % cacheShards)
}

// shardFor routes a name to its stripe.
func (c *cache) shardFor(name dnsmsg.Name) *cacheShard {
	return &c.shards[shardIndex(name)]
}

// setObserver installs a metrics registry for per-stripe hit/miss
// accounting; nil uninstalls.
func (c *cache) setObserver(r *obs.Registry) {
	c.obs.Store(newCacheObs(r))
}

// Purge makes every cached entry invisible by bumping each shard's
// generation — O(shards), no map reallocation. Old-generation entries are
// reclaimed lazily: on the next access to their key, or by LRU eviction
// when a capacity is set. A put racing with Purge may land pre-bump and
// survive in an already-bumped stripe, which is fine for the campaigns
// (they purge between runs, while the resolver is idle) and harmless
// otherwise (the entry is valid, just not forgotten).
func (c *cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.gen++
		s.mu.Unlock()
	}
}

// Len returns the total number of live entries at now, summed across
// shards.
func (c *cache) Len(now time.Time) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.answers {
			if e.gen == s.gen && e.entry.expires.After(now) {
				n++
			}
		}
		for _, e := range s.delegations {
			if e.gen == s.gen && e.entry.expires.After(now) {
				n++
			}
		}
		for _, e := range s.hostAddrs {
			if e.gen == s.gen && e.entry.expires.After(now) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func (c *cache) getAnswer(now time.Time, key cacheKey) (answerEntry, bool) {
	idx := shardIndex(key.name)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.answers[key]
	if !ok || slot.gen != s.gen || !slot.entry.expires.After(now) {
		if ok {
			s.deleteEntry(slot.node)
		}
		c.obs.Load().observe(idx, false)
		return answerEntry{}, false
	}
	s.touch(slot.node)
	c.obs.Load().observe(idx, true)
	return slot.entry, true
}

func (c *cache) putAnswer(now time.Time, key cacheKey, e answerEntry, ttl time.Duration) {
	if ttl <= 0 {
		return // zero-TTL answers are never cached
	}
	e.expires = now.Add(ttl)
	s := c.shardFor(key.name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.answers[key]; ok {
		s.touch(slot.node)
		s.answers[key] = answerSlot{entry: e, gen: s.gen, node: slot.node}
		return
	}
	node := s.newNode(kindAnswer, key)
	s.answers[key] = answerSlot{entry: e, gen: s.gen, node: node}
	s.evictOver()
}

// getDelegation returns the cached nameserver hosts for zone. The slice
// is shared with the cache; callers must not mutate it.
func (c *cache) getDelegation(now time.Time, zone dnsmsg.Name) ([]dnsmsg.Name, bool) {
	idx := shardIndex(zone)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.delegations[zone]
	if !ok || slot.gen != s.gen || !slot.entry.expires.After(now) {
		if ok {
			s.deleteEntry(slot.node)
		}
		c.obs.Load().observe(idx, false)
		return nil, false
	}
	s.touch(slot.node)
	c.obs.Load().observe(idx, true)
	return slot.entry.hosts, true
}

func (c *cache) putDelegation(now time.Time, zone dnsmsg.Name, hosts []dnsmsg.Name, ttl time.Duration) {
	if ttl <= 0 || len(hosts) == 0 {
		return
	}
	e := delegationEntry{
		hosts:   append([]dnsmsg.Name(nil), hosts...),
		expires: now.Add(ttl),
	}
	s := c.shardFor(zone)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.delegations[zone]; ok {
		s.touch(slot.node)
		s.delegations[zone] = delegationSlot{entry: e, gen: s.gen, node: slot.node}
		return
	}
	node := s.newNode(kindDelegation, cacheKey{name: zone})
	s.delegations[zone] = delegationSlot{entry: e, gen: s.gen, node: node}
	s.evictOver()
}

// closestDelegation returns the cached zone cut deepest along name's
// ancestry, if any. Each ancestor zone hashes to its own shard, so the
// walk locks at most one stripe at a time. The returned hosts slice is
// shared with the cache; callers must not mutate it.
func (c *cache) closestDelegation(now time.Time, name dnsmsg.Name) (dnsmsg.Name, []dnsmsg.Name, bool) {
	for zone := name; !zone.IsRoot(); zone = zone.Parent() {
		idx := shardIndex(zone)
		s := &c.shards[idx]
		s.mu.Lock()
		slot, ok := s.delegations[zone]
		if ok && slot.gen == s.gen && slot.entry.expires.After(now) {
			s.touch(slot.node)
			hosts := slot.entry.hosts
			s.mu.Unlock()
			// The whole walk counts as one lookup, attributed to the
			// stripe that satisfied it.
			c.obs.Load().observe(idx, true)
			return zone, hosts, true
		}
		s.mu.Unlock()
	}
	c.obs.Load().observe(shardIndex(name), false)
	return "", nil, false
}

func (c *cache) getHostAddr(now time.Time, host dnsmsg.Name) (netip.Addr, bool) {
	idx := shardIndex(host)
	s := &c.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.hostAddrs[host]
	if !ok || slot.gen != s.gen || !slot.entry.expires.After(now) {
		if ok {
			s.deleteEntry(slot.node)
		}
		c.obs.Load().observe(idx, false)
		return netip.Addr{}, false
	}
	s.touch(slot.node)
	c.obs.Load().observe(idx, true)
	return slot.entry.addr, true
}

func (c *cache) putHostAddr(now time.Time, host dnsmsg.Name, addr netip.Addr, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	e := hostAddrEntry{addr: addr, expires: now.Add(ttl)}
	s := c.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.hostAddrs[host]; ok {
		s.touch(slot.node)
		s.hostAddrs[host] = hostAddrSlot{entry: e, gen: s.gen, node: slot.node}
		return
	}
	node := s.newNode(kindHostAddr, cacheKey{name: host})
	s.hostAddrs[host] = hostAddrSlot{entry: e, gen: s.gen, node: node}
	s.evictOver()
}
