package dnsresolver

import (
	"sync"
	"testing"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// recordingHandler wraps a netsim.Handler and records the question names
// it is asked, so tests can pin which names each server ever sees.
type recordingHandler struct {
	inner netsim.Handler

	mu    sync.Mutex
	names []dnsmsg.Name
}

func (h *recordingHandler) ServeNet(req netsim.Request) ([]byte, error) {
	if q, err := dnsmsg.Decode(req.Payload); err == nil && len(q.Questions) > 0 {
		h.mu.Lock()
		h.names = append(h.names, q.Question().Name)
		h.mu.Unlock()
	}
	return h.inner.ServeNet(req)
}

func (h *recordingHandler) sawOnly(t *testing.T, server string, allowed ...dnsmsg.Name) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	ok := make(map[dnsmsg.Name]bool, len(allowed))
	for _, n := range allowed {
		ok[n] = true
	}
	for _, n := range h.names {
		if !ok[n] {
			t.Errorf("%s server was asked about %s; a minimized descent only sends it %v",
				server, n, allowed)
		}
	}
}

// TestQnameMinimizedDescent pins the RFC 7816 walk shape: the full qname
// reaches only the name's own authoritative servers; parents see exactly
// the one-label-deeper probe for their child zone. This is a correctness
// property, not a nicety — delegation probes are shared across every name
// under a zone, which is what keeps resolution outcomes (and the
// deterministic obs counters built on them) independent of cache warmth
// when the fabric injects content-hashed faults.
func TestQnameMinimizedDescent(t *testing.T) {
	f := newFixture(t)
	root := &recordingHandler{inner: f.rootSrv}
	tld := &recordingHandler{inner: f.tldSrv}
	f.net.Register(netsim.Endpoint{Addr: f.rootAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, root)
	f.net.Register(netsim.Endpoint{Addr: f.tldAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, tld)

	res, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if addrs := res.Addrs(); len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}

	root.sawOnly(t, "root", "com")
	tld.sawOnly(t, "tld", "example.com")
}

// TestQnameMinimizedProbeSharing: after any one name under a zone has
// been resolved, resolving a sibling re-uses the cached delegations and
// sends the parents nothing at all.
func TestQnameMinimizedProbeSharing(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Resolve("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatalf("warm-up Resolve: %v", err)
	}

	root := &recordingHandler{inner: f.rootSrv}
	tld := &recordingHandler{inner: f.tldSrv}
	f.net.Register(netsim.Endpoint{Addr: f.rootAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, root)
	f.net.Register(netsim.Endpoint{Addr: f.tldAddr, Port: netsim.PortDNS}, netsim.RegionVirginia, tld)

	if _, err := f.resolver.Resolve("example.com", dnsmsg.TypeNS); err != nil {
		t.Fatalf("sibling Resolve: %v", err)
	}
	root.sawOnly(t, "root" /* nothing */)
	tld.sawOnly(t, "tld" /* nothing */)
}
