package dnsresolver

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// namesInShard generates n distinct names that all route to the same cache
// stripe, so a capacity test can exercise one shard's LRU list without
// caring how the total budget splits across stripes.
func namesInShard(t *testing.T, n int) []dnsmsg.Name {
	t.Helper()
	want := shardIndex("anchor.example.com")
	out := make([]dnsmsg.Name, 0, n)
	for i := 0; len(out) < n; i++ {
		if i > 1<<16 {
			t.Fatalf("could not find %d names in shard %d", n, want)
		}
		name := dnsmsg.Name(fmt.Sprintf("lru-%d.example.com", i))
		if shardIndex(name) == want {
			out = append(out, name)
		}
	}
	return out
}

// TestCacheCapacityEviction: a capped shard holds at most its budget,
// evicts least-recently-used first, and a get refreshes recency. The three
// entry kinds share one recency list, so cross-kind inserts evict too.
func TestCacheCapacityEviction(t *testing.T) {
	// Per-shard capacity of 2: total budget cacheShards*2 splits evenly.
	c := newCache(cacheShards * 2)
	now := time.Unix(1_000_000, 0)
	ttl := time.Hour
	names := namesInShard(t, 4)
	a, b, x, hostN := names[0], names[1], names[2], names[3]
	key := func(n dnsmsg.Name) cacheKey { return cacheKey{name: n, qtype: dnsmsg.TypeA} }
	shard := &c.shards[shardIndex(a)]

	c.putAnswer(now, key(a), answerEntry{}, ttl)
	c.putAnswer(now, key(b), answerEntry{}, ttl)
	if got := shard.size(); got != 2 {
		t.Fatalf("shard size = %d after two puts, want 2", got)
	}

	// Touch a, then insert x: b is now least recent and must be the victim.
	if _, ok := c.getAnswer(now, key(a)); !ok {
		t.Fatal("a missing before eviction")
	}
	c.putAnswer(now, key(x), answerEntry{}, ttl)
	if got := shard.size(); got != 2 {
		t.Fatalf("shard size = %d after eviction, want 2", got)
	}
	if _, ok := c.getAnswer(now, key(b)); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.getAnswer(now, key(a)); !ok {
		t.Error("a evicted despite recent touch")
	}
	if _, ok := c.getAnswer(now, key(x)); !ok {
		t.Error("x missing immediately after insert")
	}

	// A host-address insert shares the same recency list with answers: the
	// gets above touched a then x, so a is now least recent and is the
	// cross-kind victim.
	c.putHostAddr(now, hostN, netip.MustParseAddr("192.0.2.99"), ttl)
	if got := shard.size(); got != 2 {
		t.Fatalf("shard size = %d after cross-kind insert, want 2", got)
	}
	if _, ok := c.getAnswer(now, key(a)); ok {
		t.Error("a survived cross-kind eviction despite being least recent")
	}
	if _, ok := c.getHostAddr(now, hostN); !ok {
		t.Error("host-address entry missing after insert")
	}
	if _, ok := c.getAnswer(now, key(x)); !ok {
		t.Error("x evicted out of LRU order by cross-kind insert")
	}
}

// TestCacheUncappedNeverEvicts: capacity 0 keeps the historical
// grow-with-the-world behaviour — campaign determinism (query-count
// reports) relies on it.
func TestCacheUncappedNeverEvicts(t *testing.T) {
	c := newCache(0)
	now := time.Unix(1_000_000, 0)
	const n = 500
	for i := 0; i < n; i++ {
		key := cacheKey{name: dnsmsg.Name(fmt.Sprintf("u-%d.example.com", i)), qtype: dnsmsg.TypeA}
		c.putAnswer(now, key, answerEntry{}, time.Hour)
	}
	if got := c.Len(now); got != n {
		t.Fatalf("uncapped cache Len = %d after %d puts, want %d", got, n, n)
	}
}

// TestCappedCacheValueEquivalence: a resolver whose cache is capped hard
// enough to evict constantly must still produce value-identical answers to
// an uncapped resolver over the same world — eviction may change which
// queries go upstream, never what they resolve to. The capped resolver is
// driven concurrently so the eviction/re-resolve churn runs under -race.
func TestCappedCacheValueEquivalence(t *testing.T) {
	f := newFixture(t)
	const n = 48
	names := make([]dnsmsg.Name, n)
	addrs := make([]netip.Addr, n)
	for i := range names {
		names[i] = dnsmsg.Name(fmt.Sprintf("pop-%d.example.com", i))
		addrs[i] = netip.AddrFrom4([4]byte{10, 2, byte(i >> 8), byte(i)})
		f.authZone.MustAdd(dnsmsg.NewA(names[i], time.Hour, addrs[i]))
	}

	// One entry per stripe: nearly every resolve evicts something.
	capped := New(Config{
		Network:       f.net,
		Clock:         f.clock,
		Addr:          netip.MustParseAddr("198.51.100.54"),
		Region:        netsim.RegionOregon,
		Roots:         []netip.Addr{f.rootAddr},
		Rand:          rand.New(rand.NewSource(7)),
		CacheCapacity: cacheShards,
	})

	check := func(tag string, r *Resolver, i int) {
		res, err := r.Resolve(names[i], dnsmsg.TypeA)
		if err != nil {
			t.Errorf("%s: Resolve(%s): %v", tag, names[i], err)
			return
		}
		if got := res.Addrs(); len(got) != 1 || got[0] != addrs[i] {
			t.Errorf("%s: Resolve(%s) = %v, want [%v]", tag, names[i], got, addrs[i])
		}
	}

	// Uncapped reference: every name, twice (cold then cached).
	for round := 0; round < 2; round++ {
		for i := range names {
			check("uncapped", f.resolver, i)
		}
	}

	// Capped, concurrent: workers sweep the population from different
	// offsets so gets, inserts, and evictions interleave across stripes.
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for k := 0; k < n; k++ {
					check("capped", capped, (w*7+k)%n)
				}
			}
		}(w)
	}
	wg.Wait()

	// And a final serial sweep: steady-state after the churn still agrees.
	for i := range names {
		check("capped-final", capped, i)
	}
}
