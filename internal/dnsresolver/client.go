package dnsresolver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// Client issues single DNS queries to explicit servers over the fabric.
// The residual-resolution scanner uses it to interrogate DPS nameservers
// directly, bypassing normal delegation (the attack of paper §III-B).
//
// The client is the resilience layer of the measurement stack: a Policy
// drives retries with deterministic backoff, a Health tracker sidelines
// nameservers that keep timing out and ranks the rest by EWMA RTT, and
// QueryStats accounts for every attempt. Query IDs are a seeded hash of
// the query identity rather than RNG draws, so two runs issuing the same
// logical queries put byte-identical payloads on the wire regardless of
// goroutine scheduling — the property the fabric's content-hashed fault
// plan and the ParallelMatchesSerial guarantee both build on.
type Client struct {
	net    *netsim.Network
	addr   netip.Addr
	region netsim.Region
	idSeed int64

	// policy and obs are atomic pointers so the per-query hot path loads
	// them without a mutex round-trip (they change only between passes).
	policy atomic.Pointer[Policy]
	obs    atomic.Pointer[clientObs]

	health *Health
	stats  statsCounters
}

// NewClient creates a client attached at (addr, region) on the fabric.
// The rng seeds query-ID generation (one draw at construction; IDs
// themselves are hash-derived per query) and must be non-nil. The client
// starts with NoRetryPolicy; campaigns opt in via SetPolicy.
func NewClient(net *netsim.Network, addr netip.Addr, region netsim.Region, rng *rand.Rand) *Client {
	if net == nil || rng == nil {
		panic("dnsresolver: NewClient requires network and rng")
	}
	c := &Client{
		net:    net,
		addr:   addr,
		region: region,
		idSeed: rng.Int63(),
		health: NewHealth(),
	}
	p := NoRetryPolicy().normalized()
	c.policy.Store(&p)
	return c
}

// Addr returns the client's source address.
func (c *Client) Addr() netip.Addr { return c.addr }

// Region returns the client's region.
func (c *Client) Region() netsim.Region { return c.region }

// SetPolicy installs the retry policy. Call it between passes, not while
// queries are in flight elsewhere, if deterministic accounting matters.
func (c *Client) SetPolicy(p Policy) {
	p = p.normalized()
	c.policy.Store(&p)
}

// Policy returns the active policy.
func (c *Client) Policy() Policy {
	return *c.policy.Load()
}

// Health returns the client's nameserver health tracker.
func (c *Client) Health() *Health { return c.health }

// Checkpoint folds the current pass's health observations into sideline
// decisions and EWMA-RTT estimates. The measurement loops call it at pass
// boundaries while the fabric is quiescent; within a pass the sideline
// set and the RTT estimates are frozen, which keeps server selection
// independent of query interleaving.
func (c *Client) Checkpoint() { c.health.Checkpoint(c.Policy()) }

// Stats returns a snapshot of the client's resilience accounting.
func (c *Client) Stats() QueryStats { return c.stats.snapshot(c.health) }

// ResetStats zeroes the accounting counters (not the health state).
func (c *Client) ResetStats() { c.stats.reset() }

// Errors distinguishing why an exchange failed.
var (
	// ErrBadResponse indicates a response that decoded but failed
	// validation (wrong ID or question). This can indicate spoofing, so it
	// is fatal: the client never blindly retries past it.
	ErrBadResponse = errors.New("dnsresolver: response failed validation")
	// ErrCorruptReply indicates a reply that failed wire decoding — a
	// transport-level mangling, retryable like a timeout.
	ErrCorruptReply = errors.New("dnsresolver: reply failed wire decoding")
	// ErrNoServers indicates an exchange was asked of an empty server set.
	ErrNoServers = errors.New("dnsresolver: no servers to query")
)

// exchangeScratch bundles the reusable codec state one in-flight exchange
// needs: the query encoder, a receive buffer the fabric appends responses
// into, and the decoder plus response message it decodes into. The resolver
// keeps one per recursion depth; the public Exchange entry points pool
// them.
type exchangeScratch struct {
	enc  dnsmsg.Encoder
	dec  dnsmsg.Decoder
	resp dnsmsg.Message
	recv []byte
}

var exchangeScratchPool = sync.Pool{New: func() any { return new(exchangeScratch) }}

// Exchange queries (name, qtype) against a single server under the
// client's policy: up to Policy.MaxAttempts attempts with deterministic
// backoff accounting, retrying timeouts and corrupt replies but never
// validation failures.
func (c *Client) Exchange(server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (*dnsmsg.Message, error) {
	return c.ExchangeAny([]netip.Addr{server}, name, qtype)
}

// ExchangeAny queries (name, qtype) against a candidate server set.
// Sidelined servers are filtered out first (unless that would leave
// none); the policy's Selection strategy picks the starting candidate
// (power-of-two-choices over EWMA RTT by default); attempts then rotate
// through the remaining candidates from there, with a total budget of
// max(Policy.MaxAttempts, candidates) so every candidate is tried at
// least once. An attempt on a server other than the selected primary is a
// hedge in the accounting.
func (c *Client) ExchangeAny(servers []netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (*dnsmsg.Message, error) {
	sc := exchangeScratchPool.Get().(*exchangeScratch)
	resp, err := c.exchangeAny(sc, servers, name, qtype)
	if resp != nil {
		// The scratch-backed message goes back into the pool; callers get a
		// private copy.
		resp = resp.Clone()
	}
	exchangeScratchPool.Put(sc)
	return resp, err
}

// exchangeAny is ExchangeAny against caller-owned scratch. The returned
// message aliases sc and is valid only until sc's next use.
func (c *Client) exchangeAny(sc *exchangeScratch, servers []netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (*dnsmsg.Message, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("exchange %s %s: %w", name, qtype, ErrNoServers)
	}
	p := c.policy.Load()
	o := c.obs.Load()
	cands, start := c.health.planExchange(p.Selection, c.idSeed, servers, name, qtype)
	budget := p.MaxAttempts
	if len(cands) > budget {
		budget = len(cands)
	}
	primary := cands[start]

	c.stats.queries.Add(1)
	o.observeQuery()
	var lastErr error
	for attempt := 1; attempt <= budget; attempt++ {
		server := cands[(start+attempt-1)%len(cands)]
		if attempt > 1 {
			backoff := p.Backoff(c.idSeed, server, name, qtype, attempt)
			c.stats.retries.Add(1)
			c.stats.backoffNanos.Add(int64(backoff))
			o.observeRetry(backoff)
		}
		if server != primary {
			c.stats.hedges.Add(1)
			o.observeHedge()
		}

		resp, rtt, err := c.attempt(sc, o, server, name, qtype, attempt)
		if err == nil {
			c.health.ObserveSuccess(server)
			c.health.ObserveRTT(server, rtt)
			if attempt > 1 {
				c.stats.recovered.Add(1)
			}
			o.observeOutcome(attempt, attempt > 1)
			return resp, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, netsim.ErrTimeout):
			c.stats.timeouts.Add(1)
			o.observeTimeout()
			c.health.ObserveTimeout(server)
		case errors.Is(err, ErrCorruptReply):
			c.stats.corrupt.Add(1)
			o.observeCorrupt()
		default:
			// Fatal: validation failure (possible spoofing), unreachable
			// endpoint, or a handler error. Retrying blindly is either
			// unsafe or pointless.
			bad := errors.Is(err, ErrBadResponse)
			if bad {
				c.stats.bad.Add(1)
			}
			c.stats.failed.Add(1)
			o.observeFailed(bad)
			o.observeOutcome(attempt, false)
			return nil, err
		}
	}
	c.stats.failed.Add(1)
	o.observeFailed(false)
	o.observeOutcome(budget, false)
	return nil, lastErr
}

// attempt performs one wire exchange through sc's reusable buffers. The
// query ID is a hash of the query identity and attempt number:
// deterministic across runs, distinct across a query's attempts (each
// retry re-rolls the fabric's fault decisions). The returned message
// aliases sc.
func (c *Client) attempt(sc *exchangeScratch, o *clientObs, server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type, attempt int) (*dnsmsg.Message, time.Duration, error) {
	c.stats.attempts.Add(1)
	o.observeAttempt()
	id := uint16(queryHash(c.idSeed, server, name, qtype, attempt))
	wire := sc.enc.EncodeQuery(id, name, qtype)
	ep := netsim.Endpoint{Addr: server, Port: netsim.PortDNS}
	raw, rtt, err := c.net.Exchange(c.addr, c.region, ep, wire, sc.recv)
	if raw != nil {
		// Exchange appends into sc.recv (or a growth of it); keep whatever
		// backing array came back for the next attempt.
		sc.recv = raw[:0]
	}
	if err != nil {
		return nil, 0, fmt.Errorf("exchange %s %s with %s: %w", name, qtype, server, err)
	}
	if err := sc.dec.DecodeInto(raw, &sc.resp); err != nil {
		return nil, 0, fmt.Errorf("exchange %s %s with %s: %w: %v", name, qtype, server, ErrCorruptReply, err)
	}
	resp := &sc.resp
	if resp.Header.ID != id || !resp.Header.Response {
		return nil, 0, fmt.Errorf("exchange %s %s with %s: %w", name, qtype, server, ErrBadResponse)
	}
	if q := resp.Question(); q.Name != name || q.Type != qtype {
		return nil, 0, fmt.Errorf("exchange %s %s with %s: question mismatch: %w", name, qtype, server, ErrBadResponse)
	}
	return resp, rtt, nil
}
