package dnsresolver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// Client issues single DNS queries to explicit servers over the fabric.
// The residual-resolution scanner uses it to interrogate DPS nameservers
// directly, bypassing normal delegation (the attack of paper §III-B).
type Client struct {
	net    *netsim.Network
	addr   netip.Addr
	region netsim.Region

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient creates a client attached at (addr, region) on the fabric.
// The rng drives query-ID generation and must be non-nil.
func NewClient(net *netsim.Network, addr netip.Addr, region netsim.Region, rng *rand.Rand) *Client {
	if net == nil || rng == nil {
		panic("dnsresolver: NewClient requires network and rng")
	}
	return &Client{net: net, addr: addr, region: region, rng: rng}
}

// Addr returns the client's source address.
func (c *Client) Addr() netip.Addr { return c.addr }

// Region returns the client's region.
func (c *Client) Region() netsim.Region { return c.region }

// ErrBadResponse indicates a response that failed validation (wrong ID or
// question).
var ErrBadResponse = errors.New("dnsresolver: response failed validation")

// Exchange sends one query for (name, qtype) to server and returns the
// decoded response. Errors from the fabric (timeout, unreachable) pass
// through wrapped.
func (c *Client) Exchange(server netip.Addr, name dnsmsg.Name, qtype dnsmsg.Type) (*dnsmsg.Message, error) {
	c.mu.Lock()
	id := uint16(c.rng.Intn(1 << 16))
	c.mu.Unlock()

	query := dnsmsg.NewQuery(id, name, qtype)
	wire := dnsmsg.MustEncode(query)
	ep := netsim.Endpoint{Addr: server, Port: netsim.PortDNS}
	raw, err := c.net.Send(c.addr, c.region, ep, wire)
	if err != nil {
		return nil, fmt.Errorf("exchange %s %s with %s: %w", name, qtype, server, err)
	}
	resp, err := dnsmsg.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("exchange %s %s with %s: %w", name, qtype, server, err)
	}
	if resp.Header.ID != id || !resp.Header.Response {
		return nil, fmt.Errorf("exchange %s %s with %s: %w", name, qtype, server, ErrBadResponse)
	}
	if q := resp.Question(); q.Name != name || q.Type != qtype {
		return nil, fmt.Errorf("exchange %s %s with %s: question mismatch: %w", name, qtype, server, ErrBadResponse)
	}
	return resp, nil
}
