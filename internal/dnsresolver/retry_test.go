package dnsresolver

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// addHosts adds n extra A records under example.com so loss tests have a
// population of distinct queries (distinct payloads roll independent fault
// decisions), and returns their names.
func addHosts(t *testing.T, f *fixture, n int) []dnsmsg.Name {
	t.Helper()
	names := make([]dnsmsg.Name, n)
	for i := range names {
		names[i] = dnsmsg.Name(fmt.Sprintf("host-%d.example.com", i))
		f.authZone.MustAdd(dnsmsg.NewA(names[i], time.Hour, netip.MustParseAddr("10.1.0.1")))
	}
	return names
}

// TestRetriesRecoverFromInjectedLoss: under 25% deterministic loss the
// no-retry client loses a visible fraction of queries while the retrying
// client recovers nearly all of them, and the accounting reflects it.
func TestRetriesRecoverFromInjectedLoss(t *testing.T) {
	f := newFixture(t)
	names := addHosts(t, f, 150)
	f.net.SetFaults(netsim.FaultConfig{Seed: 42, LossRate: 0.25})

	run := func(p Policy) (failed int, stats QueryStats) {
		c := f.resolver.Client()
		c.SetPolicy(p)
		c.ResetStats()
		for _, name := range names {
			if _, err := c.Exchange(f.authAddr, name, dnsmsg.TypeA); err != nil {
				if !errors.Is(err, netsim.ErrTimeout) {
					t.Fatalf("Exchange(%s): %v", name, err)
				}
				failed++
			}
		}
		return failed, c.Stats()
	}

	noRetryFailed, noRetryStats := run(NoRetryPolicy())
	if noRetryFailed == 0 {
		t.Fatal("no-retry baseline lost nothing at 25% loss — fault plan inactive?")
	}
	if noRetryStats.Attempts != noRetryStats.Queries {
		t.Fatalf("no-retry attempts %d != queries %d", noRetryStats.Attempts, noRetryStats.Queries)
	}

	retryFailed, retryStats := run(DefaultPolicy())
	if retryFailed >= noRetryFailed {
		t.Fatalf("retries did not help: %d failed with retries vs %d without", retryFailed, noRetryFailed)
	}
	// P(3 drops) ≈ 1.6%; with 150 queries more than a handful of residual
	// failures means retries are not re-rolling the fault decisions.
	if retryFailed > 10 {
		t.Fatalf("retrying client still failed %d/150 queries", retryFailed)
	}
	if retryStats.Retries == 0 || retryStats.Recovered == 0 {
		t.Fatalf("stats show no retry activity: %+v", retryStats)
	}
	if retryStats.Backoff == 0 {
		t.Fatal("retries accounted no backoff")
	}
	if retryStats.Attempts != retryStats.Queries+retryStats.Retries {
		t.Fatalf("attempts %d != queries %d + retries %d",
			retryStats.Attempts, retryStats.Queries, retryStats.Retries)
	}
}

// badIDHandler wraps a handler and mangles the response ID: the reply
// decodes fine but fails validation, which must read as possible spoofing.
type badIDHandler struct{ inner netsim.Handler }

func (h badIDHandler) ServeNet(req netsim.Request) ([]byte, error) {
	resp, err := h.inner.ServeNet(req)
	if err != nil || resp == nil {
		return resp, err
	}
	msg, err := dnsmsg.Decode(resp)
	if err != nil {
		return resp, nil
	}
	msg.Header.ID++
	return dnsmsg.MustEncode(msg), nil
}

// TestBadResponseIsFatalAndNotRetried: an ID mismatch must fail the query
// on the first attempt — retrying past possible spoofing is unsafe.
func TestBadResponseIsFatalAndNotRetried(t *testing.T) {
	f := newFixture(t)
	f.net.Register(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS},
		netsim.RegionLondon, badIDHandler{inner: f.authSrv})

	c := f.resolver.Client()
	c.SetPolicy(DefaultPolicy())
	_, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA)
	if !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err = %v, want ErrBadResponse", err)
	}
	stats := c.Stats()
	if stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no blind retry after validation failure)", stats.Attempts)
	}
	if stats.BadResponses != 1 || stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 bad response and 1 failure", stats)
	}
}

// flakyCorruptHandler truncates its first reply below a DNS header and
// serves normally afterwards.
type flakyCorruptHandler struct {
	inner netsim.Handler
	calls int
}

func (h *flakyCorruptHandler) ServeNet(req netsim.Request) ([]byte, error) {
	resp, err := h.inner.ServeNet(req)
	h.calls++
	if h.calls == 1 && err == nil && len(resp) > 4 {
		return resp[:4], nil
	}
	return resp, err
}

// TestCorruptReplyIsRetried: a wire-decode failure is transport mangling,
// and a retry recovers the answer.
func TestCorruptReplyIsRetried(t *testing.T) {
	f := newFixture(t)
	f.net.Register(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS},
		netsim.RegionLondon, &flakyCorruptHandler{inner: f.authSrv})

	c := f.resolver.Client()
	c.SetPolicy(DefaultPolicy())
	resp, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if len(resp.Answers) == 0 {
		t.Fatal("recovered response has no answers")
	}
	stats := c.Stats()
	if stats.CorruptReplies != 1 || stats.Recovered != 1 || stats.Attempts != 2 {
		t.Fatalf("stats = %+v, want 1 corrupt reply recovered on attempt 2", stats)
	}
}

// TestCorruptReplyWithoutRetryFails: the same corruption under
// NoRetryPolicy surfaces as ErrCorruptReply.
func TestCorruptReplyWithoutRetryFails(t *testing.T) {
	f := newFixture(t)
	f.net.Register(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS},
		netsim.RegionLondon, &flakyCorruptHandler{inner: f.authSrv})

	c := f.resolver.Client()
	_, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA)
	if !errors.Is(err, ErrCorruptReply) {
		t.Fatalf("err = %v, want ErrCorruptReply", err)
	}
}

// TestSidelineAndProbeBack walks a nameserver through the health life
// cycle: consecutive all-timeout passes sideline it, queries then avoid
// it, and after its sentence it is probed back in.
func TestSidelineAndProbeBack(t *testing.T) {
	f := newFixture(t)
	p := Policy{MaxAttempts: 1, SidelineAfter: 2, SidelineFor: 2}
	c := f.resolver.Client()
	c.SetPolicy(p)
	authEP := netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS}
	f.net.SetBlackholed(authEP, true)

	// Two all-timeout passes sideline the server.
	for pass := 0; pass < 2; pass++ {
		if _, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA); !errors.Is(err, netsim.ErrTimeout) {
			t.Fatalf("pass %d err = %v, want ErrTimeout", pass, err)
		}
		c.Checkpoint()
	}
	if c.Health().Available(f.authAddr) {
		t.Fatal("server still available after SidelineAfter all-timeout passes")
	}
	if got := c.Health().Sidelined(); len(got) != 1 || got[0] != f.authAddr {
		t.Fatalf("Sidelined() = %v, want [%v]", got, f.authAddr)
	}
	if c.Stats().SidelineEvents != 1 {
		t.Fatalf("SidelineEvents = %d, want 1", c.Stats().SidelineEvents)
	}

	// While sidelined, ExchangeAny prefers the healthy alternate...
	resp, err := c.ExchangeAny([]netip.Addr{f.authAddr, f.tldAddr}, "example.com", dnsmsg.TypeNS)
	if err != nil {
		t.Fatalf("ExchangeAny during sideline: %v", err)
	}
	if len(resp.Authority) == 0 && len(resp.Answers) == 0 {
		t.Fatal("alternate server returned nothing")
	}
	// ...but a query with no other candidate still goes through rather
	// than stranding.
	f.net.SetBlackholed(authEP, false)
	if _, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatalf("Exchange with only a sidelined candidate: %v", err)
	}
	f.net.SetBlackholed(authEP, true)

	// The sentence runs out at the next checkpoints; the server is probed
	// back in.
	c.Checkpoint()
	c.Checkpoint()
	if !c.Health().Available(f.authAddr) {
		t.Fatal("server not probed back in after SidelineFor passes")
	}

	// Healthy again: a success resets the consecutive-bad counter.
	f.net.SetBlackholed(authEP, false)
	if _, err := c.Exchange(f.authAddr, "www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatalf("Exchange after probe-back: %v", err)
	}
	c.Checkpoint()
	if !c.Health().Available(f.authAddr) {
		t.Fatal("recovered server sidelined again despite success")
	}
}

// TestHedgeAccountsAlternateAttempts: with the primary blackholed, a
// hedged ExchangeAny succeeds via the alternate and counts the hedge.
func TestHedgeAccountsAlternateAttempts(t *testing.T) {
	f := newFixture(t)
	c := f.resolver.Client()
	// Pin rotate-from-the-front selection so the blackholed primary is
	// deterministically the first target (P2C could start elsewhere).
	p := DefaultPolicy()
	p.Selection = SelectFirst
	c.SetPolicy(p)
	f.net.SetBlackholed(netsim.Endpoint{Addr: f.authAddr, Port: netsim.PortDNS}, true)

	// tldAddr serves example.com's delegation; any answer will do — the
	// point is which server answered.
	if _, err := c.ExchangeAny([]netip.Addr{f.authAddr, f.tldAddr}, "example.com", dnsmsg.TypeNS); err != nil {
		t.Fatalf("ExchangeAny: %v", err)
	}
	stats := c.Stats()
	if stats.Hedges == 0 || stats.Recovered != 1 || stats.Timeouts == 0 {
		t.Fatalf("stats = %+v, want a timed-out primary recovered via hedge", stats)
	}
}

// TestExchangeAnyNoServers covers the empty candidate set.
func TestExchangeAnyNoServers(t *testing.T) {
	f := newFixture(t)
	if _, err := f.resolver.Client().ExchangeAny(nil, "www.example.com", dnsmsg.TypeA); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

// TestQueryIDsDeterministicAcrossClients: clients built from identically
// seeded worlds derive identical query IDs, the root of the serial ≡
// parallel fault determinism.
func TestQueryIDsDeterministicAcrossClients(t *testing.T) {
	a, b := newFixture(t), newFixture(t)
	for attempt := 1; attempt <= 3; attempt++ {
		ha := queryHash(a.resolver.Client().idSeed, a.authAddr, "www.example.com", dnsmsg.TypeA, attempt)
		hb := queryHash(b.resolver.Client().idSeed, b.authAddr, "www.example.com", dnsmsg.TypeA, attempt)
		if ha != hb {
			t.Fatalf("attempt %d: hashes differ across identically seeded fixtures", attempt)
		}
	}
}

// TestBackoffScheduleShape pins the nominal (jitter-free) schedule.
func TestBackoffScheduleShape(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	want := []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, time.Second}
	for i, w := range want {
		if got := p.Backoff(1, netip.Addr{}, "x.example.com", dnsmsg.TypeA, i+1); got != w {
			t.Fatalf("attempt %d backoff = %v, want %v", i+1, got, w)
		}
	}
}

// FuzzBackoff: no configuration, however absurd, may produce a negative
// delay, exceed the jittered maximum, or panic.
func FuzzBackoff(f *testing.F) {
	f.Add(int64(1), int64(time.Second), int64(time.Minute), 0.25, 3)
	f.Add(int64(-5), int64(-1), int64(-100), -2.0, -1)
	f.Add(int64(0), int64(1)<<62, int64(1)<<62, 0.999, 1<<30)
	f.Add(int64(99), int64(1), int64(1)<<62, 0.5, 64)
	f.Fuzz(func(t *testing.T, seed, base, max int64, jitter float64, attempt int) {
		p := Policy{
			MaxAttempts: 3,
			BaseBackoff: time.Duration(base),
			MaxBackoff:  time.Duration(max),
			Jitter:      jitter,
		}
		got := p.Backoff(seed, netip.MustParseAddr("192.0.2.77"), "fuzz.example.com", dnsmsg.TypeA, attempt)
		if got < 0 {
			t.Fatalf("negative backoff %v for %+v attempt %d", got, p, attempt)
		}
		n := p.normalized()
		bound := time.Duration(float64(n.MaxBackoff)*(1+n.Jitter)) + 1
		if bound > 0 && got > bound {
			t.Fatalf("backoff %v exceeds bound %v for %+v attempt %d", got, bound, p, attempt)
		}
	})
}
