// Package shardrun is the shard-parallel campaign driver that makes
// paper-true population scales (§IV's 1M apexes) executable: it
// partitions the apex population into N deterministic shards, runs each
// shard as a fully independent campaign — its own world replica, its
// own snapstore, day-level WAL, and checkpoint directory — and merges
// the per-shard results into one report.
//
// The design leans on two properties the earlier layers already
// guarantee. First, a world is a pure function of its config and seed,
// so every shard builds a value-identical world replica and advances it
// on the same schedule; shards never share mutable state, which is what
// makes the driver trivially race-free and lets each shard reuse the
// whole single-campaign durability machinery (checkpoints, WAL,
// crash/resume) unchanged. Second, shard assignment is a stable content
// hash of the apex alone (Assign), so the partition survives resumes,
// process restarts, and any change in shard-worker scheduling.
//
// The keystone identity — Merge(shard results) ≡ unsharded run, for
// every scientific artifact — is pinned by this package's equivalence
// suite across shard counts, fault plans, interval jitter, and
// single-shard crash/resume. The per-shard resilience accounting
// (Stats, Sidelined) is the documented exception: shared infrastructure
// queries are issued once per shard rather than once per campaign.
//
// One population-scale precondition applies to the residual campaign:
// each scan week's nameserver discovery (§V-A.2) is an observation over
// the shard's own population, so a shard needs at least one
// NS-rerouting customer among its apexes each week to find the fleet
// and scan at all. At paper scale — 1M apexes over any sane shard count
// — the condition is trivially satisfied; it only binds for toy
// populations of a few dozen apexes per shard.
package shardrun

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"sync"

	"rrdps/internal/alexa"
	"rrdps/internal/core/experiment"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

// Assign returns apex's shard index in [0, shards): FNV-1a over the
// apex bytes, finalized with a splitmix64 mix (FNV alone is too linear
// in its low bits for clean modular reduction), reduced mod shards. A
// pure function of the apex and shard count — never of rank, insertion
// order, or worker scheduling — so assignment is stable across
// processes and resumes.
func Assign(apex dnsmsg.Name, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(apex))
	return int(mix64(h.Sum64()) % uint64(shards))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeepFunc returns the membership predicate for one shard — the Keep
// filter handed to the shard's campaign. A single-shard layout returns
// nil (keep everything), so -shards 1 runs the exact unsharded
// campaign.
func KeepFunc(shard, shards int) func(alexa.Domain) bool {
	if shards <= 1 {
		return nil
	}
	return func(d alexa.Domain) bool { return Assign(d.Apex, shards) == shard }
}

// ShardDir returns shard i's checkpoint directory under root. Each
// shard owns its directory outright — snapstore checkpoints, WAL, and
// rotation files never mix across shards.
func ShardDir(root string, shard int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%04d", shard))
}

// common is the driver configuration shared by both campaign kinds.
type common struct {
	shards       int
	shardWorkers int
	only         []int
}

// runnable resolves which shards execute this run.
func (c common) runnable() []int {
	if len(c.only) == 0 {
		out := make([]int, c.shards)
		for i := range out {
			out[i] = i
		}
		return out
	}
	for _, i := range c.only {
		if i < 0 || i >= c.shards {
			panic(fmt.Sprintf("shardrun: Only contains shard %d, want [0,%d)", i, c.shards))
		}
	}
	return append([]int(nil), c.only...)
}

// forEachShard runs fn for the runnable shards over a bounded worker
// pool. fn must be self-contained per shard; the driver adds no shared
// state beyond the caller's own synchronization.
func (c common) forEachShard(fn func(shard int)) {
	todo := c.runnable()
	workers := c.shardWorkers
	if workers <= 0 || workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(todo); k += workers {
				fn(todo[k])
			}
		}(w)
	}
	wg.Wait()
}

// Dynamics drives the §IV usage-dynamics campaign across shards. Every
// per-campaign knob mirrors experiment.Dynamics; the driver fills in
// the per-shard wiring (world replica, Keep predicate, whole-population
// TopCut, per-shard checkpoint directory and obs registry).
type Dynamics struct {
	// Config builds each shard's world replica; Seed included. The
	// driver never holds a world of its own.
	Config world.Config
	Days   int
	// Shards is the partition width (>= 1). ShardWorkers bounds how many
	// shard campaigns run concurrently; zero runs all of them at once.
	Shards       int
	ShardWorkers int
	// Only restricts this run to the listed shards — the re-drive path
	// for an individual crashed shard. The returned PerShard slice keeps
	// length Shards with zero values at skipped indices, and Merged
	// covers only the shards run. Empty runs every shard.
	Only []int
	// Vantage / Excluded / KeepMultiCDN / LongIntervalProb mirror
	// experiment.Dynamics.
	Vantage          netsim.Region
	Excluded         []dnsmsg.Name
	KeepMultiCDN     bool
	LongIntervalProb float64
	// JitterSeed seeds each shard's interval-jitter Rand identically, so
	// every shard (and the unsharded baseline using the same seed) draws
	// the same gap schedule and the world replicas stay in lockstep.
	// Only meaningful with LongIntervalProb > 0.
	JitterSeed int64
	// Workers is the per-shard collection parallelism.
	Workers int
	Policy  *dnsresolver.Policy
	// Obs, when non-nil, receives the union of the shards' metrics:
	// each shard runs against its own registry and the merged snapshot
	// (obs.Snapshot.Merge) is restored into Obs after the run.
	Obs        *obs.Registry
	SnapWindow int
	// CheckpointDir is the sharded campaign's checkpoint root; shard i
	// persists under ShardDir(CheckpointDir, i). Empty disables
	// durability.
	CheckpointDir   string
	CheckpointEvery int
	// Resume resumes every shard from its own directory. Shards that
	// already completed recover their final cursor and return without
	// re-collecting; shards with no state start fresh — so resuming a
	// partially-dead fleet re-drives exactly the shards that need it.
	Resume bool
	// AfterShard, when non-nil, is called for each completed shard while
	// its world replica is still alive — the hook for accounting that
	// must be read off the fabric (e.g. summing the Fig. 7 per-PoP query
	// counters across replicas). Calls are serialized by the driver.
	AfterShard func(shard int, w *world.World)

	// StopShard / StopAfterDays simulate a kill of one shard's campaign
	// at a day boundary (the shardrun crash/resume test hook): shard
	// StopShard stops after StopAfterDays collected days while its
	// siblings run to completion. Inactive when StopAfterDays is zero.
	StopShard     int
	StopAfterDays int
}

// DynamicsRun is a sharded Dynamics outcome: the merged report plus the
// per-shard results it was merged from (index = shard).
type DynamicsRun struct {
	Merged   experiment.DynamicsResult
	PerShard []experiment.DynamicsResult
}

// Run executes the shard campaigns and merges their results.
func (s Dynamics) Run() DynamicsRun {
	if s.Shards < 1 {
		panic("shardrun: Dynamics requires Shards >= 1")
	}
	c := common{shards: s.Shards, shardWorkers: s.ShardWorkers, only: s.Only}
	results := make([]experiment.DynamicsResult, s.Shards)
	regs := make([]*obs.Registry, s.Shards)
	var mu sync.Mutex // serializes AfterShard
	c.forEachShard(func(i int) {
		w := world.New(s.Config)
		d := experiment.Dynamics{
			World:           w,
			Days:            s.Days,
			Vantage:         s.Vantage,
			Excluded:        s.Excluded,
			KeepMultiCDN:    s.KeepMultiCDN,
			Workers:         s.Workers,
			Policy:          s.Policy,
			SnapWindow:      s.SnapWindow,
			Keep:            KeepFunc(i, s.Shards),
			TopCut:          wholePopulationTopCut(w),
			CheckpointEvery: s.CheckpointEvery,
			Resume:          s.Resume,
		}
		if s.Obs != nil {
			regs[i] = obs.NewRegistry()
			d.Obs = regs[i]
		}
		if s.CheckpointDir != "" {
			d.CheckpointDir = ShardDir(s.CheckpointDir, i)
		}
		if s.LongIntervalProb > 0 {
			d.LongIntervalProb = s.LongIntervalProb
			d.Rand = rand.New(rand.NewSource(s.JitterSeed))
		}
		if s.StopAfterDays > 0 && i == s.StopShard {
			d.StopAfterDays = s.StopAfterDays
		}
		res := d.Run()
		mu.Lock()
		results[i] = res
		if s.AfterShard != nil {
			s.AfterShard(i, w)
		}
		mu.Unlock()
	})
	out := DynamicsRun{PerShard: results}
	for _, i := range c.runnable() {
		out.Merged = out.Merged.Merge(results[i])
	}
	s.foldObs(regs)
	return out
}

// foldObs merges the per-shard registries into the caller's.
func (s Dynamics) foldObs(regs []*obs.Registry) {
	foldRegistries(s.Obs, regs)
}

func foldRegistries(dst *obs.Registry, regs []*obs.Registry) {
	if dst == nil {
		return
	}
	var merged obs.Snapshot
	for _, reg := range regs {
		if reg != nil {
			merged = merged.Merge(reg.Snapshot())
		}
	}
	dst.Restore(merged)
}

// wholePopulationTopCut reproduces the unsharded campaign's top rank
// bucket cutoff — population/100 over the WHOLE world, not the shard's
// slice — so per-shard breakdowns bucket identically to an unsharded
// run.
func wholePopulationTopCut(w *world.World) int {
	cut := len(w.Sites()) / 100
	if cut < 1 {
		cut = 1
	}
	return cut
}

// Residual drives the §V residual-resolution campaign across shards.
// Field semantics mirror Dynamics and experiment.Residual.
type Residual struct {
	Config             world.Config
	Weeks              int
	IncapsulaStartWeek int
	WarmupDays         int
	ProviderAudit      bool
	Shards             int
	ShardWorkers       int
	Only               []int
	Workers            int
	Policy             *dnsresolver.Policy
	Obs                *obs.Registry
	SnapWindow         int
	CheckpointDir      string
	CheckpointEvery    int
	Resume             bool
	AfterShard         func(shard int, w *world.World)

	// StopShard / StopAfterRounds simulate a kill of one shard's
	// campaign at a round boundary. Inactive when StopAfterRounds is
	// zero.
	StopShard       int
	StopAfterRounds int
}

// ResidualRun is a sharded Residual outcome.
type ResidualRun struct {
	Merged   experiment.ResidualResult
	PerShard []experiment.ResidualResult
}

// Run executes the shard campaigns and merges their results.
func (s Residual) Run() ResidualRun {
	if s.Shards < 1 {
		panic("shardrun: Residual requires Shards >= 1")
	}
	c := common{shards: s.Shards, shardWorkers: s.ShardWorkers, only: s.Only}
	results := make([]experiment.ResidualResult, s.Shards)
	regs := make([]*obs.Registry, s.Shards)
	var mu sync.Mutex
	c.forEachShard(func(i int) {
		w := world.New(s.Config)
		r := experiment.Residual{
			World:              w,
			Weeks:              s.Weeks,
			IncapsulaStartWeek: s.IncapsulaStartWeek,
			WarmupDays:         s.WarmupDays,
			ProviderAudit:      s.ProviderAudit,
			Workers:            s.Workers,
			Policy:             s.Policy,
			SnapWindow:         s.SnapWindow,
			Keep:               KeepFunc(i, s.Shards),
			CheckpointEvery:    s.CheckpointEvery,
			Resume:             s.Resume,
		}
		if s.Obs != nil {
			regs[i] = obs.NewRegistry()
			r.Obs = regs[i]
		}
		if s.CheckpointDir != "" {
			r.CheckpointDir = ShardDir(s.CheckpointDir, i)
		}
		if s.StopAfterRounds > 0 && i == s.StopShard {
			r.StopAfterRounds = s.StopAfterRounds
		}
		res := r.Run()
		mu.Lock()
		results[i] = res
		if s.AfterShard != nil {
			s.AfterShard(i, w)
		}
		mu.Unlock()
	})
	out := ResidualRun{PerShard: results}
	for _, i := range c.runnable() {
		out.Merged = out.Merged.Merge(results[i])
	}
	foldRegistries(s.Obs, regs)
	return out
}
