package shardrun

// The keystone suite for the shard-parallel driver: Merge(shard
// results) ≡ unsharded run must hold as VALUE identity for every
// scientific artifact, across shard counts {1, 2, 4, 8}, under fault
// plans, under long-interval jitter, and across a crash and resume of
// an individual shard. Stats and Sidelined are the documented
// exception (shared infrastructure queries are issued once per shard)
// and are skipped, the same latitude the serial≡parallel comparisons
// in internal/core/experiment allow.
//
// Run with -race: the driver's only concurrency claim is that shard
// campaigns share no mutable state, and the race detector is what
// turns that claim into a checked property.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rrdps/internal/core/experiment"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

// diffResults compares two results field by field so a failure names
// the artifact that diverged instead of dumping both structs.
func diffResults(t *testing.T, sharded, unsharded any, skip ...string) {
	t.Helper()
	skipped := make(map[string]bool, len(skip))
	for _, name := range skip {
		skipped[name] = true
	}
	sv, uv := reflect.ValueOf(sharded), reflect.ValueOf(unsharded)
	if sv.Type() != uv.Type() {
		t.Fatalf("type mismatch: %v vs %v", sv.Type(), uv.Type())
	}
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		if skipped[name] {
			continue
		}
		if !reflect.DeepEqual(sv.Field(i).Interface(), uv.Field(i).Interface()) {
			t.Errorf("%s differs:\nsharded:   %+v\nunsharded: %+v",
				name, sv.Field(i).Interface(), uv.Field(i).Interface())
		}
	}
}

// resultSkips is the standing exception list: per-shard resilience
// accounting legitimately differs from an unsharded run's (shared
// infrastructure queries are issued once per shard).
var resultSkips = []string{"Stats", "Sidelined"}

// dynamicsConfig mirrors the churn-boosted world the experiment suite
// uses, so short sharded runs exercise every behaviour kind.
func dynamicsConfig(n int, seed int64) world.Config {
	cfg := world.PaperConfig(n)
	cfg.Seed = seed
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01
	return cfg
}

func residualConfig(n int, seed int64) world.Config {
	cfg := world.PaperConfig(n)
	cfg.Seed = seed
	cfg.LeaveRate = 0.01
	cfg.SwitchRate = 0.008
	cfg.JoinRate = 0.002
	return cfg
}

// firstPolicy is DefaultPolicy with deterministic nameserver selection.
// P2C selection keeps EWMA health state whose evolution depends on
// which queries a pass issues — a population-layout dependence — so
// fault-plan equivalence runs pin SelectFirst, exactly as the residual
// scanner itself does.
func firstPolicy() *dnsresolver.Policy {
	p := dnsresolver.DefaultPolicy()
	p.Selection = dnsresolver.SelectFirst
	return &p
}

func TestAssignStableAndBalanced(t *testing.T) {
	apexes := make([]dnsmsg.Name, 10000)
	for i := range apexes {
		apexes[i] = dnsmsg.Name(fmt.Sprintf("site-%05d.example.", i))
	}
	for _, shards := range []int{1, 2, 4, 8, 13} {
		counts := make([]int, shards)
		for _, apex := range apexes {
			got := Assign(apex, shards)
			if got < 0 || got >= shards {
				t.Fatalf("Assign(%q, %d) = %d, out of range", apex, shards, got)
			}
			if again := Assign(apex, shards); again != got {
				t.Fatalf("Assign(%q, %d) unstable: %d then %d", apex, shards, got, again)
			}
			counts[got]++
		}
		mean := len(apexes) / shards
		for s, n := range counts {
			if n < mean*6/10 || n > mean*14/10 {
				t.Errorf("shards=%d: shard %d holds %d apexes, mean %d — hash is skewed",
					shards, s, n, mean)
			}
		}
	}
	if Assign("anything.example.", 1) != 0 {
		t.Error("single-shard layout must assign everything to shard 0")
	}
}

func TestKeepFuncPartitions(t *testing.T) {
	if KeepFunc(0, 1) != nil {
		t.Fatal("shards=1 must return a nil predicate (keep everything)")
	}
	w := world.New(dynamicsConfig(200, 7))
	const shards = 4
	for _, site := range w.Sites() {
		kept := 0
		for s := 0; s < shards; s++ {
			if KeepFunc(s, shards)(site.Domain()) {
				kept++
			}
		}
		if kept != 1 {
			t.Fatalf("%s kept by %d shards, want exactly 1", site.Domain().Apex, kept)
		}
	}
}

func TestDynamicsShardEquivalence(t *testing.T) {
	cfg := dynamicsConfig(240, 4101)
	const days = 6
	unsharded := experiment.Dynamics{World: world.New(cfg), Days: days}.Run()
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			run := Dynamics{Config: cfg, Days: days, Shards: shards}.Run()
			diffResults(t, run.Merged, unsharded, resultSkips...)
		})
	}
}

func TestResidualShardEquivalence(t *testing.T) {
	// 640 sites keeps every 8-shard slice (~80 apexes) comfortably above
	// the discovery precondition: each shard must hold at least one
	// NS-rerouting customer per week to find the scan fleet at all.
	cfg := residualConfig(640, 4201)
	build := func() experiment.Residual {
		return experiment.Residual{
			World: world.New(cfg), Weeks: 3, WarmupDays: 7, IncapsulaStartWeek: 2,
		}
	}
	unsharded := build().Run()
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			run := Residual{
				Config: cfg, Weeks: 3, WarmupDays: 7, IncapsulaStartWeek: 2,
				Shards: shards,
			}.Run()
			diffResults(t, run.Merged, unsharded, resultSkips...)
		})
	}
}

// Fault-plan equivalence: netsim faults are pure content hashes of
// (seed, endpoint, sim time, payload), so a shard issuing the same
// query as the unsharded run hits the same fault. Selection is pinned
// to SelectFirst to keep the retry schedule layout-independent.
func TestDynamicsShardEquivalenceWithFaults(t *testing.T) {
	cfg := dynamicsConfig(240, 4301)
	cfg.Faults = netsim.FaultConfig{Seed: 431, LossRate: 0.02, CorruptRate: 0.02}
	const days = 5
	unsharded := experiment.Dynamics{
		World: world.New(cfg), Days: days, Policy: firstPolicy(),
	}.Run()
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			run := Dynamics{
				Config: cfg, Days: days, Shards: shards, Policy: firstPolicy(),
			}.Run()
			diffResults(t, run.Merged, unsharded, resultSkips...)
		})
	}
}

func TestResidualShardEquivalenceWithFaults(t *testing.T) {
	cfg := residualConfig(280, 4401)
	cfg.Faults = netsim.FaultConfig{Seed: 443, LossRate: 0.02, CorruptRate: 0.02}
	unsharded := experiment.Residual{
		World: world.New(cfg), Weeks: 2, WarmupDays: 7, IncapsulaStartWeek: 1,
		Policy: firstPolicy(),
	}.Run()
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			run := Residual{
				Config: cfg, Weeks: 2, WarmupDays: 7, IncapsulaStartWeek: 1,
				Shards: shards, Policy: firstPolicy(),
			}.Run()
			diffResults(t, run.Merged, unsharded, resultSkips...)
		})
	}
}

// Long-interval jitter: every shard seeds its own jitter Rand from the
// same JitterSeed, so all world replicas (and the unsharded baseline)
// draw the same gap schedule and advance in lockstep.
func unshardedJittered(cfg world.Config, days int, longProb float64, seed int64) experiment.DynamicsResult {
	return experiment.Dynamics{
		World:            world.New(cfg),
		Days:             days,
		LongIntervalProb: longProb,
		Rand:             rand.New(rand.NewSource(seed)),
	}.Run()
}

func TestDynamicsShardEquivalenceLongIntervals(t *testing.T) {
	cfg := dynamicsConfig(220, 4501)
	const (
		days       = 7
		longProb   = 0.4
		jitterSeed = 17
	)
	unsharded := unshardedJittered(cfg, days, longProb, jitterSeed)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			run := Dynamics{
				Config: cfg, Days: days, Shards: shards,
				LongIntervalProb: longProb, JitterSeed: jitterSeed,
			}.Run()
			diffResults(t, run.Merged, unsharded, resultSkips...)
		})
	}
}

func TestDynamicsShardWorkersBounded(t *testing.T) {
	cfg := dynamicsConfig(200, 4601)
	baseline := Dynamics{Config: cfg, Days: 4, Shards: 4}.Run()
	for _, workers := range []int{1, 2, 3} {
		run := Dynamics{Config: cfg, Days: 4, Shards: 4, ShardWorkers: workers}.Run()
		diffResults(t, run.Merged, baseline.Merged, resultSkips...)
	}
}

// TestDynamicsShardCrashResume is the per-shard crash/resume keystone:
// one shard dies mid-campaign while its siblings run to completion;
// resuming re-drives only the dead shard, and the merged report is
// value-identical to an uninterrupted sharded run (itself pinned to the
// unsharded result above).
func TestDynamicsShardCrashResume(t *testing.T) {
	cfg := dynamicsConfig(240, 4701)
	const (
		days   = 6
		shards = 4
	)
	unsharded := experiment.Dynamics{World: world.New(cfg), Days: days}.Run()
	for _, dead := range []int{0, 2} {
		t.Run(fmt.Sprintf("dead-shard-%d", dead), func(t *testing.T) {
			dir := t.TempDir()
			build := func() Dynamics {
				return Dynamics{
					Config: cfg, Days: days, Shards: shards,
					CheckpointDir: dir, CheckpointEvery: 2,
				}
			}

			// First run: shard `dead` is killed after 3 collected days;
			// every sibling completes.
			crash := build()
			crash.StopShard = dead
			crash.StopAfterDays = 3
			crashed := crash.Run()

			// Resume ONLY the dead shard from its own directory; the
			// sibling directories are never reopened.
			redrive := build()
			redrive.Resume = true
			redrive.Only = []int{dead}
			resumed := redrive.Run()

			// Merge the re-driven shard with the siblings' first-run
			// results; the recombined report must match the unsharded
			// baseline exactly.
			var merged experiment.DynamicsResult
			for i := 0; i < shards; i++ {
				if i == dead {
					merged = merged.Merge(resumed.PerShard[i])
				} else {
					merged = merged.Merge(crashed.PerShard[i])
				}
			}
			diffResults(t, merged, unsharded, resultSkips...)

			// A fleet-wide resume must reach the same place: completed
			// shards recover their final cursor without re-collecting.
			all := build()
			all.Resume = true
			diffResults(t, all.Run().Merged, unsharded, resultSkips...)
		})
	}
}

func TestResidualShardCrashResume(t *testing.T) {
	cfg := residualConfig(280, 4801)
	const shards = 4
	build := func(dir string) Residual {
		return Residual{
			Config: cfg, Weeks: 3, WarmupDays: 7, IncapsulaStartWeek: 2,
			Shards: shards, CheckpointDir: dir, CheckpointEvery: 7,
		}
	}
	unsharded := experiment.Residual{
		World: world.New(cfg), Weeks: 3, WarmupDays: 7, IncapsulaStartWeek: 2,
	}.Run()

	dir := t.TempDir()
	crash := build(dir)
	crash.StopShard = 1
	crash.StopAfterRounds = 2
	crashed := crash.Run()

	redrive := build(dir)
	redrive.Resume = true
	redrive.Only = []int{1}
	resumed := redrive.Run()

	var merged experiment.ResidualResult
	for i := 0; i < shards; i++ {
		if i == 1 {
			merged = merged.Merge(resumed.PerShard[i])
		} else {
			merged = merged.Merge(crashed.PerShard[i])
		}
	}
	diffResults(t, merged, unsharded, resultSkips...)
}

func TestShardDirLayout(t *testing.T) {
	if got, want := ShardDir("/tmp/ckpt", 3), "/tmp/ckpt/shard-0003"; got != want {
		t.Fatalf("ShardDir = %q, want %q", got, want)
	}
	if got, want := ShardDir("ckpt", 11), "ckpt/shard-0011"; got != want {
		t.Fatalf("ShardDir = %q, want %q", got, want)
	}
}

func TestRunPanicsOnBadShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shards=0 must panic")
		}
	}()
	Dynamics{Config: dynamicsConfig(10, 1), Days: 1, Shards: 0}.Run()
}

func TestOnlyPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Only=[5] with Shards=4 must panic")
		}
	}()
	Dynamics{Config: dynamicsConfig(10, 1), Days: 1, Shards: 4, Only: []int{5}}.Run()
}
