package multicdn_test

import (
	"testing"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/experiment"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func multiCDNWorld(t *testing.T, n int) *world.World {
	t.Helper()
	cfg := world.PaperConfig(n)
	cfg.Seed = 55
	cfg.MultiCDNRate = 0.10 // dense for testing
	// Freeze normal churn so only the front-end moves things.
	cfg.JoinRate, cfg.LeaveRate, cfg.PauseRate, cfg.SwitchRate = 0, 0, 0, 0
	cfg.UnprotectedIPChangeRate = 0
	return world.New(cfg)
}

func TestEnrollmentAndResolution(t *testing.T) {
	w := multiCDNWorld(t, 200)
	domains := w.MultiCDNDomains()
	if len(domains) == 0 {
		t.Fatal("no multi-CDN customers generated")
	}
	res := w.NewResolver(netsim.RegionOregon)
	site, _ := w.Site(domains[0])
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	targets := got.CNAMETargets()
	if len(targets) < 2 {
		t.Fatalf("chain = %v, want front-end alias plus provider target", targets)
	}
	if !targets[0].ContainsSubstring("cedexis") {
		t.Fatalf("first target = %v, want cedexis alias", targets[0])
	}
	if len(got.Addrs()) == 0 {
		t.Fatal("no final address through the front-end")
	}
}

func TestFlippingChangesProvider(t *testing.T) {
	w := multiCDNWorld(t, 300)
	domains := w.MultiCDNDomains()
	if len(domains) < 3 {
		t.Fatalf("only %d multi-CDN customers", len(domains))
	}
	// Track resolved providers across days; at least one site must flap.
	seen := make(map[dnsmsg.Name]map[string]bool)
	for day := 0; day < 6; day++ {
		res := w.NewResolver(netsim.RegionOregon)
		for _, apex := range domains {
			site, _ := w.Site(apex)
			got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
			if err != nil {
				t.Fatalf("resolve %s: %v", apex, err)
			}
			for _, target := range got.CNAMETargets() {
				switch {
				case target.ContainsSubstring("fastly"):
					record(seen, apex, "fastly")
				case target.ContainsSubstring("cloudfront"):
					record(seen, apex, "cloudfront")
				}
			}
		}
		w.AdvanceDay()
	}
	flapped := 0
	for _, provs := range seen {
		if len(provs) > 1 {
			flapped++
		}
	}
	if flapped == 0 {
		t.Fatal("no multi-CDN site flapped providers over six days")
	}
}

func record(m map[dnsmsg.Name]map[string]bool, apex dnsmsg.Name, prov string) {
	if m[apex] == nil {
		m[apex] = make(map[string]bool)
	}
	m[apex][prov] = true
}

// TestDynamicsExcludesMultiCDN: without exclusion the flapping reads as a
// storm of SWITCH detections; with the default auto-exclusion it is quiet.
func TestDynamicsExcludesMultiCDN(t *testing.T) {
	noisy := experiment.Dynamics{World: multiCDNWorld(t, 250), Days: 8, KeepMultiCDN: true}.Run()
	noisySwitches := 0
	for _, d := range noisy.Detections {
		if d.Kind == behavior.Switch {
			noisySwitches++
		}
	}
	if noisySwitches == 0 {
		t.Fatal("multi-CDN flapping produced no SWITCH noise; test cannot discriminate")
	}

	quiet := experiment.Dynamics{World: multiCDNWorld(t, 250), Days: 8}.Run()
	if len(quiet.Detections) != 0 {
		t.Fatalf("auto-exclusion left %d detections: %+v", len(quiet.Detections), quiet.Detections)
	}
}

func TestCurrentTargetAccessor(t *testing.T) {
	w := multiCDNWorld(t, 200)
	domains := w.MultiCDNDomains()
	if len(domains) == 0 {
		t.Skip("no multi-CDN customers")
	}
	// Reach into the world-built manager indirectly: resolve and compare.
	res := w.NewResolver(netsim.RegionLondon)
	site, _ := w.Site(domains[0])
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	targets := got.CNAMETargets()
	last := targets[len(targets)-1]
	if !last.ContainsSubstring("fastly") && !last.ContainsSubstring("cloudfront") {
		t.Fatalf("final target %v not from the CDN pool", last)
	}
}
