// Package multicdn models a Cedexis-style multi-CDN front-end: a service
// that enrolls a website at several CDN providers at once and dynamically
// re-points the site's canonical name between them.
//
// The paper filters such websites out of its behaviour analysis because
// their provider flaps day over day and would read as a storm of SWITCH
// behaviours (§IV-B.3). This package exists so the pipeline's exclusion
// logic has something real to exclude.
package multicdn

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dnszone"
	"rrdps/internal/dps"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
)

// Apex is the front-end's service domain; its substring is what the
// measurement pipeline's exclusion heuristic looks for.
const Apex = dnsmsg.Name("cedexis.net")

// Manager errors.
var (
	ErrNeedTwoProviders = errors.New("multicdn: at least two CDN providers required")
	ErrAlreadyEnrolled  = errors.New("multicdn: domain already enrolled")
)

// customer tracks one enrolled site.
type customer struct {
	apex    dnsmsg.Name
	token   dnsmsg.Name
	targets []dnsmsg.Name // provider CNAME targets, one per CDN
	current int
}

// Config parametrizes a Manager.
type Config struct {
	Network  *netsim.Network
	Alloc    *ipspace.Allocator
	Registry *ipspace.Registry
	Rand     *rand.Rand
	// Providers is the CDN pool the front-end balances across; all must
	// support CNAME rerouting.
	Providers []*dps.Provider
}

// Manager is a running multi-CDN front-end. It is safe for concurrent use.
type Manager struct {
	providers []*dps.Provider
	zone      *dnszone.Zone
	server    *dnsserver.Server
	nsHosts   map[dnsmsg.Name]netip.Addr

	mu        sync.Mutex
	rng       *rand.Rand
	customers map[dnsmsg.Name]*customer
	tokenSeq  uint64
}

// New builds the front-end: its own AS, service zone, and nameservers.
func New(cfg Config) *Manager {
	if cfg.Network == nil || cfg.Alloc == nil || cfg.Registry == nil || cfg.Rand == nil {
		panic("multicdn: Network, Alloc, Registry, and Rand are required")
	}
	if len(cfg.Providers) < 2 {
		panic(ErrNeedTwoProviders)
	}
	m := &Manager{
		providers: append([]*dps.Provider(nil), cfg.Providers...),
		rng:       cfg.Rand,
		customers: make(map[dnsmsg.Name]*customer),
		nsHosts:   make(map[dnsmsg.Name]netip.Addr),
	}
	const asn = ipspace.ASN(64701)
	cfg.Registry.AddAS(asn, "cedexis")
	prefix := cfg.Alloc.NextPrefix(24)
	cfg.Registry.MustAnnounce(asn, prefix)

	m.zone = dnszone.New(Apex, dnsmsg.SOAData{
		MName: Apex.Child("ns1"), RName: Apex.Child("hostmaster"), Serial: 1, Minimum: 300,
	})
	m.server = dnsserver.New(dnsserver.Config{Name: "cedexis"})
	m.server.AddZone(m.zone)
	for i := 0; i < 2; i++ {
		host := Apex.Child(fmt.Sprintf("ns%d", i+1))
		addr := ipspace.NthAddr(prefix, i)
		m.nsHosts[host] = addr
		m.zone.MustAdd(dnsmsg.NewNS(Apex, website.DefaultNSTTL, host))
		m.zone.MustAdd(dnsmsg.NewA(host, website.DefaultNSTTL, addr))
		region := []netsim.Region{netsim.RegionVirginia, netsim.RegionSingapore}[i]
		cfg.Network.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}, region, m.server)
	}
	return m
}

// NS returns the front-end's nameserver hostnames and addresses, for TLD
// delegation.
func (m *Manager) NS() map[dnsmsg.Name]netip.Addr {
	out := make(map[dnsmsg.Name]netip.Addr, len(m.nsHosts))
	for h, a := range m.nsHosts {
		out[h] = a
	}
	return out
}

// Enroll registers apex with origin at every CDN in the pool and returns
// the front-end alias the customer should point its www record at.
func (m *Manager) Enroll(apex dnsmsg.Name, origin netip.Addr) (dnsmsg.Name, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.customers[apex]; ok {
		return "", fmt.Errorf("enrolling %s: %w", apex, ErrAlreadyEnrolled)
	}
	c := &customer{apex: apex}
	for _, p := range m.providers {
		asg, err := p.Enroll(apex, origin, dps.ReroutingCNAME, dps.PlanPaid)
		if err != nil {
			return "", fmt.Errorf("enrolling %s at %s: %w", apex, p.Profile().Key, err)
		}
		c.targets = append(c.targets, asg.CNAMETarget)
	}
	m.tokenSeq++
	c.token = Apex.Child(fmt.Sprintf("opt-%06x%03d", m.rng.Uint32()&0xFFFFFF, m.tokenSeq%1000))
	c.current = m.rng.Intn(len(c.targets))
	m.zone.MustAdd(dnsmsg.NewCNAME(c.token, website.DefaultATTL, c.targets[c.current]))
	m.customers[apex] = c
	return c.token, nil
}

// FlipAll re-evaluates every customer's CDN selection; each flips to a
// different provider with probability flipProb. Returns how many flipped.
func (m *Manager) FlipAll(flipProb float64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	flipped := 0
	apexes := make([]dnsmsg.Name, 0, len(m.customers))
	for apex := range m.customers {
		apexes = append(apexes, apex)
	}
	sort.Slice(apexes, func(i, j int) bool { return apexes[i] < apexes[j] })
	for _, apex := range apexes {
		c := m.customers[apex]
		if m.rng.Float64() >= flipProb {
			continue
		}
		next := m.rng.Intn(len(c.targets) - 1)
		if next >= c.current {
			next++
		}
		c.current = next
		mustSet(m.zone, dnsmsg.NewCNAME(c.token, website.DefaultATTL, c.targets[c.current]))
		flipped++
	}
	return flipped
}

func mustSet(z *dnszone.Zone, rr dnsmsg.RR) {
	if err := z.Set(rr.Name, rr.Type(), rr); err != nil {
		panic(fmt.Sprintf("multicdn: %v", err))
	}
}

// Customers returns the enrolled apexes, sorted.
func (m *Manager) Customers() []dnsmsg.Name {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]dnsmsg.Name, 0, len(m.customers))
	for apex := range m.customers {
		out = append(out, apex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CurrentTarget returns the provider CNAME target apex currently routes to.
func (m *Manager) CurrentTarget(apex dnsmsg.Name) (dnsmsg.Name, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.customers[apex]
	if !ok {
		return "", false
	}
	return c.targets[c.current], true
}
