package multicdn

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"

	"rrdps/internal/dps"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// newManager wires a bare manager over two real providers.
func newManager(t *testing.T) (*Manager, *netsim.Network) {
	t.Helper()
	clock := simtime.NewSimulated()
	net := netsim.New(netsim.Config{Clock: clock})
	alloc := ipspace.NewAllocator(netip.MustParseAddr("20.0.0.0"))
	registry := ipspace.NewRegistry()
	var providers []*dps.Provider
	for i, key := range []dps.ProviderKey{dps.Fastly, dps.Cloudfront} {
		profile, _ := dps.ProfileFor(key)
		providers = append(providers, dps.New(dps.Config{
			Profile:  profile,
			Network:  net,
			Clock:    clock,
			Alloc:    alloc,
			Registry: registry,
			Rand:     rand.New(rand.NewSource(int64(i + 1))),
		}))
	}
	m := New(Config{
		Network:   net,
		Alloc:     alloc,
		Registry:  registry,
		Rand:      rand.New(rand.NewSource(9)),
		Providers: providers,
	})
	return m, net
}

func TestManagerEnroll(t *testing.T) {
	m, _ := newManager(t)
	origin := netip.MustParseAddr("198.18.0.5")
	token, err := m.Enroll("shop.com", origin)
	if err != nil {
		t.Fatal(err)
	}
	if !token.ContainsSubstring("cedexis") {
		t.Fatalf("token = %v", token)
	}
	if got := m.Customers(); len(got) != 1 || got[0] != "shop.com" {
		t.Fatalf("customers = %v", got)
	}
	target, ok := m.CurrentTarget("shop.com")
	if !ok {
		t.Fatal("no current target")
	}
	if !target.ContainsSubstring("fastly") && !target.ContainsSubstring("cloudfront") {
		t.Fatalf("target = %v", target)
	}
}

func TestManagerEnrollTwice(t *testing.T) {
	m, _ := newManager(t)
	origin := netip.MustParseAddr("198.18.0.5")
	if _, err := m.Enroll("shop.com", origin); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enroll("shop.com", origin); !errors.Is(err, ErrAlreadyEnrolled) {
		t.Fatalf("err = %v, want ErrAlreadyEnrolled", err)
	}
}

func TestManagerFlipAll(t *testing.T) {
	m, _ := newManager(t)
	origin := netip.MustParseAddr("198.18.0.5")
	if _, err := m.Enroll("shop.com", origin); err != nil {
		t.Fatal(err)
	}
	before, _ := m.CurrentTarget("shop.com")
	if n := m.FlipAll(1.0); n != 1 {
		t.Fatalf("flipped = %d", n)
	}
	after, _ := m.CurrentTarget("shop.com")
	if before == after {
		t.Fatal("FlipAll(1.0) did not change the target")
	}
	if n := m.FlipAll(0); n != 0 {
		t.Fatalf("FlipAll(0) flipped %d", n)
	}
}

func TestManagerUnknownTarget(t *testing.T) {
	m, _ := newManager(t)
	if _, ok := m.CurrentTarget("ghost.com"); ok {
		t.Fatal("unknown customer has a target")
	}
}
