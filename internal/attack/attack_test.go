package attack

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/edge"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// fixture wires one origin behind one scrubbing edge.
type fixture struct {
	net      *netsim.Network
	guard    *CapacityGuard
	scrubber *RateScrubber

	originAddr netip.Addr
	edgeAddr   netip.Addr
	botnet     *Botnet
	legit      *httpsim.Client
}

const testHost = "www.victim.com"

func newFixture(t *testing.T, bots, originCapacity int) *fixture {
	t.Helper()
	clock := simtime.NewSimulated()
	f := &fixture{
		net:        netsim.New(netsim.Config{Clock: clock}),
		originAddr: netip.MustParseAddr("198.18.0.10"),
		edgeAddr:   netip.MustParseAddr("104.16.0.10"),
	}
	origin := httpsim.NewOrigin(httpsim.OriginConfig{Page: httpsim.Page{Title: "Victim"}})
	f.guard = NewCapacityGuard(origin, originCapacity)
	f.net.Register(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, f.guard)

	f.scrubber = NewRateScrubber(3)
	e := edge.New(edge.Config{
		Network:  f.net,
		Addr:     f.edgeAddr,
		Region:   netsim.RegionOregon,
		Clock:    clock,
		CacheTTL: time.Hour,
		Scrubber: f.scrubber,
	})
	e.SetBackend(testHost, f.originAddr)
	f.net.Register(netsim.Endpoint{Addr: f.edgeAddr, Port: netsim.PortHTTP}, netsim.RegionOregon, e)

	alloc := ipspace.NewAllocator(netip.MustParseAddr("60.0.0.0"))
	f.botnet = NewBotnet(bots, alloc.NextAddr, rand.New(rand.NewSource(5)))
	f.legit = httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.77"), netsim.RegionLondon)
	return f
}

func (f *fixture) scenario(target netip.Addr) Scenario {
	return Scenario{
		Network:        f.net,
		TargetAddr:     target,
		TargetHost:     testHost,
		Botnet:         f.botnet,
		RequestsPerBot: 10,
		Ticks:          5,
		LegitClient:    f.legit,
		LegitAddr:      f.edgeAddr,
		Tickers:        []interface{ Tick() }{f.scrubber, f.guard},
	}
}

// TestProtectedAttackAbsorbed is Fig. 1(a): flooding the edge leaves the
// site fully available while scrubbing eats the flood.
func TestProtectedAttackAbsorbed(t *testing.T) {
	f := newFixture(t, 40, 50)
	res := f.scenario(f.edgeAddr).Run()

	if res.Availability() != 1.0 {
		t.Fatalf("availability = %.2f, want 1.0 under protection (result %+v)", res.Availability(), res)
	}
	if res.AttackDropped == 0 {
		t.Fatal("scrubbing dropped nothing")
	}
	// Budget 3/tick/bot of 10 sent: 70% dropped.
	if ratio := float64(res.AttackDropped) / float64(res.AttackSent); ratio < 0.6 {
		t.Fatalf("dropped ratio = %.2f, want ≈0.7", ratio)
	}
	if f.guard.OverloadTicks() != 0 {
		t.Fatalf("origin overloaded %d ticks behind the edge", f.guard.OverloadTicks())
	}
}

// TestBypassAttackKnocksOriginOut is Fig. 1(b): with the origin address
// leaked (residual resolution), the flood bypasses the DPS and takes the
// site down.
func TestBypassAttackKnocksOriginOut(t *testing.T) {
	f := newFixture(t, 40, 50)
	res := f.scenario(f.originAddr).Run()

	if res.Availability() != 0 {
		t.Fatalf("availability = %.2f, want 0 under direct flood (result %+v)", res.Availability(), res)
	}
	if f.guard.OverloadTicks() != 5 {
		t.Fatalf("overload ticks = %d, want 5", f.guard.OverloadTicks())
	}
	if res.AttackDropped == 0 {
		t.Fatal("no flood requests dropped by exhausted origin")
	}
}

// TestSmallFloodDirectlySurvivable: a flood below origin capacity does not
// take the site down even when aimed at the origin.
func TestSmallFloodDirectlySurvivable(t *testing.T) {
	f := newFixture(t, 3, 500)
	res := f.scenario(f.originAddr).Run()
	if res.Availability() != 1.0 {
		t.Fatalf("availability = %.2f, want 1.0 for sub-capacity flood", res.Availability())
	}
}

func TestRateScrubber(t *testing.T) {
	s := NewRateScrubber(2)
	src := netip.MustParseAddr("60.0.0.1")
	for i := 0; i < 2; i++ {
		if !s.Allow(src, testHost) {
			t.Fatalf("request %d blocked within budget", i)
		}
	}
	if s.Allow(src, testHost) {
		t.Fatal("over-budget request allowed")
	}
	s.Tick()
	if !s.Allow(src, testHost) {
		t.Fatal("budget did not reset on tick")
	}
}

func TestCapacityGuard(t *testing.T) {
	inner := netsim.HandlerFunc(func(netsim.Request) ([]byte, error) { return []byte("ok"), nil })
	g := NewCapacityGuard(inner, 2)
	for i := 0; i < 2; i++ {
		if out, _ := g.ServeNet(netsim.Request{}); out == nil {
			t.Fatalf("request %d dropped within capacity", i)
		}
	}
	if out, _ := g.ServeNet(netsim.Request{}); out != nil {
		t.Fatal("over-capacity request served")
	}
	if g.OverloadTicks() != 1 {
		t.Fatalf("overload ticks = %d", g.OverloadTicks())
	}
	g.Tick()
	if out, _ := g.ServeNet(netsim.Request{}); out == nil {
		t.Fatal("capacity did not reset on tick")
	}
}

func TestBotnetDeterministic(t *testing.T) {
	allocA := ipspace.NewAllocator(netip.MustParseAddr("60.0.0.0"))
	allocB := ipspace.NewAllocator(netip.MustParseAddr("60.0.0.0"))
	a := NewBotnet(10, allocA.NextAddr, rand.New(rand.NewSource(9)))
	b := NewBotnet(10, allocB.NextAddr, rand.New(rand.NewSource(9)))
	if a.Size() != 10 || b.Size() != 10 {
		t.Fatal("botnet size wrong")
	}
	for i := range a.bots {
		if a.bots[i] != b.bots[i] || a.regions[i] != b.regions[i] {
			t.Fatal("botnets differ despite same seed")
		}
	}
}

func TestResultAvailabilityEmpty(t *testing.T) {
	if (Result{}).Availability() != 0 {
		t.Fatal("empty result availability should be 0")
	}
}
