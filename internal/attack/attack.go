// Package attack simulates the DDoS scenario of Fig. 1: a botnet floods a
// website either through its DPS provider's edge (where scrubbing absorbs
// the attack) or — after residual resolution leaked the origin address —
// directly at the origin, bypassing the protection entirely.
//
// The simulation drives real HTTP requests over the fabric: bots and
// legitimate clients share the same transport, the edge's scrubbing center
// drops flagged traffic, and an origin capacity guard knocks the origin
// offline whenever per-tick load exceeds its capacity.
package attack

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
)

// RateScrubber is a scrubbing policy that limits each source address to a
// per-tick request budget; sources exceeding it are dropped for the rest
// of the tick. Legitimate clients stay far below the budget while flood
// bots blow through it immediately.
type RateScrubber struct {
	// PerSourceBudget is the number of requests a single source may issue
	// within one tick before being dropped.
	PerSourceBudget int

	mu     sync.Mutex
	counts map[netip.Addr]int
}

// NewRateScrubber creates a scrubber with the given per-tick budget.
func NewRateScrubber(budget int) *RateScrubber {
	if budget <= 0 {
		panic(fmt.Sprintf("attack: scrubber budget %d", budget))
	}
	return &RateScrubber{PerSourceBudget: budget, counts: make(map[netip.Addr]int)}
}

// Allow implements edge.Scrubber.
func (s *RateScrubber) Allow(from netip.Addr, _ string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[from]++
	return s.counts[from] <= s.PerSourceBudget
}

// Tick resets the per-source counters; call once per simulation tick.
func (s *RateScrubber) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts = make(map[netip.Addr]int)
}

// CapacityGuard wraps a server handler with a per-tick load limit: once
// more than Capacity requests arrive within one tick, further requests are
// dropped (the server is overwhelmed). It models resource exhaustion at an
// origin that a DPS would otherwise absorb.
type CapacityGuard struct {
	inner    netsim.Handler
	capacity int

	mu       sync.Mutex
	load     int
	overload bool
	// overloadTicks counts ticks during which the guard dropped traffic.
	overloadTicks int
}

// NewCapacityGuard wraps inner with a per-tick capacity.
func NewCapacityGuard(inner netsim.Handler, capacity int) *CapacityGuard {
	if inner == nil || capacity <= 0 {
		panic("attack: guard requires inner handler and positive capacity")
	}
	return &CapacityGuard{inner: inner, capacity: capacity}
}

var _ netsim.Handler = (*CapacityGuard)(nil)

// ServeNet implements netsim.Handler.
func (g *CapacityGuard) ServeNet(req netsim.Request) ([]byte, error) {
	g.mu.Lock()
	g.load++
	drop := g.load > g.capacity
	if drop && !g.overload {
		g.overload = true
		g.overloadTicks++
	}
	g.mu.Unlock()
	if drop {
		return nil, nil // exhausted: silent drop, client times out
	}
	return g.inner.ServeNet(req)
}

// Tick resets the per-tick load counter.
func (g *CapacityGuard) Tick() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.load = 0
	g.overload = false
}

// OverloadTicks returns how many ticks saw overload drops.
func (g *CapacityGuard) OverloadTicks() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.overloadTicks
}

// Botnet is a set of compromised hosts used to generate flood traffic.
type Botnet struct {
	bots    []netip.Addr
	regions []netsim.Region
}

// NewBotnet allocates n bot addresses spread across regions.
func NewBotnet(n int, alloc func() netip.Addr, rng *rand.Rand) *Botnet {
	if n <= 0 || alloc == nil || rng == nil {
		panic("attack: NewBotnet requires positive n, alloc, and rng")
	}
	b := &Botnet{}
	all := netsim.AllRegions()
	for i := 0; i < n; i++ {
		b.bots = append(b.bots, alloc())
		b.regions = append(b.regions, all[rng.Intn(len(all))])
	}
	return b
}

// Size returns the number of bots.
func (b *Botnet) Size() int { return len(b.bots) }

// Bot returns the i'th bot's address and region, so drivers outside this
// package can route per-bot traffic (e.g. the scenario-driven reflection
// load in core/experiment).
func (b *Botnet) Bot(i int) (netip.Addr, netsim.Region) {
	return b.bots[i], b.regions[i]
}

// Scenario describes one flood experiment.
type Scenario struct {
	Network *netsim.Network
	// TargetAddr is where the attacker aims (edge when protected, origin
	// when leaked by residual resolution).
	TargetAddr netip.Addr
	// TargetHost is the Host header of the flood requests.
	TargetHost string
	// Botnet generates the flood; each bot issues RequestsPerBot requests
	// per tick.
	Botnet         *Botnet
	RequestsPerBot int
	// Ticks is the number of simulation rounds.
	Ticks int
	// LegitClient issues one request per tick to measure availability; it
	// targets LegitAddr (the public view of the site).
	LegitClient *httpsim.Client
	LegitAddr   netip.Addr
	// Tickers are reset at each tick (scrubbers, capacity guards).
	Tickers []interface{ Tick() }
}

// Result summarizes a flood experiment.
type Result struct {
	Ticks int
	// AttackSent / AttackServed / AttackDropped count flood requests.
	AttackSent    int
	AttackServed  int
	AttackDropped int
	// LegitOK / LegitFail count the availability probes.
	LegitOK   int
	LegitFail int
}

// Availability returns the fraction of availability probes that succeeded.
func (r Result) Availability() float64 {
	total := r.LegitOK + r.LegitFail
	if total == 0 {
		return 0
	}
	return float64(r.LegitOK) / float64(total)
}

// Run executes the scenario.
func (s Scenario) Run() Result {
	if s.Network == nil || s.Botnet == nil || s.LegitClient == nil {
		panic("attack: Scenario requires Network, Botnet, and LegitClient")
	}
	if s.Ticks <= 0 || s.RequestsPerBot <= 0 {
		panic("attack: Scenario requires positive Ticks and RequestsPerBot")
	}
	var res Result
	res.Ticks = s.Ticks
	targetEP := netsim.Endpoint{Addr: s.TargetAddr, Port: netsim.PortHTTP}
	floodReq := httpsim.EncodeRequest(httpsim.Request{Method: "GET", Path: "/", Host: s.TargetHost})

	for tick := 0; tick < s.Ticks; tick++ {
		for _, t := range s.Tickers {
			t.Tick()
		}
		// Flood phase.
		for i, bot := range s.Botnet.bots {
			for r := 0; r < s.RequestsPerBot; r++ {
				res.AttackSent++
				_, err := s.Network.Send(bot, s.Botnet.regions[i], targetEP, floodReq)
				if err != nil {
					res.AttackDropped++
				} else {
					res.AttackServed++
				}
			}
		}
		// Availability probe.
		resp, err := s.LegitClient.Get(s.LegitAddr, s.TargetHost, "/")
		if err == nil && resp.StatusCode == 200 {
			res.LegitOK++
		} else {
			res.LegitFail++
		}
	}
	return res
}
