package attack

import (
	"math/rand"
	"net/netip"
	"testing"

	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// reflectionFixture wires a victim origin (capacity-guarded) and a set of
// open resolvers.
func reflectionFixture(t *testing.T, resolvers, amplification, capacity int) (*fixture, []*OpenResolver) {
	t.Helper()
	f := newFixture(t, 1, capacity) // a tiny botnet placeholder; replaced below
	alloc := ipspace.NewAllocator(netip.MustParseAddr("70.0.0.0"))
	var open []*OpenResolver
	for i := 0; i < resolvers; i++ {
		open = append(open, NewOpenResolver(
			f.net, alloc.NextAddr(), netsim.RegionVirginia, amplification, netsim.PortHTTP))
	}
	return f, open
}

// TestReflectionAmplifiesSmallBotnet: a botnet far too small to overwhelm
// the origin directly takes it down through 40x amplification.
func TestReflectionAmplifiesSmallBotnet(t *testing.T) {
	f, open := reflectionFixture(t, 4, 40, 50)
	botAlloc := ipspace.NewAllocator(netip.MustParseAddr("80.0.0.0"))
	smallBotnet := NewBotnet(5, botAlloc.NextAddr, rand.New(rand.NewSource(3)))

	// Direct flood with the same 5 bots: 50 requests/tick ≤ capacity+probe
	// headroom would still overload slightly; use the reflection scenario
	// first and then compare with the direct one below at equal volume.
	scenario := ReflectionScenario{
		Network:        f.net,
		VictimAddr:     f.originAddr,
		VictimHost:     testHost,
		Resolvers:      open,
		Botnet:         smallBotnet,
		RequestsPerBot: 3, // 15 spoofed queries * 40x = 600 units/tick
		Ticks:          4,
		LegitClient:    f.legit,
		LegitAddr:      f.edgeAddr,
		Tickers:        []interface{ Tick() }{f.scrubber, f.guard},
	}
	res := scenario.Run()
	if res.Availability() != 0 {
		t.Fatalf("availability = %.2f under 40x amplification, want 0", res.Availability())
	}
	totalReflected := 0
	for _, r := range open {
		totalReflected += r.Reflected()
	}
	if want := 5 * 3 * 4 * 40; totalReflected != want {
		t.Fatalf("reflected units = %d, want %d", totalReflected, want)
	}
	if res.AttackSent != 5*3*4 {
		t.Fatalf("attack sent = %d", res.AttackSent)
	}
}

// TestSameBotnetDirectFloodIsAbsorbed: without amplification the same
// small botnet cannot hurt the origin.
func TestSameBotnetDirectFloodIsAbsorbed(t *testing.T) {
	f := newFixture(t, 5, 50)
	res := Scenario{
		Network:        f.net,
		TargetAddr:     f.originAddr,
		TargetHost:     testHost,
		Botnet:         f.botnet,
		RequestsPerBot: 3, // 15 requests/tick, well under capacity 50
		Ticks:          4,
		LegitClient:    f.legit,
		LegitAddr:      f.edgeAddr,
		Tickers:        []interface{ Tick() }{f.scrubber, f.guard},
	}.Run()
	if res.Availability() != 1.0 {
		t.Fatalf("availability = %.2f for sub-capacity direct flood", res.Availability())
	}
	if f.guard.OverloadTicks() != 0 {
		t.Fatalf("overload ticks = %d", f.guard.OverloadTicks())
	}
}

func TestOpenResolverReflectsToClaimedSource(t *testing.T) {
	net := netsim.New(netsim.Config{Clock: simtime.NewSimulated()})
	var landed []netip.Addr
	sink := netsim.HandlerFunc(func(req netsim.Request) ([]byte, error) {
		landed = append(landed, req.From)
		return []byte("ok"), nil
	})
	victim := netip.MustParseAddr("198.18.0.99")
	net.Register(netsim.Endpoint{Addr: victim, Port: netsim.PortHTTP}, netsim.RegionVirginia, sink)

	resolver := NewOpenResolver(net, netip.MustParseAddr("70.0.0.1"), netsim.RegionOregon, 7, netsim.PortHTTP)
	// A bot spoofing the victim's address.
	_, err := net.Send(victim, netsim.RegionTokyo, netsim.Endpoint{Addr: resolver.Addr(), Port: netsim.PortDNS}, []byte("q"))
	if err == nil {
		t.Fatal("spoofing bot got a response; reflection should answer the victim instead")
	}
	if len(landed) != 7 {
		t.Fatalf("victim received %d units, want 7", len(landed))
	}
	for _, from := range landed {
		if from != resolver.Addr() {
			t.Fatalf("amplified traffic from %v, want resolver %v", from, resolver.Addr())
		}
	}
	if resolver.Reflected() != 7 {
		t.Fatalf("Reflected() = %d", resolver.Reflected())
	}
}
