package attack

import (
	"net/netip"
	"sync"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
)

// The paper's introduction describes the modern DDoS arsenal: botnets
// sending traffic "directly or indirectly by leveraging the reflectors
// (e.g., NTP servers or DNS open resolvers)". This file models the
// indirect path: an open resolver that answers small spoofed queries with
// amplified responses aimed at the victim.

// OpenResolver is an abusable reflector on the fabric. A query whose
// (spoofed) source address is the victim makes the resolver deliver
// Amplification response units to that address — the victim — while the
// actual sender pays for one small packet.
type OpenResolver struct {
	net  *netsim.Network
	addr netip.Addr
	// Amplification is how many response units one query generates (DNS
	// amplification factors of 30-50x are typical; NTP's monlist reached
	// hundreds).
	amplification int
	// victimPort is where the junk lands on the spoofed source.
	victimPort uint16

	mu        sync.Mutex
	reflected int
}

// NewOpenResolver registers an open resolver at addr. Amplified responses
// are delivered to the spoofed source's victimPort.
func NewOpenResolver(net *netsim.Network, addr netip.Addr, region netsim.Region, amplification int, victimPort uint16) *OpenResolver {
	if net == nil || amplification <= 0 {
		panic("attack: NewOpenResolver requires network and positive amplification")
	}
	r := &OpenResolver{
		net:           net,
		addr:          addr,
		amplification: amplification,
		victimPort:    victimPort,
	}
	net.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}, region, r)
	return r
}

var _ netsim.Handler = (*OpenResolver)(nil)

// Addr returns the resolver's address.
func (r *OpenResolver) Addr() netip.Addr { return r.addr }

// Reflected returns how many response units the resolver has emitted.
func (r *OpenResolver) Reflected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reflected
}

// ServeNet implements netsim.Handler: every query is answered toward the
// *claimed* source — the essence of reflection. The caller (the spoofing
// bot) gets nothing back.
func (r *OpenResolver) ServeNet(req netsim.Request) ([]byte, error) {
	target := netsim.Endpoint{Addr: req.From, Port: r.victimPort}
	payload := append([]byte("amplified-response:"), req.Payload...)
	for i := 0; i < r.amplification; i++ {
		// Delivery failures (victim already down) still count as emitted
		// traffic; the wire was filled either way.
		_, _ = r.net.Send(r.addr, req.PoPRegion, target, payload)
	}
	r.mu.Lock()
	r.reflected += r.amplification
	r.mu.Unlock()
	return nil, nil
}

// ReflectionScenario floods a victim indirectly: each bot sends spoofed
// queries (source = victim) to the open resolvers, which amplify onto the
// victim.
type ReflectionScenario struct {
	Network *netsim.Network
	// VictimAddr is the spoofed source — where amplified traffic lands.
	VictimAddr netip.Addr
	// VictimHost is used for availability probes.
	VictimHost string
	// Resolvers are the abusable reflectors.
	Resolvers []*OpenResolver
	// Botnet issues RequestsPerBot spoofed queries per tick.
	Botnet         *Botnet
	RequestsPerBot int
	Ticks          int
	// LegitClient probes LegitAddr once per tick.
	LegitClient *httpsim.Client
	LegitAddr   netip.Addr
	Tickers     []interface{ Tick() }
}

// Run executes the reflection flood.
func (s ReflectionScenario) Run() Result {
	if s.Network == nil || s.Botnet == nil || s.LegitClient == nil || len(s.Resolvers) == 0 {
		panic("attack: ReflectionScenario requires Network, Botnet, LegitClient, and Resolvers")
	}
	if s.Ticks <= 0 || s.RequestsPerBot <= 0 {
		panic("attack: ReflectionScenario requires positive Ticks and RequestsPerBot")
	}
	var res Result
	res.Ticks = s.Ticks
	query := []byte("ANY? large.zone.example")

	for tick := 0; tick < s.Ticks; tick++ {
		for _, t := range s.Tickers {
			t.Tick()
		}
		for i := range s.Botnet.bots {
			for r := 0; r < s.RequestsPerBot; r++ {
				res.AttackSent++
				resolver := s.Resolvers[(i+r)%len(s.Resolvers)]
				// The bot spoofs the victim as its source address; the
				// fabric carries source addresses verbatim (no BCP38 on
				// this simulated Internet).
				ep := netsim.Endpoint{Addr: resolver.Addr(), Port: netsim.PortDNS}
				_, err := s.Network.Send(s.VictimAddr, s.Botnet.regions[i], ep, query)
				if err != nil {
					res.AttackDropped++
				} else {
					res.AttackServed++
				}
			}
		}
		resp, err := s.LegitClient.Get(s.LegitAddr, s.VictimHost, "/")
		if err == nil && resp.StatusCode == 200 {
			res.LegitOK++
		} else {
			res.LegitFail++
		}
	}
	return res
}
