package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Error is a spec problem anchored to a source line, so a broken
// scenario file reads like a compiler diagnostic:
//
//	scenarios/broken.json:14: campaign.churnBoost must be positive (got -2)
type Error struct {
	// File is the spec path ("scenario" for in-memory parses).
	File string
	// Line is the 1-based source line, 0 when no anchor was found.
	Line int
	// Msg describes the problem.
	Msg string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.File, e.Msg)
}

// Load reads and parses a scenario spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(path, data)
}

// Parse decodes a scenario document of any supported apiVersion,
// converts it to the v1 hub form, applies defaults, validates, and
// computes the canonical form and hash. file names the source in error
// messages; pass "" for in-memory data.
func Parse(file string, data []byte) (*Spec, error) {
	if file == "" {
		file = "scenario"
	}
	// Peek the version with a lenient decode so version dispatch works
	// even when the rest of the document would not survive strict
	// decoding against either schema.
	var head struct {
		APIVersion string `json:"apiVersion"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, decodeError(file, data, err)
	}

	var doc V1
	switch head.APIVersion {
	case APIVersionV1:
		if err := strictDecode(data, &doc); err != nil {
			return nil, decodeError(file, data, err)
		}
	case APIVersionV1Alpha1:
		var alpha V1Alpha1
		if err := strictDecode(data, &alpha); err != nil {
			return nil, decodeError(file, data, err)
		}
		doc = ConvertV1Alpha1(alpha)
	default:
		return nil, &Error{
			File: file,
			Line: fieldLine(data, "", "apiVersion"),
			Msg: fmt.Sprintf("unsupported apiVersion %q (supported: %s, %s)",
				head.APIVersion, APIVersionV1, APIVersionV1Alpha1),
		}
	}

	doc.normalize()
	anchor := func(section, key string) int { return fieldLine(data, section, key) }
	if err := doc.validate(anchor, file); err != nil {
		return nil, err
	}
	canonical, hash := canonicalize(doc)
	return &Spec{Doc: doc, Canonical: canonical, Hash: hash, File: file}, nil
}

// strictDecode unmarshals data into v rejecting unknown fields and
// trailing garbage.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A spec is one document; a second value means the file is not what
	// the author thinks it is.
	if dec.More() {
		return errors.New("trailing data after the scenario document")
	}
	return nil
}

// decodeError converts an encoding/json error into a line-anchored
// *Error. Syntax and type errors carry byte offsets; unknown-field
// errors only carry the field name, which we locate in the raw bytes.
func decodeError(file string, data []byte, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := lineCol(data, syn.Offset)
		return &Error{File: file, Line: line, Msg: fmt.Sprintf("column %d: %v", col, syn)}
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, _ := lineCol(data, typ.Offset)
		field := typ.Field
		if field == "" {
			field = "document"
		}
		return &Error{File: file, Line: line, Msg: fmt.Sprintf("%s: cannot decode %s as %s", field, typ.Value, typ.Type)}
	}
	// encoding/json has no exported type for unknown-field errors; the
	// message is `json: unknown field "foo"`.
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		field := strings.Trim(strings.TrimPrefix(msg, "json: unknown field "), `"`)
		return &Error{File: file, Line: fieldLine(data, "", field), Msg: fmt.Sprintf("unknown field %q", field)}
	}
	return &Error{File: file, Msg: err.Error()}
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	prefix := data[:offset]
	line = 1 + bytes.Count(prefix, []byte{'\n'})
	if i := bytes.LastIndexByte(prefix, '\n'); i >= 0 {
		col = int(offset) - i
	} else {
		col = int(offset) + 1
	}
	return line, col
}

// fieldLine finds the 1-based line of the first `"key"` occurrence at or
// after the first `"section"` occurrence (empty section = whole file),
// for anchoring semantic errors whose JSON position encoding/json does
// not report. Returns 0 when the key is absent (e.g. the error is about
// a missing field), which renders without a line number.
func fieldLine(data []byte, section, key string) int {
	start := 0
	if section != "" {
		if i := bytes.Index(data, []byte(`"`+section+`"`)); i >= 0 {
			start = i
		}
	}
	i := bytes.Index(data[start:], []byte(`"`+key+`"`))
	if i < 0 {
		// Fall back to the section itself so the error still points near
		// the problem.
		if section != "" {
			if j := bytes.Index(data, []byte(`"`+section+`"`)); j >= 0 {
				line, _ := lineCol(data, int64(j))
				return line
			}
		}
		return 0
	}
	line, _ := lineCol(data, int64(start+i))
	return line
}
