package scenario

// V1Alpha1 is the original draft spec format, kept decodable so early
// scenario files keep working. It differs from the v1 hub form in two
// ways: churn waves were a single-multiplier "churnWaves" list (one mult
// applied to both LEAVE and SWITCH — the only churn anyone boosted), and
// the world/attack sections did not exist yet. Conversion is lossless:
// everything an alpha document can say, a v1 document can say.
type V1Alpha1 struct {
	APIVersion string      `json:"apiVersion"`
	Kind       string      `json:"kind"`
	Metadata   Metadata    `json:"metadata"`
	Campaign   Campaign    `json:"campaign"`
	Resolver   Resolver    `json:"resolver"`
	Faults     *Faults     `json:"faults,omitempty"`
	ChurnWaves []AlphaWave `json:"churnWaves,omitempty"`
}

// AlphaWave is the v1alpha1 wave shape: a day range and one multiplier.
type AlphaWave struct {
	// Day is the first affected world day.
	Day int `json:"day"`
	// Length is the wave duration in days.
	Length int `json:"length"`
	// Mult scales both the LEAVE and SWITCH hazards for the range.
	Mult float64 `json:"mult"`
}

// ConvertV1Alpha1 converts an alpha document to the v1 hub form. The
// returned document is not yet normalized or validated; Parse does both
// after conversion, so alpha files get the same defaulting and the same
// line-anchored diagnostics as native v1 files.
func ConvertV1Alpha1(alpha V1Alpha1) V1 {
	doc := V1{
		APIVersion: APIVersionV1,
		Kind:       alpha.Kind,
		Metadata:   alpha.Metadata,
		Campaign:   alpha.Campaign,
		Resolver:   alpha.Resolver,
		Faults:     alpha.Faults,
	}
	for _, w := range alpha.ChurnWaves {
		doc.Waves = append(doc.Waves, Wave{
			StartDay:   w.Day,
			Days:       w.Length,
			LeaveMult:  w.Mult,
			SwitchMult: w.Mult,
		})
	}
	return doc
}
