package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse("test.json", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

// specErr asserts err is a *Error and returns it.
func specErr(t *testing.T, err error) *Error {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a *scenario.Error", err, err)
	}
	return se
}

const minimalDynamics = `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "minimal" },
  "campaign": { "kind": "dynamics" }
}`

func TestParseAppliesDefaults(t *testing.T) {
	s := mustParse(t, minimalDynamics)
	c := s.Doc.Campaign
	if c.Sites != 2000 || *c.Seed != 1815 || c.Days != 42 || *c.ChurnBoost != 1 {
		t.Fatalf("dynamics defaults not applied: %+v", c)
	}
	if s.Doc.Resolver.Retries != 3 || !*s.Doc.Resolver.Hedge {
		t.Fatalf("resolver defaults not applied: %+v", s.Doc.Resolver)
	}
	if s.Hash == "" || len(s.Canonical) == 0 {
		t.Fatal("canonical form not computed")
	}

	r := mustParse(t, `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "minimal-residual" },
  "campaign": { "kind": "residual" }
}`)
	rc := r.Doc.Campaign
	if rc.Weeks != 6 || *rc.WarmupDays != 28 || *rc.ChurnBoost != 8 {
		t.Fatalf("residual defaults not applied: %+v", rc)
	}
}

func TestParseRoundTripsCanonical(t *testing.T) {
	s := mustParse(t, minimalDynamics)
	again, err := Parse("canon.json", s.Canonical)
	if err != nil {
		t.Fatalf("re-parsing canonical form: %v", err)
	}
	if !bytes.Equal(again.Canonical, s.Canonical) {
		t.Errorf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", s.Canonical, again.Canonical)
	}
	if again.Hash != s.Hash {
		t.Errorf("hash changed across round trip: %s vs %s", s.Hash, again.Hash)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	src := `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "x" },
  "campaign": { "kind": "dynamics", "dayz": 10 }
}`
	se := specErr(t, func() error { _, err := Parse("bad.json", []byte(src)); return err }())
	if !strings.Contains(se.Msg, `unknown field "dayz"`) {
		t.Errorf("message %q does not name the field", se.Msg)
	}
	if se.Line != 5 {
		t.Errorf("error anchored to line %d, want 5", se.Line)
	}
}

func TestParseRejectsUnknownAPIVersion(t *testing.T) {
	src := `{
  "apiVersion": "rrdps/v2",
  "kind": "Scenario",
  "metadata": { "name": "x" },
  "campaign": { "kind": "dynamics" }
}`
	se := specErr(t, func() error { _, err := Parse("bad.json", []byte(src)); return err }())
	if !strings.Contains(se.Msg, "rrdps/v2") || !strings.Contains(se.Msg, APIVersionV1) {
		t.Errorf("message %q should name the bad version and the supported ones", se.Msg)
	}
	if se.Line != 2 {
		t.Errorf("error anchored to line %d, want 2 (the apiVersion line)", se.Line)
	}
}

func TestParseSyntaxErrorIsLineAnchored(t *testing.T) {
	src := "{\n  \"apiVersion\": \"rrdps/v1\",\n  \"kind\" \"Scenario\"\n}"
	se := specErr(t, func() error { _, err := Parse("bad.json", []byte(src)); return err }())
	if se.Line != 3 {
		t.Errorf("syntax error anchored to line %d, want 3", se.Line)
	}
}

func TestParseTypeErrorIsLineAnchored(t *testing.T) {
	src := `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "x" },
  "campaign": { "kind": "dynamics", "sites": "many" }
}`
	se := specErr(t, func() error { _, err := Parse("bad.json", []byte(src)); return err }())
	if se.Line != 5 {
		t.Errorf("type error anchored to line %d, want 5", se.Line)
	}
	if !strings.Contains(se.Msg, "sites") {
		t.Errorf("message %q does not name the field", se.Msg)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	specErr(t, func() error { _, err := Parse("bad.json", []byte(minimalDynamics+"\n{}")); return err }())
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error message
	}{
		{"bad kind", `{"apiVersion":"rrdps/v1","kind":"Scen","metadata":{"name":"x"},"campaign":{"kind":"dynamics"}}`, `kind must be "Scenario"`},
		{"missing name", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{},"campaign":{"kind":"dynamics"}}`, "metadata.name is required"},
		{"bad name", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"Has Spaces"},"campaign":{"kind":"dynamics"}}`, "kebab-case"},
		{"bad campaign kind", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"both"}}`, "campaign.kind"},
		{"weeks on dynamics", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics","weeks":4}}`, "residual knob"},
		{"days on residual", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual","days":10}}`, "dynamics knob"},
		{"attack on dynamics", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"attack":{"bots":1,"requestsPerBot":1,"amplification":1,"resolvers":1}}`, "attack requires a residual campaign"},
		{"negative boost", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics","churnBoost":-2}}`, "churnBoost must be positive"},
		{"zero-mult wave", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"waves":[{"startDay":1,"days":2}]}`, "no multiplier"},
		{"zero-day wave", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"waves":[{"startDay":1,"days":0,"leaveMult":2}]}`, "days must be positive"},
		{"empty rate limit", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual"},"world":{"nsRateLimit":{"windowHours":1}}}`, "perSource or capacity"},
		{"incapsula week range", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual","weeks":4,"incapsulaStartWeek":9}}`, "incapsulaStartWeek"},
		{"non-positive attack", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual"},"attack":{"bots":0,"requestsPerBot":1,"amplification":1,"resolvers":1}}`, "must all be positive"},
		{"attack week range", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual","weeks":4},"attack":{"bots":1,"requestsPerBot":1,"amplification":1,"resolvers":1,"startWeek":7}}`, "attack.startWeek"},
		{"bad rate", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual"},"world":{"notifiedLeaveRate":1.5}}`, "outside [0,1]"},
		{"bad fault rate", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual"},"faults":{"lossRate":1.2}}`, "outside [0,1)"},
		{"low retries", `{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"resolver":{"retries":-1}}`, "retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("case.json", []byte(tc.src))
			se := specErr(t, err)
			if !strings.Contains(se.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", se.Error(), tc.want)
			}
		})
	}
}

func TestValidationErrorAnchorsToFieldLine(t *testing.T) {
	src := `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "x" },
  "campaign": {
    "kind": "dynamics",
    "churnBoost": -3
  }
}`
	_, err := Parse("anchored.json", []byte(src))
	se := specErr(t, err)
	if se.Line != 7 {
		t.Errorf("churnBoost error anchored to line %d, want 7", se.Line)
	}
	if got := se.Error(); !strings.HasPrefix(got, "anchored.json:7: ") {
		t.Errorf("rendered error %q lacks file:line prefix", got)
	}
}

// TestScenarioLibraryParses loads every shipped scenario file: the
// library must always be valid, and each file's metadata.name must match
// its file name.
func TestScenarioLibraryParses(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading scenario library: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("scenario library is empty")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		s, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); s.Name() != want {
			t.Errorf("%s: metadata.name %q != file name %q", e.Name(), s.Name(), want)
		}
		// Compilation of a valid spec must never panic.
		Compile(s)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}
