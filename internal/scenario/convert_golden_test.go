package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden rewrites the conversion goldens from current output:
//
//	go test ./internal/scenario -run TestConvertV1Alpha1Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestConvertV1Alpha1Golden parses every v1alpha1 document under
// testdata/convert and compares the canonical v1 form against its
// .golden.json neighbour. The goldens pin the conversion: churnWaves
// become leave+switch waves, defaults land explicitly, and the
// apiVersion is rewritten to the hub version.
func TestConvertV1Alpha1Golden(t *testing.T) {
	dir := filepath.Join("testdata", "convert")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".golden.json") {
			continue
		}
		ran++
		t.Run(strings.TrimSuffix(name, ".json"), func(t *testing.T) {
			spec, err := Load(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("parsing alpha input: %v", err)
			}
			if spec.Doc.APIVersion != APIVersionV1 {
				t.Errorf("converted apiVersion = %q, want %q", spec.Doc.APIVersion, APIVersionV1)
			}
			goldenPath := filepath.Join(dir, strings.TrimSuffix(name, ".json")+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, spec.Canonical, 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if string(want) != string(spec.Canonical) {
				t.Errorf("canonical form differs from golden %s:\n--- golden\n%s\n--- got\n%s", goldenPath, want, spec.Canonical)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no alpha inputs under testdata/convert")
	}
}

// TestConvertV1Alpha1WaveMapping pins the semantic core of the
// conversion independent of formatting: one alpha churnWave becomes one
// v1 wave scaling LEAVE and SWITCH by the same multiplier and nothing
// else.
func TestConvertV1Alpha1WaveMapping(t *testing.T) {
	alpha := V1Alpha1{
		APIVersion: APIVersionV1Alpha1,
		Kind:       KindScenario,
		Metadata:   Metadata{Name: "alpha-wave"},
		Campaign:   Campaign{Kind: CampaignDynamics},
		ChurnWaves: []AlphaWave{{Day: 5, Length: 3, Mult: 4}},
	}
	doc := ConvertV1Alpha1(alpha)
	if len(doc.Waves) != 1 {
		t.Fatalf("got %d waves, want 1", len(doc.Waves))
	}
	w := doc.Waves[0]
	want := Wave{StartDay: 5, Days: 3, LeaveMult: 4, SwitchMult: 4}
	if w != want {
		t.Errorf("converted wave %+v, want %+v", w, want)
	}
}

// TestAlphaRejectsV1OnlyFields pins that the alpha schema has no
// world/attack/waves sections: those arrived with v1, and an alpha file
// using them must fail loudly rather than silently drop them.
func TestAlphaRejectsV1OnlyFields(t *testing.T) {
	for _, field := range []string{
		`"waves": []`,
		`"world": {}`,
		`"attack": {"bots":1,"requestsPerBot":1,"amplification":1,"resolvers":1}`,
	} {
		src := `{
  "apiVersion": "rrdps/v1alpha1",
  "kind": "Scenario",
  "metadata": { "name": "x" },
  "campaign": { "kind": "residual" },
  ` + field + `
}`
		if _, err := Parse("alpha.json", []byte(src)); err == nil {
			t.Errorf("alpha document with %s parsed; want unknown-field error", field)
		}
	}
}
