// Package scenario implements versioned declarative scenario specs: a
// JSON document describes a complete campaign — world shape, fault plan,
// churn waves, retry policy, campaign horizon, and optional attack
// load — and compiles into the runtime configs the binaries otherwise
// assemble from flags.
//
// Specs are versioned by apiVersion. rrdps/v1 is the hub version every
// older spec converts into (the PowerDNS-Operator conversion style):
// parsing accepts any supported version, converts to v1, applies
// defaults, validates, and re-encodes a canonical form whose SHA-256
// hash identifies the scenario in campaign checkpoints and reports.
// Decoding is strict — unknown fields are rejected, with errors anchored
// to the offending line of the source file.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"
)

// Supported apiVersion values.
const (
	// APIVersionV1 is the hub version; canonical forms are always v1.
	APIVersionV1 = "rrdps/v1"
	// APIVersionV1Alpha1 is the original draft format, converted to v1 on
	// load (waves were a single-multiplier "churnWaves" list; rate limits
	// and attack loads did not exist).
	APIVersionV1Alpha1 = "rrdps/v1alpha1"
)

// KindScenario is the only document kind.
const KindScenario = "Scenario"

// Campaign kinds.
const (
	CampaignDynamics = "dynamics"
	CampaignResidual = "residual"
)

// V1 is the hub spec document. All defaulted fields are pointers or
// omitempty values so a normalized document re-encodes without noise;
// Parse returns documents with defaults already applied.
type V1 struct {
	APIVersion string   `json:"apiVersion"`
	Kind       string   `json:"kind"`
	Metadata   Metadata `json:"metadata"`
	Campaign   Campaign `json:"campaign"`
	Resolver   Resolver `json:"resolver"`
	World      *World   `json:"world,omitempty"`
	Faults     *Faults  `json:"faults,omitempty"`
	Waves      []Wave   `json:"waves,omitempty"`
	Attack     *Attack  `json:"attack,omitempty"`
}

// Metadata names the scenario.
type Metadata struct {
	// Name identifies the scenario (kebab-case); it lands in campaign
	// provenance next to the spec hash.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
}

// Campaign selects the experiment and its horizon.
type Campaign struct {
	// Kind is "dynamics" (the §IV usage-dynamics campaign, cmd/dpsmeasure)
	// or "residual" (the §V residual-resolution campaign, cmd/rrscan).
	Kind string `json:"kind"`
	// Sites is the world population. Defaults to 2000.
	Sites int `json:"sites,omitempty"`
	// Seed is the world seed. Defaults to 1815.
	Seed *int64 `json:"seed,omitempty"`
	// Days is the dynamics horizon. Defaults to 42; invalid for residual.
	Days int `json:"days,omitempty"`
	// Weeks is the residual horizon. Defaults to 6; invalid for dynamics.
	Weeks int `json:"weeks,omitempty"`
	// WarmupDays ages the world before the first residual scan.
	// Defaults to 28; invalid for dynamics.
	WarmupDays *int `json:"warmupDays,omitempty"`
	// IncapsulaStartWeek delays the Incapsula case study (residual only);
	// 0 or 1 means every week.
	IncapsulaStartWeek int `json:"incapsulaStartWeek,omitempty"`
	// ChurnBoost multiplies the behaviour hazards, exactly like the
	// binaries' -churn-boost: all four for dynamics, leave/switch/join for
	// residual. Defaults to 1 for dynamics and 8 for residual (the
	// binaries' flag defaults).
	ChurnBoost *float64 `json:"churnBoost,omitempty"`
	// Workers pins the measurement-loop parallelism. Zero leaves the
	// choice to the binary (its -workers default); scenarios whose
	// results are arrival-order dependent (rate limits) pin it to 1.
	Workers int `json:"workers,omitempty"`
	// SnapWindow bounds snapshot retention; zero keeps the binary default.
	SnapWindow int `json:"snapWindow,omitempty"`
}

// Resolver shapes the retry policy of every campaign client.
type Resolver struct {
	// Retries is attempts per query. Defaults to 3.
	Retries int `json:"retries,omitempty"`
	// Hedge retries against an alternate nameserver. Defaults to true.
	Hedge *bool `json:"hedge,omitempty"`
}

// World overrides selected world.Config knobs over the paper-calibrated
// baseline. Absent fields keep their PaperConfig values.
type World struct {
	// NSRateLimit installs a response rate limiter on every provider
	// nameserver endpoint.
	NSRateLimit *RateLimit `json:"nsRateLimit,omitempty"`
	// NotifiedLeaveRate overrides the fraction of leavers that notify
	// their provider.
	NotifiedLeaveRate *float64 `json:"notifiedLeaveRate,omitempty"`
	// PaidPlanRate overrides the paid-plan fraction.
	PaidPlanRate *float64 `json:"paidPlanRate,omitempty"`
	// DecoyOnLeaveRate overrides the §VI-B.2 decoy countermeasure rate.
	DecoyOnLeaveRate *float64 `json:"decoyOnLeaveRate,omitempty"`
	// PurgeDelayFreeDays / PurgeDelayPaidDays override the providers'
	// residual-record lifetimes, in days.
	PurgeDelayFreeDays *int `json:"purgeDelayFreeDays,omitempty"`
	PurgeDelayPaidDays *int `json:"purgeDelayPaidDays,omitempty"`
	// PacketLossRate enables the legacy shared-RNG loss sampler.
	PacketLossRate *float64 `json:"packetLossRate,omitempty"`
}

// RateLimit is the spec form of netsim.LimitConfig.
type RateLimit struct {
	// WindowHours is the budget window. Defaults to 1 when either budget
	// is set.
	WindowHours int `json:"windowHours,omitempty"`
	// PerSource caps queries per source address per window (0 = no cap).
	PerSource int `json:"perSource,omitempty"`
	// Capacity caps total queries per window across sources (0 = no cap).
	Capacity int `json:"capacity,omitempty"`
}

// Faults is the spec form of netsim.FaultConfig; window durations are
// expressed in hours. Zero windows keep the fabric defaults.
type Faults struct {
	Seed             int64   `json:"seed,omitempty"`
	LossRate         float64 `json:"lossRate,omitempty"`
	BurstRate        float64 `json:"burstRate,omitempty"`
	BurstWindowHours int     `json:"burstWindowHours,omitempty"`
	BurstLoss        float64 `json:"burstLoss,omitempty"`
	FlakyRate        float64 `json:"flakyRate,omitempty"`
	FlakyLoss        float64 `json:"flakyLoss,omitempty"`
	FlakyWindowHours int     `json:"flakyWindowHours,omitempty"`
	CorruptRate      float64 `json:"corruptRate,omitempty"`
}

// Wave is the spec form of world.ChurnWave: a day-ranged burst of
// scaled behaviour hazards. Zero multipliers mean "unchanged".
type Wave struct {
	StartDay   int     `json:"startDay"`
	Days       int     `json:"days"`
	JoinMult   float64 `json:"joinMult,omitempty"`
	LeaveMult  float64 `json:"leaveMult,omitempty"`
	PauseMult  float64 `json:"pauseMult,omitempty"`
	SwitchMult float64 `json:"switchMult,omitempty"`
}

// Attack is the spec form of experiment.AttackLoad: a reflection flood
// against the scanned nameservers during residual scan weeks.
type Attack struct {
	Bots           int `json:"bots"`
	RequestsPerBot int `json:"requestsPerBot"`
	Amplification  int `json:"amplification"`
	Resolvers      int `json:"resolvers"`
	// StartWeek is the first attacked scan week (1-based); 0 = all weeks.
	StartWeek int `json:"startWeek,omitempty"`
}

// Spec is a parsed, converted-to-v1, defaulted, and validated scenario.
type Spec struct {
	// Doc is the normalized v1 document.
	Doc V1
	// Canonical is Doc's canonical encoding: indented JSON in struct
	// declaration order with defaults applied. Two specs with equal
	// canonical bytes describe the same scenario, whatever version or
	// formatting they were written in.
	Canonical []byte
	// Hash is the SHA-256 hex digest of Canonical.
	Hash string
	// File is where the spec came from ("" for in-memory parses); error
	// messages and provenance reporting use it.
	File string
}

// Name returns the spec's metadata.name.
func (s *Spec) Name() string { return s.Doc.Metadata.Name }

// canonicalize encodes doc in canonical form and hashes it.
func canonicalize(doc V1) ([]byte, string) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// The document is a tree of plain values; this cannot fail.
		panic(fmt.Sprintf("scenario: canonical encode: %v", err))
	}
	b = append(b, '\n')
	sum := sha256.Sum256(b)
	return b, hex.EncodeToString(sum[:])
}

// Default horizons (the binaries' flag defaults, so an all-defaults
// dynamics spec reproduces a flag-driven default run exactly).
const (
	defaultSites         = 2000
	defaultSeed          = int64(1815)
	defaultDays          = 42
	defaultWeeks         = 6
	defaultWarmupDays    = 28
	defaultRetries       = 3
	defaultDynamicsBoost = 1.0
	defaultResidualBoost = 8.0
)

// normalize applies defaults in place. Runs before validate, so
// validation sees the resolved document.
func (doc *V1) normalize() {
	c := &doc.Campaign
	if c.Sites == 0 {
		c.Sites = defaultSites
	}
	if c.Seed == nil {
		seed := defaultSeed
		c.Seed = &seed
	}
	switch c.Kind {
	case CampaignDynamics:
		if c.Days == 0 {
			c.Days = defaultDays
		}
		if c.ChurnBoost == nil {
			boost := defaultDynamicsBoost
			c.ChurnBoost = &boost
		}
	case CampaignResidual:
		if c.Weeks == 0 {
			c.Weeks = defaultWeeks
		}
		if c.WarmupDays == nil {
			warmup := defaultWarmupDays
			c.WarmupDays = &warmup
		}
		if c.ChurnBoost == nil {
			boost := defaultResidualBoost
			c.ChurnBoost = &boost
		}
	}
	r := &doc.Resolver
	if r.Retries == 0 {
		r.Retries = defaultRetries
	}
	if r.Hedge == nil {
		hedge := true
		r.Hedge = &hedge
	}
	if doc.World != nil && doc.World.NSRateLimit != nil {
		rl := doc.World.NSRateLimit
		if rl.WindowHours == 0 && (rl.PerSource > 0 || rl.Capacity > 0) {
			rl.WindowHours = 1
		}
	}
}

// nameRE is the shape of a scenario name: kebab-case, like the file
// names under scenarios/.
var nameRE = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// validate checks the normalized document, anchoring each finding to a
// source line via anchor (see fieldLine).
func (doc *V1) validate(anchor func(section, key string) int, file string) error {
	fail := func(section, key, msg string, args ...any) error {
		return &Error{File: file, Line: anchor(section, key), Msg: fmt.Sprintf(msg, args...)}
	}
	if doc.Kind != KindScenario {
		return fail("", "kind", "kind must be %q (got %q)", KindScenario, doc.Kind)
	}
	if doc.Metadata.Name == "" {
		return fail("metadata", "name", "metadata.name is required")
	}
	if !nameRE.MatchString(doc.Metadata.Name) {
		return fail("metadata", "name", "metadata.name %q must be kebab-case ([a-z0-9-])", doc.Metadata.Name)
	}

	c := doc.Campaign
	switch c.Kind {
	case CampaignDynamics:
		if c.Weeks != 0 {
			return fail("campaign", "weeks", "campaign.weeks is a residual knob; a dynamics campaign runs days")
		}
		if c.WarmupDays != nil {
			return fail("campaign", "warmupDays", "campaign.warmupDays is a residual knob")
		}
		if c.IncapsulaStartWeek != 0 {
			return fail("campaign", "incapsulaStartWeek", "campaign.incapsulaStartWeek is a residual knob")
		}
		if doc.Attack != nil {
			return fail("", "attack", "attack requires a residual campaign (the flood rides the weekly scans)")
		}
		if c.Days < 0 {
			return fail("campaign", "days", "campaign.days must be positive (got %d)", c.Days)
		}
	case CampaignResidual:
		if c.Days != 0 {
			return fail("campaign", "days", "campaign.days is a dynamics knob; a residual campaign runs weeks")
		}
		if c.Weeks < 0 {
			return fail("campaign", "weeks", "campaign.weeks must be positive (got %d)", c.Weeks)
		}
		if *c.WarmupDays < 0 {
			return fail("campaign", "warmupDays", "campaign.warmupDays must not be negative (got %d)", *c.WarmupDays)
		}
		if c.IncapsulaStartWeek < 0 || c.IncapsulaStartWeek > c.Weeks {
			return fail("campaign", "incapsulaStartWeek", "campaign.incapsulaStartWeek %d outside [0, weeks=%d]", c.IncapsulaStartWeek, c.Weeks)
		}
	default:
		return fail("campaign", "kind", "campaign.kind must be %q or %q (got %q)", CampaignDynamics, CampaignResidual, c.Kind)
	}
	if c.Sites < 0 {
		return fail("campaign", "sites", "campaign.sites must be positive (got %d)", c.Sites)
	}
	if *c.ChurnBoost <= 0 {
		return fail("campaign", "churnBoost", "campaign.churnBoost must be positive (got %v)", *c.ChurnBoost)
	}
	if c.Workers < 0 {
		return fail("campaign", "workers", "campaign.workers must not be negative (got %d)", c.Workers)
	}
	if doc.Resolver.Retries < 1 {
		return fail("resolver", "retries", "resolver.retries must be at least 1 (got %d)", doc.Resolver.Retries)
	}

	if w := doc.World; w != nil {
		for key, rate := range map[string]*float64{
			"notifiedLeaveRate": w.NotifiedLeaveRate,
			"paidPlanRate":      w.PaidPlanRate,
			"decoyOnLeaveRate":  w.DecoyOnLeaveRate,
		} {
			if rate != nil && (*rate < 0 || *rate > 1) {
				return fail("world", key, "world.%s %v outside [0,1]", key, *rate)
			}
		}
		if w.PacketLossRate != nil && (*w.PacketLossRate < 0 || *w.PacketLossRate >= 1) {
			return fail("world", "packetLossRate", "world.packetLossRate %v outside [0,1)", *w.PacketLossRate)
		}
		for key, days := range map[string]*int{
			"purgeDelayFreeDays": w.PurgeDelayFreeDays,
			"purgeDelayPaidDays": w.PurgeDelayPaidDays,
		} {
			if days != nil && *days <= 0 {
				return fail("world", key, "world.%s must be positive (got %d)", key, *days)
			}
		}
		if rl := w.NSRateLimit; rl != nil {
			if rl.PerSource < 0 || rl.Capacity < 0 || rl.WindowHours < 0 {
				return fail("world", "nsRateLimit", "world.nsRateLimit budgets must not be negative (got %+v)", *rl)
			}
			if rl.PerSource == 0 && rl.Capacity == 0 {
				return fail("world", "nsRateLimit", "world.nsRateLimit needs perSource or capacity (an empty limiter is a no-op)")
			}
		}
	}

	if f := doc.Faults; f != nil {
		for key, rate := range map[string]float64{
			"lossRate":    f.LossRate,
			"burstRate":   f.BurstRate,
			"burstLoss":   f.BurstLoss,
			"flakyRate":   f.FlakyRate,
			"flakyLoss":   f.FlakyLoss,
			"corruptRate": f.CorruptRate,
		} {
			if rate < 0 || rate >= 1 {
				if rate != 0 {
					return fail("faults", key, "faults.%s %v outside [0,1)", key, rate)
				}
			}
		}
		if f.BurstWindowHours < 0 || f.FlakyWindowHours < 0 {
			return fail("faults", "burstWindowHours", "faults windows must not be negative")
		}
	}

	for i, wave := range doc.Waves {
		if wave.Days <= 0 {
			return fail("waves", "days", "waves[%d].days must be positive (got %d)", i, wave.Days)
		}
		if wave.StartDay < 0 {
			return fail("waves", "startDay", "waves[%d].startDay must not be negative (got %d)", i, wave.StartDay)
		}
		if wave.JoinMult < 0 || wave.LeaveMult < 0 || wave.PauseMult < 0 || wave.SwitchMult < 0 {
			return fail("waves", "days", "waves[%d] has a negative multiplier", i)
		}
		if wave.JoinMult == 0 && wave.LeaveMult == 0 && wave.PauseMult == 0 && wave.SwitchMult == 0 {
			return fail("waves", "days", "waves[%d] sets no multiplier (a wave of all zeroes is a no-op)", i)
		}
	}

	if a := doc.Attack; a != nil {
		if a.Bots <= 0 || a.RequestsPerBot <= 0 || a.Amplification <= 0 || a.Resolvers <= 0 {
			return fail("attack", "bots", "attack.bots, requestsPerBot, amplification, and resolvers must all be positive")
		}
		if a.StartWeek < 0 || a.StartWeek > doc.Campaign.Weeks {
			return fail("attack", "startWeek", "attack.startWeek %d outside [0, weeks=%d]", a.StartWeek, doc.Campaign.Weeks)
		}
	}
	return nil
}
