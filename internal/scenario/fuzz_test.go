package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioDecode throws arbitrary bytes at the spec parser. The
// contract under fuzz:
//
//  1. Parse never panics, whatever the input.
//  2. Anything Parse accepts, Compile lowers without panicking.
//  3. Accept -> canonicalize -> re-parse is a fixed point: the canonical
//     form re-parses to the same canonical bytes and hash. This is what
//     makes the hash a stable scenario identity.
func FuzzScenarioDecode(f *testing.F) {
	// Seed with the entire shipped scenario library...
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading scenario library: %v", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// ...the conversion corpus...
	alphaDir := filepath.Join("testdata", "convert")
	alphas, err := os.ReadDir(alphaDir)
	if err != nil {
		f.Fatalf("reading conversion corpus: %v", err)
	}
	for _, e := range alphas {
		data, err := os.ReadFile(filepath.Join(alphaDir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// ...and hand-broken variants covering each decoder path.
	for _, s := range []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"apiVersion":"rrdps/v1"`,
		`{"apiVersion":"rrdps/v9","kind":"Scenario"}`,
		`{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics","sites":"lots"}}`,
		`{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"extra":1}`,
		`{"apiVersion":"rrdps/v1alpha1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"dynamics"},"churnWaves":[{"day":-1,"length":0,"mult":-2}]}`,
		`{"apiVersion":"rrdps/v1","kind":"Scenario","metadata":{"name":"x"},"campaign":{"kind":"residual","weeks":1},"attack":{"bots":1,"requestsPerBot":1,"amplification":1,"resolvers":1,"startWeek":99}}`,
		minimalDynamics + "{}",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse("fuzz.json", data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		comp := Compile(spec)
		if comp.Info == nil || comp.Info.Hash != spec.Hash {
			t.Fatal("compiled provenance does not carry the spec hash")
		}
		again, err := Parse("canonical.json", spec.Canonical)
		if err != nil {
			t.Fatalf("canonical form of an accepted spec failed to re-parse: %v\ncanonical:\n%s", err, spec.Canonical)
		}
		if !bytes.Equal(again.Canonical, spec.Canonical) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", spec.Canonical, again.Canonical)
		}
		if again.Hash != spec.Hash {
			t.Fatalf("hash not stable across canonical round trip: %s vs %s", spec.Hash, again.Hash)
		}
	})
}
