package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/core/report"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

// TestCompilePaperBaselineMatchesFlagDefaults pins the acceptance
// criterion at the config level: compiling scenarios/paper-baseline.json
// must yield exactly the configs a default flag-driven dpsmeasure run
// constructs — world.PaperConfig(2000) at seed 1815 with a x1 boost, the
// default retry policy, and the default 42-day horizon.
func TestCompilePaperBaselineMatchesFlagDefaults(t *testing.T) {
	spec, err := Load(filepath.Join("..", "..", "scenarios", "paper-baseline.json"))
	if err != nil {
		t.Fatalf("loading paper-baseline: %v", err)
	}
	comp := Compile(spec)

	// The flag path: cfg := world.PaperConfig(*sites); cfg.Seed = *seed;
	// hazards *= *boost (boost 1 leaves them bit-identical).
	want := world.PaperConfig(2000)
	want.Seed = 1815
	want.JoinRate *= 1
	want.LeaveRate *= 1
	want.PauseRate *= 1
	want.SwitchRate *= 1

	if !reflect.DeepEqual(comp.World, want) {
		t.Errorf("compiled world config differs from flag-driven default:\ngot  %+v\nwant %+v", comp.World, want)
	}
	wantPolicy := dnsresolver.DefaultPolicy()
	wantPolicy.MaxAttempts = 3
	wantPolicy.Hedge = true
	if comp.Policy != wantPolicy {
		t.Errorf("compiled policy %+v, want %+v", comp.Policy, wantPolicy)
	}
	if comp.Kind != CampaignDynamics || comp.Days != 42 {
		t.Errorf("kind/days = %q/%d, want dynamics/42", comp.Kind, comp.Days)
	}
	if comp.Workers != 0 || comp.SnapWindow != 0 {
		t.Errorf("paper-baseline must leave workers/snapWindow to the binary (got %d/%d)", comp.Workers, comp.SnapWindow)
	}
	if comp.Attack != nil {
		t.Error("paper-baseline must not configure an attack")
	}
	if comp.Info == nil || comp.Info.Name != "paper-baseline" || comp.Info.Hash != spec.Hash {
		t.Errorf("provenance info %+v not wired", comp.Info)
	}
}

// TestScenarioRunByteIdenticalToFlagRun is the report-level half of the
// acceptance criterion, scaled down so it can run under -race: a
// campaign configured from a spec document with default knobs renders
// the exact same report, byte for byte, as one configured the way
// cmd/dpsmeasure's flag path does it.
func TestScenarioRunByteIdenticalToFlagRun(t *testing.T) {
	const sites, days, seed = 150, 8, 1815

	render := func(cfg world.Config, policy dnsresolver.Policy, scn *experiment.ScenarioInfo) string {
		res := experiment.Dynamics{
			World:    world.New(cfg),
			Days:     days,
			Workers:  4,
			Policy:   &policy,
			Scenario: scn,
		}.Run()
		var b strings.Builder
		b.WriteString(res.String())
		b.WriteString(report.Figure2(res))
		b.WriteString(report.Figure3(res))
		b.WriteString(report.Figure5(res))
		b.WriteString(report.Figure6(res))
		b.WriteString(report.TableV(res))
		return b.String()
	}

	// Flag path, exactly as cmd/dpsmeasure builds it.
	flagCfg := world.PaperConfig(sites)
	flagCfg.Seed = seed
	boost := 1.0
	flagCfg.JoinRate *= boost
	flagCfg.LeaveRate *= boost
	flagCfg.PauseRate *= boost
	flagCfg.SwitchRate *= boost
	flagReport := render(flagCfg, dnsresolver.DefaultPolicy(), nil)

	// Scenario path: the same campaign as a spec document.
	spec := mustParse(t, `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "baseline-mini" },
  "campaign": { "kind": "dynamics", "sites": 150, "seed": 1815, "days": 8, "churnBoost": 1 }
}`)
	comp := Compile(spec)
	scenarioReport := render(comp.World, comp.Policy, comp.Info)

	if scenarioReport != flagReport {
		t.Errorf("scenario-driven report differs from flag-driven report:\n--- flags\n%s\n--- scenario\n%s", flagReport, scenarioReport)
	}
}

// TestCompileBoostSemanticsPerKind pins the asymmetry the binaries
// implement: dynamics boosts all four hazards, residual leaves PauseRate
// alone.
func TestCompileBoostSemanticsPerKind(t *testing.T) {
	base := world.PaperConfig(2000)
	dyn := Compile(mustParse(t, `{
  "apiVersion": "rrdps/v1", "kind": "Scenario",
  "metadata": { "name": "dyn" },
  "campaign": { "kind": "dynamics", "churnBoost": 4 }
}`))
	if dyn.World.JoinRate != base.JoinRate*4 || dyn.World.LeaveRate != base.LeaveRate*4 ||
		dyn.World.PauseRate != base.PauseRate*4 || dyn.World.SwitchRate != base.SwitchRate*4 {
		t.Errorf("dynamics boost must scale all four hazards: %+v", dyn.World)
	}

	res := Compile(mustParse(t, `{
  "apiVersion": "rrdps/v1", "kind": "Scenario",
  "metadata": { "name": "res" },
  "campaign": { "kind": "residual", "churnBoost": 4 }
}`))
	if res.World.JoinRate != base.JoinRate*4 || res.World.LeaveRate != base.LeaveRate*4 ||
		res.World.SwitchRate != base.SwitchRate*4 {
		t.Errorf("residual boost must scale join/leave/switch: %+v", res.World)
	}
	if res.World.PauseRate != base.PauseRate {
		t.Errorf("residual boost must NOT scale PauseRate: got %v, want %v", res.World.PauseRate, base.PauseRate)
	}
}

// TestCompileOverrides exercises every spec section's lowering.
func TestCompileOverrides(t *testing.T) {
	comp := Compile(mustParse(t, `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "kitchen-sink" },
  "campaign": {
    "kind": "residual",
    "sites": 800, "seed": 99, "weeks": 3, "warmupDays": 7,
    "incapsulaStartWeek": 2, "churnBoost": 2, "workers": 1, "snapWindow": 5
  },
  "resolver": { "retries": 5, "hedge": false },
  "world": {
    "nsRateLimit": { "windowHours": 24, "perSource": 100, "capacity": 5000 },
    "notifiedLeaveRate": 0.9,
    "paidPlanRate": 0.2,
    "decoyOnLeaveRate": 0.1,
    "purgeDelayFreeDays": 14,
    "purgeDelayPaidDays": 35
  },
  "faults": { "lossRate": 0.01, "burstRate": 0.002, "burstWindowHours": 3, "flakyRate": 0.005 },
  "waves": [ { "startDay": 2, "days": 4, "leaveMult": 5, "joinMult": 0.5 } ],
  "attack": { "bots": 10, "requestsPerBot": 20, "amplification": 30, "resolvers": 4, "startWeek": 2 }
}`))

	w := comp.World
	if w.NumSites != 800 || w.Seed != 99 {
		t.Errorf("sites/seed not lowered: %d/%d", w.NumSites, w.Seed)
	}
	if comp.Weeks != 3 || comp.WarmupDays != 7 || comp.IncapsulaStartWeek != 2 {
		t.Errorf("residual horizon not lowered: %+v", comp)
	}
	if comp.Workers != 1 || comp.SnapWindow != 5 {
		t.Errorf("runtime knobs not lowered: %d/%d", comp.Workers, comp.SnapWindow)
	}
	if comp.Policy.MaxAttempts != 5 || comp.Policy.Hedge {
		t.Errorf("policy not lowered: %+v", comp.Policy)
	}
	wantLimit := netsim.LimitConfig{Window: 24 * time.Hour, PerSource: 100, Capacity: 5000}
	if w.NSRateLimit != wantLimit {
		t.Errorf("rate limit %+v, want %+v", w.NSRateLimit, wantLimit)
	}
	if w.NotifiedLeaveRate != 0.9 || w.PaidPlanRate != 0.2 || w.DecoyOnLeaveRate != 0.1 {
		t.Errorf("world rates not lowered: %+v", w)
	}
	if w.PurgeDelayFree != 14*24*time.Hour || w.PurgeDelayPaid != 35*24*time.Hour {
		t.Errorf("purge delays not lowered: %v/%v", w.PurgeDelayFree, w.PurgeDelayPaid)
	}
	if w.Faults.LossRate != 0.01 || w.Faults.BurstRate != 0.002 ||
		w.Faults.BurstWindow != 3*time.Hour || w.Faults.FlakyRate != 0.005 {
		t.Errorf("faults not lowered: %+v", w.Faults)
	}
	wantWave := world.ChurnWave{StartDay: 2, Days: 4, LeaveMult: 5, JoinMult: 0.5}
	if len(w.Waves) != 1 || w.Waves[0] != wantWave {
		t.Errorf("waves not lowered: %+v", w.Waves)
	}
	wantAttack := &experiment.AttackLoad{Bots: 10, RequestsPerBot: 20, Amplification: 30, Resolvers: 4, StartWeek: 2}
	if comp.Attack == nil || *comp.Attack != *wantAttack {
		t.Errorf("attack not lowered: %+v", comp.Attack)
	}
	if comp.Info.Canonical == nil || comp.Info.Hash != comp.Spec.Hash {
		t.Errorf("provenance not wired: %+v", comp.Info)
	}
}
