package scenario

import (
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

// Compiled is a scenario lowered into the runtime configs the binaries
// otherwise assemble from flags. Compilation follows the binaries'
// construction exactly — world.PaperConfig overridden field by field,
// churn boost applied with each campaign kind's multiplication set — so
// an all-defaults spec reproduces a flag-driven default run
// byte-for-byte.
type Compiled struct {
	// Spec is the parsed source.
	Spec *Spec
	// Kind is CampaignDynamics or CampaignResidual.
	Kind string
	// World is the fully resolved world configuration.
	World world.Config
	// Policy is the campaign clients' retry policy.
	Policy dnsresolver.Policy
	// Days is the dynamics horizon (zero for residual).
	Days int
	// Weeks / WarmupDays / IncapsulaStartWeek are the residual horizon
	// (zero for dynamics).
	Weeks              int
	WarmupDays         int
	IncapsulaStartWeek int
	// Workers / SnapWindow are spec-pinned runtime knobs; zero means the
	// spec left them to the binary's flag defaults.
	Workers    int
	SnapWindow int
	// Attack is the residual reflection flood, nil when unconfigured.
	Attack *experiment.AttackLoad
	// Info is the provenance record campaigns thread into checkpoints
	// and reports.
	Info *experiment.ScenarioInfo
}

// Name returns the scenario name.
func (c *Compiled) Name() string { return c.Spec.Name() }

// Hash returns the canonical-form SHA-256 hex digest.
func (c *Compiled) Hash() string { return c.Spec.Hash }

// Compile lowers a parsed spec. It cannot fail: Parse already validated
// everything Compile consumes.
func Compile(s *Spec) *Compiled {
	doc := s.Doc
	c := doc.Campaign

	cfg := world.PaperConfig(c.Sites)
	cfg.Seed = *c.Seed

	// Churn boost replicates the binaries exactly: dpsmeasure multiplies
	// all four hazards, rrscan leaves PauseRate alone (pauses do not
	// create residual records, so the §V campaign only accelerates the
	// hazards that do).
	boost := *c.ChurnBoost
	switch c.Kind {
	case CampaignDynamics:
		cfg.JoinRate *= boost
		cfg.LeaveRate *= boost
		cfg.PauseRate *= boost
		cfg.SwitchRate *= boost
	case CampaignResidual:
		cfg.LeaveRate *= boost
		cfg.SwitchRate *= boost
		cfg.JoinRate *= boost
	}

	if w := doc.World; w != nil {
		if w.NotifiedLeaveRate != nil {
			cfg.NotifiedLeaveRate = *w.NotifiedLeaveRate
		}
		if w.PaidPlanRate != nil {
			cfg.PaidPlanRate = *w.PaidPlanRate
		}
		if w.DecoyOnLeaveRate != nil {
			cfg.DecoyOnLeaveRate = *w.DecoyOnLeaveRate
		}
		if w.PurgeDelayFreeDays != nil {
			cfg.PurgeDelayFree = time.Duration(*w.PurgeDelayFreeDays) * 24 * time.Hour
		}
		if w.PurgeDelayPaidDays != nil {
			cfg.PurgeDelayPaid = time.Duration(*w.PurgeDelayPaidDays) * 24 * time.Hour
		}
		if w.PacketLossRate != nil {
			cfg.PacketLossRate = *w.PacketLossRate
		}
		if rl := w.NSRateLimit; rl != nil {
			cfg.NSRateLimit = netsim.LimitConfig{
				Window:    time.Duration(rl.WindowHours) * time.Hour,
				PerSource: rl.PerSource,
				Capacity:  rl.Capacity,
			}
		}
	}

	if f := doc.Faults; f != nil {
		cfg.Faults = netsim.FaultConfig{
			Seed:        f.Seed,
			LossRate:    f.LossRate,
			BurstRate:   f.BurstRate,
			BurstWindow: time.Duration(f.BurstWindowHours) * time.Hour,
			BurstLoss:   f.BurstLoss,
			FlakyRate:   f.FlakyRate,
			FlakyLoss:   f.FlakyLoss,
			FlakyWindow: time.Duration(f.FlakyWindowHours) * time.Hour,
			CorruptRate: f.CorruptRate,
		}
	}

	for _, w := range doc.Waves {
		cfg.Waves = append(cfg.Waves, world.ChurnWave{
			StartDay:   w.StartDay,
			Days:       w.Days,
			JoinMult:   w.JoinMult,
			LeaveMult:  w.LeaveMult,
			PauseMult:  w.PauseMult,
			SwitchMult: w.SwitchMult,
		})
	}

	policy := dnsresolver.DefaultPolicy()
	policy.MaxAttempts = doc.Resolver.Retries
	policy.Hedge = *doc.Resolver.Hedge

	out := &Compiled{
		Spec:       s,
		Kind:       c.Kind,
		World:      cfg,
		Policy:     policy,
		Workers:    c.Workers,
		SnapWindow: c.SnapWindow,
		Info: &experiment.ScenarioInfo{
			Name:      doc.Metadata.Name,
			Hash:      s.Hash,
			Canonical: s.Canonical,
		},
	}
	switch c.Kind {
	case CampaignDynamics:
		out.Days = c.Days
	case CampaignResidual:
		out.Weeks = c.Weeks
		out.WarmupDays = *c.WarmupDays
		out.IncapsulaStartWeek = c.IncapsulaStartWeek
	}
	if a := doc.Attack; a != nil {
		out.Attack = &experiment.AttackLoad{
			Bots:           a.Bots,
			RequestsPerBot: a.RequestsPerBot,
			Amplification:  a.Amplification,
			Resolvers:      a.Resolvers,
			StartWeek:      a.StartWeek,
		}
	}
	return out
}
