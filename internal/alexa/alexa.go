// Package alexa generates a ranked top-N website list, standing in for the
// Alexa top-1M list the paper samples (§IV-A).
//
// The generator is deterministic for a given rand source: the same seed
// always yields the same ranked population, which keeps six-week
// measurement experiments reproducible.
package alexa

import (
	"fmt"
	"math/rand"

	"rrdps/internal/dnsmsg"
)

// Domain is one entry of the ranked list.
type Domain struct {
	// Rank is 1-based; lower is more popular.
	Rank int
	// Apex is the registrable domain, e.g. "zelvano.com".
	Apex dnsmsg.Name
}

// WWW returns the domain's www subdomain, the portal hostname the paper
// measures for every site.
func (d Domain) WWW() dnsmsg.Name { return d.Apex.Child("www") }

var (
	_syllables = []string{
		"ba", "be", "bi", "bo", "bu", "ca", "ce", "co", "da", "de",
		"di", "do", "fa", "fe", "fi", "ga", "go", "ha", "he", "ja",
		"ka", "ki", "la", "le", "li", "lo", "ma", "me", "mi", "mo",
		"na", "ne", "no", "pa", "pe", "po", "ra", "re", "ri", "ro",
		"sa", "se", "si", "so", "ta", "te", "ti", "to", "va", "ve",
		"vi", "vo", "wa", "we", "za", "ze", "zi", "zo",
	}
	_suffixes = []string{"", "", "", "", "hub", "ly", "ify", "zone", "lab", "net", "press", "shop", "media"}
	// _tlds and their sampling weights; .com dominates as in the real list.
	_tlds = []struct {
		tld    string
		weight int
	}{
		{"com", 60}, {"net", 10}, {"org", 10}, {"io", 6}, {"co", 5}, {"info", 5}, {"biz", 4},
	}
	_tldTotal = func() int {
		t := 0
		for _, e := range _tlds {
			t += e.weight
		}
		return t
	}()
)

// TopList generates a ranked list of n unique domains. It panics if n < 0.
func TopList(n int, rng *rand.Rand) []Domain {
	if n < 0 {
		panic(fmt.Sprintf("alexa: TopList(%d)", n))
	}
	if rng == nil {
		panic("alexa: TopList requires rng")
	}
	out := make([]Domain, 0, n)
	seen := make(map[dnsmsg.Name]bool, n)
	for rank := 1; len(out) < n; {
		apex := randomApex(rng)
		if seen[apex] {
			continue
		}
		seen[apex] = true
		out = append(out, Domain{Rank: rank, Apex: apex})
		rank++
	}
	return out
}

func randomApex(rng *rand.Rand) dnsmsg.Name {
	nSyll := 2 + rng.Intn(3)
	label := ""
	for i := 0; i < nSyll; i++ {
		label += _syllables[rng.Intn(len(_syllables))]
	}
	label += _suffixes[rng.Intn(len(_suffixes))]
	// A sprinkle of numbered variants widens the namespace.
	if rng.Intn(10) == 0 {
		label = fmt.Sprintf("%s%d", label, rng.Intn(100))
	}
	tld := pickTLD(rng)
	return dnsmsg.MustParseName(label + "." + tld)
}

func pickTLD(rng *rand.Rand) string {
	v := rng.Intn(_tldTotal)
	for _, e := range _tlds {
		if v < e.weight {
			return e.tld
		}
		v -= e.weight
	}
	return _tlds[0].tld
}

// TLDs returns the set of top-level domains the generator can produce. The
// world builder uses it to provision TLD zones.
func TLDs() []string {
	out := make([]string, len(_tlds))
	for i, e := range _tlds {
		out[i] = e.tld
	}
	return out
}

// RankBucket classifies a rank into the coarse popularity buckets the
// paper reports on: "top10k" or "rest".
func RankBucket(rank int) string {
	if rank <= 10_000 {
		return "top10k"
	}
	return "rest"
}
