package alexa

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTopListUniqueAndRanked(t *testing.T) {
	list := TopList(5000, rand.New(rand.NewSource(1)))
	if len(list) != 5000 {
		t.Fatalf("len = %d", len(list))
	}
	seen := make(map[string]bool, len(list))
	for i, d := range list {
		if d.Rank != i+1 {
			t.Fatalf("rank at %d = %d", i, d.Rank)
		}
		if seen[string(d.Apex)] {
			t.Fatalf("duplicate apex %s", d.Apex)
		}
		seen[string(d.Apex)] = true
	}
}

func TestTopListDeterministic(t *testing.T) {
	a := TopList(500, rand.New(rand.NewSource(42)))
	b := TopList(500, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := TopList(500, rand.New(rand.NewSource(43)))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical lists")
	}
}

func TestTopListValidTLDs(t *testing.T) {
	valid := make(map[string]bool)
	for _, tld := range TLDs() {
		valid[tld] = true
	}
	for _, d := range TopList(1000, rand.New(rand.NewSource(7))) {
		labels := d.Apex.Labels()
		if len(labels) != 2 {
			t.Fatalf("apex %s has %d labels", d.Apex, len(labels))
		}
		if !valid[labels[1]] {
			t.Fatalf("apex %s has unknown TLD", d.Apex)
		}
	}
}

func TestWWW(t *testing.T) {
	d := Domain{Rank: 1, Apex: "zelvano.com"}
	if got := d.WWW(); got != "www.zelvano.com" {
		t.Fatalf("WWW = %s", got)
	}
}

func TestComDominates(t *testing.T) {
	list := TopList(5000, rand.New(rand.NewSource(9)))
	com := 0
	for _, d := range list {
		if strings.HasSuffix(string(d.Apex), ".com") {
			com++
		}
	}
	if ratio := float64(com) / float64(len(list)); ratio < 0.5 || ratio > 0.7 {
		t.Fatalf(".com ratio = %v, want ~0.6", ratio)
	}
}

func TestRankBucket(t *testing.T) {
	if RankBucket(1) != "top10k" || RankBucket(10_000) != "top10k" {
		t.Fatal("top10k misclassified")
	}
	if RankBucket(10_001) != "rest" {
		t.Fatal("rest misclassified")
	}
}

func TestTopListZero(t *testing.T) {
	if got := TopList(0, rand.New(rand.NewSource(1))); len(got) != 0 {
		t.Fatalf("TopList(0) = %v", got)
	}
}

func TestTopListNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TopList(-1) did not panic")
		}
	}()
	TopList(-1, rand.New(rand.NewSource(1)))
}
