package httpsim

import (
	"fmt"
	"net/netip"
	"sync"

	"rrdps/internal/netsim"
)

// RequestContext tells a dynamic page hook about the incoming request.
type RequestContext struct {
	From netip.Addr
	Host string
	Path string
}

// OriginConfig parametrizes an origin web server.
type OriginConfig struct {
	// Page is the landing page served at "/".
	Page Page
	// Hosts restricts which Host headers the origin answers; empty means
	// any. Requests for other hosts get 404, mirroring virtual hosting.
	Hosts []string
	// AllowedClients restricts which source addresses may fetch content;
	// empty means anyone. Other clients receive 403. The paper notes some
	// origins are configured to answer only their DPS provider's edges,
	// which hides them from direct HTML verification (§IV-C.3).
	AllowedClients []netip.Addr
	// DynamicMeta, when set, is merged into the page's meta tags on every
	// request; use it to model tags that vary per request (time, location)
	// and defeat naive HTML comparison.
	DynamicMeta func(ctx RequestContext) map[string]string
	// Files maps extra paths to raw bodies served alongside the landing
	// page — configuration remnants, backup dumps, .git leftovers. The
	// "sensitive files" origin-exposure vector (paper Table I) reads
	// these.
	Files map[string]string
	// Pingback, when non-nil, enables an XML-RPC-pingback-style endpoint:
	// a GET /pingback with an X-Callback header makes the origin open an
	// outbound connection to that address, revealing its own source IP —
	// the "outbound connection" vector of Table I.
	Pingback *Client
}

// Origin is an origin web server attached to the fabric. It is safe for
// concurrent use; its page may be swapped at runtime.
type Origin struct {
	mu      sync.RWMutex
	cfg     OriginConfig
	allowed map[netip.Addr]bool
	hosts   map[string]bool
	hits    uint64
}

// NewOrigin creates an origin server.
func NewOrigin(cfg OriginConfig) *Origin {
	o := &Origin{}
	o.apply(cfg)
	return o
}

var _ netsim.Handler = (*Origin)(nil)

func (o *Origin) apply(cfg OriginConfig) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg = cfg
	o.allowed = make(map[netip.Addr]bool, len(cfg.AllowedClients))
	for _, a := range cfg.AllowedClients {
		o.allowed[a] = true
	}
	o.hosts = make(map[string]bool, len(cfg.Hosts))
	for _, h := range cfg.Hosts {
		o.hosts[h] = true
	}
}

// SetPage swaps the landing page (site redesign, origin reuse).
func (o *Origin) SetPage(p Page) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Page = p
}

// SetFiles replaces the extra served paths.
func (o *Origin) SetFiles(files map[string]string) {
	copied := make(map[string]string, len(files))
	for k, v := range files {
		copied[k] = v
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Files = copied
}

// SetPingback installs (or clears, with nil) the outbound pingback client.
func (o *Origin) SetPingback(client *Client) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.Pingback = client
}

// SetDynamicMeta installs (or clears) a per-request meta hook.
func (o *Origin) SetDynamicMeta(fn func(ctx RequestContext) map[string]string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cfg.DynamicMeta = fn
}

// SetAllowedClients replaces the client ACL.
func (o *Origin) SetAllowedClients(clients []netip.Addr) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.allowed = make(map[netip.Addr]bool, len(clients))
	for _, a := range clients {
		o.allowed[a] = true
	}
}

// Page returns the current landing page.
func (o *Origin) Page() Page {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.cfg.Page
}

// Hits returns how many requests the origin has served (any status).
func (o *Origin) Hits() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.hits
}

// ServeNet implements netsim.Handler.
func (o *Origin) ServeNet(req netsim.Request) ([]byte, error) {
	httpReq, err := DecodeRequest(req.Payload)
	if err != nil {
		return EncodeResponse(Response{StatusCode: 400, Status: "Bad Request"}), nil
	}
	resp := o.respond(req.From, httpReq)
	return EncodeResponse(resp), nil
}

func (o *Origin) respond(from netip.Addr, req Request) Response {
	o.mu.Lock()
	o.hits++
	cfg := o.cfg
	allowedSet := o.allowed
	hostSet := o.hosts
	o.mu.Unlock()

	if len(allowedSet) > 0 && !allowedSet[from] {
		return Response{StatusCode: 403, Body: "forbidden"}
	}
	if len(hostSet) > 0 && !hostSet[req.Host] {
		return Response{StatusCode: 404, Body: "no such site"}
	}
	if req.Method != "GET" {
		return Response{StatusCode: 404, Body: "unsupported"}
	}
	if req.Path == "/pingback" && cfg.Pingback != nil {
		if cb := req.Headers["X-Callback"]; cb != "" {
			if addr, err := netip.ParseAddr(cb); err == nil {
				// Outbound fetch from the origin's own address: the
				// callback target learns it (Table I, outbound vector).
				_, _ = cfg.Pingback.Get(addr, req.Host, "/")
				return Response{StatusCode: 200, Body: "pingback sent"}
			}
		}
		return Response{StatusCode: 400, Status: "Bad Request", Body: "missing callback"}
	}
	if body, ok := cfg.Files[req.Path]; ok {
		return Response{
			StatusCode: 200,
			Headers:    map[string]string{"Content-Type": "text/plain"},
			Body:       body,
		}
	}
	if req.Path != "/" && req.Path != "/index.html" {
		return Response{StatusCode: 404, Body: "not found"}
	}

	page := cfg.Page
	if cfg.DynamicMeta != nil {
		merged := make(map[string]string, len(page.Meta)+2)
		for k, v := range page.Meta {
			merged[k] = v
		}
		for k, v := range cfg.DynamicMeta(RequestContext{From: from, Host: req.Host, Path: req.Path}) {
			merged[k] = v
		}
		page.Meta = merged
	}
	return Response{
		StatusCode: 200,
		Headers:    map[string]string{"Content-Type": "text/html"},
		Body:       page.Render(),
	}
}

// Client fetches pages over the fabric.
type Client struct {
	net    *netsim.Network
	addr   netip.Addr
	region netsim.Region
}

// NewClient creates an HTTP client attached at (addr, region).
func NewClient(net *netsim.Network, addr netip.Addr, region netsim.Region) *Client {
	if net == nil {
		panic("httpsim: NewClient requires a network")
	}
	return &Client{net: net, addr: addr, region: region}
}

// Addr returns the client's source address.
func (c *Client) Addr() netip.Addr { return c.addr }

// Get issues GET path against the server at addr with the given Host
// header and returns the decoded response.
func (c *Client) Get(server netip.Addr, host, path string) (Response, error) {
	return c.Do(server, Request{Method: "GET", Path: path, Host: host, Headers: map[string]string{}})
}

// Do sends an arbitrary request to the server at addr.
func (c *Client) Do(server netip.Addr, req Request) (Response, error) {
	ep := netsim.Endpoint{Addr: server, Port: netsim.PortHTTP}
	raw, err := c.net.Send(c.addr, c.region, ep, EncodeRequest(req))
	if err != nil {
		return Response{}, fmt.Errorf("%s http://%s%s (host %s): %w", req.Method, server, req.Path, req.Host, err)
	}
	resp, err := DecodeResponse(raw)
	if err != nil {
		return Response{}, fmt.Errorf("%s http://%s%s (host %s): %w", req.Method, server, req.Path, req.Host, err)
	}
	return resp, nil
}
