package httpsim

import (
	"net/netip"
	"testing"

	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

func tlsFixture(t *testing.T) (*netsim.Network, netip.Addr) {
	t.Helper()
	net := netsim.New(netsim.Config{Clock: simtime.NewSimulated()})
	return net, netip.MustParseAddr("198.51.100.99")
}

func TestCertProbe(t *testing.T) {
	net, prober := tlsFixture(t)
	server := NewCertServer("shop.com", "WWW.shop.com")
	addr := netip.MustParseAddr("10.0.0.7")
	net.Register(netsim.Endpoint{Addr: addr, Port: PortHTTPS}, netsim.RegionVirginia, server)

	subjects, err := ProbeCert(net, prober, netsim.RegionOregon, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(subjects) != 2 || subjects[0] != "shop.com" || subjects[1] != "www.shop.com" {
		t.Fatalf("subjects = %v", subjects)
	}
}

func TestCertAddRemoveSubject(t *testing.T) {
	net, prober := tlsFixture(t)
	server := NewCertServer("a.com")
	addr := netip.MustParseAddr("10.0.0.8")
	net.Register(netsim.Endpoint{Addr: addr, Port: PortHTTPS}, netsim.RegionVirginia, server)

	server.AddSubject("b.com")
	subjects, err := ProbeCert(net, prober, netsim.RegionOregon, addr)
	if err != nil || len(subjects) != 2 {
		t.Fatalf("subjects = %v, err = %v", subjects, err)
	}
	server.RemoveSubject("a.com")
	subjects, err = ProbeCert(net, prober, netsim.RegionOregon, addr)
	if err != nil || len(subjects) != 1 || subjects[0] != "b.com" {
		t.Fatalf("subjects = %v, err = %v", subjects, err)
	}
}

func TestCertEmptyServer(t *testing.T) {
	net, prober := tlsFixture(t)
	addr := netip.MustParseAddr("10.0.0.9")
	net.Register(netsim.Endpoint{Addr: addr, Port: PortHTTPS}, netsim.RegionVirginia, NewCertServer())
	subjects, err := ProbeCert(net, prober, netsim.RegionOregon, addr)
	if err != nil || subjects != nil {
		t.Fatalf("subjects = %v, err = %v", subjects, err)
	}
}

func TestCertProbeNoServer(t *testing.T) {
	net, prober := tlsFixture(t)
	if _, err := ProbeCert(net, prober, netsim.RegionOregon, netip.MustParseAddr("10.9.9.9")); err == nil {
		t.Fatal("probe of empty address succeeded")
	}
}

func TestCertServerIgnoresNonHello(t *testing.T) {
	net, prober := tlsFixture(t)
	addr := netip.MustParseAddr("10.0.0.10")
	net.Register(netsim.Endpoint{Addr: addr, Port: PortHTTPS}, netsim.RegionVirginia, NewCertServer("x.com"))
	_, err := net.Send(prober, netsim.RegionOregon, netsim.Endpoint{Addr: addr, Port: PortHTTPS}, []byte("GET / HTTP/1.1"))
	if err == nil {
		t.Fatal("non-hello payload got an answer")
	}
}

func TestPingbackEndpoint(t *testing.T) {
	net, _ := tlsFixture(t)
	originAddr := netip.MustParseAddr("10.0.0.20")
	listenerAddr := netip.MustParseAddr("10.0.0.30")

	var seen []netip.Addr
	listener := netsim.HandlerFunc(func(req netsim.Request) ([]byte, error) {
		seen = append(seen, req.From)
		return EncodeResponse(Response{StatusCode: 200}), nil
	})
	net.Register(netsim.Endpoint{Addr: listenerAddr, Port: netsim.PortHTTP}, netsim.RegionLondon, listener)

	origin := NewOrigin(OriginConfig{
		Page:     Page{Title: "P"},
		Pingback: NewClient(net, originAddr, netsim.RegionVirginia),
	})
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, origin)

	client := NewClient(net, netip.MustParseAddr("198.51.100.5"), netsim.RegionOregon)
	resp, err := client.Do(originAddr, Request{
		Method:  "GET",
		Path:    "/pingback",
		Host:    "www.p.com",
		Headers: map[string]string{"X-Callback": listenerAddr.String()},
	})
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("pingback request: %v, %d", err, resp.StatusCode)
	}
	if len(seen) != 1 || seen[0] != originAddr {
		t.Fatalf("listener saw %v, want origin %v", seen, originAddr)
	}
}

func TestPingbackRequiresCallback(t *testing.T) {
	net, _ := tlsFixture(t)
	originAddr := netip.MustParseAddr("10.0.0.21")
	origin := NewOrigin(OriginConfig{
		Page:     Page{Title: "P"},
		Pingback: NewClient(net, originAddr, netsim.RegionVirginia),
	})
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, origin)
	client := NewClient(net, netip.MustParseAddr("198.51.100.5"), netsim.RegionOregon)
	resp, err := client.Do(originAddr, Request{Method: "GET", Path: "/pingback", Host: "www.p.com"})
	if err != nil || resp.StatusCode != 400 {
		t.Fatalf("missing callback: %v, %d", err, resp.StatusCode)
	}
}

func TestPingbackDisabledIs404(t *testing.T) {
	net, _ := tlsFixture(t)
	originAddr := netip.MustParseAddr("10.0.0.22")
	origin := NewOrigin(OriginConfig{Page: Page{Title: "P"}})
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, origin)
	client := NewClient(net, netip.MustParseAddr("198.51.100.5"), netsim.RegionOregon)
	resp, err := client.Do(originAddr, Request{
		Method: "GET", Path: "/pingback", Host: "www.p.com",
		Headers: map[string]string{"X-Callback": "10.0.0.30"},
	})
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("disabled pingback: %v, %d", err, resp.StatusCode)
	}
}

func TestServedFiles(t *testing.T) {
	net, _ := tlsFixture(t)
	originAddr := netip.MustParseAddr("10.0.0.23")
	origin := NewOrigin(OriginConfig{
		Page:  Page{Title: "P"},
		Files: map[string]string{"/backup.cfg": "db_host=10.1.2.3"},
	})
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, origin)
	client := NewClient(net, netip.MustParseAddr("198.51.100.5"), netsim.RegionOregon)
	resp, err := client.Get(originAddr, "www.p.com", "/backup.cfg")
	if err != nil || resp.StatusCode != 200 || resp.Body != "db_host=10.1.2.3" {
		t.Fatalf("file fetch: %v, %d, %q", err, resp.StatusCode, resp.Body)
	}
	// SetFiles replaces the set.
	origin.SetFiles(nil)
	resp, _ = client.Get(originAddr, "www.p.com", "/backup.cfg")
	if resp.StatusCode != 404 {
		t.Fatalf("after SetFiles(nil): %d", resp.StatusCode)
	}
}
