package httpsim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"rrdps/internal/netsim"
)

// The simulated TLS layer is a single round trip: a client hello probe, a
// response listing the certificate subject names served at the address.
// That is all the "SSL certificates" origin-exposure vector needs (paper
// Table I): scanning an IP range and reading subjects off returned
// certificates reveals which addresses host which domains.
const (
	// PortHTTPS is where certificate servers listen.
	PortHTTPS = 443
	// probeHello is the client-hello payload.
	probeHello = "RRDPS-TLS-CLIENT-HELLO"
	// subjectPrefix starts every server response.
	subjectPrefix = "subjects:"
)

// CertServer answers TLS probes with the certificate subjects configured
// on a host. It is safe for concurrent use.
type CertServer struct {
	mu       sync.Mutex
	subjects map[string]bool
}

// NewCertServer creates a server presenting the given subject names.
func NewCertServer(subjects ...string) *CertServer {
	s := &CertServer{subjects: make(map[string]bool, len(subjects))}
	for _, sub := range subjects {
		s.subjects[strings.ToLower(sub)] = true
	}
	return s
}

var _ netsim.Handler = (*CertServer)(nil)

// AddSubject installs another certificate.
func (s *CertServer) AddSubject(subject string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subjects[strings.ToLower(subject)] = true
}

// RemoveSubject drops a certificate.
func (s *CertServer) RemoveSubject(subject string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subjects, strings.ToLower(subject))
}

// ServeNet implements netsim.Handler.
func (s *CertServer) ServeNet(req netsim.Request) ([]byte, error) {
	if string(req.Payload) != probeHello {
		return nil, nil // not a TLS hello: drop
	}
	s.mu.Lock()
	subs := make([]string, 0, len(s.subjects))
	for sub := range s.subjects {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	sort.Strings(subs)
	return []byte(subjectPrefix + " " + strings.Join(subs, ",")), nil
}

// ProbeCert sends a TLS hello to addr and returns the certificate subject
// names presented there.
func ProbeCert(net *netsim.Network, from netip.Addr, region netsim.Region, addr netip.Addr) ([]string, error) {
	raw, err := net.Send(from, region, netsim.Endpoint{Addr: addr, Port: PortHTTPS}, []byte(probeHello))
	if err != nil {
		return nil, fmt.Errorf("probing %v: %w", addr, err)
	}
	body, ok := strings.CutPrefix(string(raw), subjectPrefix)
	if !ok {
		return nil, fmt.Errorf("probing %v: malformed hello response %q", addr, raw)
	}
	body = strings.TrimSpace(body)
	if body == "" {
		return nil, nil
	}
	return strings.Split(body, ","), nil
}
