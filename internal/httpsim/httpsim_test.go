package httpsim

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

func TestRequestCodecRoundTrip(t *testing.T) {
	req := Request{
		Method:  "GET",
		Path:    "/index.html",
		Host:    "www.example.com",
		Headers: map[string]string{"User-Agent": "rrdps-probe/1.0", "Accept": "text/html"},
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip: %+v != %+v", got, req)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := Response{
		StatusCode: 200,
		Status:     "OK",
		Headers:    map[string]string{"Content-Type": "text/html"},
		Body:       "<html>hi</html>",
	}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("round trip: %+v != %+v", got, resp)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GARBAGE\r\n\r\n"),
		[]byte("GET /\r\n\r\n"), // no protocol
		[]byte("GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n"), // bad header
		[]byte("GET / HTTP/1.1\r\nAccept: x\r\n\r\n"),     // missing Host
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c); !errors.Is(err, ErrMalformedRequest) {
			t.Errorf("DecodeRequest(%q) err = %v, want ErrMalformedRequest", c, err)
		}
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("HTTP/1.1 200 OK\r\n"),     // no terminator
		[]byte("BOGUS 200 OK\r\n\r\n"),    // bad proto
		[]byte("HTTP/1.1 abc OK\r\n\r\n"), // bad code
		[]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nlonger-body"), // length mismatch
	}
	for _, c := range cases {
		if _, err := DecodeResponse(c); !errors.Is(err, ErrMalformedResponse) {
			t.Errorf("DecodeResponse(%q) err = %v, want ErrMalformedResponse", c, err)
		}
	}
}

func TestPageRenderParseRoundTrip(t *testing.T) {
	p := Page{
		Title: "Example Site - Home",
		Meta: map[string]string{
			"description": "an example site",
			"generator":   "sitegen 2.1",
		},
		Body: "<h1>Welcome</h1>",
	}
	got := ParsePage(p.Render())
	if got.Title != p.Title {
		t.Errorf("title = %q, want %q", got.Title, p.Title)
	}
	if !reflect.DeepEqual(got.Meta, p.Meta) {
		t.Errorf("meta = %v, want %v", got.Meta, p.Meta)
	}
}

func TestParsePageLenient(t *testing.T) {
	html := `<html><head><TITLE>nope</TITLE><title>Real Title</title>` +
		`<meta name='single' content='quoted'>` +
		`<meta content="reversed" name="attr-order">` +
		`<meta name=bare content=alsobare >` +
		`</head><body></body></html>`
	p := ParsePage(html)
	if p.Title != "Real Title" {
		t.Errorf("title = %q", p.Title)
	}
	if p.Meta["single"] != "quoted" {
		t.Errorf("single = %q", p.Meta["single"])
	}
	if p.Meta["attr-order"] != "reversed" {
		t.Errorf("attr-order = %q", p.Meta["attr-order"])
	}
	if p.Meta["bare"] != "alsobare" {
		t.Errorf("bare = %q", p.Meta["bare"])
	}
}

func TestParsePageEmpty(t *testing.T) {
	p := ParsePage("")
	if p.Title != "" || len(p.Meta) != 0 {
		t.Fatalf("ParsePage(\"\") = %+v", p)
	}
}

// Property: rendering then parsing preserves title and meta for tame
// strings.
func TestRenderParseQuickProperty(t *testing.T) {
	sanitize := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 32 || r == '<' || r == '>' || r == '"' || r == '&' || r == '\'' || r == '\\' || r > 126 {
				return -1
			}
			return r
		}, s)
		return strings.TrimSpace(s)
	}
	f := func(title, k1, v1 string) bool {
		title, k1, v1 = sanitize(title), sanitize(k1), sanitize(v1)
		k1 = strings.ReplaceAll(strings.ReplaceAll(k1, "=", ""), " ", "")
		if k1 == "" {
			k1 = "x"
		}
		p := Page{Title: title, Meta: map[string]string{k1: v1}}
		got := ParsePage(p.Render())
		return got.Title == title && got.Meta[k1] == v1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newHTTPFixture(t *testing.T, cfg OriginConfig) (*netsim.Network, *Origin, *Client, netip.Addr) {
	t.Helper()
	net := netsim.New(netsim.Config{Clock: simtime.NewSimulated()})
	origin := NewOrigin(cfg)
	originAddr := netip.MustParseAddr("10.50.0.1")
	net.Register(netsim.Endpoint{Addr: originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, origin)
	client := NewClient(net, netip.MustParseAddr("198.51.100.80"), netsim.RegionOregon)
	return net, origin, client, originAddr
}

func TestOriginServesLandingPage(t *testing.T) {
	page := Page{Title: "Shop", Meta: map[string]string{"description": "buy things"}}
	_, _, client, addr := newHTTPFixture(t, OriginConfig{Page: page})
	resp, err := client.Get(addr, "www.shop.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got := ParsePage(resp.Body)
	if got.Title != "Shop" || got.Meta["description"] != "buy things" {
		t.Fatalf("page = %+v", got)
	}
}

func TestOriginHostRestriction(t *testing.T) {
	_, _, client, addr := newHTTPFixture(t, OriginConfig{
		Page:  Page{Title: "Mine"},
		Hosts: []string{"www.mine.com"},
	})
	resp, err := client.Get(addr, "www.other.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("foreign host status = %d, want 404", resp.StatusCode)
	}
	resp, err = client.Get(addr, "www.mine.com", "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("own host: %d, %v", resp.StatusCode, err)
	}
}

func TestOriginClientACL(t *testing.T) {
	edge := netip.MustParseAddr("104.16.0.9")
	net, _, client, addr := newHTTPFixture(t, OriginConfig{
		Page:           Page{Title: "Protected"},
		AllowedClients: []netip.Addr{edge},
	})
	resp, err := client.Get(addr, "www.p.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("unauthorized client status = %d, want 403", resp.StatusCode)
	}
	edgeClient := NewClient(net, edge, netsim.RegionVirginia)
	resp, err = edgeClient.Get(addr, "www.p.com", "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("edge client: %d, %v", resp.StatusCode, err)
	}
}

func TestOriginDynamicMeta(t *testing.T) {
	calls := 0
	_, _, client, addr := newHTTPFixture(t, OriginConfig{
		Page: Page{Title: "Dyn", Meta: map[string]string{"static": "same"}},
		DynamicMeta: func(ctx RequestContext) map[string]string {
			calls++
			return map[string]string{"request-id": strings.Repeat("x", calls)}
		},
	})
	r1, _ := client.Get(addr, "www.dyn.com", "/")
	r2, _ := client.Get(addr, "www.dyn.com", "/")
	p1, p2 := ParsePage(r1.Body), ParsePage(r2.Body)
	if p1.Meta["request-id"] == p2.Meta["request-id"] {
		t.Fatal("dynamic meta did not vary between requests")
	}
	if p1.Meta["static"] != "same" || p2.Meta["static"] != "same" {
		t.Fatal("static meta lost")
	}
}

func TestOriginSetPage(t *testing.T) {
	_, origin, client, addr := newHTTPFixture(t, OriginConfig{Page: Page{Title: "Old"}})
	origin.SetPage(Page{Title: "New"})
	resp, _ := client.Get(addr, "x.com", "/")
	if ParsePage(resp.Body).Title != "New" {
		t.Fatal("SetPage did not take effect")
	}
}

func TestOriginPathAndMethodHandling(t *testing.T) {
	net, _, client, addr := newHTTPFixture(t, OriginConfig{Page: Page{Title: "T"}})
	resp, _ := client.Get(addr, "x.com", "/secret.txt")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path status = %d", resp.StatusCode)
	}
	// Index alias works.
	resp, _ = client.Get(addr, "x.com", "/index.html")
	if resp.StatusCode != 200 {
		t.Fatalf("/index.html status = %d", resp.StatusCode)
	}
	// Non-GET refused.
	req := Request{Method: "POST", Path: "/", Host: "x.com"}
	raw, err := net.Send(client.Addr(), netsim.RegionOregon, netsim.Endpoint{Addr: addr, Port: netsim.PortHTTP}, EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := DecodeResponse(raw)
	if dec.StatusCode != 404 {
		t.Fatalf("POST status = %d", dec.StatusCode)
	}
}

func TestOriginMalformedRequestGets400(t *testing.T) {
	net, _, client, addr := newHTTPFixture(t, OriginConfig{Page: Page{Title: "T"}})
	raw, err := net.Send(client.Addr(), netsim.RegionOregon, netsim.Endpoint{Addr: addr, Port: netsim.PortHTTP}, []byte("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := DecodeResponse(raw)
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOriginHits(t *testing.T) {
	_, origin, client, addr := newHTTPFixture(t, OriginConfig{Page: Page{Title: "T"}})
	for i := 0; i < 3; i++ {
		if _, err := client.Get(addr, "x.com", "/"); err != nil {
			t.Fatal(err)
		}
	}
	if got := origin.Hits(); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}

func TestClientGetUnreachable(t *testing.T) {
	_, _, client, _ := newHTTPFixture(t, OriginConfig{Page: Page{Title: "T"}})
	_, err := client.Get(netip.MustParseAddr("10.99.99.99"), "x.com", "/")
	if !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

// Property: decoding arbitrary garbage never panics in either codec.
func TestDecodeGarbageNeverPanicsHTTP(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(n uint16) bool {
		b := make([]byte, int(n)%300)
		rng.Read(b)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %q: %v", b, r)
			}
		}()
		_, _ = DecodeRequest(b)
		_, _ = DecodeResponse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
