// Package httpsim implements a minimal HTTP/1.1 over the simulated network
// fabric: a text codec, origin web servers that serve landing pages, and a
// client.
//
// The paper's HTML-verification step (§IV-C.3) downloads a landing page
// twice — once through the DPS edge (IP2) and once directly from a
// candidate origin (IP1) — and compares titles and meta tags. This package
// provides both sides of that exchange, including the corner cases the
// paper flags: origins that only answer requests from their DPS provider,
// and meta tags that change per request.
package httpsim

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Codec errors.
var (
	ErrMalformedRequest  = errors.New("httpsim: malformed request")
	ErrMalformedResponse = errors.New("httpsim: malformed response")
)

// Request is a simulated HTTP request.
type Request struct {
	Method  string
	Path    string
	Host    string
	Headers map[string]string
}

// Response is a simulated HTTP response.
type Response struct {
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       string
}

// Header returns the canonical status line text for code.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Unknown"
	}
}

// EncodeRequest serializes req in wire form.
func EncodeRequest(req Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", req.Method, req.Path)
	fmt.Fprintf(&b, "Host: %s\r\n", req.Host)
	keys := make([]string, 0, len(req.Headers))
	for k := range req.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, req.Headers[k])
	}
	b.WriteString("\r\n")
	return b.Bytes()
}

// DecodeRequest parses a wire-form request.
func DecodeRequest(raw []byte) (Request, error) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		return Request{}, fmt.Errorf("empty: %w", ErrMalformedRequest)
	}
	parts := strings.SplitN(sc.Text(), " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return Request{}, fmt.Errorf("request line %q: %w", sc.Text(), ErrMalformedRequest)
	}
	req := Request{Method: parts[0], Path: parts[1], Headers: make(map[string]string)}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return Request{}, fmt.Errorf("header %q: %w", line, ErrMalformedRequest)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if strings.EqualFold(k, "Host") {
			req.Host = v
			continue
		}
		req.Headers[k] = v
	}
	if req.Host == "" {
		return Request{}, fmt.Errorf("missing Host header: %w", ErrMalformedRequest)
	}
	return req, nil
}

// EncodeResponse serializes resp in wire form.
func EncodeResponse(resp Response) []byte {
	var b bytes.Buffer
	status := resp.Status
	if status == "" {
		status = statusText(resp.StatusCode)
	}
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", resp.StatusCode, status)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(resp.Body))
	keys := make([]string, 0, len(resp.Headers))
	for k := range resp.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, resp.Headers[k])
	}
	b.WriteString("\r\n")
	b.WriteString(resp.Body)
	return b.Bytes()
}

// DecodeResponse parses a wire-form response.
func DecodeResponse(raw []byte) (Response, error) {
	head, body, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
	if !ok {
		return Response{}, fmt.Errorf("no header terminator: %w", ErrMalformedResponse)
	}
	lines := strings.Split(string(head), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return Response{}, fmt.Errorf("status line %q: %w", lines[0], ErrMalformedResponse)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return Response{}, fmt.Errorf("status code %q: %w", parts[1], ErrMalformedResponse)
	}
	resp := Response{StatusCode: code, Headers: make(map[string]string), Body: string(body)}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	var contentLength = -1
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return Response{}, fmt.Errorf("header %q: %w", line, ErrMalformedResponse)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if strings.EqualFold(k, "Content-Length") {
			if contentLength, err = strconv.Atoi(v); err != nil {
				return Response{}, fmt.Errorf("content-length %q: %w", v, ErrMalformedResponse)
			}
			continue
		}
		resp.Headers[k] = v
	}
	if contentLength >= 0 && contentLength != len(resp.Body) {
		return Response{}, fmt.Errorf("content-length %d != body %d: %w", contentLength, len(resp.Body), ErrMalformedResponse)
	}
	return resp, nil
}
