package httpsim

import (
	"fmt"
	"sort"
	"strings"
)

// Page is the content of a website landing page. The fields are exactly
// what the paper's HTML verification compares: the <title> element and the
// <meta> tags.
type Page struct {
	Title string
	// Meta maps meta-tag names to their content attributes.
	Meta map[string]string
	// Body is free-form body text.
	Body string
}

// Render produces the page's HTML document.
func (p Page) Render() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", p.Title)
	names := make([]string, 0, len(p.Meta))
	for name := range p.Meta {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "<meta name=%q content=%q>\n", name, p.Meta[name])
	}
	b.WriteString("</head>\n<body>\n")
	b.WriteString(p.Body)
	b.WriteString("\n</body>\n</html>\n")
	return b.String()
}

// ParsePage extracts the title and meta tags from an HTML document produced
// by Render (or similarly conventional HTML). It is intentionally lenient:
// verification must cope with pages it did not generate.
func ParsePage(html string) Page {
	p := Page{Meta: make(map[string]string)}
	if start := strings.Index(html, "<title>"); start >= 0 {
		rest := html[start+len("<title>"):]
		if end := strings.Index(rest, "</title>"); end >= 0 {
			p.Title = rest[:end]
		}
	}
	rest := html
	for {
		i := strings.Index(rest, "<meta ")
		if i < 0 {
			break
		}
		rest = rest[i+len("<meta "):]
		end := strings.Index(rest, ">")
		if end < 0 {
			break
		}
		tag := rest[:end]
		name := attrValue(tag, "name")
		content := attrValue(tag, "content")
		if name != "" {
			p.Meta[name] = content
		}
	}
	return p
}

// attrValue extracts attr="value" from a tag body.
func attrValue(tag, attr string) string {
	marker := attr + "="
	i := strings.Index(tag, marker)
	if i < 0 {
		return ""
	}
	rest := tag[i+len(marker):]
	if len(rest) == 0 {
		return ""
	}
	quote := rest[0]
	if quote != '"' && quote != '\'' {
		// Unquoted value: read until whitespace.
		if j := strings.IndexAny(rest, " \t"); j >= 0 {
			return rest[:j]
		}
		return rest
	}
	rest = rest[1:]
	if j := strings.IndexByte(rest, quote); j >= 0 {
		return unescape(rest[:j])
	}
	return ""
}

func unescape(s string) string {
	r := strings.NewReplacer("&quot;", `"`, "&#34;", `"`, "&amp;", "&", "&#39;", "'")
	return r.Replace(s)
}
