// Package ipspace models the IPv4 address space of the simulated Internet:
// autonomous systems, their announced prefixes, and longest-prefix-match
// lookups from address to origin AS.
//
// The paper's A-matching step ("does this A record fall inside a DPS
// provider's IP ranges?", §IV-B.2) uses the RouteViews BGP archive to map
// provider AS numbers to IP ranges. This package is that database for the
// simulated world: providers and ISPs register ASes, announce prefixes, and
// the measurement pipeline asks which AS originates a given address.
package ipspace

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// ASN is an autonomous system number.
type ASN uint32

// String implements fmt.Stringer.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// ASInfo describes a registered autonomous system.
type ASInfo struct {
	ASN  ASN
	Name string
}

// Registry tracks ASes and their announced prefixes and answers
// longest-prefix-match queries. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	ases     map[ASN]ASInfo
	prefixes map[ASN][]netip.Prefix
	// byLen[b] maps the masked b-bit network address to its origin AS.
	// Lookup probes from the longest announced length downward, so a more
	// specific announcement always wins, as in BGP.
	byLen [33]map[netip.Addr]ASN
	// lens caches which prefix lengths have announcements, longest first.
	lens []int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ases:     make(map[ASN]ASInfo),
		prefixes: make(map[ASN][]netip.Prefix),
	}
}

// AddAS registers an autonomous system. Re-adding an ASN updates its name.
func (r *Registry) AddAS(asn ASN, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ases[asn] = ASInfo{ASN: asn, Name: name}
}

// AS returns the info for asn.
func (r *Registry) AS(asn ASN) (ASInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.ases[asn]
	return info, ok
}

// Announce records that asn originates prefix. The AS must have been added
// first. Announcing the same prefix twice from different ASes is an error
// (the simulated Internet has no MOAS conflicts).
func (r *Registry) Announce(asn ASN, prefix netip.Prefix) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("announce %v: only IPv4 prefixes are supported", prefix)
	}
	prefix = prefix.Masked()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ases[asn]; !ok {
		return fmt.Errorf("announce %v: unknown %v", prefix, asn)
	}
	b := prefix.Bits()
	if r.byLen[b] == nil {
		r.byLen[b] = make(map[netip.Addr]ASN)
		r.lens = append(r.lens, b)
		sort.Sort(sort.Reverse(sort.IntSlice(r.lens)))
	}
	if owner, ok := r.byLen[b][prefix.Addr()]; ok && owner != asn {
		return fmt.Errorf("announce %v by %v: already announced by %v", prefix, asn, owner)
	}
	r.byLen[b][prefix.Addr()] = asn
	r.prefixes[asn] = append(r.prefixes[asn], prefix)
	return nil
}

// MustAnnounce is Announce but panics on error. Use in composition roots
// where an announcement conflict is a configuration bug.
func (r *Registry) MustAnnounce(asn ASN, prefix netip.Prefix) {
	if err := r.Announce(asn, prefix); err != nil {
		panic(fmt.Sprintf("ipspace: %v", err))
	}
}

// ASNFor returns the origin AS of addr by longest-prefix match.
func (r *Registry) ASNFor(addr netip.Addr) (ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, b := range r.lens {
		masked := netip.PrefixFrom(addr, b).Masked().Addr()
		if asn, ok := r.byLen[b][masked]; ok {
			return asn, true
		}
	}
	return 0, false
}

// Contains reports whether addr falls inside any prefix announced by asn.
// This is the primitive behind the paper's A-matching.
func (r *Registry) Contains(asn ASN, addr netip.Addr) bool {
	got, ok := r.ASNFor(addr)
	return ok && got == asn
}

// PrefixesOf returns a copy of the prefixes announced by asn.
func (r *Registry) PrefixesOf(asn ASN) []netip.Prefix {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]netip.Prefix, len(r.prefixes[asn]))
	copy(out, r.prefixes[asn])
	return out
}

// Len returns the total number of announced prefixes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, b := range r.lens {
		total += len(r.byLen[b])
	}
	return total
}
