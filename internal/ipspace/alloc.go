package ipspace

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
)

// Allocator hands out non-overlapping IPv4 prefixes and host addresses
// deterministically. The composition root uses one Allocator for the whole
// world so provider edge ranges, ISP ranges, and origin addresses never
// collide.
//
// Allocation walks the space upward from a base address; the well-known
// reserved blocks relevant at that scale (loopback, multicast and above)
// are skipped.
type Allocator struct {
	mu   sync.Mutex
	next uint32
}

// NewAllocator returns an allocator that starts at base. A typical world
// starts at 10.0.0.0 or 20.0.0.0. It panics if base is not IPv4.
func NewAllocator(base netip.Addr) *Allocator {
	if !base.Is4() {
		panic(fmt.Sprintf("ipspace: allocator base %v is not IPv4", base))
	}
	return &Allocator{next: addrToU32(base)}
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

func u32ToAddr(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// reserved reports whether v sits in a block the allocator must not hand
// out: loopback 127/8 and everything from multicast 224/4 upward.
func reserved(v uint32) bool {
	if v>>24 == 127 {
		return true
	}
	return v >= 0xE0000000 // 224.0.0.0 and above
}

// NextPrefix allocates a fresh /bits prefix. It panics when bits is outside
// [8, 30] or the space is exhausted — both indicate misconfiguration of the
// world, not runtime conditions.
func (a *Allocator) NextPrefix(bits int) netip.Prefix {
	if bits < 8 || bits > 30 {
		panic(fmt.Sprintf("ipspace: NextPrefix bits %d outside [8,30]", bits))
	}
	size := uint32(1) << (32 - bits)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Align up to the prefix size.
	start := (a.next + size - 1) &^ (size - 1)
	for reserved(start) || reserved(start+size-1) {
		start += size
		if start == 0 {
			panic("ipspace: IPv4 space exhausted")
		}
	}
	if start+size < start {
		panic("ipspace: IPv4 space exhausted")
	}
	a.next = start + size
	return netip.PrefixFrom(u32ToAddr(start), bits)
}

// NextAddr allocates a single fresh address (a /32 block).
func (a *Allocator) NextAddr() netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	for reserved(a.next) {
		a.next++
		if a.next == 0 {
			panic("ipspace: IPv4 space exhausted")
		}
	}
	addr := u32ToAddr(a.next)
	a.next++
	return addr
}

// NthAddr returns the nth usable host address inside prefix (0-based,
// skipping the network address). It panics if n exceeds the host capacity.
func NthAddr(prefix netip.Prefix, n int) netip.Addr {
	prefix = prefix.Masked()
	hostBits := 32 - prefix.Bits()
	capacity := (uint64(1) << hostBits) - 1 // excluding network address
	if n < 0 || uint64(n) >= capacity {
		panic(fmt.Sprintf("ipspace: NthAddr(%v, %d): only %d hosts", prefix, n, capacity))
	}
	return u32ToAddr(addrToU32(prefix.Addr()) + uint32(n) + 1)
}

// HostCapacity returns how many host addresses NthAddr can produce for
// prefix.
func HostCapacity(prefix netip.Prefix) int {
	hostBits := 32 - prefix.Masked().Bits()
	return int((uint64(1) << hostBits) - 1)
}
