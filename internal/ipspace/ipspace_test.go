package ipspace

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestASNForLongestPrefixWins(t *testing.T) {
	r := NewRegistry()
	r.AddAS(100, "broad")
	r.AddAS(200, "specific")
	r.MustAnnounce(100, mustPrefix("10.0.0.0/8"))
	r.MustAnnounce(200, mustPrefix("10.1.0.0/16"))

	tests := []struct {
		addr string
		want ASN
	}{
		{"10.0.0.1", 100},
		{"10.1.2.3", 200},
		{"10.2.0.1", 100},
		{"10.1.255.255", 200},
	}
	for _, tt := range tests {
		got, ok := r.ASNFor(netip.MustParseAddr(tt.addr))
		if !ok || got != tt.want {
			t.Errorf("ASNFor(%s) = %v,%v, want %v", tt.addr, got, ok, tt.want)
		}
	}
}

func TestASNForMiss(t *testing.T) {
	r := NewRegistry()
	r.AddAS(100, "x")
	r.MustAnnounce(100, mustPrefix("10.0.0.0/8"))
	if _, ok := r.ASNFor(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("ASNFor outside any prefix returned ok")
	}
	if _, ok := r.ASNFor(netip.MustParseAddr("::1")); ok {
		t.Error("ASNFor IPv6 returned ok")
	}
}

func TestAnnounceUnknownAS(t *testing.T) {
	r := NewRegistry()
	if err := r.Announce(42, mustPrefix("10.0.0.0/8")); err == nil {
		t.Error("Announce for unregistered AS succeeded")
	}
}

func TestAnnounceConflict(t *testing.T) {
	r := NewRegistry()
	r.AddAS(1, "a")
	r.AddAS(2, "b")
	r.MustAnnounce(1, mustPrefix("10.0.0.0/16"))
	if err := r.Announce(2, mustPrefix("10.0.0.0/16")); err == nil {
		t.Error("conflicting announcement succeeded")
	}
	// Same AS re-announcing is fine.
	if err := r.Announce(1, mustPrefix("10.0.0.0/16")); err != nil {
		t.Errorf("re-announcement by owner failed: %v", err)
	}
}

func TestAnnounceIPv6Rejected(t *testing.T) {
	r := NewRegistry()
	r.AddAS(1, "a")
	if err := r.Announce(1, netip.MustParsePrefix("2001:db8::/32")); err == nil {
		t.Error("IPv6 announcement succeeded")
	}
}

func TestContains(t *testing.T) {
	r := NewRegistry()
	r.AddAS(13335, "cloudflare")
	r.AddAS(19551, "incapsula")
	r.MustAnnounce(13335, mustPrefix("104.16.0.0/12"))
	r.MustAnnounce(19551, mustPrefix("199.83.128.0/21"))

	if !r.Contains(13335, netip.MustParseAddr("104.16.1.1")) {
		t.Error("cloudflare addr not matched")
	}
	if r.Contains(13335, netip.MustParseAddr("199.83.128.5")) {
		t.Error("incapsula addr matched cloudflare")
	}
	if r.Contains(19551, netip.MustParseAddr("8.8.8.8")) {
		t.Error("unannounced addr matched")
	}
}

func TestPrefixesOfIsCopy(t *testing.T) {
	r := NewRegistry()
	r.AddAS(1, "a")
	r.MustAnnounce(1, mustPrefix("10.0.0.0/16"))
	got := r.PrefixesOf(1)
	got[0] = mustPrefix("192.168.0.0/16")
	if r.PrefixesOf(1)[0] != mustPrefix("10.0.0.0/16") {
		t.Error("PrefixesOf leaked internal slice")
	}
}

func TestRegistryLen(t *testing.T) {
	r := NewRegistry()
	r.AddAS(1, "a")
	r.MustAnnounce(1, mustPrefix("10.0.0.0/16"))
	r.MustAnnounce(1, mustPrefix("10.1.0.0/16"))
	r.MustAnnounce(1, mustPrefix("10.2.0.0/24"))
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// Property: for every announced prefix, every sampled address inside it maps
// back to the announcing AS (absent a more specific announcement).
func TestASNForQuickProperty(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	type owned struct {
		prefix netip.Prefix
		asn    ASN
	}
	var all []owned
	alloc := NewAllocator(netip.MustParseAddr("20.0.0.0"))
	for i := 0; i < 50; i++ {
		asn := ASN(1000 + i)
		r.AddAS(asn, "as")
		bits := 12 + rng.Intn(13) // /12 .. /24
		p := alloc.NextPrefix(bits)
		r.MustAnnounce(asn, p)
		all = append(all, owned{p, asn})
	}
	f := func(pick uint8, off uint32) bool {
		o := all[int(pick)%len(all)]
		n := int(off) % HostCapacity(o.prefix)
		addr := NthAddr(o.prefix, n)
		got, ok := r.ASNFor(addr)
		return ok && got == o.asn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
