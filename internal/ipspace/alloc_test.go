package ipspace

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestNextPrefixNonOverlapping(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("20.0.0.0"))
	var prefixes []netip.Prefix
	for _, bits := range []int{16, 24, 12, 20, 24, 16} {
		prefixes = append(prefixes, a.NextPrefix(bits))
	}
	for i, p := range prefixes {
		if p.Masked() != p {
			t.Errorf("prefix %v not masked", p)
		}
		for j, q := range prefixes {
			if i == j {
				continue
			}
			if p.Overlaps(q) {
				t.Errorf("prefixes %v and %v overlap", p, q)
			}
		}
	}
}

func TestNextPrefixAligned(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("20.0.0.1"))
	p := a.NextPrefix(16)
	if p.Addr() != netip.MustParseAddr("20.1.0.0") {
		t.Fatalf("prefix %v not aligned up from 20.0.0.1", p)
	}
}

func TestNextPrefixSkipsLoopback(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("126.255.0.0"))
	p := a.NextPrefix(8)
	if p.Addr().As4()[0] == 127 {
		t.Fatalf("allocated loopback prefix %v", p)
	}
}

func TestNextPrefixBadBitsPanics(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("20.0.0.0"))
	for _, bits := range []int{0, 7, 31, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPrefix(%d) did not panic", bits)
				}
			}()
			a.NextPrefix(bits)
		}()
	}
}

func TestNextAddrSequential(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("20.0.0.0"))
	first := a.NextAddr()
	second := a.NextAddr()
	if first != netip.MustParseAddr("20.0.0.0") || second != netip.MustParseAddr("20.0.0.1") {
		t.Fatalf("got %v, %v", first, second)
	}
}

func TestNextAddrAfterPrefixDoesNotOverlap(t *testing.T) {
	a := NewAllocator(netip.MustParseAddr("20.0.0.0"))
	p := a.NextPrefix(24)
	addr := a.NextAddr()
	if p.Contains(addr) {
		t.Fatalf("addr %v inside previously allocated %v", addr, p)
	}
}

func TestNthAddr(t *testing.T) {
	p := netip.MustParsePrefix("10.1.2.0/24")
	tests := []struct {
		n    int
		want string
	}{
		{0, "10.1.2.1"},
		{1, "10.1.2.2"},
		{254, "10.1.2.255"},
	}
	for _, tt := range tests {
		if got := NthAddr(p, tt.n); got != netip.MustParseAddr(tt.want) {
			t.Errorf("NthAddr(%v, %d) = %v, want %s", p, tt.n, got, tt.want)
		}
	}
}

func TestNthAddrOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NthAddr out of range did not panic")
		}
	}()
	NthAddr(netip.MustParsePrefix("10.0.0.0/30"), 3)
}

func TestHostCapacity(t *testing.T) {
	tests := []struct {
		prefix string
		want   int
	}{
		{"10.0.0.0/24", 255},
		{"10.0.0.0/30", 3},
		{"10.0.0.0/16", 65535},
	}
	for _, tt := range tests {
		if got := HostCapacity(netip.MustParsePrefix(tt.prefix)); got != tt.want {
			t.Errorf("HostCapacity(%s) = %d, want %d", tt.prefix, got, tt.want)
		}
	}
}

// Property: every address NthAddr yields is contained in the prefix and is
// never the network address.
func TestNthAddrQuickProperty(t *testing.T) {
	f := func(bits8 uint8, n uint16) bool {
		bits := 20 + int(bits8)%11 // /20 .. /30
		p := netip.PrefixFrom(netip.MustParseAddr("30.40.0.0"), bits).Masked()
		idx := int(n) % HostCapacity(p)
		addr := NthAddr(p, idx)
		return p.Contains(addr) && addr != p.Addr()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
