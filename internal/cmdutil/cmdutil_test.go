package cmdutil

import (
	"flag"
	"strings"
	"testing"
)

// parse registers the shared flag block on a throwaway FlagSet, parses
// args, and validates — the exact path both binaries run before any
// campaign work starts, so a bad combination must fail here, fast,
// not an hour into a run.
func parse(t *testing.T, args ...string) (*CampaignFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{}) // silence usage spam on bad flags
	f := RegisterCampaignFlags(fs, "retention help")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return f, f.Validate()
}

func TestCampaignFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = must validate
	}{
		{name: "defaults", args: nil},
		{name: "sharded", args: []string{"-shards", "8", "-shard-workers", "2"}},
		{name: "sharded-all-at-once", args: []string{"-shards", "4", "-shard-workers", "0"}},
		{name: "resume-with-dir", args: []string{"-resume", "-checkpoint-dir", "ckpt"}},
		{name: "sharded-resume", args: []string{"-shards", "4", "-resume", "-checkpoint-dir", "ckpt"}},

		{name: "resume-without-dir", args: []string{"-resume"}, wantErr: "-resume requires -checkpoint-dir"},
		{name: "zero-shards", args: []string{"-shards", "0"}, wantErr: "-shards must be at least 1"},
		{name: "negative-shards", args: []string{"-shards", "-2"}, wantErr: "-shards must be at least 1"},
		{name: "negative-shard-workers", args: []string{"-shard-workers", "-1"}, wantErr: "-shard-workers must not be negative"},
		{name: "zero-workers", args: []string{"-workers", "0"}, wantErr: "-workers and -retries must be positive"},
		{name: "zero-retries", args: []string{"-retries", "0"}, wantErr: "-workers and -retries must be positive"},
		{name: "zero-checkpoint-every", args: []string{"-checkpoint-every", "0"}, wantErr: "-checkpoint-every must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestCampaignFlagsDefaults(t *testing.T) {
	f, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards != 1 {
		t.Errorf("default -shards = %d, want 1 (unsharded)", f.Shards)
	}
	if f.ShardWorkers != 0 {
		t.Errorf("default -shard-workers = %d, want 0 (all at once)", f.ShardWorkers)
	}
	if f.Retries != 3 || !f.Hedge {
		t.Errorf("default policy knobs = retries %d hedge %v, want 3 true", f.Retries, f.Hedge)
	}
	if f.CheckpointEvery != 7 {
		t.Errorf("default -checkpoint-every = %d, want 7", f.CheckpointEvery)
	}
}

func TestCampaignFlagsPolicy(t *testing.T) {
	f, err := parse(t, "-retries", "5", "-hedge=false")
	if err != nil {
		t.Fatal(err)
	}
	p := f.Policy()
	if p.MaxAttempts != 5 || p.Hedge {
		t.Fatalf("Policy() = attempts %d hedge %v, want 5 false", p.MaxAttempts, p.Hedge)
	}
}
