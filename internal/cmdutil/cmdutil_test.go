package cmdutil

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"rrdps/internal/obs"
)

// parse registers the shared flag block on a throwaway FlagSet, parses
// args, and validates — the exact path both binaries run before any
// campaign work starts, so a bad combination must fail here, fast,
// not an hour into a run.
func parse(t *testing.T, args ...string) (*CampaignFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{}) // silence usage spam on bad flags
	f := RegisterCampaignFlags(fs, "retention help")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return f, f.Validate()
}

func TestCampaignFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = must validate
	}{
		{name: "defaults", args: nil},
		{name: "sharded", args: []string{"-shards", "8", "-shard-workers", "2"}},
		{name: "sharded-all-at-once", args: []string{"-shards", "4", "-shard-workers", "0"}},
		{name: "resume-with-dir", args: []string{"-resume", "-checkpoint-dir", "ckpt"}},
		{name: "sharded-resume", args: []string{"-shards", "4", "-resume", "-checkpoint-dir", "ckpt"}},

		{name: "metrics-text", args: []string{"-metrics", "text"}},
		{name: "metrics-json-to-file", args: []string{"-metrics", "json", "-metrics-out", "dump.json"}},

		{name: "legacy", args: []string{"-legacy"}},
		{name: "follow", args: []string{"-follow", "-checkpoint-dir", "ckpt"}},
		{name: "follow-bounded", args: []string{"-follow", "-checkpoint-dir", "ckpt", "-max-days", "3"}},
		{name: "follow-throttled", args: []string{"-follow", "-checkpoint-dir", "ckpt", "-follow-interval", "5s"}},
		{name: "follow-resume", args: []string{"-follow", "-resume", "-checkpoint-dir", "ckpt"}},

		{name: "resume-without-dir", args: []string{"-resume"}, wantErr: "-resume requires -checkpoint-dir"},
		{name: "zero-shards", args: []string{"-shards", "0"}, wantErr: "-shards must be at least 1"},
		{name: "negative-shards", args: []string{"-shards", "-2"}, wantErr: "-shards must be at least 1"},
		{name: "negative-shard-workers", args: []string{"-shard-workers", "-1"}, wantErr: "-shard-workers must not be negative"},
		{name: "zero-workers", args: []string{"-workers", "0"}, wantErr: "-workers and -retries must be positive"},
		{name: "zero-retries", args: []string{"-retries", "0"}, wantErr: "-workers and -retries must be positive"},
		{name: "zero-checkpoint-every", args: []string{"-checkpoint-every", "0"}, wantErr: "-checkpoint-every must be positive"},
		{name: "bad-metrics-mode", args: []string{"-metrics", "yaml"}, wantErr: `-metrics: unknown mode "yaml"`},
		{name: "metrics-out-without-metrics", args: []string{"-metrics-out", "dump.json"}, wantErr: "-metrics-out requires -metrics"},
		{name: "shard-workers-unsharded", args: []string{"-shard-workers", "8"}, wantErr: "-shard-workers needs -shards > 1"},

		// Daemon-mode combinations a later stage would only reject after
		// hours of campaign work — all must fail at flag validation.
		{name: "legacy-checkpoint", args: []string{"-legacy", "-checkpoint-dir", "ckpt"}, wantErr: "-legacy is incompatible with -checkpoint-dir"},
		{name: "legacy-sharded", args: []string{"-legacy", "-shards", "2"}, wantErr: "-legacy is incompatible with -shards > 1"},
		{name: "legacy-follow", args: []string{"-legacy", "-follow"}, wantErr: "-follow is incompatible with -legacy"},
		{name: "follow-without-dir", args: []string{"-follow"}, wantErr: "-follow requires -checkpoint-dir"},
		{name: "follow-sharded", args: []string{"-follow", "-checkpoint-dir", "ckpt", "-shards", "2"}, wantErr: "-follow is incompatible with -shards > 1"},
		{name: "negative-max-days", args: []string{"-follow", "-checkpoint-dir", "ckpt", "-max-days", "-1"}, wantErr: "-max-days must be at least 1"},
		{name: "max-days-without-follow", args: []string{"-max-days", "3"}, wantErr: "-max-days needs -follow"},
		{name: "negative-follow-interval", args: []string{"-follow", "-checkpoint-dir", "ckpt", "-follow-interval", "-1s"}, wantErr: "-follow-interval must not be negative"},
		{name: "follow-interval-without-follow", args: []string{"-follow-interval", "5s"}, wantErr: "-follow-interval needs -follow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestCampaignFlagsDefaults(t *testing.T) {
	f, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards != 1 {
		t.Errorf("default -shards = %d, want 1 (unsharded)", f.Shards)
	}
	if f.ShardWorkers != 0 {
		t.Errorf("default -shard-workers = %d, want 0 (all at once)", f.ShardWorkers)
	}
	if f.Retries != 3 || !f.Hedge {
		t.Errorf("default policy knobs = retries %d hedge %v, want 3 true", f.Retries, f.Hedge)
	}
	if f.CheckpointEvery != 7 {
		t.Errorf("default -checkpoint-every = %d, want 7", f.CheckpointEvery)
	}
}

func TestCampaignFlagsPolicy(t *testing.T) {
	f, err := parse(t, "-retries", "5", "-hedge=false")
	if err != nil {
		t.Fatal(err)
	}
	p := f.Policy()
	if p.MaxAttempts != 5 || p.Hedge {
		t.Fatalf("Policy() = attempts %d hedge %v, want 5 false", p.MaxAttempts, p.Hedge)
	}
}

// TestShardWorkersClampedToShards: more worker slots than shards is a
// likely flag transposition, not an error — Validate clamps it so the
// run behaves as if -shard-workers equaled -shards.
func TestShardWorkersClampedToShards(t *testing.T) {
	f, err := parse(t, "-shards", "4", "-shard-workers", "16")
	if err != nil {
		t.Fatalf("Validate() = %v, want clamp, not error", err)
	}
	if f.ShardWorkers != 4 {
		t.Fatalf("ShardWorkers = %d after Validate, want clamped to 4", f.ShardWorkers)
	}
}

// TestInvalidMetricsModeFailsAtValidate is the regression test for the
// late-failure bug: an invalid -metrics mode must fail at
// flag-validation time. The second half documents the old failure
// point — EmitMetrics, which runs only AFTER the campaign — still
// rejects the mode, so before the Validate check the first error a user
// saw cost them the whole run.
func TestInvalidMetricsModeFailsAtValidate(t *testing.T) {
	_, err := parse(t, "-metrics", "yaml")
	if err == nil {
		t.Fatal("Validate accepted -metrics yaml; the error would surface only after the campaign")
	}
	if err := EmitMetrics(obs.NewRegistry(), "yaml", ""); err == nil {
		t.Fatal("EmitMetrics accepted mode yaml")
	}
}

// failingWriter accepts writes but fails Close — the profile-file shape
// of a full disk, where the data sits in the page cache and the error
// only surfaces when the file is flushed at close.
type failingWriter struct{ closeErr error }

func (w *failingWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *failingWriter) Close() error                { return w.closeErr }

// TestStopProfilesPropagatesHeapCloseError: StartProfiles' stop function
// used to discard the heap profile's Close error via defer, reporting a
// truncated profile as success.
func TestStopProfilesPropagatesHeapCloseError(t *testing.T) {
	closeErr := errors.New("disk full at close")
	orig := createProfileFile
	defer func() { createProfileFile = orig }()
	createProfileFile = func(path string) (io.WriteCloser, error) {
		if strings.Contains(path, ".heap.") {
			return &failingWriter{closeErr: closeErr}, nil
		}
		return &failingWriter{}, nil
	}

	stop, err := StartProfiles("prefix")
	if err != nil {
		t.Fatal(err)
	}
	err = stop()
	if err == nil {
		t.Fatal("stop() = nil, want the heap profile's close error")
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("stop() = %v, want it to wrap %v", err, closeErr)
	}
}
