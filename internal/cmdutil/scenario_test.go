package cmdutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrdps/internal/scenario"
)

// writeFile writes a test fixture or fails the test.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// paperBaseline is the library spec the success cases load.
var paperBaseline = filepath.Join("..", "..", "scenarios", "paper-baseline.json")

// parseScenario mimics a binary's full flag setup: the shared block plus
// a binary-specific -sites flag the scenario owns, then Parse+Validate.
func parseScenario(t *testing.T, args ...string) (*CampaignFlags, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{})
	sites := fs.Int("sites", 2000, "population")
	_ = sites
	f := RegisterCampaignFlags(fs, "retention help")
	f.ScenarioOwns("sites")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return f, f.Validate()
}

// TestScenarioFlagValidation is the fail-fast table: every bad -scenario
// combination must die at flag validation, before any world build.
func TestScenarioFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // empty = must validate; substrings joined by "&&"
	}{
		{name: "scenario-alone", args: []string{"-scenario", paperBaseline}},
		{name: "scenario-validate-only", args: []string{"-scenario", paperBaseline, "-validate-only"}},
		// Operational flags stay compatible with -scenario.
		{name: "scenario-with-ops-flags", args: []string{
			"-scenario", paperBaseline, "-workers", "2", "-metrics", "text",
			"-checkpoint-dir", "ckpt", "-checkpoint-every", "3"}},

		{name: "validate-only-without-scenario", args: []string{"-validate-only"},
			wantErr: "-validate-only needs -scenario"},
		{name: "scenario-plus-legacy", args: []string{"-scenario", paperBaseline, "-legacy"},
			wantErr: "-scenario is incompatible with -legacy"},
		{name: "scenario-plus-shards", args: []string{"-scenario", paperBaseline, "-shards", "4"},
			wantErr: "-scenario is incompatible with -shards"},
		// The conflict error must name both the scenario file and the flag.
		{name: "scenario-plus-owned-flag", args: []string{"-scenario", paperBaseline, "-sites", "500"},
			wantErr: "paper-baseline.json && -sites && the scenario spec owns that knob"},
		{name: "scenario-plus-retries", args: []string{"-scenario", paperBaseline, "-retries", "5"},
			wantErr: "paper-baseline.json && -retries"},
		{name: "scenario-plus-hedge", args: []string{"-scenario", paperBaseline, "-hedge=false"},
			wantErr: "-hedge"},
		{name: "missing-file", args: []string{"-scenario", "no/such/spec.json"},
			wantErr: "-scenario: && no/such/spec.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseScenario(t, tc.args...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			for _, want := range strings.Split(tc.wantErr, " && ") {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("Validate() = %q, want it to contain %q", err, want)
				}
			}
		})
	}
}

// TestLoadScenarioKindCheck pins the cross-binary guard: a dynamics spec
// handed to the residual binary (or vice versa) must fail with an error
// naming both kinds.
func TestLoadScenarioKindCheck(t *testing.T) {
	f, err := parseScenario(t, "-scenario", paperBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadScenario(scenario.CampaignResidual); err == nil ||
		!strings.Contains(err.Error(), "dynamics campaign") {
		t.Errorf("LoadScenario(residual) on a dynamics spec = %v, want kind mismatch", err)
	}
	comp, err := f.LoadScenario(scenario.CampaignDynamics)
	if err != nil {
		t.Fatalf("LoadScenario(dynamics): %v", err)
	}
	if comp.Name() != "paper-baseline" {
		t.Errorf("loaded scenario %q, want paper-baseline", comp.Name())
	}
}

// TestLoadScenarioWorkersPrecedence pins the operational-override rule:
// a spec-pinned Workers lands in the flag block, but an explicit
// -workers on the command line wins (it is an ops knob; for scenarios
// that pin workers for determinism the results are on the user).
func TestLoadScenarioWorkersPrecedence(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "pinned.json")
	writeFile(t, spec, `{
  "apiVersion": "rrdps/v1",
  "kind": "Scenario",
  "metadata": { "name": "pinned" },
  "campaign": { "kind": "dynamics", "workers": 1, "snapWindow": 9 }
}`)

	f, err := parseScenario(t, "-scenario", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadScenario(scenario.CampaignDynamics); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 1 || f.SnapWindow != 9 {
		t.Errorf("spec-pinned workers/snapWindow not applied: %d/%d", f.Workers, f.SnapWindow)
	}

	f, err = parseScenario(t, "-scenario", spec, "-workers", "6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadScenario(scenario.CampaignDynamics); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 6 {
		t.Errorf("explicit -workers overridden by spec: got %d, want 6", f.Workers)
	}
	if f.SnapWindow != 9 {
		t.Errorf("spec snapWindow should still apply: got %d", f.SnapWindow)
	}
}

// TestLoadScenarioWithoutScenario is the no-op path every flag-driven
// run takes.
func TestLoadScenarioWithoutScenario(t *testing.T) {
	f, err := parseScenario(t)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := f.LoadScenario(scenario.CampaignDynamics)
	if err != nil || comp != nil {
		t.Errorf("LoadScenario without -scenario = (%v, %v), want (nil, nil)", comp, err)
	}
}
