// Package cmdutil holds the observability plumbing shared by the cmd
// binaries: emitting a metrics dump as text or JSON, and capturing
// CPU/heap profiles around a campaign body.
package cmdutil

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rrdps/internal/core/report"
	"rrdps/internal/obs"
)

// EmitMetrics writes a registry dump in the given mode ("text" or
// "json") to path, or to stdout when path is empty. An empty mode is a
// no-op, so callers can pass the -metrics flag value straight through.
func EmitMetrics(r *obs.Registry, mode, path string) error {
	var body string
	switch mode {
	case "":
		return nil
	case "text":
		body = report.Observability(r.Dump())
	case "json":
		raw, err := json.MarshalIndent(r.Dump(), "", "  ")
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		body = string(raw) + "\n"
	default:
		return fmt.Errorf("metrics: unknown mode %q (want text or json)", mode)
	}
	if path == "" {
		_, err := os.Stdout.WriteString(body)
		return err
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}

// StartProfiles begins a CPU profile at <prefix>.cpu.pprof and returns a
// stop function that ends it and writes a heap profile to
// <prefix>.heap.pprof. An empty prefix disables profiling (the stop
// function is still non-nil and safe to call).
func StartProfiles(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("pprof: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer heap.Close()
		runtime.GC() // fresh allocation picture before the heap snapshot
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		return nil
	}, nil
}
