// Package cmdutil holds the plumbing shared by the cmd binaries: the
// common campaign flag block, emitting a metrics dump as text or JSON,
// and capturing CPU/heap profiles around a campaign body.
package cmdutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rrdps/internal/core/report"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/obs"
	"rrdps/internal/scenario"
)

// CampaignFlags is the flag block shared by cmd/dpsmeasure and
// cmd/rrscan — parallelism, snapshot retention, the retry policy knobs,
// observability output, and campaign durability. It used to be
// copy-pasted into both binaries, with the two help texts drifting
// apart; registering it here keeps the flags and their documentation
// identical.
type CampaignFlags struct {
	// Workers is the parallelism of every measurement loop.
	Workers int
	// SnapWindow is the snapshot-store retention bound.
	SnapWindow int
	// Retries / Hedge shape the retry policy (see Policy).
	Retries int
	Hedge   bool
	// Metrics / MetricsOut select the post-campaign observability dump.
	Metrics    string
	MetricsOut string
	// PprofPrefix enables CPU/heap profiles around the campaign body.
	PprofPrefix string
	// CheckpointDir / CheckpointEvery / Resume control campaign
	// durability (see internal/snapdisk).
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// Shards / ShardWorkers control shard-parallel execution (see
	// internal/shardrun). Shards == 1 keeps the unsharded path.
	Shards       int
	ShardWorkers int
	// Legacy selects the deprecated map-based batch pipeline, kept only
	// for cross-checking the streaming engine. It supports none of the
	// durability or daemon machinery.
	Legacy bool
	// Follow / MaxDays / FollowInterval control daemon mode: the campaign
	// keeps appending collection rounds past any configured horizon,
	// checkpointing on SIGTERM, so a `rrserve -follow` reader can tail
	// the checkpoint directory.
	Follow         bool
	MaxDays        int
	FollowInterval time.Duration
	// Scenario is a declarative spec file (see internal/scenario) that
	// replaces the experiment-shaping flags; ValidateOnly parses and
	// compiles it, prints its identity, and exits without running.
	Scenario     string
	ValidateOnly bool

	// fs is the flag set the block was registered on; conflict detection
	// walks it to find explicitly-set flags.
	fs *flag.FlagSet
	// scenarioOwned names the binary-specific flags a scenario spec
	// controls (see ScenarioOwns).
	scenarioOwned []string
}

// RegisterCampaignFlags registers the shared campaign flag block on fs.
// snapWindowHelp documents the binary's retention unit (days vs
// collection rounds); every other flag reads identically in both
// binaries.
func RegisterCampaignFlags(fs *flag.FlagSet, snapWindowHelp string) *CampaignFlags {
	f := &CampaignFlags{}
	fs.IntVar(&f.Workers, "workers", runtime.GOMAXPROCS(0), "parallelism of the measurement loops (1 = serial; results are identical either way)")
	fs.IntVar(&f.SnapWindow, "snap-window", 0, snapWindowHelp)
	fs.IntVar(&f.Retries, "retries", 3, "attempts per query (1 = no retries); backoff and health sidelining follow the default policy")
	fs.BoolVar(&f.Hedge, "hedge", true, "hedge retried queries to an alternate nameserver when one is available")
	fs.StringVar(&f.Metrics, "metrics", "", "emit an observability dump after the campaign: text or json")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the -metrics dump to this file instead of stdout")
	fs.StringVar(&f.PprofPrefix, "pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles around the campaign body")
	fs.StringVar(&f.CheckpointDir, "checkpoint-dir", "", "directory for durable campaign state (checkpoints + write-ahead log); empty disables durability")
	fs.IntVar(&f.CheckpointEvery, "checkpoint-every", 7, "world days between full checkpoints (the write-ahead log covers the rounds in between)")
	fs.BoolVar(&f.Resume, "resume", false, "resume the campaign recorded in -checkpoint-dir instead of starting over (same seed and configuration required)")
	fs.IntVar(&f.Shards, "shards", 1, "partition the population into this many deterministic shards, each an independent campaign whose results merge into one report (1 = unsharded)")
	fs.IntVar(&f.ShardWorkers, "shard-workers", 0, "how many shard campaigns run concurrently (0 = all at once); only meaningful with -shards > 1")
	fs.BoolVar(&f.Legacy, "legacy", false, "run the deprecated map-based batch pipeline (cross-checking only; no durability, sharding, or daemon mode)")
	fs.BoolVar(&f.Follow, "follow", false, "daemon mode: keep appending collection rounds until SIGTERM (or -max-days), sealing each into -checkpoint-dir for rrserve -follow readers")
	fs.IntVar(&f.MaxDays, "max-days", 0, "with -follow: stop after this many appended collection rounds (0 = run until SIGTERM)")
	fs.DurationVar(&f.FollowInterval, "follow-interval", 0, "with -follow: pause between appended rounds (0 = append continuously)")
	fs.StringVar(&f.Scenario, "scenario", "", "run the campaign a declarative scenario spec describes (see scenarios/); mutually exclusive with the experiment-shaping flags")
	fs.BoolVar(&f.ValidateOnly, "validate-only", false, "with -scenario: parse, validate, and compile the spec, print its name and hash, and exit without running")
	f.fs = fs
	return f
}

// ScenarioOwns names the binary-specific experiment-shaping flags a
// scenario spec controls (e.g. "sites", "days", "seed"). When -scenario
// is given, Validate rejects any of these set explicitly on the command
// line: a spec describes the whole experiment, and a half-overridden
// spec would report a hash that doesn't match what actually ran. The
// shared policy flags -retries and -hedge are always owned; operational
// flags (workers, checkpointing, metrics, ...) stay available.
func (f *CampaignFlags) ScenarioOwns(names ...string) {
	f.scenarioOwned = append(f.scenarioOwned, names...)
}

// explicitlySet reports whether the named flag was set on the command
// line (as opposed to holding its default).
func (f *CampaignFlags) explicitlySet(name string) bool {
	if f.fs == nil {
		return false
	}
	set := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}

// Validate checks the flag block's invariants, returning a usage error.
// Every combination a later stage would reject must fail here, before
// any campaign work starts: -metrics used to be checked only by
// EmitMetrics after the campaign finished, which discarded a multi-hour
// run's dump over a flag typo.
func (f *CampaignFlags) Validate() error {
	if f.Workers <= 0 || f.Retries <= 0 {
		return fmt.Errorf("-workers and -retries must be positive")
	}
	switch f.Metrics {
	case "", "text", "json":
	default:
		return fmt.Errorf("-metrics: unknown mode %q (want text or json)", f.Metrics)
	}
	if f.MetricsOut != "" && f.Metrics == "" {
		return fmt.Errorf("-metrics-out requires -metrics (text or json)")
	}
	if f.CheckpointEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive")
	}
	if f.Resume && f.CheckpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if f.Shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	if f.ShardWorkers < 0 {
		return fmt.Errorf("-shard-workers must not be negative")
	}
	if f.ShardWorkers != 0 && f.Shards == 1 {
		// A typo like `-shard-workers 8` without `-shards` must not
		// silently run unsharded while looking like a sharded run.
		return fmt.Errorf("-shard-workers needs -shards > 1")
	}
	if f.ShardWorkers > f.Shards {
		// More slots than shards is harmless but almost certainly a
		// transposed pair of flags; clamp and say so.
		fmt.Fprintf(os.Stderr, "note: -shard-workers %d exceeds -shards %d; clamping to %d\n",
			f.ShardWorkers, f.Shards, f.Shards)
		f.ShardWorkers = f.Shards
	}
	if f.Legacy {
		// The legacy pipeline predates the snapstore and supports none of
		// the machinery layered on it; rejecting here beats a panic deep
		// inside the campaign.
		if f.CheckpointDir != "" {
			return fmt.Errorf("-legacy is incompatible with -checkpoint-dir (durability requires the streaming pipeline)")
		}
		if f.Shards > 1 {
			return fmt.Errorf("-legacy is incompatible with -shards > 1")
		}
		if f.Follow {
			return fmt.Errorf("-follow is incompatible with -legacy (daemon mode requires the streaming engine)")
		}
	}
	if f.Follow {
		if f.CheckpointDir == "" {
			// Follow mode without a checkpoint directory would seal rounds
			// into thin air — no rrserve -follow reader could ever attach.
			return fmt.Errorf("-follow requires -checkpoint-dir (readers tail the sealed rounds there)")
		}
		if f.Shards > 1 {
			return fmt.Errorf("-follow is incompatible with -shards > 1")
		}
	}
	if f.MaxDays < 0 {
		return fmt.Errorf("-max-days must be at least 1 (0 = run until SIGTERM)")
	}
	if f.MaxDays != 0 && !f.Follow {
		return fmt.Errorf("-max-days needs -follow")
	}
	if f.FollowInterval < 0 {
		return fmt.Errorf("-follow-interval must not be negative")
	}
	if f.FollowInterval != 0 && !f.Follow {
		return fmt.Errorf("-follow-interval needs -follow")
	}
	if f.ValidateOnly && f.Scenario == "" {
		return fmt.Errorf("-validate-only needs -scenario")
	}
	if f.Scenario != "" {
		if f.Legacy {
			return fmt.Errorf("-scenario is incompatible with -legacy (scenario campaigns run the streaming pipeline)")
		}
		if f.Shards > 1 {
			return fmt.Errorf("-scenario is incompatible with -shards > 1 (scenario campaigns run unsharded so attack load and provenance stay in one engine)")
		}
		// The spec owns the experiment shape; an explicitly-set owned flag
		// would silently disagree with the spec hash recorded in the
		// campaign's provenance. Fail naming both sides.
		for _, name := range append([]string{"retries", "hedge"}, f.scenarioOwned...) {
			if f.explicitlySet(name) {
				return fmt.Errorf("-scenario %s conflicts with explicit -%s: the scenario spec owns that knob (edit the spec instead)", f.Scenario, name)
			}
		}
		// Fail on an unreadable file now, at flag-validation time, not
		// after a world build.
		if _, err := os.Stat(f.Scenario); err != nil {
			return fmt.Errorf("-scenario: %w", err)
		}
	}
	return nil
}

// LoadScenario loads, compiles, and kind-checks the -scenario spec;
// wantKind is scenario.CampaignDynamics or scenario.CampaignResidual
// (the calling binary's campaign). It returns (nil, nil) when no
// scenario was requested. Spec-pinned Workers/SnapWindow land in the
// flag block unless the user explicitly set those flags — they are
// operational knobs, so a command-line override is allowed and wins.
func (f *CampaignFlags) LoadScenario(wantKind string) (*scenario.Compiled, error) {
	if f.Scenario == "" {
		return nil, nil
	}
	spec, err := scenario.Load(f.Scenario)
	if err != nil {
		return nil, err
	}
	comp := scenario.Compile(spec)
	if comp.Kind != wantKind {
		return nil, fmt.Errorf("%s: scenario %q is a %s campaign; this binary runs %s campaigns",
			f.Scenario, comp.Name(), comp.Kind, wantKind)
	}
	if comp.Workers > 0 && !f.explicitlySet("workers") {
		f.Workers = comp.Workers
	}
	if comp.SnapWindow > 0 && !f.explicitlySet("snap-window") {
		f.SnapWindow = comp.SnapWindow
	}
	return comp, nil
}

// Policy builds the retry policy the flag block describes.
func (f *CampaignFlags) Policy() dnsresolver.Policy {
	p := dnsresolver.DefaultPolicy()
	p.MaxAttempts = f.Retries
	p.Hedge = f.Hedge
	return p
}

// RenderMetrics renders a registry dump in the given mode ("text" or
// "json"). The lookup service's /metrics endpoint and EmitMetrics share
// this path so the two outputs cannot drift.
func RenderMetrics(r *obs.Registry, mode string) (string, error) {
	switch mode {
	case "text":
		return report.Observability(r.Dump()), nil
	case "json":
		raw, err := json.MarshalIndent(r.Dump(), "", "  ")
		if err != nil {
			return "", fmt.Errorf("metrics: %w", err)
		}
		return string(raw) + "\n", nil
	default:
		return "", fmt.Errorf("metrics: unknown mode %q (want text or json)", mode)
	}
}

// EmitMetrics writes a registry dump in the given mode ("text" or
// "json") to path, or to stdout when path is empty. An empty mode is a
// no-op, so callers can pass the -metrics flag value straight through.
func EmitMetrics(r *obs.Registry, mode, path string) error {
	if mode == "" {
		return nil
	}
	body, err := RenderMetrics(r, mode)
	if err != nil {
		return err
	}
	if path == "" {
		_, err := os.Stdout.WriteString(body)
		return err
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}

// createProfileFile creates a profile output file. A variable so the
// tests can substitute a writer whose Close fails — the full-disk case
// where the kernel reports the truncation only at close time.
var createProfileFile = func(path string) (io.WriteCloser, error) {
	return os.Create(path)
}

// StartProfiles begins a CPU profile at <prefix>.cpu.pprof and returns a
// stop function that ends it and writes a heap profile to
// <prefix>.heap.pprof. An empty prefix disables profiling (the stop
// function is still non-nil and safe to call).
func StartProfiles(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpu, err := createProfileFile(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("pprof: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		heap, err := createProfileFile(prefix + ".heap.pprof")
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		runtime.GC() // fresh allocation picture before the heap snapshot
		if err := pprof.WriteHeapProfile(heap); err != nil {
			heap.Close()
			return fmt.Errorf("pprof: %w", err)
		}
		// Close errors matter here: on a full disk the write above can
		// "succeed" into the page cache and the truncation only surfaces
		// at close — reporting that as success hands the user a corrupt
		// profile.
		if err := heap.Close(); err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		return nil
	}, nil
}
