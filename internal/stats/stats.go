// Package stats provides the small statistical toolkit the measurement
// pipeline reports with: empirical CDFs (Fig. 5), histograms, and summary
// helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied; input order is preserved for
// the caller).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x. An empty
// CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample v with At(v) >= q, clamping q to
// (0,1]. An empty CDF returns NaN.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points renders the CDF as (x, p) steps suitable for plotting: one point
// per distinct sample value.
func (c *CDF) Points() []Point {
	var out []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		out = append(out, Point{X: c.sorted[i], P: float64(i+1) / n})
	}
	return out
}

// Point is one step of an empirical CDF.
type Point struct {
	X float64
	P float64
}

// Mean returns the arithmetic mean of samples, or NaN when empty.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// MeanInts is Mean over integers.
func MeanInts(samples []int) float64 {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Mean(fs)
}

// Percent formats part/whole as "12.3%", rendering 0/0 as "0.0%".
func Percent(part, whole int) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Ratio returns part/whole, or 0 when whole is 0.
func Ratio(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Histogram counts occurrences of integer-valued samples in unit buckets
// between Min and Max inclusive, with outliers clamped to the edges.
type Histogram struct {
	Min, Max int
	counts   []int
	total    int
}

// NewHistogram creates a histogram over [min, max]. It panics when
// min > max.
func NewHistogram(min, max int) *Histogram {
	if min > max {
		panic(fmt.Sprintf("stats: NewHistogram(%d, %d)", min, max))
	}
	return &Histogram{Min: min, Max: max, counts: make([]int, max-min+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	h.counts[v-h.Min]++
	h.total++
}

// Count returns the number of samples in bucket v.
func (h *Histogram) Count(v int) int {
	if v < h.Min || v > h.Max {
		return 0
	}
	return h.counts[v-h.Min]
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// String renders a compact text bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%6d | %-40s %d\n", h.Min+i, strings.Repeat("#", bar), c)
	}
	return b.String()
}
