package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{3, 0.8},
		{10, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Len() != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty Quantile should be NaN")
	}
	if c.Points() != nil {
		t.Fatal("empty Points should be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		q, want float64
	}{
		{0.25, 1},
		{0.5, 2},
		{0.75, 3},
		{1.0, 4},
		{0, 1},
		{2, 4},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] != (Point{X: 1, P: 2.0 / 3}) || pts[1] != (Point{X: 2, P: 1}) {
		t.Fatalf("points = %v", pts)
	}
}

// Properties: CDF is monotone non-decreasing and At(max) == 1.
func TestCDFQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		count := int(n)%50 + 1
		samples := make([]float64, count)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.At(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return c.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are approximately inverse.
func TestCDFQuantileAtInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n uint8, qRaw uint8) bool {
		count := int(n)%40 + 1
		samples := make([]float64, count)
		for i := range samples {
			samples[i] = rng.Float64() * 100
		}
		c := NewCDF(samples)
		q := (float64(qRaw) + 1) / 257 // (0,1)
		v := c.Quantile(q)
		return c.At(v) >= q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if got := MeanInts([]int{2, 4}); got != 3 {
		t.Fatalf("MeanInts = %v", got)
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(1, 4); got != "25.0%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(0, 0); got != "0.0%" {
		t.Fatalf("Percent(0,0) = %q", got)
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Fatalf("Ratio(1,0) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 5)
	for _, v := range []int{0, 1, 1, 3, 7, -2} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Fatalf("Count(1) = %d", h.Count(1))
	}
	if h.Count(5) != 1 { // 7 clamped
		t.Fatalf("Count(5) = %d", h.Count(5))
	}
	if h.Count(0) != 2 { // 0 and clamped -2
		t.Fatalf("Count(0) = %d", h.Count(0))
	}
	if h.Count(99) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("String() missing bars")
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(5, 0) did not panic")
		}
	}()
	NewHistogram(5, 0)
}
