package dnszone

import (
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

func newTestZone(t *testing.T) *Zone {
	t.Helper()
	return New("example.com", dnsmsg.SOAData{
		MName:  "ns1.example.com",
		RName:  "admin.example.com",
		Serial: 1,
	})
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestLookupAnswer(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.2")))

	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if res.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want answer", res.Kind)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %v", res.Records)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	res := z.Lookup("missing.example.com", dnsmsg.TypeA)
	if res.Kind != KindNXDomain {
		t.Fatalf("Kind = %v, want nxdomain", res.Kind)
	}
	if res.SOA.Type() != dnsmsg.TypeSOA {
		t.Fatal("NXDOMAIN result missing SOA")
	}
}

func TestLookupNoData(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	res := z.Lookup("www.example.com", dnsmsg.TypeMX)
	if res.Kind != KindNoData {
		t.Fatalf("Kind = %v, want nodata", res.Kind)
	}
}

func TestLookupEmptyNonTerminalIsNoData(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("a.b.example.com", time.Minute, addr("10.0.0.1")))
	// "b.example.com" has no records but exists as a node.
	res := z.Lookup("b.example.com", dnsmsg.TypeA)
	if res.Kind != KindNoData {
		t.Fatalf("Kind = %v, want nodata for empty non-terminal", res.Kind)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewCNAME("www.example.com", time.Minute, "edge.example.com"))
	z.MustAdd(dnsmsg.NewA("edge.example.com", time.Minute, addr("10.9.9.9")))

	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if res.Kind != KindCNAME {
		t.Fatalf("Kind = %v, want cname", res.Kind)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %v, want CNAME + A", res.Records)
	}
	if res.Records[0].Type() != dnsmsg.TypeCNAME || res.Records[1].Type() != dnsmsg.TypeA {
		t.Fatalf("chain order wrong: %v", res.Records)
	}
}

func TestLookupCNAMEChainOutOfZone(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewCNAME("www.example.com", time.Minute, "x.cdn.incapdns.net"))
	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if res.Kind != KindCNAME || len(res.Records) != 1 {
		t.Fatalf("res = %+v, want bare CNAME", res)
	}
}

func TestLookupCNAMELoopTerminates(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewCNAME("a.example.com", time.Minute, "b.example.com"))
	z.MustAdd(dnsmsg.NewCNAME("b.example.com", time.Minute, "a.example.com"))
	done := make(chan Result, 1)
	go func() { done <- z.Lookup("a.example.com", dnsmsg.TypeA) }()
	select {
	case res := <-done:
		if res.Kind != KindCNAME {
			t.Fatalf("Kind = %v", res.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CNAME loop lookup did not terminate")
	}
}

func TestLookupQueryForCNAMEItself(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewCNAME("www.example.com", time.Minute, "edge.example.com"))
	res := z.Lookup("www.example.com", dnsmsg.TypeCNAME)
	if res.Kind != KindAnswer || len(res.Records) != 1 {
		t.Fatalf("res = %+v, want direct CNAME answer", res)
	}
}

func TestLookupReferral(t *testing.T) {
	// A TLD-style zone delegating example.com to external nameservers.
	z := New("com", dnsmsg.SOAData{MName: "a.gtld", RName: "hostmaster.com", Serial: 1})
	z.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "kate.ns.cloudflare.com"))
	z.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "rob.ns.cloudflare.com"))

	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if res.Kind != KindReferral {
		t.Fatalf("Kind = %v, want referral", res.Kind)
	}
	if len(res.Records) != 2 {
		t.Fatalf("NS records = %v", res.Records)
	}

	// Query exactly at the cut is also a referral.
	res = z.Lookup("example.com", dnsmsg.TypeA)
	if res.Kind != KindReferral {
		t.Fatalf("at-cut Kind = %v, want referral", res.Kind)
	}
}

func TestLookupReferralWithGlue(t *testing.T) {
	z := New("com", dnsmsg.SOAData{MName: "a.gtld", RName: "hostmaster.com", Serial: 1})
	z.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "ns1.example.com"))
	z.MustAdd(dnsmsg.NewA("ns1.example.com", time.Hour, addr("10.1.1.1")))

	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if res.Kind != KindReferral {
		t.Fatalf("Kind = %v", res.Kind)
	}
	if len(res.Glue) != 1 || res.Glue[0].Data.(dnsmsg.AData).Addr != addr("10.1.1.1") {
		t.Fatalf("glue = %v", res.Glue)
	}
}

func TestApexNSIsNotReferral(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "ns1.example.com"))
	res := z.Lookup("example.com", dnsmsg.TypeNS)
	if res.Kind != KindAnswer {
		t.Fatalf("apex NS lookup Kind = %v, want answer", res.Kind)
	}
}

func TestLookupOutsideZonePanics(t *testing.T) {
	z := newTestZone(t)
	defer func() {
		if recover() == nil {
			t.Fatal("lookup outside zone did not panic")
		}
	}()
	z.Lookup("other.org", dnsmsg.TypeA)
}

func TestAddOutsideZoneFails(t *testing.T) {
	z := newTestZone(t)
	err := z.Add(dnsmsg.NewA("www.other.org", time.Minute, addr("10.0.0.1")))
	if err == nil {
		t.Fatal("Add outside zone succeeded")
	}
}

func TestSetReplacesAndRemoves(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	if err := z.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.9"))); err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("www.example.com", dnsmsg.TypeA)
	if len(res.Records) != 1 || res.Records[0].Data.(dnsmsg.AData).Addr != addr("10.0.0.9") {
		t.Fatalf("after Set: %v", res.Records)
	}
	if err := z.Set("www.example.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if res := z.Lookup("www.example.com", dnsmsg.TypeA); res.Kind != KindNXDomain {
		t.Fatalf("after empty Set: %v, want nxdomain", res.Kind)
	}
}

func TestSetMismatchedRecordFails(t *testing.T) {
	z := newTestZone(t)
	err := z.Set("www.example.com", dnsmsg.TypeA,
		dnsmsg.NewA("other.example.com", time.Minute, addr("10.0.0.1")))
	if err == nil {
		t.Fatal("Set with mismatched name succeeded")
	}
}

func TestRemoveName(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	z.MustAdd(dnsmsg.NewMX("www.example.com", time.Minute, 10, "mail.example.com"))
	z.RemoveName("www.example.com")
	if res := z.Lookup("www.example.com", dnsmsg.TypeA); res.Kind != KindNXDomain {
		t.Fatalf("after RemoveName: %v", res.Kind)
	}
}

func TestSerialBumpsOnMutation(t *testing.T) {
	z := newTestZone(t)
	s0 := z.Serial()
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	if z.Serial() <= s0 {
		t.Fatal("serial did not bump on Add")
	}
	s1 := z.Serial()
	z.Remove("www.example.com", dnsmsg.TypeA)
	if z.Serial() <= s1 {
		t.Fatal("serial did not bump on Remove")
	}
	if got := z.SOA().Data.(dnsmsg.SOAData).Serial; got != z.Serial() {
		t.Fatalf("SOA serial %d != zone serial %d", got, z.Serial())
	}
}

func TestNamesSorted(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("b.example.com", time.Minute, addr("10.0.0.1")))
	z.MustAdd(dnsmsg.NewA("a.example.com", time.Minute, addr("10.0.0.2")))
	names := z.Names()
	if len(names) != 2 || names[0] != "a.example.com" || names[1] != "b.example.com" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	z := newTestZone(t)
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, addr("10.0.0.1")))
	got := z.Get("www.example.com", dnsmsg.TypeA)
	got[0] = dnsmsg.NewA("www.example.com", time.Minute, addr("99.9.9.9"))
	again := z.Get("www.example.com", dnsmsg.TypeA)
	if again[0].Data.(dnsmsg.AData).Addr != addr("10.0.0.1") {
		t.Fatal("Get leaked internal slice")
	}
}

func TestResultKindString(t *testing.T) {
	kinds := []ResultKind{KindAnswer, KindCNAME, KindReferral, KindNoData, KindNXDomain, ResultKind(0)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty String()", int(k))
		}
	}
}
