package dnszone

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

const sampleZoneFile = `
$ORIGIN example.com.
$TTL 600
; a comment line
@ 900 IN SOA ns1 hostmaster 7 7200 3600 1209600 300
@ 86400 IN NS ns1
@ 86400 IN NS ns2.elsewhere.net.
ns1 86400 IN A 10.0.0.53
www 300 IN A 10.0.0.80
www 300 IN A 10.0.0.81
blog IN CNAME www           ; relative target
@ 3600 IN MX 10 mail
mail IN A 10.0.0.25
@ 60 IN TXT "v=spf1 -all" "probe"
v6 IN AAAA 2001:db8::1
`

func TestParseZone(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin() != "example.com" {
		t.Fatalf("origin = %s", z.Origin())
	}
	soa := z.SOA().Data.(dnsmsg.SOAData)
	if soa.MName != "ns1.example.com" || soa.Minimum != 300 {
		t.Fatalf("SOA = %+v", soa)
	}
	www := z.Get("www.example.com", dnsmsg.TypeA)
	if len(www) != 2 || www[0].TTL != 300*time.Second {
		t.Fatalf("www A = %v", www)
	}
	cname := z.Get("blog.example.com", dnsmsg.TypeCNAME)
	if len(cname) != 1 || cname[0].Data.(dnsmsg.CNAMEData).Target != "www.example.com" {
		t.Fatalf("blog CNAME = %v", cname)
	}
	if cname[0].TTL != 600*time.Second {
		t.Fatalf("default TTL not applied: %v", cname[0].TTL)
	}
	ns := z.Get("example.com", dnsmsg.TypeNS)
	if len(ns) != 2 {
		t.Fatalf("NS = %v", ns)
	}
	foundExternal := false
	for _, rr := range ns {
		if rr.Data.(dnsmsg.NSData).Host == "ns2.elsewhere.net" {
			foundExternal = true
		}
	}
	if !foundExternal {
		t.Fatal("absolute NS target lost")
	}
	mx := z.Get("example.com", dnsmsg.TypeMX)
	if len(mx) != 1 || mx[0].Data.(dnsmsg.MXData).Host != "mail.example.com" {
		t.Fatalf("MX = %v", mx)
	}
	txt := z.Get("example.com", dnsmsg.TypeTXT)
	if len(txt) != 1 || !reflect.DeepEqual(txt[0].Data.(dnsmsg.TXTData).Strings, []string{"v=spf1 -all", "probe"}) {
		t.Fatalf("TXT = %v", txt)
	}
	v6 := z.Get("v6.example.com", dnsmsg.TypeAAAA)
	if len(v6) != 1 || v6[0].Data.(dnsmsg.AAAAData).Addr != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("AAAA = %v", v6)
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := z.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := ParseZone(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if z2.Origin() != z.Origin() {
		t.Fatalf("origin changed: %s vs %s", z2.Origin(), z.Origin())
	}
	names := z.Names()
	if !reflect.DeepEqual(z2.Names(), names) {
		t.Fatalf("names changed: %v vs %v", z2.Names(), names)
	}
	for _, name := range names {
		for _, typ := range []dnsmsg.Type{
			dnsmsg.TypeA, dnsmsg.TypeAAAA, dnsmsg.TypeNS,
			dnsmsg.TypeCNAME, dnsmsg.TypeMX, dnsmsg.TypeTXT,
		} {
			if !reflect.DeepEqual(z2.Get(name, typ), z.Get(name, typ)) {
				t.Fatalf("%s %s changed:\n%v\nvs\n%v", name, typ, z2.Get(name, typ), z.Get(name, typ))
			}
		}
	}
}

func TestParseZoneSynthesizesSOA(t *testing.T) {
	z, err := ParseZone(strings.NewReader("www 300 IN A 10.0.0.1\n"), "shop.net")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin() != "shop.net" {
		t.Fatalf("origin = %s", z.Origin())
	}
	soa := z.SOA().Data.(dnsmsg.SOAData)
	if soa.MName != "ns1.shop.net" || soa.Minimum != 300 {
		t.Fatalf("synthesized SOA = %+v", soa)
	}
}

func TestParseZoneErrors(t *testing.T) {
	cases := []string{
		"$ORIGIN\n",
		"$TTL abc\n",
		"www 300 IN A not-an-ip\n",
		"www 300 IN A 2001:db8::1\n",
		"www 300 IN AAAA 10.0.0.1\n",
		"www 300 IN MX 10\n",
		"www 300 IN MX -2 mail\n",
		"www 300 IN WKS 10.0.0.1\n",
		"www 300 IN SOA ns1 hm 1 2 3\n",
		"justtwo fields\n",
		"bad..name 300 IN A 10.0.0.1\n",
		"outside.org. 300 IN A 10.0.0.1\n", // outside the zone
	}
	for _, c := range cases {
		if _, err := ParseZone(strings.NewReader(c), "example.com"); err == nil {
			t.Errorf("ParseZone(%q) succeeded", c)
		}
	}
}

func TestParseZoneServedByServer(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZoneFile), "")
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("blog.example.com", dnsmsg.TypeA)
	if res.Kind != KindCNAME || len(res.Records) != 3 { // CNAME + 2 A
		t.Fatalf("lookup of parsed zone: %+v", res)
	}
}
