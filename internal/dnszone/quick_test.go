package dnszone

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"rrdps/internal/dnsmsg"
)

// TestRandomOpsQuick drives a zone through random add/set/remove sequences
// and checks invariants after every operation: lookups never panic, Answer
// results agree with Get, and the serial strictly increases across
// mutations.
func TestRandomOpsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	labels := []string{"www", "mail", "dev", "a.b", "deep.er.sub"}
	name := func(i int) dnsmsg.Name {
		return dnsmsg.MustParseName(labels[i%len(labels)] + ".example.com")
	}
	f := func(ops []byte) bool {
		z := New("example.com", dnsmsg.SOAData{MName: "ns1.example.com", RName: "r", Serial: 1})
		lastSerial := z.Serial()
		for i, op := range ops {
			n := name(int(op))
			switch op % 4 {
			case 0:
				addr := netip.AddrFrom4([4]byte{10, 0, byte(i), byte(op)})
				z.MustAdd(dnsmsg.NewA(n, time.Minute, addr))
			case 1:
				addr := netip.AddrFrom4([4]byte{10, 1, byte(i), byte(op)})
				if err := z.Set(n, dnsmsg.TypeA, dnsmsg.NewA(n, time.Minute, addr)); err != nil {
					return false
				}
			case 2:
				z.Remove(n, dnsmsg.TypeA)
			case 3:
				z.RemoveName(n)
			}
			if s := z.Serial(); s <= lastSerial {
				return false
			} else {
				lastSerial = s
			}
			// Lookup/Get consistency for every known name.
			for j := range labels {
				q := name(j)
				res := z.Lookup(q, dnsmsg.TypeA)
				got := z.Get(q, dnsmsg.TypeA)
				switch res.Kind {
				case KindAnswer:
					if len(got) == 0 || len(res.Records) != len(got) {
						return false
					}
				case KindNXDomain, KindNoData:
					if len(got) != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			ops := make([]byte, r.Intn(24)+1)
			r.Read(ops)
			vals[0] = reflect.ValueOf(ops)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDelegationNeverShadowsApex: adding arbitrary delegations below the
// apex never changes apex lookups.
func TestDelegationNeverShadowsApex(t *testing.T) {
	z := New("example.com", dnsmsg.SOAData{MName: "ns1", RName: "r", Serial: 1})
	apexAddr := netip.MustParseAddr("10.0.0.1")
	z.MustAdd(dnsmsg.NewA("example.com", time.Minute, apexAddr))
	for i := 0; i < 20; i++ {
		sub := dnsmsg.MustParseName(fmt.Sprintf("child%d.example.com", i))
		z.MustAdd(dnsmsg.NewNS(sub, time.Hour, "ns.elsewhere.net"))
		res := z.Lookup("example.com", dnsmsg.TypeA)
		if res.Kind != KindAnswer || res.Records[0].Data.(dnsmsg.AData).Addr != apexAddr {
			t.Fatalf("apex lookup broke after %d delegations: %+v", i+1, res)
		}
	}
}
