// Package dnszone models authoritative DNS zone data and the RFC 1034
// lookup algorithm over it: answers, CNAME chains, delegation referrals,
// NODATA, and NXDOMAIN.
//
// Zones are mutable because the simulated world constantly rewrites them:
// website admins repoint NS records at DPS providers, providers provision
// and purge customer records, and the residual-resolution vulnerability is
// literally a zone entry that outlives its welcome.
package dnszone

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rrdps/internal/dnsmsg"
)

// soaTTL is the TTL attached to SOA records served in authority sections;
// it doubles as the negative-caching TTL.
const soaTTL = 900 * time.Second

// ResultKind classifies the outcome of a zone lookup.
type ResultKind int

// Lookup outcomes.
const (
	// KindAnswer: records of the requested type exist at the name.
	KindAnswer ResultKind = iota + 1
	// KindCNAME: the name is an alias; Records holds the CNAME chain
	// (and, if the chain ends inside this zone, the final answer).
	KindCNAME
	// KindReferral: the name falls under a delegated child zone; Records
	// holds the NS RRset of the cut and Glue any in-zone A records for
	// the delegated nameservers.
	KindReferral
	// KindNoData: the name exists but has no records of the type.
	KindNoData
	// KindNXDomain: the name does not exist in the zone.
	KindNXDomain
)

// String implements fmt.Stringer.
func (k ResultKind) String() string {
	switch k {
	case KindAnswer:
		return "answer"
	case KindCNAME:
		return "cname"
	case KindReferral:
		return "referral"
	case KindNoData:
		return "nodata"
	case KindNXDomain:
		return "nxdomain"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Result is the outcome of Zone.Lookup.
type Result struct {
	Kind    ResultKind
	Records []dnsmsg.RR
	Glue    []dnsmsg.RR
	// SOA is the zone's SOA record, populated for NoData and NXDomain so
	// servers can fill the authority section.
	SOA dnsmsg.RR
}

// Zone holds the records of one DNS zone. It is safe for concurrent use.
type Zone struct {
	origin dnsmsg.Name

	mu      sync.RWMutex
	rrsets  map[dnsmsg.Name]map[dnsmsg.Type][]dnsmsg.RR
	soa     dnsmsg.RR
	serial  uint32
	hasNode map[dnsmsg.Name]bool // every name with records or with records below it
}

// New creates a zone rooted at origin with the given SOA parameters.
func New(origin dnsmsg.Name, soa dnsmsg.SOAData) *Zone {
	z := &Zone{
		origin:  origin,
		rrsets:  make(map[dnsmsg.Name]map[dnsmsg.Type][]dnsmsg.RR),
		hasNode: make(map[dnsmsg.Name]bool),
		serial:  soa.Serial,
	}
	z.soa = dnsmsg.RR{Name: origin, Class: dnsmsg.ClassIN, TTL: soaTTL, Data: soa}
	z.markNodesLocked(origin)
	return z
}

// Origin returns the zone's apex name.
func (z *Zone) Origin() dnsmsg.Name { return z.origin }

// Serial returns the zone's current SOA serial.
func (z *Zone) Serial() uint32 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.serial
}

// SOA returns the zone's SOA record with the current serial.
func (z *Zone) SOA() dnsmsg.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.soaLocked()
}

func (z *Zone) soaLocked() dnsmsg.RR {
	soa := z.soa
	data := soa.Data.(dnsmsg.SOAData)
	data.Serial = z.serial
	soa.Data = data
	return soa
}

// contains reports whether name belongs to this zone's namespace.
func (z *Zone) contains(name dnsmsg.Name) bool {
	return name.IsSubdomainOf(z.origin)
}

// Add appends rr to the matching RRset and bumps the serial. It returns an
// error if the record's name is outside the zone.
func (z *Zone) Add(rr dnsmsg.RR) error {
	if !z.contains(rr.Name) {
		return fmt.Errorf("adding %s: outside zone %s", rr.Name, z.origin)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	sets, ok := z.rrsets[rr.Name]
	if !ok {
		sets = make(map[dnsmsg.Type][]dnsmsg.RR)
		z.rrsets[rr.Name] = sets
	}
	sets[rr.Type()] = append(sets[rr.Type()], rr)
	z.markNodesLocked(rr.Name)
	z.serial++
	return nil
}

// MustAdd is Add but panics on error; for composition-root configuration.
func (z *Zone) MustAdd(rr dnsmsg.RR) {
	if err := z.Add(rr); err != nil {
		panic(fmt.Sprintf("dnszone: %v", err))
	}
}

// Set replaces the RRset of (name, type) with the given records (all of
// which must have that name and type) and bumps the serial.
func (z *Zone) Set(name dnsmsg.Name, t dnsmsg.Type, rrs ...dnsmsg.RR) error {
	if !z.contains(name) {
		return fmt.Errorf("setting %s: outside zone %s", name, z.origin)
	}
	for _, rr := range rrs {
		if rr.Name != name || rr.Type() != t {
			return fmt.Errorf("setting %s/%s: record %s does not match", name, t, rr)
		}
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	if len(rrs) == 0 {
		z.removeLocked(name, t)
	} else {
		sets, ok := z.rrsets[name]
		if !ok {
			sets = make(map[dnsmsg.Type][]dnsmsg.RR)
			z.rrsets[name] = sets
		}
		sets[t] = append([]dnsmsg.RR(nil), rrs...)
		z.markNodesLocked(name)
	}
	z.serial++
	return nil
}

// Remove deletes the RRset of (name, type) and bumps the serial.
func (z *Zone) Remove(name dnsmsg.Name, t dnsmsg.Type) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.removeLocked(name, t)
	z.serial++
}

// RemoveName deletes every RRset at name and bumps the serial.
func (z *Zone) RemoveName(name dnsmsg.Name) {
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.rrsets, name)
	z.rebuildNodesLocked()
	z.serial++
}

func (z *Zone) removeLocked(name dnsmsg.Name, t dnsmsg.Type) {
	sets, ok := z.rrsets[name]
	if !ok {
		return
	}
	delete(sets, t)
	if len(sets) == 0 {
		delete(z.rrsets, name)
	}
	z.rebuildNodesLocked()
}

// markNodesLocked records name and every ancestor up to the origin as
// existing nodes (empty non-terminals), so NXDOMAIN vs NODATA is decided
// correctly.
func (z *Zone) markNodesLocked(name dnsmsg.Name) {
	for {
		z.hasNode[name] = true
		if name == z.origin || name.IsRoot() {
			return
		}
		name = name.Parent()
	}
}

func (z *Zone) rebuildNodesLocked() {
	z.hasNode = make(map[dnsmsg.Name]bool)
	z.markNodesLocked(z.origin)
	for name := range z.rrsets {
		z.markNodesLocked(name)
	}
}

// Get returns a copy of the RRset at (name, type).
func (z *Zone) Get(name dnsmsg.Name, t dnsmsg.Type) []dnsmsg.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	sets := z.rrsets[name]
	if sets == nil {
		return nil
	}
	return append([]dnsmsg.RR(nil), sets[t]...)
}

// Names returns every owner name in the zone, sorted, for inspection.
func (z *Zone) Names() []dnsmsg.Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnsmsg.Name, 0, len(z.rrsets))
	for n := range z.rrsets {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maxCNAMEChase bounds in-zone CNAME chain chasing. Chains this long do
// not occur in the simulated world; the bound replaces the per-lookup seen
// map so the hot path stays allocation-free while still terminating on
// alias cycles.
const maxCNAMEChase = 16

// Lookup runs the authoritative lookup algorithm for (qname, qtype).
// The caller must ensure qname is within the zone; Lookup panics otherwise
// because routing a foreign name here is a server bug, not a client error.
func (z *Zone) Lookup(qname dnsmsg.Name, qtype dnsmsg.Type) Result {
	var res Result
	z.LookupInto(qname, qtype, &res)
	return res
}

// LookupInto is Lookup writing into a caller-owned Result: res.Records and
// res.Glue are truncated and re-filled, so a reused Result stops
// allocating once its slices have grown to the zone's answer sizes. The
// record values are copies; they remain valid across later zone mutation.
func (z *Zone) LookupInto(qname dnsmsg.Name, qtype dnsmsg.Type, res *Result) {
	if !z.contains(qname) {
		panic(fmt.Sprintf("dnszone: lookup of %s outside zone %s", qname, z.origin))
	}
	res.Records = res.Records[:0]
	res.Glue = res.Glue[:0]
	res.SOA = dnsmsg.RR{}

	z.mu.RLock()
	defer z.mu.RUnlock()

	// Delegation check: walk from the closest ancestor below the apex
	// toward qname; an NS RRset not at the apex is a zone cut.
	if cut, ok := z.findCutLocked(qname); ok {
		ns := z.rrsets[cut][dnsmsg.TypeNS]
		res.Kind = KindReferral
		res.Records = append(res.Records, ns...)
		for _, rr := range ns {
			host := rr.Data.(dnsmsg.NSData).Host
			if z.contains(host) {
				res.Glue = append(res.Glue, z.rrsets[host][dnsmsg.TypeA]...)
			}
		}
		return
	}

	sets := z.rrsets[qname]

	// CNAME handling: an alias answers every type except its own.
	if cname, ok := sets[dnsmsg.TypeCNAME]; ok && qtype != dnsmsg.TypeCNAME {
		res.Kind = KindCNAME
		res.Records = append(res.Records, cname...)
		// Chase the chain while targets stay inside this zone. The seen
		// list lives on the stack; its capacity bounds the chase depth.
		var seenArr [maxCNAMEChase]dnsmsg.Name
		seen := append(seenArr[:0], qname)
		cur := cname[0].Data.(dnsmsg.CNAMEData).Target
		for z.contains(cur) && !nameIn(seen, cur) && len(seen) < maxCNAMEChase {
			seen = append(seen, cur)
			curSets := z.rrsets[cur]
			if next, ok := curSets[dnsmsg.TypeCNAME]; ok {
				res.Records = append(res.Records, next...)
				cur = next[0].Data.(dnsmsg.CNAMEData).Target
				continue
			}
			res.Records = append(res.Records, curSets[qtype]...)
			break
		}
		return
	}

	if rrs, ok := sets[qtype]; ok && len(rrs) > 0 {
		res.Kind = KindAnswer
		res.Records = append(res.Records, rrs...)
		return
	}
	if z.hasNode[qname] {
		res.Kind = KindNoData
		res.SOA = z.soaLocked()
		return
	}
	res.Kind = KindNXDomain
	res.SOA = z.soaLocked()
}

// nameIn reports whether n is in names (linear scan over a short stack
// slice, cheaper than a map for chase-depth-bounded lists).
func nameIn(names []dnsmsg.Name, n dnsmsg.Name) bool {
	for _, x := range names {
		if x == n {
			return true
		}
	}
	return false
}

// findCutLocked looks for a delegation NS RRset strictly between the apex
// (exclusive) and qname (inclusive only when qtype would be below it; per
// RFC 1034 a query exactly at the cut for NS is still a referral from the
// parent side, which is the behaviour we want for TLD servers).
func (z *Zone) findCutLocked(qname dnsmsg.Name) (dnsmsg.Name, bool) {
	// Chain of names from apex child down to qname; the array backs a
	// stack-allocated slice for any realistic label depth.
	var chainArr [24]dnsmsg.Name
	chain := chainArr[:0]
	for n := qname; n != z.origin && !n.IsRoot(); n = n.Parent() {
		chain = append(chain, n)
	}
	// Walk top-down (apex child first).
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		if sets, ok := z.rrsets[n]; ok {
			if _, hasNS := sets[dnsmsg.TypeNS]; hasNS {
				return n, true
			}
		}
	}
	return "", false
}
