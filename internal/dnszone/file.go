package dnszone

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"rrdps/internal/dnsmsg"
)

// Zone-file I/O in the RFC 1035 presentation format (the common subset:
// one record per line, `;` comments, `$ORIGIN` and `$TTL` directives,
// names relative to the origin unless they end with a dot). Operators
// export zones for inspection and import fixture zones in tests and
// tools.

// WriteText renders the zone in presentation format: $ORIGIN and SOA
// first, then every record sorted by name and type. (Not named WriteTo:
// that name is reserved by the io.WriterTo convention, whose signature
// returns the byte count, and go vet flags the mismatch.)
func (z *Zone) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s.\n", z.Origin())
	fmt.Fprintf(bw, "%s\n", presentRR(z.SOA(), z.Origin()))
	for _, name := range z.Names() {
		for _, t := range []dnsmsg.Type{
			dnsmsg.TypeNS, dnsmsg.TypeA, dnsmsg.TypeAAAA,
			dnsmsg.TypeCNAME, dnsmsg.TypeMX, dnsmsg.TypeTXT,
		} {
			for _, rr := range z.Get(name, t) {
				fmt.Fprintf(bw, "%s\n", presentRR(rr, z.Origin()))
			}
		}
	}
	return bw.Flush()
}

// presentRR renders one record with names relative to origin where
// possible.
func presentRR(rr dnsmsg.RR, origin dnsmsg.Name) string {
	rel := func(n dnsmsg.Name) string {
		switch {
		case n == origin:
			return "@"
		case n.IsSubdomainOf(origin) && origin != "":
			return strings.TrimSuffix(string(n), "."+string(origin))
		default:
			return n.String() + "."
		}
	}
	ttl := int(rr.TTL / time.Second)
	switch d := rr.Data.(type) {
	case dnsmsg.AData:
		return fmt.Sprintf("%s %d IN A %s", rel(rr.Name), ttl, d.Addr)
	case dnsmsg.AAAAData:
		return fmt.Sprintf("%s %d IN AAAA %s", rel(rr.Name), ttl, d.Addr)
	case dnsmsg.NSData:
		return fmt.Sprintf("%s %d IN NS %s", rel(rr.Name), ttl, rel(d.Host))
	case dnsmsg.CNAMEData:
		return fmt.Sprintf("%s %d IN CNAME %s", rel(rr.Name), ttl, rel(d.Target))
	case dnsmsg.MXData:
		return fmt.Sprintf("%s %d IN MX %d %s", rel(rr.Name), ttl, d.Preference, rel(d.Host))
	case dnsmsg.TXTData:
		parts := make([]string, len(d.Strings))
		for i, s := range d.Strings {
			parts[i] = strconv.Quote(s)
		}
		return fmt.Sprintf("%s %d IN TXT %s", rel(rr.Name), ttl, strings.Join(parts, " "))
	case dnsmsg.SOAData:
		return fmt.Sprintf("%s %d IN SOA %s %s %d %d %d %d %d",
			rel(rr.Name), ttl, rel(d.MName), rel(d.RName),
			d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
	default:
		return fmt.Sprintf("; unsupported record at %s", rr.Name)
	}
}

// splitFields tokenizes a zone-file line, keeping double-quoted strings
// (with backslash escapes) as single tokens, quotes retained.
func splitFields(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		if line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' && i+1 < len(line) {
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
		} else {
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		out = append(out, line[start:i])
	}
	return out
}

// ParseZone reads a presentation-format zone. origin seeds `$ORIGIN` (a
// later directive overrides it); a SOA record in the file becomes the
// zone's SOA, otherwise a minimal one is synthesized.
func ParseZone(r io.Reader, origin dnsmsg.Name) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	defaultTTL := 300 * time.Second
	var records []dnsmsg.RR
	var soa *dnsmsg.SOAData
	var soaName dnsmsg.Name
	lineNo := 0

	abs := func(token string) (dnsmsg.Name, error) {
		if token == "@" {
			return origin, nil
		}
		if strings.HasSuffix(token, ".") {
			return dnsmsg.ParseName(token)
		}
		n, err := dnsmsg.ParseName(token)
		if err != nil {
			return "", err
		}
		if origin == "" {
			return n, nil
		}
		return dnsmsg.ParseName(string(n) + "." + string(origin))
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := splitFields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("zone line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fail("$ORIGIN needs one argument")
			}
			n, err := dnsmsg.ParseName(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			origin = n
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fail("$TTL needs one argument")
			}
			secs, err := strconv.Atoi(fields[1])
			if err != nil || secs < 0 {
				return nil, fail("bad $TTL %q", fields[1])
			}
			defaultTTL = time.Duration(secs) * time.Second
			continue
		}

		// name [ttl] [IN] TYPE rdata...
		if len(fields) < 3 {
			return nil, fail("too few fields")
		}
		name, err := abs(fields[0])
		if err != nil {
			return nil, fail("name: %v", err)
		}
		rest := fields[1:]
		ttl := defaultTTL
		if secs, err := strconv.Atoi(rest[0]); err == nil {
			if secs < 0 {
				return nil, fail("negative TTL")
			}
			ttl = time.Duration(secs) * time.Second
			rest = rest[1:]
		}
		if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
			rest = rest[1:]
		}
		if len(rest) < 2 {
			return nil, fail("missing type or rdata")
		}
		typ, rdata := strings.ToUpper(rest[0]), rest[1:]

		switch typ {
		case "A":
			addr, err := netip.ParseAddr(rdata[0])
			if err != nil || !addr.Is4() {
				return nil, fail("bad A rdata %q", rdata[0])
			}
			records = append(records, dnsmsg.NewA(name, ttl, addr))
		case "AAAA":
			addr, err := netip.ParseAddr(rdata[0])
			if err != nil || !addr.Is6() || addr.Is4() {
				return nil, fail("bad AAAA rdata %q", rdata[0])
			}
			records = append(records, dnsmsg.RR{
				Name: name, Class: dnsmsg.ClassIN, TTL: ttl,
				Data: dnsmsg.AAAAData{Addr: addr},
			})
		case "NS":
			host, err := abs(rdata[0])
			if err != nil {
				return nil, fail("bad NS rdata: %v", err)
			}
			records = append(records, dnsmsg.NewNS(name, ttl, host))
		case "CNAME":
			target, err := abs(rdata[0])
			if err != nil {
				return nil, fail("bad CNAME rdata: %v", err)
			}
			records = append(records, dnsmsg.NewCNAME(name, ttl, target))
		case "MX":
			if len(rdata) != 2 {
				return nil, fail("MX needs preference and host")
			}
			pref, err := strconv.Atoi(rdata[0])
			if err != nil || pref < 0 || pref > 0xFFFF {
				return nil, fail("bad MX preference %q", rdata[0])
			}
			host, err := abs(rdata[1])
			if err != nil {
				return nil, fail("bad MX host: %v", err)
			}
			records = append(records, dnsmsg.NewMX(name, ttl, uint16(pref), host))
		case "TXT":
			var strs []string
			for _, tok := range rdata {
				s, err := strconv.Unquote(tok)
				if err != nil {
					s = tok
				}
				strs = append(strs, s)
			}
			records = append(records, dnsmsg.NewTXT(name, ttl, strs...))
		case "SOA":
			if len(rdata) != 7 {
				return nil, fail("SOA needs 7 rdata fields")
			}
			mname, err := abs(rdata[0])
			if err != nil {
				return nil, fail("bad SOA mname: %v", err)
			}
			rname, err := abs(rdata[1])
			if err != nil {
				return nil, fail("bad SOA rname: %v", err)
			}
			nums := make([]uint32, 5)
			for i, tok := range rdata[2:] {
				v, err := strconv.ParseUint(tok, 10, 32)
				if err != nil {
					return nil, fail("bad SOA number %q", tok)
				}
				nums[i] = uint32(v)
			}
			soa = &dnsmsg.SOAData{
				MName: mname, RName: rname,
				Serial: nums[0], Refresh: nums[1], Retry: nums[2],
				Expire: nums[3], Minimum: nums[4],
			}
			soaName = name
		default:
			return nil, fail("unsupported type %q", typ)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading zone: %w", err)
	}
	if origin == "" && soaName != "" {
		origin = soaName
	}
	if soa == nil {
		soa = &dnsmsg.SOAData{
			MName: origin.Child("ns1"), RName: origin.Child("hostmaster"),
			Serial: 1, Minimum: 300,
		}
	}
	z := New(origin, *soa)
	// Deterministic insertion order regardless of input order.
	sort.SliceStable(records, func(i, j int) bool {
		if records[i].Name != records[j].Name {
			return records[i].Name < records[j].Name
		}
		return records[i].Type() < records[j].Type()
	})
	for _, rr := range records {
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("zone record %s: %w", rr, err)
		}
	}
	return z, nil
}
