package vectors

import (
	"net/netip"
	"strings"
	"sync"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
)

// CallbackListener is the attacker's HTTP endpoint for the
// outbound-connection vector: it records the source address of every
// request it receives. A pingback-triggered origin reveals itself here.
type CallbackListener struct {
	mu      sync.Mutex
	callers []netip.Addr
}

// NewCallbackListener creates an empty listener.
func NewCallbackListener() *CallbackListener { return &CallbackListener{} }

var _ netsim.Handler = (*CallbackListener)(nil)

// ServeNet implements netsim.Handler.
func (l *CallbackListener) ServeNet(req netsim.Request) ([]byte, error) {
	l.mu.Lock()
	l.callers = append(l.callers, req.From)
	l.mu.Unlock()
	return httpsim.EncodeResponse(httpsim.Response{StatusCode: 200, Body: "ok"}), nil
}

// Callers returns the distinct source addresses seen, in first-seen order.
func (l *CallbackListener) Callers() []netip.Addr {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[netip.Addr]bool, len(l.callers))
	var out []netip.Addr
	for _, a := range l.callers {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Reset forgets previously seen callers.
func (l *CallbackListener) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.callers = nil
}

// ExtractAddrs pulls every parseable IPv4 address out of free-form text —
// the primitive behind the sensitive-files and origin-in-content vectors.
func ExtractAddrs(text string) []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !(r >= '0' && r <= '9') && r != '.'
	})
	for _, f := range fields {
		if strings.Count(f, ".") != 3 {
			continue
		}
		addr, err := netip.ParseAddr(f)
		if err != nil || !addr.Is4() {
			continue
		}
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}
