package vectors

import (
	"net/netip"
	"testing"

	"rrdps/internal/core/match"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/pdns"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

// buildExposedWorld creates a world in which every site carries the full
// Table I surface.
func buildExposedWorld(t *testing.T) (*world.World, *website.Site) {
	t.Helper()
	cfg := world.PaperConfig(150)
	cfg.Seed = 77
	cfg.Exposures = world.ExposureRates{
		Subdomain: 1, MailRecord: 1, BodyLeak: 1,
		SensitiveFile: 1, Certificate: 1, Pingback: 1,
	}
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	w := world.New(cfg)
	for _, s := range w.Sites() {
		if key, method, _ := s.Provider(); key == dps.Cloudflare && method == dps.ReroutingNS {
			return w, s
		}
	}
	t.Fatal("no cloudflare NS site")
	return nil, nil
}

func newScanner(t *testing.T, w *world.World, archive *pdns.Archive) *Scanner {
	t.Helper()
	resolver := w.NewResolver(netsim.RegionOregon)
	return New(Config{
		Network:    w.Net,
		Resolver:   resolver,
		HTTP:       w.NewHTTPClient(netsim.RegionOregon),
		Matcher:    match.New(w.Registry, dps.Profiles()),
		Archive:    archive,
		ScanSpaces: certScanSpaces(w),
		ListenAddr: w.Alloc.NextAddr(),
		Region:     netsim.RegionOregon,
	})
}

// certScanSpaces narrows the sweep to small slices of the origin spaces so
// tests stay fast.
func certScanSpaces(w *world.World) []netip.Prefix {
	var out []netip.Prefix
	for _, p := range w.OriginSpaces() {
		out = append(out, netip.PrefixFrom(p.Addr(), 24))
	}
	return out
}

func TestSubdomainVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	f := s.ScanSubdomains(site.Domain().Apex)
	if len(f.Candidates) == 0 {
		t.Fatalf("no candidates: %+v", f)
	}
	if f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("candidate = %v, want origin %v", f.Candidates[0], site.OriginAddr())
	}
}

func TestDNSRecordsVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	f := s.ScanDNSRecords(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("finding = %+v, want origin %v", f, site.OriginAddr())
	}
}

func TestTemporaryExposureVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	// While ON, nothing.
	f := s.ScanTemporaryExposure(site.Domain().Apex)
	if len(f.Candidates) != 0 {
		t.Fatalf("ON site leaked: %+v", f)
	}
	// Paused: the origin shows.
	if err := site.Pause(); err != nil {
		t.Fatal(err)
	}
	s2 := newScanner(t, w, nil) // fresh resolver cache
	f = s2.ScanTemporaryExposure(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("paused finding = %+v, want origin", f)
	}
}

func TestCertificateVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	// Sweep a /24 around the actual origin so the test stays fast.
	origin := site.OriginAddr()
	s.cfg.ScanSpaces = []netip.Prefix{netip.PrefixFrom(origin, 24).Masked()}
	f := s.ScanCertificates(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != origin {
		t.Fatalf("finding = %+v, want origin %v", f, origin)
	}
}

func TestSensitiveFilesVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	f := s.ScanSensitiveFiles(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("finding = %+v, want origin", f)
	}
}

func TestOriginInContentVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	f := s.ScanOriginInContent(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("finding = %+v, want origin", f)
	}
}

func TestOutboundConnectionVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	f := s.ScanOutboundConnection(site.Domain().Apex)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("finding = %+v, want origin", f)
	}
}

func TestIPHistoryVector(t *testing.T) {
	w, site := buildExposedWorld(t)
	archive := pdns.NewArchive()
	// The archive observed the site before it joined the DPS.
	archive.Record(0, site.WWW(), site.OriginAddr())
	s := newScanner(t, w, archive)
	f := s.ScanIPHistory(site.Domain().Apex, 10)
	if len(f.Candidates) != 1 || f.Candidates[0] != site.OriginAddr() {
		t.Fatalf("finding = %+v, want origin", f)
	}
	// Without an archive the vector reports nothing.
	s2 := newScanner(t, w, nil)
	if f := s2.ScanIPHistory(site.Domain().Apex, 10); len(f.Candidates) != 0 {
		t.Fatalf("archiveless finding = %+v", f)
	}
}

func TestScanAllAndHelpers(t *testing.T) {
	w, site := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	s.cfg.ScanSpaces = []netip.Prefix{netip.PrefixFrom(site.OriginAddr(), 24).Masked()}
	findings := s.ScanAll(site.Domain().Apex, 0)
	if len(findings) != 8 {
		t.Fatalf("findings = %d, want 8", len(findings))
	}
	if !Exposed(findings) {
		t.Fatal("fully exposed site reported safe")
	}
	union := CandidateUnion(findings)
	if len(union) != 1 || union[0] != site.OriginAddr() {
		t.Fatalf("union = %v", union)
	}
}

func TestHardenedSiteIsSafe(t *testing.T) {
	// A site without exposure flags leaks through no vector (except
	// temporary exposure when paused, which is off here).
	cfg := world.PaperConfig(150)
	cfg.Seed = 99
	cfg.Exposures = world.ExposureRates{}
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	w := world.New(cfg)
	var site *website.Site
	for _, s := range w.Sites() {
		if key, method, _ := s.Provider(); key == dps.Cloudflare && method == dps.ReroutingNS {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no cloudflare site")
	}
	s := newScanner(t, w, nil)
	s.cfg.ScanSpaces = []netip.Prefix{netip.PrefixFrom(site.OriginAddr(), 26).Masked()}
	findings := s.ScanAll(site.Domain().Apex, 0)
	if Exposed(findings) {
		t.Fatalf("hardened site exposed: %+v", findings)
	}
}

func TestExtractAddrs(t *testing.T) {
	text := "db_host=10.1.2.3\nbackup 10.1.2.3 and 192.168.7.9; not 999.1.1.1 or 1.2.3"
	got := ExtractAddrs(text)
	if len(got) != 2 || got[0] != netip.MustParseAddr("10.1.2.3") || got[1] != netip.MustParseAddr("192.168.7.9") {
		t.Fatalf("ExtractAddrs = %v", got)
	}
	if got := ExtractAddrs("no addresses here"); got != nil {
		t.Fatalf("ExtractAddrs(clean) = %v", got)
	}
}

func TestVectorStrings(t *testing.T) {
	for _, v := range AllVectors() {
		if v.String() == "" {
			t.Fatalf("vector %d has no name", v)
		}
	}
	if len(AllVectors()) != 8 {
		t.Fatal("Table I has eight vectors")
	}
}

// newWorldMatcher builds a matcher over a world's registry.
func newWorldMatcher(w *world.World) *match.Matcher {
	return match.New(w.Registry, dps.Profiles())
}
