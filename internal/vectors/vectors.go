// Package vectors implements the eight origin-exposure attack vectors of
// the paper's Table I (studied in depth by Vissers et al., CCS'15, and
// summarized as background in §II-B). Each scanner takes a target domain
// protected by a DPS and tries to recover the hidden origin address
// through a different side channel; residual resolution (internal/core/
// rrscan) is the ninth vector this paper adds.
package vectors

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/pdns"
	"rrdps/internal/website"
)

// Vector identifies one Table I attack vector.
type Vector int

// The Table I attack vectors, in table order.
const (
	IPHistory Vector = iota + 1
	Subdomains
	DNSRecords
	TemporaryExposure
	SSLCertificates
	SensitiveFiles
	OriginInContent
	OutboundConnection
)

// String implements fmt.Stringer.
func (v Vector) String() string {
	switch v {
	case IPHistory:
		return "ip-history"
	case Subdomains:
		return "subdomains"
	case DNSRecords:
		return "dns-records"
	case TemporaryExposure:
		return "temporary-exposure"
	case SSLCertificates:
		return "ssl-certificates"
	case SensitiveFiles:
		return "sensitive-files"
	case OriginInContent:
		return "origin-in-content"
	case OutboundConnection:
		return "outbound-connection"
	default:
		return fmt.Sprintf("vector%d", int(v))
	}
}

// AllVectors lists the vectors in Table I order.
func AllVectors() []Vector {
	return []Vector{
		IPHistory, Subdomains, DNSRecords, TemporaryExposure,
		SSLCertificates, SensitiveFiles, OriginInContent, OutboundConnection,
	}
}

// Finding is one vector's candidate origin addresses for a target.
type Finding struct {
	Vector     Vector
	Apex       dnsmsg.Name
	Candidates []netip.Addr
	// Note carries human-readable evidence ("found in /backup.cfg").
	Note string
}

// DefaultSubdomainWordlist is the bruteforce list the subdomain scanner
// probes, mirroring common unprotected-subdomain hunting lists.
func DefaultSubdomainWordlist() []string {
	return []string{
		"mail", "dev", "staging", "test", "ftp", "admin", "vpn",
		"origin", "direct", "old", "beta", "api",
	}
}

// Config parametrizes a Scanner.
type Config struct {
	// Network is the fabric (TLS probes, callback listener). Required.
	Network *netsim.Network
	// Resolver performs the scanner's DNS lookups. Required.
	Resolver *dnsresolver.Resolver
	// HTTP fetches pages and files. Required.
	HTTP *httpsim.Client
	// Matcher distinguishes DPS edge addresses from candidate origins.
	// Required.
	Matcher *match.Matcher
	// Archive is the passive-DNS database for the IP-history vector;
	// optional (vector reports nothing without it).
	Archive *pdns.Archive
	// ScanSpaces are the prefixes the certificate scanner sweeps;
	// optional.
	ScanSpaces []netip.Prefix
	// ListenAddr is where the outbound-connection listener sits. Required
	// for the outbound vector.
	ListenAddr netip.Addr
	// Region locates the scanner's probes.
	Region netsim.Region
	// Wordlist overrides the subdomain bruteforce list.
	Wordlist []string
}

// Scanner runs the Table I vectors against targets.
type Scanner struct {
	cfg      Config
	listener *CallbackListener
}

// New creates a scanner and registers its callback listener (when
// ListenAddr is set).
func New(cfg Config) *Scanner {
	if cfg.Network == nil || cfg.Resolver == nil || cfg.HTTP == nil || cfg.Matcher == nil {
		panic("vectors: Network, Resolver, HTTP, and Matcher are required")
	}
	if len(cfg.Wordlist) == 0 {
		cfg.Wordlist = DefaultSubdomainWordlist()
	}
	s := &Scanner{cfg: cfg}
	if cfg.ListenAddr.IsValid() {
		s.listener = NewCallbackListener()
		cfg.Network.Register(
			netsim.Endpoint{Addr: cfg.ListenAddr, Port: netsim.PortHTTP},
			cfg.Region, s.listener)
	}
	return s
}

// isCandidate keeps only addresses outside every DPS provider's ranges.
func (s *Scanner) isCandidate(addr netip.Addr) bool {
	_, isDPS := s.cfg.Matcher.MatchA(addr)
	return !isDPS
}

func (s *Scanner) candidateFilter(addrs []netip.Addr) []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, a := range addrs {
		if !seen[a] && s.isCandidate(a) {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// publicView resolves the target's www A records as any client would.
func (s *Scanner) publicView(apex dnsmsg.Name) []netip.Addr {
	res, err := s.cfg.Resolver.Resolve(apex.Child("www"), dnsmsg.TypeA)
	if err != nil {
		return nil
	}
	return res.Addrs()
}

// ScanIPHistory queries the passive-DNS archive for addresses the target
// resolved to in the past.
func (s *Scanner) ScanIPHistory(apex dnsmsg.Name, beforeDay int) Finding {
	f := Finding{Vector: IPHistory, Apex: apex}
	if s.cfg.Archive == nil {
		f.Note = "no passive-DNS archive configured"
		return f
	}
	f.Candidates = s.candidateFilter(s.cfg.Archive.AddrsBefore(apex.Child("www"), beforeDay))
	f.Note = fmt.Sprintf("passive DNS before day %d", beforeDay)
	return f
}

// ScanSubdomains bruteforces common labels and keeps those resolving
// outside DPS ranges.
func (s *Scanner) ScanSubdomains(apex dnsmsg.Name) Finding {
	f := Finding{Vector: Subdomains, Apex: apex}
	var hits []string
	for _, label := range s.cfg.Wordlist {
		res, err := s.cfg.Resolver.Resolve(apex.Child(label), dnsmsg.TypeA)
		if err != nil {
			continue
		}
		for _, addr := range res.Addrs() {
			if s.isCandidate(addr) {
				f.Candidates = append(f.Candidates, addr)
				hits = append(hits, label)
			}
		}
	}
	f.Candidates = s.candidateFilter(f.Candidates)
	f.Note = "unprotected subdomains: " + strings.Join(hits, ",")
	return f
}

// ScanDNSRecords inspects non-A records — here the MX host — for
// addresses outside DPS ranges.
func (s *Scanner) ScanDNSRecords(apex dnsmsg.Name) Finding {
	f := Finding{Vector: DNSRecords, Apex: apex}
	mxRes, err := s.cfg.Resolver.Resolve(apex, dnsmsg.TypeMX)
	if err != nil {
		return f
	}
	for _, rr := range mxRes.Answers {
		mx, ok := rr.Data.(dnsmsg.MXData)
		if !ok {
			continue
		}
		aRes, err := s.cfg.Resolver.Resolve(mx.Host, dnsmsg.TypeA)
		if err != nil {
			continue
		}
		f.Candidates = append(f.Candidates, aRes.Addrs()...)
		f.Note = fmt.Sprintf("MX %s", mx.Host)
	}
	f.Candidates = s.candidateFilter(f.Candidates)
	return f
}

// ScanTemporaryExposure checks whether the target is currently in the OFF
// state: delegated to a DPS but answering with a non-DPS address.
func (s *Scanner) ScanTemporaryExposure(apex dnsmsg.Name) Finding {
	f := Finding{Vector: TemporaryExposure, Apex: apex}
	www := apex.Child("www")
	res, err := s.cfg.Resolver.Resolve(www, dnsmsg.TypeA)
	if err != nil {
		return f
	}
	delegated := false
	if _, ok := s.cfg.Matcher.MatchAnyCNAME(res.CNAMETargets()); ok {
		delegated = true
	} else if nsRes, err := s.cfg.Resolver.Resolve(apex, dnsmsg.TypeNS); err == nil {
		if _, ok := s.cfg.Matcher.MatchAnyNS(nsRes.NSHosts()); ok {
			delegated = true
		}
	}
	if !delegated {
		return f
	}
	f.Candidates = s.candidateFilter(res.Addrs())
	if len(f.Candidates) > 0 {
		f.Note = "DPS paused: public A record bypasses the platform"
	}
	return f
}

// ScanCertificates sweeps the configured address spaces, collecting TLS
// certificate subjects, and reports addresses presenting the target's
// names.
func (s *Scanner) ScanCertificates(apex dnsmsg.Name) Finding {
	f := Finding{Vector: SSLCertificates, Apex: apex}
	want := map[string]bool{
		string(apex):              true,
		string(apex.Child("www")): true,
	}
	probed := 0
	for _, prefix := range s.cfg.ScanSpaces {
		n := ipspace.HostCapacity(prefix)
		for i := 0; i < n; i++ {
			addr := ipspace.NthAddr(prefix, i)
			probed++
			subjects, err := httpsim.ProbeCert(s.cfg.Network, s.cfg.ListenAddr, s.cfg.Region, addr)
			if err != nil {
				continue
			}
			for _, sub := range subjects {
				if want[sub] {
					f.Candidates = append(f.Candidates, addr)
					break
				}
			}
		}
	}
	f.Candidates = s.candidateFilter(f.Candidates)
	f.Note = fmt.Sprintf("swept %d addresses", probed)
	return f
}

// ScanSensitiveFiles fetches well-known leftover files through the public
// view and extracts addresses from their contents.
func (s *Scanner) ScanSensitiveFiles(apex dnsmsg.Name) Finding {
	f := Finding{Vector: SensitiveFiles, Apex: apex}
	paths := []string{website.SensitiveFilePath, "/.env", "/config.bak"}
	for _, public := range s.publicView(apex) {
		for _, path := range paths {
			resp, err := s.cfg.HTTP.Get(public, string(apex.Child("www")), path)
			if err != nil || resp.StatusCode != 200 {
				continue
			}
			if addrs := ExtractAddrs(resp.Body); len(addrs) > 0 {
				f.Candidates = append(f.Candidates, addrs...)
				f.Note = "found in " + path
			}
		}
	}
	f.Candidates = s.candidateFilter(f.Candidates)
	return f
}

// ScanOriginInContent fetches the landing page through the public view and
// extracts addresses embedded in the HTML.
func (s *Scanner) ScanOriginInContent(apex dnsmsg.Name) Finding {
	f := Finding{Vector: OriginInContent, Apex: apex}
	for _, public := range s.publicView(apex) {
		resp, err := s.cfg.HTTP.Get(public, string(apex.Child("www")), "/")
		if err != nil || resp.StatusCode != 200 {
			continue
		}
		if addrs := ExtractAddrs(resp.Body); len(addrs) > 0 {
			f.Candidates = append(f.Candidates, addrs...)
			f.Note = "address embedded in landing page"
		}
	}
	f.Candidates = s.candidateFilter(f.Candidates)
	return f
}

// ScanOutboundConnection triggers the target's pingback endpoint through
// the public view and watches which address calls back.
func (s *Scanner) ScanOutboundConnection(apex dnsmsg.Name) Finding {
	f := Finding{Vector: OutboundConnection, Apex: apex}
	if s.listener == nil {
		f.Note = "no callback listener configured"
		return f
	}
	s.listener.Reset()
	for _, public := range s.publicView(apex) {
		req := httpsim.Request{
			Method: "GET",
			Path:   "/pingback",
			Host:   string(apex.Child("www")),
			Headers: map[string]string{
				"X-Callback": s.cfg.ListenAddr.String(),
			},
		}
		_, _ = s.cfg.HTTP.Do(public, req)
	}
	f.Candidates = s.candidateFilter(s.listener.Callers())
	if len(f.Candidates) > 0 {
		f.Note = "origin connected back to the listener"
	}
	return f
}

// ScanAll runs every vector against the target. beforeDay bounds the
// IP-history query (use the day the site joined its DPS, or the current
// day when unknown).
func (s *Scanner) ScanAll(apex dnsmsg.Name, beforeDay int) []Finding {
	findings := []Finding{
		s.ScanIPHistory(apex, beforeDay),
		s.ScanSubdomains(apex),
		s.ScanDNSRecords(apex),
		s.ScanTemporaryExposure(apex),
		s.ScanCertificates(apex),
		s.ScanSensitiveFiles(apex),
		s.ScanOriginInContent(apex),
		s.ScanOutboundConnection(apex),
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Vector < findings[j].Vector })
	return findings
}

// Exposed reports whether any finding carries candidates.
func Exposed(findings []Finding) bool {
	for _, f := range findings {
		if len(f.Candidates) > 0 {
			return true
		}
	}
	return false
}

// CandidateUnion returns the distinct candidates across findings.
func CandidateUnion(findings []Finding) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, f := range findings {
		for _, a := range f.Candidates {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}
