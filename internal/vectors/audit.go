package vectors

import (
	"net/netip"
	"sort"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/website"
)

// AuditRow records one audited site's outcome.
type AuditRow struct {
	Apex dnsmsg.Name
	// ExposedVia lists the vectors whose candidates include the site's
	// true origin address.
	ExposedVia []Vector
	// Candidates is the union of candidate addresses across vectors.
	Candidates []netip.Addr
}

// Exposed reports whether any vector found the true origin.
func (r AuditRow) Exposed() bool { return len(r.ExposedVia) > 0 }

// AuditResult aggregates an audit over many sites.
type AuditResult struct {
	Audited   int
	Rows      []AuditRow
	PerVector map[Vector]int
}

// ExposedCount returns how many audited sites leak through >=1 vector.
func (r AuditResult) ExposedCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Exposed() {
			n++
		}
	}
	return n
}

// ExposedRate returns the fraction of audited sites leaking through >=1
// vector (the headline Vissers et al. report >70% for on the live
// Internet).
func (r AuditResult) ExposedRate() float64 {
	if r.Audited == 0 {
		return 0
	}
	return float64(r.ExposedCount()) / float64(r.Audited)
}

// Audit runs every vector against up to max protected sites and grades the
// findings against ground truth (each site's actual origin address).
// beforeDay bounds the IP-history queries.
func (s *Scanner) Audit(sites []*website.Site, beforeDay, max int) AuditResult {
	res := AuditResult{PerVector: make(map[Vector]int)}
	for _, site := range sites {
		if res.Audited >= max {
			break
		}
		if !site.Protected() {
			continue
		}
		res.Audited++
		truth := site.OriginAddr()
		findings := s.ScanAll(site.Domain().Apex, beforeDay)
		row := AuditRow{Apex: site.Domain().Apex, Candidates: CandidateUnion(findings)}
		for _, f := range findings {
			for _, cand := range f.Candidates {
				if cand == truth {
					row.ExposedVia = append(row.ExposedVia, f.Vector)
					res.PerVector[f.Vector]++
					break
				}
			}
		}
		sort.Slice(row.ExposedVia, func(i, j int) bool { return row.ExposedVia[i] < row.ExposedVia[j] })
		res.Rows = append(res.Rows, row)
	}
	return res
}
