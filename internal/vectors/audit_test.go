package vectors

import (
	"testing"

	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func TestAuditFullyExposedWorld(t *testing.T) {
	w, _ := buildExposedWorld(t)
	s := newScanner(t, w, nil)
	s.cfg.ScanSpaces = certScanSpaces(w)

	res := s.Audit(w.Sites(), 0, 10)
	if res.Audited != 10 {
		t.Fatalf("audited = %d", res.Audited)
	}
	if res.ExposedCount() == 0 {
		t.Fatal("fully exposed world produced no exposures")
	}
	if res.ExposedRate() < 0.5 {
		t.Fatalf("exposed rate = %.2f in a fully exposed world", res.ExposedRate())
	}
	for _, row := range res.Rows {
		if row.Exposed() && len(row.Candidates) == 0 {
			t.Fatalf("exposed row without candidates: %+v", row)
		}
	}
	// PerVector totals are consistent with rows.
	total := 0
	for _, n := range res.PerVector {
		total += n
	}
	rowTotal := 0
	for _, row := range res.Rows {
		rowTotal += len(row.ExposedVia)
	}
	if total != rowTotal {
		t.Fatalf("PerVector sum %d != rows sum %d", total, rowTotal)
	}
}

func TestAuditHardenedWorld(t *testing.T) {
	cfg := world.PaperConfig(150)
	cfg.Seed = 99
	cfg.Exposures = world.ExposureRates{}
	cfg.OriginRestrictedRate = 0
	cfg.DynamicMetaRate = 0
	w := world.New(cfg)
	s := newScanner(t, w, nil)
	s.cfg.ScanSpaces = nil // no cert sweep needed

	res := s.Audit(w.Sites(), 0, 10)
	if res.ExposedCount() != 0 {
		t.Fatalf("hardened world exposed %d sites: %+v", res.ExposedCount(), res.Rows)
	}
	if res.ExposedRate() != 0 {
		t.Fatalf("rate = %v", res.ExposedRate())
	}
}

func TestAuditSkipsUnprotected(t *testing.T) {
	cfg := world.PaperConfig(100)
	cfg.Seed = 3
	cfg.AdoptionOverallRate = 0
	cfg.AdoptionTopRate = 0
	w := world.New(cfg)
	s := New(Config{
		Network:  w.Net,
		Resolver: w.NewResolver(netsim.RegionOregon),
		HTTP:     w.NewHTTPClient(netsim.RegionOregon),
		Matcher:  newWorldMatcher(w),
		Region:   netsim.RegionOregon,
	})
	res := s.Audit(w.Sites(), 0, 10)
	if res.Audited != 0 {
		t.Fatalf("audited %d unprotected sites", res.Audited)
	}
	if res.ExposedRate() != 0 {
		t.Fatal("rate should be 0 for empty audit")
	}
}
