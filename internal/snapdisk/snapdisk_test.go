package snapdisk

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/snapstore"
)

func name(s string) dnsmsg.Name { return dnsmsg.MustParseName(s) }

func rec(rank int, apex string, addrs []string, cnames, nsHosts []string, resolveOK, nsOK bool) collect.Record {
	r := collect.Record{
		Domain:    alexa.Domain{Rank: rank, Apex: name(apex)},
		ResolveOK: resolveOK,
		NSOK:      nsOK,
	}
	for _, a := range addrs {
		r.Addrs = append(r.Addrs, netip.MustParseAddr(a))
	}
	for _, c := range cnames {
		r.CNAMEs = append(r.CNAMEs, name(c))
	}
	for _, h := range nsHosts {
		r.NSHosts = append(r.NSHosts, name(h))
	}
	return r
}

// testStore builds a store exercising every encoded feature: multiple
// days, deltas, a tombstone, a reappearance, nil vs empty slices, v4 and
// v6 addresses, and a retention window with evicted days.
func testStore(t testing.TB) *snapstore.Store {
	t.Helper()
	s := snapstore.New()
	s.SetWindow(3)
	put := func(day int, recs ...collect.Record) {
		w := s.BeginDay(day)
		for _, r := range recs {
			w.Put(r)
		}
		w.Seal()
	}
	alpha := rec(1, "alpha.com", []string{"10.0.0.1", "2001:db8::1"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true)
	beta := rec(2, "beta.com", []string{"10.0.0.2"}, nil, []string{"ns1.beta.com", "ns2.beta.com"}, true, false)
	gamma := rec(3, "gamma.com", nil, nil, nil, false, false)
	put(0, alpha, beta, gamma)
	put(2, alpha, beta) // gamma tombstoned; gap in day numbers
	betaB := rec(2, "beta.com", []string{"10.9.9.9"}, []string{"edge.cdn.net"}, nil, true, true)
	put(3, alpha, betaB, gamma) // gamma reappears
	put(5, alpha, betaB, gamma)
	put(6, alpha, betaB, gamma) // day 0 evicted by the window
	return s
}

func diffStates(t *testing.T, got, want snapstore.State) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("states differ:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := testStore(t)
	want := s.ExportState()
	campaign := []byte(`{"cursor":42}`)

	buf := MarshalCheckpoint(want, campaign)
	gotState, gotCampaign, err := UnmarshalCheckpoint(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	diffStates(t, gotState, want)
	if !bytes.Equal(gotCampaign, campaign) {
		t.Fatalf("campaign blob: %q != %q", gotCampaign, campaign)
	}

	// The rebuilt store replays every retained day identically and
	// reports the same stats.
	s2, err := snapstore.FromState(gotState)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	if s2.Stats() != s.Stats() {
		t.Fatalf("stats: %+v != %+v", s2.Stats(), s.Stats())
	}
	for _, day := range s.Days() {
		if !reflect.DeepEqual(s2.SnapshotAt(day), s.SnapshotAt(day)) {
			t.Fatalf("day %d snapshots differ", day)
		}
	}
}

func TestCheckpointNilCampaign(t *testing.T) {
	st := testStore(t).ExportState()
	_, campaign, err := UnmarshalCheckpoint(MarshalCheckpoint(st, nil))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if campaign != nil {
		t.Fatalf("nil campaign decoded as %q", campaign)
	}
	// An empty (non-nil) blob stays distinguishable from no blob.
	_, campaign, err = UnmarshalCheckpoint(MarshalCheckpoint(st, []byte{}))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if campaign == nil || len(campaign) != 0 {
		t.Fatalf("empty campaign decoded as %v", campaign)
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	st := snapstore.New().ExportState()
	got, _, err := UnmarshalCheckpoint(MarshalCheckpoint(st, nil))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if _, err := snapstore.FromState(got); err != nil {
		t.Fatalf("FromState: %v", err)
	}
}

func TestCheckpointTruncationAlwaysErrors(t *testing.T) {
	buf := MarshalCheckpoint(testStore(t).ExportState(), []byte("blob"))
	for n := 0; n < len(buf); n++ {
		if _, _, err := UnmarshalCheckpoint(buf[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(buf))
		}
	}
}

func TestCheckpointPayloadFlipsError(t *testing.T) {
	// Flipping any payload or checksum byte must surface as an error:
	// every section's content is CRC-covered. (Section id/length header
	// bytes are framing; a flip there errors too, via CRC or framing
	// checks, but the loop below only needs no-panic + mostly-error.)
	buf := MarshalCheckpoint(testStore(t).ExportState(), []byte("blob"))
	clean := 0
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x41
		if _, _, err := UnmarshalCheckpoint(mut); err == nil {
			clean++
		}
	}
	// A handful of header flips can mimic a valid unknown-section skip;
	// anything beyond that means the checksums are not doing their job.
	if clean > len(buf)/50 {
		t.Fatalf("%d/%d single-byte flips decoded cleanly", clean, len(buf))
	}
}

func TestCheckpointDuplicateSection(t *testing.T) {
	st := testStore(t).ExportState()
	buf := MarshalCheckpoint(st, nil)
	// Rebuild with the days section doubled: strip the end section, then
	// append an extra days section and a fresh end.
	var days Writer
	days.Uvarint(uint64(len(st.Days)))
	for _, d := range st.Days {
		days.Int(d)
	}
	days.Int(st.Evicted)
	days.Int(st.Window)
	days.Int(st.Versions)
	days.Int(st.Tombstones)
	endSec := appendSection(nil, secEnd, nil)
	buf = buf[:len(buf)-len(endSec)]
	buf = appendSection(buf, secDays, days.Bytes())
	buf = appendSection(buf, secEnd, nil)
	if _, _, err := UnmarshalCheckpoint(buf); err == nil {
		t.Fatal("duplicate section decoded cleanly")
	}
}

func TestCheckpointUnknownSectionSkipped(t *testing.T) {
	st := testStore(t).ExportState()
	buf := MarshalCheckpoint(st, []byte("blob"))
	endSec := appendSection(nil, secEnd, nil)
	buf = buf[:len(buf)-len(endSec)]
	buf = appendSection(buf, 99, []byte("from a future writer"))
	buf = appendSection(buf, secEnd, nil)
	got, campaign, err := UnmarshalCheckpoint(buf)
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	diffStates(t, got, st)
	if string(campaign) != "blob" {
		t.Fatalf("campaign blob lost: %q", campaign)
	}
}

func TestCheckpointMissingSection(t *testing.T) {
	// An encoding holding only meta + end must report the missing
	// sections rather than returning an empty store.
	var meta Writer
	meta.Uvarint(checkpointVersion)
	buf := appendSection([]byte(checkpointMagic), secMeta, meta.Bytes())
	buf = appendSection(buf, secEnd, nil)
	if _, _, err := UnmarshalCheckpoint(buf); err == nil {
		t.Fatal("missing sections decoded cleanly")
	}
}

func TestWriteReadCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.snap")
	st := testStore(t).ExportState()
	if err := WriteCheckpoint(path, st, []byte("c")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, campaign, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	diffStates(t, got, st)
	if string(campaign) != "c" {
		t.Fatalf("campaign: %q", campaign)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files in dir, want 1", len(entries))
	}
}

func TestDirRotationAndFallback(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	st := testStore(t).ExportState()
	for _, label := range []int{7, 14, 21} {
		if err := d.WriteCheckpoint(label, st, []byte(fmt.Sprintf("label-%d", label))); err != nil {
			t.Fatalf("write %d: %v", label, err)
		}
	}
	// Only the two newest survive pruning.
	labels, err := d.checkpointLabels()
	if err != nil || !reflect.DeepEqual(labels, []int{14, 21}) {
		t.Fatalf("labels = %v (%v), want [14 21]", labels, err)
	}
	_, campaign, label, ok, err := d.LatestCheckpoint()
	if err != nil || !ok || label != 21 || string(campaign) != "label-21" {
		t.Fatalf("latest: label=%d ok=%v campaign=%q err=%v", label, ok, campaign, err)
	}

	// Damage the newest file: LatestCheckpoint falls back to label 14.
	if err := os.WriteFile(d.checkpointPath(21), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	gotState, campaign, label, ok, err := d.LatestCheckpoint()
	if err != nil || !ok || label != 14 || string(campaign) != "label-14" {
		t.Fatalf("fallback: label=%d ok=%v campaign=%q err=%v", label, ok, campaign, err)
	}
	diffStates(t, gotState, st)

	// Clear leaves an empty directory; LatestCheckpoint reports none.
	if err := d.Clear(); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if _, _, _, ok, err := d.LatestCheckpoint(); ok || err != nil {
		t.Fatalf("after clear: ok=%v err=%v", ok, err)
	}
}

func walRecords() []collect.Record {
	return []collect.Record{
		rec(1, "alpha.com", []string{"10.0.0.1", "2001:db8::1"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true),
		rec(2, "beta.com", nil, []string{}, nil, false, false),
		rec(3, "gamma.com", []string{"10.0.0.3"}, nil, []string{"ns1.gamma.com", "ns2.gamma.com"}, true, false),
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := walRecords()
	for day := 0; day < 2; day++ {
		if err := w.BeginDay(day * 3); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.SealDay([]byte(fmt.Sprintf("footer-%d", day))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	days, tail, err := ReplayWAL(path)
	if err != nil || tail != nil {
		t.Fatalf("replay: tail=%v err=%v", tail, err)
	}
	if len(days) != 2 {
		t.Fatalf("%d days, want 2", len(days))
	}
	for i, d := range days {
		if d.Day != i*3 || string(d.Footer) != fmt.Sprintf("footer-%d", i) {
			t.Fatalf("day %d: Day=%d Footer=%q", i, d.Day, d.Footer)
		}
		if !reflect.DeepEqual(d.Records, recs) {
			t.Fatalf("day %d records differ:\n got %+v\nwant %+v", i, d.Records, recs)
		}
	}
}

func TestWALMissingFileIsEmpty(t *testing.T) {
	days, tail, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.log"))
	if days != nil || tail != nil || err != nil {
		t.Fatalf("missing file: days=%v tail=%v err=%v", days, tail, err)
	}
}

func TestWALUnsealedTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecords()
	w.BeginDay(0)
	for _, r := range recs {
		w.Put(r)
	}
	if err := w.SealDay([]byte("f0")); err != nil {
		t.Fatal(err)
	}
	// Day 1 begins and writes a record but is never sealed: the "crash"
	// here is Close without SealDay (flushed but not durable-marked).
	w.BeginDay(1)
	w.Put(recs[0])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	days, tail, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if tail == nil {
		t.Fatal("unsealed tail reported no tail error")
	}
	if len(days) != 1 || days[0].Day != 0 || string(days[0].Footer) != "f0" {
		t.Fatalf("sealed prefix lost: %+v", days)
	}
}

func TestWALTruncationNeverPanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		w.BeginDay(day)
		for _, r := range walRecords() {
			w.Put(r)
		}
		if err := w.SealDay([]byte{byte(day)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	full, tail := ReplayWALBytes(b)
	if tail != nil || len(full) != 3 {
		t.Fatalf("full replay: %d days, tail=%v", len(full), tail)
	}
	for n := 0; n < len(b); n++ {
		days, _ := ReplayWALBytes(b[:n])
		// Any cut yields a (possibly empty) prefix of the sealed days.
		if len(days) > 3 {
			t.Fatalf("cut at %d yielded %d days", n, len(days))
		}
		for i, d := range days {
			if !reflect.DeepEqual(d, full[i]) {
				t.Fatalf("cut at %d: day %d differs from full replay", n, i)
			}
		}
	}
}

func TestWALBitFlipsNeverPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BeginDay(0)
	w.Put(walRecords()[0])
	if err := w.SealDay(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xFF
		days, tail := ReplayWALBytes(mut)
		if tail == nil && !reflect.DeepEqual(days, mustReplay(t, b)) {
			t.Fatalf("flip at %d silently changed the replay", i)
		}
	}
}

func mustReplay(t *testing.T, b []byte) []WALDay {
	t.Helper()
	days, tail := ReplayWALBytes(b)
	if tail != nil {
		t.Fatalf("replay of clean log failed: %v", tail)
	}
	return days
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.BeginDay(0)
	w.Put(walRecords()[0])
	if err := w.SealDay([]byte("f")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	// Post-reset writes land after the magic, not after stale bytes.
	w.BeginDay(7)
	if err := w.SealDay([]byte("g")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	days, tail, err := ReplayWAL(path)
	if err != nil || tail != nil {
		t.Fatalf("replay: tail=%v err=%v", tail, err)
	}
	if len(days) != 1 || days[0].Day != 7 || string(days[0].Footer) != "g" {
		t.Fatalf("post-reset replay: %+v", days)
	}
}

// FuzzCheckpointDecode pins the package's core promise: arbitrary input
// never panics the checkpoint decoder, and anything that decodes cleanly
// re-encodes to an image that decodes to the same state.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(checkpointMagic))
	f.Add(MarshalCheckpoint(snapstore.New().ExportState(), nil))
	f.Add(MarshalCheckpoint(testStore(f).ExportState(), []byte(`{"cursor":1}`)))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, campaign, err := UnmarshalCheckpoint(b)
		if err != nil {
			return
		}
		// FromState may still reject structurally inconsistent input —
		// but it must do so with an error, not a panic.
		if s, err := snapstore.FromState(st); err == nil {
			_ = s.Stats()
		}
		st2, campaign2, err := UnmarshalCheckpoint(MarshalCheckpoint(st, campaign))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(st, st2) || !bytes.Equal(campaign, campaign2) {
			t.Fatal("re-encode round trip changed the state")
		}
	})
}

// FuzzWALReplay pins the WAL replay guarantees on arbitrary input: no
// panics, sealed days strictly increasing, replay deterministic, and —
// the property follow-mode tailing leans on — replaying any byte prefix
// yields a prefix of the full log's days, so a reader that catches the
// writer mid-append sees a shorter history, never a different one.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	{
		path := filepath.Join(f.TempDir(), "wal.log")
		w, err := OpenWAL(path)
		if err != nil {
			f.Fatal(err)
		}
		w.BeginDay(0)
		for _, r := range walRecords() {
			w.Put(r)
		}
		w.SealDay([]byte("footer"))
		w.BeginDay(2)
		w.Put(walRecords()[1])
		w.Close()
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Torn tail (the writer died mid-entry) and a flipped bit inside a
		// sealed group (disk corruption): the shapes tailing must survive.
		f.Add(b[:len(b)-3])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		days, _ := ReplayWALBytes(b)
		for i := 1; i < len(days); i++ {
			if days[i].Day <= days[i-1].Day {
				t.Fatalf("replayed days not increasing: %d then %d", days[i-1].Day, days[i].Day)
			}
		}
		again, _ := ReplayWALBytes(b)
		if !reflect.DeepEqual(days, again) {
			t.Fatal("replay not deterministic")
		}
		for _, cut := range []int{len(b) / 3, len(b) / 2, len(b) - 1} {
			if cut <= 0 || cut >= len(b) {
				continue
			}
			pre, _ := ReplayWALBytes(b[:cut])
			if len(pre) > len(days) || (len(pre) > 0 && !reflect.DeepEqual(pre, days[:len(pre)])) {
				t.Fatalf("prefix replay at %d bytes is not a prefix of the full replay:\nprefix: %+v\nfull:   %+v",
					cut, pre, days)
			}
		}
	})
}

// TestWALReplayWhileWriting is the snapdisk half of the follow-mode
// guarantee: a reader that snapshots the WAL file (os.ReadFile, exactly
// what serve.FollowSource does) while the owning campaign is actively
// appending must only ever decode complete sealed groups, with each
// successive read extending the previous one — never a partial group,
// never a rewritten history. Run with -race: reader and writer share no
// Go state, and this test is what checks that claim.
func TestWALReplayWhileWriting(t *testing.T) {
	const days = 40
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	done := make(chan struct{})
	var readerFail error
	go func() {
		defer close(done)
		var prev []WALDay
		for i := 0; ; i++ {
			b, err := os.ReadFile(path)
			if err != nil {
				readerFail = err
				return
			}
			got, _ := ReplayWALBytes(b)
			for j, wd := range got {
				if want := []byte(fmt.Sprintf("footer-%d", wd.Day)); !bytes.Equal(wd.Footer, want) {
					readerFail = fmt.Errorf("day %d: footer %q, want %q — a partial group leaked", wd.Day, wd.Footer, want)
					return
				}
				if j < len(prev) && !reflect.DeepEqual(prev[j], got[j]) {
					readerFail = fmt.Errorf("read %d rewrote already-observed day %d", i, prev[j].Day)
					return
				}
			}
			if len(got) < len(prev) {
				readerFail = fmt.Errorf("read %d went backwards: %d days after %d", i, len(got), len(prev))
				return
			}
			prev = got
			if len(got) == days {
				return
			}
		}
	}()

	recs := walRecords()
	for day := 0; day < days; day++ {
		if err := w.BeginDay(day); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.SealDay([]byte(fmt.Sprintf("footer-%d", day))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if readerFail != nil {
		t.Fatal(readerFail)
	}
}

// TestOpenDirReadOnly pins the read-only contract: an existing directory
// opens and serves its newest checkpoint untouched, a missing directory
// is an error (OpenDir would silently create an empty one), and opening
// read-only must not create, clear, or truncate anything — in particular
// not the WAL, which belongs to the campaign that owns the directory.
func TestOpenDirReadOnly(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDirReadOnly(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("OpenDirReadOnly(missing) = nil error, want error")
	}
	file := filepath.Join(dir, "afile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDirReadOnly(file); err == nil {
		t.Fatal("OpenDirReadOnly(regular file) = nil error, want error")
	}

	// Write a checkpoint + a fake WAL through the owning path, then
	// reopen read-only and check nothing changed on disk.
	owner, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := testStore(t).ExportState()
	if err := owner.WriteCheckpoint(6, st, []byte("cursor")); err != nil {
		t.Fatal(err)
	}
	walBytes := []byte("campaign-owned wal contents")
	if err := os.WriteFile(owner.WALPath(), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenDirReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, campaign, label, ok, err := ro.LatestCheckpoint()
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if label != 6 || string(campaign) != "cursor" {
		t.Fatalf("label=%d campaign=%q, want 6 %q", label, campaign, "cursor")
	}
	diffStates(t, got, st)
	after, err := os.ReadFile(ro.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, walBytes) {
		t.Fatalf("read-only open changed the WAL: %q -> %q", walBytes, after)
	}
}

// benchStore builds a store shaped like a real campaign: nSites apexes
// over nDays days with ~2% daily churn.
func benchStore(b *testing.B, nSites, nDays int) *snapstore.Store {
	b.Helper()
	s := snapstore.New()
	for day := 0; day < nDays; day++ {
		w := s.BeginDay(day)
		for i := 0; i < nSites; i++ {
			suffix := 0
			if day > 0 && i%50 == day%50 {
				suffix = day // churn: this site's address changes today
			}
			w.Put(rec(i+1, fmt.Sprintf("site%05d.com", i),
				[]string{fmt.Sprintf("10.%d.%d.%d", i/250, i%250, suffix)},
				[]string{"edge.shared-cdn.net"},
				[]string{"ns1.shared-dns.net", "ns2.shared-dns.net"}, true, true))
		}
		w.Seal()
	}
	return s
}

func BenchmarkCheckpointEncode(b *testing.B) {
	const nSites, nDays = 1000, 30
	st := benchStore(b, nSites, nDays).ExportState()
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size = len(MarshalCheckpoint(st, nil))
	}
	b.ReportMetric(float64(size)/float64(nSites*nDays), "bytes/domain-day")
	b.SetBytes(int64(size))
}

func BenchmarkCheckpointDecode(b *testing.B) {
	const nSites, nDays = 1000, 30
	buf := MarshalCheckpoint(benchStore(b, nSites, nDays).ExportState(), nil)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := UnmarshalCheckpoint(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snapstore.FromState(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendDay(b *testing.B) {
	const nSites = 1000
	path := filepath.Join(b.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	recs := make([]collect.Record, nSites)
	for i := range recs {
		recs[i] = rec(i+1, fmt.Sprintf("site%05d.com", i),
			[]string{fmt.Sprintf("10.0.%d.%d", i/250, i%250)},
			[]string{"edge.shared-cdn.net"}, []string{"ns1.shared-dns.net"}, true, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.BeginDay(i); err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Put(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.SealDay([]byte("footer")); err != nil {
			b.Fatal(err)
		}
	}
}
