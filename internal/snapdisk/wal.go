package snapdisk

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
)

// WAL is the campaign's day-level write-ahead log. Each day in flight is
// one group: a begin entry, the day's Put records teed in as the
// campaign's DayWriter receives them, and a seal entry carrying the
// campaign's per-day footer blob. Only the seal is durably flushed — a
// crash mid-day leaves an unsealed tail that replay drops, and the
// campaign re-collects that day live (the world is quiescent during a
// day and the resolver cache is purged at each pass start, so the rerun
// is value-identical). Sealed groups between checkpoints are what resume
// replays instead of re-querying.
//
// Entry framing: [1-byte kind][uvarint payload length][payload]
// [4-byte little-endian CRC32-IEEE of kind+payload], after an 8-byte
// file magic. The CRC covers the kind byte so a flipped kind cannot
// reinterpret a payload.
type WAL struct {
	f  *os.File
	bw *bufio.Writer
}

const walMagic = "RRDPSWL1"

// WAL entry kinds.
const (
	walBegin = 1 // payload: day number
	walPut   = 2 // payload: one collect.Record
	walSeal  = 3 // payload: opaque campaign footer
)

// OpenWAL opens (creating if needed) a WAL for appending. An empty file
// gets the magic header; a non-empty one is appended to as-is, so open
// a WAL for writing only after recovery has truncated or validated it.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("snapdisk: %w", err)
	}
	w := &WAL{f: f, bw: bufio.NewWriter(f)}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("snapdisk: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := w.bw.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("snapdisk: %w", err)
		}
	}
	return w, nil
}

func (w *WAL) writeEntry(kind byte, payload []byte) error {
	var hdr Writer
	hdr.Uvarint(uint64(len(payload)))
	if err := w.bw.WriteByte(kind); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if _, err := w.bw.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	sum := crc32.ChecksumIEEE(append([]byte{kind}, payload...))
	_, err := w.bw.Write([]byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
	if err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	return nil
}

// BeginDay starts a day group.
func (w *WAL) BeginDay(day int) error {
	var p Writer
	p.Int(day)
	return w.writeEntry(walBegin, p.Bytes())
}

// Put appends one record to the open day group.
func (w *WAL) Put(rec collect.Record) error {
	var p Writer
	encodeRecord(&p, rec)
	return w.writeEntry(walPut, p.Bytes())
}

// SealDay closes the open day group with the campaign's footer blob and
// makes the whole group durable (flush + fsync). After SealDay returns,
// replay will yield this day even across a crash.
func (w *WAL) SealDay(footer []byte) error {
	if footer == nil {
		footer = []byte{}
	}
	if err := w.writeEntry(walSeal, footer); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	return nil
}

// Reset truncates the log back to its magic header — called right after
// a full checkpoint subsumes the sealed days.
func (w *WAL) Reset() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	w.bw.Reset(w.f)
	return nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	return nil
}

// WALDay is one sealed day group recovered from the log.
type WALDay struct {
	Day     int
	Records []collect.Record
	Footer  []byte
}

// ReplayWAL reads a WAL file and returns its sealed day groups. A
// missing file is an empty log. The returned tail error (wrapping
// ErrCorrupt) is advisory: it reports why replay stopped before the end
// of the file — a truncated or bit-flipped tail, which recovery expects
// after a mid-day crash — while the sealed days before it are intact and
// usable. err is reserved for I/O failures.
func ReplayWAL(path string) (days []WALDay, tail error, err error) {
	b, rerr := os.ReadFile(path)
	if os.IsNotExist(rerr) {
		return nil, nil, nil
	}
	if rerr != nil {
		return nil, nil, fmt.Errorf("snapdisk: %w", rerr)
	}
	days, tail = ReplayWALBytes(b)
	return days, tail, nil
}

// ReplayWALBytes parses a WAL image, returning every fully sealed day
// group in order. Parsing stops at the first damaged or truncated entry
// and at the first structural violation (a Put outside a day group, a
// day number going backwards); whatever follows is dropped and the tail
// error says why. Damage therefore costs at most the unsealed day —
// never a panic, never a half-applied day.
func ReplayWALBytes(b []byte) (days []WALDay, tail error) {
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != walMagic {
		return nil, corruptf("bad wal magic")
	}
	off := len(walMagic)
	var open *WALDay
	for off < len(b) {
		kind := b[off]
		r := NewReader(b[off+1:])
		n := r.Uvarint()
		if r.Err() != nil {
			return days, corruptf("bad entry length at offset %d", off)
		}
		hdrLen := 1 + (len(b) - off - 1 - r.Remaining())
		if n > uint64(len(b)-off-hdrLen) || len(b)-off-hdrLen-int(n) < 4 {
			return days, corruptf("truncated entry at offset %d", off)
		}
		payload := b[off+hdrLen : off+hdrLen+int(n)]
		cb := b[off+hdrLen+int(n):]
		want := uint32(cb[0]) | uint32(cb[1])<<8 | uint32(cb[2])<<16 | uint32(cb[3])<<24
		sum := crc32.ChecksumIEEE(append([]byte{kind}, payload...))
		if sum != want {
			return days, corruptf("entry checksum mismatch at offset %d", off)
		}
		off += hdrLen + int(n) + 4

		switch kind {
		case walBegin:
			if open != nil {
				return days, corruptf("begin-day inside open day %d", open.Day)
			}
			pr := NewReader(payload)
			day := pr.Int()
			if pr.Err() != nil || pr.Remaining() != 0 {
				return days, corruptf("bad begin-day payload")
			}
			if len(days) > 0 && day <= days[len(days)-1].Day {
				return days, corruptf("day %d not after day %d", day, days[len(days)-1].Day)
			}
			open = &WALDay{Day: day}
		case walPut:
			if open == nil {
				return days, corruptf("put outside a day group")
			}
			pr := NewReader(payload)
			rec := decodeRecord(pr)
			if err := pr.Err(); err != nil {
				return days, fmt.Errorf("day %d record: %w", open.Day, err)
			}
			if pr.Remaining() != 0 {
				return days, corruptf("day %d record has trailing bytes", open.Day)
			}
			open.Records = append(open.Records, rec)
		case walSeal:
			if open == nil {
				return days, corruptf("seal outside a day group")
			}
			open.Footer = append([]byte(nil), payload...)
			days = append(days, *open)
			open = nil
		default:
			return days, corruptf("unknown entry kind %d", kind)
		}
	}
	if open != nil {
		return days, corruptf("day %d never sealed", open.Day)
	}
	return days, nil
}

// encodeRecord writes one collect.Record. Full names, not interner IDs:
// the WAL must replay standalone, and a mid-campaign day legitimately
// introduces names the last checkpoint's interner has never seen.
func encodeRecord(w *Writer, rec collect.Record) {
	w.Int(rec.Domain.Rank)
	w.Name(rec.Domain.Apex)
	if rec.Addrs == nil {
		w.Uvarint(0)
	} else {
		w.Uvarint(uint64(len(rec.Addrs)) + 1)
		for _, a := range rec.Addrs {
			w.Addr(a)
		}
	}
	writeNames(w, rec.CNAMEs)
	writeNames(w, rec.NSHosts)
	w.Bool(rec.ResolveOK)
	w.Bool(rec.NSOK)
}

func decodeRecord(r *Reader) collect.Record {
	var rec collect.Record
	rec.Domain = alexa.Domain{Rank: r.Int(), Apex: r.Name()}
	nAddrs := r.Len(2)
	if r.Err() == nil && nAddrs > 0 {
		rec.Addrs = make([]netip.Addr, 0, nAddrs-1)
		for i := 0; i < nAddrs-1 && r.Err() == nil; i++ {
			rec.Addrs = append(rec.Addrs, r.Addr())
		}
	}
	rec.CNAMEs = readNames(r)
	rec.NSHosts = readNames(r)
	rec.ResolveOK = r.Bool()
	rec.NSOK = r.Bool()
	return rec
}

// writeNames / readNames keep the nil/empty distinction (length 0 is
// nil, n+1 is n names) so a replayed record compares deep-equal to the
// one that was logged.
func writeNames(w *Writer, names []dnsmsg.Name) {
	if names == nil {
		w.Uvarint(0)
		return
	}
	w.Uvarint(uint64(len(names)) + 1)
	for _, n := range names {
		w.Name(n)
	}
}

func readNames(r *Reader) []dnsmsg.Name {
	n := r.Len(1)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]dnsmsg.Name, 0, n-1)
	for i := 0; i < n-1 && r.Err() == nil; i++ {
		out = append(out, r.Name())
	}
	return out
}
