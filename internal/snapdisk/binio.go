// Package snapdisk persists campaign state: versioned binary checkpoints
// of a snapstore.Store (plus an opaque campaign-cursor blob), and a
// day-level write-ahead log that records every Put of the day in flight,
// so a campaign killed on day 35 of 42 restarts where it left off instead
// of losing six weeks of collection.
//
// Layering: snapstore owns the in-memory delta store and exposes its
// serializable shape as snapstore.State; snapdisk owns the on-disk
// encoding (sections, CRCs, atomic renames, tail-tolerant WAL replay);
// experiment owns what goes in the campaign blob. Decoding never panics:
// arbitrary or bit-flipped input returns an error (checksum, bounds, or
// structural), and a truncated WAL tail is detected and dropped — the
// exact guarantees FuzzCheckpointDecode and FuzzWALReplay pin.
package snapdisk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"

	"rrdps/internal/dnsmsg"
)

// ErrCorrupt is wrapped by every decoding error caused by damaged input
// (as opposed to I/O failures), so callers can distinguish "this file is
// bad" from "I could not read it".
var ErrCorrupt = errors.New("snapdisk: corrupt input")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Writer accumulates a length-delimited binary encoding. The zero value
// is ready to use; Bytes returns the encoded buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a signed integer (zigzag varint).
func (w *Writer) Int(v int) { w.buf = binary.AppendVarint(w.buf, int64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes8 appends a length-prefixed byte slice.
func (w *Writer) Bytes8(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Name appends a DNS name.
func (w *Writer) Name(n dnsmsg.Name) { w.String(string(n)) }

// Addr appends a netip.Addr in its 4- or 16-byte binary form.
func (w *Writer) Addr(a netip.Addr) {
	b, err := a.MarshalBinary()
	if err != nil {
		// netip.Addr.MarshalBinary cannot fail today; guard anyway.
		panic(fmt.Sprintf("snapdisk: marshal addr %v: %v", a, err))
	}
	w.Bytes8(b)
}

// Reader decodes a Writer's encoding with a sticky error: every getter
// returns a zero value after the first failure, and Err reports it. This
// keeps decoding loops linear while guaranteeing that malformed input —
// truncation, absurd lengths, bit flips — surfaces as an error, never a
// panic or an over-allocation.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Int reads a signed (zigzag varint) integer.
func (r *Reader) Int() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	if v > math.MaxInt || v < math.MinInt {
		r.fail("varint %d out of int range", v)
		return 0
	}
	return int(v)
}

// Bool reads a boolean byte (anything non-zero-or-one is corruption).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool past end")
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail("bad bool byte %#x", b)
		return false
	}
	return b == 1
}

// Len reads a count that prefixes n items of at least itemSize bytes
// each, rejecting counts the remaining input cannot possibly hold — the
// guard that keeps corrupt lengths from turning into giant allocations.
func (r *Reader) Len(itemSize int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if itemSize < 1 {
		itemSize = 1
	}
	if v > uint64(r.Remaining()/itemSize) {
		r.fail("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// Bytes8 reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) Bytes8() []byte {
	n := r.Len(1)
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Name reads a DNS name.
func (r *Reader) Name() dnsmsg.Name { return dnsmsg.Name(r.String()) }

// Addr reads a netip.Addr.
func (r *Reader) Addr() netip.Addr {
	b := r.Bytes8()
	if r.err != nil {
		return netip.Addr{}
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(b); err != nil {
		r.fail("bad addr: %v", err)
		return netip.Addr{}
	}
	return a
}
