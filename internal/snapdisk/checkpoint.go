package snapdisk

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rrdps/internal/snapstore"
)

// Checkpoint format: an 8-byte magic, then self-delimiting sections, each
// [uvarint id][uvarint payload length][payload][4-byte little-endian
// CRC32-IEEE of the payload], terminated by the end section (id 0, empty).
// A reader verifies every section's checksum before interpreting a byte
// of it, so a bit flip anywhere surfaces as ErrCorrupt rather than as a
// subtly wrong store.
const checkpointMagic = "RRDPSCK1"

// Section ids. New sections get new ids; the format version only bumps
// when an existing section's encoding changes incompatibly.
const (
	secEnd      = 0
	secMeta     = 1
	secNames    = 2
	secApexes   = 3
	secChains   = 4
	secDays     = 5
	secCampaign = 6
)

// checkpointVersion is the current format version, carried in secMeta.
const checkpointVersion = 1

func appendSection(buf []byte, id uint64, payload []byte) []byte {
	var w Writer
	w.Uvarint(id)
	w.Uvarint(uint64(len(payload)))
	buf = append(buf, w.Bytes()...)
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(payload)
	return append(buf, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// readSection consumes one section from r, verifying its checksum.
func readSection(r *Reader) (id uint64, payload []byte, err error) {
	id = r.Uvarint()
	n := r.Len(1)
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	payload = r.buf[r.off : r.off+n]
	r.off += n
	if r.Remaining() < 4 {
		return 0, nil, corruptf("section %d missing checksum", id)
	}
	b := r.buf[r.off:]
	want := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	r.off += 4
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, corruptf("section %d checksum mismatch (%#x != %#x)", id, got, want)
	}
	return id, payload, nil
}

// MarshalCheckpoint encodes a store state plus an opaque campaign-cursor
// blob (nil for a store-only checkpoint) into the checkpoint format.
func MarshalCheckpoint(st snapstore.State, campaign []byte) []byte {
	buf := []byte(checkpointMagic)

	var meta Writer
	meta.Uvarint(checkpointVersion)
	buf = appendSection(buf, secMeta, meta.Bytes())

	var names Writer
	names.Uvarint(uint64(len(st.Names)))
	for _, n := range st.Names {
		names.Name(n)
	}
	buf = appendSection(buf, secNames, names.Bytes())

	var apexes Writer
	apexes.Uvarint(uint64(len(st.Apexes)))
	for _, a := range st.Apexes {
		apexes.Name(a.Name)
		apexes.Int(a.Rank)
	}
	buf = appendSection(buf, secApexes, apexes.Bytes())

	var chains Writer
	chains.Uvarint(uint64(len(st.Chains)))
	for _, chain := range st.Chains {
		chains.Uvarint(uint64(len(chain)))
		for _, v := range chain {
			chains.Int(v.Day)
			chains.Bool(v.Gone)
			writeRecordState(&chains, v.Rec)
		}
	}
	buf = appendSection(buf, secChains, chains.Bytes())

	var days Writer
	days.Uvarint(uint64(len(st.Days)))
	for _, d := range st.Days {
		days.Int(d)
	}
	days.Int(st.Evicted)
	days.Int(st.Window)
	days.Int(st.Versions)
	days.Int(st.Tombstones)
	buf = appendSection(buf, secDays, days.Bytes())

	if campaign != nil {
		buf = appendSection(buf, secCampaign, campaign)
	}
	return appendSection(buf, secEnd, nil)
}

func writeRecordState(w *Writer, rec snapstore.RecordState) {
	w.Uvarint(uint64(len(rec.Addrs)))
	for _, a := range rec.Addrs {
		w.Addr(a)
	}
	writeIDs(w, rec.CNAMEs)
	writeIDs(w, rec.NSHosts)
	w.Bool(rec.ResolveOK)
	w.Bool(rec.NSOK)
}

// writeIDs keeps the nil/empty distinction record equality depends on:
// length 0 means nil, length n+1 means n IDs.
func writeIDs(w *Writer, ids []uint32) {
	if ids == nil {
		w.Uvarint(0)
		return
	}
	w.Uvarint(uint64(len(ids)) + 1)
	for _, id := range ids {
		w.Uvarint(uint64(id))
	}
}

func readIDs(r *Reader) []uint32 {
	n := r.Len(1)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]uint32, 0, n-1)
	for i := 0; i < n-1; i++ {
		v := r.Uvarint()
		if v > 1<<32-1 {
			r.fail("name id %d out of range", v)
			return nil
		}
		out = append(out, uint32(v))
	}
	return out
}

func readRecordState(r *Reader) snapstore.RecordState {
	var rec snapstore.RecordState
	nAddrs := r.Len(2)
	for i := 0; i < nAddrs && r.Err() == nil; i++ {
		rec.Addrs = append(rec.Addrs, r.Addr())
	}
	rec.CNAMEs = readIDs(r)
	rec.NSHosts = readIDs(r)
	rec.ResolveOK = r.Bool()
	rec.NSOK = r.Bool()
	return rec
}

// UnmarshalCheckpoint decodes a checkpoint back into a store state and
// the campaign blob it carried (nil when none was written). Any damage —
// truncation, checksum mismatch, structural nonsense — returns an error
// wrapping ErrCorrupt; it never panics and never returns a silently
// partial state.
func UnmarshalCheckpoint(b []byte) (snapstore.State, []byte, error) {
	var st snapstore.State
	if len(b) < len(checkpointMagic) || string(b[:len(checkpointMagic)]) != checkpointMagic {
		return st, nil, corruptf("bad magic")
	}
	r := NewReader(b[len(checkpointMagic):])
	var campaign []byte
	seen := map[uint64]bool{}
	for {
		id, payload, err := readSection(r)
		if err != nil {
			return st, nil, err
		}
		if id == secEnd {
			break
		}
		if seen[id] {
			return st, nil, corruptf("duplicate section %d", id)
		}
		seen[id] = true
		sr := NewReader(payload)
		switch id {
		case secMeta:
			if v := sr.Uvarint(); sr.Err() == nil && v != checkpointVersion {
				return st, nil, corruptf("unsupported checkpoint version %d", v)
			}
		case secNames:
			n := sr.Len(1)
			for i := 0; i < n && sr.Err() == nil; i++ {
				st.Names = append(st.Names, sr.Name())
			}
		case secApexes:
			n := sr.Len(2)
			for i := 0; i < n && sr.Err() == nil; i++ {
				st.Apexes = append(st.Apexes, snapstore.ApexState{Name: sr.Name(), Rank: sr.Int()})
			}
		case secChains:
			n := sr.Len(1)
			for i := 0; i < n && sr.Err() == nil; i++ {
				m := sr.Len(1)
				chain := make([]snapstore.VersionState, 0, m)
				for j := 0; j < m && sr.Err() == nil; j++ {
					chain = append(chain, snapstore.VersionState{
						Day:  sr.Int(),
						Gone: sr.Bool(),
						Rec:  readRecordState(sr),
					})
				}
				st.Chains = append(st.Chains, chain)
			}
		case secDays:
			n := sr.Len(1)
			for i := 0; i < n && sr.Err() == nil; i++ {
				st.Days = append(st.Days, sr.Int())
			}
			st.Evicted = sr.Int()
			st.Window = sr.Int()
			st.Versions = sr.Int()
			st.Tombstones = sr.Int()
		case secCampaign:
			// make, not append: a present-but-empty blob must stay
			// distinguishable from an absent one (nil).
			campaign = make([]byte, len(payload))
			copy(campaign, payload)
		default:
			// Unknown section from a newer writer: checksum verified, skip.
		}
		if err := sr.Err(); err != nil {
			return st, nil, fmt.Errorf("section %d: %w", id, err)
		}
	}
	for _, id := range []uint64{secMeta, secNames, secApexes, secChains, secDays} {
		if !seen[id] {
			return st, nil, corruptf("missing section %d", id)
		}
	}
	return st, campaign, nil
}

// WriteCheckpoint atomically writes a checkpoint file: the encoding goes
// to a temporary sibling, is synced, and is renamed over path, so a crash
// mid-write leaves either the old file or the new one — never a torn mix.
func WriteCheckpoint(path string, st snapstore.State, campaign []byte) error {
	buf := MarshalCheckpoint(st, campaign)
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapdisk: %w", err)
	}
	return nil
}

// ReadCheckpoint reads and decodes one checkpoint file.
func ReadCheckpoint(path string) (snapstore.State, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return snapstore.State{}, nil, fmt.Errorf("snapdisk: %w", err)
	}
	st, campaign, err := UnmarshalCheckpoint(b)
	if err != nil {
		return snapstore.State{}, nil, fmt.Errorf("snapdisk: %s: %w", path, err)
	}
	return st, campaign, nil
}

// Dir manages a campaign's checkpoint directory: numbered checkpoint
// files (ckpt-<label>.snap, atomic-renamed into place, newest two kept)
// plus the campaign's WAL.
type Dir struct {
	path string
}

// OpenDir opens (creating if needed) a checkpoint directory.
func OpenDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("snapdisk: %w", err)
	}
	return &Dir{path: path}, nil
}

// OpenDirReadOnly opens an existing checkpoint directory for reading —
// the lookup-service path. Unlike OpenDir it never creates the
// directory, and a consumer holding a read-only Dir must only call
// LatestCheckpoint: the WAL append path (and the campaign code that
// truncates the WAL on open) belongs to the campaign that owns the
// directory. A missing directory is an error, not an empty campaign,
// because a reader pointed at the wrong path should say so rather than
// serve nothing.
func OpenDirReadOnly(path string) (*Dir, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("snapdisk: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("snapdisk: %s is not a directory", path)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// WALPath returns the campaign WAL's path inside the directory.
func (d *Dir) WALPath() string { return filepath.Join(d.path, "wal.log") }

func (d *Dir) checkpointPath(label int) string {
	return filepath.Join(d.path, fmt.Sprintf("ckpt-%09d.snap", label))
}

// checkpointLabels returns the labels of the checkpoint files present,
// ascending. Unparsable names are ignored.
func (d *Dir) checkpointLabels() ([]int, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("snapdisk: %w", err)
	}
	var labels []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		var label int
		if _, err := fmt.Sscanf(name, "ckpt-%d.snap", &label); err != nil {
			continue
		}
		labels = append(labels, label)
	}
	sort.Ints(labels)
	return labels, nil
}

// WriteCheckpoint writes a labelled checkpoint (labels must increase over
// a campaign's life; day or week numbers do) and prunes all but the two
// newest, keeping one fallback in case the newest is damaged on disk.
func (d *Dir) WriteCheckpoint(label int, st snapstore.State, campaign []byte) error {
	if err := WriteCheckpoint(d.checkpointPath(label), st, campaign); err != nil {
		return err
	}
	labels, err := d.checkpointLabels()
	if err != nil {
		return err
	}
	for len(labels) > 2 {
		if err := os.Remove(d.checkpointPath(labels[0])); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("snapdisk: %w", err)
		}
		labels = labels[1:]
	}
	return nil
}

// LatestCheckpoint decodes the newest valid checkpoint in the directory,
// falling back to older ones when the newest is corrupt. ok is false when
// no checkpoint file decodes (a fresh or damaged-beyond-repair
// directory); err reports I/O failures, never corruption.
func (d *Dir) LatestCheckpoint() (st snapstore.State, campaign []byte, label int, ok bool, err error) {
	labels, err := d.checkpointLabels()
	if err != nil {
		return st, nil, 0, false, err
	}
	for i := len(labels) - 1; i >= 0; i-- {
		st, campaign, rerr := ReadCheckpoint(d.checkpointPath(labels[i]))
		if rerr == nil {
			return st, campaign, labels[i], true, nil
		}
	}
	return snapstore.State{}, nil, 0, false, nil
}

// Clear removes every checkpoint file and the WAL — a fresh campaign
// taking ownership of the directory.
func (d *Dir) Clear() error {
	labels, err := d.checkpointLabels()
	if err != nil {
		return err
	}
	for _, label := range labels {
		if err := os.Remove(d.checkpointPath(label)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("snapdisk: %w", err)
		}
	}
	if err := os.Remove(d.WALPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("snapdisk: %w", err)
	}
	return nil
}
