package snapstore

import (
	"reflect"
	"sync"
	"testing"
)

// viewSnapshot materializes a view's latest day as a comparable value.
func viewSnapshot(t *testing.T, v *View) map[string][]string {
	t.Helper()
	day, ok := v.LatestDay()
	if !ok {
		t.Fatal("view has no days")
	}
	out := make(map[string][]string)
	for cur := v.Cursor(day); cur.Next(); {
		r := cur.Record()
		var addrs []string
		for _, a := range r.Addrs {
			addrs = append(addrs, a.String())
		}
		out[string(cur.Apex())] = addrs
	}
	return out
}

// TestSealedViewSurvivesAppends pins the View contract the lookup
// service depends on: a view taken after Seal keeps answering for its
// sealed days — same records, same stats — no matter how many days the
// owning store appends, tombstones, or evicts afterwards.
func TestSealedViewSurvivesAppends(t *testing.T) {
	s := New()
	s.SetWindow(2)
	putDay(t, s, 1,
		rec(1, "a.com", []string{"192.0.2.1"}, nil, []string{"ns.a.com"}, true, true),
		rec(2, "b.com", []string{"192.0.2.2"}, nil, nil, true, false),
	)
	putDay(t, s, 2,
		rec(1, "a.com", []string{"192.0.2.9"}, nil, []string{"ns.a.com"}, true, true),
		rec(2, "b.com", []string{"192.0.2.2"}, nil, nil, true, false),
	)

	v := s.SealedView()
	want := viewSnapshot(t, v)
	wantStats := v.Stats()
	wantHist := v.History(name("a.com"))

	// Keep mutating the store: new apexes (grows metas/chains/byApex),
	// changed records (appends to shared chains), a tombstone for b.com,
	// and enough days that the window evicts everything the view holds.
	for day := 3; day <= 8; day++ {
		putDay(t, s, day,
			rec(1, "a.com", []string{"203.0.113.7"}, nil, nil, true, true),
			rec(3, "c.com", []string{"192.0.2.3"}, nil, nil, true, true),
		)
	}

	if got := viewSnapshot(t, v); !reflect.DeepEqual(got, want) {
		t.Fatalf("view drifted after writer appends:\n got %v\nwant %v", got, want)
	}
	if got := v.Stats(); got != wantStats {
		t.Fatalf("view stats drifted: %+v != %+v", got, wantStats)
	}
	if got := v.History(name("a.com")); !reflect.DeepEqual(got, wantHist) {
		t.Fatalf("view history drifted:\n got %+v\nwant %+v", got, wantHist)
	}
	if v.Contains(name("c.com")) {
		t.Fatal("view sees an apex first Put after it was taken")
	}
	if d, _ := v.LatestDay(); d != 2 {
		t.Fatalf("view LatestDay = %d, want 2", d)
	}
	if d, _ := s.LatestDay(); d != 8 {
		t.Fatalf("store LatestDay = %d, want 8", d)
	}
}

// TestSealedViewConcurrentReads drives readers over a sealed view while
// the owning store appends days — the exact writer/reader overlap a live
// lookup service produces. Run under -race this is the proof the
// structural copy shares nothing mutable.
func TestSealedViewConcurrentReads(t *testing.T) {
	s := New()
	s.SetWindow(3)
	for day := 1; day <= 3; day++ {
		putDay(t, s, day,
			rec(1, "a.com", []string{"192.0.2.1"}, []string{"edge.dps.com"}, nil, true, true),
			rec(2, "b.com", []string{"192.0.2.2"}, nil, []string{"ns.b.com"}, true, true),
		)
	}
	v := s.SealedView()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				day, _ := v.LatestDay()
				for cur := v.Cursor(day); cur.Next(); {
					_ = cur.Record()
				}
				for pc := v.DiffPairs(day); pc.Next(); {
					_ = pc.Pair().Unchanged()
				}
				_, _ = v.RecordAt(name("a.com"), day)
				_ = v.History(name("b.com"))
				_ = v.Apexes()
				_ = v.Stats()
			}
		}()
	}

	for day := 4; day <= 20; day++ {
		w := s.BeginDay(day)
		w.Put(rec(1, "a.com", []string{"203.0.113.1"}, nil, nil, true, true))
		if day%2 == 0 {
			w.Put(rec(2, "b.com", []string{"192.0.2.2"}, nil, []string{"ns.b.com"}, true, true))
		}
		w.Put(rec(day, "new.com", []string{"198.51.100.1"}, nil, nil, true, false))
		w.Seal()
	}
	close(stop)
	wg.Wait()

	if d, _ := v.LatestDay(); d != 3 {
		t.Fatalf("view LatestDay = %d, want 3", d)
	}
}

// TestHistoryMatchesChain checks History returns the delta chain —
// one entry per stored change, tombstones marked Gone — not one entry
// per day.
func TestHistoryMatchesChain(t *testing.T) {
	s := New()
	putDay(t, s, 1, rec(1, "a.com", []string{"192.0.2.1"}, nil, nil, true, true))
	putDay(t, s, 2, rec(1, "a.com", []string{"192.0.2.1"}, nil, nil, true, true)) // unchanged: no new version
	putDay(t, s, 3, rec(1, "a.com", []string{"192.0.2.5"}, nil, nil, true, true))
	putDay(t, s, 4) // absent: tombstone

	hist := s.History(name("a.com"))
	if len(hist) != 3 {
		t.Fatalf("History len = %d, want 3 (two versions + tombstone): %+v", len(hist), hist)
	}
	if hist[0].Day != 1 || hist[0].Gone || hist[0].Rec.Addrs[0] != addr("192.0.2.1") {
		t.Errorf("hist[0] = %+v, want day-1 version", hist[0])
	}
	if hist[1].Day != 3 || hist[1].Gone || hist[1].Rec.Addrs[0] != addr("192.0.2.5") {
		t.Errorf("hist[1] = %+v, want day-3 version", hist[1])
	}
	if hist[2].Day != 4 || !hist[2].Gone {
		t.Errorf("hist[2] = %+v, want day-4 tombstone", hist[2])
	}
	if got := s.History(name("missing.com")); got != nil {
		t.Errorf("History(unknown) = %+v, want nil", got)
	}
}
