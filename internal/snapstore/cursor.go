package snapstore

import (
	"net/netip"

	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
)

// Cursor replays one day as a virtual full snapshot, yielding records in
// rank order without building the per-day map. The usual shape:
//
//	cur := store.Cursor(day)
//	for cur.Next() {
//		apex, rec := cur.Apex(), cur.Record()
//		...
//	}
//
// Records materialize one at a time without allocating: their slices are
// the store's interned backing data, shared across materializations, so
// callers must treat them as read-only.
type Cursor struct {
	v    *View
	day  int32
	pos  int
	idx  int32
	rec  crec
	full collect.Record
	ok   bool // full is materialized for the current position
}

// Cursor returns a cursor over day's records in rank order. It panics if
// day is not replayable (never sealed, or evicted by the window).
func (s *Store) Cursor(day int) *Cursor {
	v := s.view()
	return v.Cursor(day)
}

// Cursor returns a cursor over day's records in rank order; see
// Store.Cursor. A cursor from a SealedView stays valid while the owning
// store keeps appending.
func (v *View) Cursor(day int) *Cursor {
	return &Cursor{v: v, day: v.checkDay(day)}
}

// Next advances to the next live record; it returns false when the day is
// exhausted.
func (c *Cursor) Next() bool {
	for c.pos < len(c.v.rankOrder) {
		idx := c.v.rankOrder[c.pos]
		c.pos++
		if r, live := liveAt(c.v.chains[idx], c.day); live {
			c.idx, c.rec, c.ok = idx, r, false
			return true
		}
	}
	return false
}

// Apex returns the current record's apex.
func (c *Cursor) Apex() dnsmsg.Name { return c.v.metas[c.idx].name }

// Record materializes the current record.
func (c *Cursor) Record() collect.Record {
	if !c.ok {
		c.full, c.ok = c.v.materialize(c.idx, c.rec), true
	}
	return c.full
}

// Pair is one apex's (previous day, current day) record pair. Either side
// may be absent: PrevOK=false marks an apex newly live today, CurOK=false
// one that was tombstoned today.
type Pair struct {
	Apex      dnsmsg.Name
	Prev, Cur collect.Record
	PrevOK    bool
	CurOK     bool
}

// Unchanged reports whether both sides are live with identical values —
// the pairs a day-over-day differ can skip.
func (p Pair) Unchanged() bool {
	return p.PrevOK && p.CurOK &&
		p.Prev.ResolveOK == p.Cur.ResolveOK && p.Prev.NSOK == p.Cur.NSOK &&
		equalAddrs(p.Prev.Addrs, p.Cur.Addrs) &&
		equalNames(p.Prev.CNAMEs, p.Cur.CNAMEs) &&
		equalNames(p.Prev.NSHosts, p.Cur.NSHosts)
}

// PairCursor streams DiffPairs; see Store.DiffPairs.
type PairCursor struct {
	v        *View
	prevDay  int32
	day      int32
	havePrev bool
	pos      int
	pair     Pair
}

// DiffPairs returns a cursor yielding, in rank order, every apex live on
// day or on the previous sealed day, paired as (prev, cur) — the §IV-B.3
// day-over-day diff as a stream, with neither side materialized as a map.
// On the store's first day every pair has PrevOK=false. It panics if day
// (or its predecessor, when one exists in the window) is not replayable.
func (s *Store) DiffPairs(day int) *PairCursor {
	v := s.view()
	return v.DiffPairs(day)
}

// DiffPairs returns a (prev, cur) pair cursor over day; see
// Store.DiffPairs.
func (v *View) DiffPairs(day int) *PairCursor {
	d := v.checkDay(day)
	pc := &PairCursor{v: v, day: d}
	for i, sealed := range v.days {
		if sealed == day && i > 0 {
			pc.prevDay = int32(v.days[i-1])
			pc.havePrev = true
		}
	}
	return pc
}

// Next advances to the next pair; it returns false when exhausted.
func (pc *PairCursor) Next() bool {
	for pc.pos < len(pc.v.rankOrder) {
		idx := pc.v.rankOrder[pc.pos]
		pc.pos++
		chain := pc.v.chains[idx]
		cur, curLive := liveAt(chain, pc.day)
		var prev crec
		prevLive := false
		if pc.havePrev {
			prev, prevLive = liveAt(chain, pc.prevDay)
		}
		if !curLive && !prevLive {
			continue
		}
		pc.pair = Pair{Apex: pc.v.metas[idx].name, PrevOK: prevLive, CurOK: curLive}
		if prevLive {
			pc.pair.Prev = pc.v.materialize(idx, prev)
		}
		if curLive {
			pc.pair.Cur = pc.v.materialize(idx, cur)
		}
		return true
	}
	return false
}

// Pair returns the current pair.
func (pc *PairCursor) Pair() Pair { return pc.pair }

func equalAddrs(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNames(a, b []dnsmsg.Name) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
