package snapstore

import (
	"fmt"
	"net/netip"

	"rrdps/internal/dnsmsg"
)

// State is the serializable shape of a Store: everything a checkpoint
// must carry to rebuild the store value-identically — the interner table,
// the per-apex metadata and version chains (tombstones included), the
// replayable day list, and the retention/lifetime counters. The slices
// share backing arrays with the live store where that is safe (the store
// is append-only and never mutates an existing version), so exporting is
// cheap; FromState deep-copies on the way back in.
//
// snapdisk owns the on-disk encoding of this struct; State itself is the
// package boundary, so the store's fields can stay unexported.
type State struct {
	// Names is the interner table in ID order (NameID i names Names[i]).
	Names []dnsmsg.Name
	// Apexes is the per-apex invariant metadata, indexed by apex index.
	Apexes []ApexState
	// Chains holds each apex's version chain, aligned with Apexes.
	Chains [][]VersionState
	// Days is the replayable day list in append order.
	Days []int
	// Evicted counts days dropped by the retention window.
	Evicted int
	// Window is the retention bound (0 = unbounded).
	Window int
	// Versions / Tombstones are the lifetime append counters.
	Versions, Tombstones int
}

// ApexState is one apex's invariant metadata.
type ApexState struct {
	Name dnsmsg.Name
	Rank int
}

// VersionState is one link of a version chain.
type VersionState struct {
	Day  int
	Gone bool
	Rec  RecordState
}

// RecordState is the compact stored record, names as interner IDs.
type RecordState struct {
	Addrs     []netip.Addr
	CNAMEs    []uint32
	NSHosts   []uint32
	ResolveOK bool
	NSOK      bool
}

// ExportState captures the store's serializable shape. Call it between
// days (after Seal, before the next BeginDay), like every other read
// entry point.
func (s *Store) ExportState() State {
	st := State{
		Names:      append([]dnsmsg.Name(nil), s.interner.names...),
		Apexes:     make([]ApexState, len(s.metas)),
		Chains:     make([][]VersionState, len(s.chains)),
		Days:       append([]int(nil), s.days...),
		Evicted:    s.evicted,
		Window:     s.window,
		Versions:   s.versions,
		Tombstones: s.tombstones,
	}
	for i, m := range s.metas {
		st.Apexes[i] = ApexState{Name: m.name, Rank: int(m.rank)}
	}
	for i, chain := range s.chains {
		out := make([]VersionState, len(chain))
		for j, v := range chain {
			out[j] = VersionState{
				Day:  int(v.day),
				Gone: v.gone,
				Rec: RecordState{
					Addrs:     v.rec.addrs,
					CNAMEs:    idsOut(v.rec.cnames),
					NSHosts:   idsOut(v.rec.nsHosts),
					ResolveOK: v.rec.resolveOK,
					NSOK:      v.rec.nsOK,
				},
			}
		}
		st.Chains[i] = out
	}
	return st
}

// FromState rebuilds a store from an exported (or decoded) state. Unlike
// the panicking append paths, it validates everything it indexes with —
// name IDs, chain/apex alignment, day ordering — and returns an error on
// inconsistent input: a decoded checkpoint that passed its checksums can
// still be structurally wrong, and loading it must fail loudly rather
// than build a store that panics later.
func FromState(st State) (*Store, error) {
	if len(st.Chains) != len(st.Apexes) {
		return nil, fmt.Errorf("snapstore: %d chains for %d apexes", len(st.Chains), len(st.Apexes))
	}
	if st.Window < 0 || st.Evicted < 0 || st.Versions < 0 || st.Tombstones < 0 {
		return nil, fmt.Errorf("snapstore: negative counter in state")
	}
	for i := 1; i < len(st.Days); i++ {
		if st.Days[i] <= st.Days[i-1] {
			return nil, fmt.Errorf("snapstore: day list not strictly increasing at %d", i)
		}
	}

	s := New()
	s.window = st.Window
	s.evicted = st.Evicted
	s.versions = st.Versions
	s.tombstones = st.Tombstones
	s.days = append([]int(nil), st.Days...)

	s.interner.names = append([]dnsmsg.Name(nil), st.Names...)
	for id, n := range s.interner.names {
		if _, dup := s.interner.ids[n]; dup {
			return nil, fmt.Errorf("snapstore: duplicate interned name %q", n)
		}
		s.interner.ids[n] = NameID(id)
	}

	s.metas = make([]apexMeta, len(st.Apexes))
	s.chains = make([][]version, len(st.Apexes))
	for i, a := range st.Apexes {
		if _, dup := s.byApex[a.Name]; dup {
			return nil, fmt.Errorf("snapstore: duplicate apex %q", a.Name)
		}
		if a.Rank < 0 || a.Rank > 1<<31-1 {
			return nil, fmt.Errorf("snapstore: apex %q rank %d out of range", a.Name, a.Rank)
		}
		s.byApex[a.Name] = int32(i)
		s.metas[i] = apexMeta{name: a.Name, rank: int32(a.Rank)}

		chain := make([]version, len(st.Chains[i]))
		for j, vs := range st.Chains[i] {
			if j > 0 && vs.Day <= st.Chains[i][j-1].Day {
				return nil, fmt.Errorf("snapstore: apex %q chain days not increasing", a.Name)
			}
			if vs.Day < -1<<31 || vs.Day > 1<<31-1 {
				return nil, fmt.Errorf("snapstore: apex %q version day %d out of range", a.Name, vs.Day)
			}
			cnames, err := idsIn(vs.Rec.CNAMEs, len(s.interner.names))
			if err != nil {
				return nil, fmt.Errorf("snapstore: apex %q cname %v", a.Name, err)
			}
			nsHosts, err := idsIn(vs.Rec.NSHosts, len(s.interner.names))
			if err != nil {
				return nil, fmt.Errorf("snapstore: apex %q ns %v", a.Name, err)
			}
			chain[j] = version{
				day:  int32(vs.Day),
				gone: vs.Gone,
				rec: crec{
					addrs:       append([]netip.Addr(nil), vs.Rec.Addrs...),
					cnames:      cnames,
					nsHosts:     nsHosts,
					cnameNames:  s.interner.resolveAll(cnames),
					nsHostNames: s.interner.resolveAll(nsHosts),
					resolveOK:   vs.Rec.ResolveOK,
					nsOK:        vs.Rec.NSOK,
				},
			}
		}
		s.chains[i] = chain
	}
	s.rebuildRankOrder()
	return s, nil
}

// idsOut converts interned handles to plain uint32s, preserving nil.
func idsOut(ids []NameID) []uint32 {
	if ids == nil {
		return nil
	}
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}

// idsIn converts plain uint32s back to handles, bounds-checking each
// against the interner table and preserving nil.
func idsIn(ids []uint32, tableLen int) ([]NameID, error) {
	if ids == nil {
		return nil, nil
	}
	out := make([]NameID, len(ids))
	for i, id := range ids {
		if int(id) >= tableLen {
			return nil, fmt.Errorf("id %d outside table of %d", id, tableLen)
		}
		out[i] = NameID(id)
	}
	return out, nil
}
