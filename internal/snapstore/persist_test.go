package snapstore

import (
	"fmt"
	"reflect"
	"testing"
)

// restored round-trips a store through ExportState/FromState.
func restored(t *testing.T, s *Store) *Store {
	t.Helper()
	s2, err := FromState(s.ExportState())
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	return s2
}

func TestStateRoundTripExact(t *testing.T) {
	s := New()
	s.SetWindow(2)
	putDay(t, s, 0,
		rec(1, "alpha.com", []string{"10.0.0.1"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true),
		rec(2, "beta.com", []string{"10.0.0.2"}, nil, nil, true, false),
	)
	putDay(t, s, 1,
		rec(1, "alpha.com", []string{"10.0.0.9"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true),
	) // beta tombstoned
	putDay(t, s, 3,
		rec(1, "alpha.com", []string{"10.0.0.9"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true),
		rec(2, "beta.com", []string{"10.0.0.2"}, nil, nil, true, false),
	) // day 0 evicted

	s2 := restored(t, s)
	if s.Stats() != s2.Stats() {
		t.Fatalf("stats: %+v != %+v", s.Stats(), s2.Stats())
	}
	if !reflect.DeepEqual(s.Days(), s2.Days()) {
		t.Fatalf("days: %v != %v", s.Days(), s2.Days())
	}
	for _, day := range s.Days() {
		if !reflect.DeepEqual(s.SnapshotAt(day), s2.SnapshotAt(day)) {
			t.Fatalf("day %d snapshots differ", day)
		}
	}
	// The restored store keeps appending: diff against the pre-restore
	// tail works and interning resumes without duplicating names.
	before := s2.Interner().Len()
	putDay(t, s2, 4,
		rec(1, "alpha.com", []string{"10.0.0.9"}, []string{"edge.cdn.net"}, []string{"ns1.alpha.com"}, true, true),
		rec(2, "beta.com", []string{"10.0.0.3"}, nil, nil, true, false),
	)
	if s2.Interner().Len() != before {
		t.Fatalf("restore re-interned: %d -> %d", before, s2.Interner().Len())
	}
	changed := 0
	for pc := s2.DiffPairs(4); pc.Next(); {
		if !pc.Pair().Unchanged() {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("diff across restore: %d changed pairs, want 1 (beta)", changed)
	}
}

func TestRestoredEvictedDaysUnreplayable(t *testing.T) {
	s := New()
	s.SetWindow(2)
	for day := 0; day < 5; day++ {
		putDay(t, s, day, rec(1, "alpha.com", []string{fmt.Sprintf("10.0.0.%d", day+1)}, nil, nil, true, true))
	}
	s2 := restored(t, s)
	if got := s2.Days(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("restored days = %v, want [3 4]", got)
	}
	if s2.Stats().EvictedDays != 3 {
		t.Fatalf("restored evicted = %d, want 3", s2.Stats().EvictedDays)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("replaying an evicted day after restore did not panic")
		}
	}()
	s2.Cursor(1)
}

func TestRestoreThenGrowWindow(t *testing.T) {
	s := New()
	s.SetWindow(2)
	for day := 0; day < 6; day++ {
		putDay(t, s, day, rec(1, "alpha.com", []string{fmt.Sprintf("10.0.0.%d", day+1)}, nil, nil, true, true))
	}
	s2 := restored(t, s)
	// Growing the window cannot resurrect evicted days, but from here on
	// the wider retention holds.
	s2.SetWindow(4)
	for day := 6; day < 9; day++ {
		putDay(t, s2, day, rec(1, "alpha.com", []string{fmt.Sprintf("10.0.1.%d", day)}, nil, nil, true, true))
	}
	if got := s2.Days(); !reflect.DeepEqual(got, []int{5, 6, 7, 8}) {
		t.Fatalf("grown-window days = %v, want [5 6 7 8]", got)
	}
	if r, ok := s2.RecordAt(name("alpha.com"), 5); !ok || r.Addrs[0] != addr("10.0.0.6") {
		t.Fatalf("pre-restore day 5 after grow: %v %v", r, ok)
	}
}

func TestRestoreThenShrinkWindow(t *testing.T) {
	s := New()
	for day := 0; day < 5; day++ {
		putDay(t, s, day, rec(1, "alpha.com", []string{fmt.Sprintf("10.0.0.%d", day+1)}, nil, nil, true, true))
	}
	s2 := restored(t, s)
	s2.SetWindow(2)
	// Shrinking applies at the next Seal, like on a live store.
	putDay(t, s2, 5, rec(1, "alpha.com", []string{"10.0.1.5"}, nil, nil, true, true))
	if got := s2.Days(); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("shrunk-window days = %v, want [4 5]", got)
	}
	if s2.Stats().EvictedDays != 4 {
		t.Fatalf("shrunk evicted = %d, want 4", s2.Stats().EvictedDays)
	}
}

func TestFromStateRejectsInconsistency(t *testing.T) {
	base := func() State {
		s := New()
		putDay(t, s, 0, rec(1, "alpha.com", []string{"10.0.0.1"}, []string{"edge.cdn.net"}, nil, true, true))
		return s.ExportState()
	}
	for label, mutate := range map[string]func(*State){
		"chain/apex mismatch": func(st *State) { st.Chains = st.Chains[:0] },
		"negative counter":    func(st *State) { st.Versions = -1 },
		"days not increasing": func(st *State) { st.Days = []int{3, 3} },
		"duplicate apex": func(st *State) {
			st.Apexes = append(st.Apexes, st.Apexes[0])
			st.Chains = append(st.Chains, st.Chains[0])
		},
		"duplicate name": func(st *State) { st.Names = append(st.Names, st.Names[0]) },
		"name id out of range": func(st *State) {
			st.Chains[0][0].Rec.CNAMEs = []uint32{99}
		},
		"chain days not increasing": func(st *State) {
			st.Chains[0] = append(st.Chains[0], st.Chains[0][0])
		},
		"rank out of range": func(st *State) { st.Apexes[0].Rank = -5 },
	} {
		st := base()
		mutate(&st)
		if _, err := FromState(st); err == nil {
			t.Errorf("%s: FromState accepted inconsistent state", label)
		}
	}
}
