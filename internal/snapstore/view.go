package snapstore

import (
	"fmt"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
)

// View is a read surface over a store's sealed days: every replay entry
// point — Cursor, DiffPairs, RecordAt, SnapshotAt, History — operates on
// a View, and the Store's own read methods delegate to a borrowed one.
//
// A view obtained from SealedView is *immutable*: it owns copies of the
// store's index structures (the per-version record data is append-only
// and shared), so any number of goroutines can read it while the owning
// store keeps appending new days. That is the contract the lookup
// service's read path is built on — serving never locks the writer,
// because the two never touch the same mutable state.
type View struct {
	metas      []apexMeta
	byApex     map[dnsmsg.Name]int32
	chains     [][]version
	days       []int
	evicted    int
	rankOrder  []int32
	versions   int
	tombstones int
	interned   int
}

// Days returns the view's replayable day labels in append order.
func (v *View) Days() []int { return append([]int(nil), v.days...) }

// LatestDay returns the most recently sealed day, or ok=false on an
// empty view.
func (v *View) LatestDay() (int, bool) {
	if len(v.days) == 0 {
		return 0, false
	}
	return v.days[len(v.days)-1], true
}

// checkDay panics when day was never sealed or fell out of the retention
// window — replaying it would silently produce a wrong (partial) world.
func (v *View) checkDay(day int) int32 {
	for _, d := range v.days {
		if d == day {
			return int32(day)
		}
	}
	panic(fmt.Sprintf("snapstore: day %d is not replayable (have %v, %d evicted)", day, v.days, v.evicted))
}

// materialize converts a stored version back to the collect.Record the
// legacy map-based path would have held. The record's slices are the
// version's cached backing data, shared across every materialization of
// the same version: replay is allocation-free, and callers must treat the
// record as read-only.
func (v *View) materialize(idx int32, r crec) collect.Record {
	m := v.metas[idx]
	return collect.Record{
		Domain:    alexa.Domain{Rank: int(m.rank), Apex: m.name},
		Addrs:     r.addrs,
		CNAMEs:    r.cnameNames,
		NSHosts:   r.nsHostNames,
		ResolveOK: r.resolveOK,
		NSOK:      r.nsOK,
	}
}

// RecordAt returns apex's record at day (ok=false when the apex is not
// live that day). It panics if day is not replayable.
func (v *View) RecordAt(apex dnsmsg.Name, day int) (collect.Record, bool) {
	d := v.checkDay(day)
	idx, ok := v.byApex[apex]
	if !ok {
		return collect.Record{}, false
	}
	r, live := liveAt(v.chains[idx], d)
	if !live {
		return collect.Record{}, false
	}
	return v.materialize(idx, r), true
}

// Rank returns apex's rank from the view's metadata, independent of any
// particular day.
func (v *View) Rank(apex dnsmsg.Name) (int, bool) {
	idx, ok := v.byApex[apex]
	if !ok {
		return 0, false
	}
	return int(v.metas[idx].rank), true
}

// Contains reports whether the view has ever seen apex.
func (v *View) Contains(apex dnsmsg.Name) bool {
	_, ok := v.byApex[apex]
	return ok
}

// Apexes returns every apex the view has ever seen, in rank order.
func (v *View) Apexes() []dnsmsg.Name {
	out := make([]dnsmsg.Name, len(v.rankOrder))
	for i, idx := range v.rankOrder {
		out[i] = v.metas[idx].name
	}
	return out
}

// SnapshotAt materializes day as a legacy map-based collect.Snapshot —
// the adapter that keeps pre-store consumers (and their tests) working.
// New code should prefer Cursor/DiffPairs, which replay without the map.
func (v *View) SnapshotAt(day int) collect.Snapshot {
	d := v.checkDay(day)
	snap := collect.Snapshot{Day: day, Records: make(map[dnsmsg.Name]collect.Record, len(v.metas))}
	for idx := range v.chains {
		if r, live := liveAt(v.chains[idx], d); live {
			snap.Records[v.metas[idx].name] = v.materialize(int32(idx), r)
		}
	}
	return snap
}

// Stats returns the view's retained shape.
func (v *View) Stats() Stats {
	return Stats{
		Days:          len(v.days),
		EvictedDays:   v.evicted,
		Apexes:        len(v.metas),
		Versions:      v.versions,
		Tombstones:    v.tombstones,
		InternedNames: v.interned,
	}
}

// VersionInfo is one link of an apex's version chain, materialized: the
// record value in force from Day onward (Gone marks a tombstone — the
// apex absent from Day onward). The oldest link is the version in force
// at the start of the retention window; older history has been evicted.
type VersionInfo struct {
	Day  int
	Gone bool
	Rec  collect.Record
}

// History returns apex's retained version chain, oldest first — the
// day-stamped record changes the delta encoding stored. An unknown apex
// returns nil.
func (v *View) History(apex dnsmsg.Name) []VersionInfo {
	idx, ok := v.byApex[apex]
	if !ok {
		return nil
	}
	chain := v.chains[idx]
	out := make([]VersionInfo, len(chain))
	for i, ver := range chain {
		out[i] = VersionInfo{Day: int(ver.day), Gone: ver.gone}
		if !ver.gone {
			out[i].Rec = v.materialize(idx, ver.rec)
		}
	}
	return out
}
