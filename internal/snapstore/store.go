// Package snapstore is an append-only, delta-encoded store for daily
// collection snapshots (§IV-B.1's day-over-day record series).
//
// The map-based collect.Snapshot costs a full copy of every domain's
// records per day, so a campaign that keeps history pays
// domains × days regardless of how little actually changed. The paper's
// own observation (§IV-C) is that almost nothing changes day over day —
// a few hundred behaviours per million domains — which makes the series
// delta-friendly: this store keeps one version chain per apex, appends a
// new version only when the record's value changed, records a tombstone
// when an apex disappears, and interns every dnsmsg.Name so repeated
// CNAME targets and NS hostnames are stored once.
//
// Days are replayed, not materialized: Cursor(day) iterates the day's
// virtual full snapshot in rank order, DiffPairs(day) streams (prev, cur)
// record pairs against the previous sealed day, and RecordAt does point
// lookups. SetWindow bounds retention for steady-state campaigns that
// only ever look one day back.
package snapstore

import (
	"fmt"
	"net/netip"
	"sort"

	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
)

// crec is the compact stored form of a collect.Record: names are interned
// handles, the rank lives in per-apex metadata, and the apex itself is
// implied by the chain the version sits in.
//
// cnameNames/nsHostNames cache the handles resolved back to names, built
// once when the version is stored. Replay paths (Cursor, DiffPairs,
// RecordAt) hand these slices out directly, so a day-over-day diff walks
// the store without allocating a name slice per record; the price is one
// extra slice header pair per stored version, and versions only exist
// where records actually changed. equal() ignores the caches — the
// handles are the value.
type crec struct {
	addrs       []netip.Addr
	cnames      []NameID
	nsHosts     []NameID
	cnameNames  []dnsmsg.Name
	nsHostNames []dnsmsg.Name
	resolveOK   bool
	nsOK        bool
}

// equal reports value equality, the delta-encoding predicate: equal
// records share one stored version across days.
func (r crec) equal(o crec) bool {
	if r.resolveOK != o.resolveOK || r.nsOK != o.nsOK {
		return false
	}
	if len(r.addrs) != len(o.addrs) || len(r.cnames) != len(o.cnames) || len(r.nsHosts) != len(o.nsHosts) {
		return false
	}
	for i := range r.addrs {
		if r.addrs[i] != o.addrs[i] {
			return false
		}
	}
	for i := range r.cnames {
		if r.cnames[i] != o.cnames[i] {
			return false
		}
	}
	for i := range r.nsHosts {
		if r.nsHosts[i] != o.nsHosts[i] {
			return false
		}
	}
	return true
}

// version is one link of an apex's chain: the record value in force from
// day onward, until a later version supersedes it. A tombstone marks the
// apex absent from day onward.
type version struct {
	day  int32
	gone bool
	rec  crec
}

// apexMeta is the per-apex invariant data.
type apexMeta struct {
	name dnsmsg.Name
	rank int32
}

// Store is the append-only snapshot store. Days are appended in strictly
// increasing order via BeginDay/Put/Seal; between Seal and the next
// BeginDay the store is immutable and every read entry point (Cursor,
// DiffPairs, RecordAt, SnapshotAt, Apexes) is safe for concurrent use.
type Store struct {
	interner *Interner
	metas    []apexMeta
	byApex   map[dnsmsg.Name]int32
	chains   [][]version
	// days holds the sealed, still-replayable day labels in append order;
	// evicted counts how many older days the retention window dropped.
	days    []int
	evicted int
	window  int
	// rankOrder is the apex indices sorted by (rank, apex), rebuilt at
	// Seal when the population changed.
	rankOrder []int32
	popDirty  bool
	// versions/tombstones are lifetime counters for Stats (compaction
	// does not decrement them; they describe what was appended).
	versions   int
	tombstones int
}

// New creates an empty store with unbounded retention.
func New() *Store {
	return &Store{
		interner: NewInterner(),
		byApex:   make(map[dnsmsg.Name]int32),
	}
}

// SetWindow bounds retention to the last n sealed days (0 restores
// unbounded retention). When a Seal pushes the window past an old day,
// that day stops being replayable and its superseded versions are freed;
// each apex keeps the one version in force at the window's start as its
// base. Call between days, not mid-append.
func (s *Store) SetWindow(n int) {
	if n < 0 {
		panic(fmt.Sprintf("snapstore: SetWindow(%d)", n))
	}
	s.window = n
}

// Interner exposes the store's name table (shared rank index serving,
// diagnostics).
func (s *Store) Interner() *Interner { return s.interner }

// Days returns the replayable day labels in append order.
func (s *Store) Days() []int { return append([]int(nil), s.days...) }

// LatestDay returns the most recently sealed day, or ok=false on an
// empty store.
func (s *Store) LatestDay() (int, bool) {
	if len(s.days) == 0 {
		return 0, false
	}
	return s.days[len(s.days)-1], true
}

// DayWriter appends one day's records; obtain one from BeginDay, Put
// every record, then Seal.
type DayWriter struct {
	s       *Store
	day     int32
	touched []bool // indexed by apexIdx as of BeginDay; later apexes are new today
	nBefore int
	sealed  bool
}

// BeginDay starts appending records for day, which must exceed every
// sealed day (snapshots arrive in time order).
func (s *Store) BeginDay(day int) *DayWriter {
	if last, ok := s.LatestDay(); ok && day <= last {
		panic(fmt.Sprintf("snapstore: BeginDay(%d) after day %d", day, last))
	}
	return &DayWriter{
		s:       s,
		day:     int32(day),
		touched: make([]bool, len(s.chains)),
		nBefore: len(s.chains),
	}
}

// Put appends one record to the day. Unchanged records (vs. the apex's
// live version) are deduplicated away — that is the delta encoding.
// Putting the same apex twice in one day panics.
func (w *DayWriter) Put(rec collect.Record) {
	if w.sealed {
		panic("snapstore: Put after Seal")
	}
	s := w.s
	apex := rec.Domain.Apex
	idx, ok := s.byApex[apex]
	if !ok {
		idx = int32(len(s.metas))
		s.byApex[apex] = idx
		s.metas = append(s.metas, apexMeta{name: apex, rank: int32(rec.Domain.Rank)})
		s.chains = append(s.chains, nil)
		s.popDirty = true
	}
	if int(idx) < w.nBefore {
		if w.touched[idx] {
			panic(fmt.Sprintf("snapstore: duplicate Put(%s) on day %d", apex, w.day))
		}
		w.touched[idx] = true
	}

	cr := crec{
		addrs:     rec.Addrs,
		cnames:    s.interner.internAll(rec.CNAMEs),
		nsHosts:   s.interner.internAll(rec.NSHosts),
		resolveOK: rec.ResolveOK,
		nsOK:      rec.NSOK,
	}
	chain := s.chains[idx]
	if n := len(chain); n > 0 && !chain[n-1].gone && chain[n-1].rec.equal(cr) {
		return // unchanged since its last version: no new delta
	}
	// Only a version that is actually stored pays for its replay caches.
	cr.cnameNames = s.interner.resolveAll(cr.cnames)
	cr.nsHostNames = s.interner.resolveAll(cr.nsHosts)
	s.chains[idx] = append(chain, version{day: w.day, rec: cr})
	s.versions++
}

// Seal finalizes the day: apexes that were live yesterday but not Put
// today get tombstones, the rank index absorbs any population change,
// and the retention window evicts days that fell out of it.
func (w *DayWriter) Seal() {
	if w.sealed {
		panic("snapstore: double Seal")
	}
	w.sealed = true
	s := w.s
	if len(s.days) > 0 {
		prev := int32(s.days[len(s.days)-1])
		for idx := 0; idx < w.nBefore; idx++ {
			if w.touched[idx] {
				continue
			}
			if _, live := liveAt(s.chains[idx], prev); live {
				s.chains[idx] = append(s.chains[idx], version{day: w.day, gone: true})
				s.tombstones++
			}
		}
	}
	s.days = append(s.days, int(w.day))
	if s.popDirty {
		s.rebuildRankOrder()
	}
	if s.window > 0 && len(s.days) > s.window {
		s.evict(len(s.days) - s.window)
	}
}

// rebuildRankOrder sorts the apex indices by (rank, apex).
func (s *Store) rebuildRankOrder() {
	s.rankOrder = make([]int32, len(s.metas))
	for i := range s.rankOrder {
		s.rankOrder[i] = int32(i)
	}
	sort.Slice(s.rankOrder, func(i, j int) bool {
		a, b := s.metas[s.rankOrder[i]], s.metas[s.rankOrder[j]]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.name < b.name
	})
	s.popDirty = false
}

// evict drops the oldest n replayable days. Every chain keeps the version
// in force at the new oldest day as its base; fully superseded prefixes
// are copied out of their backing arrays so the old records are actually
// freed.
func (s *Store) evict(n int) {
	newMin := int32(s.days[n])
	for i, chain := range s.chains {
		cut := 0
		for cut+1 < len(chain) && chain[cut+1].day <= newMin {
			cut++
		}
		if cut == 0 {
			continue
		}
		s.chains[i] = append(make([]version, 0, len(chain)-cut), chain[cut:]...)
	}
	s.days = append([]int(nil), s.days[n:]...)
	s.evicted += n
}

// liveAt returns the chain's record in force at day, and whether the apex
// is live (seen and not tombstoned) then.
func liveAt(chain []version, day int32) (crec, bool) {
	// Chains are short (one version per change); scan from the newest end.
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].day <= day {
			if chain[i].gone {
				return crec{}, false
			}
			return chain[i].rec, true
		}
	}
	return crec{}, false
}

// view returns a transient View sharing the store's live index
// structures with no copying. It is only valid under the store's own
// read contract — between Seal and the next BeginDay — and is how the
// store's read methods delegate to the View implementations. For a view
// that stays valid while the store keeps appending, use SealedView.
func (s *Store) view() View {
	return View{
		metas:      s.metas,
		byApex:     s.byApex,
		chains:     s.chains,
		days:       s.days,
		evicted:    s.evicted,
		rankOrder:  s.rankOrder,
		versions:   s.versions,
		tombstones: s.tombstones,
		interned:   s.interner.Len(),
	}
}

// SealedView returns an immutable snapshot of the store's sealed days,
// safe for concurrent reads while the store keeps appending. Call it
// between Seal and the next BeginDay (the campaign OnSeal hook runs
// there).
//
// The copy is structural, not deep: the index layers that the writer
// mutates in place — the outer chains slice (whose elements are
// reassigned on append and eviction), the byApex map, and the day list —
// are copied; the version chains and their cached record data are shared.
// Sharing them is safe because appends only ever write beyond the view's
// frozen lengths, eviction copies surviving suffixes into fresh arrays
// (leaving the old ones to the view), and stored versions are never
// mutated in place. The cost is O(apexes) slice headers per view, not
// O(versions) record data.
func (s *Store) SealedView() *View {
	chains := make([][]version, len(s.chains))
	copy(chains, s.chains)
	byApex := make(map[dnsmsg.Name]int32, len(s.byApex))
	for apex, idx := range s.byApex {
		byApex[apex] = idx
	}
	return &View{
		metas:      s.metas[:len(s.metas):len(s.metas)],
		byApex:     byApex,
		chains:     chains,
		days:       append([]int(nil), s.days...),
		evicted:    s.evicted,
		rankOrder:  s.rankOrder[:len(s.rankOrder):len(s.rankOrder)],
		versions:   s.versions,
		tombstones: s.tombstones,
		interned:   s.interner.Len(),
	}
}

// RecordAt returns apex's record at day (ok=false when the apex is not
// live that day). It panics if day is not replayable.
func (s *Store) RecordAt(apex dnsmsg.Name, day int) (collect.Record, bool) {
	v := s.view()
	return v.RecordAt(apex, day)
}

// Rank returns apex's rank from the store's metadata (the interned rank
// index), independent of any particular day.
func (s *Store) Rank(apex dnsmsg.Name) (int, bool) {
	v := s.view()
	return v.Rank(apex)
}

// Apexes returns every apex the store has ever seen, in rank order. The
// slice is shared and must not be mutated.
func (s *Store) Apexes() []dnsmsg.Name {
	v := s.view()
	return v.Apexes()
}

// History returns apex's retained version chain, oldest first; see
// View.History.
func (s *Store) History(apex dnsmsg.Name) []VersionInfo {
	v := s.view()
	return v.History(apex)
}

// SnapshotAt materializes day as a legacy map-based collect.Snapshot —
// the adapter that keeps pre-store consumers (and their tests) working.
// New code should prefer Cursor/DiffPairs, which replay without the map.
func (s *Store) SnapshotAt(day int) collect.Snapshot {
	v := s.view()
	return v.SnapshotAt(day)
}

// Stats describes the store's retained shape.
type Stats struct {
	// Days is the replayable window; EvictedDays counts what the window
	// dropped.
	Days, EvictedDays int
	// Apexes is the population ever seen.
	Apexes int
	// Versions / Tombstones count appended chain links over the store's
	// lifetime: the delta volume, independent of eviction.
	Versions, Tombstones int
	// InternedNames is the size of the shared name table.
	InternedNames int
}

// Stats returns the store's retained shape.
func (s *Store) Stats() Stats {
	return Stats{
		Days:          len(s.days),
		EvictedDays:   s.evicted,
		Apexes:        len(s.metas),
		Versions:      s.versions,
		Tombstones:    s.tombstones,
		InternedNames: s.interner.Len(),
	}
}
