package snapstore_test

// Shard-boundary tests: one snapstore per shard, records partitioned by
// the shard driver's stable apex hash. The campaign-level
// merge-equivalence guarantee rests on two store-level facts pinned
// here: a shard's cursors and diff pairs yield exactly the shard's own
// apexes (no cross-shard leakage), and the per-day union of the shard
// cursors reproduces the global store's replay record for record.
// External test package so the suite can use the real shardrun.Assign
// instead of a copy that could drift.

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/shardrun"
	"rrdps/internal/snapstore"
)

const shardCount = 4

// shardedDay is one day's population, pre-partitioned: records[i] holds
// shard i's records in global rank order, all[] the whole population.
type shardedDay struct {
	day     int
	all     []collect.Record
	byShard [][]collect.Record
}

// buildDays synthesizes a few days of churning records and partitions
// each day with shardrun.Assign.
func buildDays(days, sites int) []shardedDay {
	out := make([]shardedDay, 0, days)
	for day := 0; day < days; day++ {
		d := shardedDay{day: day, byShard: make([][]collect.Record, shardCount)}
		for rank := 1; rank <= sites; rank++ {
			// Churn: every apex skips one day in (rank mod days) to
			// exercise tombstones and re-appearances.
			if day == rank%days && day > 0 {
				continue
			}
			apex := dnsmsg.Name(fmt.Sprintf("site-%04d.example.", rank))
			rec := collect.Record{
				Domain:    alexa.Domain{Rank: rank, Apex: apex},
				Addrs:     []netip.Addr{netip.AddrFrom4([4]byte{10, byte(day), byte(rank >> 8), byte(rank)})},
				NSHosts:   []dnsmsg.Name{dnsmsg.Name(fmt.Sprintf("ns%d.host.example.", rank%7))},
				ResolveOK: true,
				NSOK:      true,
			}
			d.all = append(d.all, rec)
			i := shardrun.Assign(apex, shardCount)
			d.byShard[i] = append(d.byShard[i], rec)
		}
		out = append(out, d)
	}
	return out
}

// fillStores writes the same days into a global store and one store per
// shard.
func fillStores(days []shardedDay) (global *snapstore.Store, shards []*snapstore.Store) {
	global = snapstore.New()
	shards = make([]*snapstore.Store, shardCount)
	for i := range shards {
		shards[i] = snapstore.New()
	}
	for _, d := range days {
		dw := global.BeginDay(d.day)
		for _, rec := range d.all {
			dw.Put(rec)
		}
		dw.Seal()
		for i, recs := range d.byShard {
			sw := shards[i].BeginDay(d.day)
			for _, rec := range recs {
				sw.Put(rec)
			}
			sw.Seal()
		}
	}
	return global, shards
}

func TestShardStoresPartitionApexes(t *testing.T) {
	days := buildDays(4, 300)
	_, shards := fillStores(days)
	seen := make(map[dnsmsg.Name]int)
	for i, store := range shards {
		for _, apex := range store.Apexes() {
			if prev, dup := seen[apex]; dup {
				t.Fatalf("%s appears in shard %d and shard %d stores — cross-shard leak", apex, prev, i)
			}
			seen[apex] = i
			if want := shardrun.Assign(apex, shardCount); want != i {
				t.Fatalf("%s stored in shard %d but Assign says %d", apex, i, want)
			}
		}
	}
	// Union covers the whole population.
	total := 0
	for _, store := range shards {
		total += len(store.Apexes())
	}
	if total != 300 {
		t.Fatalf("shard stores hold %d apexes, want 300", total)
	}
}

func TestShardCursorsUnionToGlobalCursor(t *testing.T) {
	days := buildDays(4, 300)
	global, shards := fillStores(days)
	for _, d := range days {
		want := make(map[dnsmsg.Name]collect.Record)
		for cur := global.Cursor(d.day); cur.Next(); {
			want[cur.Apex()] = cloneRecord(cur.Record())
		}
		got := make(map[dnsmsg.Name]collect.Record)
		for i, store := range shards {
			for cur := store.Cursor(d.day); cur.Next(); {
				apex := cur.Apex()
				if _, dup := got[apex]; dup {
					t.Fatalf("day %d: %s yielded by two shard cursors", d.day, apex)
				}
				if want := shardrun.Assign(apex, shardCount); want != i {
					t.Fatalf("day %d: shard %d cursor yielded %s (Assign says %d)", d.day, i, apex, want)
				}
				got[apex] = cloneRecord(cur.Record())
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("day %d: union of shard cursors != global cursor (%d vs %d records)",
				d.day, len(got), len(want))
		}
	}
}

func TestShardDiffPairsUnionToGlobalDiffPairs(t *testing.T) {
	days := buildDays(4, 300)
	global, shards := fillStores(days)
	type pairKey struct {
		apex           dnsmsg.Name
		prevOK, curOK  bool
		prevAddr, addr string
	}
	flat := func(p snapstore.Pair) pairKey {
		k := pairKey{apex: p.Apex, prevOK: p.PrevOK, curOK: p.CurOK}
		if p.PrevOK && len(p.Prev.Addrs) > 0 {
			k.prevAddr = p.Prev.Addrs[0].String()
		}
		if p.CurOK && len(p.Cur.Addrs) > 0 {
			k.addr = p.Cur.Addrs[0].String()
		}
		return k
	}
	for _, d := range days[1:] {
		want := make(map[dnsmsg.Name]pairKey)
		for pc := global.DiffPairs(d.day); pc.Next(); {
			p := pc.Pair()
			want[p.Apex] = flat(p)
		}
		got := make(map[dnsmsg.Name]pairKey)
		for i, store := range shards {
			for pc := store.DiffPairs(d.day); pc.Next(); {
				p := pc.Pair()
				if _, dup := got[p.Apex]; dup {
					t.Fatalf("day %d: %s paired by two shard stores", d.day, p.Apex)
				}
				if want := shardrun.Assign(p.Apex, shardCount); want != i {
					t.Fatalf("day %d: shard %d diff yielded %s (Assign says %d)", d.day, i, p.Apex, want)
				}
				got[p.Apex] = flat(p)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("day %d: union of shard diff pairs != global diff pairs", d.day)
		}
	}
}

// cloneRecord deep-copies a cursor-materialized record; cursor records
// share the store's interned backing slices and are only valid until the
// next advance.
func cloneRecord(r collect.Record) collect.Record {
	out := r
	out.Addrs = append([]netip.Addr(nil), r.Addrs...)
	out.CNAMEs = append([]dnsmsg.Name(nil), r.CNAMEs...)
	out.NSHosts = append([]dnsmsg.Name(nil), r.NSHosts...)
	return out
}
