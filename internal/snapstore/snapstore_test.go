package snapstore

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/dnsmsg"
)

func name(s string) dnsmsg.Name { return dnsmsg.MustParseName(s) }

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func rec(rank int, apex string, addrs []string, cnames, nsHosts []string, resolveOK, nsOK bool) collect.Record {
	r := collect.Record{
		Domain:    alexa.Domain{Rank: rank, Apex: name(apex)},
		ResolveOK: resolveOK,
		NSOK:      nsOK,
	}
	for _, a := range addrs {
		r.Addrs = append(r.Addrs, addr(a))
	}
	for _, c := range cnames {
		r.CNAMEs = append(r.CNAMEs, name(c))
	}
	for _, h := range nsHosts {
		r.NSHosts = append(r.NSHosts, name(h))
	}
	return r
}

// putDay seals one day built from recs.
func putDay(t *testing.T, s *Store, day int, recs ...collect.Record) {
	t.Helper()
	w := s.BeginDay(day)
	for _, r := range recs {
		w.Put(r)
	}
	w.Seal()
}

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	a := in.Intern(name("a.example.com"))
	b := in.Intern(name("b.example.com"))
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := in.Intern(name("a.example.com")); got != a {
		t.Fatalf("re-intern changed ID: %d != %d", got, a)
	}
	if in.Name(a) != name("a.example.com") || in.Name(b) != name("b.example.com") {
		t.Fatal("Name round trip failed")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if _, ok := in.Lookup(name("c.example.com")); ok {
		t.Fatal("Lookup invented an ID")
	}
}

func TestSnapshotAtMatchesInput(t *testing.T) {
	s := New()
	r1 := rec(1, "alpha.com", []string{"10.0.0.1"}, []string{"alpha.cdn.net"}, []string{"ns1.alpha.com"}, true, true)
	r2 := rec(2, "beta.com", []string{"10.0.0.2", "10.0.0.3"}, nil, []string{"ns1.beta.com"}, true, true)
	putDay(t, s, 0, r1, r2)

	snap := s.SnapshotAt(0)
	if snap.Day != 0 || len(snap.Records) != 2 {
		t.Fatalf("snapshot shape: day %d, %d records", snap.Day, len(snap.Records))
	}
	if !reflect.DeepEqual(snap.Records[name("alpha.com")], r1) {
		t.Fatalf("alpha round trip: got %+v want %+v", snap.Records[name("alpha.com")], r1)
	}
	if !reflect.DeepEqual(snap.Records[name("beta.com")], r2) {
		t.Fatalf("beta round trip: got %+v want %+v", snap.Records[name("beta.com")], r2)
	}
}

func TestDeltaEncodingStoresOnlyChanges(t *testing.T) {
	s := New()
	r1 := rec(1, "alpha.com", []string{"10.0.0.1"}, nil, []string{"ns1.alpha.com"}, true, true)
	r2 := rec(2, "beta.com", []string{"10.0.0.2"}, nil, []string{"ns1.beta.com"}, true, true)
	putDay(t, s, 0, r1, r2)

	// Day 1: only beta changes.
	r2b := rec(2, "beta.com", []string{"10.9.9.9"}, nil, []string{"ns1.beta.com"}, true, true)
	putDay(t, s, 1, r1, r2b)

	st := s.Stats()
	if st.Versions != 3 {
		t.Fatalf("versions = %d, want 3 (two day-0 bases + one beta delta)", st.Versions)
	}
	if got := s.SnapshotAt(1).Records[name("beta.com")]; !reflect.DeepEqual(got, r2b) {
		t.Fatalf("beta at day 1: %+v", got)
	}
	if got := s.SnapshotAt(0).Records[name("beta.com")]; !reflect.DeepEqual(got, r2) {
		t.Fatalf("beta at day 0: %+v", got)
	}
	if got := s.SnapshotAt(1).Records[name("alpha.com")]; !reflect.DeepEqual(got, r1) {
		t.Fatalf("alpha at day 1: %+v", got)
	}
}

func TestTombstones(t *testing.T) {
	s := New()
	r1 := rec(1, "alpha.com", []string{"10.0.0.1"}, nil, nil, true, false)
	r2 := rec(2, "beta.com", []string{"10.0.0.2"}, nil, nil, true, false)
	putDay(t, s, 0, r1, r2)
	putDay(t, s, 1, r1) // beta vanishes

	if _, ok := s.RecordAt(name("beta.com"), 1); ok {
		t.Fatal("tombstoned apex still live")
	}
	if _, ok := s.RecordAt(name("beta.com"), 0); !ok {
		t.Fatal("tombstone rewrote history")
	}
	if n := len(s.SnapshotAt(1).Records); n != 1 {
		t.Fatalf("day 1 has %d records, want 1", n)
	}
	if s.Stats().Tombstones != 1 {
		t.Fatalf("tombstones = %d, want 1", s.Stats().Tombstones)
	}

	// Reappearance on day 2 is a fresh version.
	putDay(t, s, 2, r1, r2)
	if _, ok := s.RecordAt(name("beta.com"), 2); !ok {
		t.Fatal("reappeared apex not live")
	}
}

func TestCursorRankOrder(t *testing.T) {
	s := New()
	// Inserted out of rank order on purpose.
	putDay(t, s, 0,
		rec(3, "gamma.com", []string{"10.0.0.3"}, nil, nil, true, true),
		rec(1, "alpha.com", []string{"10.0.0.1"}, nil, nil, true, true),
		rec(2, "beta.com", []string{"10.0.0.2"}, nil, nil, true, true),
	)
	var got []dnsmsg.Name
	for cur := s.Cursor(0); cur.Next(); {
		got = append(got, cur.Apex())
		if cur.Record().Domain.Apex != got[len(got)-1] {
			t.Fatal("cursor record/apex mismatch")
		}
	}
	want := []dnsmsg.Name{name("alpha.com"), name("beta.com"), name("gamma.com")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cursor order %v, want %v", got, want)
	}
	if !reflect.DeepEqual(s.Apexes(), want) {
		t.Fatalf("Apexes order %v, want %v", s.Apexes(), want)
	}
}

func TestDiffPairsStreamsChanges(t *testing.T) {
	s := New()
	r1 := rec(1, "alpha.com", []string{"10.0.0.1"}, nil, nil, true, true)
	r2 := rec(2, "beta.com", []string{"10.0.0.2"}, nil, nil, true, true)
	putDay(t, s, 0, r1, r2)

	// Day 0: every pair is prev-absent.
	n := 0
	for pc := s.DiffPairs(0); pc.Next(); {
		p := pc.Pair()
		if p.PrevOK || !p.CurOK {
			t.Fatalf("day-0 pair %s: PrevOK=%v CurOK=%v", p.Apex, p.PrevOK, p.CurOK)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("day-0 pairs = %d, want 2", n)
	}

	// Day 1: beta changes, gamma appears, alpha unchanged.
	r2b := rec(2, "beta.com", []string{"10.9.9.9"}, nil, nil, true, true)
	r3 := rec(3, "gamma.com", []string{"10.0.0.3"}, nil, nil, true, true)
	putDay(t, s, 1, r1, r2b, r3)

	var apexes []dnsmsg.Name
	unchanged := map[dnsmsg.Name]bool{}
	for pc := s.DiffPairs(1); pc.Next(); {
		p := pc.Pair()
		apexes = append(apexes, p.Apex)
		unchanged[p.Apex] = p.Unchanged()
		switch p.Apex {
		case name("alpha.com"):
			if !p.PrevOK || !p.CurOK || !reflect.DeepEqual(p.Prev, p.Cur) {
				t.Fatalf("alpha pair: %+v", p)
			}
		case name("beta.com"):
			if !p.PrevOK || !p.CurOK || !reflect.DeepEqual(p.Prev, r2) || !reflect.DeepEqual(p.Cur, r2b) {
				t.Fatalf("beta pair: %+v", p)
			}
		case name("gamma.com"):
			if p.PrevOK || !p.CurOK {
				t.Fatalf("gamma pair: %+v", p)
			}
		}
	}
	want := []dnsmsg.Name{name("alpha.com"), name("beta.com"), name("gamma.com")}
	if !reflect.DeepEqual(apexes, want) {
		t.Fatalf("pair order %v, want %v", apexes, want)
	}
	if !unchanged[name("alpha.com")] || unchanged[name("beta.com")] || unchanged[name("gamma.com")] {
		t.Fatalf("Unchanged flags wrong: %v", unchanged)
	}

	// Day 2: gamma tombstoned — its pair must still stream with CurOK=false.
	putDay(t, s, 2, r1, r2b)
	sawGamma := false
	for pc := s.DiffPairs(2); pc.Next(); {
		p := pc.Pair()
		if p.Apex == name("gamma.com") {
			sawGamma = true
			if !p.PrevOK || p.CurOK {
				t.Fatalf("tombstoned gamma pair: %+v", p)
			}
		}
	}
	if !sawGamma {
		t.Fatal("tombstoned apex missing from DiffPairs")
	}
}

func TestWindowEviction(t *testing.T) {
	s := New()
	s.SetWindow(2)
	base := rec(1, "alpha.com", []string{"10.0.0.1"}, nil, nil, true, true)
	putDay(t, s, 0, base)
	for day := 1; day <= 5; day++ {
		putDay(t, s, day, rec(1, "alpha.com", []string{fmt.Sprintf("10.0.1.%d", day)}, nil, nil, true, true))
	}

	if got := s.Days(); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("window days = %v, want [4 5]", got)
	}
	if s.Stats().EvictedDays != 4 {
		t.Fatalf("evicted = %d, want 4", s.Stats().EvictedDays)
	}
	// Replay inside the window works; outside panics.
	if r, ok := s.RecordAt(name("alpha.com"), 4); !ok || r.Addrs[0] != addr("10.0.1.4") {
		t.Fatalf("day-4 record: %v %v", r, ok)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("replaying an evicted day did not panic")
			}
		}()
		s.Cursor(1)
	}()

	// The retained chain holds only the window's versions (plus the base).
	if n := len(s.chains[0]); n > 2 {
		t.Fatalf("chain kept %d versions after eviction, want <= 2", n)
	}
}

func TestWindowKeepsBaseForUnchangedApex(t *testing.T) {
	s := New()
	s.SetWindow(2)
	stable := rec(1, "stable.com", []string{"10.0.0.1"}, nil, nil, true, true)
	for day := 0; day < 6; day++ {
		putDay(t, s, day, stable)
	}
	// The base version predates the window but must still serve replays.
	for _, day := range s.Days() {
		if r, ok := s.RecordAt(name("stable.com"), day); !ok || !reflect.DeepEqual(r, stable) {
			t.Fatalf("day %d: %v %v", day, r, ok)
		}
	}
	if s.Stats().Versions != 1 {
		t.Fatalf("stable apex appended %d versions, want 1", s.Stats().Versions)
	}
}

func TestBeginDayMustAdvance(t *testing.T) {
	s := New()
	putDay(t, s, 3, rec(1, "alpha.com", nil, nil, nil, false, false))
	defer func() {
		if recover() == nil {
			t.Fatal("BeginDay(3) after day 3 did not panic")
		}
	}()
	s.BeginDay(3)
}

func TestDuplicatePutPanics(t *testing.T) {
	s := New()
	r := rec(1, "alpha.com", nil, nil, nil, false, false)
	putDay(t, s, 0, r)
	w := s.BeginDay(1)
	w.Put(r)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Put did not panic")
		}
	}()
	w.Put(r)
}

// TestInterningShares verifies that a repeated CNAME target is stored
// once: the interner's table grows with distinct names, not with
// occurrences.
func TestInterningShares(t *testing.T) {
	s := New()
	w := s.BeginDay(0)
	for i := 0; i < 100; i++ {
		w.Put(rec(i+1, fmt.Sprintf("site%03d.com", i),
			[]string{"10.0.0.1"}, []string{"edge.shared-cdn.net"}, []string{"ns.shared-dns.net"}, true, true))
	}
	w.Seal()
	// 1 shared CNAME + 1 shared NS host; apexes live once in the apex
	// index, not in the name table.
	if got := s.Interner().Len(); got != 2 {
		t.Fatalf("interned names = %d, want 2", got)
	}
}
