package snapstore

import "rrdps/internal/dnsmsg"

// NameID is the interned handle of a dnsmsg.Name. IDs are dense and
// allocated in first-seen order, so a store built from a deterministic
// collection pass assigns deterministic IDs.
type NameID uint32

// Interner deduplicates dnsmsg.Names into NameIDs. A six-week campaign
// over N domains sees each CNAME target and nameserver hostname thousands
// of times; interning stores each distinct string once and lets records
// hold 4-byte handles instead of string headers.
//
// The table only grows: it is bounded by the number of distinct names the
// world can produce, not by campaign length, which is exactly the
// trade-off an append-only snapshot store wants.
type Interner struct {
	ids   map[dnsmsg.Name]NameID
	names []dnsmsg.Name
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[dnsmsg.Name]NameID)}
}

// Intern returns the ID for n, allocating one on first sight.
func (in *Interner) Intern(n dnsmsg.Name) NameID {
	if id, ok := in.ids[n]; ok {
		return id
	}
	id := NameID(len(in.names))
	in.ids[n] = id
	in.names = append(in.names, n)
	return id
}

// Lookup returns the ID for n without allocating one.
func (in *Interner) Lookup(n dnsmsg.Name) (NameID, bool) {
	id, ok := in.ids[n]
	return id, ok
}

// Name returns the name behind id. It panics on an ID the interner never
// issued: handles only come from Intern, so a miss is a store bug, not
// input error.
func (in *Interner) Name(id NameID) dnsmsg.Name {
	return in.names[id]
}

// Len returns the number of distinct interned names.
func (in *Interner) Len() int { return len(in.names) }

// internAll interns a name slice, returning nil for nil input so record
// equality survives the round trip ([]NameID(nil) vs empty).
func (in *Interner) internAll(names []dnsmsg.Name) []NameID {
	if names == nil {
		return nil
	}
	out := make([]NameID, len(names))
	for i, n := range names {
		out[i] = in.Intern(n)
	}
	return out
}

// resolveAll maps IDs back to names, returning nil for nil input.
func (in *Interner) resolveAll(ids []NameID) []dnsmsg.Name {
	if ids == nil {
		return nil
	}
	out := make([]dnsmsg.Name, len(ids))
	for i, id := range ids {
		out[i] = in.names[id]
	}
	return out
}
