package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rrdps/internal/cmdutil"
	"rrdps/internal/core/behavior"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/experiment"
	"rrdps/internal/core/exposure"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/obs"
)

// Config wires a Server.
type Config struct {
	// Source supplies the epochs served. Required.
	Source Source
	// APIKeys are the accepted client keys; empty disables auth.
	APIKeys []string
	// RatePerSec / Burst shape the per-key token bucket; RatePerSec <= 0
	// disables rate limiting.
	RatePerSec float64
	Burst      int
	// Registry receives request metrics; nil allocates a private one.
	Registry *obs.Registry
	// Now is the clock, injectable so the rate-limit tests can drive time
	// deterministically. Nil means time.Now.
	Now func() time.Time

	now func() time.Time
}

// Server is the lookup service: the route handlers plus their middleware
// state. Build one with New, mount Handler (or call ListenAndServe).
type Server struct {
	cfg     Config
	reg     *obs.Registry
	limiter *buckets
	handler http.Handler
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Source == nil {
		panic("serve: Config.Source is required")
	}
	cfg.now = cfg.Now
	if cfg.now == nil {
		cfg.now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{cfg: cfg, reg: reg}
	if cfg.RatePerSec > 0 {
		burst := cfg.Burst
		if burst < 1 {
			burst = 1
		}
		s.limiter = newBuckets(cfg.RatePerSec, burst, cfg.now)
	}

	mux := http.NewServeMux()
	// Liveness stays outside auth and rate limiting: an orchestrator's
	// probe must not consume a client's budget or need its credentials.
	mux.Handle("GET /healthz", s.measure("healthz", http.HandlerFunc(s.handleHealthz)))
	protected := func(route string, h http.HandlerFunc) http.Handler {
		return s.measure(route, s.auth(s.rateLimit(h)))
	}
	mux.Handle("GET /v1/domain/{apex}", protected("domain", s.handleDomain))
	mux.Handle("GET /v1/domain/{apex}/history", protected("history", s.handleHistory))
	mux.Handle("GET /v1/domains", protected("domains", s.handleDomains))
	mux.Handle("GET /v1/stats", protected("stats", s.handleStats))
	mux.Handle("GET /metrics", protected("metrics", s.handleMetrics))
	s.handler = mux
	return s
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the registry the request metrics land in.
func (s *Server) Registry() *obs.Registry { return s.reg }

// ListenAndServe serves on addr until stop yields, then shuts down
// gracefully: in-flight requests get up to drain to finish while new
// connections are refused. ready, when non-nil, is called with the bound
// address once the listener is up — bind ":0" and learn the port.
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}, drain time.Duration, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Drain deadline exceeded: close what's left rather than hang.
		srv.Close()
		return err
	}
	return nil
}

// ---- response shapes ----
//
// Every slice is sorted and every map is string-keyed (encoding/json
// emits those in key order), so a response is a pure function of the
// epoch: byte-identical whether the epoch came from a checkpoint file or
// a live campaign's OnSeal hook.

type errorResponse struct {
	Error string `json:"error"`
}

type recordJSON struct {
	Addrs     []string `json:"addrs,omitempty"`
	CNAMEs    []string `json:"cnames,omitempty"`
	NSHosts   []string `json:"ns_hosts,omitempty"`
	ResolveOK bool     `json:"resolve_ok"`
	NSOK      bool     `json:"ns_ok"`
}

type verdictJSON struct {
	Status          string `json:"status"`
	Provider        string `json:"provider,omitempty"`
	Rerouting       string `json:"rerouting,omitempty"`
	SharedIPSuspect bool   `json:"shared_ip_suspect,omitempty"`
}

type pauseJSON struct {
	Provider  string `json:"provider"`
	StartDay  int    `json:"start_day"`
	EndDay    int    `json:"end_day,omitempty"`
	Open      bool   `json:"open"`
	Resumed   bool   `json:"resumed,omitempty"`
	ResumedAt string `json:"resumed_at,omitempty"`
	Censored  bool   `json:"censored,omitempty"`
}

type hiddenJSON struct {
	Provider string `json:"provider"`
	Week     int    `json:"week"`
	WWW      string `json:"www,omitempty"`
	Addr     string `json:"addr"`
	Verified bool   `json:"verified"`
}

type domainResponse struct {
	Apex string `json:"apex"`
	Rank int    `json:"rank,omitempty"`
	Day  int    `json:"day"`
	Live bool   `json:"live"`
	// Record is the latest sealed day's observation; absent when the
	// domain dropped off the toplist before that day.
	Record  *recordJSON  `json:"record,omitempty"`
	Verdict *verdictJSON `json:"verdict,omitempty"`
	// OpenPause is the domain's currently open OFF window — the §IV-C.1
	// origin-exposure state — when the dynamics campaign has one.
	OpenPause *pauseJSON `json:"open_pause,omitempty"`
	// HiddenRecords are the residual campaign's hidden records for this
	// apex across all scanned weeks.
	HiddenRecords []hiddenJSON `json:"hidden_records,omitempty"`
}

type detectionJSON struct {
	Day  int    `json:"day"`
	Kind string `json:"kind"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
}

type versionJSON struct {
	Day    int         `json:"day"`
	Gone   bool        `json:"gone,omitempty"`
	Record *recordJSON `json:"record,omitempty"`
}

type exposureWeekJSON struct {
	Provider string `json:"provider"`
	Week     int    `json:"week"`
	Hidden   bool   `json:"hidden"`
	Verified bool   `json:"verified"`
}

type historyResponse struct {
	Apex string `json:"apex"`
	// RecordVersions is the retained delta chain from the snapstore —
	// one entry per observed record change.
	RecordVersions []versionJSON `json:"record_versions,omitempty"`
	// Detections / PauseWindows are the dynamics campaign's behavioural
	// history for this apex (Table IV events, Fig. 5 windows).
	Detections   []detectionJSON `json:"detections,omitempty"`
	PauseWindows []pauseJSON     `json:"pause_windows,omitempty"`
	// ExposureWeeks is the residual campaign's week-over-week exposure
	// presence for this apex.
	ExposureWeeks []exposureWeekJSON `json:"exposure_weeks,omitempty"`
}

type domainsResponse struct {
	Total   int          `json:"total"`
	Domains []domainItem `json:"domains"`
}

type domainItem struct {
	Apex string `json:"apex"`
	Rank int    `json:"rank"`
}

type storeStatsJSON struct {
	Days          int `json:"days"`
	EvictedDays   int `json:"evicted_days"`
	Apexes        int `json:"apexes"`
	Versions      int `json:"versions"`
	Tombstones    int `json:"tombstones"`
	InternedNames int `json:"interned_names"`
}

type dynamicsStatsJSON struct {
	DaysCollected int `json:"days_collected"`
	Population    int `json:"population"`
	Adopters      int `json:"adopters"`
	// AdoptersByProvider is keyed by provider name; string-keyed maps
	// marshal in key order, keeping the response deterministic.
	AdoptersByProvider map[string]int `json:"adopters_by_provider,omitempty"`
	Detections         int            `json:"detections"`
	OpenPauses         int            `json:"open_pauses"`
	ClosedPauses       int            `json:"closed_pauses"`
}

type residualStatsJSON struct {
	WeeksScanned    int            `json:"weeks_scanned"`
	NameserverCount int            `json:"nameserver_count"`
	HiddenTotal     map[string]int `json:"hidden_total"`
	VerifiedTotal   map[string]int `json:"verified_total"`
}

// scenarioStatsJSON identifies the scenario spec that produced the
// epoch: the metadata.name and the SHA-256 of the spec's canonical form,
// as recorded in the campaign cursor. Absent for flag-driven campaigns.
type scenarioStatsJSON struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
}

type statsResponse struct {
	Kind     string             `json:"kind"`
	WorldDay int                `json:"world_day"`
	Scenario *scenarioStatsJSON `json:"scenario,omitempty"`
	Store    storeStatsJSON     `json:"store"`
	Dynamics *dynamicsStatsJSON `json:"dynamics,omitempty"`
	Residual *residualStatsJSON `json:"residual,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// epoch fetches the current epoch, answering 503 when the source has
// nothing yet (a live campaign before its first sealed round).
func (s *Server) epoch(w http.ResponseWriter) (*Epoch, bool) {
	e, ok := s.cfg.Source.Epoch()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no sealed campaign state yet")
		return nil, false
	}
	return e, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, ok := s.cfg.Source.Epoch()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "serving": ok})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, err := cmdutil.RenderMetrics(s.reg, "json")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(body))
}

// lookupApex parses the path's apex and resolves it against the epoch,
// answering 400 on a malformed name and 404 (plus a miss count) on an
// unknown one.
func (s *Server) lookupApex(w http.ResponseWriter, r *http.Request, e *Epoch) (dnsmsg.Name, bool) {
	apex, err := dnsmsg.ParseName(r.PathValue("apex"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid domain name")
		return "", false
	}
	if !e.View.Contains(apex) {
		s.reg.VolatileCounter("serve.domain.miss").Inc()
		writeError(w, http.StatusNotFound, "unknown domain")
		return "", false
	}
	s.reg.VolatileCounter("serve.domain.hit").Inc()
	return apex, true
}

func recordJSONOf(rec collect.Record) *recordJSON {
	out := &recordJSON{ResolveOK: rec.ResolveOK, NSOK: rec.NSOK}
	for _, a := range rec.Addrs {
		out.Addrs = append(out.Addrs, a.String())
	}
	for _, c := range rec.CNAMEs {
		out.CNAMEs = append(out.CNAMEs, string(c))
	}
	for _, h := range rec.NSHosts {
		out.NSHosts = append(out.NSHosts, string(h))
	}
	return out
}

func pauseJSONOf(pw behavior.PauseWindow, open bool) *pauseJSON {
	out := &pauseJSON{
		Provider: string(pw.Provider),
		StartDay: pw.StartDay,
		Open:     open,
		Censored: pw.Censored,
	}
	if !open {
		out.EndDay = pw.EndDay
		out.Resumed = pw.Resumed
		out.ResumedAt = string(pw.ResumedAt)
	}
	return out
}

// hiddenRecordsFor collects the residual campaign's hidden records for
// apex across both case studies, sorted by (provider, week, addr).
func hiddenRecordsFor(st *experiment.ResidualState, apex dnsmsg.Name) []hiddenJSON {
	var out []hiddenJSON
	fromWeeks := func(weeks []experiment.WeeklyReport) {
		for _, wr := range weeks {
			for _, o := range wr.Report.Outcomes {
				if o.Apex != apex {
					continue
				}
				out = append(out, hiddenJSON{
					Provider: string(wr.Report.Provider),
					Week:     wr.Week,
					WWW:      string(o.WWW),
					Addr:     o.Addr.String(),
					Verified: o.Verified,
				})
			}
		}
	}
	fromWeeks(st.Cloudflare)
	fromWeeks(st.Incapsula)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		if out[i].Week != out[j].Week {
			return out[i].Week < out[j].Week
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

func (s *Server) handleDomain(w http.ResponseWriter, r *http.Request) {
	e, ok := s.epoch(w)
	if !ok {
		return
	}
	apex, ok := s.lookupApex(w, r, e)
	if !ok {
		return
	}

	resp := domainResponse{Apex: string(apex)}
	if rank, ok := e.View.Rank(apex); ok {
		resp.Rank = rank
	}
	if day, hasDay := e.View.LatestDay(); hasDay {
		resp.Day = day
		if rec, live := e.View.RecordAt(apex, day); live {
			resp.Live = true
			resp.Record = recordJSONOf(rec)
		}
	}
	if dyn := e.State.Dynamics; dyn != nil {
		if a, ok := dyn.Adoptions[apex]; ok {
			resp.Verdict = &verdictJSON{
				Status:          a.Status.String(),
				Provider:        string(a.Provider),
				SharedIPSuspect: a.SharedIPSuspect,
			}
			if a.Rerouting != 0 {
				resp.Verdict.Rerouting = a.Rerouting.String()
			}
		}
		if dyn.HaveTracker {
			for _, pw := range dyn.Tracker.OpenPauses {
				if pw.Apex == apex {
					resp.OpenPause = pauseJSONOf(pw, true)
					break
				}
			}
		}
	}
	if res := e.State.Residual; res != nil {
		resp.HiddenRecords = hiddenRecordsFor(res, apex)
	}
	writeJSON(w, http.StatusOK, resp)
}

// exposurePresence extracts apex's per-week hidden/verified flags from
// an exposure tracker's exported weeks, only the weeks it appears in.
func exposurePresence(provider dps.ProviderKey, weeks []exposure.WeekState, apex dnsmsg.Name) []exposureWeekJSON {
	var out []exposureWeekJSON
	for _, wk := range weeks {
		hidden, verified := false, false
		for _, n := range wk.Hidden {
			if n == apex {
				hidden = true
				break
			}
		}
		for _, n := range wk.Verified {
			if n == apex {
				verified = true
				break
			}
		}
		if hidden || verified {
			out = append(out, exposureWeekJSON{
				Provider: string(provider), Week: wk.Week,
				Hidden: hidden, Verified: verified,
			})
		}
	}
	return out
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	e, ok := s.epoch(w)
	if !ok {
		return
	}
	apex, ok := s.lookupApex(w, r, e)
	if !ok {
		return
	}

	resp := historyResponse{Apex: string(apex)}
	for _, v := range e.View.History(apex) {
		vj := versionJSON{Day: v.Day, Gone: v.Gone}
		if !v.Gone {
			vj.Record = recordJSONOf(v.Rec)
		}
		resp.RecordVersions = append(resp.RecordVersions, vj)
	}
	if dyn := e.State.Dynamics; dyn != nil && dyn.HaveTracker {
		for _, det := range dyn.Tracker.Detections {
			if det.Apex != apex {
				continue
			}
			resp.Detections = append(resp.Detections, detectionJSON{
				Day: det.Day, Kind: det.Kind.String(),
				From: string(det.From), To: string(det.To),
			})
		}
		sort.SliceStable(resp.Detections, func(i, j int) bool {
			return resp.Detections[i].Day < resp.Detections[j].Day
		})
		for _, pw := range dyn.Tracker.Closed {
			if pw.Apex == apex {
				resp.PauseWindows = append(resp.PauseWindows, *pauseJSONOf(pw, false))
			}
		}
		for _, pw := range dyn.Tracker.OpenPauses {
			if pw.Apex == apex {
				resp.PauseWindows = append(resp.PauseWindows, *pauseJSONOf(pw, true))
			}
		}
		sort.SliceStable(resp.PauseWindows, func(i, j int) bool {
			return resp.PauseWindows[i].StartDay < resp.PauseWindows[j].StartDay
		})
	}
	if res := e.State.Residual; res != nil {
		resp.ExposureWeeks = append(resp.ExposureWeeks,
			exposurePresence(dps.Cloudflare, res.CFExposure, apex)...)
		resp.ExposureWeeks = append(resp.ExposureWeeks,
			exposurePresence(dps.Incapsula, res.IncExposure, apex)...)
		sort.SliceStable(resp.ExposureWeeks, func(i, j int) bool {
			a, b := resp.ExposureWeeks[i], resp.ExposureWeeks[j]
			if a.Provider != b.Provider {
				return a.Provider < b.Provider
			}
			return a.Week < b.Week
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	e, ok := s.epoch(w)
	if !ok {
		return
	}
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	apexes := e.View.Apexes() // rank order
	resp := domainsResponse{Total: len(apexes), Domains: []domainItem{}}
	for _, apex := range apexes {
		if len(resp.Domains) >= limit {
			break
		}
		rank, _ := e.View.Rank(apex)
		resp.Domains = append(resp.Domains, domainItem{Apex: string(apex), Rank: rank})
	}
	writeJSON(w, http.StatusOK, resp)
}

// distinctNames counts distinct apexes across an exposure tracker's
// weeks — the hidden sets, or the verified sets when verified is true.
// This mirrors exposure.Tracker.TotalHidden/TotalVerified but runs off
// the exported WeekState slices the campaign cursor carries.
func distinctNames(weeks []exposure.WeekState, verified bool) int {
	seen := make(map[dnsmsg.Name]bool)
	for _, wk := range weeks {
		names := wk.Hidden
		if verified {
			names = wk.Verified
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	return len(seen)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, ok := s.epoch(w)
	if !ok {
		return
	}
	st := e.View.Stats()
	resp := statsResponse{
		Kind:     e.State.Kind,
		WorldDay: e.State.WorldDay(),
		Store: storeStatsJSON{
			Days:          st.Days,
			EvictedDays:   st.EvictedDays,
			Apexes:        st.Apexes,
			Versions:      st.Versions,
			Tombstones:    st.Tombstones,
			InternedNames: st.InternedNames,
		},
	}
	if scn := e.State.Scenario; scn != nil {
		resp.Scenario = &scenarioStatsJSON{Name: scn.Name, Hash: scn.Hash}
	}
	if dyn := e.State.Dynamics; dyn != nil {
		d := &dynamicsStatsJSON{
			DaysCollected: dyn.NextDay,
			Population:    len(dyn.Adoptions),
		}
		if n := len(dyn.Breakdowns); n > 0 {
			last := dyn.Breakdowns[n-1]
			d.Adopters = last.Total
			if len(last.ByProvider) > 0 {
				d.AdoptersByProvider = make(map[string]int, len(last.ByProvider))
				for key, count := range last.ByProvider {
					d.AdoptersByProvider[string(key)] = count
				}
			}
		}
		if dyn.HaveTracker {
			d.Detections = len(dyn.Tracker.Detections)
			d.OpenPauses = len(dyn.Tracker.OpenPauses)
			d.ClosedPauses = len(dyn.Tracker.Closed)
		}
		resp.Dynamics = d
	}
	if res := e.State.Residual; res != nil {
		resp.Residual = &residualStatsJSON{
			WeeksScanned:    res.NextWeek - 1,
			NameserverCount: res.NameserverCount,
			HiddenTotal: map[string]int{
				string(dps.Cloudflare): distinctNames(res.CFExposure, false),
				string(dps.Incapsula):  distinctNames(res.IncExposure, false),
			},
			VerifiedTotal: map[string]int{
				string(dps.Cloudflare): distinctNames(res.CFExposure, true),
				string(dps.Incapsula):  distinctNames(res.IncExposure, true),
			},
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
