package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/world"
)

// runDynamicsCampaign runs a small dynamics campaign that both writes a
// checkpoint directory and publishes every sealed round to a LiveSource —
// the two attachment modes the service supports, off one ground truth.
func runDynamicsCampaign(t *testing.T, dir string, days int) *LiveSource {
	t.Helper()
	cfg := world.PaperConfig(200)
	cfg.Seed = 9001
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01
	live := &LiveSource{}
	experiment.Dynamics{
		World:         world.New(cfg),
		Days:          days,
		CheckpointDir: dir,
		OnSeal:        live.OnSeal,
	}.Run()
	return live
}

func get(t *testing.T, h http.Handler, path string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestCheckpointEqualsLive is the service-level half of the
// live/checkpoint equivalence guarantee: every endpoint's body is
// byte-identical whether the server loaded the campaign's final
// checkpoint from disk or received the final round through OnSeal.
func TestCheckpointEqualsLive(t *testing.T) {
	dir := t.TempDir()
	live := runDynamicsCampaign(t, dir, 5)
	ckpt, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	liveSrv := New(Config{Source: live})
	ckptSrv := New(Config{Source: ckpt})

	e, ok := live.Epoch()
	if !ok {
		t.Fatal("live source has no epoch after the campaign")
	}
	apexes := e.View.Apexes()
	if len(apexes) == 0 {
		t.Fatal("campaign produced no apexes")
	}

	paths := []string{
		"/v1/stats",
		"/v1/domains",
		"/v1/domains?limit=7",
	}
	// Sample across the rank range so at least some sampled domains have
	// verdicts, histories with churn, and pause windows.
	for i := 0; i < len(apexes); i += 20 {
		paths = append(paths,
			"/v1/domain/"+string(apexes[i]),
			"/v1/domain/"+string(apexes[i])+"/history")
	}
	for _, path := range paths {
		lw := get(t, liveSrv.Handler(), path, nil)
		cw := get(t, ckptSrv.Handler(), path, nil)
		if lw.Code != http.StatusOK || cw.Code != http.StatusOK {
			t.Fatalf("%s: live=%d checkpoint=%d, want 200/200", path, lw.Code, cw.Code)
		}
		if lw.Body.String() != cw.Body.String() {
			t.Errorf("%s: live and checkpoint responses differ:\nlive:\n%s\ncheckpoint:\n%s",
				path, lw.Body.String(), cw.Body.String())
		}
	}

	// The stats answer must carry the campaign, not just the store.
	var stats struct {
		Kind     string `json:"kind"`
		WorldDay int    `json:"world_day"`
		Dynamics *struct {
			DaysCollected int `json:"days_collected"`
			Population    int `json:"population"`
		} `json:"dynamics"`
	}
	if err := json.Unmarshal(get(t, ckptSrv.Handler(), "/v1/stats", nil).Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Kind != experiment.CampaignKindDynamics || stats.Dynamics == nil {
		t.Fatalf("stats = %+v, want a dynamics campaign", stats)
	}
	if stats.Dynamics.DaysCollected != 5 || stats.Dynamics.Population == 0 {
		t.Fatalf("stats.dynamics = %+v, want 5 days over a nonzero population", stats.Dynamics)
	}
}

// TestStatsExposesScenarioProvenance pins the "what scenario produced
// this epoch" answer: a campaign configured from a scenario spec carries
// the spec's name and hash through its checkpoints into /v1/stats, both
// live and from disk; a flag-driven campaign reports no scenario at all.
func TestStatsExposesScenarioProvenance(t *testing.T) {
	dir := t.TempDir()
	cfg := world.PaperConfig(200)
	cfg.Seed = 9001
	live := &LiveSource{}
	experiment.Dynamics{
		World:         world.New(cfg),
		Days:          3,
		CheckpointDir: dir,
		OnSeal:        live.OnSeal,
		Scenario: &experiment.ScenarioInfo{
			Name:      "serve-provenance",
			Hash:      "deadbeef",
			Canonical: []byte("{}\n"),
		},
	}.Run()
	ckpt, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	for name, src := range map[string]Source{"live": live, "checkpoint": ckpt} {
		srv := New(Config{Source: src})
		var stats struct {
			Scenario *struct {
				Name string `json:"name"`
				Hash string `json:"hash"`
			} `json:"scenario"`
		}
		if err := json.Unmarshal(get(t, srv.Handler(), "/v1/stats", nil).Body.Bytes(), &stats); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Scenario == nil {
			t.Fatalf("%s: stats has no scenario section", name)
		}
		if stats.Scenario.Name != "serve-provenance" || stats.Scenario.Hash != "deadbeef" {
			t.Errorf("%s: scenario = %+v, want serve-provenance/deadbeef", name, stats.Scenario)
		}
	}

	// A flag-driven campaign must not invent provenance.
	plain := runDynamicsCampaign(t, t.TempDir(), 2)
	var stats struct {
		Scenario *struct{} `json:"scenario"`
	}
	srv := New(Config{Source: plain})
	if err := json.Unmarshal(get(t, srv.Handler(), "/v1/stats", nil).Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scenario != nil {
		t.Error("flag-driven campaign reports a scenario section")
	}
}

func TestDomainAnswers(t *testing.T) {
	dir := t.TempDir()
	live := runDynamicsCampaign(t, dir, 5)
	srv := New(Config{Source: live})
	e, _ := live.Epoch()

	// Every domain the campaign classified must answer with a verdict.
	verdicts := 0
	for _, apex := range e.View.Apexes() {
		w := get(t, srv.Handler(), "/v1/domain/"+string(apex), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", apex, w.Code)
		}
		var resp struct {
			Apex    string `json:"apex"`
			Verdict *struct {
				Status string `json:"status"`
			} `json:"verdict"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Apex != string(apex) {
			t.Fatalf("asked %s, got %s", apex, resp.Apex)
		}
		if resp.Verdict != nil {
			switch resp.Verdict.Status {
			case "ON", "OFF", "NONE":
			default:
				t.Fatalf("%s: verdict status %q", apex, resp.Verdict.Status)
			}
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatal("no domain answered with a verdict")
	}

	if w := get(t, srv.Handler(), "/v1/domain/never-seen.example", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown domain: status %d, want 404", w.Code)
	}
	if w := get(t, srv.Handler(), "/v1/domain/"+string(e.View.Apexes()[0])+"/history", nil); w.Code != http.StatusOK {
		t.Fatalf("history: status %d", w.Code)
	}
	if w := get(t, srv.Handler(), "/v1/domains?limit=bogus", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", w.Code)
	}
}

func TestResidualAnswers(t *testing.T) {
	cfg := world.PaperConfig(200)
	cfg.Seed = 9101
	cfg.LeaveRate = 0.01
	cfg.SwitchRate = 0.008
	cfg.JoinRate = 0.002
	live := &LiveSource{}
	experiment.Residual{
		World:      world.New(cfg),
		Weeks:      2,
		WarmupDays: 7,
		OnSeal:     live.OnSeal,
	}.Run()
	srv := New(Config{Source: live})

	var stats struct {
		Kind     string `json:"kind"`
		Residual *struct {
			WeeksScanned int            `json:"weeks_scanned"`
			HiddenTotal  map[string]int `json:"hidden_total"`
		} `json:"residual"`
	}
	if err := json.Unmarshal(get(t, srv.Handler(), "/v1/stats", nil).Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Kind != experiment.CampaignKindResidual || stats.Residual == nil {
		t.Fatalf("stats = %+v, want a residual campaign", stats)
	}
	if stats.Residual.WeeksScanned != 2 {
		t.Fatalf("weeks_scanned = %d, want 2", stats.Residual.WeeksScanned)
	}
	if _, ok := stats.Residual.HiddenTotal["cloudflare"]; !ok {
		t.Fatalf("hidden_total = %v, want a cloudflare entry", stats.Residual.HiddenTotal)
	}
}

func TestNoEpochYet(t *testing.T) {
	srv := New(Config{Source: &LiveSource{}})
	if w := get(t, srv.Handler(), "/v1/stats", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("stats before first seal: status %d, want 503", w.Code)
	}
	// Liveness still answers — the process is up, just not serving yet.
	w := get(t, srv.Handler(), "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", w.Code)
	}
	var h struct {
		OK      bool `json:"ok"`
		Serving bool `json:"serving"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Serving {
		t.Fatalf("healthz = %+v, want ok and not serving", h)
	}
}

func TestAuth(t *testing.T) {
	dir := t.TempDir()
	live := runDynamicsCampaign(t, dir, 2)
	srv := New(Config{Source: live, APIKeys: []string{"k1", "k2"}})

	w := get(t, srv.Handler(), "/v1/stats", nil)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", w.Code)
	}
	if got := w.Header().Get("WWW-Authenticate"); got == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("401 body %q is not an error JSON (%v)", w.Body.String(), err)
	}
	if w := get(t, srv.Handler(), "/v1/stats", map[string]string{"Authorization": "Bearer wrong"}); w.Code != http.StatusUnauthorized {
		t.Fatalf("wrong key: status %d, want 401", w.Code)
	}
	if w := get(t, srv.Handler(), "/v1/stats", map[string]string{"Authorization": "Bearer k1"}); w.Code != http.StatusOK {
		t.Fatalf("bearer key: status %d, want 200", w.Code)
	}
	if w := get(t, srv.Handler(), "/v1/stats", map[string]string{"X-API-Key": "k2"}); w.Code != http.StatusOK {
		t.Fatalf("header key: status %d, want 200", w.Code)
	}
	// Liveness needs no key.
	if w := get(t, srv.Handler(), "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz with auth on: status %d, want 200", w.Code)
	}
}

// fakeClock is a hand-driven clock for the rate-limit tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestRateLimit(t *testing.T) {
	dir := t.TempDir()
	live := runDynamicsCampaign(t, dir, 2)
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	srv := New(Config{
		Source:     live,
		APIKeys:    []string{"k1", "k2"},
		RatePerSec: 1,
		Burst:      2,
		Now:        clock.now,
	})
	k1 := map[string]string{"Authorization": "Bearer k1"}
	k2 := map[string]string{"Authorization": "Bearer k2"}

	for i := 0; i < 2; i++ {
		if w := get(t, srv.Handler(), "/v1/stats", k1); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, w.Code)
		}
	}
	w := get(t, srv.Handler(), "/v1/stats", k1)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429", w.Code)
	}
	retry, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", w.Header().Get("Retry-After"))
	}

	// Another key has its own bucket.
	if w := get(t, srv.Handler(), "/v1/stats", k2); w.Code != http.StatusOK {
		t.Fatalf("fresh key rate-limited: status %d", w.Code)
	}

	// Waiting the advertised interval buys exactly one more token.
	clock.advance(time.Duration(retry) * time.Second)
	if w := get(t, srv.Handler(), "/v1/stats", k1); w.Code != http.StatusOK {
		t.Fatalf("after Retry-After: status %d, want 200", w.Code)
	}
	if w := get(t, srv.Handler(), "/v1/stats", k1); w.Code != http.StatusTooManyRequests {
		t.Fatalf("token reused: status %d, want 429", w.Code)
	}

	// Unauthorized requests must not drain the bucket: the 401 short-
	// circuits before the limiter.
	clock.advance(10 * time.Second)
	for i := 0; i < 5; i++ {
		get(t, srv.Handler(), "/v1/stats", map[string]string{"Authorization": "Bearer wrong"})
	}
	if w := get(t, srv.Handler(), "/v1/stats", k1); w.Code != http.StatusOK {
		t.Fatalf("bucket drained by unauthorized traffic: status %d", w.Code)
	}
}

// TestLiveConcurrentReads attaches the service to a campaign in flight
// and hammers it from parallel readers while rounds seal — the
// reads-never-lock-the-writer guarantee, checked under -race.
func TestLiveConcurrentReads(t *testing.T) {
	cfg := world.PaperConfig(150)
	cfg.Seed = 9201
	cfg.PauseRate = 0.04
	live := &LiveSource{}
	srv := New(Config{Source: live})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				e, ok := live.Epoch()
				if !ok {
					continue
				}
				apexes := e.View.Apexes()
				apex := string(apexes[i%len(apexes)])
				for _, path := range []string{
					"/v1/domain/" + apex,
					"/v1/domain/" + apex + "/history",
					"/v1/stats",
					"/v1/domains?limit=5",
				} {
					if w := get(t, srv.Handler(), path, nil); w.Code != http.StatusOK {
						t.Errorf("%s: status %d", path, w.Code)
						return
					}
				}
			}
		}(i)
	}

	experiment.Dynamics{
		World:  world.New(cfg),
		Days:   12,
		OnSeal: live.OnSeal,
	}.Run()
	close(done)
	wg.Wait()

	e, ok := live.Epoch()
	if !ok {
		t.Fatal("no epoch after campaign")
	}
	if day, _ := e.View.LatestDay(); day == 0 {
		t.Fatal("final epoch is still day 0")
	}
}

// TestEpochConsistency: a handler must never mix two rounds in one
// answer. The stats endpoint reports the store and the campaign from the
// same Epoch, so days_collected always equals the view's day count even
// while rounds seal mid-request.
func TestEpochConsistency(t *testing.T) {
	cfg := world.PaperConfig(100)
	cfg.Seed = 9301
	live := &LiveSource{}
	srv := New(Config{Source: live})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, ok := live.Epoch(); !ok {
				continue
			}
			w := get(t, srv.Handler(), "/v1/stats", nil)
			var stats struct {
				WorldDay int `json:"world_day"`
				Store    struct {
					Days int `json:"days"`
				} `json:"store"`
				Dynamics struct {
					DaysCollected int `json:"days_collected"`
				} `json:"dynamics"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
				t.Error(err)
				return
			}
			// SnapWindow 0 streams with a 2-day window; the retained day
			// count must match the campaign's progress, capped by it.
			want := stats.Dynamics.DaysCollected
			if want > 2 {
				want = 2
			}
			if stats.Store.Days != want {
				t.Errorf("store.days=%d with days_collected=%d: response mixed two epochs",
					stats.Store.Days, stats.Dynamics.DaysCollected)
				return
			}
		}
	}()

	experiment.Dynamics{
		World:  world.New(cfg),
		Days:   10,
		OnSeal: live.OnSeal,
	}.Run()
	close(done)
	wg.Wait()
}

func TestOpenCheckpointErrors(t *testing.T) {
	if _, err := OpenCheckpoint(t.TempDir()); err == nil {
		t.Fatal("empty dir opened as a checkpoint source")
	}
	if _, err := OpenCheckpoint("/does/not/exist"); err == nil {
		t.Fatal("missing dir opened as a checkpoint source")
	}
}

// TestListenAndServe drives the real network path: bind :0, query over
// TCP, then stop and verify the graceful shutdown completes.
func TestListenAndServe(t *testing.T) {
	dir := t.TempDir()
	live := runDynamicsCampaign(t, dir, 2)
	srv := New(Config{Source: live, APIKeys: []string{"k"}})

	stop := make(chan struct{})
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe("127.0.0.1:0", stop, 2*time.Second, func(a string) { addrc <- a })
	}()
	addr := <-addrc

	req, _ := http.NewRequest("GET", fmt.Sprintf("http://%s/v1/stats", addr), nil)
	req.Header.Set("Authorization", "Bearer k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over TCP: status %d", resp.StatusCode)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
