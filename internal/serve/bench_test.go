package serve

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/world"
)

// BenchmarkServeUnderWrites is the load driver behind the EXPERIMENTS.md
// latency entry: parallel clients hammer the domain endpoint while a
// dynamics campaign keeps sealing rounds into the same LiveSource, so
// every epoch swap happens mid-query-storm. It reports wall-clock p50
// and p99 per request alongside the usual ns/op.
func BenchmarkServeUnderWrites(b *testing.B) {
	cfg := world.PaperConfig(500)
	cfg.Seed = 9401
	cfg.PauseRate = 0.04
	live := &LiveSource{}
	srv := New(Config{Source: live})

	// Seed the source so readers never spin on a missing epoch, then keep
	// a writer sealing rounds for the whole measurement window.
	experiment.Dynamics{World: world.New(cfg), Days: 2, OnSeal: live.OnSeal}.Run()
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		seed := cfg.Seed
		for {
			select {
			case <-done:
				return
			default:
			}
			seed++
			wcfg := cfg
			wcfg.Seed = seed
			experiment.Dynamics{World: world.New(wcfg), Days: 10, OnSeal: live.OnSeal}.Run()
		}
	}()

	e, _ := live.Epoch()
	apexes := e.View.Apexes()
	var mu sync.Mutex
	var latencies []time.Duration

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		local := make([]time.Duration, 0, 1024)
		for pb.Next() {
			apex := string(apexes[i%len(apexes)])
			i++
			req := httptest.NewRequest("GET", "/v1/domain/"+apex, nil)
			w := httptest.NewRecorder()
			start := time.Now()
			srv.Handler().ServeHTTP(w, req)
			local = append(local, time.Since(start))
			if w.Code != http.StatusOK && w.Code != http.StatusNotFound {
				b.Errorf("%s: status %d", apex, w.Code)
				return
			}
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(done)
	writer.Wait()

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p := func(q float64) float64 {
			idx := int(q * float64(len(latencies)-1))
			return float64(latencies[idx].Nanoseconds())
		}
		b.ReportMetric(p(0.50), "p50-ns")
		b.ReportMetric(p(0.99), "p99-ns")
	}
}
