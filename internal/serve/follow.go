package serve

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/snapdisk"
	"rrdps/internal/snapstore"
)

// FollowSource tails a live campaign's checkpoint directory: each
// Refresh rebuilds the current epoch from the newest checkpoint plus the
// sealed WAL day groups after it — exactly the campaign's own recovery
// invariant — and swaps it in atomically. A `rrserve -follow` reader
// therefore serves answers at most one poll interval staler than the
// writer's last sealed round, without ever talking to the writer
// process: the checkpoint is an atomic rename, and WAL replay drops any
// torn tail, so a reader racing the writer sees complete rounds only.
//
// Read ordering inside Refresh is load-bearing: the WAL bytes are
// captured BEFORE the checkpoint is picked. The WAL only ever holds the
// day groups sealed after some checkpoint C; a checkpoint read later is
// C or newer, so every WAL day beyond the checkpoint's coverage extends
// it contiguously. Reading the checkpoint first would race the writer's
// checkpoint-then-truncate step: a WAL captured after the truncate can
// start past the stale checkpoint's coverage, leaving a day gap.
type FollowSource struct {
	dir *snapdisk.Dir
	cur atomic.Pointer[Epoch]

	mu      sync.Mutex // serializes Refresh: the poller and manual calls
	lastSig string

	pollOnce sync.Once
	started  bool
	stop     chan struct{}
	done     chan struct{}
}

// OpenFollow opens dir for tailing, read-only (the WAL is read via the
// filesystem, never opened for appending, so the writer is undisturbed).
// The directory may be empty — a campaign that has not sealed its first
// round yet; Epoch reports ok=false until one lands.
func OpenFollow(dir string) (*FollowSource, error) {
	d, err := snapdisk.OpenDirReadOnly(dir)
	if err != nil {
		return nil, err
	}
	s := &FollowSource{dir: d, stop: make(chan struct{}), done: make(chan struct{})}
	if _, err := s.Refresh(); err != nil {
		return nil, err
	}
	return s, nil
}

// signature fingerprints the directory state that determines the epoch:
// the set of checkpoint files (atomic renames — names change, contents
// never do) and the WAL's size (append-only between truncations).
func (s *FollowSource) signature() string {
	var parts []string
	if entries, err := os.ReadDir(s.dir.Path()); err == nil {
		for _, e := range entries {
			if info, err := e.Info(); err == nil {
				parts = append(parts, fmt.Sprintf("%s:%d", e.Name(), info.Size()))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Refresh re-derives the epoch from disk and swaps it in if the
// directory changed since the last call. It returns whether a new epoch
// was published. Errors leave the previous epoch serving: a reader must
// degrade to stale answers, not to no answers, while the writer is
// mid-rotation.
func (s *FollowSource) Refresh() (swapped bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	sig := s.signature()
	if sig == s.lastSig {
		return false, nil
	}

	// WAL first — see the type comment for why this ordering is correct.
	walBytes, err := os.ReadFile(s.dir.WALPath())
	if err != nil && !os.IsNotExist(err) {
		return false, err
	}

	st, blob, _, ok, err := s.dir.LatestCheckpoint()
	if err != nil {
		return false, err
	}
	var store *snapstore.Store
	if ok {
		if blob == nil {
			return false, fmt.Errorf("serve: checkpoint in %s carries no campaign state", s.dir.Path())
		}
		store, err = snapstore.FromState(st)
		if err != nil {
			return false, err
		}
	} else {
		store = snapstore.New()
	}

	// Fold the sealed WAL groups past the checkpoint's coverage; a torn
	// tail is dropped by ReplayWALBytes, so only complete rounds land.
	days, _ := snapdisk.ReplayWALBytes(walBytes)
	haveState := ok
	for _, wd := range days {
		if last, has := store.LatestDay(); has && wd.Day <= last {
			continue // already folded into the checkpoint
		}
		dw := store.BeginDay(wd.Day)
		for _, rec := range wd.Records {
			dw.Put(rec)
		}
		dw.Seal()
		blob = wd.Footer
		haveState = true
	}
	if !haveState {
		// Nothing sealed yet; keep reporting "no epoch".
		s.lastSig = sig
		return false, nil
	}

	state, err := experiment.DecodeCampaignState(blob)
	if err != nil {
		return false, err
	}
	s.cur.Store(&Epoch{View: store.SealedView(), State: state})
	s.lastSig = sig
	return true, nil
}

// Start polls the directory every interval on a background goroutine,
// refreshing the epoch as rounds land. Transient refresh errors (the
// writer mid-rotation) are skipped; the next tick retries. Call Close to
// stop. Start is idempotent — only the first call launches the poller.
func (s *FollowSource) Start(interval time.Duration) {
	s.pollOnce.Do(func() {
		s.started = true
		go func() {
			defer close(s.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.Refresh() //nolint:errcheck // transient; retried next tick
				}
			}
		}()
	})
}

// Close stops the poller started by Start (safe to call without one).
func (s *FollowSource) Close() {
	select {
	case <-s.stop:
		return // already closed
	default:
	}
	close(s.stop)
	if s.started {
		<-s.done
	}
}

// Epoch implements Source; ok is false until the first sealed round is
// visible on disk.
func (s *FollowSource) Epoch() (*Epoch, bool) {
	e := s.cur.Load()
	return e, e != nil
}
