// Package serve is the residual-resolution lookup service: an HTTP API
// answering "is this domain's origin exposed behind its DPS, and through
// which residual records?" straight off a snapstore — the paper's end
// product turned from batch campaign reports into a long-lived query
// surface.
//
// The package is layered the way a production proxy is layered: a
// storage Source abstraction over the store's sealed-day views (a
// checkpoint directory or a live campaign), HTTP handlers that only ever
// read immutable Epochs, and middleware for API-key auth, per-key
// token-bucket rate limiting, and request metrics. A live campaign
// publishes each sealed round through its OnSeal hook; readers swap to
// the new epoch atomically and never lock the writer.
package serve

import (
	"fmt"
	"sync/atomic"

	"rrdps/internal/core/experiment"
	"rrdps/internal/snapdisk"
	"rrdps/internal/snapstore"
)

// Epoch is one sealed round's queryable state: an immutable store view
// plus the campaign cursor decoded from the same round, so every answer
// a handler builds is internally consistent. Epochs are never mutated
// after construction.
type Epoch struct {
	View  *snapstore.View
	State experiment.CampaignState
}

// Source supplies the current epoch. Implementations must return
// immutable epochs and may swap them at any time; ok is false only
// before the first epoch exists (a live campaign that has not sealed a
// round yet).
type Source interface {
	Epoch() (*Epoch, bool)
}

// CheckpointSource serves a single epoch loaded from a snapdisk
// checkpoint directory, read-only: nothing in the directory is created,
// truncated, or replayed. The campaign that wrote the directory seals
// its final state into the last checkpoint, so the WAL is not consulted —
// a mid-campaign directory serves the newest full checkpoint's round.
type CheckpointSource struct {
	epoch *Epoch
	label int
}

// OpenCheckpoint loads the newest valid checkpoint in dir. A directory
// without a decodable checkpoint is an error: a lookup service pointed
// at the wrong path must fail loudly, not serve an empty world.
func OpenCheckpoint(dir string) (*CheckpointSource, error) {
	d, err := snapdisk.OpenDirReadOnly(dir)
	if err != nil {
		return nil, err
	}
	st, blob, label, ok, err := d.LatestCheckpoint()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("serve: no checkpoint found in %s", dir)
	}
	if blob == nil {
		return nil, fmt.Errorf("serve: checkpoint %d in %s carries no campaign state", label, dir)
	}
	store, err := snapstore.FromState(st)
	if err != nil {
		return nil, err
	}
	state, err := experiment.DecodeCampaignState(blob)
	if err != nil {
		return nil, err
	}
	// The loaded store is quiescent, so its sealed view is simply its
	// whole retained state.
	return &CheckpointSource{
		epoch: &Epoch{View: store.SealedView(), State: state},
		label: label,
	}, nil
}

// Epoch implements Source.
func (s *CheckpointSource) Epoch() (*Epoch, bool) { return s.epoch, true }

// Label returns the label (world day) of the loaded checkpoint.
func (s *CheckpointSource) Label() int { return s.label }

// LiveSource attaches the service to a running campaign: wire OnSeal as
// the campaign's OnSeal hook and every sealed round becomes the current
// epoch via one atomic pointer swap. Readers holding the previous epoch
// keep a fully consistent (just stale) world; the writer never blocks.
type LiveSource struct {
	cur atomic.Pointer[Epoch]
}

// OnSeal publishes one sealed round. It has the exact signature of the
// campaign hooks (experiment.Dynamics.OnSeal / Residual.OnSeal), so a
// caller writes `OnSeal: src.OnSeal`. A blob that does not decode
// panics: the campaign just produced it, so damage here is a programming
// error, not an operational condition.
func (s *LiveSource) OnSeal(v *snapstore.View, blob []byte) {
	state, err := experiment.DecodeCampaignState(blob)
	if err != nil {
		panic(fmt.Sprintf("serve: live campaign published an undecodable cursor: %v", err))
	}
	s.cur.Store(&Epoch{View: v, State: state})
}

// Epoch implements Source; ok is false until the first round seals.
func (s *LiveSource) Epoch() (*Epoch, bool) {
	e := s.cur.Load()
	return e, e != nil
}
