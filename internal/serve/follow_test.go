package serve

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/world"
)

// TestFollowEqualsCheckpoint pins the follow mode's endgame: once the
// campaign has finished and force-checkpointed, a FollowSource over the
// directory must answer every endpoint byte-identically to a
// CheckpointSource over the same directory — following a campaign to its
// end and loading its final checkpoint are the same service.
func TestFollowEqualsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	runDynamicsCampaign(t, dir, 5)
	fs, err := OpenFollow(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ckpt, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	e, ok := fs.Epoch()
	if !ok {
		t.Fatal("follow source has no epoch over a finished campaign")
	}
	followSrv, ckptSrv := New(Config{Source: fs}), New(Config{Source: ckpt})
	paths := []string{"/v1/stats", "/v1/domains"}
	apexes := e.View.Apexes()
	for i := 0; i < len(apexes); i += 20 {
		paths = append(paths,
			"/v1/domain/"+string(apexes[i]),
			"/v1/domain/"+string(apexes[i])+"/history")
	}
	for _, path := range paths {
		fw := get(t, followSrv.Handler(), path, nil)
		cw := get(t, ckptSrv.Handler(), path, nil)
		if fw.Code != http.StatusOK || cw.Code != http.StatusOK {
			t.Fatalf("%s: follow=%d checkpoint=%d, want 200/200", path, fw.Code, cw.Code)
		}
		if fw.Body.String() != cw.Body.String() {
			t.Errorf("%s: follow and checkpoint responses differ:\nfollow:\n%s\ncheckpoint:\n%s",
				path, fw.Body.String(), cw.Body.String())
		}
	}
}

// TestFollowEmptyDir: attaching to a campaign that has not sealed its
// first round yet is not an error — the source reports no epoch (the
// server answers 503) until one lands.
func TestFollowEmptyDir(t *testing.T) {
	fs, err := OpenFollow(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, ok := fs.Epoch(); ok {
		t.Fatal("epoch reported over an empty directory")
	}
	if w := get(t, New(Config{Source: fs}).Handler(), "/v1/stats", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty follow dir: status %d, want 503", w.Code)
	}
	if _, err := OpenFollow("/does/not/exist"); err == nil {
		t.Fatal("OpenFollow on a missing directory must error")
	}
}

// TestFollowTailsLiveWriter is the -race keystone for follow mode: a
// reader polling the checkpoint directory while the campaign engine is
// actively sealing rounds into it must only ever observe complete
// epochs — contiguous days from 0 whose latest sealed day matches the
// campaign cursor — advancing monotonically, and must have served every
// sealed day's epoch within one seal cycle by the time the writer is
// done. The checkpoint cadence of 2 makes the writer alternate between
// WAL-append and checkpoint-then-truncate rotations under the reader.
func TestFollowTailsLiveWriter(t *testing.T) {
	const days = 8
	dir := t.TempDir()
	cfg := world.PaperConfig(200)
	cfg.Seed = 9001
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01

	fs, err := OpenFollow(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.Start(100 * time.Microsecond)
	defer fs.Close()

	// Writer and reader run in lockstep: the writer seals a day, then
	// waits for the reader to observe that day's epoch before sealing
	// the next. That asserts every sealed day is served — not just the
	// final one — and stays deterministic when the test runs on a loaded
	// machine (a free-running writer can outpace the reader, which would
	// turn "observe each day" into a scheduling lottery). The 100µs
	// poller still races every WAL append and checkpoint rotation in
	// between.
	var (
		wg        sync.WaitGroup
		readerErr error
		// Buffered so a send can never block the test goroutine if the
		// reader bails out on its deadline; the ack is what enforces the
		// lockstep.
		writerDay = make(chan int, days)
		readerAck = make(chan struct{})
	)
	checkEpoch := func(e *Epoch) int {
		t.Helper()
		if e.State.Dynamics == nil {
			t.Error("epoch carries no dynamics state")
			return -1
		}
		latest, ok := e.View.LatestDay()
		if !ok {
			t.Error("epoch view holds no sealed day")
			return -1
		}
		if want := e.State.Dynamics.NextDay - 1; latest != want {
			t.Errorf("partial epoch: view at day %d, cursor says %d", latest, want)
		}
		// The retained days must be a contiguous run ending at latest — a
		// gap means the reader stitched a WAL onto a checkpoint it does
		// not extend (the read-ordering race Refresh is built to avoid).
		days := e.View.Days()
		for i, d := range days {
			if want := latest - (len(days) - 1 - i); d != want {
				t.Errorf("retained days %v are not contiguous up to %d", days, latest)
				break
			}
		}
		return latest
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := -1
		for day := range writerDay {
			// Poll until this sealed day is visible; the poller fires every
			// 100µs, so "within one seal cycle" means almost immediately.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if e, ok := fs.Epoch(); ok {
					got := checkEpoch(e)
					if got < last {
						t.Errorf("epoch went backwards: day %d after day %d", got, last)
					}
					if got > last {
						last = got
					}
					if got >= day {
						break
					}
				}
				if time.Now().After(deadline) {
					readerErr = http.ErrServerClosed // any sentinel: flag below
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
			readerAck <- struct{}{}
		}
	}()

	en := experiment.Dynamics{
		World:           world.New(cfg),
		CheckpointDir:   dir,
		CheckpointEvery: 2,
	}.NewEngine()
	for day := 0; day < days; day++ {
		en.AppendDay()
		writerDay <- day
		select {
		case <-readerAck:
		case <-time.After(10 * time.Second):
			t.Fatal("reader never acknowledged a sealed day")
		}
	}
	en.Checkpoint()
	en.Close()
	close(writerDay)
	wg.Wait()
	if readerErr != nil {
		t.Fatal("reader timed out waiting for a sealed day to become visible")
	}

	// After the final forced checkpoint, one manual refresh must land the
	// reader on the finished campaign.
	if _, err := fs.Refresh(); err != nil {
		t.Fatal(err)
	}
	e, ok := fs.Epoch()
	if !ok {
		t.Fatal("no epoch after the campaign finished")
	}
	if latest := checkEpoch(e); latest != days-1 {
		t.Fatalf("final epoch at day %d, want %d", latest, days-1)
	}
}
