package serve

import (
	"crypto/subtle"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// apiKey extracts the request's API key: `Authorization: Bearer <key>`
// or the `X-API-Key` header.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return rest
		}
	}
	return r.Header.Get("X-API-Key")
}

// auth rejects requests whose key is not in keys with 401. Comparison is
// constant-time per candidate key so the middleware doesn't leak key
// prefixes through timing. An empty key set disables auth (a private
// deployment behind its own perimeter).
func (s *Server) auth(next http.Handler) http.Handler {
	if len(s.cfg.APIKeys) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := apiKey(r)
		for _, k := range s.cfg.APIKeys {
			if subtle.ConstantTimeCompare([]byte(key), []byte(k)) == 1 {
				next.ServeHTTP(w, r)
				return
			}
		}
		s.reg.VolatileCounter("serve.auth.rejected").Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="rrserve"`)
		writeError(w, http.StatusUnauthorized, "missing or invalid API key")
	})
}

// buckets is a per-key token-bucket limiter: each key accrues Rate
// tokens per second up to Burst, and each request spends one. The clock
// is injected so tests drive it deterministically.
type buckets struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time
	byKey map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(rate float64, burst int, now func() time.Time) *buckets {
	return &buckets{rate: rate, burst: float64(burst), now: now, byKey: make(map[string]*bucket)}
}

// take spends one token for key. When the bucket is dry it returns
// ok=false and how long until a token accrues — the Retry-After value.
func (b *buckets) take(key string) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.byKey[key]
	if bk == nil {
		bk = &bucket{tokens: b.burst, last: now}
		b.byKey[key] = bk
	} else {
		bk.tokens = math.Min(b.burst, bk.tokens+now.Sub(bk.last).Seconds()*b.rate)
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	need := (1 - bk.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// rateLimit applies the per-key token bucket, answering 429 with a
// Retry-After header (whole seconds, rounded up — a client that waits
// that long is guaranteed a token) when the key's bucket is dry.
func (s *Server) rateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok, retryAfter := s.limiter.take(apiKey(r))
		if !ok {
			s.reg.VolatileCounter("serve.ratelimited").Inc()
			secs := int(math.Ceil(retryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// measure records per-route request counts and latency histograms into
// the registry. route is the metric label (dots, not slashes). The
// metrics are volatile: wall-clock latencies are scheduling noise by
// definition, and the campaign's deterministic metric set must not
// absorb them.
func (s *Server) measure(route string, next http.Handler) http.Handler {
	count := s.reg.VolatileCounter("serve.requests." + route)
	errs := s.reg.VolatileCounter("serve.errors." + route)
	latency := s.reg.VolatileHistogram("serve.latency_us." + route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		count.Inc()
		if rec.status >= 500 {
			errs.Inc()
		}
		latency.Observe(uint64(s.cfg.now().Sub(start).Microseconds()))
	})
}
