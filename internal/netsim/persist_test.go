package netsim

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"testing"
)

func TestCountersExportRestoreRoundTrip(t *testing.T) {
	srv2 := Endpoint{Addr: netip.MustParseAddr("203.0.113.20"), Port: PortHTTP}
	build := func() *Network {
		n := testNet(t)
		n.Register(testServer, RegionVirginia, echoHandler("a"))
		n.Register(srv2, RegionTokyo, echoHandler("b"))
		n.Register(srv2, RegionOregon, echoHandler("b2")) // anycast: second PoP
		return n
	}

	n := build()
	for i := 0; i < 5; i++ {
		if _, err := n.Send(testClient, RegionOregon, testServer, []byte("q")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Send(testClient, RegionSydney, srv2, []byte("q")); err != nil {
		t.Fatal(err)
	}
	st := n.ExportCounters()

	// The state must survive the cursor's JSON encoding.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 CountersState
	if err := json.Unmarshal(b, &st2); err != nil {
		t.Fatal(err)
	}

	n2 := build()
	if err := n2.RestoreCounters(st2); err != nil {
		t.Fatalf("RestoreCounters: %v", err)
	}
	if !reflect.DeepEqual(n2.ExportCounters(), st) {
		t.Fatalf("restored export = %+v, want %+v", n2.ExportCounters(), st)
	}
	if got := n2.QueryCounts(testServer); got[RegionVirginia] != 5 {
		t.Fatalf("restored QueryCounts = %v, want 5 at virginia", got)
	}
	sends, drops := n2.Stats()
	wantSends, wantDrops := n.Stats()
	if sends != wantSends || drops != wantDrops {
		t.Fatalf("restored sends/drops = %d/%d, want %d/%d", sends, drops, wantSends, wantDrops)
	}
}

func TestRestoreCountersZeroesUnlistedEndpoints(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("a"))
	if _, err := n.Send(testClient, RegionOregon, testServer, []byte("q")); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreCounters(CountersState{}); err != nil {
		t.Fatalf("RestoreCounters: %v", err)
	}
	if got := n.QueryCounts(testServer); len(got) != 0 {
		t.Fatalf("counters after empty restore = %v, want none", got)
	}
}

func TestRestoreCountersRejectsUnknownEndpoint(t *testing.T) {
	n := testNet(t)
	err := n.RestoreCounters(CountersState{Endpoints: []EndpointCounts{
		{Addr: netip.MustParseAddr("192.0.2.1"), Port: PortDNS, Queries: map[Region]uint64{RegionTokyo: 1}},
	}})
	if err == nil {
		t.Fatal("RestoreCounters accepted an endpoint with no handler")
	}
}
