package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"time"
)

// Latency model parameters. The absolute values are loose approximations
// of real-world RTTs; what matters for the resolver's latency-adaptive
// selection is that they are ordinally correct — a Tokyo PoP answers an
// Oregon vantage slower than a Virginia one — and fully deterministic.
const (
	// latencyBase is the fixed per-exchange cost (serialization, stack
	// traversal) independent of distance.
	latencyBase = 2 * time.Millisecond
	// latencyPerUnit converts planar region distance to propagation delay.
	latencyPerUnit = 700 * time.Microsecond
	// latencyUnknown is the propagation charge when either region is
	// unplaced (Distance returns +Inf).
	latencyUnknown = 250 * time.Millisecond
)

// RTT returns the round-trip time the fabric charges for an exchange
// between fromRegion and the PoP in popRegion. It is a pure function of
// the two regions — deliberately jitter-free. The resolver folds observed
// RTTs into per-server EWMA estimates at pass boundaries; a constant
// per-(vantage, PoP) RTT makes that fold insensitive to how many
// duplicates of a logical query raced or which of a server's queries
// happened to succeed, which is what keeps latency-adaptive selection
// inside the serial≡parallel guarantee.
func (n *Network) RTT(fromRegion, popRegion Region) time.Duration {
	return rttFor(fromRegion, popRegion)
}

func rttFor(fromRegion, popRegion Region) time.Duration {
	prop := latencyUnknown
	if d := Distance(fromRegion, popRegion); d != math.MaxFloat64 {
		prop = time.Duration(d * float64(latencyPerUnit))
	}
	return latencyBase + prop
}

// BufferedHandler is implemented by handlers that can encode their
// response into a caller-supplied buffer, sparing the fabric's hot path a
// response allocation per query. ServeNetBuf appends the response to dst
// (which may be nil) and returns the extended slice; the same nil-response
// convention as ServeNet applies.
type BufferedHandler interface {
	Handler
	ServeNetBuf(req Request, dst []byte) ([]byte, error)
}

// Exchange is Send plus the latency model and zero-copy delivery: the
// response is appended to dst (which may be nil) and the returned slice is
// always caller-owned — buffered handlers encode straight into it, and
// other handlers' responses are copied in — so clients can recycle one
// receive buffer across exchanges. The deterministic RTT for the exchange
// is returned alongside. A timed-out or failed exchange reports zero RTT —
// the caller knows only that no reply arrived within its patience, and the
// retry policy charges its own timeout penalty.
func (n *Network) Exchange(from netip.Addr, fromRegion Region, to Endpoint, payload, dst []byte) ([]byte, time.Duration, error) {
	n.mu.Lock()
	n.sends++
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.drops++
		n.mu.Unlock()
		return nil, 0, fmt.Errorf("sending to %s: %w", to, ErrTimeout)
	}
	var outcome faultOutcome
	if n.faults.Enabled() {
		// decide() is pure; it runs under the lock only because the plan
		// and the clock read must be consistent with the counters.
		outcome = n.faults.decide(n.clock.Now(), to, payload)
		if outcome.drop {
			n.drops++
			switch outcome.cause {
			case saltUniform:
				n.faultStats.UniformDrops++
			case saltBurstDrop:
				n.faultStats.BurstDrops++
			case saltFlakyDrop:
				n.faultStats.FlakyDrops++
			}
			n.mu.Unlock()
			return nil, 0, fmt.Errorf("sending to %s: %w", to, ErrTimeout)
		}
		if outcome.corrupt {
			n.faultStats.Corrupted++
		}
	}
	st, ok := n.endpoints[to]
	if !ok || len(st.instances) == 0 {
		n.mu.Unlock()
		return nil, 0, fmt.Errorf("sending to %s: %w", to, ErrUnreachable)
	}
	if st.blackholed {
		n.drops++
		n.mu.Unlock()
		return nil, 0, fmt.Errorf("sending to %s: %w", to, ErrTimeout)
	}
	if st.limit != nil && !st.limit.admit(from, n.clock.Now()) {
		// Rate-limited: the server drops the query without answering, so
		// the client sees the same timeout an injected loss produces.
		n.drops++
		n.limitDrops++
		n.mu.Unlock()
		return nil, 0, fmt.Errorf("sending to %s: %w", to, ErrTimeout)
	}
	inst := st.instances[0]
	if len(st.instances) > 1 {
		best := Distance(fromRegion, inst.region)
		for _, cand := range st.instances[1:] {
			if d := Distance(fromRegion, cand.region); d < best {
				inst, best = cand, d
			}
		}
	}
	st.queries[inst.region]++
	now := n.clock.Now()
	n.mu.Unlock()

	req := Request{
		From:       from,
		FromRegion: fromRegion,
		To:         to,
		PoPRegion:  inst.region,
		Payload:    payload,
		Time:       now,
	}
	var resp []byte
	var err error
	if bh, ok := inst.handler.(BufferedHandler); ok {
		resp, err = bh.ServeNetBuf(req, dst[:0])
	} else {
		resp, err = inst.handler.ServeNet(req)
		if resp != nil {
			// Take ownership: the handler may share (or later reuse) its
			// slice, and the caller will recycle what we return.
			resp = append(dst[:0], resp...)
		}
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serving %s: %w", to, err)
	}
	if resp == nil {
		// The handler silently ignored the request; the client observes a
		// timeout, exactly like querying a DPS nameserver for a domain it
		// no longer serves.
		return nil, 0, fmt.Errorf("no answer from %s: %w", to, ErrTimeout)
	}
	rtt := rttFor(fromRegion, inst.region)
	if outcome.corrupt {
		// The response sits in a caller-owned buffer; truncate in place.
		keep := len(resp) / 2
		if keep > 7 {
			keep = 7
		}
		return resp[:keep], rtt, nil
	}
	return resp, rtt, nil
}
