package netsim

import "math"

// Region identifies a coarse geographic location on the simulated Internet.
// Regions drive anycast routing (queries reach the nearest PoP) and the
// latency model. The set mirrors the vantage points and provider PoP
// locations used in the paper's experiments (Fig. 7).
type Region int

// Regions of the simulated Internet.
const (
	RegionUnknown Region = iota
	RegionOregon
	RegionVirginia
	RegionLondon
	RegionFrankfurt
	RegionSingapore
	RegionTokyo
	RegionSydney
	RegionSaoPaulo
	RegionMumbai
	RegionJohannesburg
)

// AllRegions lists every concrete region (excluding RegionUnknown).
func AllRegions() []Region {
	return []Region{
		RegionOregon, RegionVirginia, RegionLondon, RegionFrankfurt,
		RegionSingapore, RegionTokyo, RegionSydney, RegionSaoPaulo,
		RegionMumbai, RegionJohannesburg,
	}
}

// VantageRegions returns the paper's five measurement vantage points:
// Oregon, London, Sydney, Singapore, and Tokyo (Fig. 7).
func VantageRegions() []Region {
	return []Region{
		RegionOregon, RegionLondon, RegionSydney, RegionSingapore, RegionTokyo,
	}
}

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionOregon:
		return "oregon"
	case RegionVirginia:
		return "virginia"
	case RegionLondon:
		return "london"
	case RegionFrankfurt:
		return "frankfurt"
	case RegionSingapore:
		return "singapore"
	case RegionTokyo:
		return "tokyo"
	case RegionSydney:
		return "sydney"
	case RegionSaoPaulo:
		return "sao-paulo"
	case RegionMumbai:
		return "mumbai"
	case RegionJohannesburg:
		return "johannesburg"
	default:
		return "unknown"
	}
}

// regionCoord places each region on an approximate (longitude, latitude)
// plane. Distances on this plane decide anycast PoP selection and baseline
// latency; they only need to be ordinally correct, not geodetically exact.
var regionCoords = map[Region]struct{ x, y float64 }{
	RegionOregon:       {-121, 44},
	RegionVirginia:     {-78, 38},
	RegionLondon:       {0, 51},
	RegionFrankfurt:    {9, 50},
	RegionSingapore:    {104, 1},
	RegionTokyo:        {140, 36},
	RegionSydney:       {151, -34},
	RegionSaoPaulo:     {-47, -24},
	RegionMumbai:       {73, 19},
	RegionJohannesburg: {28, -26},
}

// Distance returns the planar distance between two regions in arbitrary
// units. Unknown regions are treated as maximally distant from everything,
// so they never win nearest-PoP selection.
func Distance(a, b Region) float64 {
	ca, okA := regionCoords[a]
	cb, okB := regionCoords[b]
	if !okA || !okB {
		return math.MaxFloat64
	}
	dx := ca.x - cb.x
	dy := ca.y - cb.y
	return math.Sqrt(dx*dx + dy*dy)
}

// Nearest returns the region in candidates closest to from. Ties break in
// candidate order. It returns RegionUnknown when candidates is empty.
func Nearest(from Region, candidates []Region) Region {
	best := RegionUnknown
	bestDist := math.MaxFloat64
	for _, c := range candidates {
		if d := Distance(from, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}
