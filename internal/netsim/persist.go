package netsim

import (
	"fmt"
	"net/netip"
	"sort"
)

// CountersState is the export form of the fabric's accounting: the global
// send/drop totals plus every endpoint's per-PoP served-query counters.
// Campaign checkpoints carry it so a resumed run's per-endpoint
// accounting — the Fig. 7 anycast load spread — matches the uninterrupted
// run's exactly; queries made before a crash would otherwise vanish from
// counters the resumed process never replays.
type CountersState struct {
	Sends uint64 `json:"sends"`
	Drops uint64 `json:"drops"`
	// LimitDrops is the subset of Drops rejected by response rate
	// limiters. Only the cumulative count is carried: the limiters'
	// in-window budgets reset on their next window anyway, and campaign
	// checkpoints land at round boundaries at least a day apart.
	LimitDrops uint64           `json:"limitDrops,omitempty"`
	Endpoints  []EndpointCounts `json:"endpoints,omitempty"`
}

// EndpointCounts is one endpoint's per-PoP served-query counters.
type EndpointCounts struct {
	Addr    netip.Addr        `json:"addr"`
	Port    uint16            `json:"port"`
	Queries map[Region]uint64 `json:"queries"`
}

// ExportCounters snapshots the fabric's accounting. Endpoints that have
// served no queries are omitted, and the slice is sorted by address then
// port, so fabrics in equal states export equal values.
func (n *Network) ExportCounters() CountersState {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := CountersState{Sends: n.sends, Drops: n.drops, LimitDrops: n.limitDrops}
	for ep, es := range n.endpoints {
		if len(es.queries) == 0 {
			continue
		}
		q := make(map[Region]uint64, len(es.queries))
		for r, c := range es.queries {
			q[r] = c
		}
		st.Endpoints = append(st.Endpoints, EndpointCounts{Addr: ep.Addr, Port: ep.Port, Queries: q})
	}
	sort.Slice(st.Endpoints, func(i, j int) bool {
		a, b := st.Endpoints[i], st.Endpoints[j]
		if c := a.Addr.Compare(b.Addr); c != 0 {
			return c < 0
		}
		return a.Port < b.Port
	})
	return st
}

// RestoreCounters replaces the fabric's accounting with st, as exported
// from the interrupted run's fabric. Counters of endpoints absent from st
// are zeroed: restore means "exactly the exported state", not a merge. An
// endpoint in st with no registered handler here is an error — the two
// worlds differ, and inventing the endpoint would mask that.
func (n *Network) RestoreCounters(st CountersState) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ec := range st.Endpoints {
		if _, ok := n.endpoints[Endpoint{Addr: ec.Addr, Port: ec.Port}]; !ok {
			return fmt.Errorf("netsim: restore counters: no handler registered at %s:%d", ec.Addr, ec.Port)
		}
	}
	n.sends, n.drops, n.limitDrops = st.Sends, st.Drops, st.LimitDrops
	for _, es := range n.endpoints {
		for r := range es.queries {
			delete(es.queries, r)
		}
	}
	for _, ec := range st.Endpoints {
		es := n.endpoints[Endpoint{Addr: ec.Addr, Port: ec.Port}]
		for r, c := range ec.Queries {
			es.queries[r] = c
		}
	}
	return nil
}
