package netsim

import "testing"

// TestRTTPureFunction: the latency model is a pure function of the two
// regions — no jitter, no per-call state. The resolver's EWMA selection
// depends on this: constant per-(vantage, PoP) RTTs make the pass-minimum
// fold insensitive to duplicate queries, which keeps latency-adaptive
// selection inside the serial≡parallel guarantee.
func TestRTTPureFunction(t *testing.T) {
	n := testNet(t)
	for _, from := range AllRegions() {
		for _, pop := range AllRegions() {
			first := n.RTT(from, pop)
			for i := 0; i < 3; i++ {
				if got := n.RTT(from, pop); got != first {
					t.Fatalf("RTT(%v, %v) varied: %v then %v", from, pop, first, got)
				}
			}
			if first < latencyBase {
				t.Errorf("RTT(%v, %v) = %v below base %v", from, pop, first, latencyBase)
			}
		}
	}
}

// TestRTTOrdinal: nearer PoPs answer faster, a co-located PoP pays only
// the base cost, and an unplaced region is charged the unknown-propagation
// penalty. Ordinal correctness is what latency-adaptive selection actually
// consumes; the absolute values are free parameters.
func TestRTTOrdinal(t *testing.T) {
	n := testNet(t)
	if got := n.RTT(RegionOregon, RegionOregon); got != latencyBase {
		t.Errorf("co-located RTT = %v, want base %v", got, latencyBase)
	}
	near := n.RTT(RegionOregon, RegionVirginia)
	far := n.RTT(RegionOregon, RegionLondon)
	if near <= latencyBase {
		t.Errorf("Oregon->Virginia RTT = %v, want above base %v", near, latencyBase)
	}
	if near >= far {
		t.Errorf("Oregon->Virginia RTT %v not below Oregon->London %v", near, far)
	}
	wantUnknown := latencyBase + latencyUnknown
	if got := n.RTT(RegionUnknown, RegionOregon); got != wantUnknown {
		t.Errorf("unknown-vantage RTT = %v, want %v", got, wantUnknown)
	}
	if got := n.RTT(RegionOregon, RegionUnknown); got != wantUnknown {
		t.Errorf("unknown-PoP RTT = %v, want %v", got, wantUnknown)
	}
}

// TestExchangeReportsModelRTT: Exchange charges exactly the model RTT for
// the PoP that served the request, identically on every call, and a failed
// exchange reports zero RTT (the caller learns nothing about a server that
// never answered).
func TestExchangeReportsModelRTT(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("srv"))

	want := n.RTT(RegionOregon, RegionVirginia)
	var buf []byte
	for i := 0; i < 3; i++ {
		resp, rtt, err := n.Exchange(testClient, RegionOregon, testServer, []byte("q"), buf)
		if err != nil {
			t.Fatalf("Exchange: %v", err)
		}
		if rtt != want {
			t.Fatalf("exchange %d RTT = %v, want model RTT %v", i, rtt, want)
		}
		buf = resp[:0]
	}

	n.SetBlackholed(testServer, true)
	if _, rtt, err := n.Exchange(testClient, RegionOregon, testServer, []byte("q"), nil); err == nil {
		t.Fatal("blackholed exchange succeeded")
	} else if rtt != 0 {
		t.Fatalf("failed exchange RTT = %v, want 0", rtt)
	}
}

// TestExchangeAnycastRTT: an anycast endpoint charges the RTT of the PoP
// nearest the vantage — the one that served the request — not a blend.
func TestExchangeAnycastRTT(t *testing.T) {
	n := testNet(t)
	n.RegisterAnycast(testServer, RegionVirginia, echoHandler("us"))
	n.RegisterAnycast(testServer, RegionTokyo, echoHandler("jp"))

	for _, tt := range []struct {
		from Region
		pop  Region
	}{
		{RegionVirginia, RegionVirginia},
		{RegionTokyo, RegionTokyo},
	} {
		_, rtt, err := n.Exchange(testClient, tt.from, testServer, []byte("q"), nil)
		if err != nil {
			t.Fatalf("Exchange from %v: %v", tt.from, err)
		}
		if want := n.RTT(tt.from, tt.pop); rtt != want {
			t.Errorf("from %v: RTT = %v, want %v (PoP %v)", tt.from, rtt, want, tt.pop)
		}
	}
}
