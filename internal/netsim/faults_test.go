package netsim

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/simtime"
)

func faultEndpoint(i int) Endpoint {
	return Endpoint{Addr: netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)}), Port: PortDNS}
}

// TestFaultDecisionsDeterministic: the plan is a pure function of its
// inputs — repeating a decision, in any order, yields the same outcome.
func TestFaultDecisionsDeterministic(t *testing.T) {
	fc := FaultConfig{Seed: 11, LossRate: 0.3, BurstRate: 0.4, FlakyRate: 0.3, CorruptRate: 0.1}.withDefaults()
	now := time.Unix(1_000_000, 0)

	type key struct {
		ep      int
		payload string
	}
	first := make(map[key]faultOutcome)
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			for j := 0; j < 4; j++ {
				k := key{i, fmt.Sprintf("payload-%d", j)}
				got := fc.decide(now, faultEndpoint(i), []byte(k.payload))
				if round == 0 {
					first[k] = got
				} else if got != first[k] {
					t.Fatalf("decision for %+v changed across rounds: %+v vs %+v", k, got, first[k])
				}
			}
		}
	}
}

// TestFaultUniformLossRate: the seeded uniform loss hits roughly its
// configured fraction of distinct payloads.
func TestFaultUniformLossRate(t *testing.T) {
	fc := FaultConfig{Seed: 7, LossRate: 0.2}.withDefaults()
	now := time.Unix(0, 0)
	ep := faultEndpoint(1)
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if fc.decide(now, ep, []byte(fmt.Sprintf("q-%d", i))).drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("uniform drop rate = %.3f, want ≈ 0.2", rate)
	}
}

// TestBurstWindows: bursts are windows of simulation time — inside a burst
// window the drop rate jumps to roughly BurstLoss, outside it stays zero.
func TestBurstWindows(t *testing.T) {
	fc := FaultConfig{Seed: 3, BurstRate: 0.5}.withDefaults()
	ep := faultEndpoint(2)

	burstWindows, quietWindows := 0, 0
	for win := 0; win < 40; win++ {
		now := time.Unix(0, 0).Add(time.Duration(win)*fc.BurstWindow + time.Minute)
		drops := 0
		const n = 400
		for i := 0; i < n; i++ {
			if fc.decide(now, ep, []byte(fmt.Sprintf("q-%d", i))).drop {
				drops++
			}
		}
		switch {
		case drops == 0:
			quietWindows++
		case float64(drops)/n > 0.5:
			burstWindows++
		default:
			t.Fatalf("window %d: drop rate %.3f is neither quiet nor a burst", win, float64(drops)/n)
		}
	}
	if burstWindows == 0 || quietWindows == 0 {
		t.Fatalf("bursts %d, quiet %d: want both kinds of window", burstWindows, quietWindows)
	}
}

// TestFlakyEndpoints: only the configured fraction of endpoints is flaky,
// and a flaky endpoint alternates between clean and lossy windows while a
// healthy endpoint never drops.
func TestFlakyEndpoints(t *testing.T) {
	fc := FaultConfig{Seed: 5, FlakyRate: 0.3}.withDefaults()

	flaky, healthy := -1, -1
	for i := 0; i < 100 && (flaky < 0 || healthy < 0); i++ {
		if fc.FlakyEndpoint(faultEndpoint(i)) {
			if flaky < 0 {
				flaky = i
			}
		} else if healthy < 0 {
			healthy = i
		}
	}
	if flaky < 0 || healthy < 0 {
		t.Fatalf("flaky=%d healthy=%d: want one of each among 100 endpoints", flaky, healthy)
	}

	badWindows, cleanWindows := 0, 0
	for win := 0; win < 40; win++ {
		now := time.Unix(0, 0).Add(time.Duration(win)*fc.FlakyWindow + time.Minute)
		drops := 0
		const n = 200
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("q-%d", i))
			if fc.decide(now, faultEndpoint(healthy), payload).drop {
				t.Fatalf("healthy endpoint dropped a send in window %d", win)
			}
			if fc.decide(now, faultEndpoint(flaky), payload).drop {
				drops++
			}
		}
		if float64(drops)/n > 0.5 {
			badWindows++
		} else if drops == 0 {
			cleanWindows++
		}
	}
	if badWindows == 0 || cleanWindows == 0 {
		t.Fatalf("bad %d, clean %d: flaky endpoint should alternate", badWindows, cleanWindows)
	}
}

// TestCorruptRepliesTruncated: corrupted deliveries arrive truncated below
// a DNS header, and the network counts them.
func TestCorruptRepliesTruncated(t *testing.T) {
	n := New(Config{Clock: simtime.NewSimulated()})
	n.SetFaults(FaultConfig{Seed: 2, CorruptRate: 1})
	ep := faultEndpoint(3)
	n.Register(ep, RegionVirginia, HandlerFunc(func(req Request) ([]byte, error) {
		return []byte("a full-size reply that would decode"), nil
	}))

	resp, err := n.Send(testClient, RegionOregon, ep, []byte("query"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if len(resp) >= 12 {
		t.Fatalf("corrupt reply is %d bytes, want < 12 (below a DNS header)", len(resp))
	}
	if got := n.FaultStats().Corrupted; got != 1 {
		t.Fatalf("Corrupted = %d, want 1", got)
	}
}

// TestFaultDropsCountedByCause: injected drops surface as ErrTimeout and
// are attributed to their cause in FaultStats.
func TestFaultDropsCountedByCause(t *testing.T) {
	n := New(Config{Clock: simtime.NewSimulated()})
	n.SetFaults(FaultConfig{Seed: 9, LossRate: 0.5})
	ep := faultEndpoint(4)
	n.Register(ep, RegionVirginia, echoHandler("srv"))

	timeouts := 0
	for i := 0; i < 200; i++ {
		_, err := n.Send(testClient, RegionOregon, ep, []byte(fmt.Sprintf("q-%d", i)))
		if err != nil {
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Send: %v, want ErrTimeout", err)
			}
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatal("no injected drops at LossRate 0.5")
	}
	if got := n.FaultStats().UniformDrops; got != uint64(timeouts) {
		t.Fatalf("UniformDrops = %d, want %d", got, timeouts)
	}
}

// TestSetFaultsZeroDisables: installing a zero config removes the plan.
func TestSetFaultsZeroDisables(t *testing.T) {
	n := New(Config{Clock: simtime.NewSimulated()})
	n.SetFaults(FaultConfig{Seed: 9, LossRate: 0.9})
	n.SetFaults(FaultConfig{})
	ep := faultEndpoint(5)
	n.Register(ep, RegionVirginia, echoHandler("srv"))
	for i := 0; i < 100; i++ {
		if _, err := n.Send(testClient, RegionOregon, ep, []byte(fmt.Sprintf("q-%d", i))); err != nil {
			t.Fatalf("Send with faults disabled: %v", err)
		}
	}
}

// TestRetryRerollsFaultDecision: a different payload (as a retry with a
// fresh query ID produces) re-rolls the drop decision — some payload that
// was dropped has a sibling that is delivered.
func TestRetryRerollsFaultDecision(t *testing.T) {
	fc := FaultConfig{Seed: 13, LossRate: 0.3}.withDefaults()
	now := time.Unix(0, 0)
	ep := faultEndpoint(6)
	for i := 0; i < 200; i++ {
		if fc.decide(now, ep, []byte(fmt.Sprintf("q-%d-attempt-1", i))).drop &&
			!fc.decide(now, ep, []byte(fmt.Sprintf("q-%d-attempt-2", i))).drop {
			return
		}
	}
	t.Fatal("no dropped first attempt had a delivered second attempt in 200 tries")
}
