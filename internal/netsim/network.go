// Package netsim implements the message fabric of the simulated Internet.
//
// The fabric is a request/response (UDP-RPC-like) transport keyed by
// (IP address, port). Services — authoritative nameservers, web origins,
// CDN edges — register Handlers at endpoints; clients Send opaque payloads
// and receive opaque replies. Anycast endpoints register one handler per
// point of presence (PoP) and the fabric routes each request to the PoP
// nearest to the sender's region, mirroring how Cloudflare's anycast DNS
// spreads load across PoPs (paper §V-A.1, Fig. 7).
//
// The fabric also provides failure injection — legacy shared-RNG packet
// loss, per-endpoint blackholing, and the deterministic FaultConfig plan
// (seeded uniform loss, burst windows, per-endpoint flakiness, reply
// corruption) — plus per-endpoint accounting used by the Fig. 7
// experiment.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// Well-known ports on the simulated Internet.
const (
	PortDNS  = 53
	PortHTTP = 80
)

// Errors returned by Network.Send.
var (
	// ErrUnreachable indicates no handler is registered at the endpoint.
	ErrUnreachable = errors.New("netsim: destination unreachable")
	// ErrTimeout indicates the request or response was dropped (injected
	// loss or blackholed endpoint).
	ErrTimeout = errors.New("netsim: request timed out")
)

// Endpoint identifies a service attachment point.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Request is what a Handler receives.
type Request struct {
	// From is the sender's address (may be a vantage point or resolver).
	From netip.Addr
	// FromRegion is the sender's region, used for anycast routing and
	// available to handlers (e.g., for geo-aware answers).
	FromRegion Region
	// To is the destination address the sender targeted. For anycast
	// endpoints every PoP sees the same To.
	To Endpoint
	// PoPRegion is the region of the PoP that received the request. For
	// unicast endpoints it is the handler's registration region.
	PoPRegion Region
	// Payload is the opaque request body (e.g., a DNS wire-format message).
	Payload []byte
	// Time is the fabric's simulation time when the request was delivered.
	Time time.Time
}

// Handler processes a request and returns a response payload.
//
// Returning a nil payload with a nil error models a server that silently
// ignores the query (the paper observes Cloudflare nameservers ignoring
// queries for unknown zones); the fabric converts it to ErrTimeout on the
// client side.
type Handler interface {
	ServeNet(req Request) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req Request) ([]byte, error)

// ServeNet implements Handler.
func (f HandlerFunc) ServeNet(req Request) ([]byte, error) { return f(req) }

var _ Handler = HandlerFunc(nil)

// clockface is the minimal clock dependency of the fabric.
type clockface interface{ Now() time.Time }

// popInstance is one registered instance behind an endpoint.
type popInstance struct {
	region  Region
	handler Handler
}

// endpointState holds all instances and per-endpoint failure state.
type endpointState struct {
	instances  []popInstance
	blackholed bool
	limit      *limitState       // response rate limiter, nil when none
	queries    map[Region]uint64 // per-PoP delivered query counts
}

// Config parametrizes a Network.
type Config struct {
	// Clock supplies request timestamps. Required.
	Clock clockface
	// LossRate is the probability in [0,1) that any single request/response
	// exchange is dropped. Zero disables random loss.
	LossRate float64
	// Rand drives loss decisions. Required when LossRate > 0.
	Rand *rand.Rand
}

// Network is the simulated message fabric. It is safe for concurrent use.
type Network struct {
	clock    clockface
	lossRate float64

	mu         sync.Mutex
	rng        *rand.Rand
	endpoints  map[Endpoint]*endpointState
	sends      uint64
	drops      uint64
	limitDrops uint64
	faults     FaultConfig
	faultStats FaultStats
}

// New creates a Network. It panics if cfg.Clock is nil or if LossRate > 0
// without a Rand, because both are programming errors in the composition
// root rather than runtime conditions.
func New(cfg Config) *Network {
	if cfg.Clock == nil {
		panic("netsim: Config.Clock is required")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		if cfg.LossRate != 0 {
			panic(fmt.Sprintf("netsim: LossRate %v outside [0,1)", cfg.LossRate))
		}
	}
	if cfg.LossRate > 0 && cfg.Rand == nil {
		panic("netsim: Config.Rand is required when LossRate > 0")
	}
	return &Network{
		clock:     cfg.Clock,
		lossRate:  cfg.LossRate,
		rng:       cfg.Rand,
		endpoints: make(map[Endpoint]*endpointState),
	}
}

// Register attaches a unicast handler at ep located in region. Registering
// a second unicast handler at the same endpoint replaces the first (the
// address was reassigned), mirroring real IP churn.
func (n *Network) Register(ep Endpoint, region Region, h Handler) {
	if h == nil {
		panic("netsim: Register with nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.ensureEndpointLocked(ep)
	st.instances = []popInstance{{region: region, handler: h}}
}

// RegisterAnycast adds an anycast PoP instance for ep in region. Multiple
// PoPs may share the endpoint; requests route to the nearest PoP. Adding a
// PoP in a region that already has one replaces that PoP's handler.
func (n *Network) RegisterAnycast(ep Endpoint, region Region, h Handler) {
	if h == nil {
		panic("netsim: RegisterAnycast with nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.ensureEndpointLocked(ep)
	for i := range st.instances {
		if st.instances[i].region == region {
			st.instances[i].handler = h
			return
		}
	}
	st.instances = append(st.instances, popInstance{region: region, handler: h})
}

// Deregister removes every handler at ep. Subsequent sends fail with
// ErrUnreachable. Accounting for the endpoint is retained.
func (n *Network) Deregister(ep Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.endpoints[ep]; ok {
		st.instances = nil
	}
}

// SetBlackholed marks ep as silently dropping all traffic (or restores it).
// Blackholed endpoints model hosts knocked offline, e.g. by a DDoS flood.
func (n *Network) SetBlackholed(ep Endpoint, blackholed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.ensureEndpointLocked(ep)
	st.blackholed = blackholed
}

func (n *Network) ensureEndpointLocked(ep Endpoint) *endpointState {
	st, ok := n.endpoints[ep]
	if !ok {
		st = &endpointState{queries: make(map[Region]uint64)}
		n.endpoints[ep] = st
	}
	return st
}

// Send delivers payload from (from, fromRegion) to the endpoint and returns
// the handler's response. Anycast endpoints route to the nearest PoP.
func (n *Network) Send(from netip.Addr, fromRegion Region, to Endpoint, payload []byte) ([]byte, error) {
	resp, _, err := n.Exchange(from, fromRegion, to, payload, nil)
	return resp, err
}

// Reachable reports whether at least one handler is registered at ep and it
// is not blackholed.
func (n *Network) Reachable(ep Endpoint) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.endpoints[ep]
	return ok && len(st.instances) > 0 && !st.blackholed
}

// QueryCount returns how many requests the endpoint's PoP in region has
// served. For unicast endpoints, use the registration region.
func (n *Network) QueryCount(ep Endpoint, region Region) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.endpoints[ep]
	if !ok {
		return 0
	}
	return st.queries[region]
}

// QueryCounts returns a copy of the per-PoP query counters for ep.
func (n *Network) QueryCounts(ep Endpoint) map[Region]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.endpoints[ep]
	if !ok {
		return nil
	}
	out := make(map[Region]uint64, len(st.queries))
	for r, c := range st.queries {
		out[r] = c
	}
	return out
}

// Stats reports fabric-wide counters.
func (n *Network) Stats() (sends, drops uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sends, n.drops
}
