package netsim

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/simtime"
)

func limitTestNet(t *testing.T) (*Network, *simtime.Simulated, Endpoint) {
	t.Helper()
	clock := simtime.NewSimulated()
	n := New(Config{Clock: clock})
	ep := Endpoint{Addr: netip.MustParseAddr("10.0.0.1"), Port: PortDNS}
	n.Register(ep, RegionOregon, HandlerFunc(func(req Request) ([]byte, error) {
		return []byte("ok"), nil
	}))
	return n, clock, ep
}

func TestLimitPerSource(t *testing.T) {
	n, _, ep := limitTestNet(t)
	n.SetLimit(ep, LimitConfig{PerSource: 3})

	alice := netip.MustParseAddr("10.9.0.1")
	bob := netip.MustParseAddr("10.9.0.2")
	for i := 0; i < 3; i++ {
		if _, err := n.Send(alice, RegionOregon, ep, []byte("q")); err != nil {
			t.Fatalf("send %d within budget: %v", i, err)
		}
	}
	if _, err := n.Send(alice, RegionOregon, ep, []byte("q")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("over-budget send: got %v, want ErrTimeout", err)
	}
	// A different source has its own budget.
	if _, err := n.Send(bob, RegionOregon, ep, []byte("q")); err != nil {
		t.Fatalf("other source within budget: %v", err)
	}
	if got := n.LimitDrops(); got != 1 {
		t.Fatalf("LimitDrops = %d, want 1", got)
	}
}

func TestLimitCapacity(t *testing.T) {
	n, _, ep := limitTestNet(t)
	n.SetLimit(ep, LimitConfig{Capacity: 5})

	admitted, dropped := 0, 0
	for i := 0; i < 8; i++ {
		src := netip.MustParseAddr("10.9.0.1")
		if i%2 == 1 {
			src = netip.MustParseAddr("10.9.0.2")
		}
		if _, err := n.Send(src, RegionOregon, ep, []byte("q")); err != nil {
			dropped++
		} else {
			admitted++
		}
	}
	if admitted != 5 || dropped != 3 {
		t.Fatalf("admitted/dropped = %d/%d, want 5/3", admitted, dropped)
	}
}

func TestLimitWindowReset(t *testing.T) {
	n, clock, ep := limitTestNet(t)
	n.SetLimit(ep, LimitConfig{Window: time.Hour, PerSource: 1, Capacity: 1})

	src := netip.MustParseAddr("10.9.0.1")
	if _, err := n.Send(src, RegionOregon, ep, []byte("q")); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if _, err := n.Send(src, RegionOregon, ep, []byte("q")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted window: got %v, want ErrTimeout", err)
	}
	// The next window refills both budgets.
	clock.AdvanceDays(1)
	if _, err := n.Send(src, RegionOregon, ep, []byte("q")); err != nil {
		t.Fatalf("fresh window: %v", err)
	}
}

func TestLimitRemovalAndUnlimitedEndpoints(t *testing.T) {
	n, _, ep := limitTestNet(t)
	other := Endpoint{Addr: netip.MustParseAddr("10.0.0.2"), Port: PortDNS}
	n.Register(other, RegionOregon, HandlerFunc(func(req Request) ([]byte, error) {
		return []byte("ok"), nil
	}))
	n.SetLimit(ep, LimitConfig{PerSource: 1})

	src := netip.MustParseAddr("10.9.0.1")
	if _, err := n.Send(src, RegionOregon, ep, []byte("q")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	// The unlimited endpoint never throttles.
	for i := 0; i < 10; i++ {
		if _, err := n.Send(src, RegionOregon, other, []byte("q")); err != nil {
			t.Fatalf("unlimited endpoint send %d: %v", i, err)
		}
	}
	// Removing the limiter restores the endpoint.
	n.SetLimit(ep, LimitConfig{})
	if _, err := n.Send(src, RegionOregon, ep, []byte("q")); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	if got := n.Limit(ep); got.Enabled() {
		t.Fatalf("Limit after removal = %+v, want disabled", got)
	}
}

func TestLimitConfigDefaults(t *testing.T) {
	lc := LimitConfig{PerSource: 2}.withDefaults()
	if lc.Window != time.Hour {
		t.Fatalf("default window = %v, want 1h", lc.Window)
	}
	if (LimitConfig{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
}
