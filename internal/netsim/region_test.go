package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegionString(t *testing.T) {
	for _, r := range AllRegions() {
		if r.String() == "unknown" {
			t.Errorf("region %d has no name", int(r))
		}
	}
	if RegionUnknown.String() != "unknown" {
		t.Errorf("RegionUnknown.String() = %q", RegionUnknown.String())
	}
	if Region(999).String() != "unknown" {
		t.Errorf("out-of-range region String() = %q", Region(999).String())
	}
}

func TestDistanceSymmetric(t *testing.T) {
	regions := AllRegions()
	for _, a := range regions {
		for _, b := range regions {
			if da, db := Distance(a, b), Distance(b, a); da != db {
				t.Errorf("Distance(%v,%v)=%v != Distance(%v,%v)=%v", a, b, da, b, a, db)
			}
		}
	}
}

func TestDistanceZeroToSelf(t *testing.T) {
	for _, r := range AllRegions() {
		if d := Distance(r, r); d != 0 {
			t.Errorf("Distance(%v,%v) = %v, want 0", r, r, d)
		}
	}
}

func TestDistanceUnknownIsMax(t *testing.T) {
	if d := Distance(RegionUnknown, RegionOregon); d != math.MaxFloat64 {
		t.Errorf("Distance(unknown, oregon) = %v, want MaxFloat64", d)
	}
}

func TestNearest(t *testing.T) {
	tests := []struct {
		name       string
		from       Region
		candidates []Region
		want       Region
	}{
		{"self present", RegionTokyo, AllRegions(), RegionTokyo},
		{"virginia to oregon over london", RegionVirginia, []Region{RegionOregon, RegionLondon}, RegionOregon},
		{"frankfurt to london", RegionFrankfurt, []Region{RegionOregon, RegionLondon, RegionTokyo}, RegionLondon},
		{"empty candidates", RegionTokyo, nil, RegionUnknown},
		{"mumbai to singapore", RegionMumbai, []Region{RegionSingapore, RegionLondon, RegionOregon}, RegionSingapore},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Nearest(tt.from, tt.candidates); got != tt.want {
				t.Fatalf("Nearest(%v) = %v, want %v", tt.from, got, tt.want)
			}
		})
	}
}

func TestVantageRegionsAreFive(t *testing.T) {
	vr := VantageRegions()
	if len(vr) != 5 {
		t.Fatalf("len(VantageRegions()) = %d, want 5 (paper Fig. 7)", len(vr))
	}
	seen := make(map[Region]bool)
	for _, r := range vr {
		if seen[r] {
			t.Errorf("duplicate vantage region %v", r)
		}
		seen[r] = true
	}
}

// Property: Nearest always returns a candidate minimizing Distance.
func TestNearestMinimizesDistanceQuick(t *testing.T) {
	all := AllRegions()
	f := func(fromIdx uint8, mask uint16) bool {
		from := all[int(fromIdx)%len(all)]
		var candidates []Region
		for i, r := range all {
			if mask&(1<<i) != 0 {
				candidates = append(candidates, r)
			}
		}
		if len(candidates) == 0 {
			return Nearest(from, candidates) == RegionUnknown
		}
		got := Nearest(from, candidates)
		best := Distance(from, got)
		for _, c := range candidates {
			if Distance(from, c) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
