package netsim

import (
	"hash/fnv"
	"time"
)

// FaultConfig describes the deterministic fault-injection plan of a
// Network, richer than the legacy uniform Config.LossRate: seeded uniform
// loss, fabric-wide burst-loss windows, per-endpoint flakiness windows,
// and reply corruption.
//
// Every decision is a pure function of (Seed, destination endpoint,
// payload bytes, simulation-time window) — no shared RNG state — so the
// injected fault pattern is independent of the order concurrent senders
// hit the fabric. Two runs that issue the same set of (endpoint, payload)
// sends observe the same set of outcomes whether they run serially or
// over a worker pool; this is what lets the retry layer above keep the
// ParallelMatchesSerial guarantee even on a lossy fabric. (The legacy
// Config.LossRate keeps its shared-RNG, arrival-order semantics.)
//
// A retry with a fresh query ID changes the payload and therefore re-rolls
// every decision, which is exactly how real retries escape real loss.
type FaultConfig struct {
	// Seed drives every decision. Two configs differing only in Seed
	// produce unrelated fault patterns.
	Seed int64

	// LossRate is the probability in [0,1) that a given (endpoint,
	// payload) send is dropped. Unlike Config.LossRate the decision is
	// deterministic per send content, not sampled in arrival order.
	LossRate float64

	// BurstRate is the probability that any given BurstWindow-sized slice
	// of simulation time is a loss burst; during a burst every send is
	// additionally dropped with probability BurstLoss. Bursts model the
	// short outages and congestion events a weeks-long measurement rides
	// through. Because the simulated clock does not advance while a
	// measurement pass runs, a burst covers whole passes; BurstLoss should
	// therefore stay below 1 so retries (fresh payloads) can escape it.
	BurstRate   float64
	BurstWindow time.Duration // default 6h when BurstRate > 0
	BurstLoss   float64       // default 0.75 when BurstRate > 0

	// FlakyRate is the fraction of endpoints that are flaky. A flaky
	// endpoint alternates (pseudo-randomly, per FlakyWindow slice of sim
	// time) between healthy windows and bad windows during which its sends
	// are dropped with probability FlakyLoss. This is the per-endpoint
	// degradation that the resolver's health tracker exists to sideline.
	FlakyRate   float64
	FlakyLoss   float64       // default 0.9 when FlakyRate > 0
	FlakyWindow time.Duration // default 12h when FlakyRate > 0

	// CorruptRate is the probability that a delivered reply is corrupted
	// in flight: it arrives truncated below a full DNS header, so the
	// client observes a wire-decode failure. Decode failure is guaranteed
	// (rather than, say, flipping one payload byte) so the fault is always
	// distinguishable from a validation failure: corrupt replies are
	// retryable, ID/question mismatches are not.
	CorruptRate float64
}

// Enabled reports whether the config injects anything at all.
func (fc FaultConfig) Enabled() bool {
	return fc.LossRate > 0 || fc.BurstRate > 0 || fc.FlakyRate > 0 || fc.CorruptRate > 0
}

// withDefaults fills the window/intensity defaults.
func (fc FaultConfig) withDefaults() FaultConfig {
	if fc.BurstRate > 0 {
		if fc.BurstWindow <= 0 {
			fc.BurstWindow = 6 * time.Hour
		}
		if fc.BurstLoss <= 0 {
			fc.BurstLoss = 0.75
		}
	}
	if fc.FlakyRate > 0 {
		if fc.FlakyLoss <= 0 {
			fc.FlakyLoss = 0.9
		}
		if fc.FlakyWindow <= 0 {
			fc.FlakyWindow = 12 * time.Hour
		}
	}
	return fc
}

// FaultStats counts injected faults by cause.
type FaultStats struct {
	UniformDrops uint64
	BurstDrops   uint64
	FlakyDrops   uint64
	Corrupted    uint64
}

// Salts keep the per-cause hash streams independent: reusing one stream
// for two decisions would correlate them (e.g. every burst-dropped send
// would also be uniform-dropped at the same rate threshold).
const (
	saltUniform = iota + 1
	saltBurstWindow
	saltBurstDrop
	saltFlakyEndpoint
	saltFlakyWindow
	saltFlakyDrop
	saltCorrupt
)

// faultHash folds the seed, a salt, the endpoint, an extra discriminator
// (e.g. a window index) and the payload into a 64-bit FNV-1a hash, then
// finalizes it with an avalanche mix. The mix matters: raw FNV-1a spreads
// a trailing-byte difference only into the low ~40 bits, while unit()
// keeps the high bits — without finalization, two payloads differing only
// near the end (a DNS query's qtype, say) would get correlated fault
// decisions.
func faultHash(seed int64, salt uint64, ep Endpoint, extra uint64, payload []byte) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	put(salt)
	if ep.Addr.IsValid() {
		b := ep.Addr.As4()
		h.Write(b[:])
	}
	put(uint64(ep.Port))
	put(extra)
	h.Write(payload)
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: every input bit avalanches into every
// output bit.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// faultOutcome is the decision for one send.
type faultOutcome struct {
	drop    bool
	cause   int // salt of the cause when drop
	corrupt bool
}

// decide evaluates the plan for one send. Pure function; callers hold no
// lock while computing it.
func (fc FaultConfig) decide(now time.Time, to Endpoint, payload []byte) faultOutcome {
	if fc.LossRate > 0 && unit(faultHash(fc.Seed, saltUniform, to, 0, payload)) < fc.LossRate {
		return faultOutcome{drop: true, cause: saltUniform}
	}
	if fc.BurstRate > 0 {
		win := uint64(now.UnixNano() / int64(fc.BurstWindow))
		if unit(faultHash(fc.Seed, saltBurstWindow, Endpoint{}, win, nil)) < fc.BurstRate &&
			unit(faultHash(fc.Seed, saltBurstDrop, to, win, payload)) < fc.BurstLoss {
			return faultOutcome{drop: true, cause: saltBurstDrop}
		}
	}
	if fc.FlakyRate > 0 && unit(faultHash(fc.Seed, saltFlakyEndpoint, to, 0, nil)) < fc.FlakyRate {
		win := uint64(now.UnixNano() / int64(fc.FlakyWindow))
		if unit(faultHash(fc.Seed, saltFlakyWindow, to, win, nil)) < 0.5 &&
			unit(faultHash(fc.Seed, saltFlakyDrop, to, win, payload)) < fc.FlakyLoss {
			return faultOutcome{drop: true, cause: saltFlakyDrop}
		}
	}
	if fc.CorruptRate > 0 && unit(faultHash(fc.Seed, saltCorrupt, to, 0, payload)) < fc.CorruptRate {
		return faultOutcome{corrupt: true}
	}
	return faultOutcome{}
}

// FlakyEndpoint reports whether the plan marks ep flaky (useful for tests
// and health-summary displays).
func (fc FaultConfig) FlakyEndpoint(ep Endpoint) bool {
	return fc.FlakyRate > 0 && unit(faultHash(fc.Seed, saltFlakyEndpoint, ep, 0, nil)) < fc.FlakyRate
}

// SetFaults installs (or, with a zero config, removes) a deterministic
// fault plan. Safe to call between measurement passes; the plan applies
// to every subsequent Send.
func (n *Network) SetFaults(fc FaultConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = fc.withDefaults()
}

// Faults returns the active fault plan.
func (n *Network) Faults() FaultConfig {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults
}

// FaultStats returns the per-cause injected-fault counters.
func (n *Network) FaultStats() FaultStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faultStats
}
