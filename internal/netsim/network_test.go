package netsim

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"rrdps/internal/simtime"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	return New(Config{Clock: simtime.NewSimulated()})
}

func echoHandler(tag string) Handler {
	return HandlerFunc(func(req Request) ([]byte, error) {
		return append([]byte(tag+":"), req.Payload...), nil
	})
}

var (
	testClient = netip.MustParseAddr("198.51.100.7")
	testServer = Endpoint{Addr: netip.MustParseAddr("203.0.113.10"), Port: PortDNS}
)

func TestSendUnicast(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	got, err := n.Send(testClient, RegionOregon, testServer, []byte("hello"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if string(got) != "srv:hello" {
		t.Fatalf("response = %q, want %q", got, "srv:hello")
	}
}

func TestSendUnreachable(t *testing.T) {
	n := testNet(t)
	_, err := n.Send(testClient, RegionOregon, testServer, []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestDeregisterMakesUnreachable(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	n.Deregister(testServer)
	_, err := n.Send(testClient, RegionOregon, testServer, []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestBlackholedEndpointTimesOut(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	n.SetBlackholed(testServer, true)
	if _, err := n.Send(testClient, RegionOregon, testServer, []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	n.SetBlackholed(testServer, false)
	if _, err := n.Send(testClient, RegionOregon, testServer, []byte("x")); err != nil {
		t.Fatalf("after restore, Send: %v", err)
	}
}

func TestNilResponseIsTimeout(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, HandlerFunc(func(Request) ([]byte, error) {
		return nil, nil // silently ignore, like a DPS NS for an unknown zone
	}))
	_, err := n.Send(testClient, RegionOregon, testServer, []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestAnycastRoutesToNearestPoP(t *testing.T) {
	n := testNet(t)
	for _, r := range []Region{RegionOregon, RegionLondon, RegionTokyo} {
		region := r
		n.RegisterAnycast(testServer, region, HandlerFunc(func(req Request) ([]byte, error) {
			return []byte(region.String()), nil
		}))
	}
	tests := []struct {
		from Region
		want string
	}{
		{RegionOregon, "oregon"},
		{RegionVirginia, "oregon"},
		{RegionFrankfurt, "london"},
		{RegionSydney, "tokyo"},
		{RegionSingapore, "tokyo"},
	}
	for _, tt := range tests {
		got, err := n.Send(testClient, tt.from, testServer, nil)
		if err != nil {
			t.Fatalf("Send from %v: %v", tt.from, err)
		}
		if string(got) != tt.want {
			t.Errorf("from %v routed to %q, want %q", tt.from, got, tt.want)
		}
	}
}

func TestAnycastPerPoPAccounting(t *testing.T) {
	n := testNet(t)
	for _, r := range []Region{RegionOregon, RegionLondon} {
		n.RegisterAnycast(testServer, r, echoHandler(r.String()))
	}
	for i := 0; i < 3; i++ {
		if _, err := n.Send(testClient, RegionOregon, testServer, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Send(testClient, RegionFrankfurt, testServer, nil); err != nil {
		t.Fatal(err)
	}
	if got := n.QueryCount(testServer, RegionOregon); got != 3 {
		t.Errorf("oregon PoP count = %d, want 3", got)
	}
	if got := n.QueryCount(testServer, RegionLondon); got != 1 {
		t.Errorf("london PoP count = %d, want 1", got)
	}
	counts := n.QueryCounts(testServer)
	if len(counts) != 2 || counts[RegionOregon] != 3 || counts[RegionLondon] != 1 {
		t.Errorf("QueryCounts = %v", counts)
	}
}

func TestRegisterReplacesUnicastHandler(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("old"))
	n.Register(testServer, RegionVirginia, echoHandler("new"))
	got, err := n.Send(testClient, RegionOregon, testServer, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new:p" {
		t.Fatalf("response = %q, want from replacement handler", got)
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	n := New(Config{
		Clock:    simtime.NewSimulated(),
		LossRate: 0.999999999,
		Rand:     rand.New(rand.NewSource(1)),
	})
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	if _, err := n.Send(testClient, RegionOregon, testServer, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	sends, drops := n.Stats()
	if sends != 1 || drops != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", sends, drops)
	}
}

func TestReachable(t *testing.T) {
	n := testNet(t)
	if n.Reachable(testServer) {
		t.Fatal("unregistered endpoint reported reachable")
	}
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	if !n.Reachable(testServer) {
		t.Fatal("registered endpoint reported unreachable")
	}
	n.SetBlackholed(testServer, true)
	if n.Reachable(testServer) {
		t.Fatal("blackholed endpoint reported reachable")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := testNet(t)
	n.Register(testServer, RegionVirginia, echoHandler("srv"))
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Send(testClient, RegionOregon, testServer, []byte("x")); err != nil {
				t.Errorf("Send: %v", err)
			}
		}()
	}
	wg.Wait()
	sends, drops := n.Stats()
	if sends != 64 || drops != 0 {
		t.Fatalf("stats = (%d, %d), want (64, 0)", sends, drops)
	}
}

func TestNewPanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without clock did not panic")
		}
	}()
	New(Config{})
}

func TestNewPanicsOnLossWithoutRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with loss but no rand did not panic")
		}
	}()
	New(Config{Clock: simtime.NewSimulated(), LossRate: 0.1})
}
