package netsim

import (
	"net/netip"
	"time"
)

// LimitConfig models response rate limiting at an endpoint — the layered
// defense Rizvi et al. describe for the root DNS servers, here installed
// on DPS provider nameservers. Two budgets apply per Window-sized slice
// of simulation time:
//
//   - PerSource caps how many sends from one source address the endpoint
//     admits per window (classic per-source RRL: a scanner hammering one
//     nameserver gets throttled, ordinary resolvers stay under budget).
//   - Capacity caps total admitted sends per window across all sources
//     (resource exhaustion: a reflection flood eats the budget and
//     legitimate queries start timing out).
//
// A rejected send behaves exactly like injected loss: the client observes
// ErrTimeout, which is what real rate limiters do (drop, never answer).
//
// Determinism caveat: unlike FaultConfig, whose decisions are pure
// functions of the send's content, a limiter necessarily counts arrivals —
// which specific sends are admitted therefore depends on arrival order
// when concurrent senders share a window. Aggregate counts (admitted,
// dropped) are order-independent; the identity of the admitted set is
// not. Campaigns that want exact reproducibility under rate limits
// should run their measurement loops serially (Workers 1), which the
// shipped rate-limit scenarios do.
type LimitConfig struct {
	// Window is the counting window of simulation time. Defaults to one
	// hour when either budget is set. The simulated clock is frozen
	// while a measurement pass runs, so one pass always falls inside a
	// single window — retries cannot escape an exhausted budget, exactly
	// like retrying against a real rate limiter within its refill period.
	Window time.Duration
	// PerSource is the per-(source address, window) admission budget.
	// Zero means unlimited.
	PerSource int
	// Capacity is the aggregate per-window admission budget across all
	// sources. Zero means unlimited.
	Capacity int
}

// Enabled reports whether the config limits anything at all.
func (lc LimitConfig) Enabled() bool {
	return lc.PerSource > 0 || lc.Capacity > 0
}

// withDefaults fills the window default.
func (lc LimitConfig) withDefaults() LimitConfig {
	if lc.Enabled() && lc.Window <= 0 {
		lc.Window = time.Hour
	}
	return lc
}

// limitState is one endpoint's live limiter: the config plus the counters
// of the current window. Counters reset lazily when the window index
// advances, so an idle endpoint costs nothing.
type limitState struct {
	cfg       LimitConfig
	window    int64 // window index the counters belong to
	total     int
	perSource map[netip.Addr]int
}

// admit decides one send, counting it when admitted. Caller holds n.mu.
func (ls *limitState) admit(from netip.Addr, now time.Time) bool {
	win := now.UnixNano() / int64(ls.cfg.Window)
	if win != ls.window {
		ls.window = win
		ls.total = 0
		if len(ls.perSource) > 0 {
			ls.perSource = make(map[netip.Addr]int)
		}
	}
	if ls.cfg.Capacity > 0 && ls.total >= ls.cfg.Capacity {
		return false
	}
	if ls.cfg.PerSource > 0 {
		if ls.perSource == nil {
			ls.perSource = make(map[netip.Addr]int)
		}
		if ls.perSource[from] >= ls.cfg.PerSource {
			return false
		}
		ls.perSource[from]++
	}
	ls.total++
	return true
}

// SetLimit installs (or, with a zero config, removes) a rate limiter at
// ep. The limiter applies to every subsequent send to the endpoint,
// anycast or unicast; counters start fresh.
func (n *Network) SetLimit(ep Endpoint, cfg LimitConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.ensureEndpointLocked(ep)
	if !cfg.Enabled() {
		st.limit = nil
		return
	}
	st.limit = &limitState{cfg: cfg.withDefaults(), window: -1}
}

// Limit returns the limiter config installed at ep (zero when none).
func (n *Network) Limit(ep Endpoint) LimitConfig {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.endpoints[ep]; ok && st.limit != nil {
		return st.limit.cfg
	}
	return LimitConfig{}
}

// LimitDrops returns how many sends rate limiters have rejected,
// fabric-wide.
func (n *Network) LimitDrops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.limitDrops
}
