// Package dps models DDoS Protection Service providers: the Table II
// provider profiles, customer provisioning over the three DNS-based
// rerouting mechanisms, edge fleets, anycast nameserver fleets, and — the
// paper's focus — the termination policies that decide whether a provider
// leaks origin IP addresses after a customer leaves (residual resolution).
package dps

import (
	"fmt"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/ipspace"
)

// Rerouting identifies a DNS-based request-rerouting mechanism (§II-A.2).
type Rerouting int

// Rerouting mechanisms.
const (
	// ReroutingA: the provider assigns an edge IP; the customer points its
	// own A record at it. The provider's nameservers are never involved,
	// so there is no residual-resolution risk (§III-B).
	ReroutingA Rerouting = iota + 1
	// ReroutingCNAME: the provider assigns a canonical name in its own
	// infrastructure zone; the customer aliases to it.
	ReroutingCNAME
	// ReroutingNS: the provider hosts the customer's whole zone on its
	// nameservers (NS hosting).
	ReroutingNS
)

// String implements fmt.Stringer.
func (r Rerouting) String() string {
	switch r {
	case ReroutingA:
		return "A"
	case ReroutingCNAME:
		return "CNAME"
	case ReroutingNS:
		return "NS"
	default:
		return fmt.Sprintf("rerouting%d", int(r))
	}
}

// TerminationPolicy is what a provider's nameservers do after a customer
// explicitly terminates service (§VI-A).
type TerminationPolicy int

// Termination policies.
const (
	// PolicyClean removes the customer's records immediately; later
	// queries are ignored or refused. No residual resolution.
	PolicyClean TerminationPolicy = iota + 1
	// PolicyResidual keeps answering queries with the last recorded
	// origin IP address "for service continuity" until a purge deadline —
	// the behaviour the paper verifies for Cloudflare and Incapsula.
	PolicyResidual
)

// String implements fmt.Stringer.
func (p TerminationPolicy) String() string {
	switch p {
	case PolicyClean:
		return "clean"
	case PolicyResidual:
		return "residual"
	default:
		return fmt.Sprintf("policy%d", int(p))
	}
}

// ProviderKey identifies one of the eleven studied providers.
type ProviderKey string

// The eleven DPS providers of Table II.
const (
	Akamai     ProviderKey = "akamai"
	Cloudflare ProviderKey = "cloudflare"
	Cloudfront ProviderKey = "cloudfront"
	CDN77      ProviderKey = "cdn77"
	CDNetworks ProviderKey = "cdnetworks"
	DOSarrest  ProviderKey = "dosarrest"
	Edgecast   ProviderKey = "edgecast"
	Fastly     ProviderKey = "fastly"
	Incapsula  ProviderKey = "incapsula"
	Limelight  ProviderKey = "limelight"
	Stackpath  ProviderKey = "stackpath"
)

// Profile is the static description of a provider: the Table II row plus
// the infrastructure naming scheme and termination behaviour used by the
// simulation.
type Profile struct {
	Key         ProviderKey
	DisplayName string

	// InfraApex is the provider's infrastructure domain, under which edge
	// CNAME targets and nameserver hostnames live (e.g. incapdns.net).
	InfraApex dnsmsg.Name
	// CNAMELabel is inserted between the per-customer token and InfraApex
	// in generated canonical names; may be empty.
	CNAMELabel string
	// NSHostLabel is inserted into generated nameserver hostnames; may be
	// empty.
	NSHostLabel string

	// CNAMESubstrings / NSSubstrings are the Table II matching strings the
	// measurement pipeline uses to attribute CNAME and NS records.
	CNAMESubstrings []string
	NSSubstrings    []string

	// ASNs are the provider's autonomous systems (Table II).
	ASNs []ipspace.ASN

	// Methods are the rerouting mechanisms the provider offers, in
	// preference order.
	Methods []Rerouting

	// Termination selects the nameserver behaviour after explicit
	// customer termination.
	Termination TerminationPolicy

	// NSGivenNames, when non-empty, generate Cloudflare-style nameserver
	// hostnames "<name>.<NSHostLabel>.<InfraApex>".
	NSGivenNames []string
}

// Supports reports whether the provider offers the rerouting method.
func (p Profile) Supports(m Rerouting) bool {
	for _, have := range p.Methods {
		if have == m {
			return true
		}
	}
	return false
}

// Residual reports whether the provider is vulnerable to residual
// resolution by policy.
func (p Profile) Residual() bool { return p.Termination == PolicyResidual }

// _cloudflareNSNames mirrors Cloudflare's "[girl/boy's name].ns.cloudflare
// .com" scheme (paper footnote 12).
var _cloudflareNSNames = []string{
	"ada", "amir", "anna", "ben", "cara", "dan", "elsa", "finn",
	"gina", "hugo", "iris", "jack", "kate", "liam", "mona", "nora",
	"omar", "pam", "quinn", "rob", "sara", "theo", "uma", "vera",
}

// Profiles returns the Table II provider profiles, keyed lookup via
// ProfileFor. The slice is freshly allocated on each call.
func Profiles() []Profile {
	return []Profile{
		{
			Key: Akamai, DisplayName: "Akamai",
			InfraApex: "akam.net", CNAMELabel: "edgekey", NSHostLabel: "",
			CNAMESubstrings: []string{"akamai", "edgekey", "edgesuite"},
			NSSubstrings:    []string{"akam"},
			ASNs:            []ipspace.ASN{32787, 12222, 20940, 16625, 35994},
			Methods:         []Rerouting{ReroutingA, ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: Cloudflare, DisplayName: "Cloudflare",
			InfraApex: "cloudflare.com", CNAMELabel: "cdn", NSHostLabel: "ns",
			CNAMESubstrings: []string{"cloudflare"},
			NSSubstrings:    []string{"cloudflare"},
			ASNs:            []ipspace.ASN{13335},
			Methods:         []Rerouting{ReroutingNS, ReroutingCNAME},
			Termination:     PolicyResidual,
			NSGivenNames:    _cloudflareNSNames,
		},
		{
			Key: Cloudfront, DisplayName: "Cloudfront",
			InfraApex: "cloudfront.net", CNAMELabel: "", NSHostLabel: "",
			CNAMESubstrings: []string{"cloudfront"},
			NSSubstrings:    nil,
			// Cloudfront has no dedicated AS (Table II note ¶); the
			// simulation assigns it a synthetic AWS-range AS.
			ASNs:        []ipspace.ASN{16509},
			Methods:     []Rerouting{ReroutingCNAME},
			Termination: PolicyClean,
		},
		{
			Key: CDN77, DisplayName: "CDN77",
			InfraApex: "cdn77.net", CNAMELabel: "", NSHostLabel: "",
			CNAMESubstrings: []string{"cdn77"},
			NSSubstrings:    []string{"cdn77"},
			ASNs:            []ipspace.ASN{60068},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: CDNetworks, DisplayName: "CDNetworks",
			InfraApex: "cdngc.net", CNAMELabel: "", NSHostLabel: "cdnetdns",
			CNAMESubstrings: []string{"cdnga", "cdngc", "cdnetworks"},
			NSSubstrings:    []string{"cdnetdns", "panthercdn"},
			ASNs:            []ipspace.ASN{38107, 36408},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: DOSarrest, DisplayName: "DOSarrest",
			InfraApex: "dosarrest.com", CNAMELabel: "", NSHostLabel: "",
			CNAMESubstrings: nil,
			NSSubstrings:    nil,
			ASNs:            []ipspace.ASN{19324},
			Methods:         []Rerouting{ReroutingA},
			Termination:     PolicyClean,
		},
		{
			Key: Edgecast, DisplayName: "Edgecast",
			InfraApex: "alphacdn.net", CNAMELabel: "", NSHostLabel: "edgecastcdn",
			CNAMESubstrings: []string{"edgecastcdn", "alphacdn"},
			NSSubstrings:    []string{"edgecastcdn", "alphacdn"},
			ASNs:            []ipspace.ASN{15133, 14210, 14153},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: Fastly, DisplayName: "Fastly",
			InfraApex: "fastly.net", CNAMELabel: "", NSHostLabel: "",
			CNAMESubstrings: []string{"fastly"},
			NSSubstrings:    []string{"fastly"},
			ASNs:            []ipspace.ASN{54113, 394192},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: Incapsula, DisplayName: "Incapsula",
			InfraApex: "incapdns.net", CNAMELabel: "x", NSHostLabel: "",
			CNAMESubstrings: []string{"incapdns"},
			NSSubstrings:    []string{"incapdns"},
			ASNs:            []ipspace.ASN{19551},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyResidual,
		},
		{
			Key: Limelight, DisplayName: "Limelight",
			InfraApex: "llnw.net", CNAMELabel: "", NSHostLabel: "lldns",
			CNAMESubstrings: []string{"llnw", "lldns"},
			NSSubstrings:    []string{"llnw", "lldns"},
			ASNs:            []ipspace.ASN{22822, 38622, 55429},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
		{
			Key: Stackpath, DisplayName: "Stackpath",
			InfraApex: "hwcdn.net", CNAMELabel: "netdna", NSHostLabel: "netdna",
			CNAMESubstrings: []string{"stackpath", "netdna", "hwcdn"},
			NSSubstrings:    []string{"netdna", "hwcdn"},
			ASNs:            []ipspace.ASN{54104, 20446},
			Methods:         []Rerouting{ReroutingCNAME},
			Termination:     PolicyClean,
		},
	}
}

// ProfileFor returns the profile for key.
func ProfileFor(key ProviderKey) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Key == key {
			return p, true
		}
	}
	return Profile{}, false
}

// AllKeys returns the provider keys in Table II order.
func AllKeys() []ProviderKey {
	profiles := Profiles()
	out := make([]ProviderKey, len(profiles))
	for i, p := range profiles {
		out[i] = p.Key
	}
	return out
}
