package dps

import (
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// fixture wires one provider with an enrolled-ready environment.
type fixture struct {
	clock    *simtime.Simulated
	net      *netsim.Network
	alloc    *ipspace.Allocator
	registry *ipspace.Registry
	provider *Provider

	originAddr netip.Addr
	origin     *httpsim.Origin
	dnsClient  *dnsresolver.Client
	webClient  *httpsim.Client
}

func newFixture(t *testing.T, key ProviderKey) *fixture {
	t.Helper()
	f := &fixture{
		clock:    simtime.NewSimulated(),
		alloc:    ipspace.NewAllocator(netip.MustParseAddr("20.0.0.0")),
		registry: ipspace.NewRegistry(),
	}
	f.net = netsim.New(netsim.Config{Clock: f.clock})

	profile, ok := ProfileFor(key)
	if !ok {
		t.Fatalf("no profile for %s", key)
	}
	f.provider = New(Config{
		Profile:  profile,
		Network:  f.net,
		Clock:    f.clock,
		Alloc:    f.alloc,
		Registry: f.registry,
		Rand:     rand.New(rand.NewSource(77)),
	})

	// An origin website.
	f.originAddr = netip.MustParseAddr("198.18.0.10")
	f.origin = httpsim.NewOrigin(httpsim.OriginConfig{
		Page: httpsim.Page{Title: "Customer Site", Meta: map[string]string{"description": "d"}},
	})
	f.net.Register(netsim.Endpoint{Addr: f.originAddr, Port: netsim.PortHTTP}, netsim.RegionVirginia, f.origin)

	f.dnsClient = dnsresolver.NewClient(f.net, netip.MustParseAddr("198.51.100.2"), netsim.RegionOregon, rand.New(rand.NewSource(3)))
	f.webClient = httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.2"), netsim.RegionOregon)
	return f
}

// queryNS asks one of the provider's pool nameservers for www.apex A.
func (f *fixture) queryNS(t *testing.T, apex dnsmsg.Name) (*dnsmsg.Message, error) {
	t.Helper()
	pool := f.provider.NSPool()
	if len(pool) == 0 {
		t.Fatal("provider has no NS pool")
	}
	addr, ok := f.provider.NSPoolAddr(pool[0])
	if !ok {
		t.Fatal("pool NS has no address")
	}
	return f.dnsClient.Exchange(addr, apex.Child("www"), dnsmsg.TypeA)
}

func answerAddr(t *testing.T, m *dnsmsg.Message) netip.Addr {
	t.Helper()
	as := m.AnswersOfType(dnsmsg.TypeA)
	if len(as) == 0 {
		t.Fatalf("no A answers in %s", m)
	}
	return as[0].Data.(dnsmsg.AData).Addr
}

func TestEnrollNSHosting(t *testing.T) {
	f := newFixture(t, Cloudflare)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.NSHosts) != 2 || asg.NSHosts[0] == asg.NSHosts[1] {
		t.Fatalf("NSHosts = %v, want 2 distinct", asg.NSHosts)
	}
	for _, h := range asg.NSHosts {
		if !h.ContainsSubstring("ns.cloudflare.com") {
			t.Errorf("NS host %s does not follow [name].ns.cloudflare.com", h)
		}
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	got := answerAddr(t, resp)
	if got != asg.EdgeAddr {
		t.Fatalf("active answer = %v, want edge %v", got, asg.EdgeAddr)
	}
	if !f.registry.Contains(13335, got) {
		t.Fatal("edge address not in Cloudflare AS range")
	}
}

func TestEnrollCNAME(t *testing.T) {
	f := newFixture(t, Incapsula)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingCNAME, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if !asg.CNAMETarget.ContainsSubstring("incapdns") {
		t.Fatalf("CNAME target %s missing provider substring", asg.CNAMETarget)
	}
	// Resolve the CNAME target directly at the provider's infra NS.
	var infraAddr netip.Addr
	for _, a := range f.provider.InfraNS() {
		infraAddr = a
		break
	}
	resp, err := f.dnsClient.Exchange(infraAddr, asg.CNAMETarget, dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != asg.EdgeAddr {
		t.Fatalf("CNAME target answer = %v, want edge %v", got, asg.EdgeAddr)
	}
}

func TestEnrollUnsupportedMethod(t *testing.T) {
	f := newFixture(t, Incapsula)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); !errors.Is(err, ErrUnsupportedMethod) {
		t.Fatalf("err = %v, want ErrUnsupportedMethod", err)
	}
}

func TestEnrollTwiceFails(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); !errors.Is(err, ErrAlreadyEnrolled) {
		t.Fatalf("err = %v, want ErrAlreadyEnrolled", err)
	}
}

func TestEdgeServesCustomerContent(t *testing.T) {
	f := newFixture(t, Cloudflare)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.webClient.Get(asg.EdgeAddr, "www.shop.com", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || httpsim.ParsePage(resp.Body).Title != "Customer Site" {
		t.Fatalf("edge response: %d %q", resp.StatusCode, resp.Body)
	}
}

func TestPauseExposesOriginAndResumeHides(t *testing.T) {
	f := newFixture(t, Cloudflare)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Pause("shop.com"); err != nil {
		t.Fatal(err)
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != f.originAddr {
		t.Fatalf("paused answer = %v, want origin %v", got, f.originAddr)
	}
	if err := f.provider.Resume("shop.com"); err != nil {
		t.Fatal(err)
	}
	resp, err = f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != asg.EdgeAddr {
		t.Fatalf("resumed answer = %v, want edge %v", got, asg.EdgeAddr)
	}
}

func TestPauseStateErrors(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if err := f.provider.Pause("ghost.com"); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatalf("err = %v, want ErrUnknownCustomer", err)
	}
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Resume("shop.com"); !errors.Is(err, ErrBadState) {
		t.Fatalf("resume active err = %v, want ErrBadState", err)
	}
	if err := f.provider.Pause("shop.com"); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Pause("shop.com"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double pause err = %v, want ErrBadState", err)
	}
}

// TestResidualResolutionAfterTermination is the core vulnerability: after a
// notified termination, Cloudflare-style nameservers keep answering with
// the origin address.
func TestResidualResolutionAfterTermination(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != f.originAddr {
		t.Fatalf("residual answer = %v, want origin %v", got, f.originAddr)
	}
}

func TestResidualRecordPurgedAfterDeadline(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	// Paper §V-A.3: the free-plan record purges at the 4th week.
	f.clock.AdvanceDays(27)
	if purged := f.provider.PurgeExpired(); len(purged) != 0 {
		t.Fatalf("purged %v before deadline", purged)
	}
	f.clock.AdvanceDays(2)
	purged := f.provider.PurgeExpired()
	if len(purged) != 1 || purged[0] != "shop.com" {
		t.Fatalf("purged = %v", purged)
	}
	// Now the nameserver ignores the query (timeout).
	_, err := f.queryNS(t, "shop.com")
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("post-purge err = %v, want timeout", err)
	}
	if _, ok := f.provider.Customer("shop.com"); ok {
		t.Fatal("customer record survived purge")
	}
}

func TestPaidPlanPurgesLater(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("paid.com", f.originAddr, ReroutingNS, PlanPaid); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("paid.com", true); err != nil {
		t.Fatal(err)
	}
	f.clock.AdvanceDays(29)
	if purged := f.provider.PurgeExpired(); len(purged) != 0 {
		t.Fatalf("paid plan purged at 29 days: %v", purged)
	}
	f.clock.AdvanceDays(45)
	if purged := f.provider.PurgeExpired(); len(purged) != 1 {
		t.Fatalf("paid plan not purged at 74 days: %v", purged)
	}
}

func TestCleanPolicyRemovesRecordsImmediately(t *testing.T) {
	f := newFixture(t, Fastly)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingCNAME, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	var infraAddr netip.Addr
	for _, a := range f.provider.InfraNS() {
		infraAddr = a
		break
	}
	resp, err := f.dnsClient.Exchange(infraAddr, asg.CNAMETarget, dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("clean-policy rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}
	if _, ok := f.provider.Customer("shop.com"); ok {
		t.Fatal("clean policy left a customer record")
	}
}

func TestSilentLeaveKeepsEdgeRecords(t *testing.T) {
	f := newFixture(t, Cloudflare)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", false); err != nil {
		t.Fatal(err)
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != asg.EdgeAddr {
		t.Fatalf("silent-leave answer = %v, want edge %v (no origin leak)", got, asg.EdgeAddr)
	}
}

func TestIncapsulaResidualCNAME(t *testing.T) {
	f := newFixture(t, Incapsula)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingCNAME, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	var infraAddr netip.Addr
	for _, a := range f.provider.InfraNS() {
		infraAddr = a
		break
	}
	resp, err := f.dnsClient.Exchange(infraAddr, asg.CNAMETarget, dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != f.originAddr {
		t.Fatalf("stale CNAME answer = %v, want origin %v", got, f.originAddr)
	}
}

func TestReEnrollAfterTermination(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatalf("re-enroll: %v", err)
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != asg.EdgeAddr {
		t.Fatalf("re-enrolled answer = %v, want edge %v", got, asg.EdgeAddr)
	}
}

func TestUpdateOrigin(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	newOrigin := netip.MustParseAddr("198.18.0.99")
	if err := f.provider.UpdateOrigin("shop.com", newOrigin); err != nil {
		t.Fatal(err)
	}
	c, _ := f.provider.Customer("shop.com")
	if c.Origin != newOrigin {
		t.Fatalf("origin = %v", c.Origin)
	}
	// Paused answers follow the new origin.
	if err := f.provider.Pause("shop.com"); err != nil {
		t.Fatal(err)
	}
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != newOrigin {
		t.Fatalf("paused answer = %v, want new origin %v", got, newOrigin)
	}
}

func TestAnycastNSSpreadsAcrossPoPs(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	pool := f.provider.NSPool()
	addr, _ := f.provider.NSPoolAddr(pool[0])
	ep := netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}
	for _, region := range netsim.VantageRegions() {
		c := dnsresolver.NewClient(f.net, netip.MustParseAddr("198.51.100.9"), region, rand.New(rand.NewSource(1)))
		if _, err := c.Exchange(addr, dnsmsg.Name("www.shop.com"), dnsmsg.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	counts := f.net.QueryCounts(ep)
	if len(counts) < 3 {
		t.Fatalf("queries from 5 vantage regions hit only %d PoPs: %v", len(counts), counts)
	}
}

func TestCNAMETargetsUnpredictable(t *testing.T) {
	f := newFixture(t, Incapsula)
	seen := make(map[dnsmsg.Name]bool)
	for i := 0; i < 50; i++ {
		apex := dnsmsg.MustParseName(strings.ToLower("site" + string(rune('a'+i%26)) + "x" + string(rune('0'+i%10)) + ".com"))
		apex = dnsmsg.MustParseName(strings.ReplaceAll(string(apex), " ", ""))
		asgApex := dnsmsg.MustParseName(string(apex))
		asg, err := f.provider.Enroll(asgApex, f.originAddr, ReroutingCNAME, PlanFree)
		if err != nil {
			// duplicate apex in this crude generator: skip
			continue
		}
		if seen[asg.CNAMETarget] {
			t.Fatalf("duplicate CNAME target %s", asg.CNAMETarget)
		}
		seen[asg.CNAMETarget] = true
	}
	if len(seen) < 20 {
		t.Fatalf("only %d unique targets generated", len(seen))
	}
}

func TestTerminateErrors(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if err := f.provider.Terminate("ghost.com", true); !errors.Is(err, ErrUnknownCustomer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); !errors.Is(err, ErrBadState) {
		t.Fatalf("double terminate err = %v, want ErrBadState", err)
	}
}

func TestCustomersAccessor(t *testing.T) {
	f := newFixture(t, Cloudflare)
	for _, apex := range []dnsmsg.Name{"b.com", "a.com", "c.com"} {
		if _, err := f.provider.Enroll(apex, f.originAddr, ReroutingNS, PlanFree); err != nil {
			t.Fatal(err)
		}
	}
	got := f.provider.Customers()
	if len(got) != 3 || got[0].Apex != "a.com" || got[2].Apex != "c.com" {
		t.Fatalf("Customers() = %+v", got)
	}
	// Mutating the copy must not affect provider state.
	got[0].State = StateTerminated
	c, _ := f.provider.Customer("a.com")
	if c.State != StateActive {
		t.Fatal("Customers() leaked internal state")
	}
}

func TestHostedQueriesCounter(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if _, err := f.queryNS(t, "shop.com"); err != nil {
		t.Fatal(err)
	}
	if got := f.provider.HostedQueries(); got != 1 {
		t.Fatalf("HostedQueries = %d", got)
	}
	// Non-NS provider reports zero.
	inc := newFixture(t, Incapsula)
	if got := inc.provider.HostedQueries(); got != 0 {
		t.Fatalf("incapsula HostedQueries = %d", got)
	}
}

func TestEnrollDistributesPlansAndTTLs(t *testing.T) {
	f := newFixture(t, Cloudflare)
	asg, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree)
	if err != nil {
		t.Fatal(err)
	}
	_ = asg
	resp, err := f.queryNS(t, "shop.com")
	if err != nil {
		t.Fatal(err)
	}
	a := resp.AnswersOfType(dnsmsg.TypeA)[0]
	if a.TTL != 5*time.Minute {
		t.Fatalf("A TTL = %v, want 5m", a.TTL)
	}
}

// TestEveryProviderEnrollsViaEveryOfferedMethod exercises the full
// Table II matrix: each provider accepts each method it advertises and
// rejects the others.
func TestEveryProviderEnrollsViaEveryOfferedMethod(t *testing.T) {
	for _, profile := range Profiles() {
		profile := profile
		t.Run(string(profile.Key), func(t *testing.T) {
			for _, method := range []Rerouting{ReroutingA, ReroutingCNAME, ReroutingNS} {
				f := newFixture(t, profile.Key)
				asg, err := f.provider.Enroll("matrix.com", f.originAddr, method, PlanFree)
				if profile.Supports(method) {
					if err != nil {
						t.Fatalf("%s via %s: %v", profile.Key, method, err)
					}
					switch method {
					case ReroutingA:
						if !asg.EdgeAddr.IsValid() {
							t.Fatal("A enrollment without edge address")
						}
					case ReroutingCNAME:
						if asg.CNAMETarget == "" {
							t.Fatal("CNAME enrollment without target")
						}
					case ReroutingNS:
						if len(asg.NSHosts) == 0 {
							t.Fatal("NS enrollment without hosts")
						}
					}
					// Full teardown works for every provider/method pair.
					if err := f.provider.Terminate("matrix.com", true); err != nil {
						t.Fatalf("terminate: %v", err)
					}
				} else if !errors.Is(err, ErrUnsupportedMethod) {
					t.Fatalf("%s via unsupported %s: err = %v", profile.Key, method, err)
				}
			}
		})
	}
}
