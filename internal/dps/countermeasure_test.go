package dps

import (
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
)

// auditLookup builds a lookup function from a static answer table.
func auditLookup(answers map[dnsmsg.Name][]netip.Addr) func(dnsmsg.Name) []netip.Addr {
	return func(name dnsmsg.Name) []netip.Addr { return answers[name] }
}

func TestAuditTerminatedPurgesMovers(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("moved.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if _, err := f.provider.Enroll("stayed.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	for _, apex := range []dnsmsg.Name{"moved.com", "stayed.com"} {
		if err := f.provider.Terminate(apex, true); err != nil {
			t.Fatal(err)
		}
	}

	// moved.com now publicly resolves elsewhere; stayed.com still serves
	// the stored origin.
	purged := f.provider.AuditTerminated(auditLookup(map[dnsmsg.Name][]netip.Addr{
		"www.moved.com":  {netip.MustParseAddr("203.0.113.50")},
		"www.stayed.com": {f.originAddr},
	}))
	if len(purged) != 1 || purged[0] != "moved.com" {
		t.Fatalf("purged = %v, want [moved.com]", purged)
	}
	if _, ok := f.provider.Customer("moved.com"); ok {
		t.Fatal("moved.com record survived the audit")
	}
	if _, ok := f.provider.Customer("stayed.com"); !ok {
		t.Fatal("stayed.com record was wrongly purged (continuity case)")
	}
}

func TestAuditTerminatedSkipsOnLookupFailure(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("shop.com", true); err != nil {
		t.Fatal(err)
	}
	// nil public answers model a transient resolution failure: the audit
	// must leave the record alone.
	purged := f.provider.AuditTerminated(auditLookup(nil))
	if len(purged) != 0 {
		t.Fatalf("purged = %v on lookup failure", purged)
	}
	if _, ok := f.provider.Customer("shop.com"); !ok {
		t.Fatal("record purged despite lookup failure")
	}
}

func TestAuditTerminatedIgnoresActiveAndSilent(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("active.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if _, err := f.provider.Enroll("silent.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	if err := f.provider.Terminate("silent.com", false); err != nil {
		t.Fatal(err)
	}
	purged := f.provider.AuditTerminated(auditLookup(map[dnsmsg.Name][]netip.Addr{
		"www.active.com": {netip.MustParseAddr("203.0.113.60")},
		"www.silent.com": {netip.MustParseAddr("203.0.113.61")},
	}))
	if len(purged) != 0 {
		t.Fatalf("purged = %v; active and silent customers must be untouched", purged)
	}
}

func TestUpsertHostedRecord(t *testing.T) {
	f := newFixture(t, Cloudflare)
	if _, err := f.provider.Enroll("shop.com", f.originAddr, ReroutingNS, PlanFree); err != nil {
		t.Fatal(err)
	}
	rr := dnsmsg.NewA("dev.shop.com", 5*time.Minute, netip.MustParseAddr("198.18.0.77"))
	if err := f.provider.UpsertHostedRecord("shop.com", rr); err != nil {
		t.Fatal(err)
	}
	resp, err := f.dnsClient.Exchange(mustPoolAddr(t, f), "dev.shop.com", dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if got := answerAddr(t, resp); got != netip.MustParseAddr("198.18.0.77") {
		t.Fatalf("unproxied record = %v", got)
	}
}

func TestUpsertHostedRecordErrors(t *testing.T) {
	f := newFixture(t, Cloudflare)
	rr := dnsmsg.NewA("dev.ghost.com", 5*time.Minute, netip.MustParseAddr("198.18.0.77"))
	if err := f.provider.UpsertHostedRecord("ghost.com", rr); err == nil {
		t.Fatal("upsert for unknown customer succeeded")
	}
	// CNAME-method customers have no hosted zone.
	inc := newFixture(t, Incapsula)
	if _, err := inc.provider.Enroll("shop.com", inc.originAddr, ReroutingCNAME, PlanFree); err != nil {
		t.Fatal(err)
	}
	rr2 := dnsmsg.NewA("dev.shop.com", 5*time.Minute, netip.MustParseAddr("198.18.0.77"))
	if err := inc.provider.UpsertHostedRecord("shop.com", rr2); err == nil {
		t.Fatal("upsert for CNAME customer succeeded")
	}
}

func mustPoolAddr(t *testing.T, f *fixture) netip.Addr {
	t.Helper()
	pool := f.provider.NSPool()
	addr, ok := f.provider.NSPoolAddr(pool[0])
	if !ok {
		t.Fatal("no pool address")
	}
	return addr
}
