package dps

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dnszone"
	"rrdps/internal/edge"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

// Plan is a customer's service plan; it determines how long a residual
// record survives before the provider purges it (§V-A.3 speculates that
// longer exposures come from non-free plans).
type Plan int

// Service plans.
const (
	PlanFree Plan = iota + 1
	PlanPaid
)

// String implements fmt.Stringer.
func (p Plan) String() string {
	switch p {
	case PlanFree:
		return "free"
	case PlanPaid:
		return "paid"
	default:
		return fmt.Sprintf("plan%d", int(p))
	}
}

// CustomerState is a customer's lifecycle state at the provider.
type CustomerState int

// Customer states.
const (
	// StateActive: protection ON; DNS answers point at edges.
	StateActive CustomerState = iota + 1
	// StatePaused: protection OFF but still on the platform; DNS answers
	// point at the origin (the exposure behind Fig. 5).
	StatePaused
	// StateTerminated: the customer left; with PolicyResidual the
	// provider keeps answering with the origin until the purge deadline.
	StateTerminated
)

// String implements fmt.Stringer.
func (s CustomerState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePaused:
		return "paused"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state%d", int(s))
	}
}

// Customer is a provider-side customer record.
type Customer struct {
	Apex   dnsmsg.Name
	Origin netip.Addr
	Method Rerouting
	Plan   Plan
	State  CustomerState

	// EdgeAddr is the edge assigned to serve this customer.
	EdgeAddr netip.Addr
	// CNAMETarget is the canonical name assigned for CNAME rerouting.
	CNAMETarget dnsmsg.Name
	// NSHosts are the nameservers assigned for NS rerouting.
	NSHosts []dnsmsg.Name

	// TerminatedAt and PurgeAt bound the residual-exposure window.
	TerminatedAt time.Time
	PurgeAt      time.Time
	// Notified records whether the customer explicitly told the provider
	// it was leaving (footnote 10); silent leavers keep their records
	// pointing at edges (footnote 9).
	Notified bool
}

// Assignment is what a customer receives at enrollment, to apply to its own
// DNS configuration.
type Assignment struct {
	// EdgeAddr is the edge IP (for A-based rerouting, the address the
	// customer points its A record at).
	EdgeAddr netip.Addr
	// CNAMETarget is set for CNAME rerouting.
	CNAMETarget dnsmsg.Name
	// NSHosts is set for NS rerouting: the nameservers to delegate to.
	NSHosts []dnsmsg.Name
}

// Provider errors.
var (
	ErrUnsupportedMethod = errors.New("dps: rerouting method not offered")
	ErrAlreadyEnrolled   = errors.New("dps: domain already enrolled")
	ErrUnknownCustomer   = errors.New("dps: unknown customer")
	ErrBadState          = errors.New("dps: operation invalid in current state")
)

// Config parametrizes a Provider.
type Config struct {
	Profile  Profile
	Network  *netsim.Network
	Clock    simtime.Clock
	Alloc    *ipspace.Allocator
	Registry *ipspace.Registry
	Rand     *rand.Rand

	// PoPRegions are the provider's points of presence. Defaults to all
	// regions.
	PoPRegions []netsim.Region
	// EdgeCount is the number of edge addresses. Default 4.
	EdgeCount int
	// NameserverCount is the NS-hosting pool size (only used when the
	// profile supports NS rerouting). Default 4.
	NameserverCount int
	// EdgeCacheTTL is the edges' content-cache TTL. Default 60s.
	EdgeCacheTTL time.Duration
	// PurgeDelayFree / PurgeDelayPaid bound residual-record lifetime
	// after a notified termination. Defaults: 28 days / 70 days (§V-A.3:
	// free-plan records purge at the 4th week; longer exposures are
	// attributed to other plans).
	PurgeDelayFree time.Duration
	PurgeDelayPaid time.Duration
	// RecordTTL is the TTL of customer A records. Default 5 minutes.
	RecordTTL time.Duration
	// NSRecordTTL is the TTL of delegation NS records. Default 24h.
	NSRecordTTL time.Duration
	// Scrubber, when set, filters traffic at every edge (the scrubbing
	// centers of §II-A.1). Nil admits everything.
	Scrubber edge.Scrubber
	// SharedEdgeAlloc, when set with SharedEdgeCount > 0, allocates edge
	// addresses from *outside* the provider's announced space — the
	// footnote-6 phenomenon where Akamai and CDNetworks edges hold
	// third-party (ISP) addresses, producing false OFF classifications
	// the paper eliminates.
	SharedEdgeAlloc func() netip.Addr
	// SharedEdgeCount is how many shared (off-AS) edges to add.
	SharedEdgeCount int
}

func (c *Config) applyDefaults() {
	if len(c.PoPRegions) == 0 {
		c.PoPRegions = netsim.AllRegions()
	}
	if c.EdgeCount == 0 {
		c.EdgeCount = 4
	}
	if c.NameserverCount == 0 {
		c.NameserverCount = 4
	}
	if c.EdgeCacheTTL == 0 {
		c.EdgeCacheTTL = time.Minute
	}
	if c.PurgeDelayFree == 0 {
		c.PurgeDelayFree = 28 * 24 * time.Hour
	}
	if c.PurgeDelayPaid == 0 {
		c.PurgeDelayPaid = 70 * 24 * time.Hour
	}
	if c.RecordTTL == 0 {
		c.RecordTTL = 5 * time.Minute
	}
	if c.NSRecordTTL == 0 {
		c.NSRecordTTL = 24 * time.Hour
	}
}

// Provider is a running DPS/CDN provider on the simulated Internet. It is
// safe for concurrent use.
type Provider struct {
	profile Profile
	cfg     Config
	clock   simtime.Clock

	infraZone   *dnszone.Zone
	infraServer *dnsserver.Server
	infraNS     []dnsmsg.Name
	infraNSAddr map[dnsmsg.Name]netip.Addr

	custServer *dnsserver.Server
	nsPool     []dnsmsg.Name
	nsAddr     map[dnsmsg.Name]netip.Addr

	edges []*edge.Edge

	mu        sync.Mutex
	rng       *rand.Rand
	customers map[dnsmsg.Name]*Customer
	tokenSeq  uint64
}

// New builds a provider: allocates and announces its address space, spins
// up edges and nameservers, and registers everything on the fabric.
func New(cfg Config) *Provider {
	if cfg.Network == nil || cfg.Clock == nil || cfg.Alloc == nil || cfg.Registry == nil || cfg.Rand == nil {
		panic("dps: Network, Clock, Alloc, Registry, and Rand are required")
	}
	if len(cfg.Profile.ASNs) == 0 {
		panic("dps: profile has no ASNs")
	}
	cfg.applyDefaults()

	p := &Provider{
		profile:     cfg.Profile,
		cfg:         cfg,
		clock:       cfg.Clock,
		rng:         cfg.Rand,
		infraNSAddr: make(map[dnsmsg.Name]netip.Addr),
		nsAddr:      make(map[dnsmsg.Name]netip.Addr),
		customers:   make(map[dnsmsg.Name]*Customer),
	}

	// Announce one prefix per AS; all service addresses come from the
	// first, the rest exist so A-matching sees multi-AS providers.
	prefixes := make([]netip.Prefix, 0, len(cfg.Profile.ASNs))
	for _, asn := range cfg.Profile.ASNs {
		cfg.Registry.AddAS(asn, string(cfg.Profile.Key))
		prefix := cfg.Alloc.NextPrefix(20)
		cfg.Registry.MustAnnounce(asn, prefix)
		prefixes = append(prefixes, prefix)
	}
	nextHost := 0
	takeAddr := func() netip.Addr {
		a := ipspace.NthAddr(prefixes[nextHost%len(prefixes)], nextHost/len(prefixes))
		nextHost++
		return a
	}

	// Edge fleet; the last SharedEdgeCount edges live at third-party
	// addresses (footnote 6).
	totalEdges := cfg.EdgeCount + cfg.SharedEdgeCount
	for i := 0; i < totalEdges; i++ {
		region := cfg.PoPRegions[i%len(cfg.PoPRegions)]
		addr := netip.Addr{}
		if i >= cfg.EdgeCount {
			if cfg.SharedEdgeAlloc == nil {
				panic("dps: SharedEdgeCount > 0 requires SharedEdgeAlloc")
			}
			addr = cfg.SharedEdgeAlloc()
		} else {
			addr = takeAddr()
		}
		e := edge.New(edge.Config{
			Network:  cfg.Network,
			Addr:     addr,
			Region:   region,
			Clock:    cfg.Clock,
			CacheTTL: cfg.EdgeCacheTTL,
			Scrubber: cfg.Scrubber,
		})
		cfg.Network.Register(netsim.Endpoint{Addr: e.Addr(), Port: netsim.PortHTTP}, region, e)
		p.edges = append(p.edges, e)
	}

	// Infrastructure zone and its two unicast nameservers.
	p.infraZone = dnszone.New(cfg.Profile.InfraApex, dnsmsg.SOAData{
		MName:  cfg.Profile.InfraApex.Child("ns1"),
		RName:  cfg.Profile.InfraApex.Child("hostmaster"),
		Serial: 1, Minimum: 300,
	})
	p.infraServer = dnsserver.New(dnsserver.Config{
		Name:        string(cfg.Profile.Key) + "-infra",
		UnknownZone: dnsserver.PolicyRefuse,
	})
	p.infraServer.AddZone(p.infraZone)
	for i := 0; i < 2; i++ {
		host := cfg.Profile.InfraApex.Child(fmt.Sprintf("ns%d", i+1))
		addr := takeAddr()
		p.infraNS = append(p.infraNS, host)
		p.infraNSAddr[host] = addr
		p.infraZone.MustAdd(dnsmsg.NewNS(cfg.Profile.InfraApex, cfg.NSRecordTTL, host))
		p.infraZone.MustAdd(dnsmsg.NewA(host, cfg.NSRecordTTL, addr))
		region := cfg.PoPRegions[i%len(cfg.PoPRegions)]
		cfg.Network.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}, region, p.infraServer)
	}

	// NS-hosting fleet: one logical server (central record database)
	// reachable at every pool address, anycast across all PoPs. Queries
	// for unknown zones are ignored, as the paper observes for
	// Cloudflare.
	if cfg.Profile.Supports(ReroutingNS) {
		p.custServer = dnsserver.New(dnsserver.Config{
			Name:        string(cfg.Profile.Key) + "-nshosting",
			UnknownZone: dnsserver.PolicyIgnore,
		})
		for i := 0; i < cfg.NameserverCount; i++ {
			host := p.nsHostname(i)
			addr := takeAddr()
			p.nsPool = append(p.nsPool, host)
			p.nsAddr[host] = addr
			p.infraZone.MustAdd(dnsmsg.NewA(host, cfg.NSRecordTTL, addr))
			ep := netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}
			for _, region := range cfg.PoPRegions {
				cfg.Network.RegisterAnycast(ep, region, p.custServer)
			}
		}
	}
	return p
}

// nsHostname builds the i-th pool nameserver hostname.
func (p *Provider) nsHostname(i int) dnsmsg.Name {
	base := p.profile.InfraApex
	if p.profile.NSHostLabel != "" {
		base = base.Child(p.profile.NSHostLabel)
	}
	if len(p.profile.NSGivenNames) > 0 {
		name := p.profile.NSGivenNames[i%len(p.profile.NSGivenNames)]
		if i >= len(p.profile.NSGivenNames) {
			name = fmt.Sprintf("%s%d", name, i/len(p.profile.NSGivenNames))
		}
		return base.Child(name)
	}
	return base.Child(fmt.Sprintf("ns%d", i+1))
}

// Profile returns the provider's static profile.
func (p *Provider) Profile() Profile { return p.profile }

// InfraApex returns the provider's infrastructure domain.
func (p *Provider) InfraApex() dnsmsg.Name { return p.profile.InfraApex }

// InfraNS returns the infrastructure zone's nameserver hostnames and
// addresses, for delegation from the TLDs.
func (p *Provider) InfraNS() map[dnsmsg.Name]netip.Addr {
	out := make(map[dnsmsg.Name]netip.Addr, len(p.infraNSAddr))
	for h, a := range p.infraNSAddr {
		out[h] = a
	}
	return out
}

// NSPool returns the NS-hosting pool hostnames (empty for providers
// without NS rerouting).
func (p *Provider) NSPool() []dnsmsg.Name {
	return append([]dnsmsg.Name(nil), p.nsPool...)
}

// NSPoolAddr returns the address of a pool nameserver.
func (p *Provider) NSPoolAddr(host dnsmsg.Name) (netip.Addr, bool) {
	a, ok := p.nsAddr[host]
	return a, ok
}

// EdgeAddrs returns the provider's edge addresses.
func (p *Provider) EdgeAddrs() []netip.Addr {
	out := make([]netip.Addr, len(p.edges))
	for i, e := range p.edges {
		out[i] = e.Addr()
	}
	return out
}

// Edges returns the provider's edge servers.
func (p *Provider) Edges() []*edge.Edge {
	return append([]*edge.Edge(nil), p.edges...)
}

// HostedQueries returns how many queries the NS-hosting fleet has served.
func (p *Provider) HostedQueries() uint64 {
	if p.custServer == nil {
		return 0
	}
	return p.custServer.Queries()
}

// Customer returns a copy of the customer record for apex.
func (p *Provider) Customer(apex dnsmsg.Name) (Customer, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return Customer{}, false
	}
	return p.copyCustomerLocked(c), true
}

func (p *Provider) copyCustomerLocked(c *Customer) Customer {
	out := *c
	out.NSHosts = append([]dnsmsg.Name(nil), c.NSHosts...)
	return out
}

// Customers returns copies of all customer records, sorted by apex.
func (p *Provider) Customers() []Customer {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Customer, 0, len(p.customers))
	for _, c := range p.customers {
		out = append(out, p.copyCustomerLocked(c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Apex < out[j].Apex })
	return out
}

// Enroll provisions apex with the given origin, method, and plan.
func (p *Provider) Enroll(apex dnsmsg.Name, origin netip.Addr, method Rerouting, plan Plan) (Assignment, error) {
	if !p.profile.Supports(method) {
		return Assignment{}, fmt.Errorf("enrolling %s at %s via %s: %w", apex, p.profile.Key, method, ErrUnsupportedMethod)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.customers[apex]; ok {
		if existing.State != StateTerminated {
			return Assignment{}, fmt.Errorf("enrolling %s at %s: %w", apex, p.profile.Key, ErrAlreadyEnrolled)
		}
		// Re-joining customer: drop the leftover state first.
		p.removeRecordsLocked(existing)
		delete(p.customers, apex)
	}

	c := &Customer{
		Apex:   apex,
		Origin: origin,
		Method: method,
		Plan:   plan,
		State:  StateActive,
	}
	e := p.edges[p.rng.Intn(len(p.edges))]
	c.EdgeAddr = e.Addr()
	e.SetBackend(string(apex.Child("www")), origin)
	e.SetBackend(string(apex), origin)

	switch method {
	case ReroutingA:
		// Nothing provider-DNS-side.
	case ReroutingCNAME:
		c.CNAMETarget = p.newCNAMETargetLocked(apex)
		p.infraZone.MustAdd(dnsmsg.NewA(c.CNAMETarget, p.cfg.RecordTTL, c.EdgeAddr))
	case ReroutingNS:
		c.NSHosts = p.pickNSHostsLocked()
		zone := dnszone.New(apex, dnsmsg.SOAData{
			MName:  c.NSHosts[0],
			RName:  p.profile.InfraApex.Child("dns"),
			Serial: 1, Minimum: 300,
		})
		for _, h := range c.NSHosts {
			zone.MustAdd(dnsmsg.NewNS(apex, p.cfg.NSRecordTTL, h))
		}
		zone.MustAdd(dnsmsg.NewA(apex.Child("www"), p.cfg.RecordTTL, c.EdgeAddr))
		zone.MustAdd(dnsmsg.NewA(apex, p.cfg.RecordTTL, c.EdgeAddr))
		p.custServer.AddZone(zone)
	}

	p.customers[apex] = c
	return Assignment{EdgeAddr: c.EdgeAddr, CNAMETarget: c.CNAMETarget, NSHosts: append([]dnsmsg.Name(nil), c.NSHosts...)}, nil
}

func (p *Provider) newCNAMETargetLocked(apex dnsmsg.Name) dnsmsg.Name {
	p.tokenSeq++
	token := fmt.Sprintf("%08x%04d", p.rng.Uint32(), p.tokenSeq%10000)
	base := p.profile.InfraApex
	if p.profile.CNAMELabel != "" {
		base = base.Child(p.profile.CNAMELabel)
	}
	_ = apex // the token is deliberately unpredictable (paper §III-B)
	return base.Child(token)
}

func (p *Provider) pickNSHostsLocked() []dnsmsg.Name {
	if len(p.nsPool) == 1 {
		return []dnsmsg.Name{p.nsPool[0]}
	}
	i := p.rng.Intn(len(p.nsPool))
	j := p.rng.Intn(len(p.nsPool) - 1)
	if j >= i {
		j++
	}
	return []dnsmsg.Name{p.nsPool[i], p.nsPool[j]}
}

// setAnswerAddrLocked points the customer's provider-held A records at addr.
func (p *Provider) setAnswerAddrLocked(c *Customer, addr netip.Addr) {
	switch c.Method {
	case ReroutingCNAME:
		mustSet(p.infraZone, c.CNAMETarget, dnsmsg.NewA(c.CNAMETarget, p.cfg.RecordTTL, addr))
	case ReroutingNS:
		if zone, ok := p.custServer.Zone(c.Apex); ok {
			mustSet(zone, c.Apex.Child("www"), dnsmsg.NewA(c.Apex.Child("www"), p.cfg.RecordTTL, addr))
			mustSet(zone, c.Apex, dnsmsg.NewA(c.Apex, p.cfg.RecordTTL, addr))
		}
	}
}

func mustSet(z *dnszone.Zone, name dnsmsg.Name, rr dnsmsg.RR) {
	if err := z.Set(name, rr.Type(), rr); err != nil {
		panic(fmt.Sprintf("dps: %v", err))
	}
}

// removeRecordsLocked erases every provider-held trace of the customer.
func (p *Provider) removeRecordsLocked(c *Customer) {
	switch c.Method {
	case ReroutingCNAME:
		p.infraZone.RemoveName(c.CNAMETarget)
	case ReroutingNS:
		p.custServer.RemoveZone(c.Apex)
	}
	p.removeBackendsLocked(c)
}

func (p *Provider) removeBackendsLocked(c *Customer) {
	for _, e := range p.edges {
		if e.Addr() == c.EdgeAddr {
			e.RemoveBackend(string(c.Apex.Child("www")))
			e.RemoveBackend(string(c.Apex))
		}
	}
}

// UpsertHostedRecord sets a record in the customer's provider-hosted zone
// (NS rerouting only). Providers call these "unproxied" (grey-cloud)
// records: they resolve directly — bypassing the edges — which is exactly
// how forgotten subdomains and MX records leak origins (Table I vectors).
func (p *Provider) UpsertHostedRecord(apex dnsmsg.Name, rr dnsmsg.RR) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return fmt.Errorf("upserting %s at %s: %w", rr.Name, p.profile.Key, ErrUnknownCustomer)
	}
	if c.Method != ReroutingNS {
		return fmt.Errorf("upserting %s (method %s): %w", rr.Name, c.Method, ErrBadState)
	}
	zone, ok := p.custServer.Zone(apex)
	if !ok {
		return fmt.Errorf("upserting %s: zone missing: %w", rr.Name, ErrUnknownCustomer)
	}
	return zone.Set(rr.Name, rr.Type(), rr)
}

// Pause switches the customer to DNS-only mode: the provider's records now
// answer with the origin address (status OFF, Table III).
func (p *Provider) Pause(apex dnsmsg.Name) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return fmt.Errorf("pausing %s at %s: %w", apex, p.profile.Key, ErrUnknownCustomer)
	}
	if c.State != StateActive {
		return fmt.Errorf("pausing %s (state %s): %w", apex, c.State, ErrBadState)
	}
	if c.Method == ReroutingA {
		return fmt.Errorf("pausing %s (A-based): %w", apex, ErrBadState)
	}
	c.State = StatePaused
	p.setAnswerAddrLocked(c, c.Origin)
	return nil
}

// Resume re-enables protection for a paused customer.
func (p *Provider) Resume(apex dnsmsg.Name) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return fmt.Errorf("resuming %s at %s: %w", apex, p.profile.Key, ErrUnknownCustomer)
	}
	if c.State != StatePaused {
		return fmt.Errorf("resuming %s (state %s): %w", apex, c.State, ErrBadState)
	}
	c.State = StateActive
	p.setAnswerAddrLocked(c, c.EdgeAddr)
	return nil
}

// UpdateOrigin records a new origin address for the customer (the
// best-practice IP change of §IV-C.3) and repoints edge backends; paused
// customers' DNS answers follow.
func (p *Provider) UpdateOrigin(apex dnsmsg.Name, origin netip.Addr) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return fmt.Errorf("updating origin of %s at %s: %w", apex, p.profile.Key, ErrUnknownCustomer)
	}
	if c.State == StateTerminated {
		return fmt.Errorf("updating origin of %s (terminated): %w", apex, ErrBadState)
	}
	c.Origin = origin
	for _, e := range p.edges {
		if e.Addr() == c.EdgeAddr {
			e.SetBackend(string(c.Apex.Child("www")), origin)
			e.SetBackend(string(c.Apex), origin)
		}
	}
	if c.State == StatePaused {
		p.setAnswerAddrLocked(c, origin)
	}
	return nil
}

// Terminate ends the customer's service. With notified=true the provider
// applies its termination policy: PolicyClean removes everything at once;
// PolicyResidual keeps answering with the stored origin address until the
// plan's purge deadline — the residual-resolution vulnerability. With
// notified=false (the customer silently walked away, footnote 9) records
// are left untouched, still pointing at edges.
func (p *Provider) Terminate(apex dnsmsg.Name, notified bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[apex]
	if !ok {
		return fmt.Errorf("terminating %s at %s: %w", apex, p.profile.Key, ErrUnknownCustomer)
	}
	if c.State == StateTerminated {
		return fmt.Errorf("terminating %s twice: %w", apex, ErrBadState)
	}
	now := p.clock.Now()
	c.State = StateTerminated
	c.TerminatedAt = now
	c.Notified = notified

	if !notified {
		// Provider unaware: nothing changes until an eventual audit; model
		// that audit with the free-plan purge delay.
		c.PurgeAt = now.Add(p.cfg.PurgeDelayFree)
		return nil
	}

	switch p.profile.Termination {
	case PolicyClean:
		p.removeRecordsLocked(c)
		delete(p.customers, apex)
	case PolicyResidual:
		p.setAnswerAddrLocked(c, c.Origin)
		p.removeBackendsLocked(c)
		delay := p.cfg.PurgeDelayFree
		if c.Plan == PlanPaid {
			delay = p.cfg.PurgeDelayPaid
		}
		c.PurgeAt = now.Add(delay)
	}
	return nil
}

// AuditTerminated implements the provider-side countermeasure of §VI-B.1:
// for every terminated customer whose records are still answered, look up
// the domain's current public A records; when the stored origin no longer
// appears there — the customer is behind another DPS or moved — stop
// responding (purge immediately). lookup returns the public answers for a
// hostname (nil on failure, which leaves the record untouched: a transient
// resolution failure must not destroy continuity). Returns the purged
// apexes.
func (p *Provider) AuditTerminated(lookup func(dnsmsg.Name) []netip.Addr) []dnsmsg.Name {
	if lookup == nil {
		panic("dps: AuditTerminated requires a lookup function")
	}
	p.mu.Lock()
	var candidates []*Customer
	for _, c := range p.customers {
		if c.State == StateTerminated && c.Notified {
			candidates = append(candidates, c)
		}
	}
	p.mu.Unlock()

	var purged []dnsmsg.Name
	for _, c := range candidates {
		public := lookup(c.Apex.Child("www"))
		if public == nil {
			continue
		}
		matches := false
		for _, a := range public {
			if a == c.Origin {
				matches = true
				break
			}
		}
		if matches {
			// The public view still serves the stored origin: answering
			// preserves continuity without revealing anything new.
			continue
		}
		p.mu.Lock()
		if cur, ok := p.customers[c.Apex]; ok && cur.State == StateTerminated {
			p.removeRecordsLocked(cur)
			delete(p.customers, c.Apex)
			purged = append(purged, c.Apex)
		}
		p.mu.Unlock()
	}
	sort.Slice(purged, func(i, j int) bool { return purged[i] < purged[j] })
	return purged
}

// PurgeExpired removes the stale records of terminated customers whose
// purge deadline has passed, returning the affected apexes. The world
// advances call this daily.
func (p *Provider) PurgeExpired() []dnsmsg.Name {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	var purged []dnsmsg.Name
	for apex, c := range p.customers {
		if c.State == StateTerminated && !c.PurgeAt.After(now) {
			p.removeRecordsLocked(c)
			delete(p.customers, apex)
			purged = append(purged, apex)
		}
	}
	sort.Slice(purged, func(i, j int) bool { return purged[i] < purged[j] })
	return purged
}
