package dps

import (
	"strings"
	"testing"
)

func TestProfilesCoverTableII(t *testing.T) {
	profiles := Profiles()
	if len(profiles) != 11 {
		t.Fatalf("len(Profiles()) = %d, want 11", len(profiles))
	}
	seen := make(map[ProviderKey]bool)
	for _, p := range profiles {
		if seen[p.Key] {
			t.Errorf("duplicate profile %s", p.Key)
		}
		seen[p.Key] = true
		if p.DisplayName == "" || p.InfraApex == "" {
			t.Errorf("%s: missing display name or infra apex", p.Key)
		}
		if len(p.ASNs) == 0 {
			t.Errorf("%s: no ASNs", p.Key)
		}
		if len(p.Methods) == 0 {
			t.Errorf("%s: no rerouting methods", p.Key)
		}
	}
}

func TestOnlyCloudflareAndIncapsulaAreResidual(t *testing.T) {
	for _, p := range Profiles() {
		want := p.Key == Cloudflare || p.Key == Incapsula
		if got := p.Residual(); got != want {
			t.Errorf("%s Residual() = %v, want %v", p.Key, got, want)
		}
	}
}

func TestTableIIRows(t *testing.T) {
	tests := []struct {
		key        ProviderKey
		methods    []Rerouting
		cnameSub   string // one substring that must be present ("" = none)
		nsSub      string
		wantASNLen int
	}{
		{Akamai, []Rerouting{ReroutingA, ReroutingCNAME}, "edgekey", "akam", 5},
		{Cloudflare, []Rerouting{ReroutingNS, ReroutingCNAME}, "cloudflare", "cloudflare", 1},
		{Cloudfront, []Rerouting{ReroutingCNAME}, "cloudfront", "", 1},
		{CDN77, []Rerouting{ReroutingCNAME}, "cdn77", "cdn77", 1},
		{CDNetworks, []Rerouting{ReroutingCNAME}, "cdnga", "panthercdn", 2},
		{DOSarrest, []Rerouting{ReroutingA}, "", "", 1},
		{Edgecast, []Rerouting{ReroutingCNAME}, "alphacdn", "edgecastcdn", 3},
		{Fastly, []Rerouting{ReroutingCNAME}, "fastly", "fastly", 2},
		{Incapsula, []Rerouting{ReroutingCNAME}, "incapdns", "incapdns", 1},
		{Limelight, []Rerouting{ReroutingCNAME}, "llnw", "lldns", 3},
		{Stackpath, []Rerouting{ReroutingCNAME}, "netdna", "hwcdn", 2},
	}
	for _, tt := range tests {
		p, ok := ProfileFor(tt.key)
		if !ok {
			t.Fatalf("ProfileFor(%s) missing", tt.key)
		}
		if len(p.Methods) != len(tt.methods) {
			t.Errorf("%s methods = %v, want %v", tt.key, p.Methods, tt.methods)
		} else {
			for i := range tt.methods {
				if p.Methods[i] != tt.methods[i] {
					t.Errorf("%s methods = %v, want %v", tt.key, p.Methods, tt.methods)
					break
				}
			}
		}
		if tt.cnameSub != "" && !containsStr(p.CNAMESubstrings, tt.cnameSub) {
			t.Errorf("%s CNAME substrings %v missing %q", tt.key, p.CNAMESubstrings, tt.cnameSub)
		}
		if tt.cnameSub == "" && len(p.CNAMESubstrings) != 0 {
			t.Errorf("%s should have no CNAME substrings", tt.key)
		}
		if tt.nsSub != "" && !containsStr(p.NSSubstrings, tt.nsSub) {
			t.Errorf("%s NS substrings %v missing %q", tt.key, p.NSSubstrings, tt.nsSub)
		}
		if len(p.ASNs) != tt.wantASNLen {
			t.Errorf("%s ASNs = %v, want %d entries", tt.key, p.ASNs, tt.wantASNLen)
		}
	}
}

func containsStr(hay []string, needle string) bool {
	for _, h := range hay {
		if h == needle {
			return true
		}
	}
	return false
}

func TestProfileSupports(t *testing.T) {
	cf, _ := ProfileFor(Cloudflare)
	if !cf.Supports(ReroutingNS) || !cf.Supports(ReroutingCNAME) || cf.Supports(ReroutingA) {
		t.Fatalf("cloudflare Supports wrong: %v", cf.Methods)
	}
}

func TestAllKeysOrder(t *testing.T) {
	keys := AllKeys()
	if len(keys) != 11 || keys[0] != Akamai || keys[1] != Cloudflare {
		t.Fatalf("AllKeys() = %v", keys)
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, ok := ProfileFor("nonesuch"); ok {
		t.Fatal("ProfileFor(nonesuch) succeeded")
	}
}

func TestEnumStrings(t *testing.T) {
	if ReroutingA.String() != "A" || ReroutingCNAME.String() != "CNAME" || ReroutingNS.String() != "NS" {
		t.Fatal("Rerouting strings wrong")
	}
	if !strings.Contains(Rerouting(0).String(), "rerouting") {
		t.Fatal("zero Rerouting string wrong")
	}
	if PolicyClean.String() != "clean" || PolicyResidual.String() != "residual" {
		t.Fatal("policy strings wrong")
	}
	if PlanFree.String() != "free" || PlanPaid.String() != "paid" {
		t.Fatal("plan strings wrong")
	}
	if StateActive.String() != "active" || StatePaused.String() != "paused" || StateTerminated.String() != "terminated" {
		t.Fatal("state strings wrong")
	}
}

func TestCloudflareNSNamingScheme(t *testing.T) {
	cf, _ := ProfileFor(Cloudflare)
	if len(cf.NSGivenNames) == 0 {
		t.Fatal("cloudflare profile must carry given names for its NS scheme")
	}
}
