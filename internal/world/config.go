// Package world composes the full simulated Internet: root and TLD DNS,
// a basic hosting provider, the eleven Table II DPS providers, and a ranked
// population of websites whose administrators churn through the paper's
// five usage behaviours day by day.
//
// The default configuration is calibrated to the paper's aggregates
// (§IV-§V); see DESIGN.md §5 for the mapping.
package world

import (
	"fmt"
	"time"

	"rrdps/internal/dps"
	"rrdps/internal/edge"
	"rrdps/internal/netsim"
)

// Config parametrizes a World. All stochastic rates are per-site-per-day
// hazards unless noted; they are population-size independent, so event
// counts scale linearly with NumSites like the paper's do with 1M.
type Config struct {
	// Seed drives all randomness; same seed, same world.
	Seed int64
	// NumSites is the ranked population size.
	NumSites int

	// AdoptionTopRate is the initial DPS adoption probability for the top
	// 1% of ranks (the paper's "top 10 thousand" of 1M: 38.98%).
	AdoptionTopRate float64
	// AdoptionOverallRate is the initial overall adoption (14.85%).
	AdoptionOverallRate float64

	// ProviderShares is each provider's share of DPS customers (Fig. 2);
	// values are normalized at build time.
	ProviderShares map[dps.ProviderKey]float64
	// CloudflareNSShare is the fraction of Cloudflare customers using
	// NS-based rerouting (Fig. 6: 89.95%).
	CloudflareNSShare float64
	// AkamaiAShare is the fraction of Akamai customers using A-based
	// rerouting (the remainder use CNAME).
	AkamaiAShare float64
	// PaidPlanRate is the fraction of customers on paid plans (longer
	// residual purge delays, §V-A.3).
	PaidPlanRate float64

	// Daily behaviour hazards (Fig. 3, scaled from the paper's per-day
	// counts at 1M sites: J=195, L=145, P=87, R=62, S=21).
	JoinRate   float64 // per unprotected site
	LeaveRate  float64 // per enrolled site
	PauseRate  float64 // per protected site of a pause-capable provider
	SwitchRate float64 // per enrolled site

	// Waves schedules day-ranged multipliers over the behaviour hazards —
	// the post-attack churn bursts of "No Time for Downtime" (Haq et
	// al.): an attack day makes customers switch or abandon providers at
	// elevated rates for a stretch of days. An empty list leaves every
	// hazard untouched and the world byte-identical to a wave-free one
	// (the per-site dice are rolled against the same effective rates in
	// the same order).
	Waves []ChurnWave

	// NotifiedLeaveRate is the probability a leaving/switching customer
	// explicitly informs the provider (footnote 10); only notified
	// terminations trigger the residual policy.
	NotifiedLeaveRate float64

	// SharedEdgesPerProvider adds edges with third-party (ISP) addresses
	// to Akamai and CDNetworks (footnote 6): customers landing on them
	// classify as OFF shared-IP suspects, which the pipeline eliminates.
	SharedEdgesPerProvider int

	// MultiCDNRate is the fraction of sites fronted by a Cedexis-style
	// multi-CDN service instead of a single DPS. Their provider flaps
	// daily; the paper excludes them from behaviour analysis (§IV-B.3).
	MultiCDNRate float64

	// DecoyOnLeaveRate is the fraction of leavers/switchers applying the
	// §VI-B.2 customer-side countermeasure: planting a fake origin record
	// before terminating, so residual answers point at a dead decoy.
	DecoyOnLeaveRate float64

	// UnchangedRates is, per provider, the probability a customer does NOT
	// change its origin IP after JOIN/RESUME (Table V).
	UnchangedRates map[dps.ProviderKey]float64

	// UnprotectedIPChangeRate is the daily hazard of an unprotected site
	// moving its origin to a fresh address (server migrations, hosting
	// changes). It is what turns residual records stale: a leaver whose
	// origin later moves leaves the previous DPS answering a dead address
	// — a hidden record that fails HTML verification (the ~75% unverified
	// mass in Table VI).
	UnprotectedIPChangeRate float64

	// OriginRestrictedRate is the fraction of enrolled origins that only
	// answer their provider's edges (defeats direct HTML verification).
	OriginRestrictedRate float64
	// DynamicMetaRate is the fraction of origins whose meta tags vary per
	// request (defeats naive HTML comparison).
	DynamicMetaRate float64

	// PurgeDelayFree / PurgeDelayPaid configure providers' residual-record
	// lifetimes.
	PurgeDelayFree time.Duration
	PurgeDelayPaid time.Duration

	// EdgesPerProvider / NameserversPerProvider size provider fleets. The
	// big NS-rerouting pool (Cloudflare's 391 nameservers) is scaled to
	// NameserversPerProvider.
	EdgesPerProvider       int
	NameserversPerProvider int

	// PacketLossRate injects random datagram loss into the fabric via the
	// legacy shared-RNG sampler (drop decisions depend on arrival order).
	PacketLossRate float64

	// Faults installs the richer deterministic fault plan (seeded uniform
	// loss, burst windows, per-endpoint flakiness, reply corruption) on
	// the fabric. A zero Faults.Seed defaults to Seed+9 so the plan is
	// reproducible per world without extra configuration. Unlike
	// PacketLossRate, every Faults decision is a pure function of the
	// send's content, independent of arrival order.
	Faults netsim.FaultConfig

	// Exposures sets the probability that a generated site carries each
	// Table I attack surface (see website.Exposure).
	Exposures ExposureRates

	// Scrubber, when set, is installed at every provider edge (the
	// scrubbing centers of §II-A.1). Nil admits all traffic; the DDoS
	// demo installs a rate-based scrubber here.
	Scrubber edge.Scrubber

	// NSRateLimit, when enabled, installs a response rate limiter on
	// every provider nameserver endpoint (the NS-hosting pools and the
	// infrastructure nameservers) — the Rizvi-style layered defense that
	// throttles a scanner hammering the fleet. The root/TLD backbone and
	// hosting nameservers stay unlimited.
	NSRateLimit netsim.LimitConfig
}

// ChurnWave is one scheduled burst of elevated (or damped) behaviour
// hazards: for world days in [StartDay, StartDay+Days) each non-zero
// multiplier scales its hazard. Zero multipliers mean "unchanged", so a
// wave can target just LEAVE/SWITCH without restating the others.
// Overlapping waves compound.
type ChurnWave struct {
	StartDay   int
	Days       int
	JoinMult   float64
	LeaveMult  float64
	PauseMult  float64
	SwitchMult float64
}

// active reports whether the wave covers world day d.
func (cw ChurnWave) active(d int) bool {
	return d >= cw.StartDay && d < cw.StartDay+cw.Days
}

// ExposureRates holds per-vector probabilities for site generation.
type ExposureRates struct {
	Subdomain     float64
	MailRecord    float64
	BodyLeak      float64
	SensitiveFile float64
	Certificate   float64
	Pingback      float64
}

// PaperConfig returns a configuration calibrated to the paper's reported
// aggregates, for a population of numSites.
func PaperConfig(numSites int) Config {
	return Config{
		Seed:                1815, // DSN'18 submission number, arbitrary
		NumSites:            numSites,
		AdoptionTopRate:     0.3898,
		AdoptionOverallRate: 0.1485,
		// Fig. 2: Cloudflare dominates (79% of DPS customers), Incapsula
		// 3.7%; the rest split the remainder with Akamai and Cloudfront
		// ahead.
		ProviderShares: map[dps.ProviderKey]float64{
			dps.Cloudflare: 0.790,
			dps.Incapsula:  0.037,
			dps.Akamai:     0.055,
			dps.Cloudfront: 0.058,
			dps.Fastly:     0.017,
			dps.CDN77:      0.006,
			dps.CDNetworks: 0.007,
			dps.DOSarrest:  0.006,
			dps.Edgecast:   0.009,
			dps.Limelight:  0.005,
			dps.Stackpath:  0.010,
		},
		CloudflareNSShare: 0.8995,
		AkamaiAShare:      0.5,
		PaidPlanRate:      0.12,

		// Hazards derived from Fig. 3's daily means over the relevant
		// sub-populations of the 1M-site study:
		//   joins:   195/day over ~851.5k unprotected  -> 2.29e-4
		//   leaves:  145/day over ~148.5k enrolled     -> 9.76e-4
		//   pauses:   87/day over ~122.7k CF+Incapsula -> 7.09e-4
		//   switches: 21/day over ~148.5k enrolled     -> 1.41e-4
		JoinRate:   2.29e-4,
		LeaveRate:  9.76e-4,
		PauseRate:  7.09e-4,
		SwitchRate: 1.41e-4,

		NotifiedLeaveRate: 0.75,

		// Table V origin-IP unchanged rates.
		UnchangedRates: map[dps.ProviderKey]float64{
			dps.Cloudflare: 0.595,
			dps.Akamai:     0.580,
			dps.Cloudfront: 0.350,
			dps.Incapsula:  0.634,
			dps.Fastly:     0.571,
			dps.Edgecast:   0.667,
			dps.CDNetworks: 0.739,
			dps.DOSarrest:  0.418,
			dps.Limelight:  0.667,
			dps.Stackpath:  0.725,
			dps.CDN77:      0.938,
		},

		UnprotectedIPChangeRate: 0.009,

		OriginRestrictedRate: 0.08,
		DynamicMetaRate:      0.05,
		MultiCDNRate:         0.004,

		PurgeDelayFree: 28 * 24 * time.Hour,
		PurgeDelayPaid: 70 * 24 * time.Hour,

		EdgesPerProvider:       6,
		NameserversPerProvider: 8,
		SharedEdgesPerProvider: 1,

		// Attack-surface rates roughly follow Vissers et al. (CCS'15),
		// who found >70% of CBSP-protected sites vulnerable to at least
		// one Table I vector.
		Exposures: ExposureRates{
			Subdomain:     0.25,
			MailRecord:    0.30,
			BodyLeak:      0.05,
			SensitiveFile: 0.08,
			Certificate:   0.30,
			Pingback:      0.10,
		},
	}
}

// validate panics on nonsensical configuration; the config is programmer
// input, not user input.
func (c Config) validate() {
	if c.NumSites <= 0 {
		panic(fmt.Sprintf("world: NumSites = %d", c.NumSites))
	}
	if c.AdoptionOverallRate < 0 || c.AdoptionOverallRate > 1 ||
		c.AdoptionTopRate < 0 || c.AdoptionTopRate > 1 {
		panic("world: adoption rates outside [0,1]")
	}
	if len(c.ProviderShares) == 0 {
		panic("world: no provider shares")
	}
	for key := range c.ProviderShares {
		if _, ok := dps.ProfileFor(key); !ok {
			panic(fmt.Sprintf("world: share for unknown provider %q", key))
		}
	}
	for i, wave := range c.Waves {
		if wave.Days <= 0 || wave.StartDay < 0 {
			panic(fmt.Sprintf("world: wave %d has StartDay %d, Days %d", i, wave.StartDay, wave.Days))
		}
		if wave.JoinMult < 0 || wave.LeaveMult < 0 || wave.PauseMult < 0 || wave.SwitchMult < 0 {
			panic(fmt.Sprintf("world: wave %d has a negative multiplier", i))
		}
	}
}

// restAdoptionRate computes the adoption probability for ranks outside the
// top 1% so that the overall rate matches AdoptionOverallRate.
func (c Config) restAdoptionRate() float64 {
	const topFrac = 0.01
	rest := (c.AdoptionOverallRate - c.AdoptionTopRate*topFrac) / (1 - topFrac)
	if rest < 0 {
		return 0
	}
	return rest
}

// topRankCutoff returns the highest rank (inclusive) considered "top" for
// adoption purposes: 1% of the population, the paper's 10k-of-1M.
func (c Config) topRankCutoff() int {
	cut := c.NumSites / 100
	if cut < 1 {
		cut = 1
	}
	return cut
}
