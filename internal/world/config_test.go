package world

import (
	"math"
	"testing"

	"rrdps/internal/dps"
)

func TestPaperConfigDefaults(t *testing.T) {
	cfg := PaperConfig(1000)
	if cfg.NumSites != 1000 {
		t.Fatalf("NumSites = %d", cfg.NumSites)
	}
	if cfg.AdoptionOverallRate != 0.1485 || cfg.AdoptionTopRate != 0.3898 {
		t.Fatal("adoption rates drifted from the paper's")
	}
	total := 0.0
	for _, share := range cfg.ProviderShares {
		total += share
	}
	if math.Abs(total-1.0) > 0.01 {
		t.Fatalf("provider shares sum to %v", total)
	}
	if cfg.ProviderShares[dps.Cloudflare] < cfg.ProviderShares[dps.Incapsula] {
		t.Fatal("cloudflare share below incapsula")
	}
	if len(cfg.UnchangedRates) != 11 {
		t.Fatalf("unchanged rates cover %d providers, want 11", len(cfg.UnchangedRates))
	}
	// Table V extremes.
	if cfg.UnchangedRates[dps.CDN77] < cfg.UnchangedRates[dps.Cloudflare] ||
		cfg.UnchangedRates[dps.Cloudfront] > cfg.UnchangedRates[dps.Cloudflare] {
		t.Fatal("Table V ordering broken: CDN77 highest, Cloudfront lowest")
	}
	if cfg.PurgeDelayFree >= cfg.PurgeDelayPaid {
		t.Fatal("free plan must purge sooner than paid")
	}
}

func TestRestAdoptionRate(t *testing.T) {
	cfg := PaperConfig(10_000)
	rest := cfg.restAdoptionRate()
	// Overall = top*0.01 + rest*0.99 must reconstruct the overall rate.
	overall := cfg.AdoptionTopRate*0.01 + rest*0.99
	if math.Abs(overall-cfg.AdoptionOverallRate) > 1e-9 {
		t.Fatalf("reconstructed overall = %v, want %v", overall, cfg.AdoptionOverallRate)
	}
	// A top rate exceeding overall/topFrac clamps to zero.
	cfg.AdoptionTopRate = 1.0
	cfg.AdoptionOverallRate = 0.005
	if got := cfg.restAdoptionRate(); got != 0 {
		t.Fatalf("clamped rest rate = %v", got)
	}
}

func TestTopRankCutoff(t *testing.T) {
	tests := []struct{ sites, want int }{
		{1_000_000, 10_000},
		{10_000, 100},
		{100, 1},
		{50, 1},
	}
	for _, tt := range tests {
		cfg := PaperConfig(tt.sites)
		if got := cfg.topRankCutoff(); got != tt.want {
			t.Fatalf("cutoff(%d) = %d, want %d", tt.sites, got, tt.want)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NumSites = 0 },
		func(c *Config) { c.AdoptionOverallRate = 1.5 },
		func(c *Config) { c.ProviderShares = nil },
		func(c *Config) { c.ProviderShares = map[dps.ProviderKey]float64{"bogus": 1} },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: validate did not panic", i)
				}
			}()
			cfg := PaperConfig(100)
			mutate(&cfg)
			New(cfg)
		}()
	}
}

func TestExposureRatesGenerateSurface(t *testing.T) {
	cfg := PaperConfig(800)
	cfg.Seed = 15
	w := New(cfg)
	withAny := 0
	for _, s := range w.Sites() {
		if s.Exposure().Any() {
			withAny++
		}
	}
	frac := float64(withAny) / 800
	// With the default per-vector rates, most sites carry something.
	if frac < 0.4 || frac > 0.95 {
		t.Fatalf("sites with attack surface = %.2f", frac)
	}
}

func TestOriginSpaces(t *testing.T) {
	w := New(smallConfig(100))
	spaces := w.OriginSpaces()
	if len(spaces) != 4 {
		t.Fatalf("origin spaces = %d, want 4 ISPs", len(spaces))
	}
	// Every site's origin falls inside one of them.
	for _, s := range w.Sites() {
		found := false
		for _, p := range spaces {
			if p.Contains(s.OriginAddr()) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("origin %v outside all ISP spaces", s.OriginAddr())
		}
	}
}

func TestMultiCDNDomainsSkipChurn(t *testing.T) {
	cfg := PaperConfig(600)
	cfg.Seed = 17
	cfg.MultiCDNRate = 0.05
	cfg.LeaveRate = 1.0 // every normal site would leave instantly
	cfg.JoinRate = 0
	cfg.PauseRate = 0
	cfg.SwitchRate = 0
	w := New(cfg)
	domains := w.MultiCDNDomains()
	if len(domains) == 0 {
		t.Fatal("no multi-CDN domains")
	}
	w.AdvanceDays(3)
	for _, e := range w.Events() {
		for _, apex := range domains {
			if e.Apex == apex {
				t.Fatalf("multi-CDN site %s churned: %+v", apex, e)
			}
		}
	}
}
