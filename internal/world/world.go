package world

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync/atomic"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dnsserver"
	"rrdps/internal/dnszone"
	"rrdps/internal/dps"
	"rrdps/internal/httpsim"
	"rrdps/internal/ipspace"
	"rrdps/internal/multicdn"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
	"rrdps/internal/website"
)

// World is a fully wired simulated Internet.
type World struct {
	cfg Config

	Clock    *simtime.Simulated
	Net      *netsim.Network
	Registry *ipspace.Registry
	Alloc    *ipspace.Allocator

	rootAddrs  []netip.Addr
	rootZone   *dnszone.Zone
	rootServer *dnsserver.Server
	tldServer  *dnsserver.Server
	tldZones   map[string]*dnszone.Zone

	hostingServer *dnsserver.Server
	hostingNS     []dnsmsg.Name

	providers map[dps.ProviderKey]*dps.Provider
	cedexis   *multicdn.Manager
	multiCDN  map[dnsmsg.Name]bool

	sites      []*website.Site
	siteByApex map[dnsmsg.Name]*website.Site
	// originSpaces are the ISP prefixes origins are allocated from; the
	// certificate-scanning vector sweeps them.
	originSpaces []netip.Prefix

	rng *rand.Rand
	day int

	// pausedUntil schedules RESUME days for paused sites.
	pausedUntil map[dnsmsg.Name]int

	events []Event
}

// registrar implements website.Registrar over the TLD zones.
type registrar struct{ w *World }

// SetDelegation implements website.Registrar.
func (r registrar) SetDelegation(apex dnsmsg.Name, hosts []dnsmsg.Name) error {
	labels := apex.Labels()
	if len(labels) < 2 {
		return fmt.Errorf("world: cannot delegate %q", apex)
	}
	tld := labels[len(labels)-1]
	zone, ok := r.w.tldZones[tld]
	if !ok {
		return fmt.Errorf("world: no TLD zone %q for %s", tld, apex)
	}
	rrs := make([]dnsmsg.RR, len(hosts))
	for i, h := range hosts {
		rrs[i] = dnsmsg.NewNS(apex, website.DefaultNSTTL, h)
	}
	return zone.Set(apex, dnsmsg.TypeNS, rrs...)
}

// New builds a world from cfg. Building is deterministic in cfg.Seed.
func New(cfg Config) *World {
	cfg.validate()
	w := &World{
		cfg:         cfg,
		Clock:       simtime.NewSimulated(),
		Registry:    ipspace.NewRegistry(),
		Alloc:       ipspace.NewAllocator(netip.MustParseAddr("20.0.0.0")),
		tldZones:    make(map[string]*dnszone.Zone),
		providers:   make(map[dps.ProviderKey]*dps.Provider),
		siteByApex:  make(map[dnsmsg.Name]*website.Site),
		pausedUntil: make(map[dnsmsg.Name]int),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	netCfg := netsim.Config{Clock: w.Clock}
	if cfg.PacketLossRate > 0 {
		netCfg.LossRate = cfg.PacketLossRate
		netCfg.Rand = rand.New(rand.NewSource(cfg.Seed + 1))
	}
	w.Net = netsim.New(netCfg)
	if cfg.Faults.Enabled() {
		faults := cfg.Faults
		if faults.Seed == 0 {
			faults.Seed = cfg.Seed + 9
		}
		w.Net.SetFaults(faults)
	}

	w.buildDNSBackbone()
	w.buildProviders()
	w.buildMultiCDN()
	w.buildHosting()
	w.buildSites()
	return w
}

// buildMultiCDN stands up the Cedexis-style front-end over two of the CDN
// pool providers.
func (w *World) buildMultiCDN() {
	w.multiCDN = make(map[dnsmsg.Name]bool)
	if w.cfg.MultiCDNRate <= 0 {
		return
	}
	w.cedexis = multicdn.New(multicdn.Config{
		Network:  w.Net,
		Alloc:    w.Alloc,
		Registry: w.Registry,
		Rand:     rand.New(rand.NewSource(w.cfg.Seed + 7)),
		Providers: []*dps.Provider{
			w.providers[dps.Fastly],
			w.providers[dps.Cloudfront],
		},
	})
	w.delegateInfra(multicdn.Apex, w.cedexis.NS())
}

// buildDNSBackbone creates the root and TLD zones and servers.
func (w *World) buildDNSBackbone() {
	w.rootZone = dnszone.New("", dnsmsg.SOAData{MName: "a.root-servers.net", RName: "nstld.verisign-grs.com", Serial: 1, Minimum: 300})
	w.rootServer = dnsserver.New(dnsserver.Config{Name: "root"})
	w.rootServer.AddZone(w.rootZone)
	w.tldServer = dnsserver.New(dnsserver.Config{Name: "gtld"})

	// TLD set: everything the alexa generator emits plus the TLDs of
	// provider infrastructure domains.
	tldSet := map[string]bool{}
	for _, tld := range alexa.TLDs() {
		tldSet[tld] = true
	}
	for _, p := range dps.Profiles() {
		labels := p.InfraApex.Labels()
		tldSet[labels[len(labels)-1]] = true
	}

	tlds := make([]string, 0, len(tldSet))
	for tld := range tldSet {
		tlds = append(tlds, tld)
	}
	sort.Strings(tlds)

	// Two root servers, two TLD servers (all TLD zones co-hosted, like
	// the gTLD constellations).
	for i := 0; i < 2; i++ {
		addr := w.Alloc.NextAddr()
		w.rootAddrs = append(w.rootAddrs, addr)
		host := dnsmsg.MustParseName(fmt.Sprintf("%c.root-servers.net", 'a'+i))
		w.rootZone.MustAdd(dnsmsg.NewNS("", website.DefaultNSTTL, host))
		w.rootZone.MustAdd(dnsmsg.NewA(host, website.DefaultNSTTL, addr))
		w.Net.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS},
			[]netsim.Region{netsim.RegionVirginia, netsim.RegionFrankfurt}[i], w.rootServer)
	}
	gtldHosts := make([]dnsmsg.Name, 2)
	for i := 0; i < 2; i++ {
		addr := w.Alloc.NextAddr()
		gtldHosts[i] = dnsmsg.MustParseName(fmt.Sprintf("%c.gtld-servers.net", 'a'+i))
		w.rootZone.MustAdd(dnsmsg.NewA(gtldHosts[i], website.DefaultNSTTL, addr))
		w.Net.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS},
			[]netsim.Region{netsim.RegionVirginia, netsim.RegionTokyo}[i], w.tldServer)
	}
	for _, tld := range tlds {
		zone := dnszone.New(dnsmsg.MustParseName(tld), dnsmsg.SOAData{
			MName: "a.gtld-servers.net", RName: "nstld.verisign-grs.com", Serial: 1, Minimum: 300,
		})
		w.tldZones[tld] = zone
		w.tldServer.AddZone(zone)
		for _, host := range gtldHosts {
			w.rootZone.MustAdd(dnsmsg.NewNS(dnsmsg.MustParseName(tld), website.DefaultNSTTL, host))
		}
	}
}

// delegateInfra wires an infrastructure apex (provider or hosting domain)
// into its TLD with glue.
func (w *World) delegateInfra(apex dnsmsg.Name, ns map[dnsmsg.Name]netip.Addr) {
	labels := apex.Labels()
	tld := labels[len(labels)-1]
	zone, ok := w.tldZones[tld]
	if !ok {
		panic(fmt.Sprintf("world: no TLD zone %q for infra %s", tld, apex))
	}
	hosts := make([]dnsmsg.Name, 0, len(ns))
	for h := range ns {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, h := range hosts {
		zone.MustAdd(dnsmsg.NewNS(apex, website.DefaultNSTTL, h))
		zone.MustAdd(dnsmsg.NewA(h, website.DefaultNSTTL, ns[h]))
	}
}

// buildProviders instantiates the eleven Table II providers and delegates
// their infrastructure zones.
func (w *World) buildProviders() {
	// A shared-hosting ISP space for the footnote-6 edges of Akamai and
	// CDNetworks.
	var sharedAlloc func() netip.Addr
	if w.cfg.SharedEdgesPerProvider > 0 {
		const sharedASN = ipspace.ASN(64550)
		w.Registry.AddAS(sharedASN, "shared-hosting-isp")
		prefix := w.Alloc.NextPrefix(22)
		w.Registry.MustAnnounce(sharedASN, prefix)
		next := 0
		sharedAlloc = func() netip.Addr {
			a := ipspace.NthAddr(prefix, next)
			next++
			return a
		}
	}

	for i, profile := range dps.Profiles() {
		cfg := dps.Config{
			Profile:         profile,
			Network:         w.Net,
			Clock:           w.Clock,
			Alloc:           w.Alloc,
			Registry:        w.Registry,
			Rand:            rand.New(rand.NewSource(w.cfg.Seed + 100 + int64(i))),
			EdgeCount:       w.cfg.EdgesPerProvider,
			NameserverCount: w.cfg.NameserversPerProvider,
			PurgeDelayFree:  w.cfg.PurgeDelayFree,
			PurgeDelayPaid:  w.cfg.PurgeDelayPaid,
			Scrubber:        w.cfg.Scrubber,
		}
		if sharedAlloc != nil && (profile.Key == dps.Akamai || profile.Key == dps.CDNetworks) {
			cfg.SharedEdgeAlloc = sharedAlloc
			cfg.SharedEdgeCount = w.cfg.SharedEdgesPerProvider
		}
		p := dps.New(cfg)
		w.providers[profile.Key] = p
		w.delegateInfra(p.InfraApex(), p.InfraNS())
		w.installNSRateLimit(p)
	}
}

// installNSRateLimit applies the configured response rate limiter to every
// nameserver endpoint the provider operates: the NS-rerouting pool and the
// infrastructure nameservers. Root, TLD, and hosting servers stay
// unlimited — the layered defense throttles the DPS fleet only.
func (w *World) installNSRateLimit(p *dps.Provider) {
	if !w.cfg.NSRateLimit.Enabled() {
		return
	}
	for _, host := range p.NSPool() {
		if addr, ok := p.NSPoolAddr(host); ok {
			w.Net.SetLimit(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}, w.cfg.NSRateLimit)
		}
	}
	for _, addr := range p.InfraNS() {
		w.Net.SetLimit(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}, w.cfg.NSRateLimit)
	}
}

// buildHosting creates the basic DNS hosting provider that serves sites'
// own zones.
func (w *World) buildHosting() {
	w.hostingServer = dnsserver.New(dnsserver.Config{Name: "webhost"})
	apex := dnsmsg.MustParseName("webhost.net")
	zone := dnszone.New(apex, dnsmsg.SOAData{MName: "ns1.webhost.net", RName: "hostmaster.webhost.net", Serial: 1, Minimum: 300})
	ns := make(map[dnsmsg.Name]netip.Addr)
	// The hosting provider announces its own small AS.
	const hostingASN = ipspace.ASN(64496)
	w.Registry.AddAS(hostingASN, "webhost")
	prefix := w.Alloc.NextPrefix(24)
	w.Registry.MustAnnounce(hostingASN, prefix)
	for i := 0; i < 2; i++ {
		host := apex.Child(fmt.Sprintf("ns%d", i+1))
		addr := ipspace.NthAddr(prefix, i)
		ns[host] = addr
		w.hostingNS = append(w.hostingNS, host)
		zone.MustAdd(dnsmsg.NewNS(apex, website.DefaultNSTTL, host))
		zone.MustAdd(dnsmsg.NewA(host, website.DefaultNSTTL, addr))
		w.Net.Register(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS},
			[]netsim.Region{netsim.RegionOregon, netsim.RegionLondon}[i], w.hostingServer)
	}
	w.hostingServer.AddZone(zone)
	w.delegateInfra(apex, ns)
}

// buildSites generates the ranked population, applies initial adoption, and
// wires each site.
func (w *World) buildSites() {
	domains := alexa.TopList(w.cfg.NumSites, rand.New(rand.NewSource(w.cfg.Seed+2)))

	// Origin addresses come from a handful of ISP ASes.
	type ispSpace struct {
		prefix netip.Prefix
		used   int
	}
	var isps []*ispSpace
	for i := 0; i < 4; i++ {
		asn := ipspace.ASN(64600 + i)
		w.Registry.AddAS(asn, fmt.Sprintf("isp%d", i+1))
		prefix := w.Alloc.NextPrefix(14)
		w.Registry.MustAnnounce(asn, prefix)
		isps = append(isps, &ispSpace{prefix: prefix})
		w.originSpaces = append(w.originSpaces, prefix)
	}
	ispIdx := 0
	newOriginAddr := func() netip.Addr {
		isp := isps[ispIdx%len(isps)]
		ispIdx++
		addr := ipspace.NthAddr(isp.prefix, isp.used)
		isp.used++
		return addr
	}

	infra := &website.Infra{
		Network:       w.Net,
		Clock:         w.Clock,
		Registrar:     registrar{w},
		Hosting:       w.hostingServer,
		HostingNS:     w.hostingNS,
		Providers:     w.providers,
		NewOriginAddr: newOriginAddr,
	}

	regions := netsim.AllRegions()
	for _, d := range domains {
		region := regions[w.rng.Intn(len(regions))]
		page := httpsim.Page{
			Title: fmt.Sprintf("%s — Home", d.Apex),
			Meta: map[string]string{
				"description": fmt.Sprintf("welcome to %s (rank %d)", d.Apex, d.Rank),
				"generator":   fmt.Sprintf("sitegen/%d.%d", 1+d.Rank%3, d.Rank%10),
			},
			Body: fmt.Sprintf("<h1>%s</h1>", d.Apex),
		}
		site, err := website.NewExposed(infra, d, region, page, w.rollExposure())
		if err != nil {
			panic(fmt.Sprintf("world: building %s: %v", d.Apex, err))
		}
		if w.rng.Float64() < w.cfg.DynamicMetaRate {
			// The counter is atomic: concurrent HTML verifications may hit
			// the same origin, and the nonce only needs to differ per
			// request, not be sequential.
			var seq atomic.Int64
			site.Origin().SetDynamicMeta(func(httpsim.RequestContext) map[string]string {
				return map[string]string{"served-at": fmt.Sprintf("t%08d", seq.Add(1))}
			})
		}
		w.sites = append(w.sites, site)
		w.siteByApex[d.Apex] = site
	}

	// Multi-CDN front-end customers (excluded from normal churn).
	if w.cedexis != nil {
		for _, site := range w.sites {
			if w.rng.Float64() >= w.cfg.MultiCDNRate {
				continue
			}
			apex := site.Domain().Apex
			token, err := w.cedexis.Enroll(apex, site.OriginAddr())
			if err != nil {
				panic(fmt.Sprintf("world: multicdn enroll %s: %v", apex, err))
			}
			if err := site.SetExternalAlias(token); err != nil {
				panic(fmt.Sprintf("world: multicdn alias %s: %v", apex, err))
			}
			w.multiCDN[apex] = true
		}
	}

	// Initial adoption.
	cutoff := w.cfg.topRankCutoff()
	restRate := w.cfg.restAdoptionRate()
	for _, site := range w.sites {
		if w.multiCDN[site.Domain().Apex] {
			continue
		}
		rate := restRate
		if site.Domain().Rank <= cutoff {
			rate = w.cfg.AdoptionTopRate
		}
		if w.rng.Float64() >= rate {
			continue
		}
		key := w.pickProvider()
		method := w.pickMethod(key)
		plan := w.pickPlan()
		if err := site.Join(key, method, plan); err != nil {
			panic(fmt.Sprintf("world: initial join %s -> %s: %v", site.Domain().Apex, key, err))
		}
		if w.rng.Float64() < w.cfg.OriginRestrictedRate {
			if err := site.RestrictToProviderEdges(); err != nil {
				panic(fmt.Sprintf("world: restricting %s: %v", site.Domain().Apex, err))
			}
		}
	}
}

// MultiCDNDomains returns the apexes fronted by the multi-CDN service.
func (w *World) MultiCDNDomains() []dnsmsg.Name {
	out := make([]dnsmsg.Name, 0, len(w.multiCDN))
	for apex := range w.multiCDN {
		out = append(out, apex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rollExposure samples a site's Table I attack surface.
func (w *World) rollExposure() website.Exposure {
	rates := w.cfg.Exposures
	var exp website.Exposure
	if w.rng.Float64() < rates.Subdomain {
		labels := []string{"dev", "staging", "ftp", "origin", "old"}
		exp.Subdomains = []string{labels[w.rng.Intn(len(labels))]}
	}
	exp.MailRecord = w.rng.Float64() < rates.MailRecord
	exp.BodyLeak = w.rng.Float64() < rates.BodyLeak
	exp.SensitiveFile = w.rng.Float64() < rates.SensitiveFile
	exp.Certificate = w.rng.Float64() < rates.Certificate
	exp.Pingback = w.rng.Float64() < rates.Pingback
	return exp
}

// OriginSpaces returns the ISP prefixes origin addresses come from.
func (w *World) OriginSpaces() []netip.Prefix {
	return append([]netip.Prefix(nil), w.originSpaces...)
}

// pickProvider samples from the normalized share vector.
func (w *World) pickProvider() dps.ProviderKey {
	total := 0.0
	for _, share := range w.cfg.ProviderShares {
		total += share
	}
	v := w.rng.Float64() * total
	for _, key := range dps.AllKeys() {
		share, ok := w.cfg.ProviderShares[key]
		if !ok {
			continue
		}
		if v < share {
			return key
		}
		v -= share
	}
	return dps.Cloudflare
}

// pickMethod selects a rerouting method consistent with the provider's
// offerings and the paper's observed mix.
func (w *World) pickMethod(key dps.ProviderKey) dps.Rerouting {
	profile, _ := dps.ProfileFor(key)
	switch key {
	case dps.Cloudflare:
		if w.rng.Float64() < w.cfg.CloudflareNSShare {
			return dps.ReroutingNS
		}
		return dps.ReroutingCNAME
	case dps.Akamai:
		if w.rng.Float64() < w.cfg.AkamaiAShare {
			return dps.ReroutingA
		}
		return dps.ReroutingCNAME
	default:
		return profile.Methods[0]
	}
}

func (w *World) pickPlan() dps.Plan {
	if w.rng.Float64() < w.cfg.PaidPlanRate {
		return dps.PlanPaid
	}
	return dps.PlanFree
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Day returns the current simulation day (0-based).
func (w *World) Day() int { return w.day }

// RootAddrs returns the root nameserver addresses for resolvers.
func (w *World) RootAddrs() []netip.Addr {
	return append([]netip.Addr(nil), w.rootAddrs...)
}

// Sites returns all sites in rank order.
func (w *World) Sites() []*website.Site {
	return append([]*website.Site(nil), w.sites...)
}

// Site returns the site for apex.
func (w *World) Site(apex dnsmsg.Name) (*website.Site, bool) {
	s, ok := w.siteByApex[apex]
	return s, ok
}

// Provider returns the running provider for key.
func (w *World) Provider(key dps.ProviderKey) (*dps.Provider, bool) {
	p, ok := w.providers[key]
	return p, ok
}

// Providers returns all running providers keyed by provider key.
func (w *World) Providers() map[dps.ProviderKey]*dps.Provider {
	out := make(map[dps.ProviderKey]*dps.Provider, len(w.providers))
	for k, v := range w.providers {
		out[k] = v
	}
	return out
}

// NewResolver creates a recursive resolver at the given vantage region,
// attached to a fresh address.
func (w *World) NewResolver(region netsim.Region) *dnsresolver.Resolver {
	return dnsresolver.New(dnsresolver.Config{
		Network: w.Net,
		Clock:   w.Clock,
		Addr:    w.Alloc.NextAddr(),
		Region:  region,
		Roots:   w.rootAddrs,
		Rand:    rand.New(rand.NewSource(w.cfg.Seed + 1000 + int64(region))),
	})
}

// NewHTTPClient creates an HTTP client at the given vantage region.
func (w *World) NewHTTPClient(region netsim.Region) *httpsim.Client {
	return httpsim.NewClient(w.Net, w.Alloc.NextAddr(), region)
}
