package world

import (
	"testing"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

func BenchmarkWorldBuild2k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := PaperConfig(2000)
		cfg.Seed = int64(i)
		New(cfg)
	}
}

func BenchmarkAdvanceDay(b *testing.B) {
	w := New(smallConfig(2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AdvanceDay()
	}
}

func BenchmarkResolveThroughWorld(b *testing.B) {
	w := New(smallConfig(1000))
	res := w.NewResolver(netsim.RegionOregon)
	sites := w.Sites()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := sites[i%len(sites)]
		if _, err := res.Resolve(site.WWW(), dnsmsg.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLargeWorldSmoke builds a 20k-site world and runs one collection-scale
// resolution sweep; skipped in -short mode.
func TestLargeWorldSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large world smoke test skipped in -short mode")
	}
	cfg := PaperConfig(20_000)
	cfg.Seed = 99
	w := New(cfg)
	if got := len(w.Sites()); got != 20_000 {
		t.Fatalf("sites = %d", got)
	}
	res := w.NewResolver(netsim.RegionLondon)
	failures := 0
	for i, s := range w.Sites() {
		if i%40 != 0 { // sample 500 sites
			continue
		}
		if _, err := res.Resolve(s.WWW(), dnsmsg.TypeA); err != nil {
			failures++
		}
	}
	if failures > 0 {
		t.Fatalf("%d resolution failures in a healthy world", failures)
	}
	w.AdvanceDays(3)
}
