package world

import (
	"math/rand"
	"net/netip"
	"testing"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
)

func smallConfig(n int) Config {
	cfg := PaperConfig(n)
	cfg.Seed = 7
	return cfg
}

func TestBuildDeterministic(t *testing.T) {
	a := New(smallConfig(200))
	b := New(smallConfig(200))
	sa, sb := a.Sites(), b.Sites()
	if len(sa) != len(sb) {
		t.Fatalf("site counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Domain() != sb[i].Domain() {
			t.Fatalf("site %d domain differs", i)
		}
		ka, _, _ := sa[i].Provider()
		kb, _, _ := sb[i].Provider()
		if ka != kb {
			t.Fatalf("site %d provider differs: %q vs %q", i, ka, kb)
		}
		if sa[i].OriginAddr() != sb[i].OriginAddr() {
			t.Fatalf("site %d origin differs", i)
		}
	}
	a.AdvanceDays(5)
	b.AdvanceDays(5)
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event logs differ in length: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestInitialAdoptionNearTarget(t *testing.T) {
	w := New(smallConfig(3000))
	adopted := 0
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key != "" {
			adopted++
		}
	}
	rate := float64(adopted) / 3000
	if rate < 0.10 || rate > 0.20 {
		t.Fatalf("adoption rate = %.3f, want ~0.1485", rate)
	}
}

func TestCloudflareDominatesShares(t *testing.T) {
	w := New(smallConfig(3000))
	counts := make(map[dps.ProviderKey]int)
	total := 0
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key != "" {
			counts[key]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no adopters")
	}
	cf := float64(counts[dps.Cloudflare]) / float64(total)
	if cf < 0.70 || cf > 0.88 {
		t.Fatalf("cloudflare share = %.3f, want ~0.79", cf)
	}
}

func TestResolveUnprotectedSiteEndToEnd(t *testing.T) {
	w := New(smallConfig(200))
	res := w.NewResolver(netsim.RegionOregon)
	var target *website.Site
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key == "" {
			target = s
			break
		}
	}
	if target == nil {
		t.Skip("no unprotected site in sample")
	}
	got, err := res.Resolve(target.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("resolve %s: %v", target.WWW(), err)
	}
	addrs := got.Addrs()
	if len(addrs) != 1 || addrs[0] != target.OriginAddr() {
		t.Fatalf("resolved %v, want origin %v", addrs, target.OriginAddr())
	}
}

func findSite(w *World, key dps.ProviderKey, method dps.Rerouting) *website.Site {
	for _, s := range w.Sites() {
		k, m, _ := s.Provider()
		if k == key && m == method {
			return s
		}
	}
	return nil
}

func TestResolveNSProtectedSiteEndToEnd(t *testing.T) {
	w := New(smallConfig(400))
	res := w.NewResolver(netsim.RegionLondon)
	site := findSite(w, dps.Cloudflare, dps.ReroutingNS)
	if site == nil {
		t.Fatal("no cloudflare NS site in sample")
	}
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	addrs := got.Addrs()
	if len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}
	asn, ok := w.Registry.ASNFor(addrs[0])
	if !ok || asn != 13335 {
		t.Fatalf("resolved %v in %v, want Cloudflare AS13335", addrs[0], asn)
	}
	// NS records point at cloudflare hosts.
	nsRes, err := res.Resolve(site.Domain().Apex, dnsmsg.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	hosts := nsRes.NSHosts()
	if len(hosts) == 0 || !hosts[0].ContainsSubstring("cloudflare") {
		t.Fatalf("NS hosts = %v", hosts)
	}
}

func TestResolveCNAMEProtectedSiteEndToEnd(t *testing.T) {
	w := New(smallConfig(1500))
	res := w.NewResolver(netsim.RegionSingapore)
	site := findSite(w, dps.Incapsula, dps.ReroutingCNAME)
	if site == nil {
		t.Skip("no incapsula site in sample")
	}
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	targets := got.CNAMETargets()
	if len(targets) != 1 || !targets[0].ContainsSubstring("incapdns") {
		t.Fatalf("chain = %v", targets)
	}
	addrs := got.Addrs()
	if len(addrs) != 1 || !w.Registry.Contains(19551, addrs[0]) {
		t.Fatalf("addrs = %v, want Incapsula edge", addrs)
	}
}

func TestPausedSiteResolvesToOrigin(t *testing.T) {
	w := New(smallConfig(400))
	site := findSite(w, dps.Cloudflare, dps.ReroutingNS)
	if site == nil {
		t.Fatal("no cloudflare NS site")
	}
	if err := site.Pause(); err != nil {
		t.Fatal(err)
	}
	res := w.NewResolver(netsim.RegionOregon)
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if addrs := got.Addrs(); len(addrs) != 1 || addrs[0] != site.OriginAddr() {
		t.Fatalf("paused resolution = %v, want origin %v", addrs, site.OriginAddr())
	}
}

// TestResidualResolutionEndToEnd drives the full attack: a Cloudflare NS
// customer switches to Incapsula; public resolution now shows Incapsula,
// but querying the old Cloudflare nameserver directly still yields the
// origin address.
func TestResidualResolutionEndToEnd(t *testing.T) {
	w := New(smallConfig(400))
	site := findSite(w, dps.Cloudflare, dps.ReroutingNS)
	if site == nil {
		t.Fatal("no cloudflare NS site")
	}
	origin := site.OriginAddr()
	if err := site.Switch(dps.Incapsula, dps.ReroutingCNAME, dps.PlanFree, true); err != nil {
		t.Fatal(err)
	}

	// Public view: Incapsula.
	res := w.NewResolver(netsim.RegionOregon)
	got, err := res.Resolve(site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if addrs := got.Addrs(); len(addrs) != 1 || !w.Registry.Contains(19551, addrs[0]) {
		t.Fatalf("public resolution = %v, want Incapsula edge", addrs)
	}

	// Attacker view: query a Cloudflare pool nameserver directly.
	cf, _ := w.Provider(dps.Cloudflare)
	pool := cf.NSPool()
	addr, _ := cf.NSPoolAddr(pool[0])
	client := dnsresolver.NewClient(w.Net, netip.MustParseAddr("198.51.100.66"), netsim.RegionTokyo, rand.New(rand.NewSource(1)))
	resp, err := client.Exchange(addr, site.WWW(), dnsmsg.TypeA)
	if err != nil {
		t.Fatalf("direct query: %v", err)
	}
	as := resp.AnswersOfType(dnsmsg.TypeA)
	if len(as) != 1 || as[0].Data.(dnsmsg.AData).Addr != origin {
		t.Fatalf("residual answer = %v, want origin %v", as, origin)
	}
}

func TestAdvanceDayGeneratesEvents(t *testing.T) {
	cfg := smallConfig(800)
	// Crank rates up so a short run produces every behaviour.
	cfg.JoinRate = 0.02
	cfg.LeaveRate = 0.03
	cfg.PauseRate = 0.05
	cfg.SwitchRate = 0.02
	w := New(cfg)
	w.AdvanceDays(20)

	kinds := make(map[BehaviorKind]int)
	for _, e := range w.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []BehaviorKind{BehaviorJoin, BehaviorLeave, BehaviorPause, BehaviorResume, BehaviorSwitch} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in 20 days (got %v)", k, kinds)
		}
	}
	if w.Day() != 20 {
		t.Fatalf("Day = %d", w.Day())
	}
}

func TestEventsConsistentWithState(t *testing.T) {
	cfg := smallConfig(500)
	cfg.LeaveRate = 0.05
	w := New(cfg)
	w.AdvanceDays(10)
	for _, e := range w.EventsOfKind(BehaviorLeave) {
		site, ok := w.Site(e.Apex)
		if !ok {
			t.Fatalf("event for unknown site %s", e.Apex)
		}
		_ = site
		if e.From == "" {
			t.Fatalf("LEAVE event without From: %+v", e)
		}
	}
	for _, e := range w.EventsOfKind(BehaviorSwitch) {
		if e.From == "" || e.To == "" || e.From == e.To {
			t.Fatalf("bad SWITCH event: %+v", e)
		}
	}
}

func TestPauseEventuallyResumes(t *testing.T) {
	cfg := smallConfig(500)
	cfg.PauseRate = 0.08
	cfg.LeaveRate = 0 // isolate pause/resume
	cfg.SwitchRate = 0
	cfg.JoinRate = 0
	w := New(cfg)
	w.AdvanceDays(50)
	pauses := len(w.EventsOfKind(BehaviorPause))
	resumes := len(w.EventsOfKind(BehaviorResume))
	if pauses == 0 {
		t.Fatal("no pauses generated")
	}
	if resumes == 0 || resumes > pauses {
		t.Fatalf("resumes = %d, pauses = %d", resumes, pauses)
	}
}

func TestCloudflareNSShareWithinCustomers(t *testing.T) {
	w := New(smallConfig(3000))
	ns, cname := 0, 0
	for _, s := range w.Sites() {
		key, method, _ := s.Provider()
		if key != dps.Cloudflare {
			continue
		}
		switch method {
		case dps.ReroutingNS:
			ns++
		case dps.ReroutingCNAME:
			cname++
		}
	}
	if ns+cname == 0 {
		t.Fatal("no cloudflare customers")
	}
	share := float64(ns) / float64(ns+cname)
	if share < 0.80 || share > 0.97 {
		t.Fatalf("NS share = %.3f, want ~0.90", share)
	}
}

func TestIPChangeHygieneRecorded(t *testing.T) {
	cfg := smallConfig(600)
	cfg.JoinRate = 0.05
	w := New(cfg)
	w.AdvanceDays(15)
	joins := len(w.EventsOfKind(BehaviorJoin))
	changes := len(w.EventsOfKind(BehaviorIPChange))
	if joins < 20 {
		t.Fatalf("too few joins to assess hygiene: %d", joins)
	}
	ratio := float64(changes) / float64(joins)
	// Overall unchanged rate ~58.6% -> change rate ~41.4%.
	if ratio < 0.2 || ratio > 0.65 {
		t.Fatalf("IP-change ratio = %.3f (%d/%d), want ~0.41", ratio, changes, joins)
	}
}
