package world

import (
	"fmt"
	"sort"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/website"
)

// BehaviorKind is one of the Table IV usage behaviours, recorded as ground
// truth so the measurement pipeline can be validated against what really
// happened.
type BehaviorKind int

// Usage behaviours (Table IV).
const (
	BehaviorJoin BehaviorKind = iota + 1
	BehaviorLeave
	BehaviorPause
	BehaviorResume
	BehaviorSwitch
	// BehaviorIPChange is the §IV-C best-practice origin change; not a
	// Table IV behaviour but ground truth the Table V experiment needs.
	BehaviorIPChange
)

// String implements fmt.Stringer.
func (k BehaviorKind) String() string {
	switch k {
	case BehaviorJoin:
		return "JOIN"
	case BehaviorLeave:
		return "LEAVE"
	case BehaviorPause:
		return "PAUSE"
	case BehaviorResume:
		return "RESUME"
	case BehaviorSwitch:
		return "SWITCH"
	case BehaviorIPChange:
		return "IPCHANGE"
	default:
		return fmt.Sprintf("BEHAVIOR%d", int(k))
	}
}

// Event is one ground-truth behaviour occurrence.
type Event struct {
	Day  int
	Apex dnsmsg.Name
	Kind BehaviorKind
	// From/To are provider keys where applicable ("" otherwise).
	From dps.ProviderKey
	To   dps.ProviderKey
}

// Events returns a copy of the ground-truth event log.
func (w *World) Events() []Event {
	return append([]Event(nil), w.events...)
}

// EventsOfKind filters the event log.
func (w *World) EventsOfKind(kind BehaviorKind) []Event {
	var out []Event
	for _, e := range w.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func (w *World) record(kind BehaviorKind, apex dnsmsg.Name, from, to dps.ProviderKey) {
	w.events = append(w.events, Event{Day: w.day, Apex: apex, Kind: kind, From: from, To: to})
}

// samplePauseDays draws a pause duration calibrated to Fig. 5: roughly
// half the pauses end within a day, ~70% within five days, and a long tail
// stretches for weeks. Incapsula customers pause slightly shorter.
func (w *World) samplePauseDays(key dps.ProviderKey) int {
	v := w.rng.Float64()
	var days int
	switch {
	case v < 0.48:
		days = 1
	case v < 0.56:
		days = 2
	case v < 0.63:
		days = 3
	case v < 0.67:
		days = 4
	case v < 0.70:
		days = 5
	default:
		// Geometric tail beyond five days.
		days = 6
		for days < 35 && w.rng.Float64() > 0.18 {
			days++
		}
	}
	if key == dps.Incapsula && days > 1 {
		days-- // Fig. 5: Incapsula pause periods run slightly shorter
	}
	return days
}

// pauseCapable reports whether the provider exposes a pause (DNS-only)
// mode; the paper only ever observes PAUSE at Cloudflare and Incapsula.
func pauseCapable(key dps.ProviderKey) bool {
	return key == dps.Cloudflare || key == dps.Incapsula
}

// maybeChangeOriginIP applies the per-provider IP hygiene of Table V after
// a JOIN or RESUME.
func (w *World) maybeChangeOriginIP(site *website.Site, key dps.ProviderKey) {
	unchanged, ok := w.cfg.UnchangedRates[key]
	if !ok {
		unchanged = 0.6
	}
	if w.rng.Float64() < unchanged {
		return
	}
	if _, err := site.ChangeOriginIP(); err != nil {
		panic(fmt.Sprintf("world: changing origin IP of %s: %v", site.Domain().Apex, err))
	}
	w.record(BehaviorIPChange, site.Domain().Apex, key, key)
}

// AdvanceDay rolls the administrators' daily behaviour dice for every
// site, runs provider purge schedulers, and moves the clock forward one
// day. It returns the events generated that day.
func (w *World) AdvanceDay() []Event {
	before := len(w.events)
	if w.cedexis != nil {
		// The front-end re-optimizes CDN selection daily.
		w.cedexis.FlipAll(0.5)
	}
	for _, site := range w.sites {
		if w.multiCDN[site.Domain().Apex] {
			continue
		}
		w.stepSite(site)
	}
	w.day++
	w.Clock.AdvanceDays(1)
	// Providers sweep stale records at end of day, so a deadline of
	// "terminated + N days" is honoured on day N exactly.
	keys := dps.AllKeys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		if p, ok := w.providers[key]; ok {
			p.PurgeExpired()
		}
	}
	return append([]Event(nil), w.events[before:]...)
}

// AdvanceDays runs n daily steps.
func (w *World) AdvanceDays(n int) {
	for i := 0; i < n; i++ {
		w.AdvanceDay()
	}
}

// effectiveRates returns the day's behaviour hazards: the configured
// base rates scaled by every churn wave covering the current world day.
// With no waves configured this returns the base rates unchanged, so a
// wave-free world rolls exactly the same dice as before waves existed.
func (w *World) effectiveRates() (join, leave, pause, switchRate float64) {
	join, leave, pause, switchRate = w.cfg.JoinRate, w.cfg.LeaveRate, w.cfg.PauseRate, w.cfg.SwitchRate
	for _, wave := range w.cfg.Waves {
		if !wave.active(w.day) {
			continue
		}
		if wave.JoinMult > 0 {
			join *= wave.JoinMult
		}
		if wave.LeaveMult > 0 {
			leave *= wave.LeaveMult
		}
		if wave.PauseMult > 0 {
			pause *= wave.PauseMult
		}
		if wave.SwitchMult > 0 {
			switchRate *= wave.SwitchMult
		}
	}
	return join, leave, pause, switchRate
}

// stepSite rolls one site's daily behaviour.
func (w *World) stepSite(site *website.Site) {
	apex := site.Domain().Apex
	key, _, paused := site.Provider()
	joinRate, leaveRate, pauseRate, switchRate := w.effectiveRates()

	switch {
	case key == "":
		if w.rng.Float64() < joinRate {
			w.doJoin(site)
			return
		}
		if w.rng.Float64() < w.cfg.UnprotectedIPChangeRate {
			if _, err := site.ChangeOriginIP(); err != nil {
				panic(fmt.Sprintf("world: migrating %s: %v", apex, err))
			}
			w.record(BehaviorIPChange, apex, "", "")
		}
	case paused:
		if until, ok := w.pausedUntil[apex]; ok && w.day >= until {
			delete(w.pausedUntil, apex)
			if err := site.Resume(); err != nil {
				panic(fmt.Sprintf("world: resuming %s: %v", apex, err))
			}
			w.record(BehaviorResume, apex, key, key)
			w.maybeChangeOriginIP(site, key)
			return
		}
		// A paused site may still abandon the platform entirely.
		if w.rng.Float64() < leaveRate {
			w.doLeave(site, key)
			delete(w.pausedUntil, apex)
		}
	default: // protected, ON
		roll := w.rng.Float64()
		switch {
		case roll < leaveRate:
			w.doLeave(site, key)
		case roll < leaveRate+switchRate:
			w.doSwitch(site, key)
		case roll < leaveRate+switchRate+pauseRate && pauseCapable(key):
			if err := site.Pause(); err != nil {
				panic(fmt.Sprintf("world: pausing %s: %v", apex, err))
			}
			w.pausedUntil[apex] = w.day + w.samplePauseDays(key)
			w.record(BehaviorPause, apex, key, key)
		}
	}
}

func (w *World) doJoin(site *website.Site) {
	key := w.pickProvider()
	method := w.pickMethod(key)
	if err := site.Join(key, method, w.pickPlan()); err != nil {
		panic(fmt.Sprintf("world: joining %s -> %s: %v", site.Domain().Apex, key, err))
	}
	w.record(BehaviorJoin, site.Domain().Apex, "", key)
	w.maybeChangeOriginIP(site, key)
	if w.rng.Float64() < w.cfg.OriginRestrictedRate {
		if err := site.RestrictToProviderEdges(); err != nil {
			panic(fmt.Sprintf("world: restricting %s: %v", site.Domain().Apex, err))
		}
	}
}

func (w *World) doLeave(site *website.Site, from dps.ProviderKey) {
	notified := w.rng.Float64() < w.cfg.NotifiedLeaveRate
	w.maybePlantDecoy(site, notified)
	if err := site.Leave(notified); err != nil {
		panic(fmt.Sprintf("world: leaving %s: %v", site.Domain().Apex, err))
	}
	// Origins drop their edge ACL once unprotected.
	if err := site.RestrictToProviderEdges(); err != nil {
		panic(fmt.Sprintf("world: unrestricting %s: %v", site.Domain().Apex, err))
	}
	w.record(BehaviorLeave, site.Domain().Apex, from, "")
}

// maybePlantDecoy applies the §VI-B.2 countermeasure before a notified
// termination.
func (w *World) maybePlantDecoy(site *website.Site, notified bool) {
	if !notified || w.cfg.DecoyOnLeaveRate <= 0 {
		return
	}
	if w.rng.Float64() >= w.cfg.DecoyOnLeaveRate {
		return
	}
	if _, err := site.PlantDecoy(); err != nil {
		panic(fmt.Sprintf("world: planting decoy for %s: %v", site.Domain().Apex, err))
	}
}

func (w *World) doSwitch(site *website.Site, from dps.ProviderKey) {
	// Sample a destination provider different from the current one.
	to := from
	for attempts := 0; to == from && attempts < 16; attempts++ {
		to = w.pickProvider()
	}
	if to == from {
		return // share vector is degenerate; skip this switch
	}
	notified := w.rng.Float64() < w.cfg.NotifiedLeaveRate
	w.maybePlantDecoy(site, notified)
	if err := site.Switch(to, w.pickMethod(to), w.pickPlan(), notified); err != nil {
		panic(fmt.Sprintf("world: switching %s %s->%s: %v", site.Domain().Apex, from, to, err))
	}
	w.record(BehaviorSwitch, site.Domain().Apex, from, to)
	// Switching is typically NOT accompanied by an origin change (§IV-C.3
	// excludes SWITCH), which is exactly why residual resolution bites.
}
