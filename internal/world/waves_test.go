package world

import (
	"testing"

	"rrdps/internal/dps"
	"rrdps/internal/netsim"
)

// TestZeroWavesByteIdentical pins the wave mechanism's no-op guarantee:
// a config with no waves and one with an empty slice roll exactly the
// same dice as each other (and as every pre-wave world), producing an
// identical event log.
func TestZeroWavesByteIdentical(t *testing.T) {
	base := smallConfig(400)
	base.Waves = nil
	withEmpty := smallConfig(400)
	withEmpty.Waves = []ChurnWave{}

	a, b := New(base), New(withEmpty)
	a.AdvanceDays(15)
	b.AdvanceDays(15)
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event logs differ in length: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// TestWaveElevatesChurn drives a switch/leave wave through a window of
// days and checks the inside-wave daily event rate clearly exceeds the
// outside-wave rate.
func TestWaveElevatesChurn(t *testing.T) {
	cfg := smallConfig(1500)
	cfg.LeaveRate = 2e-3
	cfg.SwitchRate = 1e-3
	cfg.Waves = []ChurnWave{{StartDay: 10, Days: 5, LeaveMult: 12, SwitchMult: 12}}
	w := New(cfg)
	w.AdvanceDays(25)

	inside, outside := 0, 0
	for _, e := range w.Events() {
		if e.Kind != BehaviorLeave && e.Kind != BehaviorSwitch {
			continue
		}
		if e.Day >= 10 && e.Day < 15 {
			inside++
		} else {
			outside++
		}
	}
	insideRate := float64(inside) / 5
	outsideRate := float64(outside) / 20
	if outsideRate == 0 {
		if inside == 0 {
			t.Fatal("no churn events at all")
		}
	} else if insideRate < 3*outsideRate {
		t.Fatalf("inside rate %.2f/day not clearly above outside %.2f/day", insideRate, outsideRate)
	}
	if inside == 0 {
		t.Fatal("wave produced no churn events")
	}
}

// TestWaveMultiplierCompounding checks overlapping waves multiply and
// zero multipliers leave hazards untouched.
func TestWaveMultiplierCompounding(t *testing.T) {
	cfg := smallConfig(100)
	cfg.JoinRate, cfg.LeaveRate, cfg.PauseRate, cfg.SwitchRate = 0.1, 0.2, 0.3, 0.05
	cfg.Waves = []ChurnWave{
		{StartDay: 0, Days: 3, LeaveMult: 2},
		{StartDay: 2, Days: 2, LeaveMult: 3, JoinMult: 0.5},
	}
	w := New(cfg)

	near := func(got, want float64) bool {
		d := got - want
		return d < 1e-12 && d > -1e-12
	}
	w.day = 1 // only the first wave
	_, leave, pause, _ := w.effectiveRates()
	if !near(leave, 0.4) || !near(pause, 0.3) {
		t.Fatalf("day 1: leave=%v pause=%v, want 0.4/0.3", leave, pause)
	}
	w.day = 2 // both waves overlap
	join, leave, _, _ := w.effectiveRates()
	if !near(leave, 1.2) {
		t.Fatalf("day 2: leave=%v, want 1.2", leave)
	}
	if join != 0.05 {
		t.Fatalf("day 2: join=%v, want 0.05", join)
	}
	w.day = 4 // past both
	join, leave, _, sw := w.effectiveRates()
	if join != 0.1 || leave != 0.2 || sw != 0.05 {
		t.Fatalf("day 4: join=%v leave=%v switch=%v, want base rates", join, leave, sw)
	}
}

func TestWaveValidation(t *testing.T) {
	for name, wave := range map[string]ChurnWave{
		"zero days":     {StartDay: 1, Days: 0, LeaveMult: 2},
		"negative day":  {StartDay: -1, Days: 3},
		"negative mult": {StartDay: 0, Days: 3, SwitchMult: -2},
	} {
		cfg := smallConfig(50)
		cfg.Waves = []ChurnWave{wave}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

// TestNSRateLimitInstalled checks the limiter lands on provider NS pool
// and infrastructure nameserver endpoints but not on the DNS backbone.
func TestNSRateLimitInstalled(t *testing.T) {
	cfg := smallConfig(100)
	cfg.NSRateLimit = netsim.LimitConfig{PerSource: 5}
	w := New(cfg)

	cf, _ := w.Provider(dps.Cloudflare)
	pool := cf.NSPool()
	if len(pool) == 0 {
		t.Fatal("empty NS pool")
	}
	addr, ok := cf.NSPoolAddr(pool[0])
	if !ok {
		t.Fatalf("no address for pool host %s", pool[0])
	}
	if got := w.Net.Limit(netsim.Endpoint{Addr: addr, Port: netsim.PortDNS}); !got.Enabled() {
		t.Fatalf("pool nameserver %s unlimited, want PerSource 5", addr)
	}
	for _, infraAddr := range cf.InfraNS() {
		if got := w.Net.Limit(netsim.Endpoint{Addr: infraAddr, Port: netsim.PortDNS}); !got.Enabled() {
			t.Fatalf("infra nameserver %s unlimited", infraAddr)
		}
	}
	for _, root := range w.RootAddrs() {
		if got := w.Net.Limit(netsim.Endpoint{Addr: root, Port: netsim.PortDNS}); got.Enabled() {
			t.Fatalf("root server %s rate-limited", root)
		}
	}
}
