package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry's metrics. Snapshots are
// plain values: Diff and Merge make pass-scoped accounting (per-week
// deltas, multi-registry sums) explicit, mirroring how
// dnsresolver.QueryStats composes with Add.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Volatile names metrics whose totals are scheduling-sensitive; they
	// carry real information but are excluded from serial≡parallel
	// equality checks (see Deterministic).
	Volatile map[string]bool `json:"volatile,omitempty"`
}

// HistogramSnapshot is one histogram's state, buckets stored sparsely by
// index (see BucketLow for the index → value-range mapping).
type HistogramSnapshot struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (clamped to [0, 1]) from the
// bucket counts. It returns the upper edge of the bucket the quantile
// rank lands in — a figure that never underestimates the true value,
// exact up to the power-of-two bucket width. A histogram with no
// observations answers 0.
func (h HistogramSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	idxs := make([]int, 0, len(h.Buckets))
	for i := range h.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var cum uint64
	for _, i := range idxs {
		cum += h.Buckets[i]
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return BucketLow(i+1) - 1
		}
	}
	// Count exceeded the bucket total (inconsistent snapshot); answer the
	// largest edge rather than panic.
	return BucketLow(idxs[len(idxs)-1]+1) - 1
}

func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Volatile:   map[string]bool{},
	}
}

// Diff returns s − prev field-wise (saturating at zero), for per-phase
// deltas between two snapshots of the same registry. Gauges subtract
// signed. Volatility marks are unioned.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := emptySnapshot()
	for name, v := range s.Counters {
		p := prev.Counters[name]
		if p > v {
			p = v
		}
		out.Counters[name] = v - p
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v - prev.Gauges[name]
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.diff(prev.Histograms[name])
	}
	s.copyVolatile(out.Volatile)
	prev.copyVolatile(out.Volatile)
	return out
}

func (h HistogramSnapshot) diff(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Buckets: map[int]uint64{}}
	sub := func(a, b uint64) uint64 {
		if b > a {
			return 0
		}
		return a - b
	}
	out.Count = sub(h.Count, prev.Count)
	out.Sum = sub(h.Sum, prev.Sum)
	for i, n := range h.Buckets {
		if d := sub(n, prev.Buckets[i]); d > 0 {
			out.Buckets[i] = d
		}
	}
	return out
}

// Merge returns the field-wise sum of s and o — the multi-registry
// aggregation (per-worker registries folding into a campaign total).
// Gauges sum too; treat them as additive (sizes, not ratios) when
// merging. Volatility marks are unioned.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := emptySnapshot()
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range o.Gauges {
		out.Gauges[name] += v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.clone()
	}
	for name, h := range o.Histograms {
		out.Histograms[name] = out.Histograms[name].merge(h)
	}
	s.copyVolatile(out.Volatile)
	o.copyVolatile(out.Volatile)
	return out
}

func (h HistogramSnapshot) clone() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count, Sum: h.Sum, Buckets: map[int]uint64{}}
	for i, n := range h.Buckets {
		out.Buckets[i] = n
	}
	return out
}

func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	out := h.clone()
	out.Count += o.Count
	out.Sum += o.Sum
	for i, n := range o.Buckets {
		out.Buckets[i] += n
	}
	return out
}

func (s Snapshot) copyVolatile(dst map[string]bool) {
	for name := range s.Volatile {
		dst[name] = true
	}
}

// Deterministic returns the snapshot with every volatile metric removed —
// the subset whose totals must be identical between serial and parallel
// runs of the same seeded campaign.
func (s Snapshot) Deterministic() Snapshot {
	out := emptySnapshot()
	for name, v := range s.Counters {
		if !s.Volatile[name] {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if !s.Volatile[name] {
			out.Histograms[name] = h.clone()
		}
	}
	return out
}

// Equal reports whether two snapshots hold the same metric values
// (volatility marks are compared too; bucket maps compare sparsely).
func (s Snapshot) Equal(o Snapshot) bool {
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) ||
		len(s.Histograms) != len(o.Histograms) || len(s.Volatile) != len(o.Volatile) {
		return false
	}
	for name, v := range s.Counters {
		ov, ok := o.Counters[name]
		if !ok || ov != v {
			return false
		}
	}
	for name, v := range s.Gauges {
		ov, ok := o.Gauges[name]
		if !ok || ov != v {
			return false
		}
	}
	for name, h := range s.Histograms {
		oh, ok := o.Histograms[name]
		if !ok || !h.equal(oh) {
			return false
		}
	}
	for name := range s.Volatile {
		if !o.Volatile[name] {
			return false
		}
	}
	return true
}

func (h HistogramSnapshot) equal(o HistogramSnapshot) bool {
	if h.Count != o.Count || h.Sum != o.Sum || len(h.Buckets) != len(o.Buckets) {
		return false
	}
	for i, n := range h.Buckets {
		if o.Buckets[i] != n {
			return false
		}
	}
	return true
}

// DiffNames returns a sorted list of human-readable differences between
// two snapshots — test-failure output for the equality checks.
func (s Snapshot) DiffNames(o Snapshot) []string {
	var out []string
	seen := map[string]bool{}
	for name, v := range s.Counters {
		seen[name] = true
		if ov := o.Counters[name]; ov != v {
			out = append(out, fmt.Sprintf("counter %s: %d vs %d", name, v, ov))
		}
	}
	for name, ov := range o.Counters {
		if !seen[name] {
			out = append(out, fmt.Sprintf("counter %s: absent vs %d", name, ov))
		}
	}
	for name, h := range s.Histograms {
		if oh, ok := o.Histograms[name]; !ok || !h.equal(oh) {
			out = append(out, fmt.Sprintf("histogram %s: count %d/sum %d vs count %d/sum %d",
				name, h.Count, h.Sum, oh.Count, oh.Sum))
		}
	}
	for name, v := range s.Gauges {
		if ov := o.Gauges[name]; ov != v {
			out = append(out, fmt.Sprintf("gauge %s: %d vs %d", name, v, ov))
		}
	}
	sort.Strings(out)
	return out
}

// CounterNames returns the sorted counter names, optionally restricted to
// a dot-separated prefix (e.g. "collect").
func (s Snapshot) CounterNames(prefix string) []string {
	var out []string
	for name := range s.Counters {
		if prefix == "" || name == prefix || strings.HasPrefix(name, prefix+".") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
