package obs

import (
	"fmt"
	"math/rand"
	"testing"
)

// Merge-law property tests. The shard-parallel driver folds per-shard
// registries into one campaign snapshot with Merge, so Merge must be a
// commutative monoid over snapshots: fold order is whatever shard
// completion order happened to be, and a shard that recorded nothing
// must drop out of the fold. The inputs are randomized but
// seed-deterministic, so a failure reproduces exactly.

// randomSnapshot builds a registry snapshot with a randomized subset of
// a shared metric-name space — overlapping names across snapshots is
// the interesting case for merging — including duration histograms.
func randomSnapshot(rng *rand.Rand) Snapshot {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		if rng.Intn(2) == 0 {
			r.Counter(fmt.Sprintf("counter.%d", rng.Intn(5))).Add(uint64(rng.Intn(1000)))
		}
		if rng.Intn(2) == 0 {
			r.Gauge(fmt.Sprintf("gauge.%d", rng.Intn(4))).Add(int64(rng.Intn(200) - 100))
		}
		if rng.Intn(2) == 0 {
			h := r.Histogram(fmt.Sprintf("hist.%d", rng.Intn(3)))
			for j, n := 0, rng.Intn(6); j < n; j++ {
				h.Observe(uint64(rng.Intn(100000)))
			}
		}
		if rng.Intn(4) == 0 {
			r.VolatileHistogram("hist.volatile").Observe(uint64(rng.Intn(100)))
		}
	}
	return r.Snapshot()
}

func TestSnapshotMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		a, b := randomSnapshot(rng), randomSnapshot(rng)
		ab, ba := a.Merge(b), b.Merge(a)
		if !ab.Equal(ba) {
			t.Fatalf("trial %d: a.Merge(b) != b.Merge(a)\nab: %+v\nba: %+v", trial, ab, ba)
		}
	}
}

func TestSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
		if !left.Equal(right) {
			t.Fatalf("trial %d: (a·b)·c != a·(b·c)\nleft:  %+v\nright: %+v", trial, left, right)
		}
	}
}

func TestSnapshotMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	empty := NewRegistry().Snapshot()
	for trial := 0; trial < 200; trial++ {
		s := randomSnapshot(rng)
		if got := s.Merge(empty); !got.Equal(s) {
			t.Fatalf("trial %d: s.Merge(empty) != s\ngot: %+v\ns:   %+v", trial, got, s)
		}
		if got := empty.Merge(s); !got.Equal(s) {
			t.Fatalf("trial %d: empty.Merge(s) != s\ngot: %+v\ns:   %+v", trial, got, s)
		}
	}
}

// Merge must agree with what a single registry that saw all the traffic
// would report: counters and histograms recorded shard-by-shard sum to
// the union recording.
func TestSnapshotMergeMatchesUnifiedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 50; trial++ {
		shardA, shardB, unified := NewRegistry(), NewRegistry(), NewRegistry()
		for i, n := 0, 20+rng.Intn(30); i < n; i++ {
			name := fmt.Sprintf("counter.%d", rng.Intn(4))
			v := uint64(rng.Intn(100))
			shard := shardA
			if rng.Intn(2) == 1 {
				shard = shardB
			}
			shard.Counter(name).Add(v)
			unified.Counter(name).Add(v)

			hname := fmt.Sprintf("hist.%d", rng.Intn(3))
			obs := uint64(rng.Intn(100000))
			shard.Histogram(hname).Observe(obs)
			unified.Histogram(hname).Observe(obs)
		}
		if got, want := shardA.Snapshot().Merge(shardB.Snapshot()), unified.Snapshot(); !got.Equal(want) {
			t.Fatalf("trial %d: merged shard snapshots != unified recording\ngot:  %+v\nwant: %+v",
				trial, got, want)
		}
	}
}
