package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(9)
	sp := r.Tracer().StartSpan("phase", "label")
	sp.SetItems(3)
	sp.End()
	if ev := r.Tracer().Events(); ev != nil {
		t.Fatalf("nil tracer has events: %v", ev)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}}
	for _, tt := range tests {
		if got := bucketOf(tt.v); got != tt.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(4) != 8 {
		t.Fatalf("BucketLow mapping wrong: %d %d %d", BucketLow(0), BucketLow(1), BucketLow(4))
	}
	// Round-trip: every value lands in a bucket whose low bound admits it.
	for _, v := range []uint64{0, 1, 5, 100, 1 << 20} {
		i := bucketOf(v)
		if low := BucketLow(i); v < low {
			t.Errorf("value %d below its bucket %d low %d", v, i, low)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 1, 6, 6, 6} {
		h.Observe(v)
	}
	h.ObserveDuration(-time.Second) // clamps to 0
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 7 || s.Sum != 20 {
		t.Fatalf("count/sum = %d/%d, want 7/20", s.Count, s.Sum)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[3] != 3 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 observations in bucket 1 (value 1), 9 in bucket 4 (values 8..15),
	// 1 in bucket 7 (values 64..127).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10)
	}
	h.Observe(100)
	s := r.Snapshot().Histograms["lat"]
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1 (bucket 1's upper edge)", got)
	}
	if got := s.Quantile(0.9); got != 1 {
		t.Errorf("p90 = %d, want 1 (rank 90 of 100 still lands in bucket 1)", got)
	}
	if got := s.Quantile(0.99); got != 15 {
		t.Errorf("p99 = %d, want 15 (bucket 4's upper edge)", got)
	}
	if got := s.Quantile(1); got != 127 {
		t.Errorf("p100 = %d, want 127 (bucket 7's upper edge)", got)
	}
	// The estimate never underestimates: every observed value is <= its
	// quantile's answer at q=1.
	if s.Quantile(1) < 100 {
		t.Error("max quantile below the largest observation")
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	// Out-of-range q clamps instead of panicking.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("q outside [0,1] did not clamp")
	}
}

func TestSnapshotDiffMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	h := r.Histogram("sizes")
	g := r.Gauge("pop")
	c.Add(10)
	h.Observe(4)
	g.Set(100)
	first := r.Snapshot()
	c.Add(5)
	h.Observe(4)
	h.Observe(9)
	g.Set(120)
	second := r.Snapshot()

	diff := second.Diff(first)
	if diff.Counters["events"] != 5 {
		t.Fatalf("diff counter = %d, want 5", diff.Counters["events"])
	}
	if diff.Gauges["pop"] != 20 {
		t.Fatalf("diff gauge = %d, want 20", diff.Gauges["pop"])
	}
	if dh := diff.Histograms["sizes"]; dh.Count != 2 || dh.Sum != 13 || dh.Buckets[3] != 1 || dh.Buckets[4] != 1 {
		t.Fatalf("diff histogram = %+v", dh)
	}

	// Merge(first, diff) reconstructs second for counters and histograms.
	merged := first.Merge(diff)
	if merged.Counters["events"] != second.Counters["events"] {
		t.Fatalf("merge counter = %d, want %d", merged.Counters["events"], second.Counters["events"])
	}
	if !merged.Histograms["sizes"].equal(second.Histograms["sizes"]) {
		t.Fatalf("merge histogram = %+v, want %+v", merged.Histograms["sizes"], second.Histograms["sizes"])
	}
}

func TestSnapshotEqualAndDeterministic(t *testing.T) {
	build := func(volatileExtra uint64) Snapshot {
		r := NewRegistry()
		r.Counter("stage.items").Add(42)
		r.VolatileCounter("cache.miss").Add(7 + volatileExtra)
		r.VolatileHistogram("backoff").Observe(100 + volatileExtra)
		return r.Snapshot()
	}
	a, b := build(0), build(3)
	if a.Equal(b) {
		t.Fatal("snapshots with different volatile values compare equal")
	}
	if !a.Deterministic().Equal(b.Deterministic()) {
		t.Fatalf("deterministic subsets differ: %v", a.Deterministic().DiffNames(b.Deterministic()))
	}
	if !a.Equal(build(0)) {
		t.Fatal("identical snapshots compare unequal")
	}
	det := a.Deterministic()
	if _, ok := det.Counters["cache.miss"]; ok {
		t.Fatal("volatile counter survived Deterministic()")
	}
	if _, ok := det.Histograms["backoff"]; ok {
		t.Fatal("volatile histogram survived Deterministic()")
	}
	if len(a.DiffNames(b)) == 0 {
		t.Fatal("DiffNames empty for differing snapshots")
	}
}

func TestCounterNamesPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("collect.domains")
	r.Counter("collect.ns_ok")
	r.Counter("collector") // must not match the "collect" prefix
	r.Counter("scan.queries")
	got := r.Snapshot().CounterNames("collect")
	if len(got) != 2 || got[0] != "collect.domains" || got[1] != "collect.ns_ok" {
		t.Fatalf("CounterNames(collect) = %v", got)
	}
	if all := r.Snapshot().CounterNames(""); len(all) != 4 {
		t.Fatalf("CounterNames(\"\") = %v", all)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan("collect", "day")
		sp.SetItems(2)
		sp.End()
		sp.End() // double End must not double-record
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	sums := tr.PhaseSummaries()
	if len(sums) != 1 || sums[0].Spans != 10 || sums[0].Items != 20 {
		t.Fatalf("summaries = %+v (must aggregate past the ring)", sums)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan("scan", "")
				sp.AddItems(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	sums := tr.PhaseSummaries()
	if len(sums) != 1 || sums[0].Spans != 400 || sums[0].Items != 400 {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(uint64(i))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["shared"] != 8000 {
		t.Fatalf("counter = %d, want 8000", snap.Counters["shared"])
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
	if snap.Gauges["g"] != 8000 {
		t.Fatalf("gauge = %d, want 8000", snap.Gauges["g"])
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("collect.domains").Add(12)
	r.VolatileCounter("dns.cache.miss").Add(3)
	r.Histogram("filter.hidden_per_apex").Observe(2)
	sp := r.Tracer().StartSpan("collect", "day 0")
	sp.SetItems(12)
	sp.End()

	raw, err := json.Marshal(r.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Snapshot.Counters["collect.domains"] != 12 {
		t.Fatalf("round-trip counter = %d", back.Snapshot.Counters["collect.domains"])
	}
	if !back.Snapshot.Volatile["dns.cache.miss"] {
		t.Fatal("volatility mark lost in round trip")
	}
	if len(back.Phases) != 1 || back.Phases[0].Phase != "collect" || back.Phases[0].Items != 12 {
		t.Fatalf("phases = %+v", back.Phases)
	}
}
