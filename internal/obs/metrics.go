package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are safe
// for concurrent use and no-op on a nil receiver.
type Counter struct {
	v        atomic.Uint64
	volatile bool
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written signed value (population sizes, configuration
// knobs). Safe for concurrent use; no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n to the gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log-scale buckets: bucket 0 holds zeros
// and bucket i (1..64) holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates a value distribution in fixed log2 buckets. The
// bucket layout never changes, so histograms from different runs or
// components merge by plain bucket-wise addition, and totals are
// order-independent — the property the serial≡parallel equality test
// relies on. Safe for concurrent use; no-ops on a nil receiver.
type Histogram struct {
	volatile bool
	count    atomic.Uint64
	sum      atomic.Uint64
	buckets  [histBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index: bits.Len64(v), so 0→0, 1→1,
// 2..3→2, 4..7→3, and so on.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketLow returns the smallest value the bucket at index i admits.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to
// zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// restore overwrites the histogram's state from a snapshot. Bucket
// indexes outside the fixed layout are ignored (a decoded snapshot is
// untrusted input; Registry.Restore owns rejecting it wholesale).
func (h *Histogram) restore(s HistogramSnapshot) {
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	for i := range h.buckets {
		h.buckets[i].Store(s.Buckets[i])
	}
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: map[int]uint64{},
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets[i] = n
		}
	}
	return s
}
