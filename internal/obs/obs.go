// Package obs is the measurement pipeline's observability layer: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-log-scale histograms with snapshot/diff/merge semantics) plus a
// lightweight phase tracer with a ring-buffered event log.
//
// The design mirrors dnsresolver.QueryStats: every metric is a sum of
// per-event increments, so aggregating across components and comparing
// across serial/parallel runs is well-defined. Metrics whose values
// legitimately depend on goroutine scheduling — cold-cache races can
// issue duplicate upstream work — are registered as *volatile* and can be
// stripped from a snapshot before an equality check (Deterministic).
//
// Everything is nil-safe: a nil *Registry hands out nil metrics, and nil
// metrics no-op, so components instrument unconditionally and pay nothing
// when no registry is installed.
package obs

import "sync"

// Registry is a named collection of metrics plus a phase tracer. Metric
// handles are get-or-create: asking twice for the same name returns the
// same metric, which is how independent components (five scan vantage
// clients, say) fold their events into one campaign-wide total.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
}

// NewRegistry creates an empty registry with a default-capacity tracer.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(0),
	}
}

// Counter returns the named counter, creating it deterministic (the
// default: its total must be identical between serial and parallel runs
// of the same seeded campaign).
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// VolatileCounter returns the named counter, creating it volatile: its
// total may depend on goroutine scheduling (e.g. cold-cache races), so
// Snapshot.Deterministic drops it before equality checks.
func (r *Registry) VolatileCounter(name string) *Counter { return r.counter(name, true) }

func (r *Registry) counter(name string, volatile bool) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{volatile: volatile}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (deterministic), creating it if
// needed. Buckets are fixed log-scale: bucket i>0 covers [2^(i-1), 2^i).
func (r *Registry) Histogram(name string) *Histogram { return r.histogram(name, false) }

// VolatileHistogram returns the named histogram, creating it volatile.
func (r *Registry) VolatileHistogram(name string) *Histogram { return r.histogram(name, true) }

func (r *Registry) histogram(name string, volatile bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{volatile: volatile}
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's phase tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Snapshot captures every registered metric's current value. Safe to call
// concurrently with metric updates; each value is an atomic read, so the
// snapshot is per-metric consistent (the campaigns snapshot at pass
// boundaries, where it is globally consistent too).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Volatile:   map[string]bool{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
		if c.volatile {
			s.Volatile[name] = true
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
		if h.volatile {
			s.Volatile[name] = true
		}
	}
	return s
}

// Restore overwrites the registry's metrics from a snapshot, recreating
// each metric with the volatility the snapshot recorded — the campaign
// resume path, where a checkpointed registry picks up exactly where the
// interrupted run's accounting stopped. Metrics already registered keep
// their identity (handles held by components stay live); metrics absent
// from the snapshot are left untouched. Nil-safe.
func (r *Registry) Restore(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		c := r.counter(name, s.Volatile[name])
		c.v.Store(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		r.histogram(name, s.Volatile[name]).restore(hs)
	}
}

// Dump bundles the snapshot with the tracer's per-phase aggregates and
// raw event log — the unit the cmd binaries serialize behind -metrics.
type Dump struct {
	Snapshot Snapshot       `json:"snapshot"`
	Phases   []PhaseSummary `json:"phases"`
	Events   []Event        `json:"events,omitempty"`
}

// Dump captures the registry and tracer state.
func (r *Registry) Dump() Dump {
	d := Dump{Snapshot: r.Snapshot()}
	if t := r.Tracer(); t != nil {
		d.Phases = t.PhaseSummaries()
		d.Events = t.Events()
	}
	return d
}
