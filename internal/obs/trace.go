package obs

import (
	"sort"
	"sync"
	"time"
)

// Event is one completed span in the tracer's ring. Wall-clock fields
// describe the real run (the simulated clock does not advance mid-pass),
// so they are operational telemetry, not part of the deterministic
// snapshot the equality tests compare.
type Event struct {
	Seq     uint64        `json:"seq"`
	Phase   string        `json:"phase"`
	Label   string        `json:"label,omitempty"`
	Items   int           `json:"items"`
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed"`
}

// PhaseSummary aggregates the ring's events per phase — the per-stage
// throughput row of the observability report.
type PhaseSummary struct {
	Phase   string        `json:"phase"`
	Spans   int           `json:"spans"`
	Items   int           `json:"items"`
	Elapsed time.Duration `json:"elapsed"`
}

// ItemsPerSec returns the phase's wall-clock throughput (0 when no time
// was accumulated).
func (p PhaseSummary) ItemsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Items) / p.Elapsed.Seconds()
}

// DefaultTracerCapacity bounds the event ring when NewTracer is given no
// capacity: big enough for a multi-week campaign's pass spans, small
// enough to forget about.
const DefaultTracerCapacity = 8192

// Tracer records spans into a fixed-size ring. When the ring wraps, the
// oldest events are dropped (and counted); per-phase aggregates keep
// accumulating regardless, so summaries stay exact even after a wrap.
// Safe for concurrent use; nil-safe throughout.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	seq     uint64 // events ever recorded
	dropped uint64
	phases  map[string]*PhaseSummary
}

// NewTracer creates a tracer with the given ring capacity (<= 0 uses
// DefaultTracerCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity), phases: map[string]*PhaseSummary{}}
}

// Span is an in-flight phase measurement; End records it.
type Span struct {
	t     *Tracer
	phase string
	label string
	items int
	start time.Time
	done  bool
}

// StartSpan opens a span for phase with a free-form label. Returns nil on
// a nil tracer (and nil spans no-op), so call sites never guard.
func (t *Tracer) StartSpan(phase, label string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, phase: phase, label: label, start: time.Now()}
}

// SetItems sets the span's work-item count (domains scanned, candidates
// verified...).
func (s *Span) SetItems(n int) {
	if s == nil {
		return
	}
	s.items = n
}

// AddItems adds to the span's work-item count.
func (s *Span) AddItems(n int) {
	if s == nil {
		return
	}
	s.items += n
}

// End completes the span and records it; second and later calls no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.t.record(Event{
		Phase:   s.phase,
		Label:   s.label,
		Items:   s.items,
		Start:   s.start,
		Elapsed: time.Since(s.start),
	})
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ev.Seq = t.seq
	t.seq++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[ev.Seq%uint64(cap(t.ring))] = ev
		t.dropped++
	}
	p, ok := t.phases[ev.Phase]
	if !ok {
		p = &PhaseSummary{Phase: ev.Phase}
		t.phases[ev.Phase] = p
	}
	p.Spans++
	p.Items += ev.Items
	p.Elapsed += ev.Elapsed
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.ring...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// PhaseSummaries returns per-phase aggregates over every span ever
// recorded (not just the retained ring), sorted by phase name.
func (t *Tracer) PhaseSummaries() []PhaseSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseSummary, 0, len(t.phases))
	for _, p := range t.phases {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}
