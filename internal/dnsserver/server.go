// Package dnsserver implements an authoritative DNS nameserver attached to
// the simulated network fabric.
//
// A server hosts any number of zones and answers wire-format queries with
// the RFC 1034 semantics provided by dnszone. Its behaviour for names it is
// not authoritative for is configurable: answer REFUSED, or ignore the
// query entirely — the paper observes that Cloudflare's nameservers
// silently ignore queries for domains they do not serve (§V-A.2), and the
// residual-resolution scanner depends on distinguishing "answered" from
// "ignored".
package dnsserver

import (
	"sync"
	"sync/atomic"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnszone"
	"rrdps/internal/netsim"
)

// UnknownZonePolicy selects what the server does with queries for names in
// no hosted zone.
type UnknownZonePolicy int

// Unknown-zone policies.
const (
	// PolicyRefuse answers with RCODE REFUSED.
	PolicyRefuse UnknownZonePolicy = iota + 1
	// PolicyIgnore drops the query silently; clients observe a timeout.
	PolicyIgnore
)

// Config parametrizes a Server.
type Config struct {
	// Name identifies the server in logs and test failures.
	Name string
	// UnknownZone selects the unknown-zone behaviour. Defaults to
	// PolicyRefuse.
	UnknownZone UnknownZonePolicy
}

// Server is an authoritative nameserver. It is safe for concurrent use.
type Server struct {
	name    string
	unknown UnknownZonePolicy
	queries atomic.Uint64

	mu    sync.RWMutex
	zones map[dnsmsg.Name]*dnszone.Zone
}

// New creates a Server.
func New(cfg Config) *Server {
	policy := cfg.UnknownZone
	if policy == 0 {
		policy = PolicyRefuse
	}
	return &Server{
		name:    cfg.Name,
		unknown: policy,
		zones:   make(map[dnsmsg.Name]*dnszone.Zone),
	}
}

var _ netsim.Handler = (*Server)(nil)

// AddZone starts serving z. Adding a zone with the same origin replaces the
// previous one.
func (s *Server) AddZone(z *dnszone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// RemoveZone stops serving the zone rooted at origin.
func (s *Server) RemoveZone(origin dnsmsg.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, origin)
}

// Zone returns the hosted zone rooted exactly at origin.
func (s *Server) Zone(origin dnsmsg.Name) (*dnszone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[origin]
	return z, ok
}

// ZoneCount returns how many zones the server hosts.
func (s *Server) ZoneCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.zones)
}

// Queries returns how many queries the server has processed.
func (s *Server) Queries() uint64 {
	return s.queries.Load()
}

// findZone returns the hosted zone with the longest origin that is a
// suffix of qname. It walks qname's ancestry instead of scanning all
// zones, so servers hosting tens of thousands of customer zones (like the
// Cloudflare fleet) answer in O(labels).
func (s *Server) findZone(qname dnsmsg.Name) *dnszone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := qname; ; n = n.Parent() {
		if z, ok := s.zones[n]; ok {
			return z
		}
		if n.IsRoot() {
			return nil
		}
	}
}

// serverScratch bundles the per-query codec and lookup state one in-flight
// query needs, pooled so the serve path allocates nothing in steady state.
type serverScratch struct {
	dec   dnsmsg.Decoder
	enc   dnsmsg.Encoder
	query dnsmsg.Message
	resp  dnsmsg.Message
	res   dnszone.Result
}

var scratchPool = sync.Pool{New: func() any { return new(serverScratch) }}

// ServeNet implements netsim.Handler. A nil response with nil error means
// the query was silently ignored.
func (s *Server) ServeNet(req netsim.Request) ([]byte, error) {
	return s.ServeNetBuf(req, nil)
}

var _ netsim.BufferedHandler = (*Server)(nil)

// ServeNetBuf implements netsim.BufferedHandler: the response is appended
// to dst, so a client that recycles its receive buffer gets answers
// without a single server-side allocation.
func (s *Server) ServeNetBuf(req netsim.Request, dst []byte) ([]byte, error) {
	sc := scratchPool.Get().(*serverScratch)
	defer scratchPool.Put(sc)

	if err := sc.dec.DecodeInto(req.Payload, &sc.query); err != nil ||
		len(sc.query.Questions) == 0 || sc.query.Header.Response {
		// Malformed datagram: real servers drop these.
		return nil, nil
	}
	s.queries.Add(1)

	if !s.respondInto(&sc.query, &sc.resp, &sc.res) {
		return nil, nil
	}
	return sc.enc.EncodeAppend(dst, &sc.resp)
}

// Respond computes the server's response to query, or nil when the query is
// ignored per policy. It is exported so tests and in-process clients can
// bypass the codec.
func (s *Server) Respond(query *dnsmsg.Message) *dnsmsg.Message {
	resp := &dnsmsg.Message{}
	var res dnszone.Result
	if !s.respondInto(query, resp, &res) {
		return nil
	}
	return resp
}

// respondInto fills resp (reusing its slices) with the answer to query,
// using res as lookup scratch. It reports false when the query is ignored
// per policy. resp's sections may alias res; both belong to the caller.
func (s *Server) respondInto(query, resp *dnsmsg.Message, res *dnszone.Result) bool {
	q := query.Question()
	resp.Header = dnsmsg.Header{
		ID:               query.Header.ID,
		Response:         true,
		Opcode:           query.Header.Opcode,
		RecursionDesired: query.Header.RecursionDesired,
	}
	resp.Questions = append(resp.Questions[:0], query.Questions...)
	resp.Answers = nil
	resp.Authority = nil
	resp.Additional = nil

	zone := s.findZone(q.Name)
	if zone == nil {
		if s.unknown == PolicyIgnore {
			return false
		}
		resp.Header.RCode = dnsmsg.RCodeRefused
		return true
	}
	if q.Class != dnsmsg.ClassIN {
		resp.Header.RCode = dnsmsg.RCodeNotImp
		return true
	}

	zone.LookupInto(q.Name, q.Type, res)
	resp.Header.Authoritative = true

	switch res.Kind {
	case dnszone.KindAnswer, dnszone.KindCNAME:
		resp.Answers = res.Records
	case dnszone.KindReferral:
		resp.Header.Authoritative = false
		resp.Authority = res.Records
		resp.Additional = res.Glue
	case dnszone.KindNoData:
		res.Glue = append(res.Glue[:0], res.SOA)
		resp.Authority = res.Glue
	case dnszone.KindNXDomain:
		resp.Header.RCode = dnsmsg.RCodeNXDomain
		res.Glue = append(res.Glue[:0], res.SOA)
		resp.Authority = res.Glue
	}
	return true
}
