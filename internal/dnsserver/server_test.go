package dnsserver

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnszone"
	"rrdps/internal/netsim"
)

func newServerWithZone(t testing.TB, policy UnknownZonePolicy) *Server {
	t.Helper()
	s := New(Config{Name: "test-ns", UnknownZone: policy})
	z := dnszone.New("example.com", dnsmsg.SOAData{MName: "ns1.example.com", RName: "admin.example.com", Serial: 1})
	z.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, netip.MustParseAddr("10.0.0.1")))
	z.MustAdd(dnsmsg.NewCNAME("blog.example.com", time.Minute, "www.example.com"))
	s.AddZone(z)
	return s
}

func query(name dnsmsg.Name, qtype dnsmsg.Type) *dnsmsg.Message {
	return dnsmsg.NewQuery(42, name, qtype)
}

func TestRespondAnswer(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	resp := s.Respond(query("www.example.com", dnsmsg.TypeA))
	if resp == nil || resp.Header.RCode != dnsmsg.RCodeNoError {
		t.Fatalf("resp = %v", resp)
	}
	if !resp.Header.Authoritative {
		t.Error("AA bit not set")
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnsmsg.AData).Addr != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("answers = %v", resp.Answers)
	}
}

func TestRespondCNAMEChain(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	resp := s.Respond(query("blog.example.com", dnsmsg.TypeA))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %v, want CNAME+A", resp.Answers)
	}
}

func TestRespondNXDomain(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	resp := s.Respond(query("nope.example.com", dnsmsg.TypeA))
	if resp.Header.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnsmsg.TypeSOA {
		t.Fatalf("authority = %v, want SOA", resp.Authority)
	}
}

func TestRespondNoData(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	resp := s.Respond(query("www.example.com", dnsmsg.TypeMX))
	if resp.Header.RCode != dnsmsg.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("resp = %v", resp)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnsmsg.TypeSOA {
		t.Fatalf("authority = %v, want SOA", resp.Authority)
	}
}

func TestRespondUnknownZoneRefuse(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	resp := s.Respond(query("www.other.org", dnsmsg.TypeA))
	if resp == nil || resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("resp = %v, want REFUSED", resp)
	}
}

func TestRespondUnknownZoneIgnore(t *testing.T) {
	s := newServerWithZone(t, PolicyIgnore)
	if resp := s.Respond(query("www.other.org", dnsmsg.TypeA)); resp != nil {
		t.Fatalf("resp = %v, want silent ignore", resp)
	}
}

func TestRespondNonINClass(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	q := query("www.example.com", dnsmsg.TypeA)
	q.Questions[0].Class = dnsmsg.Class(3) // CHAOS
	resp := s.Respond(q)
	if resp.Header.RCode != dnsmsg.RCodeNotImp {
		t.Fatalf("rcode = %v, want NOTIMP", resp.Header.RCode)
	}
}

func TestReferralFromParentZone(t *testing.T) {
	s := New(Config{Name: "tld"})
	z := dnszone.New("com", dnsmsg.SOAData{MName: "a.gtld", RName: "hostmaster.com", Serial: 1})
	z.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "ns1.provider.net"))
	s.AddZone(z)
	resp := s.Respond(query("www.example.com", dnsmsg.TypeA))
	if resp.Header.Authoritative {
		t.Error("referral should not set AA")
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnsmsg.TypeNS {
		t.Fatalf("authority = %v", resp.Authority)
	}
}

func TestLongestZoneWins(t *testing.T) {
	s := New(Config{Name: "multi"})
	parent := dnszone.New("com", dnsmsg.SOAData{MName: "a", RName: "b", Serial: 1})
	parent.MustAdd(dnsmsg.NewNS("example.com", time.Hour, "elsewhere.net"))
	child := dnszone.New("example.com", dnsmsg.SOAData{MName: "a", RName: "b", Serial: 1})
	child.MustAdd(dnsmsg.NewA("www.example.com", time.Minute, netip.MustParseAddr("10.5.5.5")))
	s.AddZone(parent)
	s.AddZone(child)

	resp := s.Respond(query("www.example.com", dnsmsg.TypeA))
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v: child zone should win over parent referral", resp.Answers)
	}
}

func TestServeNetWireLevel(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	wire := dnsmsg.MustEncode(query("www.example.com", dnsmsg.TypeA))
	out, err := s.ServeNet(netsim.Request{Payload: wire})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if got := s.Queries(); got != 1 {
		t.Fatalf("query count = %d, want 1", got)
	}
}

func TestServeNetDropsMalformed(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	out, err := s.ServeNet(netsim.Request{Payload: []byte{1, 2, 3}})
	if out != nil || err != nil {
		t.Fatalf("malformed datagram: out=%v err=%v, want silent drop", out, err)
	}
	// Responses must also be dropped, not answered.
	resp := dnsmsg.NewResponse(query("www.example.com", dnsmsg.TypeA), dnsmsg.RCodeNoError)
	out, err = s.ServeNet(netsim.Request{Payload: dnsmsg.MustEncode(resp)})
	if out != nil || err != nil {
		t.Fatalf("response datagram: out=%v err=%v, want silent drop", out, err)
	}
}

func TestZoneManagement(t *testing.T) {
	s := newServerWithZone(t, PolicyRefuse)
	if s.ZoneCount() != 1 {
		t.Fatalf("ZoneCount = %d", s.ZoneCount())
	}
	if _, ok := s.Zone("example.com"); !ok {
		t.Fatal("Zone lookup failed")
	}
	s.RemoveZone("example.com")
	if s.ZoneCount() != 0 {
		t.Fatal("zone not removed")
	}
	resp := s.Respond(query("www.example.com", dnsmsg.TypeA))
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("after removal rcode = %v", resp.Header.RCode)
	}
}

// TestManyZonesLookup exercises the Cloudflare-fleet shape: one server
// hosting tens of thousands of customer zones must answer in O(labels),
// not O(zones).
func TestManyZonesLookup(t *testing.T) {
	s := New(Config{Name: "fleet", UnknownZone: PolicyIgnore})
	const zones = 20000
	for i := 0; i < zones; i++ {
		apex := dnsmsg.MustParseName(fmt.Sprintf("customer%05d.com", i))
		z := dnszone.New(apex, dnsmsg.SOAData{MName: "ns1", RName: "r", Serial: 1, Minimum: 300})
		z.MustAdd(dnsmsg.NewA(apex.Child("www"), time.Minute,
			netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})))
		s.AddZone(z)
	}
	if s.ZoneCount() != zones {
		t.Fatalf("zone count = %d", s.ZoneCount())
	}
	resp := s.Respond(query("www.customer19999.com", dnsmsg.TypeA))
	if resp == nil || len(resp.Answers) != 1 {
		t.Fatalf("lookup in large fleet failed: %v", resp)
	}
	if resp := s.Respond(query("www.not-a-customer.com", dnsmsg.TypeA)); resp != nil {
		t.Fatalf("unknown zone answered: %v", resp)
	}
}

func BenchmarkRespondLargeFleet(b *testing.B) {
	s := New(Config{Name: "fleet", UnknownZone: PolicyIgnore})
	const zones = 10000
	for i := 0; i < zones; i++ {
		apex := dnsmsg.MustParseName(fmt.Sprintf("customer%05d.com", i))
		z := dnszone.New(apex, dnsmsg.SOAData{MName: "ns1", RName: "r", Serial: 1, Minimum: 300})
		z.MustAdd(dnsmsg.NewA(apex.Child("www"), time.Minute,
			netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})))
		s.AddZone(z)
	}
	q := query("www.customer04242.com", dnsmsg.TypeA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.Respond(q); resp == nil || len(resp.Answers) != 1 {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkServeNetWire(b *testing.B) {
	s := newServerWithZone(b, PolicyRefuse)
	wire := dnsmsg.MustEncode(query("www.example.com", dnsmsg.TypeA))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, err := s.ServeNet(netsim.Request{Payload: wire}); err != nil || out == nil {
			b.Fatal("serve failed")
		}
	}
}
