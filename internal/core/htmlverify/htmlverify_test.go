package htmlverify

import (
	"net/netip"
	"testing"

	"rrdps/internal/httpsim"
	"rrdps/internal/netsim"
	"rrdps/internal/simtime"
)

type fixture struct {
	net      *netsim.Network
	verifier *Verifier
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{net: netsim.New(netsim.Config{Clock: simtime.NewSimulated()})}
	client := httpsim.NewClient(f.net, netip.MustParseAddr("198.51.100.80"), netsim.RegionOregon)
	f.verifier = New(client)
	return f
}

func (f *fixture) serve(addr string, page httpsim.Page, cfg func(*httpsim.OriginConfig)) netip.Addr {
	oc := httpsim.OriginConfig{Page: page}
	if cfg != nil {
		cfg(&oc)
	}
	a := netip.MustParseAddr(addr)
	f.net.Register(netsim.Endpoint{Addr: a, Port: netsim.PortHTTP}, netsim.RegionVirginia, httpsim.NewOrigin(oc))
	return a
}

var page = httpsim.Page{Title: "Acme Store", Meta: map[string]string{"description": "acme", "generator": "v2"}}

func TestVerifyMatch(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	cand := f.serve("10.0.0.2", page, nil)
	res := f.verifier.Verify("www.acme.com", ref, cand)
	if !res.Match || !res.RefOK || !res.CandOK {
		t.Fatalf("res = %+v", res)
	}
}

func TestVerifyTitleMismatch(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	other := page
	other.Title = "Different Site"
	cand := f.serve("10.0.0.2", other, nil)
	if res := f.verifier.Verify("www.acme.com", ref, cand); res.Match {
		t.Fatal("mismatched titles verified")
	}
}

func TestVerifyMetaMismatch(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	other := httpsim.Page{Title: page.Title, Meta: map[string]string{"description": "acme", "generator": "v3"}}
	cand := f.serve("10.0.0.2", other, nil)
	if res := f.verifier.Verify("www.acme.com", ref, cand); res.Match {
		t.Fatal("mismatched meta verified")
	}
}

func TestVerifyCandidateUnreachable(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	res := f.verifier.Verify("www.acme.com", ref, netip.MustParseAddr("10.0.0.99"))
	if res.Match || res.CandOK {
		t.Fatalf("res = %+v", res)
	}
	if !res.RefOK {
		t.Fatal("reference fetch should have succeeded")
	}
}

func TestVerifyReferenceUnreachable(t *testing.T) {
	f := newFixture(t)
	cand := f.serve("10.0.0.2", page, nil)
	res := f.verifier.Verify("www.acme.com", netip.MustParseAddr("10.0.0.99"), cand)
	if res.Match || res.RefOK {
		t.Fatalf("res = %+v", res)
	}
}

// TestVerifyDynamicMetaDefeatsComparison models the paper's lower-bound
// caveat: per-request meta tags make a genuine origin fail verification.
func TestVerifyDynamicMetaDefeatsComparison(t *testing.T) {
	f := newFixture(t)
	seq := 0
	ref := f.serve("10.0.0.1", page, func(oc *httpsim.OriginConfig) {
		oc.DynamicMeta = func(httpsim.RequestContext) map[string]string {
			seq++
			return map[string]string{"nonce": string(rune('a' + seq))}
		}
	})
	// Same origin, queried twice through different addresses — but here we
	// just verify the same server against itself; the nonce differs per
	// request, so verification fails.
	res := f.verifier.Verify("www.acme.com", ref, ref)
	if res.Match {
		t.Fatal("dynamic meta should defeat strict comparison")
	}
}

// TestVerifyACLProtectedOriginFails models the other caveat: an origin that
// only answers its DPS edge returns 403 to the prober.
func TestVerifyACLProtectedOriginFails(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	cand := f.serve("10.0.0.2", page, func(oc *httpsim.OriginConfig) {
		oc.AllowedClients = []netip.Addr{netip.MustParseAddr("104.16.0.1")}
	})
	res := f.verifier.Verify("www.acme.com", ref, cand)
	if res.Match || res.CandOK {
		t.Fatalf("ACL-protected origin verified: %+v", res)
	}
}

// TestVerifyBatchMatchesSerial checks the concurrent batch produces, slot
// for slot, the same verdicts as serial Verify calls — including failure
// slots (unreachable, mismatched).
func TestVerifyBatchMatchesSerial(t *testing.T) {
	f := newFixture(t)
	ref := f.serve("10.0.0.1", page, nil)
	other := page
	other.Title = "Different Site"
	cands := []netip.Addr{
		f.serve("10.0.0.2", page, nil),
		f.serve("10.0.0.3", other, nil),
		netip.MustParseAddr("10.0.0.99"), // unreachable
		f.serve("10.0.0.4", page, nil),
		f.serve("10.0.0.5", other, nil),
		f.serve("10.0.0.6", page, nil),
	}
	want := make([]Result, len(cands))
	for i, c := range cands {
		want[i] = f.verifier.Verify("www.acme.com", ref, c)
	}
	for _, workers := range []int{1, 4, 16} {
		got := f.verifier.VerifyBatch("www.acme.com", ref, cands, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Match != want[i].Match || got[i].RefOK != want[i].RefOK || got[i].CandOK != want[i].CandOK {
				t.Fatalf("workers=%d slot %d: got %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSamePage(t *testing.T) {
	a := httpsim.Page{Title: "T", Meta: map[string]string{"k": "v"}}
	b := httpsim.Page{Title: "T", Meta: map[string]string{"k": "v"}}
	if !SamePage(a, b) {
		t.Fatal("identical pages differ")
	}
	b.Meta = map[string]string{"k": "v", "extra": "x"}
	if SamePage(a, b) {
		t.Fatal("extra meta matched")
	}
	if !SamePage(httpsim.Page{}, httpsim.Page{}) {
		t.Fatal("empty pages differ")
	}
}
