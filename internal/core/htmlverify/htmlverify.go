// Package htmlverify implements the paper's HTML verification (§IV-C.3):
// fetch a website's landing page twice — once through the address the
// public DNS view returns (IP2, normally a DPS edge) and once from a
// candidate origin address (IP1) — and decide whether both are the same
// host by comparing the page titles and meta tags.
//
// The comparison is deliberately strict (exact title and meta equality):
// dynamically generated meta tags or origins that only answer their DPS
// provider make real origins fail verification, so the verified count is a
// lower bound, exactly as the paper cautions.
package htmlverify

import (
	"net/netip"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/httpsim"
)

// Result is one verification outcome.
type Result struct {
	// Match is true when both fetches succeeded and the pages agree.
	Match bool
	// RefOK / CandOK report whether each fetch returned a 200 page.
	RefOK  bool
	CandOK bool
	// Reference and Candidate are the parsed pages (zero when the fetch
	// failed).
	Reference httpsim.Page
	Candidate httpsim.Page
}

// Verifier compares landing pages.
type Verifier struct {
	client *httpsim.Client
}

// New creates a verifier fetching through client.
func New(client *httpsim.Client) *Verifier {
	if client == nil {
		panic("htmlverify: client is required")
	}
	return &Verifier{client: client}
}

// Verify fetches host's landing page from refAddr and candAddr and
// compares them.
func (v *Verifier) Verify(host dnsmsg.Name, refAddr, candAddr netip.Addr) Result {
	var res Result
	res.Reference, res.RefOK = v.fetch(host, refAddr)
	if !res.RefOK {
		return res
	}
	res.Candidate, res.CandOK = v.fetch(host, candAddr)
	if !res.CandOK {
		return res
	}
	res.Match = SamePage(res.Reference, res.Candidate)
	return res
}

func (v *Verifier) fetch(host dnsmsg.Name, addr netip.Addr) (httpsim.Page, bool) {
	resp, err := v.client.Get(addr, string(host), "/")
	if err != nil || resp.StatusCode != 200 {
		return httpsim.Page{}, false
	}
	return httpsim.ParsePage(resp.Body), true
}

// SamePage reports whether two pages agree on title and every meta tag.
func SamePage(a, b httpsim.Page) bool {
	if a.Title != b.Title {
		return false
	}
	if len(a.Meta) != len(b.Meta) {
		return false
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			return false
		}
	}
	return true
}
