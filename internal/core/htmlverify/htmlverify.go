// Package htmlverify implements the paper's HTML verification (§IV-C.3):
// fetch a website's landing page twice — once through the address the
// public DNS view returns (IP2, normally a DPS edge) and once from a
// candidate origin address (IP1) — and decide whether both are the same
// host by comparing the page titles and meta tags.
//
// The comparison is deliberately strict (exact title and meta equality):
// dynamically generated meta tags or origins that only answer their DPS
// provider make real origins fail verification, so the verified count is a
// lower bound, exactly as the paper cautions.
package htmlverify

import (
	"fmt"
	"net/netip"
	"sync"

	"rrdps/internal/dnsmsg"
	"rrdps/internal/httpsim"
	"rrdps/internal/obs"
)

// Result is one verification outcome.
type Result struct {
	// Match is true when both fetches succeeded and the pages agree.
	Match bool
	// RefOK / CandOK report whether each fetch returned a 200 page.
	RefOK  bool
	CandOK bool
	// Reference and Candidate are the parsed pages (zero when the fetch
	// failed).
	Reference httpsim.Page
	Candidate httpsim.Page
}

// Verifier compares landing pages.
type Verifier struct {
	client *httpsim.Client
	obs    *obs.Registry
}

// New creates a verifier fetching through client.
func New(client *httpsim.Client) *Verifier {
	if client == nil {
		panic("htmlverify: client is required")
	}
	return &Verifier{client: client}
}

// SetObserver installs a metrics registry. Each comparison's outcome is
// independent of interleaving (pages are static within a pass), so the
// verify.* counters are deterministic. Call between passes; nil
// uninstalls.
func (v *Verifier) SetObserver(r *obs.Registry) { v.obs = r }

// Verify fetches host's landing page from refAddr and candAddr and
// compares them.
func (v *Verifier) Verify(host dnsmsg.Name, refAddr, candAddr netip.Addr) Result {
	res := v.verify(host, refAddr, candAddr)
	v.count(res)
	return res
}

func (v *Verifier) verify(host dnsmsg.Name, refAddr, candAddr netip.Addr) Result {
	var res Result
	res.Reference, res.RefOK = v.fetch(host, refAddr)
	if !res.RefOK {
		return res
	}
	res.Candidate, res.CandOK = v.fetch(host, candAddr)
	if !res.CandOK {
		return res
	}
	res.Match = SamePage(res.Reference, res.Candidate)
	return res
}

func (v *Verifier) count(res Result) {
	if v.obs == nil {
		return
	}
	v.obs.Counter("verify.comparisons").Inc()
	if res.Match {
		v.obs.Counter("verify.matches").Inc()
	}
	if !res.RefOK {
		v.obs.Counter("verify.ref_fail").Inc()
	} else if !res.CandOK {
		v.obs.Counter("verify.cand_fail").Inc()
	}
}

// VerifyBatch runs Verify for every candidate address against the same
// public reference view, fanning the verifications over at most workers
// goroutines. Results come back in candAddrs order; each slot equals what
// a serial Verify call would produce (the fetched pages are static within
// a verification pass, and origins with per-request dynamic meta fail the
// strict comparison no matter the interleaving). workers <= 1 degenerates
// to the serial loop.
func (v *Verifier) VerifyBatch(host dnsmsg.Name, refAddr netip.Addr, candAddrs []netip.Addr, workers int) []Result {
	span := v.obs.Tracer().StartSpan("verify", fmt.Sprintf("%s: %d candidates", host, len(candAddrs)))
	span.SetItems(len(candAddrs))
	defer span.End()
	out := make([]Result, len(candAddrs))
	if workers <= 1 || len(candAddrs) <= 1 {
		for i, cand := range candAddrs {
			out[i] = v.Verify(host, refAddr, cand)
		}
		return out
	}
	if workers > len(candAddrs) {
		workers = len(candAddrs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(candAddrs); i += workers {
				out[i] = v.Verify(host, refAddr, candAddrs[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}

func (v *Verifier) fetch(host dnsmsg.Name, addr netip.Addr) (httpsim.Page, bool) {
	resp, err := v.client.Get(addr, string(host), "/")
	if err != nil || resp.StatusCode != 200 {
		return httpsim.Page{}, false
	}
	return httpsim.ParsePage(resp.Body), true
}

// SamePage reports whether two pages agree on title and every meta tag.
func SamePage(a, b httpsim.Page) bool {
	if a.Title != b.Title {
		return false
	}
	if len(a.Meta) != len(b.Meta) {
		return false
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			return false
		}
	}
	return true
}
