// Package exposure tracks residual-resolution findings week over week:
// the Table VI per-week hidden-record and verified-origin counts, and the
// Fig. 9 exposure timeline (newly exposed, persistently exposed, and
// appear-then-disappear origins), including the purge-delay estimate.
package exposure

import (
	"sort"

	"rrdps/internal/core/filter"
	"rrdps/internal/dnsmsg"
)

// WeekObservation is one week's filtering result, reduced to sets.
type WeekObservation struct {
	Week     int
	Hidden   map[dnsmsg.Name]bool
	Verified map[dnsmsg.Name]bool
}

// Tracker accumulates weekly observations.
type Tracker struct {
	weeks []WeekObservation
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// AddWeek ingests one week's filter report. Weeks must be added in
// increasing order.
func (t *Tracker) AddWeek(week int, rep filter.Report) {
	if n := len(t.weeks); n > 0 && t.weeks[n-1].Week >= week {
		panic("exposure: weeks must be added in increasing order")
	}
	obs := WeekObservation{
		Week:     week,
		Hidden:   make(map[dnsmsg.Name]bool),
		Verified: make(map[dnsmsg.Name]bool),
	}
	for _, apex := range rep.HiddenApexes() {
		obs.Hidden[apex] = true
	}
	for _, apex := range rep.VerifiedApexes() {
		obs.Verified[apex] = true
	}
	t.weeks = append(t.weeks, obs)
}

// Weeks returns the number of observations.
func (t *Tracker) Weeks() int { return len(t.weeks) }

// LatestCounts returns the newest week's label and hidden/verified
// counts — the single-week increment of WeeklyCounts, for consumers
// (the follow-mode daemons) that report each appended week as it lands.
// ok is false on an empty tracker.
func (t *Tracker) LatestCounts() (week, hidden, verified int, ok bool) {
	if len(t.weeks) == 0 {
		return 0, 0, 0, false
	}
	obs := t.weeks[len(t.weeks)-1]
	return obs.Week, len(obs.Hidden), len(obs.Verified), true
}

// WeekState is one week's observation flattened to sorted name lists —
// the serializable form of WeekObservation.
type WeekState struct {
	Week     int
	Hidden   []dnsmsg.Name
	Verified []dnsmsg.Name
}

// ExportState captures every week's observation in order, each week's
// sets sorted, so the encoding is deterministic.
func (t *Tracker) ExportState() []WeekState {
	out := make([]WeekState, len(t.weeks))
	for i, obs := range t.weeks {
		ws := WeekState{Week: obs.Week}
		for apex := range obs.Hidden {
			ws.Hidden = append(ws.Hidden, apex)
		}
		for apex := range obs.Verified {
			ws.Verified = append(ws.Verified, apex)
		}
		sort.Slice(ws.Hidden, func(a, b int) bool { return ws.Hidden[a] < ws.Hidden[b] })
		sort.Slice(ws.Verified, func(a, b int) bool { return ws.Verified[a] < ws.Verified[b] })
		out[i] = ws
	}
	return out
}

// RestoreTracker rebuilds a tracker from exported weeks; AddWeek
// continues from the last restored week.
func RestoreTracker(weeks []WeekState) *Tracker {
	t := NewTracker()
	for _, ws := range weeks {
		obs := WeekObservation{
			Week:     ws.Week,
			Hidden:   make(map[dnsmsg.Name]bool, len(ws.Hidden)),
			Verified: make(map[dnsmsg.Name]bool, len(ws.Verified)),
		}
		for _, apex := range ws.Hidden {
			obs.Hidden[apex] = true
		}
		for _, apex := range ws.Verified {
			obs.Verified[apex] = true
		}
		t.weeks = append(t.weeks, obs)
	}
	return t
}

// WeeklyCounts returns, per week, the hidden-record and verified-origin
// counts — Table VI's per-week rows.
func (t *Tracker) WeeklyCounts() (weeks []int, hidden []int, verified []int) {
	for _, obs := range t.weeks {
		weeks = append(weeks, obs.Week)
		hidden = append(hidden, len(obs.Hidden))
		verified = append(verified, len(obs.Verified))
	}
	return weeks, hidden, verified
}

// TotalHidden returns the union size of hidden records across weeks (the
// Table VI "Total" row counts distinct records, which is why it is less
// than the per-week sum).
func (t *Tracker) TotalHidden() int {
	seen := make(map[dnsmsg.Name]bool)
	for _, obs := range t.weeks {
		for apex := range obs.Hidden {
			seen[apex] = true
		}
	}
	return len(seen)
}

// TotalVerified returns the union size of verified origins across weeks.
func (t *Tracker) TotalVerified() int {
	seen := make(map[dnsmsg.Name]bool)
	for _, obs := range t.weeks {
		for apex := range obs.Verified {
			seen[apex] = true
		}
	}
	return len(seen)
}

// Timeline summarizes the Fig. 9 exposure dynamics over verified origins.
type Timeline struct {
	// NewPerWeek counts origins first exposed in each week (index aligns
	// with the tracker's weeks; week 0's entry counts its full set).
	NewPerWeek []int
	// AlwaysExposed counts origins exposed in every observed week.
	AlwaysExposed int
	// AppearedAndDisappeared counts origins whose first and last exposure
	// both fall strictly inside the observation window — the purge (or
	// origin change) was observed.
	AppearedAndDisappeared int
	// Durations maps each origin to its observed exposure span in weeks
	// (last seen − first seen + 1).
	Durations map[dnsmsg.Name]int
}

// Timeline computes the Fig. 9 summary over verified origins.
func (t *Tracker) Timeline() Timeline {
	tl := Timeline{
		NewPerWeek: make([]int, len(t.weeks)),
		Durations:  make(map[dnsmsg.Name]int),
	}
	if len(t.weeks) == 0 {
		return tl
	}
	first := make(map[dnsmsg.Name]int)
	last := make(map[dnsmsg.Name]int)
	count := make(map[dnsmsg.Name]int)
	for i, obs := range t.weeks {
		for apex := range obs.Verified {
			if _, ok := first[apex]; !ok {
				first[apex] = i
				tl.NewPerWeek[i]++
			}
			last[apex] = i
			count[apex]++
		}
	}
	lastIdx := len(t.weeks) - 1
	for apex := range first {
		tl.Durations[apex] = last[apex] - first[apex] + 1
		if count[apex] == len(t.weeks) {
			tl.AlwaysExposed++
		}
		if first[apex] > 0 && last[apex] < lastIdx {
			tl.AppearedAndDisappeared++
		}
	}
	return tl
}

// ExposedApexes returns the distinct verified origins across all weeks.
func (t *Tracker) ExposedApexes() []dnsmsg.Name {
	seen := make(map[dnsmsg.Name]bool)
	for _, obs := range t.weeks {
		for apex := range obs.Verified {
			seen[apex] = true
		}
	}
	out := make([]dnsmsg.Name, 0, len(seen))
	for apex := range seen {
		out = append(out, apex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
