package exposure

import "rrdps/internal/dnsmsg"

// Merge returns a new tracker holding the week-wise union of two
// trackers' observations — the shard-parallel recombination
// (internal/shardrun). Shard campaigns observe the same week labels
// over disjoint apex populations, so the per-week set union reproduces
// the unsharded tracker's observations exactly; every derived artifact
// (WeeklyCounts, TotalHidden/TotalVerified, the Fig. 9 Timeline) then
// matches by construction. Weeks present in only one tracker are kept
// as-is, so Merge also tolerates shards resumed to different lengths.
// Commutative and associative (set union), with the empty tracker — or
// nil, which merges as empty — as the identity element.
func (t *Tracker) Merge(o *Tracker) *Tracker {
	out := NewTracker()
	var a, b []WeekObservation
	if t != nil {
		a = t.weeks
	}
	if o != nil {
		b = o.weeks
	}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Week < b[j].Week):
			out.weeks = append(out.weeks, cloneWeek(a[i]))
			i++
		case i >= len(a) || b[j].Week < a[i].Week:
			out.weeks = append(out.weeks, cloneWeek(b[j]))
			j++
		default: // same week: union the sets
			w := cloneWeek(a[i])
			for apex := range b[j].Hidden {
				w.Hidden[apex] = true
			}
			for apex := range b[j].Verified {
				w.Verified[apex] = true
			}
			out.weeks = append(out.weeks, w)
			i++
			j++
		}
	}
	return out
}

func cloneWeek(obs WeekObservation) WeekObservation {
	w := WeekObservation{
		Week:     obs.Week,
		Hidden:   make(map[dnsmsg.Name]bool, len(obs.Hidden)),
		Verified: make(map[dnsmsg.Name]bool, len(obs.Verified)),
	}
	for apex := range obs.Hidden {
		w.Hidden[apex] = true
	}
	for apex := range obs.Verified {
		w.Verified[apex] = true
	}
	return w
}
