package exposure

import (
	"net/netip"
	"sort"
	"testing"

	"rrdps/internal/core/filter"
	"rrdps/internal/dnsmsg"
)

// report builds a filter.Report whose hidden set is the union of hidden
// and verified (a verified origin is by construction a hidden record).
func report(hidden []string, verified []string) filter.Report {
	rep := filter.Report{}
	addr := netip.MustParseAddr("10.0.0.1")
	verifiedSet := make(map[string]bool, len(verified))
	all := make(map[string]bool, len(hidden)+len(verified))
	for _, v := range verified {
		verifiedSet[v] = true
		all[v] = true
	}
	for _, h := range hidden {
		all[h] = true
	}
	names := make([]string, 0, len(all))
	for h := range all {
		names = append(names, h)
	}
	sort.Strings(names)
	for _, h := range names {
		hid := filter.Hidden{Apex: dnsmsg.MustParseName(h), Addr: addr}
		rep.Hidden = append(rep.Hidden, hid)
		rep.Outcomes = append(rep.Outcomes, filter.Outcome{Hidden: hid, Verified: verifiedSet[h]})
	}
	return rep
}

func TestWeeklyCountsAndTotals(t *testing.T) {
	tr := NewTracker()
	tr.AddWeek(1, report([]string{"a.com", "b.com"}, []string{"a.com"}))
	tr.AddWeek(2, report([]string{"a.com", "c.com"}, []string{"a.com", "c.com"}))

	weeks, hidden, verified := tr.WeeklyCounts()
	if len(weeks) != 2 || weeks[0] != 1 || weeks[1] != 2 {
		t.Fatalf("weeks = %v", weeks)
	}
	if hidden[0] != 2 || hidden[1] != 2 {
		t.Fatalf("hidden = %v", hidden)
	}
	if verified[0] != 1 || verified[1] != 2 {
		t.Fatalf("verified = %v", verified)
	}
	// Totals are unions, like Table VI's total row.
	if tr.TotalHidden() != 3 {
		t.Fatalf("TotalHidden = %d", tr.TotalHidden())
	}
	if tr.TotalVerified() != 2 {
		t.Fatalf("TotalVerified = %d", tr.TotalVerified())
	}
}

func TestTimeline(t *testing.T) {
	tr := NewTracker()
	// a: weeks 1-4 (always); b: 1-2 (disappears); c: 2-3 (appears+disappears);
	// d: 4 only (appears at the end).
	tr.AddWeek(1, report(nil, []string{"a.com", "b.com"}))
	tr.AddWeek(2, report(nil, []string{"a.com", "b.com", "c.com"}))
	tr.AddWeek(3, report(nil, []string{"a.com", "c.com"}))
	tr.AddWeek(4, report(nil, []string{"a.com", "d.com"}))

	tl := tr.Timeline()
	wantNew := []int{2, 1, 0, 1}
	for i, want := range wantNew {
		if tl.NewPerWeek[i] != want {
			t.Fatalf("NewPerWeek = %v, want %v", tl.NewPerWeek, wantNew)
		}
	}
	if tl.AlwaysExposed != 1 {
		t.Fatalf("AlwaysExposed = %d", tl.AlwaysExposed)
	}
	if tl.AppearedAndDisappeared != 1 { // only c.com
		t.Fatalf("AppearedAndDisappeared = %d", tl.AppearedAndDisappeared)
	}
	if tl.Durations["a.com"] != 4 || tl.Durations["c.com"] != 2 || tl.Durations["d.com"] != 1 {
		t.Fatalf("Durations = %v", tl.Durations)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tr := NewTracker()
	tl := tr.Timeline()
	if len(tl.NewPerWeek) != 0 || tl.AlwaysExposed != 0 {
		t.Fatalf("empty timeline = %+v", tl)
	}
}

func TestExposedApexesSorted(t *testing.T) {
	tr := NewTracker()
	tr.AddWeek(1, report(nil, []string{"b.com", "a.com"}))
	got := tr.ExposedApexes()
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Fatalf("ExposedApexes = %v", got)
	}
}

func TestAddWeekOutOfOrderPanics(t *testing.T) {
	tr := NewTracker()
	tr.AddWeek(2, report(nil, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order AddWeek did not panic")
		}
	}()
	tr.AddWeek(2, report(nil, nil))
}

func TestWeeks(t *testing.T) {
	tr := NewTracker()
	if tr.Weeks() != 0 {
		t.Fatal("fresh tracker has weeks")
	}
	tr.AddWeek(1, report(nil, nil))
	if tr.Weeks() != 1 {
		t.Fatal("Weeks() != 1")
	}
}
