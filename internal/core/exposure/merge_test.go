package exposure

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"rrdps/internal/core/filter"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Merge-law property tests over randomized, seed-deterministic
// trackers. Shard campaigns track exposure over disjoint apex
// populations with identical week labels; Merge must recombine them to
// exactly the tracker a single campaign over the union would have
// built, and must form a commutative monoid with the empty tracker (or
// nil) as identity.

func trackerEqual(a, b *Tracker) bool {
	return reflect.DeepEqual(a.ExportState(), b.ExportState())
}

// randomWeekReport builds a filter report whose hidden rows cover a
// random apex subset drawn from the given population slice.
func randomWeekReport(rng *rand.Rand, population []dnsmsg.Name) filter.Report {
	rep := filter.Report{Provider: dps.Cloudflare}
	for _, apex := range population {
		if rng.Intn(3) != 0 {
			continue
		}
		h := filter.Hidden{
			Apex: apex,
			WWW:  apex.Child("www"),
			Addr: netip.AddrFrom4([4]byte{10, 0, byte(rng.Intn(256)), byte(rng.Intn(256))}),
		}
		rep.Hidden = append(rep.Hidden, h)
		rep.Outcomes = append(rep.Outcomes, filter.Outcome{Hidden: h, Verified: rng.Intn(2) == 0})
	}
	rep.Scanned = len(population)
	return rep
}

func population(n int) []dnsmsg.Name {
	out := make([]dnsmsg.Name, n)
	for i := range out {
		out[i] = dnsmsg.Name(fmt.Sprintf("site-%04d.example.", i))
	}
	return out
}

func TestTrackerMergeRecombinesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	pop := population(60)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(5)
		shards := make([][]dnsmsg.Name, k)
		for i, apex := range pop {
			shards[i%k] = append(shards[i%k], apex)
		}
		whole := NewTracker()
		parts := make([]*Tracker, k)
		for i := range parts {
			parts[i] = NewTracker()
		}
		for week := 1; week <= 3+rng.Intn(3); week++ {
			var union filter.Report
			union.Provider = dps.Cloudflare
			for i, shard := range shards {
				rep := randomWeekReport(rng, shard)
				parts[i].AddWeek(week, rep)
				union = union.Merge(rep)
			}
			whole.AddWeek(week, union)
		}
		merged := NewTracker()
		for _, i := range rng.Perm(k) {
			merged = merged.Merge(parts[i])
		}
		if !trackerEqual(merged, whole) {
			t.Fatalf("trial %d (k=%d): merged shard trackers != whole-population tracker\nmerged: %+v\nwhole:  %+v",
				trial, k, merged.ExportState(), whole.ExportState())
		}
	}
}

func TestTrackerMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	pop := population(40)
	build := func() *Tracker {
		tr := NewTracker()
		for week := 1; week <= 1+rng.Intn(4); week++ {
			tr.AddWeek(week, randomWeekReport(rng, pop))
		}
		return tr
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := build(), build(), build()
		if !trackerEqual(a.Merge(b), b.Merge(a)) {
			t.Fatalf("trial %d: Merge not commutative", trial)
		}
		if !trackerEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
			t.Fatalf("trial %d: Merge not associative", trial)
		}
		if !trackerEqual(a.Merge(NewTracker()), a) {
			t.Fatalf("trial %d: empty tracker is not a right identity", trial)
		}
		if !trackerEqual(NewTracker().Merge(a), a) {
			t.Fatalf("trial %d: empty tracker is not a left identity", trial)
		}
		if !trackerEqual(a.Merge(nil), a) {
			t.Fatalf("trial %d: nil must merge as empty", trial)
		}
	}
}

// Trackers resumed to different lengths (one shard crashed and was
// re-driven further than a snapshot of another) still merge: weeks
// present on one side only are kept as-is.
func TestTrackerMergeUnevenWeeks(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	pop := population(30)
	a, b := NewTracker(), NewTracker()
	for week := 1; week <= 4; week++ {
		a.AddWeek(week, randomWeekReport(rng, pop[:15]))
		if week <= 2 {
			b.AddWeek(week, randomWeekReport(rng, pop[15:]))
		}
	}
	merged := a.Merge(b)
	if merged.Weeks() != 4 {
		t.Fatalf("merged weeks = %d, want 4", merged.Weeks())
	}
	weeks, hidden, _ := merged.WeeklyCounts()
	aw, ah, _ := a.WeeklyCounts()
	if !reflect.DeepEqual(weeks, aw) {
		t.Fatalf("merged week labels %v != %v", weeks, aw)
	}
	// Weeks 3-4 exist only in a; their merged counts must match a's.
	for i, w := range weeks {
		if w >= 3 && hidden[i] != ah[i] {
			t.Fatalf("week %d merged hidden = %d, want a's %d", w, hidden[i], ah[i])
		}
	}
}
