package collect

import (
	"fmt"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/netsim"
)

// TestApexesComputedOnce pins the satellite fix: repeated Apexes calls
// serve the same cached slice instead of re-sorting the population, and
// collector-built snapshots share the collector's precomputed ranking.
func TestApexesComputedOnce(t *testing.T) {
	w := buildWorld(t, 60)
	collector := New(w.NewResolver(netsim.RegionOregon), domainList(w))
	snap := collector.Collect(0)

	first := snap.Apexes()
	second := snap.Apexes()
	if len(first) == 0 || &first[0] != &second[0] {
		t.Fatal("Apexes re-computed the list on the second call")
	}

	// A literal snapshot (no collector) lazily computes and then caches.
	lit := Snapshot{Day: 1, Records: snap.Records}
	a, b := lit.Apexes(), lit.Apexes()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("literal snapshot re-computed Apexes")
	}

	// Two snapshots from one collector share one ranking allocation.
	snap2 := collector.Collect(1)
	if o1, o2 := snap.Apexes(), snap2.Apexes(); &o1[0] != &o2[0] {
		t.Fatal("collector snapshots do not share the precomputed ranking")
	}
}

// BenchmarkSnapshotApexes is the benchmark guard for the Apexes fix: it
// must stay O(1) per call (no per-call sort, no per-call allocation).
func BenchmarkSnapshotApexes(b *testing.B) {
	const n = 2000
	records := make(map[dnsmsg.Name]Record, n)
	for i := 0; i < n; i++ {
		apex := dnsmsg.MustParseName(fmt.Sprintf("site%04d.com", i))
		records[apex] = Record{Domain: alexa.Domain{Rank: i + 1, Apex: apex}}
	}
	snap := Snapshot{Day: 0, Records: records}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(snap.Apexes()) != n {
			b.Fatal("wrong apex count")
		}
	}
}
