package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
)

// The JSON form lets campaigns checkpoint snapshots to disk and lets
// external tooling consume them. Addresses and names serialize as strings.

// recordJSON is the wire form of Record.
type recordJSON struct {
	Apex      string   `json:"apex"`
	Rank      int      `json:"rank"`
	Addrs     []string `json:"addrs,omitempty"`
	CNAMEs    []string `json:"cnames,omitempty"`
	NSHosts   []string `json:"ns_hosts,omitempty"`
	ResolveOK bool     `json:"resolve_ok"`
	NSOK      bool     `json:"ns_ok"`
}

// snapshotJSON is the wire form of Snapshot.
type snapshotJSON struct {
	Day     int          `json:"day"`
	Records []recordJSON `json:"records"`
}

// WriteJSON serializes the snapshot (records in rank order).
func (s Snapshot) WriteJSON(w io.Writer) error {
	out := snapshotJSON{Day: s.Day}
	for _, apex := range s.Apexes() {
		rec := s.Records[apex]
		rj := recordJSON{
			Apex:      string(apex),
			Rank:      rec.Domain.Rank,
			ResolveOK: rec.ResolveOK,
			NSOK:      rec.NSOK,
		}
		for _, a := range rec.Addrs {
			rj.Addrs = append(rj.Addrs, a.String())
		}
		for _, c := range rec.CNAMEs {
			rj.CNAMEs = append(rj.CNAMEs, string(c))
		}
		for _, h := range rec.NSHosts {
			rj.NSHosts = append(rj.NSHosts, string(h))
		}
		out.Records = append(out.Records, rj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (Snapshot, error) {
	var in snapshotJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return Snapshot{}, fmt.Errorf("reading snapshot: %w", err)
	}
	snap := Snapshot{Day: in.Day, Records: make(map[dnsmsg.Name]Record, len(in.Records))}
	for _, rj := range in.Records {
		apex, err := dnsmsg.ParseName(rj.Apex)
		if err != nil {
			return Snapshot{}, fmt.Errorf("reading snapshot: apex %q: %w", rj.Apex, err)
		}
		rec := Record{
			Domain:    alexa.Domain{Rank: rj.Rank, Apex: apex},
			ResolveOK: rj.ResolveOK,
			NSOK:      rj.NSOK,
		}
		for _, a := range rj.Addrs {
			addr, err := netip.ParseAddr(a)
			if err != nil {
				return Snapshot{}, fmt.Errorf("reading snapshot: addr %q: %w", a, err)
			}
			rec.Addrs = append(rec.Addrs, addr)
		}
		for _, c := range rj.CNAMEs {
			name, err := dnsmsg.ParseName(c)
			if err != nil {
				return Snapshot{}, fmt.Errorf("reading snapshot: cname %q: %w", c, err)
			}
			rec.CNAMEs = append(rec.CNAMEs, name)
		}
		for _, h := range rj.NSHosts {
			name, err := dnsmsg.ParseName(h)
			if err != nil {
				return Snapshot{}, fmt.Errorf("reading snapshot: ns %q: %w", h, err)
			}
			rec.NSHosts = append(rec.NSHosts, name)
		}
		snap.Records[apex] = rec
	}
	return snap, nil
}
