// Package collect implements the paper's DNS record collector (§IV-B.1):
// a recursive resolver that takes a daily snapshot of the A, CNAME, and NS
// records of every studied website, purging its cache before each run so
// snapshots stay independent.
package collect

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"rrdps/internal/alexa"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dnsresolver"
	"rrdps/internal/obs"
)

// Record is one domain's records in a snapshot.
type Record struct {
	Domain alexa.Domain
	// Addrs are the A records of the www subdomain after CNAME chasing.
	Addrs []netip.Addr
	// CNAMEs is the alias chain (targets, in order) seen while resolving
	// the www subdomain.
	CNAMEs []dnsmsg.Name
	// NSHosts are the apex's NS records.
	NSHosts []dnsmsg.Name
	// ResolveOK reports whether the A/CNAME resolution succeeded; failed
	// domains (NXDOMAIN, SERVFAIL) stay in the snapshot with it false, so
	// day-over-day diffing can distinguish "gone" from "never asked".
	ResolveOK bool
	// NSOK reports whether the apex NS resolution succeeded. Consumers
	// that need the full record triple (the behaviour classifier) must
	// skip records with partial data: a lost NS answer must not demote an
	// OFF site to NONE.
	NSOK bool
}

// Snapshot is one day's collected records.
//
// Deprecated-by-design for retention: Snapshot is the legacy map-based
// view. Since the Table V verification moved onto the snapstore diff
// stream, nothing on the streaming path consumes it anymore — it is kept
// only for the Legacy cross-check pipeline and the tests that pin the
// two pipelines equal. Code that keeps history should append days into a
// snapstore.Store and replay them through its cursors instead of holding
// Snapshots alive.
type Snapshot struct {
	Day     int
	Records map[dnsmsg.Name]Record // keyed by apex

	// apexes caches the rank-ordered apex list; snapshots from a
	// Collector share the collector's precomputed list, literals compute
	// it on first use.
	apexes []dnsmsg.Name
}

// Apexes returns the snapshot's domains in rank order. The list is
// computed at most once per snapshot (collector-built snapshots inherit
// the collector's precomputed ranking) and the returned slice is shared:
// callers must not mutate it.
func (s *Snapshot) Apexes() []dnsmsg.Name {
	if s.apexes == nil && len(s.Records) > 0 {
		out := make([]dnsmsg.Name, 0, len(s.Records))
		for apex := range s.Records {
			out = append(out, apex)
		}
		sort.Slice(out, func(i, j int) bool {
			ri, rj := s.Records[out[i]].Domain.Rank, s.Records[out[j]].Domain.Rank
			if ri != rj {
				return ri < rj
			}
			return out[i] < out[j]
		})
		s.apexes = out
	}
	return s.apexes
}

// Collector drives daily collection runs.
type Collector struct {
	resolver *dnsresolver.Resolver
	domains  []alexa.Domain
	ranked   []dnsmsg.Name // apexes in rank order, computed once
	workers  int
	obs      *obs.Registry
}

// New creates a collector over the given domain list.
func New(resolver *dnsresolver.Resolver, domains []alexa.Domain) *Collector {
	if resolver == nil {
		panic("collect: resolver is required")
	}
	c := &Collector{resolver: resolver, domains: append([]alexa.Domain(nil), domains...), workers: 1}
	// The population is fixed for the collector's lifetime, so the
	// rank-ordered apex list every snapshot serves from Apexes is
	// computed exactly once here, not once per snapshot per call.
	byRank := append([]alexa.Domain(nil), c.domains...)
	sort.Slice(byRank, func(i, j int) bool {
		if byRank[i].Rank != byRank[j].Rank {
			return byRank[i].Rank < byRank[j].Rank
		}
		return byRank[i].Apex < byRank[j].Apex
	})
	c.ranked = make([]dnsmsg.Name, len(byRank))
	for i, d := range byRank {
		c.ranked[i] = d.Apex
	}
	return c
}

// SetWorkers sets the collection parallelism (default 1). The resolver and
// the fabric are safe for concurrent use; large populations collect
// several times faster with a handful of workers. Snapshots are
// value-identical to serial collection as long as the world is quiescent
// during the run (the campaign runners advance the world only between
// snapshots).
func (c *Collector) SetWorkers(n int) {
	if n < 1 {
		panic(fmt.Sprintf("collect: SetWorkers(%d)", n))
	}
	c.workers = n
}

// SetObserver installs a metrics registry on the collector and its
// resolver. Collection counters (collect.*) are derived from the
// assembled snapshot on the caller's goroutine, so they are deterministic
// regardless of worker count; the resolver's dns.* counters are volatile.
// Nil uninstalls.
func (c *Collector) SetObserver(r *obs.Registry) {
	c.obs = r
	c.resolver.SetObserver(r)
}

// Collect takes one snapshot labelled with day. The resolver cache is
// purged first, exactly as the paper does between daily experiments, and
// the resolver's nameserver-health tracker is checkpointed so the
// previous pass's timeout observations fold into sideline decisions
// while the fabric is quiescent.
//
// With workers > 1 the domains fan out over a bounded pool. Each worker
// writes only its own pre-assigned slots of a pre-sized results slice — no
// results channel, no fan-in goroutine — and the snapshot map is assembled
// afterwards on the caller's goroutine. Snapshots are value-identical to
// serial collection because (a) each domain's record is computed by exactly
// one worker from the same quiescent world (the campaign runners advance
// the world only between snapshots), (b) the resolver's sharded cache only
// memoizes answers that are stable while the world is quiescent, so cache
// hit/miss interleaving cannot change any record's value, and (c) the
// snapshot map is keyed by apex, so assembly order is irrelevant.
func (c *Collector) Collect(day int) Snapshot {
	records := c.collectAll(day)
	snap := Snapshot{Day: day, Records: make(map[dnsmsg.Name]Record, len(c.domains)), apexes: c.ranked}
	for i, d := range c.domains {
		snap.Records[d.Apex] = records[i]
	}
	return snap
}

// CollectStream is Collect without the map: it runs the same daily pass
// (same cache purge, same health checkpoint, same queries in the same
// order) and emits each domain's record, in domain-list order, to emit —
// typically a snapstore.DayWriter's Put. Nothing per-day is retained by
// the collector, so memory stays flat regardless of campaign length.
func (c *Collector) CollectStream(day int, emit func(Record)) {
	for _, rec := range c.collectAll(day) {
		emit(rec)
	}
}

// collectAll runs one daily pass and returns the records in domain-list
// order (the i-th record belongs to c.domains[i]).
func (c *Collector) collectAll(day int) []Record {
	span := c.obs.Tracer().StartSpan("collect", fmt.Sprintf("day %d", day))
	defer span.End()
	c.resolver.Checkpoint()
	c.resolver.PurgeCache()
	records := make([]Record, len(c.domains))
	if c.workers <= 1 || len(c.domains) <= 1 {
		for i, d := range c.domains {
			records[i] = c.collectOne(d)
		}
		c.countRecords(span, records)
		return records
	}

	workers := c.workers
	if workers > len(c.domains) {
		workers = len(c.domains)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(c.domains); i += workers {
				records[i] = c.collectOne(c.domains[i])
			}
		}(w)
	}
	wg.Wait()
	c.countRecords(span, records)
	return records
}

// countRecords accounts a completed pass. It runs on the caller's
// goroutine over the assembled (worker-order-independent) records, so the
// collect.* counters are deterministic even when collection ran parallel.
func (c *Collector) countRecords(span *obs.Span, records []Record) {
	span.SetItems(len(records))
	if c.obs == nil {
		return
	}
	var resolveOK, nsOK uint64
	for _, rec := range records {
		if rec.ResolveOK {
			resolveOK++
		}
		if rec.NSOK {
			nsOK++
		}
	}
	c.obs.Counter("collect.snapshots").Inc()
	c.obs.Counter("collect.domains").Add(uint64(len(records)))
	c.obs.Counter("collect.resolve_ok").Add(resolveOK)
	c.obs.Counter("collect.ns_ok").Add(nsOK)
}

func (c *Collector) collectOne(d alexa.Domain) Record {
	rec := Record{Domain: d}

	aRes, err := c.resolver.Resolve(d.WWW(), dnsmsg.TypeA)
	switch {
	case err == nil:
		rec.ResolveOK = true
		rec.Addrs = aRes.Addrs()
		rec.CNAMEs = aRes.CNAMETargets()
	case errors.Is(err, dnsresolver.ErrNXDomain):
		// The chain may still be informative (stale CNAME, NXDOMAIN target).
		rec.CNAMEs = aRes.CNAMETargets()
	default:
		// SERVFAIL/timeout: record stays empty.
	}

	nsRes, err := c.resolver.Resolve(d.Apex, dnsmsg.TypeNS)
	if err == nil {
		rec.NSOK = true
		rec.NSHosts = nsRes.NSHosts()
	}
	return rec
}

// ResolveOne performs a one-off "normal resolution" of an arbitrary
// hostname's A records, as the A-matching filter needs (§V-A.2). The cache
// is not purged: within one filtering pass, reuse is desirable.
func (c *Collector) ResolveOne(host dnsmsg.Name) ([]netip.Addr, error) {
	res, err := c.resolver.Resolve(host, dnsmsg.TypeA)
	if err != nil {
		return nil, err
	}
	return res.Addrs(), nil
}

// Resolver exposes the underlying resolver (vantage reuse by the scanner).
func (c *Collector) Resolver() *dnsresolver.Resolver { return c.resolver }

// Stats returns the underlying resolver's resilience accounting.
func (c *Collector) Stats() dnsresolver.QueryStats { return c.resolver.Stats() }

// Domains returns the collector's domain list.
func (c *Collector) Domains() []alexa.Domain {
	return append([]alexa.Domain(nil), c.domains...)
}
