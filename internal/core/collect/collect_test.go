package collect

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/website"
	"rrdps/internal/world"
)

func buildWorld(t *testing.T, n int) *world.World {
	t.Helper()
	cfg := world.PaperConfig(n)
	cfg.Seed = 11
	return world.New(cfg)
}

// domainList extracts the ranked domain list from a world.
func domainList(w *world.World) []alexa.Domain {
	sites := w.Sites()
	out := make([]alexa.Domain, len(sites))
	for i, s := range sites {
		out[i] = s.Domain()
	}
	return out
}

func TestCollectSnapshot(t *testing.T) {
	w := buildWorld(t, 150)
	res := w.NewResolver(netsim.RegionOregon)
	collector := New(res, domainList(w))
	snap := collector.Collect(0)
	if snap.Day != 0 {
		t.Fatalf("day = %d", snap.Day)
	}
	if len(snap.Records) != 150 {
		t.Fatalf("records = %d", len(snap.Records))
	}

	multiCDN := make(map[string]bool)
	for _, apex := range w.MultiCDNDomains() {
		multiCDN[string(apex)] = true
	}
	okCount := 0
	for apex, rec := range snap.Records {
		if !rec.ResolveOK {
			continue
		}
		okCount++
		if multiCDN[string(apex)] {
			continue // fronted by the multi-CDN service, not origin-served
		}
		site, _ := w.Site(apex)
		key, method, _ := site.Provider()
		switch {
		case key == "":
			if len(rec.Addrs) != 1 || rec.Addrs[0] != site.OriginAddr() {
				t.Fatalf("%s: addrs = %v, want origin", apex, rec.Addrs)
			}
		case method == dps.ReroutingCNAME:
			if len(rec.CNAMEs) == 0 {
				t.Fatalf("%s: CNAME-rerouted site with no chain", apex)
			}
		}
	}
	if okCount != 150 {
		t.Fatalf("only %d/150 resolved", okCount)
	}
}

func TestCollectPurgesBetweenRuns(t *testing.T) {
	w := buildWorld(t, 50)
	res := w.NewResolver(netsim.RegionOregon)
	collector := New(res, domainList(w))

	collector.Collect(0)
	var target = pickUnprotected(t, w)
	old := target.OriginAddr()
	if _, err := target.ChangeOriginIP(); err != nil {
		t.Fatal(err)
	}
	snap := collector.Collect(1)
	rec := snap.Records[target.Domain().Apex]
	if len(rec.Addrs) != 1 || rec.Addrs[0] == old {
		t.Fatalf("second snapshot served stale addr %v", rec.Addrs)
	}
}

func TestCollectNSRecords(t *testing.T) {
	w := buildWorld(t, 200)
	res := w.NewResolver(netsim.RegionLondon)
	collector := New(res, domainList(w))
	snap := collector.Collect(0)

	foundCF := false
	for apex, rec := range snap.Records {
		site, _ := w.Site(apex)
		key, method, _ := site.Provider()
		if key == dps.Cloudflare && method == dps.ReroutingNS {
			foundCF = true
			if len(rec.NSHosts) == 0 || !rec.NSHosts[0].ContainsSubstring("cloudflare") {
				t.Fatalf("%s: NS hosts = %v", apex, rec.NSHosts)
			}
		}
	}
	if !foundCF {
		t.Skip("no cloudflare NS site in sample")
	}
}

func TestSnapshotApexesRankOrder(t *testing.T) {
	w := buildWorld(t, 40)
	res := w.NewResolver(netsim.RegionOregon)
	collector := New(res, domainList(w))
	snap := collector.Collect(0)
	apexes := snap.Apexes()
	if len(apexes) != 40 {
		t.Fatalf("apexes = %d", len(apexes))
	}
	for i := 1; i < len(apexes); i++ {
		if snap.Records[apexes[i-1]].Domain.Rank >= snap.Records[apexes[i]].Domain.Rank {
			t.Fatal("apexes not in rank order")
		}
	}
}

func TestResolveOne(t *testing.T) {
	w := buildWorld(t, 30)
	res := w.NewResolver(netsim.RegionOregon)
	collector := New(res, domainList(w))
	site := pickUnprotected(t, w)
	addrs, err := collector.ResolveOne(site.WWW())
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != site.OriginAddr() {
		t.Fatalf("addrs = %v", addrs)
	}
}

func pickUnprotected(t *testing.T, w *world.World) *website.Site {
	t.Helper()
	for _, s := range w.Sites() {
		if key, _, _ := s.Provider(); key == "" {
			return s
		}
	}
	t.Fatal("no unprotected site")
	return nil
}

func TestCollectParallelMatchesSerial(t *testing.T) {
	w := buildWorld(t, 200)
	res := w.NewResolver(netsim.RegionOregon)
	collector := New(res, domainList(w))

	serial := collector.Collect(0)
	collector.SetWorkers(8)
	parallel := collector.Collect(0)

	if len(serial.Records) != len(parallel.Records) {
		t.Fatalf("sizes differ: %d vs %d", len(serial.Records), len(parallel.Records))
	}
	for apex, want := range serial.Records {
		got := parallel.Records[apex]
		if got.ResolveOK != want.ResolveOK || got.NSOK != want.NSOK ||
			len(got.Addrs) != len(want.Addrs) || len(got.CNAMEs) != len(want.CNAMEs) ||
			len(got.NSHosts) != len(want.NSHosts) {
			t.Fatalf("%s: parallel %+v != serial %+v", apex, got, want)
		}
		for i := range want.Addrs {
			if got.Addrs[i] != want.Addrs[i] {
				t.Fatalf("%s: addrs differ", apex)
			}
		}
	}
}

func TestSetWorkersPanicsOnZero(t *testing.T) {
	w := buildWorld(t, 10)
	collector := New(w.NewResolver(netsim.RegionOregon), domainList(w))
	defer func() {
		if recover() == nil {
			t.Fatal("SetWorkers(0) did not panic")
		}
	}()
	collector.SetWorkers(0)
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	w := buildWorld(t, 60)
	collector := New(w.NewResolver(netsim.RegionOregon), domainList(w))
	snap := collector.Collect(3)

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != snap.Day || len(got.Records) != len(snap.Records) {
		t.Fatalf("round trip shape: day %d/%d, records %d/%d",
			got.Day, snap.Day, len(got.Records), len(snap.Records))
	}
	for apex, want := range snap.Records {
		have := got.Records[apex]
		if !reflect.DeepEqual(have, want) {
			t.Fatalf("%s: %+v != %+v", apex, have, want)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"day":1,"records":[{"apex":"a..b"}]}`,
		`{"day":1,"records":[{"apex":"ok.com","addrs":["not-an-ip"]}]}`,
		`{"day":1,"records":[{"apex":"ok.com","cnames":["bad..name"]}]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded", c)
		}
	}
}
