package report

import (
	"fmt"
	"net/netip"
	"strings"
	"text/tabwriter"

	"rrdps/internal/dnsresolver"
)

// FaultSummary renders a campaign's resilience accounting — the query,
// retry, and hedge totals of the resilient query layer plus the health
// tracker's verdicts — as a compact table for the cmd binaries' health
// summaries.
func FaultSummary(stats dnsresolver.QueryStats, sidelined []netip.Addr) string {
	out := "Fault tolerance summary\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "logical queries\t%d\n", stats.Queries)
		fmt.Fprintf(w, "wire attempts\t%d\n", stats.Attempts)
		fmt.Fprintf(w, "retries\t%d\n", stats.Retries)
		fmt.Fprintf(w, "hedged attempts\t%d\n", stats.Hedges)
		fmt.Fprintf(w, "timeouts\t%d\n", stats.Timeouts)
		fmt.Fprintf(w, "corrupt replies\t%d\n", stats.CorruptReplies)
		fmt.Fprintf(w, "bad responses\t%d\n", stats.BadResponses)
		fmt.Fprintf(w, "recovered queries\t%d\n", stats.Recovered)
		fmt.Fprintf(w, "failed queries\t%d\n", stats.Failed)
		fmt.Fprintf(w, "sideline events\t%d\n", stats.SidelineEvents)
		fmt.Fprintf(w, "accounted backoff\t%v\n", stats.Backoff)
	})
	if len(sidelined) == 0 {
		return out + "sidelined nameservers: none\n"
	}
	addrs := make([]string, len(sidelined))
	for i, a := range sidelined {
		addrs[i] = a.String()
	}
	return out + fmt.Sprintf("sidelined nameservers (%d): %s\n", len(sidelined), strings.Join(addrs, " "))
}
