package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"rrdps/internal/vectors"
)

// TableI renders an origin-exposure vector audit (the paper's Table I
// background, quantified as in Vissers et al. CCS'15).
func TableI(res vectors.AuditResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — origin-exposure vectors (%d protected sites audited)\n", res.Audited)
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Vector\tSites exposing true origin")
		for _, v := range vectors.AllVectors() {
			fmt.Fprintf(w, "%s\t%d\n", v, res.PerVector[v])
		}
	}))
	fmt.Fprintf(&b, "exposed through >=1 vector: %d/%d (%.0f%%)\n",
		res.ExposedCount(), res.Audited, res.ExposedRate()*100)
	return b.String()
}
