// Package report renders the measurement campaign results as the paper's
// tables and figures (text form): Table II/III/IV metadata, Fig. 2/3/5/6
// usage-dynamics artifacts, Table V hygiene rates, and the §V Table VI /
// Fig. 9 residual-resolution results.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/experiment"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/stats"
)

func table(fn func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return b.String()
}

// TableII renders the provider-profile table.
func TableII() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Provider\tCNAME Substrings\tNS Substrings\tASNs\tRerouting\tTermination")
		for _, p := range dps.Profiles() {
			asns := make([]string, len(p.ASNs))
			for i, a := range p.ASNs {
				asns[i] = a.String()
			}
			methods := make([]string, len(p.Methods))
			for i, m := range p.Methods {
				methods[i] = m.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
				p.DisplayName,
				orDash(strings.Join(p.CNAMESubstrings, " ")),
				orDash(strings.Join(p.NSSubstrings, " ")),
				strings.Join(asns, " "),
				strings.Join(methods, " / "),
				p.Termination)
		}
	})
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Figure2 renders the average per-day DPS adoption breakdown.
func Figure2(res experiment.DynamicsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — DPS adoption breakdown (avg/day over %d days)\n", res.Days)
	fmt.Fprintf(&b, "overall adoption: %.2f%%   top-bucket adoption: %.2f%%   growth over period: %+.2f%%\n",
		res.AvgAdoptionRate()*100, res.AvgTopAdoptionRate()*100, res.AdoptionGrowth()*100)
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Provider\tShare of adopters")
		for _, key := range dps.AllKeys() {
			share := res.AvgProviderShare(key)
			if share == 0 {
				continue
			}
			fmt.Fprintf(w, "%s\t%.2f%%\n", key, share*100)
		}
	}))
	return b.String()
}

// Figure3 renders the daily behaviour counts.
func Figure3(res experiment.DynamicsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — daily usage behaviours (%d days)\n", res.Days)
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Day\tJOIN\tLEAVE\tPAUSE\tRESUME\tSWITCH")
		days := make([]int, 0, len(res.CountsByDay))
		for d := range res.CountsByDay {
			days = append(days, d)
		}
		sort.Ints(days)
		for _, d := range days {
			c := res.CountsByDay[d]
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\n",
				d, c[behavior.Join], c[behavior.Leave], c[behavior.Pause], c[behavior.Resume], c[behavior.Switch])
		}
		fmt.Fprintf(w, "avg/day\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			res.AvgPerDay(behavior.Join), res.AvgPerDay(behavior.Leave),
			res.AvgPerDay(behavior.Pause), res.AvgPerDay(behavior.Resume),
			res.AvgPerDay(behavior.Switch))
	}))
	return b.String()
}

// PauseCDF builds the Fig. 5 empirical CDFs: overall and per provider.
// Censored windows — opened at a baseline observation, where the true
// start predates the campaign — are excluded: their durations are lower
// bounds and would skew the CDF short.
func PauseCDF(res experiment.DynamicsResult) (overall, cloudflare, incapsula *stats.CDF) {
	var all, cf, inc []float64
	for _, w := range res.PauseWindows {
		if !w.Resumed || w.Censored {
			continue
		}
		days := float64(w.Days())
		all = append(all, days)
		// Per-provider series include only pauses resumed at the same
		// provider, as the paper specifies.
		if w.ResumedAt == w.Provider {
			switch w.Provider {
			case dps.Cloudflare:
				cf = append(cf, days)
			case dps.Incapsula:
				inc = append(inc, days)
			}
		}
	}
	return stats.NewCDF(all), stats.NewCDF(cf), stats.NewCDF(inc)
}

// Figure5 renders the pause-period CDF.
func Figure5(res experiment.DynamicsResult) string {
	overall, cf, inc := PauseCDF(res)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — CDF of pause periods (%d closed windows)\n", overall.Len())
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Days\tOverall\tCloudflare\tIncapsula")
		for _, d := range []float64{1, 2, 3, 4, 5, 7, 10, 14, 21, 28, 35} {
			fmt.Fprintf(w, "<=%.0f\t%.2f\t%.2f\t%.2f\n", d, overall.At(d), cf.At(d), inc.At(d))
		}
	}))
	fmt.Fprintf(&b, "pauses longer than 5 days: %.1f%%\n", (1-overall.At(5))*100)
	return b.String()
}

// Figure6 renders Cloudflare's rerouting-mechanism breakdown.
func Figure6(res experiment.DynamicsResult) string {
	ns, cname := 0, 0
	for _, bd := range res.Breakdowns {
		ns += bd.CloudflareNS
		cname += bd.CloudflareCNAME
	}
	total := ns + cname
	var b strings.Builder
	b.WriteString("Fig. 6 — Cloudflare adoption breakdown\n")
	fmt.Fprintf(&b, "NS-based:    %s\n", stats.Percent(ns, total))
	fmt.Fprintf(&b, "CNAME-based: %s\n", stats.Percent(cname, total))
	return b.String()
}

// TableV renders the origin-IP unchanged rates.
func TableV(res experiment.DynamicsResult) string {
	var b strings.Builder
	b.WriteString("Table V — origin IP unchanged rate after JOIN/RESUME\n")
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Provider\tJoin&Resume\tIP Unchanged\tPercentage")
		for _, key := range dps.AllKeys() {
			row, ok := res.Unchanged[key]
			if !ok || row.JoinResume == 0 {
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\n",
				key, row.JoinResume, row.IPUnchanged, stats.Percent(row.IPUnchanged, row.JoinResume))
		}
		jr, un, rate := res.TotalUnchangedRate()
		fmt.Fprintf(w, "Total\t%d\t%d\t%.1f%%\n", jr, un, rate*100)
	}))
	return b.String()
}

// TableVI renders the residual-resolution results.
func TableVI(res experiment.ResidualResult) string {
	var b strings.Builder
	b.WriteString("Table VI — residual resolution in the wild\n")
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "\tHidden Records\tVerified Origins\tPercentage")
		fmt.Fprintln(w, "Cloudflare\t\t\t")
		for _, wr := range res.Cloudflare {
			h := len(wr.Report.HiddenApexes())
			v := len(wr.Report.VerifiedApexes())
			fmt.Fprintf(w, "Week %d\t%d\t%d\t%s\n", wr.Week, h, v, stats.Percent(v, h))
		}
		ch, ih := res.TotalHidden()
		cv, iv := res.TotalVerified()
		fmt.Fprintf(w, "Total\t%d\t%d\t%s\n", ch, cv, stats.Percent(cv, ch))
		fmt.Fprintln(w, "Incapsula\t\t\t")
		for _, wr := range res.Incapsula {
			h := len(wr.Report.HiddenApexes())
			v := len(wr.Report.VerifiedApexes())
			fmt.Fprintf(w, "Week %d\t%d\t%d\t%s\n", wr.Week, h, v, stats.Percent(v, h))
		}
		fmt.Fprintf(w, "Total\t%d\t%d\t%s\n", ih, iv, stats.Percent(iv, ih))
	}))
	return b.String()
}

// Figure9 renders the exposure timeline for the Cloudflare case study.
func Figure9(res experiment.ResidualResult) string {
	tl := res.CFExposure.Timeline()
	var b strings.Builder
	b.WriteString("Fig. 9 — exposure observations (Cloudflare, verified origins)\n")
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Week\tNewly exposed")
		for i, n := range tl.NewPerWeek {
			fmt.Fprintf(w, "%d\t%d\n", i+1, n)
		}
	}))
	fmt.Fprintf(&b, "exposed in every week: %d\n", tl.AlwaysExposed)
	fmt.Fprintf(&b, "appeared and disappeared within the window: %d\n", tl.AppearedAndDisappeared)
	if len(tl.Durations) > 0 {
		hist := stats.NewHistogram(1, res.Weeks)
		for _, d := range tl.Durations {
			hist.Add(d)
		}
		fmt.Fprintf(&b, "exposure duration histogram (weeks):\n%s", hist.String())
	}
	return b.String()
}

// DynamicsProgress renders the one-line summary a follow-mode daemon
// prints after each appended day: the day's adoption numbers and
// behaviour increments, computed from the single-day artifacts
// (AdoptionBreakdown, behavior.Tracker.DayCounts) rather than by
// re-aggregating the campaign.
func DynamicsProgress(day, worldDay int, b experiment.AdoptionBreakdown, counts map[behavior.Kind]int) string {
	var parts []string
	for _, k := range []behavior.Kind{behavior.Join, behavior.Leave, behavior.Switch, behavior.Pause, behavior.Resume} {
		if n := counts[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k))
		}
	}
	events := "no behaviour events"
	if len(parts) > 0 {
		events = strings.Join(parts, ", ")
	}
	adoption := 0.0
	if b.Population > 0 {
		adoption = float64(b.Total) / float64(b.Population) * 100
	}
	return fmt.Sprintf("day %d sealed (world day %d): %d/%d adopters (%.2f%%), %s",
		day, worldDay, b.Total, b.Population, adoption, events)
}

// ResidualProgress renders the one-line summary a follow-mode daemon
// prints after each appended round, from the newest week's exposure
// increments (exposure.Tracker.LatestCounts). Warm-up rounds — before
// any scan week landed — report only the world clock.
func ResidualProgress(worldDay int, res experiment.ResidualResult) string {
	week, cfHidden, cfVerified, ok := res.CFExposure.LatestCounts()
	if !ok {
		return fmt.Sprintf("warm-up round sealed (world day %d)", worldDay)
	}
	line := fmt.Sprintf("week %d sealed (world day %d): cloudflare %d hidden/%d verified",
		week, worldDay, cfHidden, cfVerified)
	if iw, ih, iv, iok := res.IncExposure.LatestCounts(); iok && iw == week {
		line += fmt.Sprintf(", incapsula %d hidden/%d verified", ih, iv)
	}
	return line
}

// Figure7 renders per-PoP query counts for one anycast nameserver
// endpoint — the vantage-point load spreading of Fig. 7.
func Figure7(counts map[netsim.Region]uint64) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — per-PoP query distribution (one anycast NS endpoint)\n")
	regions := make([]netsim.Region, 0, len(counts))
	for r := range counts {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "PoP region\tQueries")
		for _, r := range regions {
			fmt.Fprintf(w, "%s\t%d\n", r, counts[r])
		}
	}))
	return b.String()
}
