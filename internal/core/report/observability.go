package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"rrdps/internal/obs"
)

// Observability renders a registry dump as the cmd binaries' -metrics
// text output: the per-phase throughput table from the tracer, the stage
// counters grouped by dot-prefix, gauges, and histogram summaries.
// Per-stripe cache counters are summarized (stripe count, busiest stripe)
// rather than listed — 64 rows of stripe detail belong in the JSON dump,
// not a terminal table.
func Observability(d obs.Dump) string {
	var b strings.Builder
	b.WriteString("Observability summary\n")

	if len(d.Phases) > 0 {
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "Phase\tSpans\tItems\tWall time\tItems/s")
			for _, p := range d.Phases {
				fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%.0f\n",
					p.Phase, p.Spans, p.Items, p.Elapsed.Round(timeResolution), p.ItemsPerSec())
			}
		}))
	}

	counters, stripes := splitStripeCounters(d.Snapshot)
	if len(counters) > 0 {
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "Counter\tValue")
			for _, name := range counters {
				fmt.Fprintf(w, "%s\t%d\n", name, d.Snapshot.Counters[name])
			}
		}))
	}
	if stripes.lookups > 0 {
		fmt.Fprintf(&b, "cache stripes: %d active of %d, busiest %s (%d lookups)\n",
			stripes.active, stripes.total, stripes.busiest, stripes.busiestN)
	}

	if len(d.Snapshot.Gauges) > 0 {
		names := make([]string, 0, len(d.Snapshot.Gauges))
		for name := range d.Snapshot.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "Gauge\tValue")
			for _, name := range names {
				fmt.Fprintf(w, "%s\t%d\n", name, d.Snapshot.Gauges[name])
			}
		}))
	}

	if len(d.Snapshot.Histograms) > 0 {
		names := make([]string, 0, len(d.Snapshot.Histograms))
		for name := range d.Snapshot.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "Histogram\tCount\tSum\tMean\tMode bucket")
			for _, name := range names {
				h := d.Snapshot.Histograms[name]
				mean := 0.0
				if h.Count > 0 {
					mean = float64(h.Sum) / float64(h.Count)
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%s\n", name, h.Count, h.Sum, mean, modeBucket(h))
			}
		}))
	}
	return b.String()
}

// ObservabilityCSV emits kind,name,value rows for every metric in the
// dump, plus phase rows (kind=phase, value=items) — the raw series behind
// the text tables.
func ObservabilityCSV(d obs.Dump) string {
	var b strings.Builder
	b.WriteString("kind,name,value\n")
	for _, name := range sortedKeys(d.Snapshot.Counters) {
		fmt.Fprintf(&b, "counter,%s,%d\n", name, d.Snapshot.Counters[name])
	}
	gnames := make([]string, 0, len(d.Snapshot.Gauges))
	for name := range d.Snapshot.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Fprintf(&b, "gauge,%s,%d\n", name, d.Snapshot.Gauges[name])
	}
	hnames := make([]string, 0, len(d.Snapshot.Histograms))
	for name := range d.Snapshot.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := d.Snapshot.Histograms[name]
		fmt.Fprintf(&b, "histogram_count,%s,%d\n", name, h.Count)
		fmt.Fprintf(&b, "histogram_sum,%s,%d\n", name, h.Sum)
	}
	for _, p := range d.Phases {
		fmt.Fprintf(&b, "phase,%s,%d\n", p.Phase, p.Items)
	}
	return b.String()
}

// timeResolution keeps wall-time cells readable.
const timeResolution = 10 * time.Microsecond

// stripeSummary condenses the per-stripe cache counters.
type stripeSummary struct {
	total    int
	active   int
	lookups  uint64
	busiest  string
	busiestN uint64
}

// splitStripeCounters separates the per-stripe dns.cache.stripeNN.*
// counters from the rest and condenses them. Returned names are sorted.
func splitStripeCounters(s obs.Snapshot) ([]string, stripeSummary) {
	var names []string
	perStripe := map[string]uint64{}
	for name, v := range s.Counters {
		if stripe, ok := stripeOf(name); ok {
			perStripe[stripe] += v
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var sum stripeSummary
	sum.total = len(perStripe)
	for stripe, n := range perStripe {
		sum.lookups += n
		if n > 0 {
			sum.active++
		}
		if n > sum.busiestN || (n == sum.busiestN && stripe < sum.busiest) {
			sum.busiest, sum.busiestN = stripe, n
		}
	}
	return names, sum
}

// stripeOf extracts the stripe label from a dns.cache.stripeNN.hit/miss
// counter name.
func stripeOf(name string) (string, bool) {
	const prefix = "dns.cache.stripe"
	if !strings.HasPrefix(name, prefix) {
		return "", false
	}
	rest := name[len(prefix):]
	i := strings.IndexByte(rest, '.')
	if i < 0 {
		return "", false
	}
	return "stripe" + rest[:i], true
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// modeBucket names the histogram's most-populated bucket as a value
// range.
func modeBucket(h obs.HistogramSnapshot) string {
	best, bestN := -1, uint64(0)
	for i, n := range h.Buckets {
		if n > bestN || (n == bestN && (best < 0 || i < best)) {
			best, bestN = i, n
		}
	}
	if best < 0 {
		return "-"
	}
	if best == 0 {
		return "0"
	}
	return fmt.Sprintf("[%d,%d)", obs.BucketLow(best), obs.BucketLow(best+1))
}
