package report

import (
	"strconv"
	"strings"
	"testing"
)

func checkCSV(t *testing.T, name, csv string, wantCols int) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("%s: too few lines:\n%s", name, csv)
	}
	for i, line := range lines {
		cols := strings.Split(line, ",")
		if len(cols) != wantCols {
			t.Fatalf("%s line %d: %d cols, want %d: %q", name, i, len(cols), wantCols, line)
		}
		if i == 0 {
			continue
		}
		// Every non-header, non-summary numeric column parses.
		for _, c := range cols[1:] {
			if _, err := strconv.ParseFloat(c, 64); err != nil {
				t.Fatalf("%s line %d: non-numeric %q", name, i, c)
			}
		}
	}
}

func TestCSVRenderers(t *testing.T) {
	dyn, res := runCampaigns(t)

	checkCSV(t, "fig2", Figure2CSV(dyn), 2)
	checkCSV(t, "fig3", Figure3CSV(dyn), 6)
	checkCSV(t, "fig5", Figure5CSV(dyn), 4)
	checkCSV(t, "tab5", TableVCSV(dyn), 4)
	checkCSV(t, "tab6", TableVICSV(res), 4)
	checkCSV(t, "fig9", Figure9CSV(res), 2)

	if !strings.HasPrefix(Figure3CSV(dyn), "day,join,leave,pause,resume,switch\n") {
		t.Fatal("fig3 header wrong")
	}
	if !strings.Contains(TableVCSV(dyn), "total,") {
		t.Fatal("tab5 missing total row")
	}
	if !strings.Contains(TableVICSV(res), "cloudflare,0,") {
		t.Fatal("tab6 missing union-total row")
	}
}
