package report

import (
	"strings"
	"testing"

	"rrdps/internal/core/experiment"
	"rrdps/internal/netsim"
	"rrdps/internal/world"
)

func runCampaigns(t *testing.T) (experiment.DynamicsResult, experiment.ResidualResult) {
	t.Helper()
	cfg := world.PaperConfig(600)
	cfg.Seed = 83
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01
	dynRes := experiment.Dynamics{World: world.New(cfg), Days: 10}.Run()

	cfg2 := world.PaperConfig(600)
	cfg2.Seed = 89
	cfg2.LeaveRate = 0.01
	cfg2.SwitchRate = 0.008
	resRes := experiment.Residual{World: world.New(cfg2), Weeks: 2}.Run()
	return dynRes, resRes
}

func TestTableII(t *testing.T) {
	s := TableII()
	for _, frag := range []string{"Cloudflare", "Incapsula", "residual", "AS13335", "incapdns", "NS / CNAME"} {
		if !strings.Contains(s, frag) {
			t.Errorf("TableII missing %q:\n%s", frag, s)
		}
	}
}

func TestDynamicsRenderers(t *testing.T) {
	dyn, _ := runCampaigns(t)

	fig2 := Figure2(dyn)
	for _, frag := range []string{"Fig. 2", "overall adoption", "cloudflare"} {
		if !strings.Contains(fig2, frag) {
			t.Errorf("Figure2 missing %q:\n%s", frag, fig2)
		}
	}

	fig3 := Figure3(dyn)
	for _, frag := range []string{"Fig. 3", "JOIN", "avg/day"} {
		if !strings.Contains(fig3, frag) {
			t.Errorf("Figure3 missing %q:\n%s", frag, fig3)
		}
	}

	fig5 := Figure5(dyn)
	for _, frag := range []string{"Fig. 5", "Overall", "longer than 5 days"} {
		if !strings.Contains(fig5, frag) {
			t.Errorf("Figure5 missing %q:\n%s", frag, fig5)
		}
	}

	fig6 := Figure6(dyn)
	if !strings.Contains(fig6, "NS-based") || !strings.Contains(fig6, "CNAME-based") {
		t.Errorf("Figure6 malformed:\n%s", fig6)
	}

	t5 := TableV(dyn)
	if !strings.Contains(t5, "Table V") || !strings.Contains(t5, "Total") {
		t.Errorf("TableV malformed:\n%s", t5)
	}
}

func TestResidualRenderers(t *testing.T) {
	_, res := runCampaigns(t)

	t6 := TableVI(res)
	for _, frag := range []string{"Table VI", "Cloudflare", "Incapsula", "Week 1", "Total"} {
		if !strings.Contains(t6, frag) {
			t.Errorf("TableVI missing %q:\n%s", frag, t6)
		}
	}

	f9 := Figure9(res)
	for _, frag := range []string{"Fig. 9", "Newly exposed", "every week"} {
		if !strings.Contains(f9, frag) {
			t.Errorf("Figure9 missing %q:\n%s", frag, f9)
		}
	}
}

func TestFigure7(t *testing.T) {
	s := Figure7(map[netsim.Region]uint64{
		netsim.RegionOregon: 10,
		netsim.RegionTokyo:  7,
	})
	for _, frag := range []string{"Fig. 7", "oregon", "tokyo", "10", "7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Figure7 missing %q:\n%s", frag, s)
		}
	}
}

func TestPauseCDFSeries(t *testing.T) {
	dyn, _ := runCampaigns(t)
	overall, cf, inc := PauseCDF(dyn)
	if overall.Len() == 0 {
		t.Fatal("no pause windows in overall CDF")
	}
	if cf.Len()+inc.Len() > overall.Len() {
		t.Fatal("per-provider CDFs exceed overall")
	}
	if overall.At(35) != 1.0 {
		t.Fatalf("CDF at max = %v", overall.At(35))
	}
}

func TestDefinitionTables(t *testing.T) {
	t3 := TableIII()
	for _, frag := range []string{"Table III", "ON", "OFF", "NONE", "A-matched"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("TableIII missing %q:\n%s", frag, t3)
		}
	}
	t4 := TableIV()
	for _, frag := range []string{"Table IV", "LEAVE", "JOIN", "PAUSE", "RESUME", "SWITCH", "NONE -> ON"} {
		if !strings.Contains(t4, frag) {
			t.Errorf("TableIV missing %q:\n%s", frag, t4)
		}
	}
}
