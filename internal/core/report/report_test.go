package report

import (
	"strings"
	"testing"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/experiment"
	"rrdps/internal/dps"
	"rrdps/internal/netsim"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

func runCampaigns(t *testing.T) (experiment.DynamicsResult, experiment.ResidualResult) {
	t.Helper()
	cfg := world.PaperConfig(600)
	cfg.Seed = 83
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04
	cfg.SwitchRate = 0.01
	dynRes := experiment.Dynamics{World: world.New(cfg), Days: 10}.Run()

	cfg2 := world.PaperConfig(600)
	cfg2.Seed = 89
	cfg2.LeaveRate = 0.01
	cfg2.SwitchRate = 0.008
	resRes := experiment.Residual{World: world.New(cfg2), Weeks: 2}.Run()
	return dynRes, resRes
}

func TestTableII(t *testing.T) {
	s := TableII()
	for _, frag := range []string{"Cloudflare", "Incapsula", "residual", "AS13335", "incapdns", "NS / CNAME"} {
		if !strings.Contains(s, frag) {
			t.Errorf("TableII missing %q:\n%s", frag, s)
		}
	}
}

func TestDynamicsRenderers(t *testing.T) {
	dyn, _ := runCampaigns(t)

	fig2 := Figure2(dyn)
	for _, frag := range []string{"Fig. 2", "overall adoption", "cloudflare"} {
		if !strings.Contains(fig2, frag) {
			t.Errorf("Figure2 missing %q:\n%s", frag, fig2)
		}
	}

	fig3 := Figure3(dyn)
	for _, frag := range []string{"Fig. 3", "JOIN", "avg/day"} {
		if !strings.Contains(fig3, frag) {
			t.Errorf("Figure3 missing %q:\n%s", frag, fig3)
		}
	}

	fig5 := Figure5(dyn)
	for _, frag := range []string{"Fig. 5", "Overall", "longer than 5 days"} {
		if !strings.Contains(fig5, frag) {
			t.Errorf("Figure5 missing %q:\n%s", frag, fig5)
		}
	}

	fig6 := Figure6(dyn)
	if !strings.Contains(fig6, "NS-based") || !strings.Contains(fig6, "CNAME-based") {
		t.Errorf("Figure6 malformed:\n%s", fig6)
	}

	t5 := TableV(dyn)
	if !strings.Contains(t5, "Table V") || !strings.Contains(t5, "Total") {
		t.Errorf("TableV malformed:\n%s", t5)
	}
}

func TestResidualRenderers(t *testing.T) {
	_, res := runCampaigns(t)

	t6 := TableVI(res)
	for _, frag := range []string{"Table VI", "Cloudflare", "Incapsula", "Week 1", "Total"} {
		if !strings.Contains(t6, frag) {
			t.Errorf("TableVI missing %q:\n%s", frag, t6)
		}
	}

	f9 := Figure9(res)
	for _, frag := range []string{"Fig. 9", "Newly exposed", "every week"} {
		if !strings.Contains(f9, frag) {
			t.Errorf("Figure9 missing %q:\n%s", frag, f9)
		}
	}
}

func TestFigure7(t *testing.T) {
	s := Figure7(map[netsim.Region]uint64{
		netsim.RegionOregon: 10,
		netsim.RegionTokyo:  7,
	})
	for _, frag := range []string{"Fig. 7", "oregon", "tokyo", "10", "7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Figure7 missing %q:\n%s", frag, s)
		}
	}
}

func TestPauseCDFSeries(t *testing.T) {
	dyn, _ := runCampaigns(t)
	overall, cf, inc := PauseCDF(dyn)
	if overall.Len() == 0 {
		t.Fatal("no pause windows in overall CDF")
	}
	if cf.Len()+inc.Len() > overall.Len() {
		t.Fatal("per-provider CDFs exceed overall")
	}
	if overall.At(35) != 1.0 {
		t.Fatalf("CDF at max = %v", overall.At(35))
	}
}

// TestPauseCDFExcludesCensored pins the censoring rule: windows opened at
// a baseline observation carry a lower-bound duration and must not enter
// the Fig. 5 duration statistics.
func TestPauseCDFExcludesCensored(t *testing.T) {
	res := experiment.DynamicsResult{
		Days: 10,
		PauseWindows: []behavior.PauseWindow{
			{Apex: "a.com", Provider: dps.Cloudflare, StartDay: 1, EndDay: 4,
				Resumed: true, ResumedAt: dps.Cloudflare},
			{Apex: "b.com", Provider: dps.Cloudflare, StartDay: 0, EndDay: 9,
				Resumed: true, ResumedAt: dps.Cloudflare, Censored: true},
		},
	}
	overall, cf, _ := PauseCDF(res)
	if overall.Len() != 1 || cf.Len() != 1 {
		t.Fatalf("CDF lengths = %d overall / %d cloudflare, want 1/1 (censored window leaked in)",
			overall.Len(), cf.Len())
	}
	if overall.At(3) != 1.0 {
		t.Fatalf("CDF at 3 days = %v, want 1.0 — only the measured 3-day window should count", overall.At(3))
	}
}

func TestObservabilityRendering(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("collect.domains").Add(600)
	r.Counter("scan.queries").Add(1200)
	r.VolatileCounter("dns.cache.stripe00.hit").Add(40)
	r.VolatileCounter("dns.cache.stripe01.hit").Add(2)
	r.VolatileCounter("dns.cache.hit").Add(42)
	r.Gauge("campaign.weeks").Set(6)
	r.Histogram("filter.hidden_per_apex").Observe(3)
	sp := r.Tracer().StartSpan("collect", "day 0")
	sp.SetItems(600)
	sp.End()

	text := Observability(r.Dump())
	for _, frag := range []string{
		"Observability summary", "Phase", "collect", "600",
		"scan.queries", "campaign.weeks", "filter.hidden_per_apex",
		"busiest stripe00 (40 lookups)",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Observability missing %q:\n%s", frag, text)
		}
	}
	// Per-stripe counters are condensed, not listed.
	if strings.Contains(text, "stripe01.hit") {
		t.Errorf("Observability lists raw stripe counters:\n%s", text)
	}

	csv := ObservabilityCSV(r.Dump())
	for _, frag := range []string{
		"kind,name,value\n", "counter,collect.domains,600",
		"gauge,campaign.weeks,6", "histogram_count,filter.hidden_per_apex,1",
		"phase,collect,600",
	} {
		if !strings.Contains(csv, frag) {
			t.Errorf("ObservabilityCSV missing %q:\n%s", frag, csv)
		}
	}
}

func TestDefinitionTables(t *testing.T) {
	t3 := TableIII()
	for _, frag := range []string{"Table III", "ON", "OFF", "NONE", "A-matched"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("TableIII missing %q:\n%s", frag, t3)
		}
	}
	t4 := TableIV()
	for _, frag := range []string{"Table IV", "LEAVE", "JOIN", "PAUSE", "RESUME", "SWITCH", "NONE -> ON"} {
		if !strings.Contains(t4, frag) {
			t.Errorf("TableIV missing %q:\n%s", frag, t4)
		}
	}
}
