package report

import (
	"fmt"
	"sort"
	"strings"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/experiment"
	"rrdps/internal/dps"
)

// The CSV renderers emit the figures' raw series for external plotting —
// one line per point, header first, RFC-4180-plain (no quoting needed for
// this data).

// Figure2CSV emits provider,share_pct rows.
func Figure2CSV(res experiment.DynamicsResult) string {
	var b strings.Builder
	b.WriteString("provider,share_pct\n")
	for _, key := range dps.AllKeys() {
		share := res.AvgProviderShare(key)
		if share == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s,%.4f\n", key, share*100)
	}
	return b.String()
}

// Figure3CSV emits day,join,leave,pause,resume,switch rows.
func Figure3CSV(res experiment.DynamicsResult) string {
	var b strings.Builder
	b.WriteString("day,join,leave,pause,resume,switch\n")
	days := make([]int, 0, len(res.CountsByDay))
	for d := range res.CountsByDay {
		days = append(days, d)
	}
	sort.Ints(days)
	for _, d := range days {
		c := res.CountsByDay[d]
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d\n",
			d, c[behavior.Join], c[behavior.Leave], c[behavior.Pause],
			c[behavior.Resume], c[behavior.Switch])
	}
	return b.String()
}

// Figure5CSV emits days,overall,cloudflare,incapsula CDF rows at each
// distinct overall step.
func Figure5CSV(res experiment.DynamicsResult) string {
	overall, cf, inc := PauseCDF(res)
	var b strings.Builder
	b.WriteString("days,overall,cloudflare,incapsula\n")
	for _, pt := range overall.Points() {
		fmt.Fprintf(&b, "%.0f,%.4f,%.4f,%.4f\n", pt.X, pt.P, cf.At(pt.X), inc.At(pt.X))
	}
	return b.String()
}

// TableVCSV emits provider,join_resume,unchanged,pct rows.
func TableVCSV(res experiment.DynamicsResult) string {
	var b strings.Builder
	b.WriteString("provider,join_resume,unchanged,pct\n")
	for _, key := range dps.AllKeys() {
		row, ok := res.Unchanged[key]
		if !ok || row.JoinResume == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s,%d,%d,%.2f\n", key, row.JoinResume, row.IPUnchanged,
			100*float64(row.IPUnchanged)/float64(row.JoinResume))
	}
	jr, un, rate := res.TotalUnchangedRate()
	fmt.Fprintf(&b, "total,%d,%d,%.2f\n", jr, un, rate*100)
	return b.String()
}

// TableVICSV emits provider,week,hidden,verified rows plus total rows
// (week 0 denotes the union total).
func TableVICSV(res experiment.ResidualResult) string {
	var b strings.Builder
	b.WriteString("provider,week,hidden,verified\n")
	for _, wr := range res.Cloudflare {
		fmt.Fprintf(&b, "cloudflare,%d,%d,%d\n", wr.Week,
			len(wr.Report.HiddenApexes()), len(wr.Report.VerifiedApexes()))
	}
	ch, ih := res.TotalHidden()
	cv, iv := res.TotalVerified()
	fmt.Fprintf(&b, "cloudflare,0,%d,%d\n", ch, cv)
	for _, wr := range res.Incapsula {
		fmt.Fprintf(&b, "incapsula,%d,%d,%d\n", wr.Week,
			len(wr.Report.HiddenApexes()), len(wr.Report.VerifiedApexes()))
	}
	fmt.Fprintf(&b, "incapsula,0,%d,%d\n", ih, iv)
	return b.String()
}

// Figure9CSV emits week,newly_exposed rows followed by summary rows.
func Figure9CSV(res experiment.ResidualResult) string {
	tl := res.CFExposure.Timeline()
	var b strings.Builder
	b.WriteString("week,newly_exposed\n")
	for i, n := range tl.NewPerWeek {
		fmt.Fprintf(&b, "%d,%d\n", i+1, n)
	}
	fmt.Fprintf(&b, "always_exposed,%d\n", tl.AlwaysExposed)
	fmt.Fprintf(&b, "appear_disappear,%d\n", tl.AppearedAndDisappeared)
	return b.String()
}
