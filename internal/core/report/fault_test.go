package report

import (
	"net/netip"
	"strings"
	"testing"

	"rrdps/internal/dnsresolver"
)

func TestFaultSummary(t *testing.T) {
	stats := dnsresolver.QueryStats{
		Queries: 100, Attempts: 130, Retries: 30, Hedges: 12,
		Timeouts: 28, CorruptReplies: 2, Recovered: 25, Failed: 5,
		SidelineEvents: 1,
	}
	got := FaultSummary(stats, nil)
	for _, want := range []string{
		"Fault tolerance summary", "logical queries", "100",
		"retries", "30", "hedged attempts", "12",
		"sidelined nameservers: none",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}

	got = FaultSummary(stats, []netip.Addr{netip.MustParseAddr("192.0.2.7")})
	if !strings.Contains(got, "sidelined nameservers (1): 192.0.2.7") {
		t.Fatalf("summary missing sidelined list:\n%s", got)
	}
}
