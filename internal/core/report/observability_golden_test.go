package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rrdps/internal/core/experiment"
	"rrdps/internal/obs"
	"rrdps/internal/world"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenDump runs a small seeded campaign and normalizes the resulting
// observability dump so the rendered output is byte-stable: volatile
// (scheduling-sensitive) metrics are stripped, wall-clock phase durations
// are pinned to one second per phase, and the raw event ring is dropped.
func goldenDump(t *testing.T) obs.Dump {
	t.Helper()
	cfg := world.PaperConfig(300)
	cfg.Seed = 83
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.02
	cfg.PauseRate = 0.04

	reg := obs.NewRegistry()
	experiment.Dynamics{World: world.New(cfg), Days: 4, Obs: reg}.Run()

	d := reg.Dump()
	d.Snapshot = d.Snapshot.Deterministic()
	for i := range d.Phases {
		d.Phases[i].Elapsed = time.Second
	}
	d.Events = nil
	return d
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/core/report -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, regenerate with -update.",
			name, got, want)
	}
}

// TestObservabilityGolden pins the -metrics text renderer's exact output
// for a seeded campaign, so renderer drift shows up in review instead of
// in EXPERIMENTS runs.
func TestObservabilityGolden(t *testing.T) {
	checkGolden(t, "observability.txt", Observability(goldenDump(t)))
}

// TestObservabilityCSVGolden pins the CSV form the same way.
func TestObservabilityCSVGolden(t *testing.T) {
	checkGolden(t, "observability.csv", ObservabilityCSV(goldenDump(t)))
}
