package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"rrdps/internal/core/behavior"
	"rrdps/internal/core/status"
)

// TableIII renders the DPS status definitions.
func TableIII() string {
	var b strings.Builder
	b.WriteString("Table III — DPS status\n")
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Status\tExplanation")
		fmt.Fprintf(w, "%s\tA record points to a DPS's IP (A-matched)\n", status.StatusOn)
		fmt.Fprintf(w, "%s\tdomain delegated to a DPS (CNAME-matched, or NS-matched with an NS-hosting provider) but A points to a non-DPS IP — typically the origin\n", status.StatusOff)
		fmt.Fprintf(w, "%s\tno DPS delegation; A points to a non-DPS IP\n", status.StatusNone)
	}))
	return b.String()
}

// TableIV renders the usage-behaviour definitions (the Fig. 4 FSM's
// transition alphabet).
func TableIV() string {
	var b strings.Builder
	b.WriteString("Table IV — DPS usage behaviours\n")
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Behaviour\tExplanation\tStatus transition")
		rows := []struct {
			kind        behavior.Kind
			explanation string
			transition  string
		}{
			{behavior.Leave, "a domain leaves a DPS's platform", "ON / OFF -> NONE"},
			{behavior.Join, "a domain joins a DPS's platform", "NONE -> ON"},
			{behavior.Pause, "a domain pauses protection but stays on the platform", "ON -> OFF"},
			{behavior.Resume, "a domain resumes paused protection", "OFF -> ON"},
			{behavior.Switch, "a domain switches from one DPS provider to another", "P1 -> P2"},
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\n", r.kind, r.explanation, r.transition)
		}
	}))
	return b.String()
}
