// Package status implements the paper's DPS status classifier (Table III):
// from one domain's collected records, decide whether the domain is ON
// (traffic rerouted through a DPS), OFF (delegated to a DPS but answering
// with a non-DPS address, typically the origin), or NONE.
package status

import (
	"fmt"

	"rrdps/internal/core/collect"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
)

// Status is the Table III DPS status.
type Status int

// DPS statuses.
const (
	// StatusNone: no DPS involvement detected.
	StatusNone Status = iota + 1
	// StatusOn: the A record points into a DPS provider's ranges.
	StatusOn
	// StatusOff: the domain is delegated to a DPS (CNAME- or NS-matched)
	// but its A record points outside DPS ranges — typically the origin.
	StatusOff
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "NONE"
	case StatusOn:
		return "ON"
	case StatusOff:
		return "OFF"
	default:
		return fmt.Sprintf("status%d", int(s))
	}
}

// Adoption is the classifier's verdict for one domain on one day.
type Adoption struct {
	Status   Status
	Provider dps.ProviderKey // "" when Status is NONE
	// Rerouting is the inferred mechanism (0 when unknown/NONE).
	Rerouting dps.Rerouting
	// SharedIPSuspect marks the footnote-6 case: an OFF verdict for a
	// provider (Akamai, CDNetworks) whose edges may hold third-party
	// addresses; the paper eliminates these from adoption counts.
	SharedIPSuspect bool
}

// Classifier classifies collected records.
type Classifier struct {
	matcher *match.Matcher
}

// New creates a classifier.
func New(matcher *match.Matcher) *Classifier {
	if matcher == nil {
		panic("status: matcher is required")
	}
	return &Classifier{matcher: matcher}
}

// Classify applies the Table III rules to one record.
func (c *Classifier) Classify(rec collect.Record) Adoption {
	aKey, aOK := c.matcher.MatchAnyA(rec.Addrs)
	cnameKey, cnameOK := c.matcher.MatchAnyCNAME(rec.CNAMEs)
	nsKey, nsOK := c.matcher.MatchAnyNS(rec.NSHosts)

	// ON: A record points at a DPS provider's edge.
	if aOK {
		return Adoption{
			Status:    StatusOn,
			Provider:  aKey,
			Rerouting: c.inferRerouting(aKey, cnameOK, nsOK && nsKey == aKey),
		}
	}

	// OFF: delegated (CNAME-matched with any provider, or NS-matched with
	// an NS-hosting provider, i.e. Cloudflare) but A points elsewhere.
	if cnameOK {
		return Adoption{
			Status:          StatusOff,
			Provider:        cnameKey,
			Rerouting:       dps.ReroutingCNAME,
			SharedIPSuspect: sharedIPProvider(cnameKey),
		}
	}
	if nsOK {
		if profile, ok := c.matcher.Profile(nsKey); ok && profile.Supports(dps.ReroutingNS) {
			return Adoption{
				Status:    StatusOff,
				Provider:  nsKey,
				Rerouting: dps.ReroutingNS,
			}
		}
	}
	return Adoption{Status: StatusNone}
}

// inferRerouting labels the mechanism for an ON domain (§IV-B.2): the
// presence of a matched CNAME means CNAME-based; otherwise NS-matching
// implies NS hosting, and absent both, the customer points its own A
// record (A-based).
func (c *Classifier) inferRerouting(key dps.ProviderKey, cnameMatched, nsMatchedSame bool) dps.Rerouting {
	if cnameMatched {
		return dps.ReroutingCNAME
	}
	profile, ok := c.matcher.Profile(key)
	if !ok {
		return 0
	}
	if nsMatchedSame && profile.Supports(dps.ReroutingNS) {
		return dps.ReroutingNS
	}
	if profile.Supports(dps.ReroutingNS) {
		// Cloudflare without visible CNAME: NS hosting (Fig. 6 logic).
		return dps.ReroutingNS
	}
	if profile.Supports(dps.ReroutingA) {
		return dps.ReroutingA
	}
	return profile.Methods[0]
}

// sharedIPProvider reports the footnote-6 providers whose OFF verdicts are
// suspect because their edges can hold third-party (ISP) addresses.
func sharedIPProvider(key dps.ProviderKey) bool {
	return key == dps.Akamai || key == dps.CDNetworks
}

// ClassifySnapshot classifies every record in a snapshot, keyed by apex.
func (c *Classifier) ClassifySnapshot(snap collect.Snapshot) map[dnsmsg.Name]Adoption {
	out := make(map[dnsmsg.Name]Adoption, len(snap.Records))
	for apex, rec := range snap.Records {
		out[apex] = c.Classify(rec)
	}
	return out
}

// RecordSource is a stream of (apex, record) pairs — the shape of a
// snapstore cursor. Next advances and reports whether a record is
// current; Apex and Record read the current position.
type RecordSource interface {
	Next() bool
	Apex() dnsmsg.Name
	Record() collect.Record
}

// ClassifyStream is ClassifySnapshot without the maps: records are
// classified one at a time as the source yields them, and fn receives
// each verdict in stream order. It returns the number of records
// classified. Nothing is retained, so a day's classification costs one
// record of memory at a time regardless of population size.
func (c *Classifier) ClassifyStream(src RecordSource, fn func(apex dnsmsg.Name, rec collect.Record, a Adoption)) int {
	n := 0
	for src.Next() {
		rec := src.Record()
		fn(src.Apex(), rec, c.Classify(rec))
		n++
	}
	return n
}
