package status

import (
	"net/netip"
	"reflect"
	"testing"

	"rrdps/internal/alexa"
	"rrdps/internal/core/collect"
	"rrdps/internal/core/match"
	"rrdps/internal/dnsmsg"
	"rrdps/internal/dps"
	"rrdps/internal/ipspace"
	"rrdps/internal/netsim"
	"rrdps/internal/snapstore"
	"rrdps/internal/world"
)

func newClassifier(t *testing.T) *Classifier {
	t.Helper()
	reg := ipspace.NewRegistry()
	reg.AddAS(13335, "cloudflare")
	reg.MustAnnounce(13335, netip.MustParsePrefix("104.16.0.0/12"))
	reg.AddAS(19551, "incapsula")
	reg.MustAnnounce(19551, netip.MustParsePrefix("199.83.128.0/21"))
	reg.AddAS(32787, "akamai")
	reg.MustAnnounce(32787, netip.MustParsePrefix("23.0.0.0/12"))
	reg.AddAS(19324, "dosarrest")
	reg.MustAnnounce(19324, netip.MustParsePrefix("199.115.112.0/21"))
	reg.AddAS(64600, "isp")
	reg.MustAnnounce(64600, netip.MustParsePrefix("81.0.0.0/8"))
	return New(match.New(reg, dps.Profiles()))
}

func rec(addr string, cnames []string, nsHosts []string) collect.Record {
	r := collect.Record{Domain: alexa.Domain{Rank: 1, Apex: "site.com"}, ResolveOK: true}
	if addr != "" {
		r.Addrs = []netip.Addr{netip.MustParseAddr(addr)}
	}
	for _, c := range cnames {
		r.CNAMEs = append(r.CNAMEs, dnsmsg.MustParseName(c))
	}
	for _, h := range nsHosts {
		r.NSHosts = append(r.NSHosts, dnsmsg.MustParseName(h))
	}
	return r
}

func TestClassifyTableIII(t *testing.T) {
	c := newClassifier(t)
	tests := []struct {
		name      string
		rec       collect.Record
		status    Status
		provider  dps.ProviderKey
		rerouting dps.Rerouting
	}{
		{
			name:      "ON via NS hosting",
			rec:       rec("104.16.2.2", nil, []string{"kate.ns.cloudflare.com"}),
			status:    StatusOn,
			provider:  dps.Cloudflare,
			rerouting: dps.ReroutingNS,
		},
		{
			name:      "ON via CNAME",
			rec:       rec("199.83.128.4", []string{"tok.x.incapdns.net"}, []string{"ns1.webhost.net"}),
			status:    StatusOn,
			provider:  dps.Incapsula,
			rerouting: dps.ReroutingCNAME,
		},
		{
			name:      "ON via A-based (no CNAME, no provider NS)",
			rec:       rec("199.115.112.9", nil, []string{"ns1.webhost.net"}),
			status:    StatusOn,
			provider:  dps.DOSarrest,
			rerouting: dps.ReroutingA,
		},
		{
			name:      "OFF: cloudflare NS but origin A (pause)",
			rec:       rec("81.5.5.5", nil, []string{"rob.ns.cloudflare.com"}),
			status:    StatusOff,
			provider:  dps.Cloudflare,
			rerouting: dps.ReroutingNS,
		},
		{
			name:      "OFF: incapsula CNAME but origin A",
			rec:       rec("81.5.5.5", []string{"tok.x.incapdns.net"}, []string{"ns1.webhost.net"}),
			status:    StatusOff,
			provider:  dps.Incapsula,
			rerouting: dps.ReroutingCNAME,
		},
		{
			name:   "NONE: plain origin",
			rec:    rec("81.5.5.5", nil, []string{"ns1.webhost.net"}),
			status: StatusNone,
		},
		{
			name:   "NONE: no records at all",
			rec:    collect.Record{},
			status: StatusNone,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := c.Classify(tt.rec)
			if got.Status != tt.status {
				t.Fatalf("status = %v, want %v", got.Status, tt.status)
			}
			if got.Provider != tt.provider {
				t.Fatalf("provider = %q, want %q", got.Provider, tt.provider)
			}
			if tt.rerouting != 0 && got.Rerouting != tt.rerouting {
				t.Fatalf("rerouting = %v, want %v", got.Rerouting, tt.rerouting)
			}
		})
	}
}

func TestClassifyAMatchWinsOverDelegation(t *testing.T) {
	// A site that switched from Cloudflare (stale NS substring is gone in
	// practice, but CNAME from the new provider + A of the new provider
	// must attribute to the new provider).
	c := newClassifier(t)
	got := c.Classify(rec("199.83.128.7",
		[]string{"tok.x.incapdns.net"}, []string{"kate.ns.cloudflare.com"}))
	if got.Status != StatusOn || got.Provider != dps.Incapsula {
		t.Fatalf("got %+v, want ON incapsula", got)
	}
}

func TestSharedIPSuspectFlag(t *testing.T) {
	c := newClassifier(t)
	// Akamai CNAME but a non-DPS A record: footnote-6 suspect.
	got := c.Classify(rec("81.9.9.9", []string{"www7.edgekey.akam.net"}, nil))
	if got.Status != StatusOff || !got.SharedIPSuspect {
		t.Fatalf("got %+v, want OFF with SharedIPSuspect", got)
	}
	// Incapsula OFF is not suspect.
	got = c.Classify(rec("81.9.9.9", []string{"tok.x.incapdns.net"}, nil))
	if got.SharedIPSuspect {
		t.Fatalf("incapsula OFF flagged suspect: %+v", got)
	}
}

func TestNonNSHostingProviderNSMatchIsNone(t *testing.T) {
	// NS-matching only signals delegation for providers that actually
	// host zones (Table III: "NS-matched with Cloudflare").
	c := newClassifier(t)
	got := c.Classify(rec("81.9.9.9", nil, []string{"ns1.fastly.net"}))
	if got.Status != StatusNone {
		t.Fatalf("fastly NS match produced %+v, want NONE", got)
	}
}

func TestClassifySnapshot(t *testing.T) {
	c := newClassifier(t)
	snap := collect.Snapshot{Day: 3, Records: map[dnsmsg.Name]collect.Record{
		"a.com": rec("104.16.0.1", nil, []string{"kate.ns.cloudflare.com"}),
		"b.com": rec("81.0.0.1", nil, []string{"ns1.webhost.net"}),
	}}
	got := c.ClassifySnapshot(snap)
	if got["a.com"].Status != StatusOn || got["b.com"].Status != StatusNone {
		t.Fatalf("snapshot classification = %+v", got)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOn.String() != "ON" || StatusOff.String() != "OFF" || StatusNone.String() != "NONE" {
		t.Fatal("status strings wrong")
	}
}

// TestSharedEdgeCustomersAreEliminated is the footnote-6 end-to-end check:
// an Akamai CNAME customer landing on a shared (third-party-IP) edge
// classifies as OFF with SharedIPSuspect, which the pipeline eliminates.
func TestSharedEdgeCustomersAreEliminated(t *testing.T) {
	cfg := world.PaperConfig(400)
	cfg.Seed = 1201
	cfg.SharedEdgesPerProvider = 3 // dense so the sample surely hits one
	// Push everything to Akamai CNAME so shared-edge landings are common.
	cfg.ProviderShares = map[dps.ProviderKey]float64{dps.Akamai: 1}
	cfg.AkamaiAShare = 0
	w := world.New(cfg)

	resolver := w.NewResolver(netsim.RegionOregon)
	classifier := New(match.New(w.Registry, dps.Profiles()))
	suspects, akamaiOn := 0, 0
	for _, s := range w.Sites() {
		key, _, _ := s.Provider()
		if key != dps.Akamai {
			continue
		}
		res, err := resolver.Resolve(s.WWW(), dnsmsg.TypeA)
		if err != nil {
			t.Fatalf("resolve %s: %v", s.WWW(), err)
		}
		rec := collect.Record{
			Domain:    s.Domain(),
			Addrs:     res.Addrs(),
			CNAMEs:    res.CNAMETargets(),
			ResolveOK: true,
			NSOK:      true,
		}
		adoption := classifier.Classify(rec)
		switch {
		case adoption.SharedIPSuspect:
			suspects++
			if adoption.Status != StatusOff {
				t.Fatalf("suspect with status %v", adoption.Status)
			}
		case adoption.Status == StatusOn:
			akamaiOn++
		}
	}
	if suspects == 0 {
		t.Fatal("no shared-edge suspects in a shared-edge-heavy world")
	}
	if akamaiOn == 0 {
		t.Fatal("no normally classified akamai customers")
	}
}

// TestClassifyStreamMatchesSnapshot feeds ClassifyStream from a real
// snapstore cursor and checks it yields exactly the verdicts
// ClassifySnapshot computes for the materialized day — the contract the
// streaming campaign pipeline rides on.
func TestClassifyStreamMatchesSnapshot(t *testing.T) {
	c := newClassifier(t)

	mk := func(rank int, apex dnsmsg.Name, addr string, cnames, nsHosts []string) collect.Record {
		r := rec(addr, cnames, nsHosts)
		r.Domain = alexa.Domain{Rank: rank, Apex: apex}
		return r
	}
	store := snapstore.New()
	dw := store.BeginDay(0)
	dw.Put(mk(3, "plain.com", "81.0.0.1", nil, []string{"ns1.webhost.net"}))
	dw.Put(mk(1, "cf.com", "104.16.0.1", nil, []string{"kate.ns.cloudflare.com"}))
	dw.Put(mk(2, "inc.com", "199.83.128.4", []string{"tok.x.incapdns.net"}, nil))
	dw.Put(mk(4, "paused.com", "81.5.5.5", nil, []string{"rob.ns.cloudflare.com"}))
	dw.Seal()

	want := c.ClassifySnapshot(store.SnapshotAt(0))

	got := make(map[dnsmsg.Name]Adoption, len(want))
	var order []dnsmsg.Name
	n := c.ClassifyStream(store.Cursor(0), func(apex dnsmsg.Name, r collect.Record, a Adoption) {
		if r.Domain.Apex != apex {
			t.Errorf("record for %q carries apex %q", apex, r.Domain.Apex)
		}
		got[apex] = a
		order = append(order, apex)
	})

	if n != len(want) {
		t.Fatalf("ClassifyStream classified %d records, want %d", n, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream verdicts = %+v\nwant %+v", got, want)
	}
	wantOrder := []dnsmsg.Name{"cf.com", "inc.com", "plain.com", "paused.com"}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("stream order = %v, want rank order %v", order, wantOrder)
	}
	if got["cf.com"].Status != StatusOn || got["paused.com"].Status != StatusOff {
		t.Fatalf("spot-check verdicts wrong: %+v", got)
	}
}
