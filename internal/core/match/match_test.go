package match

import (
	"net/netip"

	"rrdps/internal/dnsmsg"
	"testing"

	"rrdps/internal/dps"
	"rrdps/internal/ipspace"
)

func newMatcher(t *testing.T) (*Matcher, *ipspace.Registry) {
	t.Helper()
	reg := ipspace.NewRegistry()
	reg.AddAS(13335, "cloudflare")
	reg.MustAnnounce(13335, netip.MustParsePrefix("104.16.0.0/12"))
	reg.AddAS(19551, "incapsula")
	reg.MustAnnounce(19551, netip.MustParsePrefix("199.83.128.0/21"))
	reg.AddAS(54113, "fastly")
	reg.MustAnnounce(54113, netip.MustParsePrefix("151.101.0.0/16"))
	reg.AddAS(64600, "isp")
	reg.MustAnnounce(64600, netip.MustParsePrefix("81.0.0.0/8"))
	return New(reg, dps.Profiles()), reg
}

func TestMatchA(t *testing.T) {
	m, _ := newMatcher(t)
	tests := []struct {
		addr string
		want dps.ProviderKey
		ok   bool
	}{
		{"104.16.1.1", dps.Cloudflare, true},
		{"199.83.128.9", dps.Incapsula, true},
		{"151.101.1.1", dps.Fastly, true},
		{"81.2.3.4", "", false}, // ISP, not a DPS
		{"9.9.9.9", "", false},  // unannounced
	}
	for _, tt := range tests {
		got, ok := m.MatchA(netip.MustParseAddr(tt.addr))
		if ok != tt.ok || got != tt.want {
			t.Errorf("MatchA(%s) = %q,%v, want %q,%v", tt.addr, got, ok, tt.want, tt.ok)
		}
	}
}

func TestMatchAnyA(t *testing.T) {
	m, _ := newMatcher(t)
	addrs := []netip.Addr{netip.MustParseAddr("81.1.1.1"), netip.MustParseAddr("104.17.0.3")}
	got, ok := m.MatchAnyA(addrs)
	if !ok || got != dps.Cloudflare {
		t.Fatalf("MatchAnyA = %q,%v", got, ok)
	}
	if _, ok := m.MatchAnyA(nil); ok {
		t.Fatal("MatchAnyA(nil) matched")
	}
}

func TestMatchCNAME(t *testing.T) {
	m, _ := newMatcher(t)
	tests := []struct {
		name string
		want dps.ProviderKey
		ok   bool
	}{
		{"abc123.x.incapdns.net", dps.Incapsula, true},
		{"site.cdn.cloudflare.com", dps.Cloudflare, true},
		{"d1234.cloudfront.net", dps.Cloudfront, true},
		{"www7.edgekey.akam.net", dps.Akamai, true},
		{"token.netdna.hwcdn.net", dps.Stackpath, true},
		{"www.example.com", "", false},
	}
	for _, tt := range tests {
		got, ok := m.MatchCNAME(dnsmsg.MustParseName(tt.name))
		if ok != tt.ok || got != tt.want {
			t.Errorf("MatchCNAME(%s) = %q,%v, want %q,%v", tt.name, got, ok, tt.want, tt.ok)
		}
	}
}

func TestMatchNS(t *testing.T) {
	m, _ := newMatcher(t)
	tests := []struct {
		host string
		want dps.ProviderKey
		ok   bool
	}{
		{"kate.ns.cloudflare.com", dps.Cloudflare, true},
		{"ns1.incapdns.net", dps.Incapsula, true},
		{"ns2.cdnetdns.cdngc.net", dps.CDNetworks, true},
		{"ns1.webhost.net", "", false},
	}
	for _, tt := range tests {
		got, ok := m.MatchNS(dnsmsg.MustParseName(tt.host))
		if ok != tt.ok || got != tt.want {
			t.Errorf("MatchNS(%s) = %q,%v, want %q,%v", tt.host, got, ok, tt.want, tt.ok)
		}
	}
}

func TestMatchAnyNSEmpty(t *testing.T) {
	m, _ := newMatcher(t)
	if got, ok := m.MatchAnyNS(nil); ok || got != "" {
		t.Fatalf("MatchAnyNS(nil) = %q, %v", got, ok)
	}
	if got, ok := m.MatchAnyCNAME(nil); ok || got != "" {
		t.Fatalf("MatchAnyCNAME(nil) = %q, %v", got, ok)
	}
}

func TestInProviderRanges(t *testing.T) {
	m, _ := newMatcher(t)
	cf := netip.MustParseAddr("104.16.9.9")
	if !m.InProviderRanges(dps.Cloudflare, cf) {
		t.Fatal("cloudflare addr not matched to cloudflare")
	}
	if m.InProviderRanges(dps.Incapsula, cf) {
		t.Fatal("cloudflare addr matched incapsula")
	}
	if m.InProviderRanges(dps.Cloudflare, netip.MustParseAddr("81.1.1.1")) {
		t.Fatal("ISP addr matched cloudflare")
	}
}

func TestProfileAccessor(t *testing.T) {
	m, _ := newMatcher(t)
	p, ok := m.Profile(dps.Incapsula)
	if !ok || p.Key != dps.Incapsula {
		t.Fatalf("Profile = %+v, %v", p, ok)
	}
	if _, ok := m.Profile("nonesuch"); ok {
		t.Fatal("unknown profile matched")
	}
}
